package mfsynth

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablation benches for the design choices called out in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// The Table 1 benches report the reliability metrics (vs1max, vs2max, #v
// and the improvement over the traditional design) as custom benchmark
// metrics, so a bench run regenerates the table's numbers. The two
// dilution cases use the greedy mapper here to keep -bench runs short; the
// full rolling-horizon numbers are produced by cmd/mfbench (and recorded
// in EXPERIMENTS.md).

import (
	"fmt"
	"testing"

	"mfsynth/internal/assays"
	"mfsynth/internal/baseline"
	"mfsynth/internal/control"
	"mfsynth/internal/core"
	"mfsynth/internal/grid"
	"mfsynth/internal/place"
	"mfsynth/internal/report"
	"mfsynth/internal/route"
	"mfsynth/internal/schedule"
	"mfsynth/internal/storage"
	"mfsynth/internal/wear"
)

// --- Table 1 ---------------------------------------------------------

func benchTable1(b *testing.B, name string, policy int, mode place.Mode) {
	b.Helper()
	c, err := assays.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	var row *report.Row
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		row, err = report.Table1Row(c, policy, report.RowOptions{Mode: mode})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(row.VsTmax), "vs_tmax")
	b.ReportMetric(float64(row.Vs1Max), "vs1max")
	b.ReportMetric(float64(row.Vs2Max), "vs2max")
	b.ReportMetric(float64(row.OurValves), "valves")
	b.ReportMetric(row.Imp1, "imp1_%")
	b.ReportMetric(row.Imp2, "imp2_%")
}

func BenchmarkTable1_PCR_P1(b *testing.B) { benchTable1(b, "PCR", 1, place.RollingHorizon) }
func BenchmarkTable1_PCR_P2(b *testing.B) { benchTable1(b, "PCR", 2, place.RollingHorizon) }
func BenchmarkTable1_PCR_P3(b *testing.B) { benchTable1(b, "PCR", 3, place.RollingHorizon) }

func BenchmarkTable1_MixingTree_P1(b *testing.B) { benchTable1(b, "MixingTree", 1, place.Greedy) }
func BenchmarkTable1_MixingTree_P2(b *testing.B) { benchTable1(b, "MixingTree", 2, place.Greedy) }
func BenchmarkTable1_MixingTree_P3(b *testing.B) { benchTable1(b, "MixingTree", 3, place.Greedy) }

func BenchmarkTable1_InterpolatingDilution_P1(b *testing.B) {
	benchTable1(b, "InterpolatingDilution", 1, place.Greedy)
}
func BenchmarkTable1_InterpolatingDilution_P2(b *testing.B) {
	benchTable1(b, "InterpolatingDilution", 2, place.Greedy)
}
func BenchmarkTable1_InterpolatingDilution_P3(b *testing.B) {
	benchTable1(b, "InterpolatingDilution", 3, place.Greedy)
}

func BenchmarkTable1_ExponentialDilution_P1(b *testing.B) {
	benchTable1(b, "ExponentialDilution", 1, place.Greedy)
}
func BenchmarkTable1_ExponentialDilution_P2(b *testing.B) {
	benchTable1(b, "ExponentialDilution", 2, place.Greedy)
}
func BenchmarkTable1_ExponentialDilution_P3(b *testing.B) {
	benchTable1(b, "ExponentialDilution", 3, place.Greedy)
}

// --- Figures ----------------------------------------------------------

// BenchmarkFig2DedicatedMixer regenerates the dedicated-mixer actuation
// table of Fig. 2(f).
func BenchmarkFig2DedicatedMixer(b *testing.B) {
	var f report.Fig2
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f = report.DedicatedMixer(2)
	}
	b.ReportMetric(float64(f.Max()), "max_actuations")
	b.ReportMetric(float64(f.NumValves()), "valves")
}

// BenchmarkFig3RoleChanging regenerates the valve-role-changing mixer
// comparison of Fig. 3 (largest count 80 → 48 with 8 valves).
func BenchmarkFig3RoleChanging(b *testing.B) {
	var f report.Fig3
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f = report.RoleChangingMixer(2)
	}
	b.ReportMetric(float64(f.Max()), "max_actuations")
	b.ReportMetric(float64(f.NumValves()), "valves")
}

// BenchmarkFig5OrientationShare exercises the shape catalog behind Fig. 5:
// dynamic mixers of different orientations sharing the same area.
func BenchmarkFig5OrientationShare(b *testing.B) {
	n := 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, v := range assays.MixerSizes {
			n += len(ShapesForVolume(v))
		}
	}
	b.ReportMetric(float64(n/b.N), "shapes")
}

// BenchmarkFig7StorageTimeline builds the in situ storage timeline of
// Fig. 7 on the PCR schedule.
func BenchmarkFig7StorageTimeline(b *testing.B) {
	c := assays.PCR()
	res, err := schedule.List(c.Assay, schedule.Options{})
	if err != nil {
		b.Fatal(err)
	}
	o5 := opByName(b, res, "o5")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tl := storage.NewTimeline(res, o5, 10)
		if tl == nil || tl.FreeAt(tl.Start) != 0 {
			b.Fatal("bad timeline")
		}
	}
}

// BenchmarkFig8StoragePassthrough measures routing through a storage with
// free space versus detouring around it once blocked (Fig. 8).
func BenchmarkFig8StoragePassthrough(b *testing.B) {
	bounds := grid.RectWH(0, 0, 10, 10)
	sk := grid.RectWH(3, 3, 4, 4)
	src := []grid.Point{{X: 0, Y: 5}}
	dst := []grid.Point{{X: 9, Y: 5}}
	var through, detour int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := route.New(bounds)
		r.AddStorage(7, sk)
		p1, err := r.Route(src, dst)
		if err != nil {
			b.Fatal(err)
		}
		through = len(p1)
		r.BlockStorage(7)
		p2, err := r.Route(src, dst)
		if err != nil {
			b.Fatal(err)
		}
		detour = len(p2)
	}
	b.ReportMetric(float64(through), "passthrough_len")
	b.ReportMetric(float64(detour), "detour_len")
}

// BenchmarkFig9PCRGantt regenerates the PCR p1 scheduling result.
func BenchmarkFig9PCRGantt(b *testing.B) {
	c := assays.PCR()
	b.ReportAllocs()
	var g string
	for i := 0; i < b.N; i++ {
		res, err := schedule.List(c.Assay, schedule.Options{
			Resources: schedule.Resources{Mixers: c.BaseMixers},
		})
		if err != nil {
			b.Fatal(err)
		}
		g = res.Gantt()
	}
	if len(g) == 0 {
		b.Fatal("empty gantt")
	}
}

// BenchmarkFig10Snapshots synthesizes PCR p1 and renders every snapshot.
func BenchmarkFig10Snapshots(b *testing.B) {
	c := assays.PCR()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Synthesize(c.Assay, core.Options{
			Policy: schedule.Resources{Mixers: c.BaseMixers},
			Place:  place.Config{Grid: c.GridSize},
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range res.SnapshotTimes() {
			if len(res.Snapshot(t)) == 0 {
				b.Fatal("empty snapshot")
			}
		}
	}
}

// --- Ablations --------------------------------------------------------

func benchAblationMode(b *testing.B, mode place.Mode) {
	c := assays.PCR()
	var vs1 int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Synthesize(c.Assay, core.Options{
			Policy: schedule.Resources{Mixers: c.BaseMixers},
			Place:  place.Config{Grid: c.GridSize, Mode: mode},
		})
		if err != nil {
			b.Fatal(err)
		}
		vs1 = res.VsMax1
	}
	b.ReportMetric(float64(vs1), "vs1max")
}

func BenchmarkAblationMapperRolling_PCR(b *testing.B) { benchAblationMode(b, place.RollingHorizon) }
func BenchmarkAblationMapperGreedy_PCR(b *testing.B)  { benchAblationMode(b, place.Greedy) }
func BenchmarkAblationMapperMonolithic_PCR(b *testing.B) {
	benchAblationMode(b, place.Monolithic)
}

// BenchmarkAblationNoStorageOverlap disables the c5 relaxation of
// constraint (12): storages may not overlap their parent devices.
func BenchmarkAblationNoStorageOverlap_PCR(b *testing.B) {
	c := assays.PCR()
	var valves int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Synthesize(c.Assay, core.Options{
			Policy: schedule.Resources{Mixers: c.BaseMixers},
			Place:  place.Config{Grid: c.GridSize, Mode: place.Greedy, NoStorageOverlap: true},
		})
		if err != nil {
			b.Fatal(err)
		}
		valves = res.UsedValves
	}
	b.ReportMetric(float64(valves), "valves")
}

// BenchmarkAblationNoPassthrough_PCR treats storages as routing obstacles
// (the Fig. 8(a) detour behaviour).
func BenchmarkAblationNoPassthrough_PCR(b *testing.B) {
	c := assays.PCR()
	var valves int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Synthesize(c.Assay, core.Options{
			Policy:                    schedule.Resources{Mixers: c.BaseMixers},
			Place:                     place.Config{Grid: c.GridSize, Mode: place.Greedy},
			DisableStoragePassthrough: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		valves = res.UsedValves
	}
	b.ReportMetric(float64(valves), "valves")
}

// BenchmarkAblationNoRoutingConvenient_PCR drops constraints (13)-(16).
func BenchmarkAblationNoRoutingConvenient_PCR(b *testing.B) {
	c := assays.PCR()
	var vs1 int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Synthesize(c.Assay, core.Options{
			Policy: schedule.Resources{Mixers: c.BaseMixers},
			Place:  place.Config{Grid: c.GridSize, Mode: place.Greedy, NoRoutingConvenient: true},
		})
		if err != nil {
			b.Fatal(err)
		}
		vs1 = res.VsMax1
	}
	b.ReportMetric(float64(vs1), "vs1max")
}

// --- Parallel engine --------------------------------------------------

// benchSynthesizeWorkers runs the full synthesis with a fixed worker count;
// the reported metrics are identical for every count (the deterministic
// merge contract), only ns/op changes with the core count.
func benchSynthesizeWorkers(b *testing.B, name string, mode place.Mode, workers int) {
	b.Helper()
	c, err := assays.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	des, err := baseline.Traditional(c, 1, baseline.DefaultCost)
	if err != nil {
		b.Fatal(err)
	}
	var vs1 int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Synthesize(c.Assay, core.Options{
			Policy:  schedule.Resources{Mixers: des.Mixers, Detectors: c.Detectors},
			Place:   place.Config{Grid: c.GridSize, Mode: mode},
			Workers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		vs1 = res.VsMax1
	}
	b.ReportMetric(float64(vs1), "vs1max")
}

// BenchmarkParallelGreedy_MixingTree exercises the concurrent multi-start
// greedy fan-out (32 variants per batch) at several worker counts.
func BenchmarkParallelGreedy_MixingTree(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchSynthesizeWorkers(b, "MixingTree", place.Greedy, w)
		})
	}
}

// BenchmarkParallelRolling_PCR exercises the parallel branch-and-bound
// relaxation solves of the rolling-horizon ILP batches.
func BenchmarkParallelRolling_PCR(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchSynthesizeWorkers(b, "PCR", place.RollingHorizon, w)
		})
	}
}

// BenchmarkParallelTable1Greedy evaluates all twelve Table 1 cells
// (greedy mapper) with the cell-level fan-out of report.Table1.
func BenchmarkParallelTable1Greedy(b *testing.B) {
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rows, err := report.Table1(report.RowOptions{Mode: place.Greedy, Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != 12 {
					b.Fatalf("%d rows", len(rows))
				}
			}
		})
	}
}

// --- Extensions -------------------------------------------------------

// BenchmarkExtensionSpeedup_PCR runs the execution-speedup experiment
// (paper §5 future work) on PCR p1.
func BenchmarkExtensionSpeedup_PCR(b *testing.B) {
	c := assays.PCR()
	var factor float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := report.ExecutionSpeedup(c, 1)
		if err != nil {
			b.Fatal(err)
		}
		factor = s.Factor
	}
	b.ReportMetric(factor, "speedup_x")
}

// BenchmarkExtensionWear_PCR computes the service-life gain of the dynamic
// chip over the traditional design.
func BenchmarkExtensionWear_PCR(b *testing.B) {
	c := assays.PCR()
	des, err := baseline.Traditional(c, 1, baseline.DefaultCost)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Synthesize(c.Assay, core.Options{
		Policy: schedule.Resources{Mixers: des.Mixers},
		Place:  place.Config{Grid: c.GridSize, Mode: place.Greedy},
	})
	if err != nil {
		b.Fatal(err)
	}
	model := wear.Model{RatedActuations: 4000}
	var gain float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		trad := wear.TraditionalProfile(des, baseline.DefaultCost)
		ours := wear.ChipCounts(res.ChipAt(-1, 1))
		gain = float64(model.RunsToFirstWearout(ours)) / float64(model.RunsToFirstWearout(trad))
	}
	b.ReportMetric(gain, "life_gain_x")
}

// BenchmarkExtensionControl_PCR measures the control-pin analysis.
func BenchmarkExtensionControl_PCR(b *testing.B) {
	c := assays.PCR()
	res, err := core.Synthesize(c.Assay, core.Options{
		Policy: schedule.Resources{Mixers: c.BaseMixers},
		Place:  place.Config{Grid: c.GridSize, Mode: place.Greedy},
	})
	if err != nil {
		b.Fatal(err)
	}
	var pins int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pins = control.Analyze(res).Pins
	}
	b.ReportMetric(float64(pins), "pins")
}

func opByName(b *testing.B, res *schedule.Result, name string) int {
	b.Helper()
	for _, op := range res.Assay.Ops() {
		if op.Name == name {
			return op.ID
		}
	}
	b.Fatalf("op %q not found", name)
	return -1
}
