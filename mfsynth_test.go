package mfsynth

import (
	"strings"
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	c := PCR()
	res, err := Synthesize(c.Assay, Options{
		Policy: Resources{Mixers: c.BaseMixers},
		Place:  PlaceConfig{Grid: c.GridSize, Mode: GreedyPlace},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.VsPump1 != 40 {
		t.Errorf("VsPump1 = %d, want 40", res.VsPump1)
	}
	if !strings.Contains(res.String(), "PCR") {
		t.Errorf("String = %q", res.String())
	}
}

func TestFacadeAssayRoundTrip(t *testing.T) {
	a := NewAssay("rt")
	i1 := a.Add(Input, "i1", 0)
	i2 := a.Add(Input, "i2", 0)
	m := a.Add(Mix, "m", 6)
	a.Connect(i1, m, 2)
	a.Connect(i2, m, 2)
	var sb strings.Builder
	if err := WriteAssay(&sb, a); err != nil {
		t.Fatal(err)
	}
	got, err := ParseAssay(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "rt" || got.Len() != 3 {
		t.Fatalf("round trip: %q with %d ops", got.Name, got.Len())
	}
}

func TestFacadeCases(t *testing.T) {
	if len(CaseNames()) != 4 {
		t.Fatalf("CaseNames = %v", CaseNames())
	}
	for _, name := range CaseNames() {
		c, err := CaseByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Assay.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := CaseByName("bogus"); err == nil {
		t.Error("bogus case accepted")
	}
}

func TestFacadeTraditionalAndPolicies(t *testing.T) {
	c := PCR()
	pols := Policies(c, 3)
	if len(pols) != 3 {
		t.Fatalf("Policies = %v", pols)
	}
	des, err := Traditional(c, 1, DefaultCost)
	if err != nil {
		t.Fatal(err)
	}
	if des.VsTmax != 160 {
		t.Errorf("VsTmax = %d, want 160", des.VsTmax)
	}
}

func TestFacadeShapes(t *testing.T) {
	shapes := ShapesForVolume(8)
	if len(shapes) != 3 {
		t.Fatalf("ShapesForVolume(8) = %v", shapes)
	}
	for _, s := range shapes {
		if s.Volume() != 8 {
			t.Errorf("shape %v volume %d", s, s.Volume())
		}
	}
}

func TestFacadeEvaluateRow(t *testing.T) {
	c := PCR()
	row, err := EvaluateRow(c, 1, Table1RowOptions{Mode: GreedyPlace})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTable1([]*Table1Row{row})
	if !strings.Contains(out, "PCR") || !strings.Contains(out, "1-0-4-2") {
		t.Errorf("render:\n%s", out)
	}
	i1, i2, _ := Table1Averages([]*Table1Row{row})
	if i1 <= 0 || i2 <= i1 {
		t.Errorf("averages: %v %v", i1, i2)
	}
}

func TestFacadeSerialDilutionAndSchedule(t *testing.T) {
	a := SerialDilution("sd", []int{8, 6, 4})
	res, err := Schedule(a, ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Error("empty schedule")
	}
	if !strings.Contains(res.Gantt(), "=") {
		t.Error("gantt missing bars")
	}
}
