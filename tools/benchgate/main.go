// Command benchgate compares a fresh performance snapshot against the
// committed baseline and fails on regressions, so the perf trajectory in
// BENCH_table1.json / BENCH_micro.txt is enforced rather than decorative.
//
// Two comparisons run, either of which can be omitted:
//
//	benchgate -old BENCH_table1.json -new fresh.json \
//	          -micro-old BENCH_micro.txt -micro-new fresh_micro.txt
//
// Table 1 snapshots (-old/-new, written by `mfbench -table1 -json`):
//
//   - the synthesis results themselves — every row (minus wall-clock
//     fields) and the improvement averages — must match EXACTLY: a perf
//     change that moves a result is a correctness change in disguise;
//   - gated work counters (simplex pivots, Dijkstra pops by default) must
//     not grow by more than -threshold (default 10%). Counters are
//     work-proportional, so they regress on a faster machine too — unlike
//     wall-clock, which is reported but never gated.
//
// Micro snapshots (-micro-old/-micro-new, raw `go test -bench -benchmem`
// output): allocs/op per benchmark must not grow by more than -threshold.
// Times are machine-dependent and only reported; allocation counts are a
// property of the code.
//
// Ablation gate (-ablation, written by `mfbench -ablation -ablation-out`):
// the simulated-annealing backend must produce a result on every instance
// of the sweep, and on every instance where the exact ILP also completed,
// the anneal's vs_max1 must stay within -threshold (default 10%) of the
// ILP's — the quality bar of the anytime portfolio's stochastic rung.
//
// Fleet gate (-fleet, written by `mfbench -fleet -fleet-out`): the
// closed-loop wear controller must complete strictly more assays before
// the first chip death than the static mapping on the same seeded
// campaign, must actually have re-synthesized, and — when -fleet-baseline
// names the committed snapshot — must reproduce its fingerprint
// bit-identically (the campaign is a pure function of its seed).
//
// Overhead gate (-overhead, raw output of the BenchmarkObsOverhead suite
// in internal/obs/export): the "on" variant (live tracing, progress bus,
// draining subscriber, scrape per run) must not run more than
// -overhead-max (default 2%) slower than "off" (nil trace). This is the
// only wall-clock-based gate — on/off run interleaved in one process on
// one machine, so the ratio is meaningful where absolute times are not.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"strconv"
	"strings"
)

// table1Snapshot mirrors the parts of mfbench's -json layout the gate
// reads. Rows stay raw so new fields are compared without code changes.
type table1Snapshot struct {
	WallSeconds float64                  `json:"wall_seconds"`
	Rows        []map[string]interface{} `json:"rows"`
	Averages    map[string]interface{}   `json:"averages"`
	Metrics     struct {
		Counters map[string]int64 `json:"counters"`
	} `json:"metrics"`
}

// wallClockRowFields are per-row fields that legitimately differ between
// runs of identical code.
var wallClockRowFields = []string{"runtime_seconds", "phase_seconds"}

func loadTable1(path string) (*table1Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s table1Snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// compareTable1 appends failure messages to *fails and prints an
// informational summary either way.
func compareTable1(oldPath, newPath string, gated []string, threshold float64, fails *[]string) error {
	oldS, err := loadTable1(oldPath)
	if err != nil {
		return err
	}
	newS, err := loadTable1(newPath)
	if err != nil {
		return err
	}

	if len(oldS.Rows) != len(newS.Rows) {
		*fails = append(*fails, fmt.Sprintf("table1: %d rows, baseline has %d", len(newS.Rows), len(oldS.Rows)))
	} else {
		for i := range oldS.Rows {
			a, b := stripFields(oldS.Rows[i]), stripFields(newS.Rows[i])
			if !reflect.DeepEqual(a, b) {
				*fails = append(*fails, fmt.Sprintf("table1 row %d (%v p%v): results drifted from baseline\n  old: %v\n  new: %v",
					i, a["case"], a["policy"], a, b))
			}
		}
	}
	if !reflect.DeepEqual(oldS.Averages, newS.Averages) {
		*fails = append(*fails, fmt.Sprintf("table1 averages drifted: old %v, new %v", oldS.Averages, newS.Averages))
	}

	fmt.Printf("wall-clock: %.1fs -> %.1fs (informational)\n", oldS.WallSeconds, newS.WallSeconds)
	for _, name := range gated {
		o, okO := oldS.Metrics.Counters[name]
		n, okN := newS.Metrics.Counters[name]
		if !okO || !okN {
			*fails = append(*fails, fmt.Sprintf("counter %s missing (old %v, new %v)", name, okO, okN))
			continue
		}
		fmt.Printf("counter %-24s %12d -> %12d (%+.1f%%)\n", name, o, n, pctChange(o, n))
		if float64(n) > float64(o)*(1+threshold) {
			*fails = append(*fails, fmt.Sprintf("counter %s regressed beyond %.0f%%: %d -> %d (%+.1f%%)",
				name, threshold*100, o, n, pctChange(o, n)))
		}
	}
	return nil
}

func stripFields(row map[string]interface{}) map[string]interface{} {
	out := make(map[string]interface{}, len(row))
	for k, v := range row {
		out[k] = v
	}
	for _, k := range wallClockRowFields {
		delete(out, k)
	}
	return out
}

func pctChange(o, n int64) float64 {
	if o == 0 {
		return 0
	}
	return 100 * float64(n-o) / float64(o)
}

// microStats is one benchmark's averaged -benchmem readings.
type microStats struct {
	nsPerOp, allocsPerOp, bytesPerOp float64
	samples                          int
}

// parseMicro reads raw `go test -bench -benchmem` output, averaging over
// repeated -count runs of the same benchmark.
func parseMicro(path string) (map[string]*microStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]*microStats{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// Benchmark lines: Name N t ns/op [b B/op a allocs/op]
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") || fields[3] != "ns/op" {
			continue
		}
		// Strip the -cpu suffix (BenchmarkX-8) so counts are stable across
		// machines.
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		st := out[name]
		if st == nil {
			st = &microStats{}
			out[name] = st
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		st.nsPerOp += ns
		st.samples++
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				st.bytesPerOp += v
			case "allocs/op":
				st.allocsPerOp += v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, st := range out {
		st.nsPerOp /= float64(st.samples)
		st.bytesPerOp /= float64(st.samples)
		st.allocsPerOp /= float64(st.samples)
	}
	return out, nil
}

func compareMicro(oldPath, newPath string, threshold float64, fails *[]string) error {
	oldM, err := parseMicro(oldPath)
	if err != nil {
		return err
	}
	newM, err := parseMicro(newPath)
	if err != nil {
		return err
	}
	for name, o := range oldM {
		n, ok := newM[name]
		if !ok {
			*fails = append(*fails, fmt.Sprintf("micro %s: present in baseline, missing from fresh run", name))
			continue
		}
		fmt.Printf("micro %-36s %10.0f ns/op -> %10.0f   %6.1f allocs/op -> %6.1f\n",
			name, o.nsPerOp, n.nsPerOp, o.allocsPerOp, n.allocsPerOp)
		if n.allocsPerOp > o.allocsPerOp*(1+threshold)+0.5 {
			*fails = append(*fails, fmt.Sprintf("micro %s: allocs/op regressed beyond %.0f%%: %.1f -> %.1f",
				name, threshold*100, o.allocsPerOp, n.allocsPerOp))
		}
	}
	return nil
}

// ablationSnapshot mirrors the parts of mfbench's -ablation-out layout
// the gate reads (see BENCH_ablation.json).
type ablationSnapshot struct {
	DeadlineSeconds float64 `json:"deadline_seconds"`
	Rows            []struct {
		Instance string         `json:"instance"`
		Cells    []ablationCell `json:"cells"`
	} `json:"rows"`
}

type ablationCell struct {
	Backend  string  `json:"backend"`
	Ok       bool    `json:"ok"`
	Err      string  `json:"err,omitempty"`
	Complete bool    `json:"complete"`
	VsMax1   int     `json:"vs_max1"`
	Seconds  float64 `json:"seconds"`
}

// compareAblation gates the anytime-portfolio quality in an ablation
// snapshot: the anneal backend must succeed on every instance (it is the
// portfolio's rescue rung — an instance it cannot map undermines the
// anytime contract), and wherever the exact ILP also produced a complete
// mapping, the anneal's objective must stay within -threshold of it. A
// snapshot with no comparable instance passes vacuously, which would hide
// a broken sweep, so at least one ilp/anneal pair is required.
func compareAblation(path string, threshold float64, fails *[]string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var s ablationSnapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(s.Rows) == 0 {
		*fails = append(*fails, "ablation: snapshot has no rows")
		return nil
	}
	compared := 0
	for _, row := range s.Rows {
		var ilp, ann *ablationCell
		for i := range row.Cells {
			switch row.Cells[i].Backend {
			case "ilp":
				ilp = &row.Cells[i]
			case "anneal":
				ann = &row.Cells[i]
			}
		}
		if ann == nil || !ann.Ok {
			why := "cell missing"
			if ann != nil {
				why = ann.Err
			}
			*fails = append(*fails, fmt.Sprintf("ablation %s: anneal backend failed (%s)", row.Instance, why))
			continue
		}
		if ilp == nil || !ilp.Ok || !ilp.Complete || !ann.Complete {
			fmt.Printf("ablation %-18s anneal vs_max1 %4d (ilp not comparable)\n", row.Instance, ann.VsMax1)
			continue
		}
		compared++
		fmt.Printf("ablation %-18s ilp vs_max1 %4d (%5.1fs)  anneal %4d (%5.1fs)\n",
			row.Instance, ilp.VsMax1, ilp.Seconds, ann.VsMax1, ann.Seconds)
		if float64(ann.VsMax1) > float64(ilp.VsMax1)*(1+threshold) {
			*fails = append(*fails, fmt.Sprintf("ablation %s: anneal vs_max1 %d exceeds ilp %d by more than %.0f%%",
				row.Instance, ann.VsMax1, ilp.VsMax1, threshold*100))
		}
	}
	if compared == 0 {
		*fails = append(*fails, "ablation: no instance where both ilp and anneal completed — the quality gate never engaged")
	}
	return nil
}

// fleetSnapshot mirrors the parts of mfbench's -fleet-out layout the gate
// reads (see BENCH_fleet.json).
type fleetSnapshot struct {
	Seed        int64     `json:"seed"`
	Static      fleetMode `json:"static"`
	Closed      fleetMode `json:"closed"`
	ExtensionPc float64   `json:"lifetime_extension_pct"`
	Fingerprint string    `json:"fingerprint"`
}

type fleetMode struct {
	AssaysBeforeFirstDeath int     `json:"assays_before_first_death"`
	TotalAssays            int     `json:"total_assays"`
	FirstDeathRound        int     `json:"first_death_round"`
	MeanRuns               float64 `json:"mean_runs_to_first_wearout"`
	Resyntheses            int     `json:"resyntheses"`
}

// compareFleet gates the closed-loop wear controller in a fleet campaign
// snapshot: the closed loop must complete strictly more assays before the
// first chip death than the static mapping on the same seeded campaign —
// otherwise the whole dynamic-device re-mapping machinery buys nothing —
// and it must actually have re-synthesized (a campaign where the control
// loop never engaged passes the first check vacuously). The static mode
// must have died within the campaign; if it survived, the campaign was
// not stressing wear and the comparison is meaningless. When a baseline
// snapshot is given, the fresh fingerprint must match it bit-identically:
// the campaign is a pure function of its seed, so any drift is a
// determinism regression.
func compareFleet(path, baselinePath string, fails *[]string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var s fleetSnapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("fleet (seed %d): static %d assays before first death, closed-loop %d (%+.1f%%), %d re-syntheses\n",
		s.Seed, s.Static.AssaysBeforeFirstDeath, s.Closed.AssaysBeforeFirstDeath,
		s.ExtensionPc, s.Closed.Resyntheses)
	if s.Static.FirstDeathRound == 0 {
		*fails = append(*fails, "fleet: static mode never died — the campaign does not stress wear, so the comparison is vacuous")
	}
	if s.Closed.AssaysBeforeFirstDeath <= s.Static.AssaysBeforeFirstDeath {
		*fails = append(*fails, fmt.Sprintf("fleet: closed loop did not outlive static (%d <= %d assays before first death)",
			s.Closed.AssaysBeforeFirstDeath, s.Static.AssaysBeforeFirstDeath))
	}
	if s.Closed.Resyntheses == 0 {
		*fails = append(*fails, "fleet: closed loop never re-synthesized — the control loop did not engage")
	}
	if s.Fingerprint == "" {
		*fails = append(*fails, "fleet: snapshot has no fingerprint")
	}
	if baselinePath != "" {
		braw, err := os.ReadFile(baselinePath)
		if err != nil {
			return err
		}
		var b fleetSnapshot
		if err := json.Unmarshal(braw, &b); err != nil {
			return fmt.Errorf("%s: %w", baselinePath, err)
		}
		if b.Fingerprint != s.Fingerprint {
			*fails = append(*fails, fmt.Sprintf("fleet: fingerprint drifted from baseline (determinism regression): baseline %s, fresh %s",
				b.Fingerprint, s.Fingerprint))
		} else {
			fmt.Printf("fleet fingerprint matches baseline (%.12s…)\n", s.Fingerprint)
		}
	}
	return nil
}

// compareOverhead parses BenchmarkObsOverhead/{off,on} readings from a
// `go test -bench` output file and gates the on/off wall-clock ratio.
func compareOverhead(path string, max float64, fails *[]string) error {
	stats, err := parseMicro(path)
	if err != nil {
		return err
	}
	off := stats["BenchmarkObsOverhead/off"]
	on := stats["BenchmarkObsOverhead/on"]
	if off == nil || on == nil {
		return fmt.Errorf("%s: need both BenchmarkObsOverhead/off and /on readings (have %d benchmarks)", path, len(stats))
	}
	delta := on.nsPerOp/off.nsPerOp - 1
	fmt.Printf("obs overhead: off %.0f ns/op, on %.0f ns/op (%+.2f%%, max +%.1f%%)\n",
		off.nsPerOp, on.nsPerOp, delta*100, max*100)
	if delta > max {
		*fails = append(*fails, fmt.Sprintf("observability overhead %.2f%% exceeds %.1f%%", delta*100, max*100))
	}
	return nil
}

func main() {
	oldT := flag.String("old", "", "baseline Table 1 snapshot (mfbench -table1 -json)")
	newT := flag.String("new", "", "fresh Table 1 snapshot to gate")
	oldM := flag.String("micro-old", "", "baseline micro-benchmark output (go test -bench -benchmem)")
	newM := flag.String("micro-new", "", "fresh micro-benchmark output to gate")
	ablation := flag.String("ablation", "", "ablation snapshot to gate (mfbench -ablation -ablation-out): anneal must succeed everywhere and stay within -threshold of a completed ilp's vs_max1")
	fleet := flag.String("fleet", "", "fleet campaign snapshot to gate (mfbench -fleet -fleet-out): closed loop must strictly outlive static")
	fleetBase := flag.String("fleet-baseline", "", "committed fleet snapshot the fresh -fleet fingerprint must match bit-identically")
	overhead := flag.String("overhead", "", "BenchmarkObsOverhead output to gate (go test -bench ObsOverhead)")
	overheadMax := flag.Float64("overhead-max", 0.02, "allowed fractional obs-on/obs-off slowdown for -overhead")
	threshold := flag.Float64("threshold", 0.10, "allowed fractional growth in gated counters and allocs/op")
	counters := flag.String("counters", "milp_simplex_pivots_total,route_dijkstra_pops_total", "comma-separated work counters to gate")
	flag.Parse()

	var fails []string
	if *oldT != "" && *newT != "" {
		gated := strings.Split(*counters, ",")
		if err := compareTable1(*oldT, *newT, gated, *threshold, &fails); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
	}
	if *oldM != "" && *newM != "" {
		if err := compareMicro(*oldM, *newM, *threshold, &fails); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
	}
	if *ablation != "" {
		if err := compareAblation(*ablation, *threshold, &fails); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
	}
	if *fleet != "" {
		if err := compareFleet(*fleet, *fleetBase, &fails); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
	}
	if *overhead != "" {
		if err := compareOverhead(*overhead, *overheadMax, &fails); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
	}
	if (*oldT == "") != (*newT == "") || (*oldM == "") != (*newM == "") {
		fmt.Fprintln(os.Stderr, "benchgate: -old/-new and -micro-old/-micro-new must be given in pairs")
		os.Exit(2)
	}
	if *fleetBase != "" && *fleet == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -fleet-baseline requires -fleet")
		os.Exit(2)
	}
	if *oldT == "" && *oldM == "" && *overhead == "" && *ablation == "" && *fleet == "" {
		fmt.Fprintln(os.Stderr, "benchgate: nothing to compare (pass -old/-new, -micro-old/-micro-new, -ablation, -fleet and/or -overhead)")
		os.Exit(2)
	}
	if len(fails) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchgate: %d regression(s):\n", len(fails))
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "  -", f)
		}
		os.Exit(1)
	}
	fmt.Println("benchgate: ok")
}
