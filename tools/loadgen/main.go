// Command loadgen drives a running mfserved instance with a controlled
// synthesis workload and checks the service-tier invariants from the
// outside:
//
//   - every submission is eventually answered: 429/503 sheds are
//     retried honoring the server's Retry-After hint, with capped
//     exponential backoff plus jitter when the hint is absent;
//   - client-side retry counts reconcile exactly with the server's
//     shed counters (every retry was caused by an observed shed);
//   - no job fails or is lost;
//   - in-flight synthesis never exceeds the worker budget (peak_running);
//   - identical requests are never synthesized twice — the coalesce and
//     cache counters absorb the entire duplicate ratio;
//   - returned result fingerprints are consistent per request and, for a
//     sampled subset, bit-identical to a single-shot in-process run of
//     the same input.
//
// Usage:
//
//	mfserved -addr 127.0.0.1:8547 &
//	loadgen -addr http://127.0.0.1:8547 -jobs 2000 -dup 0.5
//
// Exit status 0 when every check holds, 1 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mfsynth/internal/core"
	"mfsynth/internal/graph"
	"mfsynth/internal/place"
	"mfsynth/internal/schedule"
	"mfsynth/internal/serve"
	"mfsynth/internal/verify"
)

// loadAssay is the request body assay: tiny, so synthesis cost is a few
// milliseconds and the workload stresses the service, not the engine.
const loadAssay = "assay loadgen\n" +
	"op s1 input\nop s2 input\nop m1 mix 3\nop o1 output\n" +
	"edge s1 m1 4\nedge s2 m1 4\nedge m1 o1 8\n"

// requestBody builds the submission for one distinct request key. The
// pump actuation count varies the request (and result) fingerprint at
// identical synthesis cost.
func requestBody(key int) []byte {
	b, _ := json.Marshal(map[string]any{
		"assay": loadAssay,
		"options": map[string]any{
			"mode":            "greedy",
			"grid":            10,
			"mixers":          map[string]int{"8": 1},
			"pump_actuations": 10 + key,
		},
	})
	return b
}

// oracleFingerprint runs the same request single-shot through the engine,
// mirroring how the server resolves it.
func oracleFingerprint(key int) (string, error) {
	a := graph.New("loadgen")
	s1 := a.Add(graph.Input, "s1", 0)
	s2 := a.Add(graph.Input, "s2", 0)
	m1 := a.Add(graph.Mix, "m1", 3)
	o1 := a.Add(graph.Output, "o1", 0)
	a.Connect(s1, m1, 4)
	a.Connect(s2, m1, 4)
	a.Connect(m1, o1, 8)
	res, err := core.Synthesize(a, core.Options{
		Policy:         schedule.Resources{Mixers: map[int]int{8: 1}},
		Place:          place.Config{Grid: 10, Mode: place.Greedy},
		PumpActuations: 10 + key,
	})
	if err != nil {
		return "", err
	}
	return verify.Fingerprint(res), nil
}

type submitResponse struct {
	serve.JobView
	Via string `json:"via"`
}

// Retry policy for shed submissions (429 rate-limit/queue-full, 503
// draining). The server's Retry-After hint wins when present; otherwise
// the delay doubles per attempt from retryBase up to retryCap. Either
// way ±25% jitter keeps a shed worker fleet from re-converging on the
// same instant.
const (
	retryBase   = 10 * time.Millisecond
	retryCap    = 2 * time.Second
	maxAttempts = 25
)

// retried429 and retried503 count shed-and-retried submissions by
// status, for the final report and for reconciling against the server's
// own shed counters.
var retried429, retried503 atomic.Int64

// backoff returns the sleep before retry `attempt` (0-based) given the
// shed response's Retry-After header (may be empty or malformed).
func backoff(attempt int, retryAfter string, rng *rand.Rand) time.Duration {
	d := retryCap
	if attempt < 20 { // beyond 2^20·base the shift alone exceeds any sane cap
		if e := retryBase << attempt; e < retryCap {
			d = e
		}
	}
	if s, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && s > 0 {
		d = time.Duration(s) * time.Second
		if d > retryCap {
			d = retryCap
		}
	}
	j := int64(d / 4)
	return d - time.Duration(j) + time.Duration(rng.Int63n(2*j+1))
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")

	var (
		addr        = flag.String("addr", "http://127.0.0.1:8547", "mfserved base URL")
		jobs        = flag.Int("jobs", 2000, "total submissions")
		dup         = flag.Float64("dup", 0.5, "duplicate ratio (0 ≤ dup < 1): fraction of submissions repeating an earlier request")
		concurrency = flag.Int("concurrency", 64, "concurrent submitting clients")
		seed        = flag.Int64("seed", 1, "shuffle seed for the submission order")
		oracle      = flag.Int("oracle", 10, "requests to re-run single-shot in-process and compare fingerprints (0 = skip)")
	)
	flag.Parse()
	if *dup < 0 || *dup >= 1 || *jobs < 1 {
		log.Fatal("want -jobs >= 1 and 0 <= -dup < 1")
	}
	// Accept a bare host:port (as printed by mfserved's listening line).
	if !strings.Contains(*addr, "://") {
		*addr = "http://" + *addr
	}

	unique := *jobs - int(float64(*jobs)**dup)
	order := make([]int, 0, *jobs)
	for i := 0; i < *jobs; i++ {
		order = append(order, i%unique) // keys 0..unique-1, extras are the duplicates
	}
	rng := rand.New(rand.NewSource(*seed))
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

	before, err := getStats(*addr)
	if err != nil {
		log.Fatalf("cannot reach %s: %v", *addr, err)
	}

	type reply struct {
		key int
		fp  string
		via string
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		replies = make([]reply, 0, *jobs)
		fails   []string
	)
	fail := func(format string, args ...any) {
		mu.Lock()
		fails = append(fails, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	work := make(chan int)
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := fmt.Sprintf("loadgen-%d", w)
			wrng := rand.New(rand.NewSource(*seed + int64(w)*7919))
			for key := range work {
				fp, via, err := submitAndWait(*addr, client, key, wrng)
				if err != nil {
					fail("request %d: %v", key, err)
					continue
				}
				mu.Lock()
				replies = append(replies, reply{key: key, fp: fp, via: via})
				mu.Unlock()
			}
		}(w)
	}
	for _, key := range order {
		work <- key
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	after, err := getStats(*addr)
	if err != nil {
		log.Fatal(err)
	}

	// Per-request fingerprint consistency across fresh, coalesced and
	// cached paths.
	byKey := map[int]string{}
	viaCount := map[string]int{}
	for _, r := range replies {
		if prev, ok := byKey[r.key]; ok && prev != r.fp {
			fail("request %d: fingerprints diverged: %s vs %s", r.key, prev, r.fp)
		}
		byKey[r.key] = r.fp
		viaCount[r.via]++
	}
	if len(replies) != *jobs {
		fail("only %d of %d submissions answered", len(replies), *jobs)
	}

	// Counter reconciliation against the duplicate ratio (deltas, so a
	// warm daemon works too: a cache warmed by an earlier run only moves
	// fresh synthesis into cache hits, never the other way).
	duplicates := *jobs - unique
	dFresh := after.Fresh - before.Fresh
	dCoal := after.Coalesced - before.Coalesced
	dCache := after.CacheHits - before.CacheHits
	if dFresh+dCoal+dCache != int64(*jobs) {
		fail("fresh %d + coalesced %d + cache hits %d != %d submissions", dFresh, dCoal, dCache, *jobs)
	}
	// The strict "never synthesized twice" identity needs every distinct
	// request to fit in the result cache; with a smaller cache, evicted
	// entries legitimately re-synthesize.
	if unique <= after.CacheCap {
		if dFresh > int64(unique) {
			fail("fresh %d > %d distinct requests: an identical request was synthesized twice", dFresh, unique)
		}
		if dCoal+dCache < int64(duplicates) {
			fail("coalesced %d + cache hits %d < %d duplicates", dCoal, dCache, duplicates)
		}
	} else {
		log.Printf("note: %d distinct requests exceed the cache capacity %d; skipping the strict duplicate-absorption checks", unique, after.CacheCap)
	}
	if d := after.Failed - before.Failed; d != 0 {
		fail("%d jobs failed", d)
	}
	if d := after.Cancelled - before.Cancelled; d != 0 {
		fail("%d jobs cancelled", d)
	}
	if after.PeakRunning > after.Workers {
		fail("peak running %d exceeds worker budget %d", after.PeakRunning, after.Workers)
	}

	// Every client-side retry was provoked by exactly one observed shed,
	// so the tallies must reconcile with the server's shed counters.
	r429, r503 := retried429.Load(), retried503.Load()
	if dShed := (after.ShedQueueFull - before.ShedQueueFull) + (after.ShedRateLimited - before.ShedRateLimited); dShed != r429 {
		fail("client saw %d 429 sheds but the server counted %d", r429, dShed)
	}
	if dDrain := after.ShedDraining - before.ShedDraining; dDrain != r503 {
		fail("client saw %d 503 sheds but the server counted %d", r503, dDrain)
	}

	// Single-shot oracle: sampled responses are bit-identical to running
	// the same request directly through the engine.
	sample := *oracle
	if sample > unique {
		sample = unique
	}
	for i := 0; i < sample; i++ {
		key := (i * unique) / sample
		want, err := oracleFingerprint(key)
		if err != nil {
			log.Fatalf("oracle run %d: %v", key, err)
		}
		if byKey[key] != want {
			fail("request %d: service fingerprint %s != single-shot %s", key, byKey[key], want)
		}
	}

	fmt.Printf("loadgen: %d jobs (%d unique, %d duplicates) in %s — fresh %d, coalesced %d, cached %d, retries 429×%d 503×%d; peak running %d/%d; via: %v\n",
		*jobs, unique, duplicates, elapsed.Round(time.Millisecond),
		dFresh, dCoal, dCache, r429, r503, after.PeakRunning, after.Workers, viaCount)
	if len(fails) > 0 {
		for _, f := range fails {
			log.Print(f)
		}
		os.Exit(1)
	}
	fmt.Println("loadgen: all checks passed")
}

// submitAndWait posts one request, retrying 429/503 sheds with
// Retry-After-aware backoff, and waits for its terminal state; it
// returns the result fingerprint and the submit path.
func submitAndWait(base, client string, key int, rng *rand.Rand) (fp, via string, err error) {
	var sub submitResponse
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", strings.NewReader(string(requestBody(key))))
		if err != nil {
			return "", "", err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Client", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return "", "", err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return "", "", err
		}
		switch resp.StatusCode {
		case http.StatusAccepted, http.StatusOK:
			if err := json.Unmarshal(body, &sub); err != nil {
				return "", "", fmt.Errorf("bad submit response: %v", err)
			}
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			// Count the shed before the budget check so the client-side
			// tally reconciles with the server's shed counters even when
			// a request finally gives up.
			if resp.StatusCode == http.StatusTooManyRequests {
				retried429.Add(1)
			} else {
				retried503.Add(1)
			}
			if attempt >= maxAttempts {
				return "", "", fmt.Errorf("shed %d times in a row (last status %d)", attempt+1, resp.StatusCode)
			}
			time.Sleep(backoff(attempt, resp.Header.Get("Retry-After"), rng))
			continue
		default:
			return "", "", fmt.Errorf("submit status %d: %s", resp.StatusCode, body)
		}
		break
	}

	view := sub.JobView
	for !view.State.Terminal() {
		time.Sleep(5 * time.Millisecond)
		resp, err := http.Get(base + "/v1/jobs/" + sub.ID)
		if err != nil {
			return "", "", err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return "", "", err
		}
		if resp.StatusCode != http.StatusOK {
			return "", "", fmt.Errorf("poll status %d: %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &view); err != nil {
			return "", "", err
		}
	}
	if view.State != serve.StateDone || view.Result == nil {
		return "", "", fmt.Errorf("job %s ended %s: %+v", sub.ID, view.State, view.Error)
	}
	return view.Result.Fingerprint, sub.Via, nil
}

func getStats(base string) (serve.Stats, error) {
	var st serve.Stats
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("stats status %d", resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}
