// Command tracecheck validates observability artefacts. In its default
// mode it checks a Chrome trace_event JSON file produced by mfsynth
// -trace / mfbench -trace: it must parse, carry the four pipeline phase
// slices (schedule, place, route, sim) under a synthesize root, and —
// with -require-workers — show at least one per-worker track. With
// -progress it instead checks a live-progress JSONL log (mfsynth
// -progress-log / the /progress SSE payloads): sequence numbers must
// strictly increase, timestamps must not run backwards, every pipeline
// phase must appear, and within each B&B solve the node count must not
// shrink nor the bound gap widen. CI's tier-3 target runs both as the
// artefact smoke checks.
//
// Usage:
//
//	tracecheck [-require-workers] trace.json
//	tracecheck -progress progress.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
)

type event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   *float64       `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  *int           `json:"pid"`
	TID  *int           `json:"tid"`
	Args map[string]any `json:"args"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracecheck: ")
	requireWorkers := flag.Bool("require-workers", false, "fail unless a per-worker (wN) track is present")
	progress := flag.Bool("progress", false, "validate a live-progress JSONL log instead of a Chrome trace")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: tracecheck [-require-workers | -progress] file")
	}
	if *progress {
		checkProgress(flag.Arg(0))
		return
	}

	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	var trace struct {
		TraceEvents []event `json:"traceEvents"`
		Unit        string  `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		log.Fatalf("%s: not valid trace_event JSON: %v", flag.Arg(0), err)
	}

	slices := map[string]int{}
	workerTracks := 0
	for _, ev := range trace.TraceEvents {
		if ev.Name == "" || ev.Ph == "" || ev.TS == nil || ev.PID == nil || ev.TID == nil {
			log.Fatalf("event missing a required field (name/ph/ts/pid/tid): %+v", ev)
		}
		switch ev.Ph {
		case "X":
			if ev.Dur < 0 {
				log.Fatalf("slice %q has negative duration %g", ev.Name, ev.Dur)
			}
			slices[ev.Name]++
		case "M":
			if ev.Name == "thread_name" {
				if n, _ := ev.Args["name"].(string); len(n) >= 2 && n[0] == 'w' {
					workerTracks++
				}
			}
		case "i":
			// instants carry no duration; presence fields checked above
		default:
			log.Fatalf("unexpected event phase %q on %q", ev.Ph, ev.Name)
		}
	}

	phases := []string{"schedule", "place", "route", "sim"}
	missing := []string{}
	for _, p := range phases {
		if slices[p] == 0 {
			missing = append(missing, p)
		}
	}
	if len(missing) > 0 {
		log.Fatalf("missing phase slices %v (have %v)", missing, slices)
	}
	if slices["synthesize"] == 0 {
		log.Fatalf("no synthesize root slice (have %v)", slices)
	}
	if *requireWorkers && workerTracks == 0 {
		log.Fatal("no per-worker (wN) tracks in trace")
	}

	fmt.Printf("ok: %d slice names, %d synthesize run(s), %d worker track(s)\n",
		len(slices), slices["synthesize"], workerTracks)
}

// progressLine mirrors obs.Progress's wire format (kept in sync by the
// TestProgressJSONShape golden in internal/obs).
type progressLine struct {
	Seq   int64              `json:"seq"`
	AtUS  int64              `json:"at_us"`
	Phase string             `json:"phase"`
	MILP  *milpProgress      `json:"milp"`
	Done  bool               `json:"done"`
	Extra map[string]float64 `json:"phases"`
}

type milpProgress struct {
	Solve        int64   `json:"solve"`
	Nodes        int64   `json:"nodes"`
	HasIncumbent bool    `json:"has_incumbent"`
	Gap          float64 `json:"gap"`
}

// checkProgress validates a progress JSONL log: monotone sequencing,
// full phase coverage, and per-solve B&B invariants (nodes never shrink,
// the gap never widens once an incumbent exists).
func checkProgress(path string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	var (
		n          int
		prev       progressLine
		phasesSeen = map[string]bool{}
		lastNodes  = map[int64]int64{}
		lastGap    = map[int64]float64{}
		solves     = map[int64]bool{}
		done       bool
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var p progressLine
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			log.Fatalf("%s line %d: bad JSON: %v", path, n+1, err)
		}
		n++
		if n > 1 {
			if p.Seq <= prev.Seq {
				log.Fatalf("line %d: seq %d not above previous %d", n, p.Seq, prev.Seq)
			}
			if p.AtUS < prev.AtUS {
				log.Fatalf("line %d: at_us %d runs backwards from %d", n, p.AtUS, prev.AtUS)
			}
		}
		if p.Phase != "" {
			phasesSeen[p.Phase] = true
		}
		if p.MILP != nil {
			m := p.MILP
			solves[m.Solve] = true
			if last, ok := lastNodes[m.Solve]; ok && m.Nodes < last {
				log.Fatalf("line %d: solve %d node count shrank %d -> %d", n, m.Solve, last, m.Nodes)
			}
			lastNodes[m.Solve] = m.Nodes
			if m.HasIncumbent {
				if last, ok := lastGap[m.Solve]; ok && m.Gap > last+1e-9 {
					log.Fatalf("line %d: solve %d gap widened %g -> %g", n, m.Solve, last, m.Gap)
				}
				lastGap[m.Solve] = m.Gap
			}
		}
		done = p.Done
		prev = p
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if n == 0 {
		log.Fatalf("%s: no progress snapshots", path)
	}
	missing := []string{}
	for _, p := range []string{"schedule", "place", "route", "sim"} {
		if !phasesSeen[p] {
			missing = append(missing, p)
		}
	}
	if len(missing) > 0 {
		log.Fatalf("missing phases %v (saw %v)", missing, phasesSeen)
	}
	if !done {
		log.Fatal("log does not end with a done snapshot")
	}
	fmt.Printf("ok: %d snapshots, %d phase(s), %d B&B solve(s)\n", n, len(phasesSeen), len(solves))
}
