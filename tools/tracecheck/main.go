// Command tracecheck validates a Chrome trace_event JSON file produced by
// mfsynth -trace / mfbench -trace: it must parse, carry the four pipeline
// phase slices (schedule, place, route, sim) under a synthesize root, and —
// with -require-workers — show at least one per-worker track. CI's tier-3
// target runs it as the trace-artefact smoke check.
//
// Usage:
//
//	tracecheck [-require-workers] trace.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
)

type event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   *float64       `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  *int           `json:"pid"`
	TID  *int           `json:"tid"`
	Args map[string]any `json:"args"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracecheck: ")
	requireWorkers := flag.Bool("require-workers", false, "fail unless a per-worker (wN) track is present")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: tracecheck [-require-workers] trace.json")
	}

	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	var trace struct {
		TraceEvents []event `json:"traceEvents"`
		Unit        string  `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		log.Fatalf("%s: not valid trace_event JSON: %v", flag.Arg(0), err)
	}

	slices := map[string]int{}
	workerTracks := 0
	for _, ev := range trace.TraceEvents {
		if ev.Name == "" || ev.Ph == "" || ev.TS == nil || ev.PID == nil || ev.TID == nil {
			log.Fatalf("event missing a required field (name/ph/ts/pid/tid): %+v", ev)
		}
		switch ev.Ph {
		case "X":
			if ev.Dur < 0 {
				log.Fatalf("slice %q has negative duration %g", ev.Name, ev.Dur)
			}
			slices[ev.Name]++
		case "M":
			if ev.Name == "thread_name" {
				if n, _ := ev.Args["name"].(string); len(n) >= 2 && n[0] == 'w' {
					workerTracks++
				}
			}
		case "i":
			// instants carry no duration; presence fields checked above
		default:
			log.Fatalf("unexpected event phase %q on %q", ev.Ph, ev.Name)
		}
	}

	phases := []string{"schedule", "place", "route", "sim"}
	missing := []string{}
	for _, p := range phases {
		if slices[p] == 0 {
			missing = append(missing, p)
		}
	}
	if len(missing) > 0 {
		log.Fatalf("missing phase slices %v (have %v)", missing, slices)
	}
	if slices["synthesize"] == 0 {
		log.Fatalf("no synthesize root slice (have %v)", slices)
	}
	if *requireWorkers && workerTracks == 0 {
		log.Fatal("no per-worker (wN) tracks in trace")
	}

	fmt.Printf("ok: %d slice names, %d synthesize run(s), %d worker track(s)\n",
		len(slices), slices["synthesize"], workerTracks)
}
