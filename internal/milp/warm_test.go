package milp

import (
	"math"
	"testing"
)

// assertSameAnswer compares a warm solve against the cold reference. Both
// are exact searches over the same model, so they must agree on the status
// and on the proven optimum; the explored trees (and hence node counts and
// which alternate optimum becomes the incumbent) may differ where a
// relaxation has several optimal vertices, so those are not compared.
// Instead the warm incumbent is independently checked feasible in the
// model at its claimed objective.
func assertSameAnswer(t *testing.T, label string, seed int64, m *Model, cold, warm *Result) {
	t.Helper()
	if warm.Status != cold.Status {
		t.Fatalf("%s seed %d: status %v, cold %v", label, seed, warm.Status, cold.Status)
	}
	if (warm.X == nil) != (cold.X == nil) {
		t.Fatalf("%s seed %d: incumbent presence %v vs %v", label, seed, warm.X != nil, cold.X != nil)
	}
	if cold.X != nil {
		if math.Abs(warm.Obj-cold.Obj) > 1e-6 {
			t.Fatalf("%s seed %d: obj %g, cold %g", label, seed, warm.Obj, cold.Obj)
		}
		ok, obj := m.CheckFeasible(warm.X)
		if !ok {
			t.Fatalf("%s seed %d: warm incumbent infeasible", label, seed)
		}
		if math.Abs(obj-warm.Obj) > 1e-6 {
			t.Fatalf("%s seed %d: warm incumbent evaluates to %g, claimed %g", label, seed, obj, warm.Obj)
		}
	}
	if warm.Status == Optimal && warm.Bound > warm.Obj+1e-6 {
		t.Fatalf("%s seed %d: bound %g exceeds optimum %g", label, seed, warm.Bound, warm.Obj)
	}
}

// assertGapAnswer is assertSameAnswer for gap-fathomed searches: with
// AbsGap set both runs stop at the first incumbent within the gap of the
// bound, so their objectives need only agree to within the gap.
func assertGapAnswer(t *testing.T, label string, seed int64, m *Model, gap float64, cold, warm *Result) {
	t.Helper()
	if warm.Status != cold.Status {
		t.Fatalf("%s seed %d: status %v, cold %v", label, seed, warm.Status, cold.Status)
	}
	if (warm.X == nil) != (cold.X == nil) {
		t.Fatalf("%s seed %d: incumbent presence %v vs %v", label, seed, warm.X != nil, cold.X != nil)
	}
	if cold.X != nil {
		if math.Abs(warm.Obj-cold.Obj) > gap+1e-6 {
			t.Fatalf("%s seed %d: obj %g and cold %g differ by more than the gap %g", label, seed, warm.Obj, cold.Obj, gap)
		}
		ok, obj := m.CheckFeasible(warm.X)
		if !ok {
			t.Fatalf("%s seed %d: warm incumbent infeasible", label, seed)
		}
		if math.Abs(obj-warm.Obj) > 1e-6 {
			t.Fatalf("%s seed %d: warm incumbent evaluates to %g, claimed %g", label, seed, obj, warm.Obj)
		}
	}
}

// assertIdentical pins the serial-vs-parallel oracle within one mode:
// worker count must never change anything — status, node count, objective
// and incumbent vector are all bit-identical.
func assertIdentical(t *testing.T, label string, seed int64, serial, parallel *Result) {
	t.Helper()
	if parallel.Status != serial.Status {
		t.Fatalf("%s seed %d: status %v, serial %v", label, seed, parallel.Status, serial.Status)
	}
	if parallel.Nodes != serial.Nodes {
		t.Fatalf("%s seed %d: nodes %d, serial %d", label, seed, parallel.Nodes, serial.Nodes)
	}
	if parallel.Obj != serial.Obj {
		t.Fatalf("%s seed %d: obj %g, serial %g", label, seed, parallel.Obj, serial.Obj)
	}
	if (parallel.X == nil) != (serial.X == nil) {
		t.Fatalf("%s seed %d: incumbent presence %v vs %v", label, seed, parallel.X != nil, serial.X != nil)
	}
	for i := range serial.X {
		if parallel.X[i] != serial.X[i] {
			t.Fatalf("%s seed %d: x[%d] = %g, serial %g", label, seed, i, parallel.X[i], serial.X[i])
		}
	}
	if parallel.Bound != serial.Bound {
		t.Fatalf("%s seed %d: bound %g, serial %g", label, seed, parallel.Bound, serial.Bound)
	}
}

// TestWarmMatchesCold is the warm-start correctness property: branch and
// bound with the warm ladder (objective floors, dual re-solves as the node
// LP, warm infeasibility prunes) reaches exactly the answer the all-cold
// search reaches — same status, same proven optimum, an independently
// feasible incumbent — serially and in parallel, with and without
// AbsGap/Incumbent, across a battery of fuzzed models. Worker count within
// warm mode must change nothing at all (bit-identity). A single Arenas is
// shared by every warm solve, exercising cross-model buffer and snapshot
// reuse as the rolling-horizon mapper does.
func TestWarmMatchesCold(t *testing.T) {
	shared := NewArenas()
	for seed := int64(1); seed <= 60; seed++ {
		cold, err := randomMILP(seed).Solve(Options{ColdLP: true, Workers: 1})
		if err != nil {
			t.Fatalf("seed %d cold: %v", seed, err)
		}
		mw := randomMILP(seed)
		warm, err := mw.Solve(Options{Workers: 1, Arenas: shared})
		if err != nil {
			t.Fatalf("seed %d warm: %v", seed, err)
		}
		assertSameAnswer(t, "serial", seed, mw, cold, warm)
		warmPar, err := randomMILP(seed).Solve(Options{Workers: 4, Arenas: shared})
		if err != nil {
			t.Fatalf("seed %d warm parallel: %v", seed, err)
		}
		assertIdentical(t, "parallel", seed, warm, warmPar)

		// The incumbent-seeded, gap-fathomed configuration the placement
		// models use — the one where early fathoming actually fires.
		if cold.X == nil {
			continue
		}
		opts := Options{AbsGap: 0.999, Incumbent: cold.X}
		coldInc, err := randomMILP(seed).Solve(withColdLP(withWorkers(opts, 1)))
		if err != nil {
			t.Fatalf("seed %d cold incumbent: %v", seed, err)
		}
		mwi := randomMILP(seed)
		warmInc, err := mwi.Solve(withArenas(withWorkers(opts, 1), shared))
		if err != nil {
			t.Fatalf("seed %d warm incumbent: %v", seed, err)
		}
		assertGapAnswer(t, "serial+incumbent", seed, mwi, opts.AbsGap, coldInc, warmInc)
		warmIncPar, err := randomMILP(seed).Solve(withArenas(withWorkers(opts, 3), shared))
		if err != nil {
			t.Fatalf("seed %d warm incumbent parallel: %v", seed, err)
		}
		assertIdentical(t, "parallel+incumbent", seed, warmInc, warmIncPar)
	}
}

func withColdLP(o Options) Options {
	o.ColdLP = true
	return o
}

func withArenas(o Options, a *Arenas) Options {
	o.Arenas = a
	return o
}

// TestWarmParallelNodeLimit pins serial-vs-parallel bit-identity under a
// node budget: the frontier search must hit MaxNodes at the same node as
// the serial recursion, yielding the same partial result.
func TestWarmParallelNodeLimit(t *testing.T) {
	for seed := int64(80); seed <= 95; seed++ {
		opts := Options{MaxNodes: 5}
		w1, err := randomMILP(seed).Solve(withWorkers(opts, 1))
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		w4, err := randomMILP(seed).Solve(withWorkers(opts, 4))
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}
		assertIdentical(t, "limit", seed, w1, w4)
	}
}
