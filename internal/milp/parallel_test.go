package milp

import (
	"math"
	"math/rand"
	"testing"
)

// randomMILP builds a bounded random MILP deterministic in the seed:
// mixed integer/continuous variables, LE/GE/EQ rows, occasionally SOS1
// selection groups (exercising both branching schemes).
func randomMILP(seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := NewModel()
	nv := 4 + rng.Intn(8)
	vars := make([]Var, nv)
	for v := 0; v < nv; v++ {
		obj := float64(rng.Intn(9)) - 4
		if rng.Intn(3) == 0 {
			vars[v] = m.AddVar("c", 0, float64(2+rng.Intn(6)), obj)
		} else {
			vars[v] = m.AddInt("i", 0, float64(1+rng.Intn(4)), obj)
		}
	}
	nr := 3 + rng.Intn(5)
	for r := 0; r < nr; r++ {
		var terms []Term
		for v := 0; v < nv; v++ {
			if rng.Intn(2) == 0 {
				terms = append(terms, T(vars[v], float64(rng.Intn(5))-2))
			}
		}
		if len(terms) == 0 {
			terms = append(terms, T(vars[0], 1))
		}
		// Bias toward LE rows so most instances stay feasible.
		rel := LE
		switch rng.Intn(4) {
		case 0:
			rel = GE
		case 1:
			rel = EQ
		}
		m.AddRow(terms, rel, float64(rng.Intn(15)))
	}
	// Every third model gets an SOS1 selection group over fresh binaries.
	if rng.Intn(3) == 0 {
		k := 3 + rng.Intn(4)
		group := make([]Var, k)
		sel := make([]Term, k)
		for i := range group {
			group[i] = m.AddBinary("s", float64(rng.Intn(5)))
			sel[i] = T(group[i], 1)
		}
		m.AddRow(sel, EQ, 1)
		m.AddSOS1(group)
	}
	return m
}

// TestParallelMatchesSerial solves a battery of fixed-seed models with the
// serial recursion and with the synchronized-round frontier at several
// worker counts, asserting the full Result is identical: status, objective,
// incumbent vector, node count, and root bound.
func TestParallelMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		serialRes, err := randomMILP(seed).Solve(Options{Workers: 1})
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		for _, workers := range []int{2, 4, 7} {
			parRes, err := randomMILP(seed).Solve(Options{Workers: workers})
			if err != nil {
				t.Fatalf("seed %d workers=%d: %v", seed, workers, err)
			}
			assertSameResult(t, seed, workers, serialRes, parRes)
		}
	}
}

// TestParallelMatchesSerialWithGapAndIncumbent covers the AbsGap fathom
// rule and a warm-start incumbent, both of which shape the search.
func TestParallelMatchesSerialWithGapAndIncumbent(t *testing.T) {
	for seed := int64(50); seed <= 70; seed++ {
		opts := Options{AbsGap: 0.999}
		serialModel := randomMILP(seed)
		sRes, err := serialModel.Solve(withWorkers(opts, 1))
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		pRes, err := randomMILP(seed).Solve(withWorkers(opts, 4))
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}
		assertSameResult(t, seed, 4, sRes, pRes)

		// Re-solve warm-started from the first solution, when one exists.
		if sRes.X == nil {
			continue
		}
		warm := Options{Incumbent: sRes.X}
		sWarm, err := randomMILP(seed).Solve(withWorkers(warm, 1))
		if err != nil {
			t.Fatalf("seed %d warm serial: %v", seed, err)
		}
		pWarm, err := randomMILP(seed).Solve(withWorkers(warm, 4))
		if err != nil {
			t.Fatalf("seed %d warm parallel: %v", seed, err)
		}
		assertSameResult(t, seed, 4, sWarm, pWarm)
	}
}

// TestParallelMatchesSerialNodeLimit checks that hitting MaxNodes aborts
// the frontier at the same node count and with the same partial result.
func TestParallelMatchesSerialNodeLimit(t *testing.T) {
	for seed := int64(80); seed <= 95; seed++ {
		opts := Options{MaxNodes: 5}
		sRes, err := randomMILP(seed).Solve(withWorkers(opts, 1))
		if err != nil {
			t.Fatalf("seed %d serial: %v", seed, err)
		}
		pRes, err := randomMILP(seed).Solve(withWorkers(opts, 4))
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}
		assertSameResult(t, seed, 4, sRes, pRes)
	}
}

func withWorkers(o Options, w int) Options {
	o.Workers = w
	return o
}

func assertSameResult(t *testing.T, seed int64, workers int, want, got *Result) {
	t.Helper()
	if got.Status != want.Status {
		t.Fatalf("seed %d workers=%d: status %v, serial %v", seed, workers, got.Status, want.Status)
	}
	if got.Nodes != want.Nodes {
		t.Fatalf("seed %d workers=%d: nodes %d, serial %d", seed, workers, got.Nodes, want.Nodes)
	}
	if math.Abs(got.Obj-want.Obj) > 1e-9 {
		t.Fatalf("seed %d workers=%d: obj %g, serial %g", seed, workers, got.Obj, want.Obj)
	}
	if bothFinite(got.Bound, want.Bound) && math.Abs(got.Bound-want.Bound) > 1e-9 {
		t.Fatalf("seed %d workers=%d: bound %g, serial %g", seed, workers, got.Bound, want.Bound)
	}
	if (got.X == nil) != (want.X == nil) {
		t.Fatalf("seed %d workers=%d: incumbent presence %v vs %v", seed, workers, got.X != nil, want.X != nil)
	}
	for i := range want.X {
		if math.Abs(got.X[i]-want.X[i]) > 1e-9 {
			t.Fatalf("seed %d workers=%d: x[%d] = %g, serial %g", seed, workers, i, got.X[i], want.X[i])
		}
	}
}

func bothFinite(a, b float64) bool {
	return !math.IsInf(a, 0) && !math.IsInf(b, 0)
}

// TestParallelBoundsRestored: the model must be re-solvable after a
// parallel solve (Solve restores root bounds on return).
func TestParallelBoundsRestored(t *testing.T) {
	m := NewModel()
	x := m.AddInt("x", 0, 5, -1)
	y := m.AddInt("y", 0, 5, -1)
	m.AddRow([]Term{T(x, 2), T(y, 3)}, LE, 12)
	first, err := m.Solve(Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	second, err := m.Solve(Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if first.Obj != second.Obj || first.Status != second.Status {
		t.Fatalf("re-solve diverged: %v/%g vs %v/%g", first.Status, first.Obj, second.Status, second.Obj)
	}
}
