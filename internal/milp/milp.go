// Package milp implements a mixed-integer linear programming solver: branch
// and bound with most-fractional branching, depth-first search guided toward
// the LP-relaxation value, LP-rounding incumbents and node/time limits.
//
// Together with internal/lp it replaces the commercial ILP solver used by
// the paper for the dynamic-device mapping model.
package milp

import (
	"context"
	"fmt"
	"math"
	"time"

	"mfsynth/internal/lp"
	"mfsynth/internal/obs"
	"mfsynth/internal/par"
	"mfsynth/internal/synerr"
)

// Re-exported row relations, for convenience of model-building code.
const (
	LE = lp.LE
	GE = lp.GE
	EQ = lp.EQ
)

// Inf is the unbounded upper bound.
var Inf = lp.Inf

// Var is a variable handle, shared with the LP layer.
type Var = lp.Var

// Term is one linear coefficient.
type Term struct {
	Var  Var
	Coef float64
}

// T builds a Term; convenient for callers outside this package, where
// unkeyed Term literals trip go vet's composite-literal check.
func T(v Var, coef float64) Term { return Term{Var: v, Coef: coef} }

// Model is a MILP: an LP plus integrality marks.
type Model struct {
	lp      *lp.Problem
	integer []bool
	rows    []savedRow // kept for incumbent feasibility checks
	sos1    [][]Var    // special-ordered sets for branching (see AddSOS1)
}

type savedRow struct {
	terms []Term
	rel   lp.Rel
	rhs   float64
}

// NewModel returns an empty minimisation model.
func NewModel() *Model {
	return &Model{lp: lp.NewProblem()}
}

// AddVar adds a continuous variable.
func (m *Model) AddVar(name string, lower, upper, obj float64) Var {
	v := m.lp.AddVar(name, lower, upper, obj)
	m.integer = append(m.integer, false)
	return v
}

// AddInt adds an integer variable with inclusive bounds.
func (m *Model) AddInt(name string, lower, upper, obj float64) Var {
	v := m.lp.AddVar(name, lower, upper, obj)
	m.integer = append(m.integer, true)
	return v
}

// AddBinary adds a {0,1} variable.
func (m *Model) AddBinary(name string, obj float64) Var {
	return m.AddInt(name, 0, 1, obj)
}

// SetObj overwrites the objective coefficient of v.
func (m *Model) SetObj(v Var, c float64) { m.lp.SetObj(v, c) }

// AddRow adds the constraint Σ terms {rel} rhs.
func (m *Model) AddRow(terms []Term, rel lp.Rel, rhs float64) {
	own := make([]Term, len(terms))
	copy(own, terms)
	m.rows = append(m.rows, savedRow{own, rel, rhs})
	low := make([]lp.Term, len(terms))
	for i, t := range terms {
		low[i] = lp.Term{Var: t.Var, Coef: t.Coef}
	}
	m.lp.AddRow(low, rel, rhs)
}

// Fix pins v to a value by collapsing its bounds.
func (m *Model) Fix(v Var, value float64) { m.lp.SetBounds(v, value, value) }

// Bounds returns the current bounds of v.
func (m *Model) Bounds(v Var) (lo, hi float64) { return m.lp.Bounds(v) }

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return len(m.integer) }

// NumRows returns the number of constraints.
func (m *Model) NumRows() int { return len(m.rows) }

// Status reports the outcome of a MILP solve.
type Status int

// Solve outcomes.
const (
	// Optimal: incumbent proved optimal.
	Optimal Status = iota
	// Feasible: an integer solution was found but optimality was not proved
	// (a node/time limit was hit).
	Feasible
	// Infeasible: no integer solution exists.
	Infeasible
	// Unbounded: the relaxation is unbounded below.
	Unbounded
	// Limit: a limit was hit before any integer solution was found.
	Limit
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Limit:
		return "limit"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Options configures Solve.
type Options struct {
	// MaxNodes bounds the number of branch-and-bound nodes (0 = 1<<20).
	MaxNodes int
	// Timeout bounds wall-clock time (0 = none).
	Timeout time.Duration
	// Ctx, when non-nil, cancels the search: Solve returns a
	// synerr.ErrDeadline-compatible error as soon as a node observes the
	// cancellation. Unlike Timeout (which returns the incumbent found so
	// far with Status Limit), cancellation abandons the solve entirely.
	Ctx context.Context
	// Incumbent, when non-nil, is a known feasible assignment used as the
	// initial upper bound. It must be integer-feasible; otherwise it is
	// ignored.
	Incumbent []float64
	// AbsGap stops the search when the incumbent is within AbsGap of the
	// best bound (useful because actuation counts are integers: 0.999).
	AbsGap float64
	// Workers bounds the number of LP relaxations solved concurrently
	// (0 = runtime.GOMAXPROCS, 1 = the legacy serial recursion). Any
	// value yields bit-identical results — the parallel frontier
	// processes nodes in the exact serial DFS order (see parallel.go) —
	// so only wall-clock time changes. The one caveat is Timeout: a
	// binding wall-clock deadline cuts the search at a timing-dependent
	// node, in serial runs just as in parallel ones; use MaxNodes for a
	// deterministic budget.
	Workers int
	// Obs, when non-nil, is the parent span the solve reports under: a
	// milp.solve child span plus the milp.* metrics (nodes, LP solves,
	// simplex pivots, incumbent updates, deadline checks, bound-gap
	// histogram) on its trace. Observation never changes results.
	Obs *obs.Span
	// ColdLP disables the warm-start machinery (objective-floor fathoming,
	// dual-simplex re-solves from parent bases, warm infeasibility prunes):
	// every node pays a from-scratch LP solve, as the search did before
	// warm-starting existed. Both modes are exact searches over the same
	// model and agree on final incumbents and statuses; the explored trees
	// may differ where a relaxation has several optimal vertices (the two
	// solvers can branch from different ones). The switch exists for
	// benchmarking and differential tests.
	ColdLP bool
	// Arenas, when non-nil, supplies reusable solver state shared across
	// Solve calls (see Arenas). Nil means a private bundle per solve.
	Arenas *Arenas
}

// Result is the outcome of a MILP solve.
type Result struct {
	Status Status
	// Obj and X describe the incumbent (valid for Optimal and Feasible).
	Obj float64
	X   []float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
	// Bound is the best proven lower bound on the optimum.
	Bound float64
}

const intTol = 1e-6

// Solve runs branch and bound. The model's variable bounds are restored on
// return, so a Model can be re-solved after adding rows.
func (m *Model) Solve(opts Options) (*Result, error) {
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 1 << 20
	}
	sp := opts.Obs.Start("milp.solve",
		obs.KV("vars", m.NumVars()), obs.KV("rows", m.NumRows()))
	ar := opts.Arenas
	if ar == nil {
		ar = NewArenas()
	}
	scratch, warm := ar.lane(0, m.lp)
	s := &search{
		m:        m,
		maxNodes: maxNodes,
		absGap:   opts.AbsGap,
		bestObj:  math.Inf(1),
		bound:    math.Inf(-1),
		coldLP:   opts.ColdLP,
		arenas:   ar,
		scratch:  scratch,
		warm:     warm,
		snaps:    ar.snaps,
		span:     sp,
		gapHist:  sp.Metrics().Histogram("milp_bound_gap", []float64{0.5, 1, 2, 4, 8, 16}),
	}
	// Live-progress plumbing: gauges mirror the search state for /metrics
	// scrapes, and the progress bus (enabled by a debug server or progress
	// log) receives periodic snapshots. Pulses are side effects of the merge
	// goroutine only and never influence search decisions, so results stay
	// bit-identical with telemetry on or off.
	if mm, bus := sp.Metrics(), opts.Obs.Trace().ProgressBus(); mm != nil || bus != nil {
		s.pulseOn = true
		s.bus = bus
		s.solveID = bus.NextSolve()
		s.liveNodes = mm.Gauge("milp_nodes")
		s.liveWarm = mm.Gauge("milp_warm_resolves")
		s.liveCold = mm.Gauge("milp_cold_solves")
		s.fgIncumbent = mm.FloatGauge("milp_incumbent")
		s.fgBound = mm.FloatGauge("milp_bound")
		s.fgGap = mm.FloatGauge("milp_gap")
	}
	if opts.Timeout > 0 {
		// The deadline existence check is hoisted out of the per-node hot
		// loop: node() polls time.Now only when hasDeadline is set.
		s.hasDeadline = true
		s.deadline = time.Now().Add(opts.Timeout)
	}
	if opts.Ctx != nil {
		// Same hoist for cancellation: ctx.Err() (an atomic load) is polled
		// per node only when a context is attached.
		s.hasCtx = true
		s.ctx = opts.Ctx
	}
	if opts.Incumbent != nil {
		if ok, obj := m.CheckFeasible(opts.Incumbent); ok {
			s.bestObj = obj
			s.bestX = append([]float64(nil), opts.Incumbent...)
		}
	}
	// Save root bounds to restore afterwards.
	saved := make([][2]float64, m.NumVars())
	for v := range saved {
		saved[v][0], saved[v][1] = m.lp.Bounds(lp.Var(v))
	}
	defer func() {
		for v := range saved {
			m.lp.SetBounds(lp.Var(v), saved[v][0], saved[v][1])
		}
	}()

	var st nodeStatus
	var err error
	if workers := par.Workers(opts.Workers); workers > 1 {
		st, err = s.runParallel(workers)
	} else {
		st, err = s.node(nil, nil)
	}
	if err != nil {
		sp.Set(obs.KV("error", err.Error()))
		sp.End()
		return nil, err
	}
	s.complete = st == nodeDone
	res := &Result{Nodes: s.nodes, Bound: s.bound}
	switch {
	case st == nodeUnbounded && s.bestX == nil:
		res.Status = Unbounded
	case s.bestX != nil && s.complete:
		res.Status = Optimal
		res.Obj = s.bestObj
		res.X = s.bestX
	case s.bestX != nil:
		res.Status = Feasible
		res.Obj = s.bestObj
		res.X = s.bestX
	case s.complete:
		res.Status = Infeasible
	default:
		res.Status = Limit
	}
	s.flushObs(res)
	sp.End()
	return res, nil
}

// flushObs records the solve's accumulated counters and result attributes
// on the trace and emits the final progress pulse. No-op when tracing is
// disabled (nil span).
func (s *search) flushObs(res *Result) {
	s.pulse()
	mm := s.span.Metrics()
	if mm == nil {
		return
	}
	mm.Counter("milp_nodes_total").Add(int64(s.nodes))
	mm.Counter("milp_lp_solves_total").Add(s.lpSolves)
	mm.Counter("milp_simplex_pivots_total").Add(s.pivots)
	mm.Counter("milp_incumbents_total").Add(s.incumbents)
	mm.Counter("milp_deadline_checks_total").Add(s.deadlineChecks)
	mm.Counter("milp_floor_fathoms_total").Add(s.floorFathoms)
	mm.Counter("milp_warm_fathoms_total").Add(s.warmFathoms)
	mm.Counter("milp_warm_resolves_total").Add(s.warmResolves)
	mm.Counter("milp_warm_infeasible_total").Add(s.warmInfeasible)
	mm.Counter("milp_warm_failures_total").Add(s.warmFailures)
	mm.Counter("milp_warm_fail_pivots_total").Add(s.warmFailPivots)
	s.span.Set(obs.KV("status", res.Status.String()), obs.KV("nodes", res.Nodes))
	if !math.IsInf(res.Bound, 0) {
		s.span.Set(obs.KV("bound", res.Bound))
	}
	if res.Status == Optimal || res.Status == Feasible {
		s.span.Set(obs.KV("obj", res.Obj))
	}
}

// CheckFeasible evaluates x against all rows, bounds and integrality; when
// feasible it returns the objective value.
func (m *Model) CheckFeasible(x []float64) (bool, float64) {
	if len(x) != m.NumVars() {
		return false, 0
	}
	for v := 0; v < m.NumVars(); v++ {
		lo, hi := m.lp.Bounds(lp.Var(v))
		if x[v] < lo-intTol || x[v] > hi+intTol {
			return false, 0
		}
		if m.integer[v] && math.Abs(x[v]-math.Round(x[v])) > intTol {
			return false, 0
		}
	}
	for _, r := range m.rows {
		lhs := 0.0
		for _, t := range r.terms {
			lhs += t.Coef * x[t.Var]
		}
		switch r.rel {
		case lp.LE:
			if lhs > r.rhs+1e-6 {
				return false, 0
			}
		case lp.GE:
			if lhs < r.rhs-1e-6 {
				return false, 0
			}
		case lp.EQ:
			if math.Abs(lhs-r.rhs) > 1e-6 {
				return false, 0
			}
		}
	}
	return true, m.Objective(x)
}

// Objective evaluates the model objective at x.
func (m *Model) Objective(x []float64) float64 {
	// The lp layer holds the coefficients; recompute via a probe.
	obj := 0.0
	for v := 0; v < m.NumVars(); v++ {
		obj += m.objCoef(lp.Var(v)) * x[v]
	}
	return obj
}

// objCoef digs the objective coefficient out of the LP.
func (m *Model) objCoef(v lp.Var) float64 { return m.lp.ObjCoef(v) }

type nodeStatus int

const (
	nodeDone nodeStatus = iota
	nodeUnbounded
	nodeLimit
)

type search struct {
	m           *Model
	nodes       int
	maxNodes    int
	hasDeadline bool // hoisted deadline.IsZero(), kept out of the hot loop
	deadline    time.Time
	hasCtx      bool // hoisted Ctx != nil, same reasoning
	ctx         context.Context
	absGap      float64

	bestObj  float64
	bestX    []float64
	bound    float64 // best lower bound proven at the root
	complete bool    // true when the whole tree was explored
	rootSet  bool

	// Observability accumulators, flushed once by flushObs. All are
	// touched only by the merge goroutine (serial recursion or the
	// parallel processing sequence), which also keeps them identical to a
	// serial run: parallel speculative work that serial would not perform
	// is never counted.
	span           *obs.Span
	gapHist        *obs.Histogram // relaxation gap above the root bound
	lpSolves       int64
	pivots         int64
	incumbents     int64
	deadlineChecks int64
	floorFathoms   int64 // nodes pruned by the objective floor, no LP at all
	warmFathoms    int64 // nodes pruned by a warm dual re-solve's bound
	warmInfeasible int64 // nodes pruned by a warm infeasibility certificate
	warmResolves   int64 // warm re-solves attempted
	warmFailures   int64 // warm re-solves that fell back to the cold path
	warmFailPivots int64 // pivots spent inside those failed re-solves

	// Live-progress plumbing (pulse). Like the accumulators above, all of
	// it is touched only by the merge goroutine; pulses mirror state out,
	// never feed anything back into the search.
	pulseOn     bool
	bus         *obs.ProgressBus
	solveID     int64
	liveNodes   *obs.Gauge
	liveWarm    *obs.Gauge
	liveCold    *obs.Gauge
	fgIncumbent *obs.FloatGauge
	fgBound     *obs.FloatGauge
	fgGap       *obs.FloatGauge

	// coldLP disables floor fathoming and warm re-solves (Options.ColdLP).
	coldLP bool
	// arenas is the reusable solver state (Options.Arenas or private).
	arenas *Arenas
	// scratch is lane 0's tableau arena, reused across the serial
	// recursion's node solves (parallel workers use lanes 1..W).
	scratch *lp.Scratch
	// warm is lane 0's dual-simplex re-solver.
	warm *lp.WarmSolver
	// snaps pools the frozen node tableaus warm re-solves start from.
	snaps *lp.WarmArena
	// rootLo/rootHi snapshot the root bounds for replaying node deltas
	// (parallel mode only).
	rootLo, rootHi []float64
}

// boundMargin is the safety margin on the early warm fathoming checks
// (objective floor, warm re-solve bound): a node is pruned before its LP
// solution is even materialised only when the bound clears the fathoming
// threshold by this much. Bounds inside the margin flow into the regular
// fathom check instead, so a hair's-breadth call is made by exactly the
// same comparison the cold path uses.
const boundMargin = 1e-6

// fathomThreshold returns the value at or above which a node bound prunes
// the node: the exact constant serial fathoming has always used (incumbent
// minus 1e-9, or minus AbsGap when set).
func (s *search) fathomThreshold() float64 {
	if math.IsInf(s.bestObj, 1) {
		return math.Inf(1)
	}
	t := s.bestObj - 1e-9
	if s.absGap > 0 && s.bestObj-s.absGap < t {
		t = s.bestObj - s.absGap
	}
	return t
}

// node solves the relaxation under the current bounds and recurses. parent
// is the frozen optimal tableau of the parent node (nil at the root or
// below a node whose tableau could not be kept) and own the bound
// tightenings this node adds to it; together they feed the warm-start
// ladder that replaces the from-scratch LP solve:
//
//  1. objective floor — O(n) over the bounds, no tableau at all;
//  2. warm dual re-solve from the parent basis — usually a handful of
//     pivots; an Optimal outcome IS the node's LP solve and an Infeasible
//     one prunes the node outright;
//  3. cold two-phase solve — the root, warm failures (iteration cap,
//     numerical doubt) and ColdLP mode.
//
// Warm and cold solves of the same node agree on the LP value to far
// better than any fathoming tolerance, so the two modes explore the same
// decisions wherever the optimum is unique; at degenerate alternate optima
// the vertex (and hence the branching order) may differ, but both modes
// remain exact branch-and-bound searches over the same model — final
// incumbents and statuses agree (see TestWarmMatchesCold and the
// conformance suite).
func (s *search) node(parent *lp.WarmSnap, own []lp.BoundDelta) (nodeStatus, error) {
	if s.nodes >= s.maxNodes {
		return nodeLimit, nil
	}
	if s.hasDeadline {
		s.deadlineChecks++
		if time.Now().After(s.deadline) {
			return nodeLimit, nil
		}
	}
	if s.hasCtx {
		if err := s.ctx.Err(); err != nil {
			return nodeLimit, synerr.Deadline("milp", err)
		}
	}
	s.nodes++
	if s.nodes%pulseEvery == 0 {
		s.pulse()
	}

	warmMode := !s.coldLP
	thresh := s.fathomThreshold()

	if warmMode && !math.IsInf(thresh, 1) {
		if fl := s.m.lp.ObjectiveFloor(); fl >= thresh+boundMargin {
			s.floorFathoms++
			if !s.rootSet {
				// The floor is a valid (if weak) lower bound on the optimum.
				s.bound = fl
				s.rootSet = true
			}
			return nodeDone, nil
		}
	}

	var sol *lp.Solution
	var retained *lp.WarmSnap
	warmValid := false // warm solver's tableau holds this node's optimum
	if warmMode && parent != nil && len(own) > 0 {
		res := s.warm.Resolve(parent, own)
		s.warmResolves++
		s.pivots += int64(res.Iters)
		switch res.Status {
		case lp.Optimal:
			if !math.IsInf(thresh, 1) && res.Obj >= thresh+boundMargin {
				s.warmFathoms++
				return nodeDone, nil
			}
			sol = s.warm.Solution(res.Obj, res.Iters)
			warmValid = true
		case lp.Infeasible:
			// A violated row with no eligible entering column certifies the
			// tightened box empty: prune without a cold solve.
			s.warmInfeasible++
			return nodeDone, nil
		default:
			// IterLimit (cap or numerical doubt) falls through to the cold
			// path.
			s.warmFailures++
			s.warmFailPivots += int64(res.Iters)
		}
	}
	if sol == nil {
		var err error
		if warmMode {
			sol, retained, err = s.m.lp.SolveScratchRetain(s.scratch, s.snaps)
		} else {
			sol, err = s.m.lp.SolveScratch(s.scratch)
		}
		if err != nil {
			return nodeDone, err
		}
		s.lpSolves++
		s.pivots += int64(sol.Iters)
	}
	// nodeSnap freezes this node's optimum for its children, preferring the
	// cold tableau (available whenever presolve was a no-op; numerically
	// fresh) over re-freezing the warm re-solve.
	var nodeSnap *lp.WarmSnap
	defer func() {
		if nodeSnap != retained {
			s.snaps.Release(retained)
		}
		s.snaps.Release(nodeSnap)
	}()
	switch sol.Status {
	case lp.Infeasible:
		return nodeDone, nil
	case lp.Unbounded:
		return nodeUnbounded, nil
	case lp.IterLimit:
		// Cannot trust the node; treat as explored-without-proof.
		return nodeLimit, nil
	}
	if !s.rootSet {
		s.bound = sol.Obj
		s.rootSet = true
	}
	s.gapHist.Observe(sol.Obj - s.bound)
	if sol.Obj >= s.bestObj-1e-9 || (s.absGap > 0 && sol.Obj >= s.bestObj-s.absGap) {
		return nodeDone, nil // fathom by bound
	}

	// SOS1 branching first: splitting a fractional selection group in two
	// kills far more symmetric subtrees per node than fixing one binary.
	if branches := s.chooseSOS1(sol); branches[0] != nil {
		nodeSnap = s.pickSnap(retained, warmValid)
		return s.exploreBranches(branches, nodeSnap)
	}

	// Find the most fractional integer variable.
	branch, frac := -1, 0.0
	for v := 0; v < s.m.NumVars(); v++ {
		if !s.m.integer[v] {
			continue
		}
		f := math.Abs(sol.X[v] - math.Round(sol.X[v]))
		if f > intTol && f > frac {
			branch, frac = v, f
		}
	}
	if branch < 0 {
		// Integer feasible.
		if sol.Obj < s.bestObj-1e-9 {
			s.bestObj = sol.Obj
			s.bestX = roundInts(s.m, sol.X)
			s.noteIncumbent()
		}
		return nodeDone, nil
	}

	// Rounding heuristic: snap all integers and test.
	if s.bestX == nil {
		cand := roundInts(s.m, sol.X)
		if ok, obj := s.m.CheckFeasible(cand); ok && obj < s.bestObj {
			s.bestObj, s.bestX = obj, cand
			s.noteIncumbent()
		}
	}

	v := lp.Var(branch)
	lo, hi := s.m.lp.Bounds(v)
	floor := math.Floor(sol.X[branch])
	// Explore the side nearer the LP value first.
	first, second := [2]float64{lo, floor}, [2]float64{floor + 1, hi}
	if sol.X[branch]-floor > 0.5 {
		first, second = second, first
	}
	nodeSnap = s.pickSnap(retained, warmValid)
	for _, side := range [][2]float64{first, second} {
		if side[0] > side[1] {
			continue
		}
		s.m.lp.SetBounds(v, side[0], side[1])
		cst, err := s.node(nodeSnap, []lp.BoundDelta{{Var: v, Lo: side[0], Hi: side[1]}})
		s.m.lp.SetBounds(v, lo, hi)
		if err != nil {
			return nodeDone, err
		}
		if cst == nodeUnbounded {
			return nodeUnbounded, nil
		}
		if cst == nodeLimit {
			return nodeLimit, nil
		}
	}
	return nodeDone, nil
}

// pickSnap chooses the tableau to freeze for a branching node's children:
// the cold solve's retained tableau when available, else a snapshot of the
// warm re-solve's optimum, else nothing (children start cold).
func (s *search) pickSnap(retained *lp.WarmSnap, warmValid bool) *lp.WarmSnap {
	if retained != nil {
		return retained
	}
	if warmValid {
		return s.warm.Snapshot(s.snaps)
	}
	return nil
}

// noteIncumbent records an incumbent improvement: a counter bump, a point
// mark on the solve span (the incumbent trajectory in the trace) and a
// progress pulse.
func (s *search) noteIncumbent() {
	s.incumbents++
	s.span.Mark("milp.incumbent", obs.KV("obj", s.bestObj), obs.KV("node", s.nodes))
	s.pulse()
}

// pulseEvery is the node interval of periodic progress pulses: frequent
// enough that /metrics scrapes see a moving picture, rare enough that the
// modulo check is the only per-node cost.
const pulseEvery = 256

// pulse mirrors the live search state onto the registry gauges and the
// progress bus. Runs on the merge goroutine; infinities (no incumbent
// yet, no root bound yet) are mapped to zeros so snapshots stay
// JSON-marshalable.
func (s *search) pulse() {
	if !s.pulseOn {
		return
	}
	hasInc := s.bestX != nil
	incumbent, bound, gap := 0.0, 0.0, 0.0
	if hasInc {
		incumbent = s.bestObj
	}
	if s.rootSet {
		bound = s.bound
	}
	if hasInc && s.rootSet {
		gap = s.bestObj - s.bound
	}
	s.liveNodes.Set(int64(s.nodes))
	s.liveWarm.Set(s.warmResolves)
	s.liveCold.Set(s.lpSolves)
	if s.rootSet {
		s.fgBound.Set(bound)
	}
	if hasInc {
		s.fgIncumbent.Set(incumbent)
		if s.rootSet {
			s.fgGap.Set(gap)
		}
	}
	s.bus.Update(func(p *obs.Progress) {
		p.MILP = &obs.MILPProgress{
			Solve:        s.solveID,
			Nodes:        int64(s.nodes),
			Incumbent:    incumbent,
			HasIncumbent: hasInc,
			Bound:        bound,
			Gap:          gap,
			WarmResolves: s.warmResolves,
			ColdSolves:   s.lpSolves,
			Incumbents:   s.incumbents,
		}
	})
}

// roundInts snaps integer variables of x to the nearest integer.
func roundInts(m *Model, x []float64) []float64 {
	out := append([]float64(nil), x...)
	for v := range out {
		if m.integer[v] {
			out[v] = math.Round(out[v])
		}
	}
	return out
}
