package milp

import (
	"math/rand"
	"testing"
)

// knapsack20 builds the 20-item knapsack of BenchmarkKnapsack20 — a search
// of a few hundred branch-and-bound nodes, all warm-startable below the
// root.
func knapsack20() *Model {
	r := rand.New(rand.NewSource(3))
	m := NewModel()
	terms := make([]Term, 20)
	for j := range terms {
		v := m.AddBinary("x", -float64(1+r.Intn(30)))
		terms[j] = Term{v, float64(1 + r.Intn(12))}
	}
	m.AddRow(terms, LE, 60)
	return m
}

// BenchmarkBBKnapsackCold runs the full branch-and-bound search with the
// warm-start machinery disabled: every node pays a from-scratch LP solve.
func BenchmarkBBKnapsackCold(b *testing.B) {
	m := knapsack20()
	ar := NewArenas()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.Solve(Options{ColdLP: true, Workers: 1, Arenas: ar})
		if err != nil || res.Status != Optimal {
			b.Fatalf("status %v err %v", res.Status, err)
		}
	}
}

// BenchmarkBBKnapsackWarm runs the same search with warm-started node
// solves: dual re-solves from the parent basis replace the cold path at
// every node below the root.
func BenchmarkBBKnapsackWarm(b *testing.B) {
	m := knapsack20()
	ar := NewArenas()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.Solve(Options{Workers: 1, Arenas: ar})
		if err != nil || res.Status != Optimal {
			b.Fatalf("status %v err %v", res.Status, err)
		}
	}
}
