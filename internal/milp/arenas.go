package milp

import "mfsynth/internal/lp"

// Arenas bundles the reusable solver state of branch and bound: one tableau
// arena and one warm-start lane per concurrency slot, plus a shared pool of
// frozen-basis snapshots. A caller that solves many related models — the
// rolling-horizon mapper solves one per window — keeps a single Arenas and
// passes it through Options so tableaus, dual-simplex working buffers and
// snapshots survive across solves instead of being reallocated per batch.
// When Options.Arenas is nil, Solve creates a private one.
//
// Lane 0 belongs to the serial recursion (and the parallel merge
// goroutine); parallel workers use lanes 1..W. Lanes must be claimed from
// a single goroutine before concurrent use.
type Arenas struct {
	scratch []*lp.Scratch
	warm    []*lp.WarmSolver
	snaps   *lp.WarmArena
}

// NewArenas returns an empty arena bundle.
func NewArenas() *Arenas { return &Arenas{snaps: lp.NewWarmArena()} }

// lane returns slot i's tableau arena and warm solver, (re)bound to p.
func (a *Arenas) lane(i int, p *lp.Problem) (*lp.Scratch, *lp.WarmSolver) {
	for len(a.scratch) <= i {
		a.scratch = append(a.scratch, lp.NewScratch())
		a.warm = append(a.warm, nil)
	}
	if a.warm[i] == nil {
		a.warm[i] = lp.NewWarmSolver(p)
	} else {
		a.warm[i].Rebind(p)
	}
	return a.scratch[i], a.warm[i]
}
