package milp

import (
	"math"

	"mfsynth/internal/lp"
)

// AddSOS1 declares that at most one of the given binary variables may be
// non-zero (a special-ordered set of type 1). The caller must still add
// the defining row (typically Σ vars = 1); the declaration only informs
// the branch-and-bound search, which then branches by splitting the set
// instead of fixing one variable at a time — vastly more effective on the
// highly symmetric placement-selection models of internal/place.
func (m *Model) AddSOS1(vars []Var) {
	if len(vars) < 2 {
		return
	}
	own := make([]Var, len(vars))
	copy(own, vars)
	m.sos1 = append(m.sos1, own)
}

// branchSet is one side of a branching decision: the variables forced to 0.
type branchSet []Var

// chooseSOS1 picks the SOS1 group whose LP mass is most spread out and
// splits it at the weighted median into two zero-fix sets. Returns nil when
// every group is integral (at most one member active).
func (s *search) chooseSOS1(sol *lp.Solution) [2]branchSet {
	bestGroup := -1
	bestScore := 0.0
	for gi, group := range s.m.sos1 {
		active, mass, max := 0, 0.0, 0.0
		for _, v := range group {
			lo, hi := s.m.lp.Bounds(v)
			if hi <= lo && hi == 0 {
				continue // already fixed to zero
			}
			x := sol.X[v]
			if x > intTol {
				active++
				mass += x
				if x > max {
					max = x
				}
			}
		}
		if active < 2 {
			continue
		}
		// Spread score: how far the group is from having a single winner.
		if score := mass - max; score > bestScore {
			bestScore = score
			bestGroup = gi
		}
	}
	if bestGroup < 0 {
		return [2]branchSet{}
	}
	group := s.m.sos1[bestGroup]
	// Split at the weighted median (group order is the caller's spatial
	// order, so halves are geometrically coherent).
	total := 0.0
	for _, v := range group {
		total += math.Max(0, sol.X[v])
	}
	var left, right branchSet
	acc := 0.0
	splitDone := false
	for _, v := range group {
		if !splitDone && acc >= total/2 {
			splitDone = true
		}
		if splitDone {
			left = append(left, v) // fixing these explores the left half
		} else {
			right = append(right, v)
		}
		acc += math.Max(0, sol.X[v])
	}
	if len(left) == 0 || len(right) == 0 {
		return [2]branchSet{}
	}
	return [2]branchSet{left, right}
}

// exploreBranches recurses into both zero-fix sets, restoring bounds. snap
// is the branching node's frozen tableau (may be nil), handed to both
// children as their warm-start parent.
func (s *search) exploreBranches(branches [2]branchSet, snap *lp.WarmSnap) (nodeStatus, error) {
	for _, fix := range branches {
		saved := make([][2]float64, len(fix))
		own := make([]lp.BoundDelta, len(fix))
		for i, v := range fix {
			lo, hi := s.m.lp.Bounds(v)
			saved[i] = [2]float64{lo, hi}
			s.m.lp.SetBounds(v, 0, 0)
			own[i] = lp.BoundDelta{Var: v, Lo: 0, Hi: 0}
		}
		st, err := s.node(snap, own)
		for i, v := range fix {
			s.m.lp.SetBounds(v, saved[i][0], saved[i][1])
		}
		if err != nil {
			return nodeDone, err
		}
		if st == nodeUnbounded {
			return nodeUnbounded, nil
		}
		if st == nodeLimit {
			return nodeLimit, nil
		}
	}
	return nodeDone, nil
}
