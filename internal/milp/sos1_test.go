package milp

import (
	"math"
	"testing"
)

// Assignment-style model: n groups of m binaries, one selected per group,
// with a shared minimax objective. SOS1 branching must find the optimum.
func buildSelection(n, m int, cost func(g, k int) float64) (*Model, [][]Var, Var) {
	mod := NewModel()
	w := mod.AddVar("w", 0, Inf, 1)
	groups := make([][]Var, n)
	for g := 0; g < n; g++ {
		var row []Term
		for k := 0; k < m; k++ {
			v := mod.AddBinary("s", 0)
			groups[g] = append(groups[g], v)
			row = append(row, T(v, 1))
		}
		mod.AddRow(row, EQ, 1)
		mod.AddSOS1(groups[g])
	}
	// w ≥ per-slot load: slot k collects cost(g,k) from every group that
	// picked k.
	for k := 0; k < m; k++ {
		terms := []Term{T(w, -1)}
		for g := 0; g < n; g++ {
			terms = append(terms, T(groups[g][k], cost(g, k)))
		}
		mod.AddRow(terms, LE, 0)
	}
	return mod, groups, w
}

func TestSOS1SpreadsLoad(t *testing.T) {
	// 4 groups, 4 slots, unit cost: spreading gives w = 1.
	mod, groups, _ := buildSelection(4, 4, func(g, k int) float64 { return 1 })
	res, err := mod.Solve(Options{AbsGap: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal && res.Status != Feasible {
		t.Fatalf("status %v", res.Status)
	}
	if math.Abs(res.Obj-1) > 1e-6 {
		t.Fatalf("obj = %g, want 1", res.Obj)
	}
	// Each slot picked at most once.
	slotUse := make([]int, 4)
	for _, g := range groups {
		for k, v := range g {
			if math.Round(res.X[v]) == 1 {
				slotUse[k]++
			}
		}
	}
	for k, u := range slotUse {
		if u > 1 {
			t.Errorf("slot %d used %d times", k, u)
		}
	}
}

func TestSOS1ForcedSharing(t *testing.T) {
	// 5 groups over 2 slots: some slot carries ≥ 3.
	mod, _, _ := buildSelection(5, 2, func(g, k int) float64 { return 1 })
	res, err := mod.Solve(Options{AbsGap: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Obj-3) > 1e-6 {
		t.Fatalf("obj = %g, want 3", res.Obj)
	}
}

func TestSOS1MatchesPlainBranching(t *testing.T) {
	// Same model solved with and without the SOS1 declarations must agree.
	cost := func(g, k int) float64 { return float64(1 + (g+k)%3) }
	withSOS, _, _ := buildSelection(3, 3, cost)
	r1, err := withSOS.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}

	plain := NewModel()
	w := plain.AddVar("w", 0, Inf, 1)
	groups := make([][]Var, 3)
	for g := 0; g < 3; g++ {
		var row []Term
		for k := 0; k < 3; k++ {
			v := plain.AddBinary("s", 0)
			groups[g] = append(groups[g], v)
			row = append(row, T(v, 1))
		}
		plain.AddRow(row, EQ, 1)
	}
	for k := 0; k < 3; k++ {
		terms := []Term{T(w, -1)}
		for g := 0; g < 3; g++ {
			terms = append(terms, T(groups[g][k], cost(g, k)))
		}
		plain.AddRow(terms, LE, 0)
	}
	r2, err := plain.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.Obj-r2.Obj) > 1e-6 {
		t.Fatalf("SOS1 obj %g != plain obj %g", r1.Obj, r2.Obj)
	}
}

func TestSOS1NodeReduction(t *testing.T) {
	// SOS1 branching should explore no more nodes than plain branching on
	// a symmetric spread instance.
	cost := func(g, k int) float64 { return 1 }
	withSOS, _, _ := buildSelection(5, 5, cost)
	r1, err := withSOS.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Status != Optimal {
		t.Fatalf("status %v", r1.Status)
	}
	t.Logf("SOS1 nodes: %d", r1.Nodes)
	if r1.Nodes > 4000 {
		t.Errorf("SOS1 branching used %d nodes on a 5x5 spread instance", r1.Nodes)
	}
}

func TestAddSOS1IgnoresTrivialGroups(t *testing.T) {
	m := NewModel()
	v := m.AddBinary("x", -1)
	m.AddSOS1([]Var{v}) // single-member group: no-op
	if len(m.sos1) != 0 {
		t.Fatal("trivial group stored")
	}
	m.AddRow([]Term{T(v, 1)}, LE, 1)
	r, err := m.Solve(Options{})
	if err != nil || r.Status != Optimal {
		t.Fatalf("status %v err %v", r.Status, err)
	}
}

func TestSOS1SkipsFixedVariables(t *testing.T) {
	// With most of a group pre-fixed to zero, branching must work on the
	// remainder and still find the optimum.
	m := NewModel()
	w := m.AddVar("w", 0, Inf, 1)
	var group []Var
	var row []Term
	for k := 0; k < 6; k++ {
		v := m.AddBinary("s", 0)
		group = append(group, v)
		row = append(row, T(v, 1))
	}
	m.AddRow(row, EQ, 1)
	m.AddSOS1(group)
	// Slot costs: picking k costs k+1; w ≥ cost of the picked slot.
	for k, v := range group {
		m.AddRow([]Term{T(v, float64(k+1)), T(w, -1)}, LE, 0)
	}
	// Fix the two cheapest slots to zero.
	m.Fix(group[0], 0)
	m.Fix(group[1], 0)
	r, err := m.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal {
		t.Fatalf("status %v", r.Status)
	}
	if r.Obj < 3-1e-6 {
		t.Fatalf("obj = %g, want ≥ 3 with slots 0,1 fixed", r.Obj)
	}
}

func TestSOS1TimeoutReturnsIncumbent(t *testing.T) {
	// A larger symmetric instance with a tiny node budget: the solver must
	// return a feasible incumbent (found by rounding or branching), never
	// an invalid state.
	mod, _, _ := buildSelection(8, 8, func(g, k int) float64 { return 1 })
	r, err := mod.Solve(Options{MaxNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	switch r.Status {
	case Optimal, Feasible:
		if ok, _ := mod.CheckFeasible(r.X); !ok {
			t.Fatal("returned infeasible incumbent")
		}
	case Limit:
		// Acceptable: no solution within 3 nodes.
	default:
		t.Fatalf("status %v", r.Status)
	}
}
