package milp

import "fmt"

// Disjunct is one alternative of a disjunction: Σ Terms ≤ RHS.
type Disjunct struct {
	Terms []Term
	RHS   float64
}

// AddDisjunctionLE enforces that at least one of the given disjuncts holds,
// using the paper's big-M linearisation (constraints (4)-(8)): for each
// alternative k a binary c_k is created with
//
//	Σ terms_k ≤ rhs_k + c_k·M
//	Σ_k c_k = len(disjuncts) - 1
//
// so exactly one alternative is forced active (c_k = 0 relaxes nothing).
//
// When relaxable is true, an extra binary c₅ is added and the cardinality
// row becomes Σ c_k = len-1 + c₅ (the paper's constraint (12)): setting
// c₅ = 1 lets every alternative go slack, which is how storage devices are
// allowed to overlap their parent devices. The returned relax variable is
// that c₅ (or -1 when relaxable is false).
func (m *Model) AddDisjunctionLE(name string, disjuncts []Disjunct, bigM float64, relaxable bool) (choices []Var, relax Var) {
	if len(disjuncts) == 0 {
		panic("milp: empty disjunction")
	}
	card := make([]Term, 0, len(disjuncts)+1)
	for k, d := range disjuncts {
		c := m.AddBinary(fmt.Sprintf("%s.c%d", name, k+1), 0)
		choices = append(choices, c)
		row := make([]Term, 0, len(d.Terms)+1)
		row = append(row, d.Terms...)
		row = append(row, Term{c, -bigM})
		m.AddRow(row, LE, d.RHS)
		card = append(card, Term{c, 1})
	}
	relax = Var(-1)
	if relaxable {
		relax = m.AddBinary(name+".c5", 0)
		card = append(card, Term{relax, -1})
	}
	m.AddRow(card, EQ, float64(len(disjuncts)-1))
	return choices, relax
}
