package milp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func mustSolve(t *testing.T, m *Model, opts Options) *Result {
	t.Helper()
	r, err := m.Solve(opts)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return r
}

func TestPureLPPassThrough(t *testing.T) {
	m := NewModel()
	x := m.AddVar("x", 0, 10, -1)
	m.AddRow([]Term{{x, 1}}, LE, 7.5)
	r := mustSolve(t, m, Options{})
	if r.Status != Optimal || math.Abs(r.Obj+7.5) > 1e-6 {
		t.Fatalf("got %v obj %g", r.Status, r.Obj)
	}
}

func TestKnapsack(t *testing.T) {
	// maximize 10x1 + 13x2 + 7x3 s.t. 5x1 + 7x2 + 4x3 ≤ 9, x binary.
	// Best: x1+x3 (weight 9, value 17); x2 alone 13; x1 alone 10.
	m := NewModel()
	x1 := m.AddBinary("x1", -10)
	x2 := m.AddBinary("x2", -13)
	x3 := m.AddBinary("x3", -7)
	m.AddRow([]Term{{x1, 5}, {x2, 7}, {x3, 4}}, LE, 9)
	r := mustSolve(t, m, Options{})
	if r.Status != Optimal {
		t.Fatalf("status %v", r.Status)
	}
	if math.Abs(r.Obj+17) > 1e-6 {
		t.Fatalf("obj = %g, want -17", r.Obj)
	}
	if math.Round(r.X[x1]) != 1 || math.Round(r.X[x2]) != 0 || math.Round(r.X[x3]) != 1 {
		t.Fatalf("X = %v", r.X)
	}
}

func TestIntegerRounding(t *testing.T) {
	// min -x s.t. 2x ≤ 7, x integer → x = 3 (LP gives 3.5).
	m := NewModel()
	x := m.AddInt("x", 0, 100, -1)
	m.AddRow([]Term{{x, 2}}, LE, 7)
	r := mustSolve(t, m, Options{})
	if r.Status != Optimal || math.Round(r.X[x]) != 3 {
		t.Fatalf("status %v x = %g", r.Status, r.X[x])
	}
}

func TestInfeasibleMILP(t *testing.T) {
	// x + y = 1 with x,y binary and x ≥ 0.6, y ≥ 0.6 is LP-feasible?
	// 0.6+0.6 = 1.2 > 1 → LP infeasible already. Make it integer-only
	// infeasible instead: 2x + 2y = 3 has LP solutions but no integer ones.
	m := NewModel()
	x := m.AddBinary("x", 0)
	y := m.AddBinary("y", 0)
	m.AddRow([]Term{{x, 2}, {y, 2}}, EQ, 3)
	r := mustSolve(t, m, Options{})
	if r.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", r.Status)
	}
}

func TestUnboundedMILP(t *testing.T) {
	m := NewModel()
	x := m.AddInt("x", 0, Inf, -1)
	_ = x
	r := mustSolve(t, m, Options{})
	if r.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", r.Status)
	}
}

func TestAssignmentILP(t *testing.T) {
	// 4×4 assignment with integer costs; compare against brute force.
	cost := [4][4]float64{
		{9, 2, 7, 8},
		{6, 4, 3, 7},
		{5, 8, 1, 8},
		{7, 6, 9, 4},
	}
	m := NewModel()
	var v [4][4]Var
	for i := range v {
		for j := range v[i] {
			v[i][j] = m.AddBinary("x", cost[i][j])
		}
	}
	for i := 0; i < 4; i++ {
		var row, col []Term
		for j := 0; j < 4; j++ {
			row = append(row, Term{v[i][j], 1})
			col = append(col, Term{v[j][i], 1})
		}
		m.AddRow(row, EQ, 1)
		m.AddRow(col, EQ, 1)
	}
	r := mustSolve(t, m, Options{})
	if r.Status != Optimal {
		t.Fatalf("status %v", r.Status)
	}
	best := math.Inf(1)
	perm := []int{0, 1, 2, 3}
	var rec func(k int, used [4]bool, p [4]int)
	rec = func(k int, used [4]bool, p [4]int) {
		if k == 4 {
			s := 0.0
			for i, j := range p {
				s += cost[i][j]
			}
			if s < best {
				best = s
			}
			return
		}
		for _, j := range perm {
			if !used[j] {
				used[j] = true
				p[k] = j
				rec(k+1, used, p)
				used[j] = false
			}
		}
	}
	rec(0, [4]bool{}, [4]int{})
	if math.Abs(r.Obj-best) > 1e-6 {
		t.Fatalf("ILP obj %g, brute force %g", r.Obj, best)
	}
}

func TestMinimaxBinaryPlacement(t *testing.T) {
	// A miniature of the paper's model: two operations, two slots; placing
	// both on one slot costs 80, splitting costs 40 each. Minimise max.
	m := NewModel()
	w := m.AddVar("w", 0, Inf, 1)
	// s[i][k]: op i on slot k.
	var s [2][2]Var
	for i := 0; i < 2; i++ {
		s[i][0] = m.AddBinary("sA", 0)
		s[i][1] = m.AddBinary("sB", 0)
		m.AddRow([]Term{{s[i][0], 1}, {s[i][1], 1}}, EQ, 1)
	}
	for k := 0; k < 2; k++ {
		m.AddRow([]Term{{s[0][k], 40}, {s[1][k], 40}, {w, -1}}, LE, 0)
	}
	r := mustSolve(t, m, Options{})
	if r.Status != Optimal || math.Abs(r.Obj-40) > 1e-6 {
		t.Fatalf("status %v obj %g, want 40", r.Status, r.Obj)
	}
	if math.Round(r.X[s[0][0]]) == math.Round(r.X[s[1][0]]) {
		t.Fatal("operations not spread across slots")
	}
}

func TestDisjunctionExactlyOneActive(t *testing.T) {
	// x ≤ 2 OR x ≥ 8 (as -x ≤ -8), x integer in [0,10], maximise x → 10.
	m := NewModel()
	x := m.AddInt("x", 0, 10, -1)
	m.AddDisjunctionLE("d", []Disjunct{
		{Terms: []Term{{x, 1}}, RHS: 2},
		{Terms: []Term{{x, -1}}, RHS: -8},
	}, 100, false)
	r := mustSolve(t, m, Options{})
	if r.Status != Optimal || math.Round(r.X[x]) != 10 {
		t.Fatalf("status %v x %g", r.Status, r.X[x])
	}
	// Now minimise x with x ≥ 3 → must jump to the x ≥ 8 branch? No:
	// branch "x ≤ 2" conflicts with x ≥ 3, so x = 8.
	m2 := NewModel()
	y := m2.AddInt("y", 3, 10, 1)
	m2.AddDisjunctionLE("d", []Disjunct{
		{Terms: []Term{{y, 1}}, RHS: 2},
		{Terms: []Term{{y, -1}}, RHS: -8},
	}, 100, false)
	r2 := mustSolve(t, m2, Options{})
	if r2.Status != Optimal || math.Round(r2.X[y]) != 8 {
		t.Fatalf("status %v y %g, want 8", r2.Status, r2.X[y])
	}
}

func TestDisjunctionRelaxable(t *testing.T) {
	// Same gap disjunction but relaxable: forcing relax=1 admits y=5.
	m := NewModel()
	y := m.AddInt("y", 5, 5, 0) // pinned in the "forbidden" gap
	_, relax := m.AddDisjunctionLE("d", []Disjunct{
		{Terms: []Term{{y, 1}}, RHS: 2},
		{Terms: []Term{{y, -1}}, RHS: -8},
	}, 100, true)
	r := mustSolve(t, m, Options{})
	if r.Status != Optimal {
		t.Fatalf("status %v, want optimal via relax", r.Status)
	}
	if math.Round(r.X[relax]) != 1 {
		t.Fatalf("relax = %g, want 1", r.X[relax])
	}
	// Pinning relax to 0 must make it infeasible.
	m.Fix(relax, 0)
	r2 := mustSolve(t, m, Options{})
	if r2.Status != Infeasible {
		t.Fatalf("status %v, want infeasible with relax pinned", r2.Status)
	}
}

func TestIncumbentWarmStart(t *testing.T) {
	m := NewModel()
	x1 := m.AddBinary("x1", -10)
	x2 := m.AddBinary("x2", -13)
	x3 := m.AddBinary("x3", -7)
	m.AddRow([]Term{{x1, 5}, {x2, 7}, {x3, 4}}, LE, 9)
	inc := make([]float64, m.NumVars())
	inc[x2] = 1 // value -13, feasible
	r := mustSolve(t, m, Options{Incumbent: inc})
	if r.Status != Optimal || math.Abs(r.Obj+17) > 1e-6 {
		t.Fatalf("status %v obj %g", r.Status, r.Obj)
	}
}

func TestBadIncumbentIgnored(t *testing.T) {
	m := NewModel()
	x := m.AddBinary("x", -1)
	m.AddRow([]Term{{x, 1}}, LE, 1)
	bad := []float64{5} // violates bounds
	r := mustSolve(t, m, Options{Incumbent: bad})
	if r.Status != Optimal || math.Round(r.X[x]) != 1 {
		t.Fatalf("status %v x %g", r.Status, r.X[x])
	}
}

func TestNodeLimit(t *testing.T) {
	// A problem needing branching, with MaxNodes 1: limit (or feasible if
	// the rounding heuristic lands).
	m := NewModel()
	x := m.AddInt("x", 0, 100, -1)
	y := m.AddInt("y", 0, 100, -1)
	m.AddRow([]Term{{x, 3}, {y, 7}}, LE, 20)
	m.AddRow([]Term{{x, 7}, {y, 3}}, LE, 20)
	r := mustSolve(t, m, Options{MaxNodes: 1})
	if r.Status == Optimal && r.Nodes > 1 {
		t.Fatalf("node limit ignored: %d nodes", r.Nodes)
	}
}

func TestTimeout(t *testing.T) {
	m := NewModel()
	var vars []Var
	for i := 0; i < 30; i++ {
		vars = append(vars, m.AddBinary("x", float64(-1-i%5)))
	}
	var terms []Term
	for i, v := range vars {
		terms = append(terms, Term{v, float64(3 + i%7)})
	}
	m.AddRow(terms, LE, 37)
	r := mustSolve(t, m, Options{Timeout: time.Nanosecond})
	if r.Nodes > 2 {
		t.Fatalf("timeout ignored: %d nodes", r.Nodes)
	}
	_ = r
}

func TestBoundsRestoredAfterSolve(t *testing.T) {
	m := NewModel()
	x := m.AddInt("x", 0, 9, -1)
	m.AddRow([]Term{{x, 2}}, LE, 7)
	_ = mustSolve(t, m, Options{})
	lo, hi := m.Bounds(x)
	if lo != 0 || hi != 9 {
		t.Fatalf("bounds after solve = [%g,%g]", lo, hi)
	}
	// Re-solving after adding a row must work and see the new row.
	m.AddRow([]Term{{x, 1}}, LE, 2)
	r := mustSolve(t, m, Options{})
	if math.Round(r.X[x]) != 2 {
		t.Fatalf("re-solve x = %g, want 2", r.X[x])
	}
}

func TestCheckFeasible(t *testing.T) {
	m := NewModel()
	x := m.AddBinary("x", 2)
	y := m.AddVar("y", 0, 5, 1)
	m.AddRow([]Term{{x, 1}, {y, 1}}, GE, 1)
	if ok, _ := m.CheckFeasible([]float64{0.5, 1}); ok {
		t.Error("fractional binary accepted")
	}
	if ok, _ := m.CheckFeasible([]float64{0, 0.5}); ok {
		t.Error("violated GE row accepted")
	}
	ok, obj := m.CheckFeasible([]float64{1, 0.5})
	if !ok || math.Abs(obj-2.5) > 1e-9 {
		t.Errorf("feasible point rejected or obj %g", obj)
	}
	if ok, _ := m.CheckFeasible([]float64{1}); ok {
		t.Error("wrong-length vector accepted")
	}
}

// Property: branch and bound on random small knapsacks matches brute force.
func TestRandomKnapsackProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(8)
		val := make([]float64, n)
		wt := make([]float64, n)
		cap := 0.0
		for i := range val {
			val[i] = float64(1 + r.Intn(20))
			wt[i] = float64(1 + r.Intn(10))
			cap += wt[i]
		}
		cap = math.Floor(cap / 2)
		m := NewModel()
		vars := make([]Var, n)
		terms := make([]Term, n)
		for i := range vars {
			vars[i] = m.AddBinary("x", -val[i])
			terms[i] = Term{vars[i], wt[i]}
		}
		m.AddRow(terms, LE, cap)
		res, err := m.Solve(Options{})
		if err != nil || res.Status != Optimal {
			return false
		}
		// Brute force.
		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			w, v := 0.0, 0.0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					w += wt[i]
					v += val[i]
				}
			}
			if w <= cap && v > best {
				best = v
			}
		}
		return math.Abs(-res.Obj-best) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the incumbent returned always satisfies CheckFeasible.
func TestSolutionAlwaysFeasibleProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := NewModel()
		n := 4 + r.Intn(6)
		vars := make([]Var, n)
		for i := range vars {
			vars[i] = m.AddBinary("x", float64(r.Intn(9)-4))
		}
		for k := 0; k < 3; k++ {
			var terms []Term
			for _, v := range vars {
				if r.Intn(2) == 0 {
					terms = append(terms, Term{v, float64(1 + r.Intn(3))})
				}
			}
			if terms != nil {
				m.AddRow(terms, LE, float64(2+r.Intn(6)))
			}
		}
		res, err := m.Solve(Options{})
		if err != nil {
			return false
		}
		if res.Status != Optimal && res.Status != Feasible {
			return true // nothing to check
		}
		ok, obj := m.CheckFeasible(res.X)
		return ok && math.Abs(obj-res.Obj) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKnapsack20(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	val := make([]float64, 20)
	wt := make([]float64, 20)
	for i := range val {
		val[i] = float64(1 + r.Intn(30))
		wt[i] = float64(1 + r.Intn(12))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := NewModel()
		terms := make([]Term, len(val))
		for j := range val {
			v := m.AddBinary("x", -val[j])
			terms[j] = Term{v, wt[j]}
		}
		m.AddRow(terms, LE, 60)
		res, err := m.Solve(Options{})
		if err != nil || res.Status != Optimal {
			b.Fatalf("status %v err %v", res.Status, err)
		}
	}
}
