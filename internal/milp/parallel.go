package milp

import (
	"math"
	"time"

	"mfsynth/internal/lp"
	"mfsynth/internal/par"
	"mfsynth/internal/synerr"
)

// Parallel branch and bound.
//
// The serial search (milp.go) is a recursive DFS that solves one LP
// relaxation per node. The parallel mode below explores the *same* tree in
// the *same* order but decouples LP solving from node processing:
//
//   - the frontier is an explicit DFS stack of nodes, each node carrying
//     the bound changes that define it relative to the root;
//   - each synchronized round prefetches the unsolved nodes nearest the
//     top of the stack concurrently (one lp.Problem clone + solver lane
//     per worker), running the same solve ladder as the serial search:
//     objective floor, warm dual re-solve from the parent's frozen basis
//     (whose Optimal outcome IS the node's LP solution and whose
//     Infeasible outcome is a prune certificate), cold LP solve for the
//     root and warm failures — skipping the later rungs when an earlier
//     one already resolves the node;
//   - nodes are then *processed* strictly in stack (= serial DFS) order by
//     a single goroutine: fathoming against the incumbent, incumbent
//     updates, branching-variable selection and child creation all happen
//     in that sequential merge.
//
// The merge replays the serial decision ladder with the *current*
// incumbent, reusing the prefetched results. This is sound because the
// incumbent only improves between prefetch and processing, which only ever
// *eases* the fathoming threshold: a prune predicted at prefetch time
// still holds at processing time, so a skipped cold solve is never missed.
// Work accounting (LP solves, pivots, warm re-solves) happens at
// processing time and counts exactly what the serial recursion would have
// done at that node — speculative overshoot is never observed — so the
// milp.* counters, the incumbent trajectory, the branching decisions and
// the Result are all bit-identical to a serial run. The only divergence is
// wall-clock-dependent (Options.Timeout), exactly as in serial mode.
//
// bbNode is one frontier entry.
type bbNode struct {
	deltas []lp.BoundDelta // bound changes from the root, in application order
	// ownStart marks where this node's own deltas begin: deltas[:ownStart]
	// came from ancestors, deltas[ownStart:] from the branch that created
	// this node (the warm re-solve applies only the suffix to the parent
	// tableau).
	ownStart int

	// parent is the creating node's frozen optimum (reference-counted;
	// released once the warm re-solve has consumed it).
	parent *lp.WarmSnap

	// Prefetched state, written by one worker, read by the merge.
	prefetched bool
	predFathom bool // an early ladder rung guarantees this node is pruned
	warmDone   bool
	warmSol    bool // sol came from the warm re-solve, not a cold solve
	warmRes    lp.WarmResult
	snap       *lp.WarmSnap // this node's own frozen optimum, for children
	sol        *lp.Solution
	err        error
}

// runParallel drives the synchronized-round frontier search with the given
// number of workers (> 1).
func (s *search) runParallel(workers int) (nodeStatus, error) {
	s.rootLo, s.rootHi = s.m.lp.BoundsSnapshot()
	clones := make([]*lp.Problem, workers)
	scratches := make([]*lp.Scratch, workers)
	warms := make([]*lp.WarmSolver, workers)
	for i := range clones {
		clones[i] = s.m.lp.Clone()
		// Lanes 1..W belong to the workers (lane 0 is this merge
		// goroutine); claimed here, before any concurrency.
		scratches[i], warms[i] = s.arenas.lane(i+1, clones[i])
	}

	stack := []*bbNode{{}}
	pending := make([]*bbNode, 0, workers)
	for len(stack) > 0 {
		// Round: prefetch the unsolved nodes nearest the top of the stack.
		// Every stacked node will be processed, so none of these solves is
		// speculative waste (short of a node/time limit aborting the run).
		pending = pending[:0]
		for i := len(stack) - 1; i >= 0 && len(pending) < workers; i-- {
			if nd := stack[i]; !nd.prefetched {
				pending = append(pending, nd)
			}
		}
		if len(pending) > 0 {
			batch := pending
			// The fathoming threshold the workers prune against is captured
			// once per round on the merge goroutine: deterministic, and
			// never easier than the threshold at processing time.
			roundThresh := s.fathomThreshold()
			// The work fn never errors, so a non-nil return is a recovered
			// worker panic surfaced by the pool — abort the solve with it.
			poolErr := par.Do(workers, len(batch), func(slot, i int) error {
				s.prefetch(batch[i], clones[slot], scratches[slot], warms[slot], roundThresh)
				return nil
			})
			if poolErr != nil {
				return nodeDone, poolErr
			}
		}

		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		st, children, err := s.processNode(nd)
		if err != nil {
			return nodeDone, err
		}
		if st != nodeDone {
			return st, nil // limit or unbounded aborts the search, as in serial
		}
		// children[0] is explored first in the serial order: push it last.
		for i := len(children) - 1; i >= 0; i-- {
			stack = append(stack, children[i])
		}
	}
	return nodeDone, nil
}

// prefetch runs the solve ladder for one node on a worker: floor check,
// warm dual re-solve from the parent basis, cold solve — each rung skipped
// when an earlier one already resolved the node. A warm Optimal outcome is
// the node's LP solution (materialised right here, on the worker); a warm
// Infeasible outcome is a prune certificate; only the root, nodes below an
// unsnapshottable parent and warm failures pay the cold solve.
func (s *search) prefetch(nd *bbNode, cl *lp.Problem, scr *lp.Scratch, wsol *lp.WarmSolver, roundThresh float64) {
	nd.prefetched = true
	cl.RestoreBounds(s.rootLo, s.rootHi)
	for _, d := range nd.deltas {
		cl.SetBounds(d.Var, d.Lo, d.Hi)
	}
	warmMode := !s.coldLP
	if warmMode && !math.IsInf(roundThresh, 1) {
		if fl := cl.ObjectiveFloor(); fl >= roundThresh+boundMargin {
			nd.predFathom = true // the merge floor check will prune first
			s.snaps.Release(nd.parent)
			nd.parent = nil
			return
		}
	}
	if warmMode && nd.parent != nil && nd.ownStart < len(nd.deltas) {
		nd.warmRes = wsol.Resolve(nd.parent, nd.deltas[nd.ownStart:])
		nd.warmDone = true
		s.snaps.Release(nd.parent)
		nd.parent = nil
		switch nd.warmRes.Status {
		case lp.Optimal:
			if !math.IsInf(roundThresh, 1) && nd.warmRes.Obj >= roundThresh+boundMargin {
				nd.predFathom = true // the merge warm-bound check prunes first
				return
			}
			nd.sol = wsol.Solution(nd.warmRes.Obj, nd.warmRes.Iters)
			nd.warmSol = true
			nd.snap = wsol.Snapshot(s.snaps)
			return
		case lp.Infeasible:
			nd.predFathom = true // the merge prunes on the certificate
			return
		}
		// IterLimit (cap or numerical doubt): fall through to the cold solve.
	}
	if warmMode {
		var retained *lp.WarmSnap
		nd.sol, retained, nd.err = cl.SolveScratchRetain(scr, s.snaps)
		if retained != nil {
			s.snaps.Release(nd.snap)
			nd.snap = retained
		}
	} else {
		nd.sol, nd.err = cl.SolveScratch(scr)
	}
}

// releaseNode drops a node's snapshot references (safe on nils).
func (s *search) releaseNode(nd *bbNode) {
	s.snaps.Release(nd.snap)
	nd.snap = nil
	s.snaps.Release(nd.parent)
	nd.parent = nil
}

// processNode applies the exact per-node logic of the serial node() to a
// prefetched node and returns the children to push (first-explored first).
// It runs on the merge goroutine only.
func (s *search) processNode(nd *bbNode) (nodeStatus, []*bbNode, error) {
	if s.nodes >= s.maxNodes {
		s.releaseNode(nd)
		return nodeLimit, nil, nil
	}
	if s.hasDeadline {
		s.deadlineChecks++
		if time.Now().After(s.deadline) {
			s.releaseNode(nd)
			return nodeLimit, nil, nil
		}
	}
	if s.hasCtx {
		if err := s.ctx.Err(); err != nil {
			s.releaseNode(nd)
			return nodeLimit, nil, synerr.Deadline("milp", err)
		}
	}
	s.nodes++
	if s.nodes%pulseEvery == 0 {
		s.pulse()
	}

	warmMode := !s.coldLP
	thresh := s.fathomThreshold()

	// chooseSOS1, CheckFeasible, Bounds and the floor check read the
	// model's bound state; materialise this node's bounds there (the merge
	// is sequential, and Solve restores the root bounds on return).
	s.applyNodeBounds(nd)

	if warmMode && !math.IsInf(thresh, 1) {
		if fl := s.m.lp.ObjectiveFloor(); fl >= thresh+boundMargin {
			s.floorFathoms++
			if !s.rootSet {
				s.bound = fl
				s.rootSet = true
			}
			s.releaseNode(nd)
			return nodeDone, nil, nil
		}
	}
	if nd.warmDone {
		// Replay the serial warm accounting and decisions with the live
		// threshold (never easier than the prefetch round's).
		s.warmResolves++
		s.pivots += int64(nd.warmRes.Iters)
		switch nd.warmRes.Status {
		case lp.Optimal:
			if !math.IsInf(thresh, 1) && nd.warmRes.Obj >= thresh+boundMargin {
				s.warmFathoms++
				s.releaseNode(nd)
				return nodeDone, nil, nil
			}
		case lp.Infeasible:
			s.warmInfeasible++
			s.releaseNode(nd)
			return nodeDone, nil, nil
		default:
			s.warmFailures++
			s.warmFailPivots += int64(nd.warmRes.Iters)
		}
	}

	if nd.err != nil {
		s.releaseNode(nd)
		return nodeDone, nil, nd.err
	}
	if nd.sol == nil {
		// Unreachable: a prefetch-predicted prune always holds at
		// processing time (the threshold only eases). Recover by solving
		// on the merge lane rather than crashing.
		nd.sol, nd.err = s.m.lp.SolveScratch(s.scratch)
		if nd.err != nil {
			s.releaseNode(nd)
			return nodeDone, nil, nd.err
		}
	}
	sol := nd.sol
	if !nd.warmSol {
		s.lpSolves++
		s.pivots += int64(sol.Iters)
	}
	switch sol.Status {
	case lp.Infeasible:
		s.releaseNode(nd)
		return nodeDone, nil, nil
	case lp.Unbounded:
		s.releaseNode(nd)
		return nodeUnbounded, nil, nil
	case lp.IterLimit:
		s.releaseNode(nd)
		return nodeLimit, nil, nil
	}
	if !s.rootSet {
		s.bound = sol.Obj
		s.rootSet = true
	}
	s.gapHist.Observe(sol.Obj - s.bound)
	if sol.Obj >= s.bestObj-1e-9 || (s.absGap > 0 && sol.Obj >= s.bestObj-s.absGap) {
		s.releaseNode(nd)
		return nodeDone, nil, nil // fathom by bound
	}

	if branches := s.chooseSOS1(sol); branches[0] != nil {
		children := make([]*bbNode, 0, 2)
		for _, fix := range branches {
			child := &bbNode{deltas: extendDeltas(nd.deltas, len(fix)), ownStart: len(nd.deltas)}
			for _, v := range fix {
				child.deltas = append(child.deltas, lp.BoundDelta{Var: v, Lo: 0, Hi: 0})
			}
			s.adoptChild(child, nd)
			children = append(children, child)
		}
		s.releaseNode(nd)
		return nodeDone, children, nil
	}

	// Find the most fractional integer variable.
	branch, frac := -1, 0.0
	for v := 0; v < s.m.NumVars(); v++ {
		if !s.m.integer[v] {
			continue
		}
		f := math.Abs(sol.X[v] - math.Round(sol.X[v]))
		if f > intTol && f > frac {
			branch, frac = v, f
		}
	}
	if branch < 0 {
		// Integer feasible.
		if sol.Obj < s.bestObj-1e-9 {
			s.bestObj = sol.Obj
			s.bestX = roundInts(s.m, sol.X)
			s.noteIncumbent()
		}
		s.releaseNode(nd)
		return nodeDone, nil, nil
	}

	// Rounding heuristic: snap all integers and test (under node bounds,
	// like the serial search at this point of the recursion).
	if s.bestX == nil {
		cand := roundInts(s.m, sol.X)
		if ok, obj := s.m.CheckFeasible(cand); ok && obj < s.bestObj {
			s.bestObj, s.bestX = obj, cand
			s.noteIncumbent()
		}
	}

	v := lp.Var(branch)
	lo, hi := s.m.lp.Bounds(v)
	floor := math.Floor(sol.X[branch])
	// Explore the side nearer the LP value first.
	first, second := [2]float64{lo, floor}, [2]float64{floor + 1, hi}
	if sol.X[branch]-floor > 0.5 {
		first, second = second, first
	}
	var children []*bbNode
	for _, side := range [][2]float64{first, second} {
		if side[0] > side[1] {
			continue
		}
		child := &bbNode{deltas: extendDeltas(nd.deltas, 1), ownStart: len(nd.deltas)}
		child.deltas = append(child.deltas, lp.BoundDelta{Var: v, Lo: side[0], Hi: side[1]})
		s.adoptChild(child, nd)
		children = append(children, child)
	}
	s.releaseNode(nd)
	return nodeDone, children, nil
}

// adoptChild hands nd's frozen optimum to a freshly created child as its
// warm-start parent (one snapshot reference per child).
func (s *search) adoptChild(child, nd *bbNode) {
	if nd.snap == nil {
		return
	}
	s.snaps.AddRef(nd.snap)
	child.parent = nd.snap
}

// applyNodeBounds materialises nd's bound state on the model's LP.
func (s *search) applyNodeBounds(nd *bbNode) {
	s.m.lp.RestoreBounds(s.rootLo, s.rootHi)
	for _, d := range nd.deltas {
		s.m.lp.SetBounds(d.Var, d.Lo, d.Hi)
	}
}

// extendDeltas copies a parent delta chain with room for extra entries
// (children must not share backing arrays — both sides append).
func extendDeltas(parent []lp.BoundDelta, extra int) []lp.BoundDelta {
	out := make([]lp.BoundDelta, len(parent), len(parent)+extra)
	copy(out, parent)
	return out
}
