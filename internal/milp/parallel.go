package milp

import (
	"math"
	"time"

	"mfsynth/internal/lp"
	"mfsynth/internal/par"
	"mfsynth/internal/synerr"
)

// Parallel branch and bound.
//
// The serial search (milp.go) is a recursive DFS that solves one LP
// relaxation per node. The parallel mode below explores the *same* tree in
// the *same* order but decouples LP solving from node processing:
//
//   - the frontier is an explicit DFS stack of nodes, each node carrying
//     the bound changes that define it relative to the root;
//   - each synchronized round solves the LP relaxations of the unsolved
//     nodes nearest the top of the stack concurrently (one lp.Problem
//     clone + tableau arena per worker);
//   - nodes are then *processed* strictly in stack (= serial DFS) order by
//     a single goroutine: fathoming against the incumbent, incumbent
//     updates, branching-variable selection and child creation all happen
//     in that sequential merge.
//
// Because an LP relaxation depends only on the node's bounds — never on
// the incumbent — and every stacked node is eventually processed (the
// serial recursion also visits both children of every branch), the
// speculative solves are never wasted and the processing sequence is
// bit-identical to the serial recursion: same incumbent trajectory, same
// branching decisions, same node count, same Result. The only divergence
// is wall-clock-dependent (Options.Timeout), exactly as in serial mode.
//
// bbNode is one frontier entry.
type bbNode struct {
	deltas []boundDelta // bound changes from the root, in application order
	sol    *lp.Solution // prefetched relaxation (nil until a round solves it)
	err    error
}

// boundDelta is one SetBounds call replayed onto a clone.
type boundDelta struct {
	v      lp.Var
	lo, hi float64
}

// runParallel drives the synchronized-round frontier search with the given
// number of workers (> 1).
func (s *search) runParallel(workers int) (nodeStatus, error) {
	s.rootLo, s.rootHi = s.m.lp.BoundsSnapshot()
	clones := make([]*lp.Problem, workers)
	arenas := make([]*lp.Scratch, workers)
	for i := range clones {
		clones[i] = s.m.lp.Clone()
		arenas[i] = lp.NewScratch()
	}

	stack := []*bbNode{{}}
	pending := make([]*bbNode, 0, workers)
	for len(stack) > 0 {
		// Round: prefetch the unsolved nodes nearest the top of the stack.
		// Every stacked node will be processed, so none of these solves is
		// speculative waste (short of a node/time limit aborting the run).
		pending = pending[:0]
		for i := len(stack) - 1; i >= 0 && len(pending) < workers; i-- {
			if nd := stack[i]; nd.sol == nil && nd.err == nil {
				pending = append(pending, nd)
			}
		}
		if len(pending) > 0 {
			batch := pending
			// The work fn never errors, so a non-nil return is a recovered
			// worker panic surfaced by the pool — abort the solve with it.
			poolErr := par.Do(workers, len(batch), func(slot, i int) error {
				nd := batch[i]
				cl := clones[slot]
				cl.RestoreBounds(s.rootLo, s.rootHi)
				for _, d := range nd.deltas {
					cl.SetBounds(d.v, d.lo, d.hi)
				}
				nd.sol, nd.err = cl.SolveScratch(arenas[slot])
				return nil
			})
			if poolErr != nil {
				return nodeDone, poolErr
			}
			// LP accounting happens here (not in processNode) because the
			// parallel rounds own the solves; summed after the join, on the
			// merge goroutine.
			for _, nd := range batch {
				if nd.sol != nil {
					s.lpSolves++
					s.pivots += int64(nd.sol.Iters)
				}
			}
		}

		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		st, children, err := s.processNode(nd)
		if err != nil {
			return nodeDone, err
		}
		if st != nodeDone {
			return st, nil // limit or unbounded aborts the search, as in serial
		}
		// children[0] is explored first in the serial order: push it last.
		for i := len(children) - 1; i >= 0; i-- {
			stack = append(stack, children[i])
		}
	}
	return nodeDone, nil
}

// processNode applies the exact per-node logic of the serial node() to a
// prefetched node and returns the children to push (first-explored first).
// It runs on the merge goroutine only.
func (s *search) processNode(nd *bbNode) (nodeStatus, []*bbNode, error) {
	if s.nodes >= s.maxNodes {
		return nodeLimit, nil, nil
	}
	if s.hasDeadline {
		s.deadlineChecks++
		if time.Now().After(s.deadline) {
			return nodeLimit, nil, nil
		}
	}
	if s.hasCtx {
		if err := s.ctx.Err(); err != nil {
			return nodeLimit, nil, synerr.Deadline("milp", err)
		}
	}
	s.nodes++

	if nd.err != nil {
		return nodeDone, nil, nd.err
	}
	sol := nd.sol
	switch sol.Status {
	case lp.Infeasible:
		return nodeDone, nil, nil
	case lp.Unbounded:
		return nodeUnbounded, nil, nil
	case lp.IterLimit:
		return nodeLimit, nil, nil
	}
	if !s.rootSet {
		s.bound = sol.Obj
		s.rootSet = true
	}
	s.gapHist.Observe(sol.Obj - s.bound)
	if sol.Obj >= s.bestObj-1e-9 || (s.absGap > 0 && sol.Obj >= s.bestObj-s.absGap) {
		return nodeDone, nil, nil // fathom by bound
	}

	// chooseSOS1, CheckFeasible and Bounds read the model's bound state;
	// materialise this node's bounds there (the merge is sequential, and
	// Solve restores the root bounds on return).
	s.applyNodeBounds(nd)

	if branches := s.chooseSOS1(sol); branches[0] != nil {
		children := make([]*bbNode, 0, 2)
		for _, fix := range branches {
			child := &bbNode{deltas: extendDeltas(nd.deltas, len(fix))}
			for _, v := range fix {
				child.deltas = append(child.deltas, boundDelta{v: v, lo: 0, hi: 0})
			}
			children = append(children, child)
		}
		return nodeDone, children, nil
	}

	// Find the most fractional integer variable.
	branch, frac := -1, 0.0
	for v := 0; v < s.m.NumVars(); v++ {
		if !s.m.integer[v] {
			continue
		}
		f := math.Abs(sol.X[v] - math.Round(sol.X[v]))
		if f > intTol && f > frac {
			branch, frac = v, f
		}
	}
	if branch < 0 {
		// Integer feasible.
		if sol.Obj < s.bestObj-1e-9 {
			s.bestObj = sol.Obj
			s.bestX = roundInts(s.m, sol.X)
			s.noteIncumbent()
		}
		return nodeDone, nil, nil
	}

	// Rounding heuristic: snap all integers and test (under node bounds,
	// like the serial search at this point of the recursion).
	if s.bestX == nil {
		cand := roundInts(s.m, sol.X)
		if ok, obj := s.m.CheckFeasible(cand); ok && obj < s.bestObj {
			s.bestObj, s.bestX = obj, cand
			s.noteIncumbent()
		}
	}

	v := lp.Var(branch)
	lo, hi := s.m.lp.Bounds(v)
	floor := math.Floor(sol.X[branch])
	// Explore the side nearer the LP value first.
	first, second := [2]float64{lo, floor}, [2]float64{floor + 1, hi}
	if sol.X[branch]-floor > 0.5 {
		first, second = second, first
	}
	var children []*bbNode
	for _, side := range [][2]float64{first, second} {
		if side[0] > side[1] {
			continue
		}
		child := &bbNode{deltas: extendDeltas(nd.deltas, 1)}
		child.deltas = append(child.deltas, boundDelta{v: v, lo: side[0], hi: side[1]})
		children = append(children, child)
	}
	return nodeDone, children, nil
}

// applyNodeBounds materialises nd's bound state on the model's LP.
func (s *search) applyNodeBounds(nd *bbNode) {
	s.m.lp.RestoreBounds(s.rootLo, s.rootHi)
	for _, d := range nd.deltas {
		s.m.lp.SetBounds(d.v, d.lo, d.hi)
	}
}

// extendDeltas copies a parent delta chain with room for extra entries
// (children must not share backing arrays — both sides append).
func extendDeltas(parent []boundDelta, extra int) []boundDelta {
	out := make([]boundDelta, len(parent), len(parent)+extra)
	copy(out, parent)
	return out
}
