package schedule

import (
	"fmt"
	"sort"
	"strings"

	"mfsynth/internal/graph"
)

// Gantt renders the scheduling result as a text Gantt chart in the style of
// the paper's Fig. 9. Each on-chip operation gets one row; '=' marks
// execution, '-' marks the in situ storage phase of the operation's device
// (from the first parent's completion to the operation's start).
func (r *Result) Gantt() string {
	type row struct {
		name       string
		store, beg int
		end        int
	}
	var rows []row
	width := 0
	for _, op := range r.Assay.Ops() {
		if op.Kind == graph.Input {
			continue
		}
		beg, end := r.Start[op.ID], r.Finish[op.ID]
		store := beg
		if t, ok := r.StorageStart(op.ID); ok {
			store = t
		}
		rows = append(rows, row{op.Name, store, beg, end})
		if end > width {
			width = end
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].beg != rows[j].beg {
			return rows[i].beg < rows[j].beg
		}
		return rows[i].name < rows[j].name
	})

	nameW := 4
	for _, rw := range rows {
		if len(rw.name) > nameW {
			nameW = len(rw.name)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-*s ", nameW, "tu")
	for t := 0; t <= width; t += 5 {
		fmt.Fprintf(&sb, "%-5d", t)
	}
	sb.WriteByte('\n')
	for _, rw := range rows {
		fmt.Fprintf(&sb, "%-*s ", nameW, rw.name)
		for t := 0; t <= width; t++ {
			switch {
			case t >= rw.beg && t < rw.end:
				sb.WriteByte('=')
			case t >= rw.store && t < rw.beg:
				sb.WriteByte('-')
			default:
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// StorageStart returns the time at which the in situ storage for operation
// id appears: the earliest finish time among id's device parents (Section
// 3.3: "At time ts, oa is completed ... we can build sc ... to store the
// product of oa immediately"). ok is false when id has no device parents
// (its inputs come straight from ports, so no storage phase exists).
func (r *Result) StorageStart(id int) (t int, ok bool) {
	parents := r.Assay.DeviceParents(id)
	if len(parents) == 0 {
		return 0, false
	}
	t = r.Finish[parents[0]]
	for _, p := range parents[1:] {
		if f := r.Finish[p]; f < t {
			t = f
		}
	}
	return t, true
}

// DeviceWindow returns the lifetime of the dynamic device executing
// operation id, including its leading storage phase.
func (r *Result) DeviceWindow(id int) (from, to int) {
	from = r.Start[id]
	if t, ok := r.StorageStart(id); ok && t < from {
		from = t
	}
	return from, r.Finish[id]
}

// StorageDemand returns, per time unit, how many operation products are
// waiting in storage (produced, not yet consumed), and the maximum over
// time. Traditional designs size their dedicated storage by this maximum
// ("the number of cells in the storage is determined by the largest number
// of simultaneous accesses to the storage").
func (r *Result) StorageDemand() (perTU []int, peak int) {
	perTU = make([]int, r.Makespan+1)
	for _, op := range r.Assay.Ops() {
		if op.Kind == graph.Input {
			continue
		}
		for _, e := range r.Assay.Out(op.ID) {
			// Product of op waits from its finish until the consumer starts.
			from, to := r.Finish[op.ID], r.Start[e.To]
			for t := from; t < to && t < len(perTU); t++ {
				perTU[t]++
			}
		}
	}
	for _, n := range perTU {
		if n > peak {
			peak = n
		}
	}
	return perTU, peak
}

// OpsByStart returns on-chip operation IDs sorted by (start, ID).
func (r *Result) OpsByStart() []int {
	var ids []int
	for _, op := range r.Assay.Ops() {
		if op.Kind != graph.Input {
			ids = append(ids, op.ID)
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		if r.Start[ids[i]] != r.Start[ids[j]] {
			return r.Start[ids[i]] < r.Start[ids[j]]
		}
		return ids[i] < ids[j]
	})
	return ids
}

// OpsByCreation returns on-chip operation IDs sorted by device-creation time
// (storage start where present, else operation start), tie-broken by start
// then ID. This is the order in which dynamic devices come into existence.
func (r *Result) OpsByCreation() []int {
	ids := r.OpsByStart()
	creation := func(id int) int {
		from, _ := r.DeviceWindow(id)
		return from
	}
	sort.SliceStable(ids, func(i, j int) bool {
		return creation(ids[i]) < creation(ids[j])
	})
	return ids
}
