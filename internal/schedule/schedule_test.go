package schedule

import (
	"strings"
	"testing"

	"mfsynth/internal/assays"
	"mfsynth/internal/graph"
)

func pcrResult(t *testing.T, res Resources) *Result {
	t.Helper()
	c := assays.PCR()
	r, err := List(c.Assay, Options{Resources: res})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// checkPrecedence verifies starts respect dependencies plus transport delay.
func checkPrecedence(t *testing.T, r *Result) {
	t.Helper()
	a := r.Assay
	for id := 0; id < a.Len(); id++ {
		for _, p := range a.Parents(id) {
			min := r.Finish[p]
			if a.Op(p).Kind != graph.Input {
				min += r.TransportDelay
			}
			if r.Start[id] < min {
				t.Errorf("%s starts at %d before %s allows (%d)",
					a.Op(id).Name, r.Start[id], a.Op(p).Name, min)
			}
		}
		if r.Finish[id] != r.Start[id]+a.Op(id).Duration {
			t.Errorf("%s finish != start+duration", a.Op(id).Name)
		}
	}
}

// checkResourceUse verifies that concurrent mixes of one size never exceed
// the policy and that the binding is consistent.
func checkResourceUse(t *testing.T, r *Result, mixers map[int]int) {
	t.Helper()
	a := r.Assay
	for _, id1 := range a.MixOps() {
		for _, id2 := range a.MixOps() {
			if id1 >= id2 || r.InstanceOf[id1] != r.InstanceOf[id2] {
				continue
			}
			if r.Start[id1] < r.Finish[id2] && r.Start[id2] < r.Finish[id1] {
				t.Errorf("%s and %s overlap on instance %d",
					a.Op(id1).Name, a.Op(id2).Name, r.InstanceOf[id1])
			}
		}
	}
	bySize := map[int]map[int]bool{}
	for _, id := range a.MixOps() {
		size := a.Volume(id)
		if bySize[size] == nil {
			bySize[size] = map[int]bool{}
		}
		bySize[size][r.InstanceOf[id]] = true
	}
	for size, insts := range bySize {
		if limit := mixers[size]; limit > 0 && len(insts) > limit {
			t.Errorf("size %d uses %d instances, limit %d", size, len(insts), limit)
		}
	}
}

func TestUnlimitedScheduleASAP(t *testing.T) {
	r := pcrResult(t, Unlimited())
	checkPrecedence(t, r)
	a := r.Assay
	// All first-level mixes start at 0 with unlimited mixers.
	for i := 1; i <= 4; i++ {
		id := findOp(t, a, "o"+string(rune('0'+i)))
		if r.Start[id] != 0 {
			t.Errorf("o%d starts at %d, want 0", i, r.Start[id])
		}
	}
	// o7 must wait for two levels: 6 + 3 + 6 + 3 = 18.
	o7 := findOp(t, a, "o7")
	if r.Start[o7] != 18 {
		t.Errorf("o7 starts at %d, want 18", r.Start[o7])
	}
	if r.Makespan != 24 {
		t.Errorf("makespan = %d, want 24", r.Makespan)
	}
}

func TestConstrainedScheduleRespectsPolicy(t *testing.T) {
	policy := map[int]int{4: 1, 6: 1, 8: 1, 10: 1}
	r := pcrResult(t, Resources{Mixers: policy})
	checkPrecedence(t, r)
	checkResourceUse(t, r, policy)
	// 4 size-8 mixes serialised on 1 mixer: last starts at ≥ 18.
	starts := map[int]bool{}
	a := r.Assay
	for _, id := range a.MixOps() {
		if a.Volume(id) == 8 {
			if starts[r.Start[id]] {
				t.Errorf("two size-8 mixes start together at %d", r.Start[id])
			}
			starts[r.Start[id]] = true
		}
	}
	if r.Makespan <= 24 {
		t.Errorf("constrained makespan = %d, want > unconstrained 24", r.Makespan)
	}
}

func TestBalancedBinding(t *testing.T) {
	// Two mixers of size 8 must split PCR's four size-8 ops 2/2.
	policy := map[int]int{4: 1, 6: 1, 8: 2, 10: 1}
	r := pcrResult(t, Resources{Mixers: policy})
	loads := map[int]int{}
	a := r.Assay
	for _, id := range a.MixOps() {
		if a.Volume(id) == 8 {
			loads[r.InstanceOf[id]]++
		}
	}
	if len(loads) != 2 {
		t.Fatalf("size-8 ops bound to %d instances, want 2", len(loads))
	}
	for inst, n := range loads {
		if n != 2 {
			t.Errorf("instance %d has %d ops, want 2", inst, n)
		}
	}
}

// Balanced binding must give max load ceil(n/m) on every benchmark and
// policy, which is what makes the traditional vs_tmax column reproducible.
func TestBindingLoadIsCeiling(t *testing.T) {
	for _, name := range assays.Names() {
		c, _ := assays.ByName(name)
		hist := c.Assay.Stats().VolumeHistogram
		r, err := List(c.Assay, Options{Resources: Resources{Mixers: c.BaseMixers}})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		loads := map[int]int{} // instance -> ops
		for _, id := range c.Assay.MixOps() {
			loads[r.InstanceOf[id]]++
		}
		maxBySize := map[int]int{}
		for _, id := range c.Assay.MixOps() {
			size := c.Assay.Volume(id)
			if loads[r.InstanceOf[id]] > maxBySize[size] {
				maxBySize[size] = loads[r.InstanceOf[id]]
			}
		}
		for size, n := range hist {
			m := c.BaseMixers[size]
			want := (n + m - 1) / m
			if maxBySize[size] != want {
				t.Errorf("%s size %d: max load %d, want ceil(%d/%d)=%d",
					name, size, maxBySize[size], n, m, want)
			}
		}
	}
}

func TestInstancesBookkeeping(t *testing.T) {
	policy := map[int]int{4: 1, 6: 1, 8: 2, 10: 1}
	r := pcrResult(t, Resources{Mixers: policy})
	total := 0
	for _, inst := range r.Instances {
		total += len(inst.Ops)
		for _, id := range inst.Ops {
			if r.Assay.Volume(id) != inst.Size {
				t.Errorf("op %d (size %d) bound to size-%d instance",
					id, r.Assay.Volume(id), inst.Size)
			}
		}
	}
	if total != len(r.Assay.MixOps()) {
		t.Errorf("instances hold %d ops, want %d", total, len(r.Assay.MixOps()))
	}
}

func TestStorageStartAndWindow(t *testing.T) {
	r := pcrResult(t, Unlimited())
	a := r.Assay
	o1 := findOp(t, a, "o1")
	if _, ok := r.StorageStart(o1); ok {
		t.Error("o1 has no device parents but reports a storage phase")
	}
	o5 := findOp(t, a, "o5")
	ts, ok := r.StorageStart(o5)
	if !ok {
		t.Fatal("o5 must have a storage phase")
	}
	// Both parents finish at 6 under unlimited resources.
	if ts != 6 {
		t.Errorf("storage start = %d, want 6", ts)
	}
	from, to := r.DeviceWindow(o5)
	if from != 6 || to != r.Finish[o5] {
		t.Errorf("DeviceWindow = [%d,%d], want [6,%d]", from, to, r.Finish[o5])
	}
}

func TestStorageDemand(t *testing.T) {
	r := pcrResult(t, Resources{Mixers: map[int]int{4: 1, 6: 1, 8: 1, 10: 1}})
	perTU, peak := r.StorageDemand()
	if peak < 1 {
		t.Fatal("serialised PCR must store products")
	}
	max := 0
	for _, n := range perTU {
		if n > max {
			max = n
		}
	}
	if max != peak {
		t.Errorf("peak = %d but per-tu max = %d", peak, max)
	}
}

func TestGanttRendering(t *testing.T) {
	r := pcrResult(t, Unlimited())
	g := r.Gantt()
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	if len(lines) != 1+7 {
		t.Fatalf("Gantt has %d lines, want header+7:\n%s", len(lines), g)
	}
	if !strings.Contains(g, "o7") || !strings.Contains(g, "=") {
		t.Fatalf("Gantt missing content:\n%s", g)
	}
	// o5's row must include a '-' storage phase (parents finish before it
	// starts only under constrained resources? with unlimited, o5 starts at
	// 9 and parents finish at 6: 3 tu of storage).
	for _, ln := range lines {
		if strings.HasPrefix(ln, "o5") && !strings.Contains(ln, "-") {
			t.Errorf("o5 row has no storage phase: %q", ln)
		}
	}
}

func TestOpsByStartAndCreation(t *testing.T) {
	r := pcrResult(t, Unlimited())
	byStart := r.OpsByStart()
	for i := 1; i < len(byStart); i++ {
		if r.Start[byStart[i-1]] > r.Start[byStart[i]] {
			t.Fatal("OpsByStart not sorted")
		}
	}
	byCreation := r.OpsByCreation()
	creation := func(id int) int { from, _ := r.DeviceWindow(id); return from }
	for i := 1; i < len(byCreation); i++ {
		if creation(byCreation[i-1]) > creation(byCreation[i]) {
			t.Fatal("OpsByCreation not sorted")
		}
	}
	if len(byStart) != 7 || len(byCreation) != 7 {
		t.Fatalf("on-chip op count = %d/%d, want 7", len(byStart), len(byCreation))
	}
}

func TestDetectorScheduling(t *testing.T) {
	a := graph.New("det")
	i1 := a.Add(graph.Input, "i1", 0)
	i2 := a.Add(graph.Input, "i2", 0)
	m := a.Add(graph.Mix, "m", 6)
	a.Connect(i1, m, 2)
	a.Connect(i2, m, 2)
	d1 := a.Add(graph.Detect, "d1", 4)
	d2 := a.Add(graph.Detect, "d2", 4)
	a.Connect(m, d1, 2)
	a.Connect(m, d2, 2)
	r, err := List(a, Options{Resources: Resources{Detectors: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Start[d1.ID] == r.Start[d2.ID] {
		t.Error("two detections overlap on a single detector")
	}
	r2, err := List(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Start[d1.ID] != r2.Start[d2.ID] {
		t.Error("unlimited detectors should run detections in parallel")
	}
}

func TestInvalidAssayRejected(t *testing.T) {
	a := graph.New("bad")
	a.Add(graph.Mix, "m", 6)
	if _, err := List(a, Options{}); err == nil {
		t.Fatal("List accepted an invalid assay")
	}
}

func TestTransportDelayOption(t *testing.T) {
	c := assays.PCR()
	r, err := List(c.Assay, Options{TransportDelay: 5})
	if err != nil {
		t.Fatal(err)
	}
	o5 := findOp(t, c.Assay, "o5")
	if r.Start[o5] != 11 { // 6 finish + 5 transport
		t.Errorf("o5 starts at %d with delay 5, want 11", r.Start[o5])
	}
}

func findOp(t *testing.T, a *graph.Assay, name string) int {
	t.Helper()
	for _, op := range a.Ops() {
		if op.Name == name {
			return op.ID
		}
	}
	t.Fatalf("op %q not found", name)
	return -1
}
