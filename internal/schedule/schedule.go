// Package schedule produces bioassay scheduling results — the second
// synthesis input of the paper's problem formulation ("a bioassay
// scheduling result, which specifies the start time of each operation").
//
// The paper takes schedules from traditional designs with a given policy
// (dedicated mixer counts per size) and feeds the same schedule to both the
// traditional binding baseline and the dynamic-device synthesis. This
// package implements that scheduler: resource-constrained list scheduling
// with critical-path priority and load-balanced instance binding ("optimal
// binding ... distributing operations to mixers as evenly as possible").
package schedule

import (
	"context"
	"fmt"
	"sort"

	"mfsynth/internal/graph"
	"mfsynth/internal/obs"
	"mfsynth/internal/synerr"
)

// DefaultTransportDelay is the fluid transport delay in time units between
// dependent on-chip operations, as in the paper's PCR example ("the
// scheduling result of this case with 3 time-units (tu) as the transport
// delay").
const DefaultTransportDelay = 3

// Resources bounds the concurrently available devices. A nil Mixers map (or
// a missing size) means no limit for that size; Detectors ≤ 0 means no limit.
type Resources struct {
	// Mixers maps mixer volume to the number of concurrently usable mixers
	// of that size.
	Mixers map[int]int
	// Detectors is the number of concurrently usable detectors.
	Detectors int
}

// Unlimited returns a Resources with no device limits.
func Unlimited() Resources { return Resources{} }

// Instance identifies one dedicated device of the policy.
type Instance struct {
	// Size is the mixer volume (0 for detectors).
	Size int
	// Index numbers instances of the same size from 0.
	Index int
	// Ops lists the operations bound to this instance in start-time order.
	Ops []int
}

// Result is a complete scheduling result.
type Result struct {
	Assay *graph.Assay
	// Start and Finish give each operation's execution window. Input
	// operations run instantaneously at their dispatch time.
	Start, Finish []int
	// InstanceOf maps a mix/detect operation to its bound instance index in
	// Instances, or -1.
	InstanceOf []int
	// Instances lists the device instances used, mixers first.
	Instances []Instance
	// Makespan is the completion time of the last operation.
	Makespan int
	// TransportDelay is the delay that was applied between dependent
	// operations.
	TransportDelay int
}

// Options configures List.
type Options struct {
	// TransportDelay overrides DefaultTransportDelay when positive.
	TransportDelay int
	// Resources bounds device concurrency.
	Resources Resources
	// Obs, when non-nil, is the parent span the scheduling passes report
	// under (schedule.priority, schedule.dispatch) with ops/makespan
	// attributes and metrics. Observation never changes results.
	Obs *obs.Span
}

// List schedules the assay with list scheduling: operations become ready
// when every producer has finished plus the transport delay; ready
// operations are started in critical-path-length priority order on the
// least-loaded free instance of the required size.
//
// The returned binding is balanced: among instances of the same size, the
// one with the fewest bound operations is preferred, which realises the
// paper's optimal binding for traditional designs.
func List(a *graph.Assay, opts Options) (*Result, error) {
	return ListCtx(context.Background(), a, opts)
}

// ListCtx is List with cancellation: the scheduler checks ctx before it
// starts and once per dispatched operation, returning a
// synerr.ErrDeadline-compatible error when cancelled.
func ListCtx(ctx context.Context, a *graph.Assay, opts Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, synerr.Deadline("schedule", err)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	delay := opts.TransportDelay
	if delay <= 0 {
		delay = DefaultTransportDelay
	}

	prioSp := opts.Obs.Start("schedule.priority")
	order, err := a.TopoOrder()
	if err != nil {
		prioSp.End()
		return nil, err
	}
	prio := criticalPath(a, order, delay)
	prioSp.End()
	dispSp := opts.Obs.Start("schedule.dispatch")

	res := &Result{
		Assay:          a,
		Start:          make([]int, a.Len()),
		Finish:         make([]int, a.Len()),
		InstanceOf:     make([]int, a.Len()),
		TransportDelay: delay,
	}
	for i := range res.InstanceOf {
		res.InstanceOf[i] = -1
	}

	pools := newPools(a, opts.Resources)

	// ready[id] = earliest data-ready time; -1 while predecessors pending.
	ready := make([]int, a.Len())
	pending := make([]int, a.Len())
	for id := 0; id < a.Len(); id++ {
		pending[id] = len(a.Parents(id))
	}
	var queue []int
	for id := 0; id < a.Len(); id++ {
		if pending[id] == 0 {
			queue = append(queue, id)
		}
	}

	scheduled := 0
	for len(queue) > 0 {
		if err := ctx.Err(); err != nil {
			dispSp.End()
			return nil, synerr.Deadline("schedule", err)
		}
		// Pick the ready op with the largest critical path; ties by ID for
		// determinism.
		sort.Slice(queue, func(i, j int) bool {
			if prio[queue[i]] != prio[queue[j]] {
				return prio[queue[i]] > prio[queue[j]]
			}
			return queue[i] < queue[j]
		})
		id := queue[0]
		queue = queue[1:]

		op := a.Op(id)
		start := ready[id]
		var pl *pool
		switch op.Kind {
		case graph.Mix:
			pl = pools.mixers[a.Volume(id)]
		case graph.Detect:
			pl = pools.detectors
		}
		if pl != nil {
			inst, free := pl.acquire(start)
			if free > start {
				start = free
			}
			res.InstanceOf[id] = inst
			pl.commit(inst, start+op.Duration, id)
		}
		res.Start[id] = start
		res.Finish[id] = start + op.Duration
		if res.Finish[id] > res.Makespan {
			res.Makespan = res.Finish[id]
		}
		scheduled++

		for _, e := range a.Out(id) {
			c := e.To
			t := res.Finish[id]
			if op.Kind != graph.Input {
				t += delay // on-chip product must be transported
			}
			if t > ready[c] {
				ready[c] = t
			}
			pending[c]--
			if pending[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	dispSp.End()
	if scheduled != a.Len() {
		return nil, fmt.Errorf("schedule: only %d of %d operations scheduled", scheduled, a.Len())
	}
	res.Instances = pools.instances()
	opts.Obs.Set(obs.KV("ops", a.Len()), obs.KV("makespan", res.Makespan),
		obs.KV("instances", len(res.Instances)))
	if m := opts.Obs.Metrics(); m != nil {
		m.Counter("schedule_ops_total").Add(int64(a.Len()))
		m.Gauge("schedule_makespan").Set(int64(res.Makespan))
		m.Gauge("schedule_instances").Set(int64(len(res.Instances)))
	}
	return res, nil
}

// criticalPath returns, per op, the longest duration+delay path to any sink.
func criticalPath(a *graph.Assay, topo []int, delay int) []int {
	cp := make([]int, a.Len())
	for i := len(topo) - 1; i >= 0; i-- {
		id := topo[i]
		best := 0
		for _, c := range a.Children(id) {
			if cp[c] > best {
				best = cp[c]
			}
		}
		cp[id] = best + a.Op(id).Duration + delay
	}
	return cp
}

// pools manages device instances per resource class.
type pools struct {
	mixers    map[int]*pool // by size
	detectors *pool
	order     []int // mixer sizes in ascending order
}

type pool struct {
	size      int
	limit     int // 0 = unlimited
	free      []int
	boundOps  [][]int
	instBase  int // global instance index of this pool's first instance
	instCount int
}

func newPools(a *graph.Assay, r Resources) *pools {
	p := &pools{mixers: map[int]*pool{}}
	sizes := map[int]bool{}
	for _, id := range a.MixOps() {
		sizes[a.Volume(id)] = true
	}
	for s := range sizes {
		p.order = append(p.order, s)
	}
	sort.Ints(p.order)
	for _, s := range p.order {
		p.mixers[s] = &pool{size: s, limit: r.Mixers[s]}
	}
	if a.CountKind(graph.Detect) > 0 {
		p.detectors = &pool{size: 0, limit: r.Detectors}
	}
	// Assign global instance index bases.
	base := 0
	for _, s := range p.order {
		p.mixers[s].instBase = base
		if p.mixers[s].limit > 0 {
			base += p.mixers[s].limit
		} else {
			base += a.Stats().VolumeHistogram[s] // worst case: one per op
		}
	}
	if p.detectors != nil {
		p.detectors.instBase = base
	}
	return p
}

func (p *pools) instances() []Instance {
	var out []Instance
	for _, s := range p.order {
		m := p.mixers[s]
		for i := 0; i < m.instCount; i++ {
			out = append(out, Instance{Size: s, Index: i, Ops: m.boundOps[i]})
		}
	}
	if p.detectors != nil {
		for i := 0; i < p.detectors.instCount; i++ {
			out = append(out, Instance{Size: 0, Index: i, Ops: p.detectors.boundOps[i]})
		}
	}
	return out
}

// acquire returns the chosen instance's global index and its free time. The
// instance with the fewest bound ops whose free time is smallest is chosen;
// new instances are created while the limit allows.
func (pl *pool) acquire(ready int) (inst, free int) {
	best, bestLoad, bestFree := -1, -1, 0
	for i := 0; i < pl.instCount; i++ {
		load, f := len(pl.boundOps[i]), pl.free[i]
		if best == -1 || load < bestLoad || (load == bestLoad && f < bestFree) {
			best, bestLoad, bestFree = i, load, f
		}
	}
	canGrow := pl.limit == 0 || pl.instCount < pl.limit
	if canGrow && (best == -1 || bestLoad > 0) {
		pl.free = append(pl.free, 0)
		pl.boundOps = append(pl.boundOps, nil)
		best, bestFree = pl.instCount, 0
		pl.instCount++
	}
	return pl.instBase + best, bestFree
}

func (pl *pool) commit(inst, until, op int) {
	i := inst - pl.instBase
	pl.free[i] = until
	pl.boundOps[i] = append(pl.boundOps[i], op)
}
