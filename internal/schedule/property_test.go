package schedule

import (
	"testing"
	"testing/quick"

	"mfsynth/internal/assays"
	"mfsynth/internal/graph"
)

// Property: on random assays, list scheduling respects precedence plus
// transport delay, never exceeds the mixer policy, and the balanced
// binding's max load equals ceil(n/m) per size.
func TestRandomScheduleProperty(t *testing.T) {
	f := func(seed int64, limRaw uint8) bool {
		a := assays.Random(seed, assays.RandomOptions{MixOps: 5 + int(seed%7&3)})
		lim := 1 + int(limRaw%3)
		pol := map[int]int{}
		for _, id := range a.MixOps() {
			pol[a.Volume(id)] = lim
		}
		r, err := List(a, Options{Resources: Resources{Mixers: pol}})
		if err != nil {
			return false
		}
		// Precedence + transport delay.
		for id := 0; id < a.Len(); id++ {
			for _, p := range a.Parents(id) {
				min := r.Finish[p]
				if a.Op(p).Kind != graph.Input {
					min += r.TransportDelay
				}
				if r.Start[id] < min {
					return false
				}
			}
		}
		// Resource limits: at any operation's start instant, the number of
		// running same-size mixes must not exceed the policy (interval
		// concurrency peaks at interval starts).
		mix := a.MixOps()
		for _, i1 := range mix {
			at := r.Start[i1]
			conc := 0
			for _, i2 := range mix {
				if a.Volume(i1) != a.Volume(i2) {
					continue
				}
				if r.Start[i2] <= at && at < r.Finish[i2] {
					conc++
				}
			}
			if conc > lim {
				return false
			}
		}
		// Balanced binding.
		loads := map[int]int{}
		for _, id := range mix {
			loads[r.InstanceOf[id]]++
		}
		byVol := map[int]int{}
		maxByVol := map[int]int{}
		for _, id := range mix {
			v := a.Volume(id)
			byVol[v]++
			if loads[r.InstanceOf[id]] > maxByVol[v] {
				maxByVol[v] = loads[r.InstanceOf[id]]
			}
		}
		for v, n := range byVol {
			if want := (n + lim - 1) / lim; maxByVol[v] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: removing the resource limit never lengthens the makespan.
func TestUnlimitedNeverSlower(t *testing.T) {
	f := func(seed int64) bool {
		a := assays.Random(seed, assays.RandomOptions{MixOps: 6})
		pol := map[int]int{}
		for _, id := range a.MixOps() {
			pol[a.Volume(id)] = 1
		}
		limited, err := List(a, Options{Resources: Resources{Mixers: pol}})
		if err != nil {
			return false
		}
		free, err := List(a, Options{})
		if err != nil {
			return false
		}
		return free.Makespan <= limited.Makespan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
