package sim

import (
	"testing"

	"mfsynth/internal/assays"
	"mfsynth/internal/core"
	"mfsynth/internal/place"
	"mfsynth/internal/schedule"
)

func synth(t *testing.T, a interface{ Validate() error }, c assays.Case, mode place.Mode) *core.Result {
	t.Helper()
	res, err := core.Synthesize(c.Assay, core.Options{
		Policy: schedule.Resources{Mixers: c.BaseMixers, Detectors: c.Detectors},
		Place:  place.Config{Grid: c.GridSize, Mode: mode},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPCRCleanUnderAllMappers(t *testing.T) {
	c := assays.PCR()
	for _, mode := range []place.Mode{place.Greedy, place.RollingHorizon} {
		res := synth(t, c.Assay, c, mode)
		if v := Check(res); len(v) != 0 {
			t.Errorf("%v mapping violates rules: %v", mode, v)
		}
	}
}

func TestMixingTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full mapping is slow")
	}
	c := assays.MixingTree()
	res := synth(t, c.Assay, c, place.Greedy)
	if v := Check(res); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
}

// Random assays across seeds must synthesize without violations — the
// central end-to-end property of the whole pipeline.
func TestRandomAssaysClean(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		a := assays.Random(seed, assays.RandomOptions{MixOps: 6})
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: invalid assay: %v", seed, err)
		}
		res, err := core.Synthesize(a, core.Options{
			Place: place.Config{Grid: 14, Mode: place.Greedy},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if v := Check(res); len(v) != 0 {
			t.Errorf("seed %d: violations: %v", seed, v)
		}
	}
}

// In-vitro diagnostics: mixes plus detections on shared dynamic devices.
func TestInVitroClean(t *testing.T) {
	a := assays.InVitro(2, 3, 8)
	res, err := core.Synthesize(a, core.Options{
		Policy: schedule.Resources{Mixers: map[int]int{8: 2}, Detectors: 2},
		Place:  place.Config{Grid: 14, Mode: place.Greedy},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := Check(res); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
	// 6 mixes and 6 detections all placed.
	if len(res.Mapping.Placements) != 12 {
		t.Errorf("placed %d devices, want 12", len(res.Mapping.Placements))
	}
}

func TestRandomAssayDeterminism(t *testing.T) {
	a1 := assays.Random(7, assays.RandomOptions{MixOps: 5, Detects: 1})
	a2 := assays.Random(7, assays.RandomOptions{MixOps: 5, Detects: 1})
	if a1.Len() != a2.Len() || a1.NumEdges() != a2.NumEdges() {
		t.Fatal("same seed produced different assays")
	}
	if a1.Stats().String() != a2.Stats().String() {
		t.Fatal("same seed produced different stats")
	}
}

func TestViolationDetection(t *testing.T) {
	// Corrupt a clean result and verify the checker notices.
	c := assays.PCR()
	res := synth(t, c.Assay, c, place.Greedy)

	t.Run("metric mismatch", func(t *testing.T) {
		saved := res.VsMax1
		res.VsMax1 = saved + 1
		defer func() { res.VsMax1 = saved }()
		if v := Check(res); !hasRule(v, "metric-mismatch") {
			t.Errorf("corrupted metric not detected: %v", v)
		}
	})

	t.Run("undersized device", func(t *testing.T) {
		// Shrink an 8-volume mix's device to a 2x2 (ring volume 4).
		anyOp := -1
		for id := range res.Mapping.Placements {
			if res.Assay.Volume(id) >= 8 {
				anyOp = id
				break
			}
		}
		if anyOp < 0 {
			t.Fatal("no 8-volume op found")
		}
		saved := res.Mapping.Placements[anyOp]
		small := saved
		small.Shape.W, small.Shape.H = 2, 2
		res.Mapping.Placements[anyOp] = small
		defer func() { res.Mapping.Placements[anyOp] = saved }()
		if v := Check(res); !hasRule(v, "undersized-device") {
			t.Errorf("undersized device not detected: %v", v)
		}
	})

	t.Run("unrouted edge", func(t *testing.T) {
		saved := res.Transports
		res.Transports = res.Transports[:len(res.Transports)-1]
		defer func() { res.Transports = saved }()
		if v := Check(res); !hasRule(v, "unrouted-edge") && !hasRule(v, "undrained-product") {
			t.Errorf("missing transport not detected: %v", v)
		}
	})
}

func hasRule(vs []Violation, rule string) bool {
	for _, v := range vs {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

func TestViolationString(t *testing.T) {
	v := Violation{Rule: "r", Detail: "d"}
	if v.String() != "r: d" {
		t.Fatalf("String = %q", v.String())
	}
}
