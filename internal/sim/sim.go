// Package sim validates synthesis results: it audits a core.Result against
// the physical invariants a fabricated chip would enforce — the design-rule
// check of the flow. A clean result produces no violations; every rule
// corresponds to a constraint of the paper's model.
//
// The actual checking lives in the verify package, which re-derives every
// audited quantity from first principles; sim remains the stable façade the
// public API exposes.
package sim

import (
	"mfsynth/internal/core"
	"mfsynth/internal/verify"
)

// Violation is one broken invariant.
type Violation struct {
	// Rule names the check, e.g. "device-overlap".
	Rule string
	// Detail is a human-readable description.
	Detail string
}

// String renders "rule: detail".
func (v Violation) String() string { return v.Rule + ": " + v.Detail }

// Check audits the synthesis result against the full conformance catalogue
// and returns all rule violations. Rule names are stable; the verify
// package's Catalogue maps each to its paper constraint number.
func Check(res *core.Result) []Violation {
	rep := verify.Conformance(res)
	out := make([]Violation, len(rep.Violations))
	for i, v := range rep.Violations {
		out[i] = Violation{Rule: v.Rule, Detail: v.Detail}
	}
	return out
}
