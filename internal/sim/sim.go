// Package sim validates synthesis results: it replays a core.Result event
// by event and checks the physical invariants a fabricated chip would
// enforce — the design-rule check of the flow. A clean result produces no
// violations; every rule corresponds to a constraint of the paper's model.
package sim

import (
	"fmt"

	"mfsynth/internal/core"
	"mfsynth/internal/graph"
	"mfsynth/internal/grid"
)

// Violation is one broken invariant.
type Violation struct {
	// Rule names the check, e.g. "device-overlap".
	Rule string
	// Detail is a human-readable description.
	Detail string
}

// String renders "rule: detail".
func (v Violation) String() string { return v.Rule + ": " + v.Detail }

// Check replays the synthesis result and returns all rule violations.
func Check(res *core.Result) []Violation {
	var out []Violation
	out = append(out, checkPlacements(res)...)
	out = append(out, checkDeviceConflicts(res)...)
	out = append(out, checkTransports(res)...)
	out = append(out, checkConservation(res)...)
	out = append(out, checkMetrics(res)...)
	return out
}

// checkPlacements: every on-chip operation has a device that fits the chip
// with its wall band and holds the operation's fluid volume.
func checkPlacements(res *core.Result) []Violation {
	var out []Violation
	bounds := grid.RectWH(0, 0, res.Grid, res.Grid)
	for _, op := range res.Assay.Ops() {
		if op.Kind == graph.Input || op.Kind == graph.Output {
			continue
		}
		pl, ok := res.Mapping.Placements[op.ID]
		if !ok {
			out = append(out, Violation{"unplaced-op",
				fmt.Sprintf("operation %s has no device", op.Name)})
			continue
		}
		if !bounds.ContainsRect(pl.WallBox()) {
			out = append(out, Violation{"off-chip",
				fmt.Sprintf("%s: wall box %v leaves the %dx%d chip", op.Name, pl.WallBox(), res.Grid, res.Grid)})
		}
		if pl.Volume() < res.Assay.Volume(op.ID) {
			out = append(out, Violation{"undersized-device",
				fmt.Sprintf("%s: ring volume %d < fluid volume %d", op.Name, pl.Volume(), res.Assay.Volume(op.ID))})
		}
	}
	return out
}

// checkDeviceConflicts: temporally overlapping devices keep a wall between
// their footprints, except a storage overlapping its parent device within
// the storage's free space (constraints (3)-(8) and the c5 relaxation).
func checkDeviceConflicts(res *core.Result) []Violation {
	var out []Violation
	m := res.Mapping
	ids := make([]int, 0, len(m.Placements))
	for id := range m.Placements {
		ids = append(ids, id)
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			a, b := ids[i], ids[j]
			wa, wb := m.Windows[a], m.Windows[b]
			if wa[0] >= wb[1] || wb[0] >= wa[1] {
				continue
			}
			pa, pb := m.Placements[a], m.Placements[b]
			if pa.CompatibleWith(pb) {
				continue
			}
			if storageOverlapOK(res, a, b) || storageOverlapOK(res, b, a) {
				continue
			}
			out = append(out, Violation{"device-overlap",
				fmt.Sprintf("%s (%v) and %s (%v) conflict in space and time",
					res.Assay.Op(a).Name, pa, res.Assay.Op(b).Name, pb)})
		}
	}
	return out
}

// storageOverlapOK: child's storage may host parent's footprint intrusion
// while the intruded cells fit its free space.
func storageOverlapOK(res *core.Result, child, parent int) bool {
	isParent := false
	for _, p := range res.Assay.DeviceParents(child) {
		if p == parent {
			isParent = true
		}
	}
	tl := res.Mapping.Storages[child]
	if !isParent || tl == nil {
		return false
	}
	area := res.Mapping.Placements[child].Footprint().OverlapArea(
		res.Mapping.Placements[parent].Footprint())
	pw := res.Mapping.Windows[parent]
	return tl.CanOverlap(area, pw[0], pw[1])
}

// checkTransports: every transport path is connected, on-chip, starts and
// ends at plausible terminals, and never crosses a device that is executing
// at transport time (the paper's obstacle rule; storages with free space
// are passable).
func checkTransports(res *core.Result) []Violation {
	var out []Violation
	bounds := grid.RectWH(0, 0, res.Grid, res.Grid)
	for _, tr := range res.Transports {
		if tr.InPlace {
			// The endpoints share cells; nothing moves. Valid by
			// construction when the path is non-empty.
			if len(tr.Path) == 0 {
				out = append(out, Violation{"empty-inplace",
					fmt.Sprintf("t=%d %s->%s shares no cells", tr.T, tr.From, tr.To)})
			}
			continue
		}
		if len(tr.Path) < 2 {
			out = append(out, Violation{"trivial-path",
				fmt.Sprintf("t=%d %s->%s has %d cells", tr.T, tr.From, tr.To, len(tr.Path))})
			continue
		}
		for k, c := range tr.Path {
			if !bounds.Contains(c) {
				out = append(out, Violation{"path-off-chip",
					fmt.Sprintf("t=%d %s->%s cell %v", tr.T, tr.From, tr.To, c)})
			}
			if k > 0 && c.Manhattan(tr.Path[k-1]) != 1 {
				out = append(out, Violation{"path-discontinuous",
					fmt.Sprintf("t=%d %s->%s between %v and %v", tr.T, tr.From, tr.To, tr.Path[k-1], c)})
			}
		}
		out = append(out, checkPathObstacles(res, tr)...)
	}
	return out
}

// checkPathObstacles verifies the interior of a path against devices
// executing at the transport time.
func checkPathObstacles(res *core.Result, tr core.Transport) []Violation {
	var out []Violation
	m := res.Mapping
	for id, pl := range m.Placements {
		op := res.Assay.Op(id)
		// Devices executing (not storing) at tr.T are hard obstacles,
		// except the endpoints' own devices.
		start := res.Schedule.Start[id]
		finish := res.Schedule.Finish[id]
		if tr.T < start || tr.T >= finish {
			continue
		}
		if id == tr.FromID || id == tr.ToID {
			continue
		}
		fp := pl.Footprint()
		for _, c := range tr.Path[1 : len(tr.Path)-1] {
			if fp.Contains(c) {
				out = append(out, Violation{"path-through-device",
					fmt.Sprintf("t=%d %s->%s crosses executing %s at %v",
						tr.T, tr.From, tr.To, op.Name, c)})
				break
			}
		}
	}
	return out
}

// checkConservation: every fluid edge of the assay is realised by exactly
// one transport, and every childless on-chip product is drained.
func checkConservation(res *core.Result) []Violation {
	var out []Violation
	a := res.Assay
	type key struct{ from, to int }
	routed := map[key]int{}
	for _, tr := range res.Transports {
		routed[key{tr.FromID, tr.ToID}]++
	}
	for _, op := range a.Ops() {
		if op.Kind == graph.Input || op.Kind == graph.Output {
			continue
		}
		if _, placed := res.Mapping.Placements[op.ID]; !placed {
			continue
		}
		for _, e := range a.In(op.ID) {
			want := key{e.From, op.ID}
			if routed[want] != 1 {
				out = append(out, Violation{"unrouted-edge",
					fmt.Sprintf("edge %s->%s routed %d times, want 1",
						a.Op(e.From).Name, op.Name, routed[want])})
			}
		}
		if len(a.Out(op.ID)) == 0 {
			if routed[key{op.ID, -1}] != 1 {
				out = append(out, Violation{"undrained-product",
					fmt.Sprintf("product of %s never drained", op.Name)})
			}
		}
	}
	return out
}

// checkMetrics: the reported maxima must match an independent replay of the
// event log.
func checkMetrics(res *core.Result) []Violation {
	var out []Violation
	c1 := res.ChipAt(-1, 1)
	if c1.MaxTotal() != res.VsMax1 || c1.MaxPump() != res.VsPump1 {
		out = append(out, Violation{"metric-mismatch",
			fmt.Sprintf("setting 1 replay %d(%d) != reported %d(%d)",
				c1.MaxTotal(), c1.MaxPump(), res.VsMax1, res.VsPump1)})
	}
	c2 := res.ChipAt(-1, 2)
	if c2.MaxTotal() != res.VsMax2 || c2.MaxPump() != res.VsPump2 {
		out = append(out, Violation{"metric-mismatch",
			fmt.Sprintf("setting 2 replay %d(%d) != reported %d(%d)",
				c2.MaxTotal(), c2.MaxPump(), res.VsMax2, res.VsPump2)})
	}
	if got := c1.UsedValves(); got != res.UsedValves {
		out = append(out, Violation{"metric-mismatch",
			fmt.Sprintf("used valves replay %d != reported %d", got, res.UsedValves)})
	}
	return out
}
