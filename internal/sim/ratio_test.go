package sim

import (
	"testing"

	"mfsynth/internal/assays"
	"mfsynth/internal/core"
	"mfsynth/internal/graph"
	"mfsynth/internal/place"
)

// The paper's fifth contribution: assays with input samples in different
// proportions need no special mixer — device ports are chosen from the
// available ring valves. A 1:3 mix and a 1:1 mix of the same total volume
// must both synthesize cleanly on the same architecture.
func TestMixingRatiosSupported(t *testing.T) {
	build := func(volA, volB int) *graph.Assay {
		a := graph.New("ratio")
		s := a.Add(graph.Input, "sample", 0)
		b := a.Add(graph.Input, "buffer", 0)
		m := a.Add(graph.Mix, "m1", assays.DefaultMixDuration)
		a.Connect(s, m, volA)
		a.Connect(b, m, volB)
		// A second mix consumes a 1:3 portion of the product.
		b2 := a.Add(graph.Input, "buffer2", 0)
		m2 := a.Add(graph.Mix, "m2", assays.DefaultMixDuration)
		a.Connect(m, m2, 2)
		a.Connect(b2, m2, 6)
		return a
	}
	for _, ratio := range [][2]int{{4, 4}, {2, 6}, {6, 2}, {3, 5}} {
		a := build(ratio[0], ratio[1])
		if err := a.Validate(); err != nil {
			t.Fatalf("ratio %v: %v", ratio, err)
		}
		res, err := core.Synthesize(a, core.Options{
			Place: place.Config{Grid: 12, Mode: place.Greedy},
		})
		if err != nil {
			t.Fatalf("ratio %v: %v", ratio, err)
		}
		if v := Check(res); len(v) != 0 {
			t.Errorf("ratio %v: violations %v", ratio, v)
		}
		// Both mixes use 8-unit devices regardless of the ratio.
		for _, id := range a.MixOps() {
			if got := res.Mapping.Placements[id].Volume(); got != 8 {
				t.Errorf("ratio %v: mix %d device volume %d, want 8", ratio, id, got)
			}
		}
	}
}

// Different volumes map to different device sizes on the same architecture
// (the paper's fourth contribution: "we adjust dynamic devices to different
// sizes according to the need").
func TestVolumeAdaptation(t *testing.T) {
	a := graph.New("sizes")
	prev := a.Add(graph.Input, "s", 0)
	var mixes []*graph.Op
	for i, vol := range []int{10, 8, 6, 4} {
		b := a.Add(graph.Input, "b", 0)
		m := a.Add(graph.Mix, "m", assays.DefaultMixDuration)
		a.Connect(prev, m, vol/2)
		a.Connect(b, m, vol/2)
		mixes = append(mixes, m)
		prev = m
		_ = i
	}
	res, err := core.Synthesize(a, core.Options{
		Place: place.Config{Grid: 12, Mode: place.Greedy},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{10, 8, 6, 4}
	for i, m := range mixes {
		if got := res.Mapping.Placements[m.ID].Volume(); got != want[i] {
			t.Errorf("mix %d device volume = %d, want %d", i, got, want[i])
		}
	}
	if v := Check(res); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
}
