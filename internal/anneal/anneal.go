// Package anneal is the stochastic third mapper backend beside the ILP
// and the greedy heuristic: seeded simulated annealing over dynamic-device
// placements. It exists for the instances exact search cannot crack — the
// node-capped branch-and-bound solves that end with no incumbent — and
// for oversized assays where even the rolling decomposition is too slow
// for a bounded-latency answer.
//
// The search runs a fixed schedule of independent replicates (restarts),
// each with its own deterministic RNG derived from the base seed, so the
// result is a pure function of (problem, Config): same seed, same mapping,
// same work counters, at any worker count. Every state a replicate ever
// holds is built exclusively from place.Instance-admissible placements,
// so accepted states satisfy the full constraint system (non-overlap,
// storage free space, faults, routing convenience) by construction — the
// anneal searches inside the feasible region rather than penalising its
// boundary.
//
// The mapper is anytime: cancellation cuts replicates at their next poll
// and the best incumbent found so far is returned, which is what lets the
// portfolio racer in internal/core collect a result from an expired
// deadline instead of an error.
package anneal

import (
	"context"
	"math"
	"math/rand"

	"mfsynth/internal/arch"
	"mfsynth/internal/grid"
	"mfsynth/internal/obs"
	"mfsynth/internal/par"
	"mfsynth/internal/place"
	"mfsynth/internal/schedule"
	"mfsynth/internal/synerr"
)

// Defaults of the annealing schedule. They are part of the request
// fingerprint contract: verify.CanonicalRequest spells a zero-valued knob
// as its default, using these constants, so the values may only change
// together with a canonical-request version bump.
const (
	// DefaultSeed is the base RNG seed when Config.Seed is zero.
	DefaultSeed = 1
	// DefaultReplicates is the number of independent restarts.
	DefaultReplicates = 8
	// DefaultIters is the per-replicate move budget.
	DefaultIters = 4000
	// DefaultInitTemp is the starting temperature, in units of one
	// pump-load step (the objective's quantum).
	DefaultInitTemp = 1.5
	// DefaultCooling is the per-move geometric cooling factor; at the
	// default budget it freezes the walk (temp ≈ 5e-4) near the end.
	DefaultCooling = 0.998
)

// Config tunes the annealer.
type Config struct {
	// Place describes the mapping problem exactly as for place.MapCtx:
	// grid, faults, ablation switches and BestEffort all apply. Mode is
	// ignored (the annealer is its own mode).
	Place place.Config
	// Seed is the base RNG seed; replicate r draws from a generator
	// seeded with mix(Seed, r) (fixed seed schedule). Zero means
	// DefaultSeed, so the zero value and the spelled default agree —
	// required by the canonical-request contract.
	Seed int64
	// Replicates is the number of independent restarts (default 8).
	Replicates int
	// Iters is the per-replicate move budget (default 4000). The budget,
	// not wall-clock, is what terminates a healthy replicate — that keeps
	// results machine-independent.
	Iters int
	// InitTemp and Cooling define the geometric temperature schedule
	// temp(i) = InitTemp · Cooling^i (defaults 1.5 and 0.998).
	InitTemp float64
	Cooling  float64
	// Workers bounds the replicate fan-out (0 = Place.Workers resolution,
	// 1 = serial). Results and counters are bit-identical at any worker
	// count provided the context does not cancel mid-run (a deadline cuts
	// replicates at timing-dependent iterations).
	Workers int
	// Obs, when non-nil, is the span the annealer reports under; replicate
	// progress is published on its trace's ProgressBus.
	Obs *obs.Span
	// AcceptHook, when non-nil, receives every accepted state (the initial
	// construction included) of every replicate — the property-test hook
	// proving accepted states stay conformant. The map must not be
	// retained or mutated across calls; clone what you keep. Only sensible
	// with Workers=1 (concurrent replicates would interleave calls).
	AcceptHook func(fixed map[int]arch.Placement)
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	if c.Replicates == 0 {
		c.Replicates = DefaultReplicates
	}
	if c.Iters == 0 {
		c.Iters = DefaultIters
	}
	if c.InitTemp == 0 {
		c.InitTemp = DefaultInitTemp
	}
	if c.Cooling == 0 {
		c.Cooling = DefaultCooling
	}
	if c.Workers == 0 {
		c.Workers = c.Place.Workers
	}
	return c
}

// Cost is the annealer's objective, ordered lexicographically with the
// exact key sequence of the greedy mapper's run comparison: completeness
// first, then the paper's objective (worst per-valve pump load), then
// routing-convenient fidelity, manufactured pump valves and load spread.
// MaxPump is place.Mapping.MaxPumpOps of the same state, which is what
// ties the annealer's objective to report's Table 1 accounting
// (VsPump1 = MaxPump × PumpActuations).
type Cost struct {
	Dropped   int
	MaxPump   int
	RCRelaxed int
	UsedCells int
	SumSq     int
}

// Less orders costs, best first.
func (c Cost) Less(o Cost) bool {
	if c.Dropped != o.Dropped {
		return c.Dropped < o.Dropped
	}
	if c.MaxPump != o.MaxPump {
		return c.MaxPump < o.MaxPump
	}
	if c.RCRelaxed != o.RCRelaxed {
		return c.RCRelaxed < o.RCRelaxed
	}
	if c.UsedCells != o.UsedCells {
		return c.UsedCells < o.UsedCells
	}
	return c.SumSq < o.SumSq
}

// energy scalarises the cost for Metropolis acceptance. RCRelaxed is
// omitted: relaxations are fixed at construction, so the term is constant
// within a replicate and cancels in every delta. The weights keep the
// tie-break terms strictly below one pump-load step so the primary
// objective always dominates acceptance.
func (c Cost) energy() float64 {
	return 1e9*float64(c.Dropped) + float64(c.MaxPump) +
		1e-3*float64(c.UsedCells) + 1e-7*float64(c.SumSq)
}

// Stats reports the search effort, deterministically in the seed (and the
// worker count, absent cancellation): counters aggregate per replicate
// and merge in replicate order.
type Stats struct {
	// Replicates is the number of replicates that ran (skipped ones —
	// cancelled before starting — are not counted).
	Replicates int
	// Iters counts attempted moves across all replicates; Accepted the
	// accepted ones, Improved the new incumbents (initial constructions
	// included).
	Iters    int64
	Accepted int64
	Improved int64
	// CutShort is true when cancellation stopped at least one replicate
	// before its move budget.
	CutShort bool
	// Best is the winning replicate's incumbent cost.
	Best Cost
	// BestReplicate is the winning replicate's index.
	BestReplicate int
}

// Map runs the annealer without cancellation.
func Map(res *schedule.Result, cfg Config) (*place.Mapping, Stats, error) {
	return MapCtx(context.Background(), res, cfg)
}

// MapCtx anneals a mapping for the scheduled assay. The replicates fan
// out over the worker pool and merge in replicate order by (Cost, index),
// so the returned mapping is bit-identical at any worker count; under
// cancellation the incumbents found so far still merge and a mapping is
// returned as long as at least one replicate constructed a state (the
// anytime contract). The error is ErrDeadline-compatible only when
// cancellation struck before any incumbent existed.
func MapCtx(ctx context.Context, res *schedule.Result, cfg Config) (*place.Mapping, Stats, error) {
	cfg = cfg.withDefaults()
	inst, err := place.NewInstance(res, cfg.Place)
	if err != nil {
		return nil, Stats{}, err
	}
	sp := cfg.Obs.Start("place.anneal",
		obs.KV("replicates", cfg.Replicates), obs.KV("iters", cfg.Iters),
		obs.KV("seed", int(cfg.Seed)))
	defer sp.End()

	workers := par.Workers(cfg.Workers)
	parCtx := ctx
	if po := sp.Trace().Pool(sp, "anneal.replicate"); po != nil {
		parCtx = par.WithObserver(parCtx, po)
	}
	// Replicate errors and cut-shorts travel inside the result struct; the
	// pool error is either a recovered panic or the context cancellation,
	// and cancellation must not discard the incumbents already collected.
	results, poolErr := par.MapCtx(parCtx, workers, cfg.Replicates, func(_, rep int) (*replicate, error) {
		return runReplicate(ctx, inst, cfg, rep), nil
	})
	if tp := (*par.TaskPanic)(nil); poolErr != nil {
		if asTaskPanic(poolErr, &tp) {
			return nil, Stats{}, poolErr
		}
	}

	// Deterministic merge: scan replicates in index order, keep the first
	// strictly-best incumbent, sum the work counters.
	var stats Stats
	var best *replicate
	var firstErr error
	for _, r := range results {
		if r == nil {
			continue // skipped: cancelled before the replicate started
		}
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		stats.Replicates++
		stats.Iters += r.iters
		stats.Accepted += r.accepted
		stats.Improved += r.improved
		stats.CutShort = stats.CutShort || r.cutShort
		if best == nil || r.bestCost.Less(best.bestCost) {
			best = r
			stats.BestReplicate = r.rep
		}
	}
	if best == nil {
		if firstErr != nil {
			return nil, stats, firstErr
		}
		return nil, stats, synerr.Deadline("anneal", ctx.Err())
	}
	stats.Best = best.bestCost

	m := inst.Finish(best.bestFixed, place.Stats{
		Mode:      place.Annealed,
		RCRelaxed: best.bestCost.RCRelaxed,
	})
	// Defensive audit: admissible-built states are violation-free by
	// construction; a non-zero count here would mean the Instance contract
	// broke, and silently returning the mapping would poison downstream
	// phases.
	if n := inst.StorageViolations(m); n > 0 {
		return nil, stats, synerr.Infeasible("anneal", "annealed mapping has %d storage violations", n)
	}

	mm := sp.Metrics()
	mm.Counter("anneal_replicates_total").Add(int64(stats.Replicates))
	mm.Counter("anneal_iters_total").Add(stats.Iters)
	mm.Counter("anneal_accepted_total").Add(stats.Accepted)
	mm.Counter("anneal_incumbents_total").Add(stats.Improved)
	sp.Set(obs.KV("best_max_pump", stats.Best.MaxPump),
		obs.KV("best_replicate", stats.BestReplicate),
		obs.KV("cut_short", stats.CutShort))
	return m, stats, nil
}

// asTaskPanic reports whether err wraps a worker panic. Plain context
// errors from the pool are expected under a deadline and must not abort
// the merge.
func asTaskPanic(err error, tp **par.TaskPanic) bool {
	for e := err; e != nil; {
		if p, ok := e.(*par.TaskPanic); ok {
			*tp = p
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

// mix64 is a splitmix64 finaliser: replicate seeds decorrelate even for
// adjacent base seeds.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// replicate is one restart's outcome.
type replicate struct {
	rep       int
	err       error
	bestFixed map[int]arch.Placement
	bestCost  Cost
	iters     int64
	accepted  int64
	improved  int64
	cutShort  bool
}

// state is the mutable search position of one replicate, with incremental
// pump-load accounting (a load histogram makes removing a ring from the
// current maximum O(max load) instead of a full rescan).
type state struct {
	inst  *place.Instance
	fixed map[int]arch.Placement
	pump  map[grid.Point]int
	hist  []int // hist[n] = number of cells at load n (n ≥ 1)

	maxPump   int
	usedCells int
	sumSq     int

	dropped  map[int]bool
	nDropped int
	// rcExempt marks ops whose routing-convenient coupling was relaxed at
	// construction (the candidate set was empty otherwise); the exemption
	// is permanent for the replicate and counts into Cost.RCRelaxed.
	rcExempt  map[int]bool
	rcRelaxed int
}

func (st *state) cost() Cost {
	return Cost{
		Dropped:   st.nDropped,
		MaxPump:   st.maxPump,
		RCRelaxed: st.rcRelaxed,
		UsedCells: st.usedCells,
		SumSq:     st.sumSq,
	}
}

// addLoads accounts op's ring onto the pump map (mix ops only).
func (st *state) addLoads(op int, pl arch.Placement) {
	if !st.inst.IsPump(op) {
		return
	}
	for _, pt := range pl.Ring() {
		old := st.pump[pt]
		st.sumSq += 2*old + 1
		if old == 0 {
			st.usedCells++
		} else {
			st.hist[old]--
		}
		n := old + 1
		st.pump[pt] = n
		for n >= len(st.hist) {
			st.hist = append(st.hist, 0)
		}
		st.hist[n]++
		if n > st.maxPump {
			st.maxPump = n
		}
	}
}

// removeLoads reverses addLoads.
func (st *state) removeLoads(op int, pl arch.Placement) {
	if !st.inst.IsPump(op) {
		return
	}
	for _, pt := range pl.Ring() {
		old := st.pump[pt]
		st.sumSq -= 2*old - 1
		st.hist[old]--
		n := old - 1
		if n == 0 {
			st.usedCells--
			delete(st.pump, pt)
		} else {
			st.pump[pt] = n
			st.hist[n]++
		}
	}
	for st.maxPump > 0 && st.hist[st.maxPump] == 0 {
		st.maxPump--
	}
}

// runReplicate executes one seeded restart: a constructive initial state
// in creation order (scored like the greedy mapper, ties broken by the
// replicate RNG for diversity), then Iters bounded-neighbourhood moves
// with Metropolis acceptance under geometric cooling.
func runReplicate(ctx context.Context, inst *place.Instance, cfg Config, rep int) *replicate {
	r := &replicate{rep: rep}
	rng := rand.New(rand.NewSource(int64(mix64(uint64(cfg.Seed)) ^ mix64(uint64(rep)+1))))
	bus := cfg.Obs.Trace().ProgressBus()

	st := &state{
		inst:     inst,
		fixed:    map[int]arch.Placement{},
		pump:     map[grid.Point]int{},
		hist:     make([]int, 4),
		dropped:  map[int]bool{},
		rcExempt: map[int]bool{},
	}

	// Initial construction.
	for _, op := range inst.Ops() {
		cands := inst.Candidates(op, st.fixed, false)
		if len(cands) == 0 {
			cands = inst.Candidates(op, st.fixed, true)
			if len(cands) > 0 {
				st.rcExempt[op] = true
				st.rcRelaxed++
			}
		}
		if len(cands) == 0 {
			if cfg.Place.BestEffort {
				st.dropped[op] = true
				st.nDropped++
				continue
			}
			r.err = synerr.Infeasible("anneal",
				"no feasible placement for %s on a %dx%d chip",
				inst.OpName(op), cfg.Place.Grid, cfg.Place.Grid)
			return r
		}
		// Greedy primary keys (resulting max load, added load), random
		// tie-break: good starts that still differ per replicate.
		bestKey := [2]int{int(^uint(0) >> 1), 0}
		var ties []arch.Placement
		for _, c := range cands {
			key := [2]int{0, 0}
			if inst.IsPump(op) {
				for _, pt := range c.Ring() {
					n := st.pump[pt] + 1
					if n > key[0] {
						key[0] = n
					}
					key[1] += st.pump[pt]
				}
			}
			switch {
			case key[0] < bestKey[0] || (key[0] == bestKey[0] && key[1] < bestKey[1]):
				bestKey = key
				ties = ties[:0]
				ties = append(ties, c)
			case key == bestKey:
				ties = append(ties, c)
			}
		}
		pl := ties[rng.Intn(len(ties))]
		st.fixed[op] = pl
		st.addLoads(op, pl)
	}
	if cfg.AcceptHook != nil {
		cfg.AcceptHook(st.fixed)
	}

	cur := st.cost()
	r.bestFixed = clonePlacements(st.fixed)
	r.bestCost = cur
	r.improved++

	ops := inst.Ops()
	temp := cfg.InitTemp
	for it := 0; it < cfg.Iters; it++ {
		if it%32 == 0 && ctx.Err() != nil {
			r.cutShort = true
			break
		}
		if bus != nil && it%512 == 0 {
			publish(bus, cfg, rep, it, temp, r)
		}
		r.iters++
		temp *= cfg.Cooling

		op := ops[rng.Intn(len(ops))]
		pl, ok := proposal(st, rng, op)
		if !ok {
			continue
		}
		if st.dropped[op] {
			// Re-placing a dropped operation dominates every other key;
			// always accept.
			st.fixed[op] = pl
			st.addLoads(op, pl)
			delete(st.dropped, op)
			st.nDropped--
		} else {
			old := st.fixed[op]
			if pl == old {
				continue
			}
			st.removeLoads(op, old)
			st.addLoads(op, pl)
			st.fixed[op] = pl
			next := st.cost()
			delta := next.energy() - cur.energy()
			if delta > 0 && rng.Float64() >= math.Exp(-delta/temp) {
				// Reject: revert.
				st.removeLoads(op, pl)
				st.addLoads(op, old)
				st.fixed[op] = old
				continue
			}
		}
		cur = st.cost()
		r.accepted++
		if cfg.AcceptHook != nil {
			cfg.AcceptHook(st.fixed)
		}
		if cur.Less(r.bestCost) {
			r.bestCost = cur
			r.bestFixed = clonePlacements(st.fixed)
			r.improved++
		}
	}
	if bus != nil {
		publish(bus, cfg, rep, cfg.Iters, temp, r)
	}
	return r
}

// proposal draws one bounded-neighbourhood candidate for op: a random
// chip-fitting shape at either a local position (Chebyshev radius 3
// around the current anchor) or a uniform one, filtered through the full
// admissibility rules including the child-side routing-convenient check
// that only a relocating search needs. ok is false when the draw is
// inadmissible (a cheap rejected move) — for dropped ops, a feasibility
// probe that usually fails until the chip decongests.
func proposal(st *state, rng *rand.Rand, op int) (arch.Placement, bool) {
	shapes := st.inst.Shapes(op)
	s := shapes[rng.Intn(len(shapes))]
	area := st.inst.PlacementArea(s)
	var x, y int
	cur, placed := st.fixed[op]
	if placed && rng.Intn(2) == 0 {
		const radius = 3
		x = clamp(cur.At.X+rng.Intn(2*radius+1)-radius, area.X0, area.X1-1)
		y = clamp(cur.At.Y+rng.Intn(2*radius+1)-radius, area.Y0, area.Y1-1)
	} else {
		x = area.X0 + rng.Intn(area.X1-area.X0)
		y = area.Y0 + rng.Intn(area.Y1-area.Y0)
	}
	pl := arch.Placement{At: grid.Point{X: x, Y: y}, Shape: s}
	if !st.inst.Admissible(op, pl, st.fixed, st.rcExempt[op]) {
		return pl, false
	}
	if !st.inst.RCWithChildren(op, pl, st.fixed, st.rcExempt) {
		return pl, false
	}
	return pl, true
}

func publish(bus *obs.ProgressBus, cfg Config, rep, it int, temp float64, r *replicate) {
	p := &obs.AnnealProgress{
		Replicates:  int64(cfg.Replicates),
		Replicate:   int64(rep),
		Iter:        int64(it),
		Temp:        temp,
		BestMaxPump: int64(r.bestCost.MaxPump),
		HasBest:     r.bestFixed != nil,
		Accepted:    r.accepted,
	}
	bus.Update(func(pr *obs.Progress) { pr.Anneal = p })
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clonePlacements(m map[int]arch.Placement) map[int]arch.Placement {
	out := make(map[int]arch.Placement, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
