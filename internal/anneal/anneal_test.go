package anneal_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"mfsynth/internal/anneal"
	"mfsynth/internal/arch"
	"mfsynth/internal/assays"
	"mfsynth/internal/core"
	"mfsynth/internal/graph"
	"mfsynth/internal/place"
	"mfsynth/internal/schedule"
	"mfsynth/internal/synerr"
	"mfsynth/internal/verify"
)

// problemFor schedules a seeded random assay with one mixer per volume —
// the same policy the ablation sweep uses.
func problemFor(t *testing.T, seed int64, mixOps int) (*graph.Assay, *schedule.Result, schedule.Resources) {
	t.Helper()
	a := assays.Random(seed, assays.RandomOptions{MixOps: mixOps, Detects: 1})
	mixers := map[int]int{}
	for _, id := range a.MixOps() {
		mixers[a.Volume(id)] = 1
	}
	policy := schedule.Resources{Mixers: mixers, Detectors: 1}
	sched, err := schedule.List(a, schedule.Options{Resources: policy})
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	return a, sched, policy
}

// TestSeedDeterminismAcrossWorkers is the determinism contract: the same
// seed yields a bit-identical mapping and identical work counters whether
// the replicates run serially or on four workers, and across repeated
// serial runs.
func TestSeedDeterminismAcrossWorkers(t *testing.T) {
	_, sched, _ := problemFor(t, 7, 8)
	cfg := anneal.Config{
		Place:      place.Config{Grid: 12},
		Seed:       42,
		Replicates: 4,
		Iters:      400,
	}

	type run struct {
		m     *place.Mapping
		stats anneal.Stats
	}
	runAt := func(workers int) run {
		c := cfg
		c.Workers = workers
		m, stats, err := anneal.Map(sched, c)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return run{m, stats}
	}

	serial := runAt(1)
	again := runAt(1)
	parallel := runAt(4)

	for _, tc := range []struct {
		name  string
		other run
	}{
		{"serial rerun", again},
		{"workers=4", parallel},
	} {
		if !reflect.DeepEqual(serial.m.Placements, tc.other.m.Placements) {
			t.Errorf("%s: placements differ from the serial run", tc.name)
		}
		if serial.m.MaxPumpOps != tc.other.m.MaxPumpOps {
			t.Errorf("%s: MaxPumpOps = %d, serial %d",
				tc.name, tc.other.m.MaxPumpOps, serial.m.MaxPumpOps)
		}
		if !reflect.DeepEqual(serial.m.Dropped, tc.other.m.Dropped) {
			t.Errorf("%s: dropped sets differ", tc.name)
		}
		if serial.stats != tc.other.stats {
			t.Errorf("%s: stats = %+v, serial %+v", tc.name, tc.other.stats, serial.stats)
		}
	}
	if serial.stats.Iters == 0 || serial.stats.Improved == 0 {
		t.Errorf("degenerate run: stats = %+v", serial.stats)
	}
	if serial.stats.CutShort {
		t.Errorf("uncancelled run reports CutShort")
	}
}

// TestAcceptedStatesConformant replays accepted annealing states through
// the downstream pipeline: every state the walk ever accepts — the initial
// construction included — must finish into a mapping with zero storage
// violations and pass the full conformance catalogue after routing.
// Admissible-built states promise this by construction; the test is the
// promise's audit.
func TestAcceptedStatesConformant(t *testing.T) {
	a, sched, policy := problemFor(t, 3, 5)
	pcfg := place.Config{Grid: 10}

	var accepted []map[int]arch.Placement
	_, stats, err := anneal.Map(sched, anneal.Config{
		Place:      pcfg,
		Seed:       9,
		Replicates: 1,
		Iters:      150,
		Workers:    1, // AcceptHook requires serial replicates
		AcceptHook: func(fixed map[int]arch.Placement) {
			cl := make(map[int]arch.Placement, len(fixed))
			for k, v := range fixed {
				cl[k] = v
			}
			accepted = append(accepted, cl)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(accepted) == 0 {
		t.Fatal("AcceptHook never fired")
	}
	if int64(len(accepted)) != stats.Accepted+1 {
		// One hook call per acceptance plus the initial construction.
		t.Errorf("hook fired %d times, want %d accepted + 1 initial",
			len(accepted), stats.Accepted)
	}

	inst, err := place.NewInstance(sched, pcfg)
	if err != nil {
		t.Fatal(err)
	}
	// Auditing every state would route the assay hundreds of times; an
	// evenly spaced sample including the first and last state keeps the
	// test fast while still covering the walk end to end.
	sample := accepted
	if len(sample) > 16 {
		step := len(accepted) / 15
		sample = nil
		for i := 0; i < len(accepted); i += step {
			sample = append(sample, accepted[i])
		}
		sample = append(sample, accepted[len(accepted)-1])
	}
	for i, fixed := range sample {
		m := inst.Finish(fixed, place.Stats{Mode: place.Annealed})
		if n := inst.StorageViolations(m); n > 0 {
			t.Fatalf("state %d: %d storage violations", i, n)
		}
		res, err := core.Complete(context.Background(), a, sched, m, core.Options{
			Policy: policy,
			Place:  pcfg,
		})
		if err != nil {
			t.Fatalf("state %d: complete: %v", i, err)
		}
		if rep := verify.Conformance(res); !rep.Clean() {
			t.Fatalf("state %d fails conformance:\n%s", i, rep)
		}
	}
}

// TestCostAgreesWithReport fuzzes 200 small assays and checks the
// annealer's internal objective against the downstream accounting: the
// winning Cost must equal the finished Mapping's MaxPumpOps, and the
// report-level pump figure must be exactly MaxPump × PumpActuations —
// the identity that ties the anneal objective to Table 1's VsPump1.
func TestCostAgreesWithReport(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 40
	}
	infeasible := 0
	for i := 0; i < n; i++ {
		seed := int64(1000 + i)
		a, sched, policy := problemFor(t, seed, 3+i%4)
		m, stats, err := anneal.Map(sched, anneal.Config{
			Place:      place.Config{Grid: 12},
			Seed:       int64(i + 1),
			Replicates: 1,
			Iters:      40,
		})
		if errors.Is(err, synerr.ErrInfeasible) {
			// A drawn assay that does not fit the chip is a legitimate
			// outcome, not a cost disagreement — but it must stay rare or
			// the fuzz loses its teeth.
			infeasible++
			continue
		}
		if err != nil {
			t.Fatalf("assay %d: %v", seed, err)
		}
		if stats.Best.MaxPump != m.MaxPumpOps {
			t.Fatalf("assay %d: Cost.MaxPump = %d, Mapping.MaxPumpOps = %d",
				seed, stats.Best.MaxPump, m.MaxPumpOps)
		}
		if stats.Best.Dropped != len(m.Dropped) {
			t.Fatalf("assay %d: Cost.Dropped = %d, len(Dropped) = %d",
				seed, stats.Best.Dropped, len(m.Dropped))
		}
		res, err := core.Complete(context.Background(), a, sched, m, core.Options{
			Policy: policy,
			Place:  place.Config{Grid: 12},
		})
		if err != nil {
			t.Fatalf("assay %d: complete: %v", seed, err)
		}
		if want := stats.Best.MaxPump * core.DefaultPumpActuations; res.VsPump1 != want {
			t.Fatalf("assay %d: VsPump1 = %d, want MaxPump %d × %d = %d",
				seed, res.VsPump1, stats.Best.MaxPump, core.DefaultPumpActuations, want)
		}
	}
	if infeasible > n/10 {
		t.Fatalf("%d/%d fuzz assays infeasible — the corpus no longer exercises the cost identity", infeasible, n)
	}
}

// TestCancelledBeforeStart exercises the anytime error path: a context
// dead before any replicate constructs a state yields an
// ErrDeadline-compatible error, not a mapping.
func TestCancelledBeforeStart(t *testing.T) {
	_, sched, _ := problemFor(t, 7, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, _, err := anneal.MapCtx(ctx, sched, anneal.Config{Place: place.Config{Grid: 12}})
	if m != nil {
		t.Fatalf("got a mapping from a dead context")
	}
	if !errors.Is(err, synerr.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}

// TestCostLess pins the lexicographic order of the objective: completeness
// dominates the pump load, which dominates every tie-break.
func TestCostLess(t *testing.T) {
	base := anneal.Cost{Dropped: 0, MaxPump: 3, RCRelaxed: 1, UsedCells: 40, SumSq: 200}
	cases := []struct {
		name string
		a, b anneal.Cost
		less bool
	}{
		{"equal", base, base, false},
		{"dropped dominates", anneal.Cost{Dropped: 0, MaxPump: 9}, anneal.Cost{Dropped: 1, MaxPump: 1}, true},
		{"pump before cells", anneal.Cost{MaxPump: 2, UsedCells: 99}, anneal.Cost{MaxPump: 3, UsedCells: 1}, true},
		{"rc before cells", anneal.Cost{MaxPump: 3, RCRelaxed: 0, UsedCells: 99}, anneal.Cost{MaxPump: 3, RCRelaxed: 1, UsedCells: 1}, true},
		{"sumsq last", anneal.Cost{MaxPump: 3, SumSq: 1}, anneal.Cost{MaxPump: 3, SumSq: 2}, true},
	}
	for _, tc := range cases {
		if got := tc.a.Less(tc.b); got != tc.less {
			t.Errorf("%s: Less = %v, want %v", tc.name, got, tc.less)
		}
		if tc.less && tc.b.Less(tc.a) {
			t.Errorf("%s: Less not antisymmetric", tc.name)
		}
	}
}
