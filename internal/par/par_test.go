package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-5); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-5) = %d", got)
	}
}

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		out, err := Map(workers, 100, func(slot, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapFirstErrorByIndex(t *testing.T) {
	for _, workers := range []int{1, 4} {
		want := errors.New("boom-3")
		_, err := Map(workers, 10, func(slot, i int) (int, error) {
			switch i {
			case 3:
				return 0, want
			case 7:
				return 0, errors.New("boom-7")
			}
			return i, nil
		})
		if err != want {
			t.Fatalf("workers=%d: err = %v, want lowest-index error", workers, err)
		}
	}
}

func TestMapAllIndicesRunDespiteError(t *testing.T) {
	var mu sync.Mutex
	ran := make(map[int]bool)
	_, err := Map(4, 20, func(slot, i int) (int, error) {
		mu.Lock()
		ran[i] = true
		mu.Unlock()
		if i == 0 {
			return 0, fmt.Errorf("early failure")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if len(ran) != 20 {
		t.Fatalf("only %d/20 indices ran", len(ran))
	}
}

func TestMapSlotExclusive(t *testing.T) {
	const workers = 4
	busy := make([]bool, workers)
	var mu sync.Mutex
	err := Do(workers, 200, func(slot, i int) error {
		mu.Lock()
		if busy[slot] {
			mu.Unlock()
			return fmt.Errorf("slot %d reentered", slot)
		}
		busy[slot] = true
		mu.Unlock()
		// A tiny amount of real work to give overlap a chance.
		s := 0
		for k := 0; k < 1000; k++ {
			s += k
		}
		_ = s
		mu.Lock()
		busy[slot] = false
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMapCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := 0
	_, err := MapCtx(ctx, 1, 1000, cancelAfter(&started, cancel))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if started >= 1000 {
		t.Fatalf("cancellation did not stop the feed (started %d)", started)
	}
}

// cancelAfter builds a work fn that cancels the context after 5 items.
func cancelAfter(started *int, cancel context.CancelFunc) func(int, int) (int, error) {
	return func(slot, i int) (int, error) {
		*started++
		if *started == 5 {
			cancel()
		}
		return i, nil
	}
}

func TestReduce(t *testing.T) {
	out, err := Map(4, 10, func(slot, i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	sum := Reduce(out, 0, func(acc, v int) int { return acc + v })
	if sum != 45 {
		t.Fatalf("sum = %d", sum)
	}
	// Order-sensitive fold: first index wins ties, like the serial loops.
	first := Reduce(out, -1, func(acc, v int) int {
		if acc >= 0 {
			return acc
		}
		return v
	})
	if first != 0 {
		t.Fatalf("first = %d", first)
	}
}

func TestDoZeroItems(t *testing.T) {
	if err := Do(8, 0, func(slot, i int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}
