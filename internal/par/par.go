// Package par is the shared deterministic parallelism layer of the
// synthesis engine: a bounded fork/join worker pool with ordered fan-out
// and fan-in.
//
// Every helper takes an explicit worker count (0 resolves to
// runtime.GOMAXPROCS, 1 runs inline with no goroutines) and returns
// results in input-index order, so callers that merge results by scanning
// the returned slice front to back observe exactly the order a serial
// loop would have produced. Determinism of the *merge* is therefore the
// caller's only obligation; the scheduling of the work itself is free to
// be arbitrary.
//
// Work functions receive a slot index in [0, workers) identifying the
// executing worker, so callers can key per-worker scratch state (LP
// clones, tableau arenas) off it without locking: two invocations with
// the same slot never run concurrently.
package par

import (
	"context"
	"runtime"
)

// Workers resolves a worker-count knob: n if positive, otherwise
// runtime.GOMAXPROCS(0). A result of 1 means "run serially".
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map applies fn to every index in [0, n) using at most workers
// concurrent goroutines and returns the n results in index order. fn is
// called as fn(slot, i) where slot identifies the executing worker (two
// calls with equal slot never overlap) and i is the work index.
//
// All indices are attempted even when some fail; the returned error is
// the lowest-index error (deterministic regardless of scheduling), with
// the full results slice still returned so callers can salvage partial
// work. With workers <= 1 (after Workers resolution the caller applies)
// everything runs inline on the calling goroutine with slot 0.
func Map[R any](workers, n int, fn func(slot, i int) (R, error)) ([]R, error) {
	return MapCtx[R](context.Background(), workers, n, fn)
}

// MapCtx is Map with context cancellation: indices not yet started when
// ctx is cancelled are skipped (their results stay zero) and the context
// error is returned unless an earlier per-index error takes precedence.
func MapCtx[R any](ctx context.Context, workers, n int, fn func(slot, i int) (R, error)) ([]R, error) {
	results := make([]R, n)
	errs := make([]error, n)
	if n == 0 {
		return results, nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return results, firstError(errs, err)
			}
			results[i], errs[i] = fn(0, i)
		}
		return results, firstError(errs, nil)
	}

	// One goroutine per slot pulling indices from a shared feed. The feed
	// is a plain channel of indices: order of *execution* is arbitrary,
	// order of *results* is fixed by the index-addressed slices.
	feed := make(chan int)
	done := make(chan struct{}, workers)
	for slot := 0; slot < workers; slot++ {
		go func(slot int) {
			defer func() { done <- struct{}{} }()
			for i := range feed {
				results[i], errs[i] = fn(slot, i)
			}
		}(slot)
	}
	var ctxErr error
feedLoop:
	for i := 0; i < n; i++ {
		select {
		case feed <- i:
		case <-ctx.Done():
			ctxErr = ctx.Err()
			break feedLoop
		}
	}
	close(feed)
	for slot := 0; slot < workers; slot++ {
		<-done
	}
	return results, firstError(errs, ctxErr)
}

// Do is Map for side-effecting work without a result value.
func Do(workers, n int, fn func(slot, i int) error) error {
	_, err := Map(workers, n, func(slot, i int) (struct{}, error) {
		return struct{}{}, fn(slot, i)
	})
	return err
}

// Reduce folds the results of a completed ordered fan-out front to back:
// acc = merge(acc, results[i]) for i = 0..len-1. It exists to make the
// deterministic-merge contract explicit at call sites; merge must treat
// its first argument as the accumulated best-so-far.
func Reduce[R, A any](results []R, acc A, merge func(A, R) A) A {
	for _, r := range results {
		acc = merge(acc, r)
	}
	return acc
}

// firstError returns the lowest-index non-nil error, falling back to tail
// (typically a context error) when every index succeeded.
func firstError(errs []error, tail error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return tail
}
