// Package par is the shared deterministic parallelism layer of the
// synthesis engine: a bounded fork/join worker pool with ordered fan-out
// and fan-in.
//
// Every helper takes an explicit worker count (0 resolves to
// runtime.GOMAXPROCS, 1 runs inline with no goroutines) and returns
// results in input-index order, so callers that merge results by scanning
// the returned slice front to back observe exactly the order a serial
// loop would have produced. Determinism of the *merge* is therefore the
// caller's only obligation; the scheduling of the work itself is free to
// be arbitrary.
//
// Work functions receive a slot index in [0, workers) identifying the
// executing worker, so callers can key per-worker scratch state (LP
// clones, tableau arenas) off it without locking: two invocations with
// the same slot never run concurrently.
//
// A panicking task does not crash the pool or deadlock it: panics are
// recovered per task, the remaining tasks still run, and after the join
// the panic surfaces as a *TaskPanic error return. When several tasks fail
// (by error or panic) the lowest index wins — the same index a serial loop
// would have died on, so the surfaced failure is deterministic regardless
// of worker count. Callers that must not continue past a panic match it
// with errors.As(err, &taskPanic).
//
// Pools are observable: attach an Observer with WithObserver to receive
// lifecycle callbacks (pool start/done, per-task start/done with the
// executing slot). The observability layer uses this to draw parallel
// work on per-worker tracks of the Chrome trace and to export queue-depth
// and busy-time metrics; with no observer attached the callbacks cost one
// nil check.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
)

// Workers resolves a worker-count knob: n if positive, otherwise
// runtime.GOMAXPROCS(0). A result of 1 means "run serially".
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Observer receives worker-pool lifecycle callbacks. PoolStart is called
// once before any task with the resolved worker count (after clamping to
// the task count) and the number of tasks; TaskStart/TaskDone bracket
// each task on its executing worker goroutine (calls with equal slot
// never overlap); PoolDone is called once after the join, even when a
// task panicked.
//
// mfsynth/internal/obs.PoolObserver implements this interface.
type Observer interface {
	PoolStart(workers, tasks int)
	TaskStart(slot, i int)
	TaskDone(slot, i int)
	PoolDone()
}

// observerKey keys the Observer in a context.
type observerKey struct{}

// WithObserver attaches an Observer to the context for MapCtx/DoCtx.
// Callers holding a concrete observer pointer must guard against typed
// nils themselves (`if po != nil { ctx = par.WithObserver(ctx, po) }`) —
// a non-nil interface wrapping a nil pointer would be called.
func WithObserver(ctx context.Context, o Observer) context.Context {
	return context.WithValue(ctx, observerKey{}, o)
}

// TaskPanic wraps a panic that escaped a pool task. It is returned as the
// pool's error after the join (never re-panicked), so a crashing task
// degrades into an ordinary error at the fan-in point instead of killing
// the process; Value is the original panic value and Stack the panicking
// task's stack trace.
type TaskPanic struct {
	Index int
	Value any
	Stack []byte
}

// Error implements error.
func (p *TaskPanic) Error() string {
	return fmt.Sprintf("par: task %d panicked: %v", p.Index, p.Value)
}

// Map applies fn to every index in [0, n) using at most workers
// concurrent goroutines and returns the n results in index order. fn is
// called as fn(slot, i) where slot identifies the executing worker (two
// calls with equal slot never overlap) and i is the work index.
//
// All indices are attempted even when some fail; the returned error is
// the lowest-index error (deterministic regardless of scheduling), with
// the full results slice still returned so callers can salvage partial
// work. With workers <= 1 (after Workers resolution the caller applies)
// everything runs inline on the calling goroutine with slot 0.
func Map[R any](workers, n int, fn func(slot, i int) (R, error)) ([]R, error) {
	return MapCtx[R](context.Background(), workers, n, fn)
}

// MapCtx is Map with context cancellation: indices not yet started when
// ctx is cancelled are skipped (their results stay zero) and the context
// error is returned unless an earlier per-index error takes precedence.
func MapCtx[R any](ctx context.Context, workers, n int, fn func(slot, i int) (R, error)) ([]R, error) {
	results := make([]R, n)
	errs := make([]error, n)
	if n == 0 {
		return results, nil
	}
	if workers > n {
		workers = n
	}
	obs, _ := ctx.Value(observerKey{}).(Observer)
	panics := make([]*TaskPanic, n)
	run := func(slot, i int) {
		if obs != nil {
			obs.TaskStart(slot, i)
		}
		defer func() {
			if r := recover(); r != nil {
				panics[i] = &TaskPanic{Index: i, Value: r, Stack: debug.Stack()}
			}
			if obs != nil {
				obs.TaskDone(slot, i)
			}
		}()
		results[i], errs[i] = fn(slot, i)
	}
	if obs != nil {
		obs.PoolStart(workers, n)
		defer obs.PoolDone()
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				mergePanics(errs, panics)
				return results, firstError(errs, err)
			}
			run(0, i)
		}
		mergePanics(errs, panics)
		return results, firstError(errs, nil)
	}

	// One goroutine per slot pulling indices from a shared feed. The feed
	// is a plain channel of indices: order of *execution* is arbitrary,
	// order of *results* is fixed by the index-addressed slices. Each
	// worker runs under an mf_worker pprof label (on top of any labels
	// already on ctx, e.g. core's mf_phase), so CPU profiles attribute
	// samples to worker goroutines by slot.
	feed := make(chan int)
	done := make(chan struct{}, workers)
	for slot := 0; slot < workers; slot++ {
		go func(slot int) {
			defer func() { done <- struct{}{} }()
			pprof.Do(ctx, pprof.Labels("mf_worker", strconv.Itoa(slot)), func(context.Context) {
				for i := range feed {
					run(slot, i)
				}
			})
		}(slot)
	}
	var ctxErr error
feedLoop:
	for i := 0; i < n; i++ {
		select {
		case feed <- i:
		case <-ctx.Done():
			ctxErr = ctx.Err()
			break feedLoop
		}
	}
	close(feed)
	for slot := 0; slot < workers; slot++ {
		<-done
	}
	mergePanics(errs, panics)
	return results, firstError(errs, ctxErr)
}

// mergePanics folds recovered panics into the per-index error slice so the
// normal lowest-index-wins selection applies. A panicking fn never reached
// its return, so errs[i] is guaranteed nil where panics[i] is set.
func mergePanics(errs []error, panics []*TaskPanic) {
	for i, p := range panics {
		if p != nil {
			errs[i] = p
		}
	}
}

// Do is Map for side-effecting work without a result value.
func Do(workers, n int, fn func(slot, i int) error) error {
	return DoCtx(context.Background(), workers, n, fn)
}

// DoCtx is Do with context cancellation and observer support.
func DoCtx(ctx context.Context, workers, n int, fn func(slot, i int) error) error {
	_, err := MapCtx(ctx, workers, n, func(slot, i int) (struct{}, error) {
		return struct{}{}, fn(slot, i)
	})
	return err
}

// Reduce folds the results of a completed ordered fan-out front to back:
// acc = merge(acc, results[i]) for i = 0..len-1. It exists to make the
// deterministic-merge contract explicit at call sites; merge must treat
// its first argument as the accumulated best-so-far.
func Reduce[R, A any](results []R, acc A, merge func(A, R) A) A {
	for _, r := range results {
		acc = merge(acc, r)
	}
	return acc
}

// firstError returns the lowest-index non-nil error, falling back to tail
// (typically a context error) when every index succeeded.
func firstError(errs []error, tail error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return tail
}
