package par

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapEmptyInput covers the n=0 edge: no goroutines, no results, no
// error, regardless of the worker knob.
func TestMapEmptyInput(t *testing.T) {
	for _, workers := range []int{1, 4, 0} {
		out, err := Map(workers, 0, func(slot, i int) (int, error) {
			t.Fatal("fn called for empty input")
			return 0, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 0 {
			t.Fatalf("workers=%d: got %d results", workers, len(out))
		}
	}
}

// TestPanicPropagation verifies the pool's panic contract: a panicking task
// neither crashes the worker goroutines nor deadlocks the join, never
// re-panics on the caller, every other task still runs, and after the join
// the panic surfaces as a *TaskPanic error with the lowest panicking index
// — the index a serial loop would have died on.
func TestPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		done := make(chan error, 1)
		go func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("workers=%d: Map re-panicked with %v, want error return", workers, r)
					done <- nil
				}
			}()
			_, err := Map(workers, 20, func(slot, i int) (int, error) {
				ran.Add(1)
				if i == 7 || i == 13 {
					panic(i)
				}
				return i, nil
			})
			done <- err
		}()
		var err error
		select {
		case err = <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("workers=%d: pool deadlocked after task panic", workers)
		}
		if err == nil {
			t.Fatalf("workers=%d: Map returned nil error despite panicking tasks", workers)
		}
		var tp *TaskPanic
		if !errors.As(err, &tp) {
			t.Fatalf("workers=%d: error %T (%v) does not unwrap to *TaskPanic", workers, err, err)
		}
		if tp.Index != 7 || tp.Value != 7 {
			t.Fatalf("workers=%d: TaskPanic{Index:%d, Value:%v}, want index 7",
				workers, tp.Index, tp.Value)
		}
		if len(tp.Stack) == 0 || !strings.Contains(tp.Error(), "task 7 panicked") {
			t.Fatalf("workers=%d: incomplete TaskPanic: %q (stack %d bytes)",
				workers, tp.Error(), len(tp.Stack))
		}
		if got := ran.Load(); got != 20 {
			t.Fatalf("workers=%d: only %d/20 tasks ran", workers, got)
		}
	}
}

// BenchmarkMapFanout measures the pool's per-task overhead against the
// inline (workers=1) path on a tiny CPU-bound work function.
func BenchmarkMapFanout(b *testing.B) {
	work := func(slot, i int) (int, error) {
		s := 0
		for k := 0; k < 256; k++ {
			s += k * i
		}
		return s, nil
	}
	for _, workers := range []int{1, 4} {
		b.Run(map[int]string{1: "serial", 4: "workers4"}[workers], func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if _, err := Map(workers, 64, work); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
