package storage

import (
	"testing"

	"mfsynth/internal/assays"
	"mfsynth/internal/graph"
	"mfsynth/internal/schedule"
)

func pcrSchedule(t *testing.T) *schedule.Result {
	t.Helper()
	c := assays.PCR()
	r, err := schedule.List(c.Assay, schedule.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func opByName(t *testing.T, a *graph.Assay, name string) int {
	t.Helper()
	for _, op := range a.Ops() {
		if op.Name == name {
			return op.ID
		}
	}
	t.Fatalf("op %q not found", name)
	return -1
}

func TestNoTimelineForRootOps(t *testing.T) {
	r := pcrSchedule(t)
	o1 := opByName(t, r.Assay, "o1")
	if tl := NewTimeline(r, o1, 8); tl != nil {
		t.Fatal("root mix must have no storage phase")
	}
}

func TestTimelineDeposits(t *testing.T) {
	r := pcrSchedule(t)
	o5 := opByName(t, r.Assay, "o5")
	tl := NewTimeline(r, o5, 10)
	if tl == nil {
		t.Fatal("o5 needs a storage phase")
	}
	if tl.OpID != o5 || tl.Capacity != 10 {
		t.Fatalf("timeline = %+v", tl)
	}
	deps := tl.Deposits()
	if len(deps) != 2 {
		t.Fatalf("deposits = %d, want 2 (products of o1, o2)", len(deps))
	}
	if deps[0].Time > deps[1].Time {
		t.Fatal("deposits not time-sorted")
	}
	if deps[0].Volume != 5 || deps[1].Volume != 5 {
		t.Fatalf("deposit volumes = %d,%d, want 5,5", deps[0].Volume, deps[1].Volume)
	}
	// With unlimited resources both parents finish at 6, o5 starts at 9.
	if tl.Start != 6 || tl.End != 9 {
		t.Fatalf("window = [%d,%d), want [6,9)", tl.Start, tl.End)
	}
}

func TestStoredAndFree(t *testing.T) {
	r := pcrSchedule(t)
	o5 := opByName(t, r.Assay, "o5")
	tl := NewTimeline(r, o5, 10)
	if got := tl.StoredAt(tl.Start - 1); got != 0 {
		t.Errorf("StoredAt before start = %d", got)
	}
	if got := tl.StoredAt(tl.Start); got != 10 {
		t.Errorf("StoredAt(start) = %d, want 10 (both parents finish together)", got)
	}
	if got := tl.FreeAt(tl.Start); got != 0 {
		t.Errorf("FreeAt(start) = %d, want 0", got)
	}
}

func TestStaggeredDeposits(t *testing.T) {
	// Serialise PCR so o5's parents finish at different times.
	c := assays.PCR()
	r, err := schedule.List(c.Assay, schedule.Options{
		Resources: schedule.Resources{Mixers: map[int]int{4: 1, 6: 1, 8: 1, 10: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	o5 := opByName(t, r.Assay, "o5")
	tl := NewTimeline(r, o5, 10)
	if tl == nil {
		t.Fatal("no timeline")
	}
	deps := tl.Deposits()
	if len(deps) != 2 || deps[0].Time == deps[1].Time {
		t.Fatalf("want two staggered deposits, got %+v", deps)
	}
	mid := deps[0].Time
	if got := tl.StoredAt(mid); got != deps[0].Volume {
		t.Errorf("StoredAt(%d) = %d, want %d", mid, got, deps[0].Volume)
	}
	if tl.FreeAt(mid) != tl.Capacity-deps[0].Volume {
		t.Errorf("FreeAt(%d) = %d", mid, tl.FreeAt(mid))
	}
}

func TestCanOverlap(t *testing.T) {
	tl := &Timeline{OpID: 1, Capacity: 10, Start: 5, End: 15,
		deposits: []Deposit{{Time: 5, Volume: 5, Parent: 0}, {Time: 10, Volume: 5, Parent: 2}}}
	// Before the second deposit there are 5 free units.
	if !tl.CanOverlap(5, 5, 10) {
		t.Error("overlap of 5 cells during half-full phase must be allowed")
	}
	if tl.CanOverlap(6, 5, 10) {
		t.Error("overlap of 6 cells exceeds free space 5")
	}
	// After the second deposit the storage is full.
	if tl.CanOverlap(1, 10, 12) {
		t.Error("full storage cannot host any overlap")
	}
	// Outside the storage window anything goes.
	if !tl.CanOverlap(100, 15, 20) || !tl.CanOverlap(100, 0, 5) {
		t.Error("windows outside the storage phase must be unconstrained")
	}
	if !tl.CanOverlap(0, 5, 15) {
		t.Error("zero-area overlap must be allowed")
	}
}

func TestMinFree(t *testing.T) {
	tl := &Timeline{OpID: 1, Capacity: 8, Start: 0, End: 10,
		deposits: []Deposit{{Time: 2, Volume: 3}, {Time: 6, Volume: 4}}}
	if got := tl.MinFree(0, 2); got != 8 {
		t.Errorf("MinFree(0,2) = %d, want 8", got)
	}
	if got := tl.MinFree(0, 3); got != 5 {
		t.Errorf("MinFree(0,3) = %d, want 5", got)
	}
	if got := tl.MinFree(0, 10); got != 1 {
		t.Errorf("MinFree(0,10) = %d, want 1", got)
	}
	if got := tl.MinFree(7, 7); got != 8 {
		t.Errorf("MinFree on empty window = %d, want capacity", got)
	}
}

func TestActive(t *testing.T) {
	tl := &Timeline{Start: 3, End: 7}
	for _, tt := range []struct {
		t    int
		want bool
	}{{2, false}, {3, true}, {6, true}, {7, false}} {
		if got := tl.Active(tt.t); got != tt.want {
			t.Errorf("Active(%d) = %v", tt.t, got)
		}
	}
}

func TestOverCapacityPanics(t *testing.T) {
	r := pcrSchedule(t)
	o5 := opByName(t, r.Assay, "o5")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for capacity smaller than deposits")
		}
	}()
	NewTimeline(r, o5, 4) // o5 stores 10 units
}
