// Package storage models the paper's in situ on-chip storages (Section
// 3.3): dynamic devices created ahead of schedule that hold the products of
// already-finished parent operations until the operation itself starts. A
// storage may overlap its parent devices and may be crossed by routing
// paths, but only while the space those intrusions consume does not exceed
// its free space.
package storage

import (
	"fmt"
	"sort"

	"mfsynth/internal/graph"
	"mfsynth/internal/schedule"
)

// Deposit is one product arriving in a storage.
type Deposit struct {
	// Time is when the product arrives (the parent's finish time).
	Time int
	// Volume is the number of fluid units deposited.
	Volume int
	// Parent is the producing operation.
	Parent int
}

// Timeline tracks the fill level of the in situ storage that precedes one
// operation's execution.
type Timeline struct {
	// OpID is the operation whose device this storage becomes.
	OpID int
	// Capacity is the device ring volume in units.
	Capacity int
	// Start is when the storage appears (first parent product ready);
	// End is when the operation starts and the storage turns into the
	// running device.
	Start, End int

	deposits []Deposit
}

// NewTimeline derives the storage timeline of operation id from a
// scheduling result. capacity is the ring volume of the device that will
// execute id. The returned timeline is nil when id has no device parents
// (its device needs no storage phase).
func NewTimeline(res *schedule.Result, id, capacity int) *Timeline {
	start, ok := res.StorageStart(id)
	if !ok {
		return nil
	}
	tl := &Timeline{OpID: id, Capacity: capacity, Start: start, End: res.Start[id]}
	for _, e := range res.Assay.In(id) {
		if res.Assay.Op(e.From).Kind == graph.Input {
			continue // port inputs are routed in at operation start
		}
		tl.deposits = append(tl.deposits, Deposit{
			Time:   res.Finish[e.From],
			Volume: e.Volume,
			Parent: e.From,
		})
	}
	sort.Slice(tl.deposits, func(i, j int) bool { return tl.deposits[i].Time < tl.deposits[j].Time })
	total := 0
	for _, d := range tl.deposits {
		total += d.Volume
	}
	if total > capacity {
		panic(fmt.Sprintf("storage: op %d stores %d units in capacity %d", id, total, capacity))
	}
	return tl
}

// Deposits returns the arrival events in time order.
func (tl *Timeline) Deposits() []Deposit { return tl.deposits }

// StoredAt returns the stored volume at time t (deposits at exactly t are
// already inside).
func (tl *Timeline) StoredAt(t int) int {
	v := 0
	for _, d := range tl.deposits {
		if d.Time <= t {
			v += d.Volume
		}
	}
	return v
}

// FreeAt returns the free space at time t.
func (tl *Timeline) FreeAt(t int) int { return tl.Capacity - tl.StoredAt(t) }

// MinFree returns the minimum free space over the window [from, to). An
// empty window returns the capacity.
func (tl *Timeline) MinFree(from, to int) int {
	if to > tl.End {
		to = tl.End
	}
	if from >= to {
		return tl.Capacity
	}
	// Fill level only changes at deposit times; the minimum free space over
	// the window is at its last instant.
	return tl.FreeAt(to - 1)
}

// CanOverlap reports whether an intrusion of the given area (in lattice
// cells, one unit of fluid per cell) during [from, to) fits in the free
// space at every instant of the overlap — the feasibility test of
// Algorithm 1 L6 and L14.
func (tl *Timeline) CanOverlap(area, from, to int) bool {
	if area <= 0 {
		return true
	}
	lo, hi := from, to
	if lo < tl.Start {
		lo = tl.Start
	}
	if hi > tl.End {
		hi = tl.End
	}
	if lo >= hi {
		return true // windows do not intersect
	}
	return area <= tl.MinFree(lo, hi)
}

// Active reports whether the storage phase covers time t.
func (tl *Timeline) Active(t int) bool { return t >= tl.Start && t < tl.End }
