package place

import (
	"mfsynth/internal/arch"
	"mfsynth/internal/grid"
	"mfsynth/internal/schedule"
)

// Instance is the exported constraint-checking surface of one mapping
// problem, for external mappers (internal/anneal) that search over
// placements themselves but must agree with this package on what a legal
// placement is. Every admissibility rule — chip fit, fault filtering,
// non-overlap with time-overlapping devices, the c5 storage-overlap
// relaxation and the routing-convenient distance — is evaluated by the
// same code paths the greedy mapper and the ILP candidate generation use,
// so a state an Instance accepts is a state place.MapCtx could have
// produced.
//
// An Instance is immutable after construction and safe for concurrent use
// by multiple goroutines (simulated-annealing replicates share one).
type Instance struct {
	pr *problem
}

// NewInstance builds the mapping problem for a scheduled assay. The config
// is resolved exactly as MapCtx resolves it (grid, root stride, fault set,
// ablation switches all apply).
func NewInstance(res *schedule.Result, cfg Config) (*Instance, error) {
	pr, err := newProblem(res, cfg.withDefaults())
	if err != nil {
		return nil, err
	}
	return &Instance{pr: pr}, nil
}

// Ops returns the on-chip operations in device-creation order — the order
// constructive mappers place them in.
func (in *Instance) Ops() []int { return in.pr.ops }

// IsPump reports whether op contributes peristaltic load (a mixing op).
func (in *Instance) IsPump(op int) bool { return in.pr.pump[op] }

// OpName returns the assay name of op, for error messages.
func (in *Instance) OpName(op int) string { return in.pr.res.Assay.Op(op).Name }

// RCDist is the routing-convenient distance d of constraints (13)-(16).
func (in *Instance) RCDist() int { return in.pr.d }

// Shapes lists the chip-fitting device shapes of op.
func (in *Instance) Shapes(op int) []arch.Shape { return in.pr.shp[op] }

// PlacementArea returns the anchor positions where shape s fits on the
// chip (wall band included).
func (in *Instance) PlacementArea(s arch.Shape) grid.Rect {
	return in.pr.chip.PlacementArea(s)
}

// DeviceParents lists op's on-chip device parents — the operations whose
// products op consumes and that are subject to the routing-convenient
// coupling (empty when the config drops constraints (13)-(16)).
func (in *Instance) DeviceParents(op int) []int {
	if in.pr.cfg.NoRoutingConvenient {
		return nil
	}
	var out []int
	for _, p := range in.pr.res.Assay.DeviceParents(op) {
		if _, onChip := in.pr.win[p]; onChip {
			out = append(out, p)
		}
	}
	return out
}

// DeviceChildren lists the on-chip operations that have op as a device
// parent. Moving op must keep these within the routing-convenient
// distance; the constructive mappers never needed the check (parents are
// always placed before children), so candidate enumeration only prunes
// against parents and a search that relocates an already-placed parent
// has to enforce the child side itself.
func (in *Instance) DeviceChildren(op int) []int {
	if in.pr.cfg.NoRoutingConvenient {
		return nil
	}
	var out []int
	for _, c := range in.pr.ops {
		for _, p := range in.pr.res.Assay.DeviceParents(c) {
			if p == op {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

// Candidates enumerates every admissible placement of op against the fixed
// context, sorted deterministically (shape preference, then row-major).
// With relaxRC the routing-convenient pruning against fixed parents is
// dropped — the same fallback the greedy mapper and the ILP use when the
// constrained set is empty.
func (in *Instance) Candidates(op int, fixed map[int]arch.Placement, relaxRC bool) []arch.Placement {
	return in.pr.candidates(op, fixed, candOpts{relaxRC: relaxRC, fullRoots: true})
}

// Admissible checks a single placement of op against the fixed context —
// the per-move form of Candidates for searches that probe one random
// placement instead of enumerating the lattice. The footprint must fit the
// chip (anchor within PlacementArea of pl.Shape), and the same fault,
// non-overlap, storage-overlap and parent-side routing-convenient rules as
// Candidates apply. The child-side coupling is NOT checked here; callers
// that move parents combine this with RCWithChildren.
func (in *Instance) Admissible(op int, pl arch.Placement, fixed map[int]arch.Placement, relaxRC bool) bool {
	area := in.pr.chip.PlacementArea(pl.Shape)
	if pl.At.X < area.X0 || pl.At.X >= area.X1 || pl.At.Y < area.Y0 || pl.At.Y >= area.Y1 {
		return false
	}
	a := in.pr.res.Assay
	var fixedParents []arch.Placement
	for _, p := range a.DeviceParents(op) {
		if ppl, ok := fixed[p]; ok {
			fixedParents = append(fixedParents, ppl)
		}
	}
	var obstacles []obstacle
	for j, jpl := range fixed {
		if j == op || !in.pr.overlapsInTime(op, j) {
			continue
		}
		obstacles = append(obstacles, obstacle{
			pl:        jpl,
			overlapOK: in.pr.storagePair(op, j),
			window:    in.pr.win[j],
		})
	}
	return in.pr.admissible(op, pl, fixedParents, obstacles, candOpts{relaxRC: relaxRC})
}

// RCWithChildren reports whether placing op at pl keeps every fixed
// on-chip device child within the routing-convenient distance. Children
// listed in exempt (ops whose RC coupling was relaxed at construction)
// are skipped, as is everything when op itself is exempt or the config
// drops the constraints.
func (in *Instance) RCWithChildren(op int, pl arch.Placement, fixed map[int]arch.Placement, exempt map[int]bool) bool {
	if in.pr.cfg.NoRoutingConvenient || exempt[op] {
		return true
	}
	fp := pl.Footprint()
	for _, c := range in.DeviceChildren(op) {
		if exempt[c] {
			continue
		}
		cpl, ok := fixed[c]
		if !ok {
			continue
		}
		if fp.Distance(cpl.Footprint()) > in.pr.d {
			return false
		}
	}
	return true
}

// Finish assembles the Mapping (windows, storage timelines, MaxPumpOps,
// Dropped) from a complete or partial placement assignment, exactly as the
// internal mappers do.
func (in *Instance) Finish(fixed map[int]arch.Placement, stats Stats) *Mapping {
	return in.pr.finishMapping(fixed, stats)
}

// StorageViolations counts the (child, parent) storage-overlap pairs of
// the mapping that exceed the storage's free space — the Algorithm 1 L6
// check. States built exclusively from Admissible placements always
// report zero (the candidate pre-filter runs the same free-space test);
// external mappers use this as a final defensive audit.
func (in *Instance) StorageViolations(m *Mapping) int {
	return len(in.pr.storageViolations(m))
}
