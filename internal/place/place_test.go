package place

import (
	"testing"
	"time"

	"mfsynth/internal/assays"
	"mfsynth/internal/graph"
	"mfsynth/internal/schedule"
)

func pcrSchedule(t *testing.T) *schedule.Result {
	t.Helper()
	c := assays.PCR()
	r, err := schedule.List(c.Assay, schedule.Options{
		Resources: schedule.Resources{Mixers: c.BaseMixers},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// checkMapping verifies the structural invariants of a mapping against its
// schedule: every on-chip op placed, placements on-chip, non-overlap for
// temporally overlapping devices except admissible storage-parent overlaps,
// and pump-load consistency with MaxPumpOps.
func checkMapping(t *testing.T, res *schedule.Result, m *Mapping, cfg Config) {
	t.Helper()
	a := res.Assay
	for _, op := range a.Ops() {
		if op.Kind == graph.Input || op.Kind == graph.Output {
			continue
		}
		pl, ok := m.Placements[op.ID]
		if !ok {
			t.Fatalf("op %s not placed", op.Name)
		}
		if pl.Volume() < DeviceVolume(a.Volume(op.ID)) {
			t.Errorf("op %s: device volume %d < required %d", op.Name, pl.Volume(), a.Volume(op.ID))
		}
		wb := pl.WallBox()
		if wb.X0 < 0 || wb.Y0 < 0 || wb.X1 > cfg.Grid || wb.Y1 > cfg.Grid {
			t.Errorf("op %s: wall box %v leaves the %dx%d chip", op.Name, wb, cfg.Grid, cfg.Grid)
		}
	}
	// Pairwise compatibility.
	ids := make([]int, 0, len(m.Placements))
	for id := range m.Placements {
		ids = append(ids, id)
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			a1, a2 := ids[i], ids[j]
			w1, w2 := m.Windows[a1], m.Windows[a2]
			if w1[0] >= w2[1] || w2[0] >= w1[1] {
				continue // disjoint in time
			}
			p1, p2 := m.Placements[a1], m.Placements[a2]
			if p1.CompatibleWith(p2) {
				continue
			}
			// Overlap: must be an admissible storage-parent pair.
			if !storageOverlapOK(res, m, a1, a2) && !storageOverlapOK(res, m, a2, a1) {
				t.Errorf("ops %s and %s overlap in space and time: %v vs %v",
					res.Assay.Op(a1).Name, res.Assay.Op(a2).Name, p1, p2)
			}
		}
	}
	// MaxPumpOps consistency.
	pump := map[[2]int]int{}
	maxPump := 0
	for id, pl := range m.Placements {
		if res.Assay.Op(id).Kind != graph.Mix {
			continue
		}
		for _, pt := range pl.Ring() {
			k := [2]int{pt.X, pt.Y}
			pump[k]++
			if pump[k] > maxPump {
				maxPump = pump[k]
			}
		}
	}
	if maxPump != m.MaxPumpOps {
		t.Errorf("MaxPumpOps = %d but recount gives %d", m.MaxPumpOps, maxPump)
	}
}

// storageOverlapOK checks whether child's storage may overlap parent's
// device with the observed area.
func storageOverlapOK(res *schedule.Result, m *Mapping, child, parent int) bool {
	isParent := false
	for _, p := range res.Assay.DeviceParents(child) {
		if p == parent {
			isParent = true
		}
	}
	if !isParent {
		return false
	}
	tl := m.Storages[child]
	if tl == nil {
		return false
	}
	area := m.Placements[child].Footprint().OverlapArea(m.Placements[parent].Footprint())
	pw := m.Windows[parent]
	return tl.CanOverlap(area, pw[0], pw[1])
}

func TestGreedyPCR(t *testing.T) {
	res := pcrSchedule(t)
	cfg := Config{Grid: 12, Mode: Greedy}
	m, err := Map(res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkMapping(t, res, m, cfg.withDefaults())
	if len(m.Placements) != 7 {
		t.Fatalf("placed %d ops, want 7", len(m.Placements))
	}
	if m.MaxPumpOps != 1 {
		t.Errorf("greedy MaxPumpOps = %d, want 1", m.MaxPumpOps)
	}
	if m.Stats.Mode != Greedy {
		t.Errorf("stats mode = %v", m.Stats.Mode)
	}
}

func TestRollingPCR(t *testing.T) {
	res := pcrSchedule(t)
	cfg := Config{Grid: 12}
	m, err := Map(res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkMapping(t, res, m, cfg.withDefaults())
	// The paper reaches vs1 = 45(40) on PCR: every valve pumps for at most
	// one operation.
	if m.MaxPumpOps != 1 {
		t.Errorf("rolling MaxPumpOps = %d, want 1", m.MaxPumpOps)
	}
	if m.Stats.ILPSolves == 0 {
		t.Error("rolling horizon did not run any ILP")
	}
}

func TestMonolithicPCR(t *testing.T) {
	if testing.Short() {
		t.Skip("monolithic ILP is slow")
	}
	res := pcrSchedule(t)
	cfg := Config{Grid: 12, Mode: Monolithic, MaxNodes: 2000, SolveTimeout: 30 * time.Second}
	m, err := Map(res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkMapping(t, res, m, cfg.withDefaults())
	if m.MaxPumpOps != 1 {
		t.Errorf("monolithic MaxPumpOps = %d, want 1", m.MaxPumpOps)
	}
}

func TestRollingMixingTree(t *testing.T) {
	if testing.Short() {
		t.Skip("18-op mapping is slow")
	}
	c := assays.MixingTree()
	res, err := schedule.List(c.Assay, schedule.Options{
		Resources: schedule.Resources{Mixers: c.BaseMixers},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Grid: c.GridSize}
	m, err := Map(res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkMapping(t, res, m, cfg.withDefaults())
	// Paper: vs1 = 93(80) → max two pump uses per valve. Allow one more
	// for the decomposed solver.
	if m.MaxPumpOps > 3 {
		t.Errorf("MaxPumpOps = %d, want ≤ 3", m.MaxPumpOps)
	}
}

func TestStorageOverlapAblation(t *testing.T) {
	res := pcrSchedule(t)
	cfg := Config{Grid: 12, Mode: Greedy, NoStorageOverlap: true}
	m, err := Map(res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With the relaxation disabled, no two temporally overlapping devices
	// may share cells at all.
	for id1, p1 := range m.Placements {
		for id2, p2 := range m.Placements {
			if id1 >= id2 {
				continue
			}
			w1, w2 := m.Windows[id1], m.Windows[id2]
			if w1[0] < w2[1] && w2[0] < w1[1] && !p1.CompatibleWith(p2) {
				t.Errorf("NoStorageOverlap violated by %d and %d", id1, id2)
			}
		}
	}
}

func TestTooSmallChip(t *testing.T) {
	res := pcrSchedule(t)
	_, err := Map(res, Config{Grid: 5, Mode: Greedy})
	if err == nil {
		t.Fatal("5x5 chip cannot host four concurrent 8-volume mixers")
	}
}

func TestDeviceVolume(t *testing.T) {
	tests := []struct{ fluid, want int }{
		{2, 4}, {3, 4}, {4, 4}, {5, 6}, {6, 6}, {7, 8}, {8, 8}, {9, 10}, {10, 10},
	}
	for _, tt := range tests {
		if got := DeviceVolume(tt.fluid); got != tt.want {
			t.Errorf("DeviceVolume(%d) = %d, want %d", tt.fluid, got, tt.want)
		}
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		RollingHorizon: "rolling-horizon", Monolithic: "monolithic", Greedy: "greedy",
	} {
		if m.String() != want {
			t.Errorf("Mode(%d).String() = %q", int(m), m.String())
		}
	}
}

func TestWindowsAndStorages(t *testing.T) {
	res := pcrSchedule(t)
	m, err := Map(res, Config{Grid: 12, Mode: Greedy})
	if err != nil {
		t.Fatal(err)
	}
	roots, withStorage := 0, 0
	for id := range m.Placements {
		w := m.Windows[id]
		if w[0] >= w[1] {
			t.Errorf("op %d has empty window %v", id, w)
		}
		if m.Storages[id] == nil {
			roots++
		} else {
			withStorage++
			if m.Storages[id].End != res.Start[id] {
				t.Errorf("storage end %d != op start %d", m.Storages[id].End, res.Start[id])
			}
		}
	}
	if roots != 4 || withStorage != 3 {
		t.Errorf("roots/withStorage = %d/%d, want 4/3", roots, withStorage)
	}
}

func TestDilutionChainRolling(t *testing.T) {
	// A single 4-step chain: each child must be placed near its parent.
	a := assays.SerialDilution("sd", []int{10, 8, 6, 4})
	res, err := schedule.List(a, schedule.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Grid: 10, BatchSize: 2}
	m, err := Map(res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkMapping(t, res, m, cfg.withDefaults())
	if m.Stats.RCRelaxed != 0 {
		t.Errorf("chain should not need RC relaxation, got %d", m.Stats.RCRelaxed)
	}
	// Consecutive steps within routing-convenient distance 2.
	mix := a.MixOps()
	for i := 1; i < len(mix); i++ {
		d := m.Placements[mix[i]].Footprint().Distance(m.Placements[mix[i-1]].Footprint())
		if d > 2 {
			t.Errorf("steps %d and %d at distance %d > 2", i-1, i, d)
		}
	}
}
