// Package place implements the paper's dynamic-device mapping (Section
// 3.2): every scheduled on-chip operation is mapped to a device location,
// shape and orientation on the valve-centered architecture so that the
// largest number of peristaltic valve actuations is minimised, subject to
// the non-overlap constraints (3)-(8), the storage-overlap relaxation (12)
// and the routing-convenient constraints (13)-(16).
//
// Three mappers are provided:
//
//   - Monolithic: the paper's ILP, one model for the whole assay, solved by
//     the internal branch-and-bound solver. Exact but only tractable for
//     PCR-sized cases with a from-scratch MILP solver.
//   - RollingHorizon (default): the same constraint system solved over
//     batches of operations in device-creation order, with earlier
//     placements fixed and their peristaltic load carried as constants.
//   - Greedy: a constructive heuristic used as the solver incumbent and as
//     an ablation baseline.
//
// The storage free-space repair loop of Algorithm 1 (L4-L9) wraps all
// three: overlaps between a storage and a parent device that exceed the
// storage's free space are forbidden and the mapping re-runs.
package place

import (
	"context"
	"fmt"
	"time"

	"mfsynth/internal/arch"
	"mfsynth/internal/fault"
	"mfsynth/internal/graph"
	"mfsynth/internal/grid"
	"mfsynth/internal/milp"
	"mfsynth/internal/obs"
	"mfsynth/internal/schedule"
	"mfsynth/internal/storage"
	"mfsynth/internal/synerr"
)

// Mode selects the mapping algorithm.
type Mode int

// Mapping algorithms.
const (
	// RollingHorizon solves the ILP over creation-ordered batches.
	RollingHorizon Mode = iota
	// Monolithic solves the paper's single ILP over all operations.
	Monolithic
	// Greedy places operations one by one without search.
	Greedy
	// Annealed marks mappings produced by the simulated-annealing backend
	// (internal/anneal, via the Instance API). place.MapCtx itself never
	// runs it — passing it to MapCtx is a configuration error.
	Annealed
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case RollingHorizon:
		return "rolling-horizon"
	case Monolithic:
		return "monolithic"
	case Greedy:
		return "greedy"
	case Annealed:
		return "anneal"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config tunes the mapper.
type Config struct {
	// Grid is the valve matrix side length.
	Grid int
	// Mode selects the algorithm (default RollingHorizon).
	Mode Mode
	// BatchSize is the rolling-horizon batch length (default 6).
	BatchSize int
	// MaxNodes bounds branch-and-bound nodes per ILP (default 1024). It is
	// the primary give-up budget for models the search cannot crack (the
	// fallback ladder then relaxes the model or reverts to greedy):
	// machine-independent, deterministic, and — with warm-started node
	// solves — cheap to exhaust. SolveTimeout is the wall-clock backstop.
	MaxNodes int
	// SolveTimeout bounds each ILP solve (default 120s). It is a loose
	// wall-clock backstop: MaxNodes is meant to bind first, so that the
	// point where a hopeless search gives up is deterministic and the
	// work counters the perf gate tracks are machine-independent.
	SolveTimeout time.Duration
	// RootStride thins the candidate lattice for operations without placed
	// parents (default 2; 1 = every position).
	RootStride int
	// NoStorageOverlap disables the c5 relaxation entirely (ablation):
	// storages may never overlap their parent devices.
	NoStorageOverlap bool
	// NoRoutingConvenient drops constraints (13)-(16) (ablation).
	NoRoutingConvenient bool
	// Workers bounds the mapper-internal parallelism: the multi-start
	// greedy fan-out and the branch-and-bound relaxation solves
	// (0 = runtime.GOMAXPROCS, 1 = legacy serial). Results are
	// bit-identical for every value; only wall-clock time changes —
	// provided SolveTimeout does not bind (a wall-clock deadline cuts
	// the search at a timing-dependent node in serial runs too; MaxNodes
	// is the deterministic budget).
	Workers int
	// Obs, when non-nil, is the parent span the mapper reports under:
	// per-repair-iteration spans, per-batch ILP spans, greedy fan-out
	// pools on per-worker tracks, and the place.* metrics. Observation
	// never changes results.
	Obs *obs.Span
	// Faults excludes defective valves from the mapping: stuck-closed
	// cells may not lie in any footprint (and hence no ring or storage),
	// and stuck-open cells may not serve as ring or wall-band cells.
	// Filtering happens in candidate enumeration, which is also what makes
	// the ILP fault-aware: an excluded candidate is a forbidding
	// constraint the model never has to express. Nil means a fault-free
	// chip and costs one nil check.
	Faults *fault.Set
	// BestEffort makes the greedy mapper skip operations with no feasible
	// placement instead of failing, recording them in Mapping.Dropped —
	// the last rung of core's degradation ladder. Only the greedy paths
	// honour it; the ILP modes still require a complete assignment.
	BestEffort bool
	// ColdLP disables the branch-and-bound warm-start machinery
	// (milp.Options.ColdLP): every node pays a from-scratch LP solve.
	// Both modes are exact searches that agree on final incumbents and
	// statuses (and hence on placements); the switch exists for
	// benchmarking and differential tests.
	ColdLP bool
	// WearPrior, when non-nil, is a Grid×Grid row-major matrix (index
	// y·Grid+x) of prior per-valve pump load in per-operation units — the
	// chip's cumulative past actuations divided by the per-operation
	// actuation count. The mappers seed their per-valve load accumulation
	// from it, so the minimised objective becomes the *lifetime* maximum
	// load rather than this run's: new duty is steered onto lightly-worn
	// valves. A nil or all-zero prior is bit-identical to a fresh chip,
	// and Mapping.MaxPumpOps always reports this run's load only.
	WearPrior []int
}

func (c Config) withDefaults() Config {
	if c.Grid == 0 {
		c.Grid = 10
	}
	if c.BatchSize == 0 {
		c.BatchSize = 6
	}
	if c.MaxNodes == 0 {
		c.MaxNodes = 1024
	}
	if c.SolveTimeout == 0 {
		c.SolveTimeout = 120 * time.Second
	}
	if c.RootStride == 0 {
		c.RootStride = 2
	}
	return c
}

// Mapping is the dynamic-device mapping result.
type Mapping struct {
	// Placements maps each on-chip operation to its device.
	Placements map[int]arch.Placement
	// Windows gives each device's lifetime [from, to) including the in situ
	// storage phase.
	Windows map[int][2]int
	// Storages holds the in situ storage timeline per operation (nil for
	// operations whose inputs all come from ports).
	Storages map[int]*storage.Timeline
	// MaxPumpOps is the largest number of mixing operations any single
	// valve pumps for — the ILP objective w in per-operation units.
	// Multiply by the per-operation pump actuation count (40 in the
	// paper's setting 1) for the actuation figure.
	MaxPumpOps int
	// Dropped lists operations (ascending IDs) that found no feasible
	// placement and were skipped under Config.BestEffort. Empty on
	// complete mappings.
	Dropped []int
	// Stats describes the solve.
	Stats Stats
}

// Stats reports how the mapping was obtained.
type Stats struct {
	Mode Mode
	// ILPNodes is the total number of branch-and-bound nodes.
	ILPNodes int
	// ILPSolves is the number of ILP models solved.
	ILPSolves int
	// Repairs is the number of storage-overlap repair iterations.
	Repairs int
	// RCRelaxed counts operations whose routing-convenient constraints had
	// to be dropped to keep the model feasible.
	RCRelaxed int
	// Exact is true when every ILP finished with a proven optimum.
	Exact bool
	// NoIncumbent counts branch-and-bound solves that exhausted their node
	// budget without ever holding an incumbent (milp status Limit) — the
	// hard instances the anytime portfolio exists for. The internal
	// fallbacks (relaxed model, greedy) usually still produce a mapping,
	// so a non-zero count with a successful result means the ILP itself
	// was beaten, not the run.
	NoIncumbent int
}

// Map runs the configured mapper with the Algorithm 1 repair loop.
func Map(res *schedule.Result, cfg Config) (*Mapping, error) {
	return MapCtx(context.Background(), res, cfg)
}

// MapCtx is Map with cancellation: ctx is checked between repair
// iterations, per rolling batch and per branch-and-bound node, so a
// cancelled mapping returns a synerr.ErrDeadline-compatible error instead
// of finishing the current solve.
func MapCtx(ctx context.Context, res *schedule.Result, cfg Config) (*Mapping, error) {
	cfg = cfg.withDefaults()
	pr, err := newProblem(res, cfg)
	if err != nil {
		return nil, err
	}
	pr.ctx = ctx
	const maxRepairs = 16
	for iter := 0; ; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, synerr.Deadline("place", err)
		}
		iterSp := cfg.Obs.Start("place.iter",
			obs.KV("iter", iter), obs.KV("mode", cfg.Mode.String()))
		var m *Mapping
		var err error
		switch cfg.Mode {
		case Monolithic:
			m, err = pr.solveMonolithic(iterSp)
		case Greedy:
			m, err = pr.solveGreedy(iterSp)
		case Annealed:
			iterSp.End()
			return nil, fmt.Errorf("place: mode %s is produced by the anneal backend, not by MapCtx", cfg.Mode)
		default:
			m, err = pr.solveRolling(iterSp)
		}
		if err != nil {
			iterSp.End()
			return nil, err
		}
		m.Stats.Repairs = iter
		bad := pr.storageViolations(m)
		iterSp.Set(obs.KV("violations", len(bad)))
		iterSp.End()
		if len(bad) == 0 {
			pr.flushObs(m)
			return m, nil
		}
		if iter >= maxRepairs {
			return nil, synerr.Infeasible("place", "storage repair did not converge after %d iterations", maxRepairs)
		}
		cfg.Obs.Metrics().Counter("place_repairs_total").Inc()
		for _, pair := range bad {
			pr.forbidden[pair] = true
		}
	}
}

// flushObs records the accepted mapping's solve statistics as metrics and
// attributes on the mapper's parent span.
func (pr *problem) flushObs(m *Mapping) {
	sp := pr.cfg.Obs
	mm := sp.Metrics()
	if mm == nil {
		return
	}
	mm.Counter("place_ilp_solves_total").Add(int64(m.Stats.ILPSolves))
	mm.Counter("place_ilp_nodes_total").Add(int64(m.Stats.ILPNodes))
	mm.Counter("place_rc_relaxed_total").Add(int64(m.Stats.RCRelaxed))
	sp.Set(obs.KV("mode", m.Stats.Mode.String()),
		obs.KV("repairs", m.Stats.Repairs),
		obs.KV("ilp_nodes", m.Stats.ILPNodes),
		obs.KV("max_pump_ops", m.MaxPumpOps),
		obs.KV("exact", m.Stats.Exact))
}

// pairKey identifies a (child, parent) overlap permission.
type pairKey struct{ child, parent int }

// problem is the shared mapping state.
type problem struct {
	res *schedule.Result
	cfg Config
	ctx context.Context // cancellation; context.Background() via Map

	chip *arch.Chip
	ops  []int          // on-chip operations in device-creation order
	win  map[int][2]int // device lifetime incl. storage phase
	vol  map[int]int    // device ring volume
	shp  map[int][]arch.Shape
	pump map[int]bool // contributes peristaltic load (mix ops)
	stor map[int]*storage.Timeline
	d    int // routing-convenient distance

	forbidden map[pairKey]bool // (child,parent) pairs that may not overlap

	// prior holds Config.WearPrior's non-zero entries by cell; empty on a
	// fresh chip, so the wear-aware paths cost one length check.
	prior map[grid.Point]int

	// arenas carries the branch-and-bound solver state (tableau arenas,
	// warm-start lanes, snapshot pool) across every ILP solve of this
	// mapping — the rolling-horizon windows reuse buffers instead of
	// reallocating them per batch.
	arenas *milp.Arenas
}

func newProblem(res *schedule.Result, cfg Config) (*problem, error) {
	pr := &problem{
		res:       res,
		cfg:       cfg,
		ctx:       context.Background(),
		chip:      arch.NewChip(cfg.Grid, cfg.Grid),
		win:       map[int][2]int{},
		vol:       map[int]int{},
		shp:       map[int][]arch.Shape{},
		pump:      map[int]bool{},
		stor:      map[int]*storage.Timeline{},
		forbidden: map[pairKey]bool{},
		prior:     map[grid.Point]int{},
		arenas:    milp.NewArenas(),
	}
	if n := len(cfg.WearPrior); n != 0 {
		if n != cfg.Grid*cfg.Grid {
			return nil, fmt.Errorf("place: WearPrior has %d entries, want %d for a %dx%d grid",
				n, cfg.Grid*cfg.Grid, cfg.Grid, cfg.Grid)
		}
		for i, v := range cfg.WearPrior {
			if v < 0 {
				return nil, fmt.Errorf("place: WearPrior[%d] is negative (%d)", i, v)
			}
			if v > 0 {
				pr.prior[grid.Point{X: i % cfg.Grid, Y: i / cfg.Grid}] = v
			}
		}
	}
	a := res.Assay
	var volumes []int
	for _, id := range res.OpsByCreation() {
		op := a.Op(id)
		if op.Kind == graph.Output {
			continue // outputs drain to a port; no device
		}
		v := DeviceVolume(a.Volume(id))
		shapes := arch.ShapesForVolume(v)
		if len(shapes) == 0 {
			return nil, synerr.Infeasible("place", "op %s has no shapes for volume %d", op.Name, v)
		}
		// Keep only shapes that fit on the chip.
		var fit []arch.Shape
		for _, s := range shapes {
			if !pr.chip.PlacementArea(s).Empty() {
				fit = append(fit, s)
			}
		}
		if len(fit) == 0 {
			return nil, synerr.Infeasible("place", "op %s (volume %d) does not fit a %dx%d chip",
				op.Name, v, cfg.Grid, cfg.Grid)
		}
		pr.ops = append(pr.ops, id)
		from, to := res.DeviceWindow(id)
		pr.win[id] = [2]int{from, to}
		pr.vol[id] = v
		pr.shp[id] = fit
		pr.pump[id] = op.Kind == graph.Mix
		pr.stor[id] = storage.NewTimeline(res, id, v)
		volumes = append(volumes, v)
	}
	if len(pr.ops) == 0 {
		return nil, synerr.Infeasible("place", "assay %q has no on-chip operations", a.Name)
	}
	pr.d = arch.MinShapeDim(volumes)
	return pr, nil
}

// DeviceVolume returns the ring volume of the device executing an operation
// with the given fluid volume: at least 4 and even (a ring needs a 2×2
// block and lattice rings have even length).
func DeviceVolume(fluid int) int {
	v := fluid
	if v%2 == 1 {
		v++
	}
	if v < 4 {
		v = 4
	}
	return v
}

// seedPump returns the initial per-valve load accumulator every solve
// starts from: the wear prior's non-zero entries, or an empty map on a
// fresh chip.
func (pr *problem) seedPump() map[grid.Point]int {
	out := make(map[grid.Point]int, len(pr.prior))
	for pt, n := range pr.prior {
		out[pt] = n
	}
	return out
}

// wearAware reports whether a wear prior is steering this mapping.
func (pr *problem) wearAware() bool { return len(pr.prior) > 0 }

// lifetimeMaxPump replays the placements' pump load on top of the wear
// prior and returns the maximum per-valve total — the quantity the
// wear-biased mappers minimise (untouched worn valves included, matching
// the ILP's w ≥ maxPast lower bound).
func (pr *problem) lifetimeMaxPump(fixed map[int]arch.Placement) int {
	pump := pr.seedPump()
	max := 0
	for _, n := range pump {
		if n > max {
			max = n
		}
	}
	for _, op := range pr.ops {
		if !pr.pump[op] {
			continue
		}
		pl, ok := fixed[op]
		if !ok {
			continue
		}
		for _, pt := range pl.Ring() {
			pump[pt]++
			if pump[pt] > max {
				max = pump[pt]
			}
		}
	}
	return max
}

// overlapsInTime reports whether the device windows of a and b intersect.
func (pr *problem) overlapsInTime(a, b int) bool {
	wa, wb := pr.win[a], pr.win[b]
	return wa[0] < wb[1] && wb[0] < wa[1]
}

// storagePair reports whether (child, parent) is a pair where the child's
// in situ storage may overlap the parent's device under the c5 relaxation:
// parent is a device parent of child, the child has a storage phase, and
// the pair was not forbidden by a repair iteration.
func (pr *problem) storagePair(child, parent int) bool {
	if pr.cfg.NoStorageOverlap || pr.stor[child] == nil {
		return false
	}
	if pr.forbidden[pairKey{child, parent}] {
		return false
	}
	for _, p := range pr.res.Assay.DeviceParents(child) {
		if p == parent {
			return true
		}
	}
	return false
}

// rcPairs lists the (parent, child) pairs subject to the routing-convenient
// constraints: device parents and their consumers.
func (pr *problem) rcPairs() [][2]int {
	if pr.cfg.NoRoutingConvenient {
		return nil
	}
	var out [][2]int
	for _, id := range pr.ops {
		for _, p := range pr.res.Assay.DeviceParents(id) {
			if _, ok := pr.win[p]; !ok {
				continue
			}
			out = append(out, [2]int{p, id})
		}
	}
	return out
}

// storageViolations simulates the storage fill levels against the mapping
// and returns the (child, parent) pairs whose overlap exceeds free space —
// the check of Algorithm 1 L6.
func (pr *problem) storageViolations(m *Mapping) []pairKey {
	var bad []pairKey
	for _, id := range pr.ops {
		tl := pr.stor[id]
		if tl == nil {
			continue
		}
		child, ok := m.Placements[id]
		if !ok {
			continue
		}
		for _, p := range pr.res.Assay.DeviceParents(id) {
			parent, ok := m.Placements[p]
			if !ok {
				continue
			}
			area := child.Footprint().OverlapArea(parent.Footprint())
			if area == 0 {
				continue
			}
			// The parent occupies the shared cells until it finishes.
			pw := pr.win[p]
			if !tl.CanOverlap(area, pw[0], pw[1]) {
				bad = append(bad, pairKey{id, p})
			}
		}
	}
	return bad
}
