package place

import (
	"errors"

	"mfsynth/internal/arch"
	"mfsynth/internal/obs"
	"mfsynth/internal/synerr"
)

// solveRolling runs the rolling-horizon decomposition: the ILP of
// solveBatch over consecutive creation-order batches, with all earlier
// placements fixed and their peristaltic loads carried as constants in the
// v(x,y) accumulation. The constraint system per batch is exactly the
// paper's; only the scope of simultaneously-open decisions is reduced,
// which is what makes the two dilution benchmarks tractable for a
// from-scratch MILP solver.
func (pr *problem) solveRolling(sp *obs.Span) (*Mapping, error) {
	fixed := map[int]arch.Placement{}
	pump := pr.seedPump() // wear prior: past load enters the ILP as constants
	stats := Stats{Mode: RollingHorizon, Exact: true}

	for start := 0; start < len(pr.ops); start += pr.cfg.BatchSize {
		end := start + pr.cfg.BatchSize
		if end > len(pr.ops) {
			end = len(pr.ops)
		}
		batch := pr.ops[start:end]
		bsp := sp.Start("place.batch",
			obs.KV("start", start), obs.KV("ops", len(batch)))
		placements, info, err := pr.solveBatch(batch, fixed, pump, batchOpts{obs: bsp})
		bsp.End()
		if err != nil {
			if errors.Is(err, synerr.ErrDeadline) {
				return nil, err // cancelled, not crowded: no fallback
			}
			// Earlier batches crowded the chip; a full-horizon greedy sees
			// all couplings at once and regularly still fits.
			full, ginfo, gerr := pr.multiStartGreedy(sp, pr.ops, map[int]arch.Placement{}, pr.seedPump())
			if gerr != nil {
				return nil, err
			}
			stats.Exact = false
			stats.RCRelaxed = ginfo.rcRelaxed
			return pr.finishMapping(full, stats), nil
		}
		stats.ILPSolves++
		stats.ILPNodes += info.nodes
		stats.RCRelaxed += info.rcRelaxed
		stats.NoIncumbent += info.noIncumbent
		if !info.exact {
			stats.Exact = false
		}
		for op, pl := range placements {
			fixed[op] = pl
			if pr.pump[op] {
				for _, pt := range pl.Ring() {
					pump[pt]++
				}
			}
		}
	}
	// Decomposition never proves global optimality.
	if stats.ILPSolves > 1 {
		stats.Exact = false
	}
	result := pr.finishMapping(fixed, stats)

	// Portfolio step: a full-horizon multi-start greedy sees couplings the
	// per-batch ILPs cannot; keep whichever mapping pumps less. Under a
	// wear prior both sides are judged on the lifetime maximum (prior
	// included) — the greedy's internal counter only covers valves its own
	// placements touch.
	if full, info, err := pr.multiStartGreedy(sp, pr.ops, map[int]arch.Placement{}, pr.seedPump()); err == nil {
		gm, rm := info.maxPump, result.MaxPumpOps
		if pr.wearAware() {
			gm, rm = pr.lifetimeMaxPump(full), pr.lifetimeMaxPump(fixed)
		}
		if gm < rm {
			gs := stats
			gs.RCRelaxed = info.rcRelaxed
			gs.Exact = false
			return pr.finishMapping(full, gs), nil
		}
	}
	return result, nil
}

// solveMonolithic solves the paper's single ILP over every operation.
func (pr *problem) solveMonolithic(sp *obs.Span) (*Mapping, error) {
	placements, info, err := pr.solveBatch(pr.ops, map[int]arch.Placement{}, pr.seedPump(), batchOpts{
		maxNodes: pr.cfg.MaxNodes,
		obs:      sp,
	})
	if err != nil {
		return nil, err
	}
	stats := Stats{
		Mode:        Monolithic,
		ILPSolves:   1,
		ILPNodes:    info.nodes,
		RCRelaxed:   info.rcRelaxed,
		Exact:       info.exact,
		NoIncumbent: info.noIncumbent,
	}
	return pr.finishMapping(placements, stats), nil
}
