package place

import (
	"fmt"
	"sort"

	"mfsynth/internal/arch"
	"mfsynth/internal/grid"
	"mfsynth/internal/milp"
	"mfsynth/internal/obs"
	"mfsynth/internal/synerr"
)

// batchOpts controls one ILP build.
type batchOpts struct {
	// noRC drops the routing-convenient rows and candidate pruning
	// (feasibility fallback).
	noRC bool
	// maxNodes overrides the config budget when positive.
	maxNodes int
	// obs is the span this ILP build and solve report under (nil = off).
	obs *obs.Span
}

// batchInfo reports one ILP solve.
type batchInfo struct {
	nodes     int
	exact     bool
	rcRelaxed int
	usedILP   bool
	// noIncumbent counts solves (this batch's retries included) that hit
	// the node budget without an incumbent — milp status Limit.
	noIncumbent int
}

// opModel holds the per-operation model pieces.
type opModel struct {
	op    int
	cands []arch.Placement
	vars  []milp.Var
	// Boundary coordinate expressions over the selection variables
	// (replacing the paper's auxiliary integer variables b_i,le etc.).
	left, right, bottom, top []milp.Term
}

// solveBatch maps the free operations via the paper's ILP, with already
// fixed placements as context: their footprints prune candidates and their
// peristaltic loads enter the v(x,y) accumulation as constants.
func (pr *problem) solveBatch(free []int, fixed map[int]arch.Placement, pump map[grid.Point]int, opts batchOpts) (map[int]arch.Placement, batchInfo, error) {
	info := batchInfo{exact: true}

	// 1. Candidates.
	oms := make([]*opModel, 0, len(free))
	numCands := 0
	for _, op := range free {
		cands := pr.candidates(op, fixed, candOpts{relaxRC: opts.noRC, fullRoots: true})
		if len(cands) == 0 && !opts.noRC {
			cands = pr.candidates(op, fixed, candOpts{relaxRC: true, fullRoots: true})
			info.rcRelaxed++
		}
		if len(cands) == 0 {
			return nil, info, synerr.Infeasible("place", "no feasible placement for %s on a %dx%d chip",
				pr.res.Assay.Op(op).Name, pr.cfg.Grid, pr.cfg.Grid)
		}
		numCands += len(cands)
		oms = append(oms, &opModel{op: op, cands: cands})
	}
	opts.obs.Set(obs.KV("candidates", numCands))
	opts.obs.Metrics().Counter("place_ilp_candidates_total").Add(int64(numCands))

	// 2. Model.
	m := milp.NewModel()
	maxPast := 0
	for _, n := range pump {
		if n > maxPast {
			maxPast = n
		}
	}
	w := m.AddVar("w", float64(maxPast), milp.Inf, 1)

	// Tiny secondary objective: prefer compact placements (near fixed
	// parents and the chip ports). The coefficient is far below the unit
	// cost of one extra pump use, so w-optimality always dominates; it only
	// breaks the huge positional symmetry, which both speeds up the search
	// and keeps routing (and therefore #v) short.
	// summed over a whole batch the secondary terms stay well below the
	// 0.999 integrality gap of the objective w.
	const eps = 0.0002

	coordCover := map[grid.Point][]milp.Term{} // ring coverage terms per valve
	for _, om := range oms {
		assign := make([]milp.Term, 0, len(om.cands))
		for ci, pl := range om.cands {
			attract := pr.portPull(om.op, pl.Footprint())
			for _, p := range pr.res.Assay.DeviceParents(om.op) {
				if ppl, ok := fixed[p]; ok {
					attract += 4 * pl.Footprint().Distance(ppl.Footprint())
				}
			}
			v := m.AddBinary(fmt.Sprintf("s.%d.%d", om.op, ci), eps*float64(attract))
			om.vars = append(om.vars, v)
			assign = append(assign, milp.T(v, 1))
			fp := pl.Footprint()
			om.left = append(om.left, milp.T(v, float64(fp.X0)))
			om.right = append(om.right, milp.T(v, float64(fp.X1)))
			om.bottom = append(om.bottom, milp.T(v, float64(fp.Y0)))
			om.top = append(om.top, milp.T(v, float64(fp.Y1)))
			if pr.pump[om.op] {
				for _, pt := range pl.Ring() {
					coordCover[pt] = append(coordCover[pt], milp.T(v, 1))
				}
			}
		}
		m.AddRow(assign, milp.EQ, 1) // constraint (1)
		m.AddSOS1(om.vars)           // branch by splitting the candidate set
	}
	// Constraints (2) and (9): w bounds the accumulated peristaltic load.
	// Row order must not depend on map iteration: the simplex pivot path
	// (and with it the perf gate's work counters) follows the row order,
	// even though the optimum does not.
	pts := make([]grid.Point, 0, len(coordCover))
	for pt := range coordCover {
		pts = append(pts, pt)
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Y != pts[j].Y {
			return pts[i].Y < pts[j].Y
		}
		return pts[i].X < pts[j].X
	})
	for _, pt := range pts {
		row := append(append([]milp.Term(nil), coordCover[pt]...), milp.T(w, -1))
		m.AddRow(row, milp.LE, float64(-pump[pt]))
	}

	bigM := float64(3*pr.cfg.Grid + 8)
	index := map[int]*opModel{}
	for _, om := range oms {
		index[om.op] = om
	}

	// Non-overlap disjunctions, constraints (3)-(8) and (12).
	var disjs []disj
	for i := 0; i < len(oms); i++ {
		for j := i + 1; j < len(oms); j++ {
			a, b := oms[i], oms[j]
			if !pr.overlapsInTime(a.op, b.op) {
				continue
			}
			relaxable := pr.storagePair(a.op, b.op) || pr.storagePair(b.op, a.op)
			choices, relax := m.AddDisjunctionLE(
				fmt.Sprintf("no%d.%d", a.op, b.op),
				[]milp.Disjunct{
					{Terms: subExpr(a.right, b.left), RHS: -1},
					{Terms: subExpr(b.right, a.left), RHS: -1},
					{Terms: subExpr(a.top, b.bottom), RHS: -1},
					{Terms: subExpr(b.top, a.bottom), RHS: -1},
				}, bigM, relaxable)
			disjs = append(disjs, disj{choices: choices, relax: relax, a: a, b: b})
		}
	}

	// Routing-convenient rows, constraints (13)-(16), for free-free pairs
	// (fixed-parent pairs were enforced through candidate pruning).
	if !opts.noRC {
		for _, pc := range pr.rcPairs() {
			p, c := index[pc[0]], index[pc[1]]
			if p == nil || c == nil {
				continue
			}
			pr.addProximityRows(m, p, c, pr.d)
		}
	}
	// Parents of a common future child are pulled together by the greedy
	// incumbent's sibling attraction; hard proximity rows between siblings
	// are deliberately not added — they can make the model infeasible and
	// reject the incumbent, while a scattered pair costs only a
	// routing-convenient relaxation later.

	// 3. Incumbent from the greedy heuristic.
	incumbent := pr.buildIncumbent(opts.obs, m, oms, disjs, fixed, pump, w)

	// 4. Solve.
	maxNodes := pr.cfg.MaxNodes
	if opts.maxNodes > 0 {
		maxNodes = opts.maxNodes
	}
	res, err := m.Solve(milp.Options{
		MaxNodes:  maxNodes,
		Timeout:   pr.cfg.SolveTimeout,
		Ctx:       pr.ctx,
		Incumbent: incumbent,
		AbsGap:    0.999, // w counts whole operations
		Workers:   pr.cfg.Workers,
		Obs:       opts.obs,
		ColdLP:    pr.cfg.ColdLP,
		Arenas:    pr.arenas,
	})
	if err != nil {
		return nil, info, err
	}
	info.nodes = res.Nodes
	info.usedILP = true
	switch res.Status {
	case milp.Optimal:
		// exact stays true
	case milp.Feasible:
		info.exact = false
	default:
		// No solution from the ILP. Retry without routing-convenient rows,
		// then fall back to pure greedy placements.
		if res.Status == milp.Limit {
			// The node budget ran out with no incumbent at all: the hard
			// condition the anytime portfolio targets. Count it before the
			// fallbacks mask it.
			info.noIncumbent++
		}
		if !opts.noRC {
			o2 := opts
			o2.noRC = true
			placements, inner, err := pr.solveBatch(free, fixed, pump, o2)
			inner.rcRelaxed += len(free)
			inner.exact = false
			inner.noIncumbent += info.noIncumbent
			return placements, inner, err
		}
		placements, ginfo, gerr := pr.multiStartGreedy(opts.obs, free, fixed, pump)
		if gerr != nil {
			return nil, info, fmt.Errorf("place: ILP %v for batch of %d ops and greedy failed: %v",
				res.Status, len(free), gerr)
		}
		info.exact = false
		info.rcRelaxed += ginfo.rcRelaxed
		out := map[int]arch.Placement{}
		for _, op := range free {
			out[op] = placements[op]
		}
		return out, info, nil
	}

	out := map[int]arch.Placement{}
	for _, om := range oms {
		chosen := -1
		for ci, v := range om.vars {
			if res.X[v] > 0.5 {
				chosen = ci
				break
			}
		}
		if chosen < 0 {
			return nil, info, fmt.Errorf("place: op %d has no selected placement", om.op)
		}
		out[om.op] = om.cands[chosen]
	}
	return out, info, nil
}

// addProximityRows adds the four directed-gap rows keeping the footprints
// of a and b within Chebyshev distance dist.
func (pr *problem) addProximityRows(m *milp.Model, a, b *opModel, dist int) {
	d := float64(dist)
	m.AddRow(subExpr(b.left, a.right), milp.LE, d)
	m.AddRow(subExpr(a.left, b.right), milp.LE, d)
	m.AddRow(subExpr(b.bottom, a.top), milp.LE, d)
	m.AddRow(subExpr(a.bottom, b.top), milp.LE, d)
}

// subExpr returns the term list for (Σ a) - (Σ b).
func subExpr(a, b []milp.Term) []milp.Term {
	out := make([]milp.Term, 0, len(a)+len(b))
	out = append(out, a...)
	for _, t := range b {
		out = append(out, milp.T(t.Var, -t.Coef))
	}
	return out
}

// disj records one built non-overlap disjunction.
type disj struct {
	choices []milp.Var
	relax   milp.Var
	a, b    *opModel
}

// buildIncumbent turns the multi-start greedy solution for the batch into a
// full variable assignment (selection vars, disjunction binaries, w).
// Returns nil when greedy fails or picks a candidate outside the model
// (e.g. an RC-relaxed placement the model forbids).
func (pr *problem) buildIncumbent(sp *obs.Span, m *milp.Model, oms []*opModel, disjs []disj, fixed map[int]arch.Placement, pump map[grid.Point]int, w milp.Var) []float64 {
	free := make([]int, len(oms))
	for i, om := range oms {
		free[i] = om.op
	}
	local, _, err := pr.multiStartGreedy(sp, free, fixed, pump)
	if err != nil {
		return nil
	}
	chosen := map[int]int{} // op -> candidate index
	localPump := clonePump(pump)
	for _, om := range oms {
		pl := local[om.op]
		ci := -1
		for k, c := range om.cands {
			if c == pl {
				ci = k
				break
			}
		}
		if ci < 0 {
			return nil
		}
		chosen[om.op] = ci
		if pr.pump[om.op] {
			for _, pt := range pl.Ring() {
				localPump[pt]++
			}
		}
	}

	x := make([]float64, m.NumVars())
	maxLoad := 0
	for _, n := range localPump {
		if n > maxLoad {
			maxLoad = n
		}
	}
	x[w] = float64(maxLoad)
	for _, om := range oms {
		x[om.vars[chosen[om.op]]] = 1
	}
	// Disjunction binaries consistent with the chosen placements.
	for _, dj := range disjs {
		fa := om2fp(dj.a, chosen)
		fb := om2fp(dj.b, chosen)
		sat := -1
		switch {
		case fa.X1 <= fb.X0-1:
			sat = 0
		case fb.X1 <= fa.X0-1:
			sat = 1
		case fa.Y1 <= fb.Y0-1:
			sat = 2
		case fb.Y1 <= fa.Y0-1:
			sat = 3
		}
		if sat < 0 {
			if dj.relax < 0 {
				return nil // infeasible greedy (should not happen)
			}
			x[dj.relax] = 1
			for _, c := range dj.choices {
				x[c] = 1
			}
			continue
		}
		for k, c := range dj.choices {
			if k != sat {
				x[c] = 1
			}
		}
	}
	return x
}

func om2fp(om *opModel, chosen map[int]int) grid.Rect {
	return om.cands[chosen[om.op]].Footprint()
}
