package place

import (
	"sort"

	"mfsynth/internal/arch"
	"mfsynth/internal/graph"
	"mfsynth/internal/grid"
	"mfsynth/internal/obs"
	"mfsynth/internal/par"
	"mfsynth/internal/storage"
	"mfsynth/internal/synerr"
)

// greedyRuns is the number of multi-start variants tried: combinations of
// root-lattice offsets and shape-preference rotations, each with and
// without port attraction (compact runs shorten routing and reduce #v;
// unconstrained runs sometimes spread the pump load better — the primary
// max-pump key picks whichever wins).
const greedyRuns = 32

// greedyState carries one constructive run.
type greedyState struct {
	fixed map[int]arch.Placement
	pump  map[grid.Point]int
	// variant knobs
	rootOff  grid.Point
	shapeRot int
	noPull   bool // disable port attraction
	// packLimit, when positive, switches the scoring into packing mode:
	// placements may load valves up to this limit and prefer already-used
	// valves, minimising the number of manufactured valves at equal
	// worst-case wear.
	packLimit int

	// dropped lists operations skipped under Config.BestEffort because no
	// candidate (even RC-relaxed) was admissible. Placing more operations
	// always beats any other quality key.
	dropped []int

	rcRelaxed int
	maxPump   int
	usedCells int // distinct pump valves touched
	sumSq     int // Σ load² over valves, the spread tie-breaker

	// wearAware flips the usedCells/sumSq tie-break order: under a wear
	// prior, spreading load away from worn valves (sumSq, which the prior
	// inflates) matters more than the manufactured-valve count.
	wearAware bool
}

// solveGreedy is the standalone greedy mapper: a multi-start constructive
// heuristic over all operations.
func (pr *problem) solveGreedy(sp *obs.Span) (*Mapping, error) {
	fixed, info, err := pr.multiStartGreedy(sp, pr.ops, map[int]arch.Placement{}, pr.seedPump())
	if err != nil {
		return nil, err
	}
	stats := Stats{Mode: Greedy, RCRelaxed: info.rcRelaxed}
	return pr.finishMapping(fixed, stats), nil
}

// greedyInfo summarises a multi-start result.
type greedyInfo struct {
	maxPump   int
	rcRelaxed int
}

// greedyVariant is one multi-start knob combination. Variants are built as
// an explicit deduplicated list so the serial loop and the parallel
// fan-out iterate the exact same sequence.
type greedyVariant struct {
	rootOff   grid.Point
	shapeRot  int
	noPull    bool
	packLimit int
}

// greedyVariants enumerates the multi-start knob combinations in the
// legacy run order, skipping duplicate (rootOff, shapeRot, noPull) tuples
// (the run/2 derivation re-visits offsets once the mixed-radix range is
// exhausted, e.g. with RootStride 1 every offset is {0,0}).
func (pr *problem) greedyVariants(runs int, withPull bool, packLimit int) []greedyVariant {
	stride := pr.cfg.RootStride
	if stride < 1 {
		stride = 1
	}
	seen := map[greedyVariant]bool{}
	out := make([]greedyVariant, 0, runs)
	for run := 0; run < runs; run++ {
		v := run
		if withPull {
			v = run / 2
		}
		gv := greedyVariant{
			rootOff:   grid.Point{X: v % stride, Y: (v / stride) % stride},
			shapeRot:  v / (stride * stride),
			packLimit: packLimit,
		}
		if withPull {
			gv.noPull = run%2 == 1
		}
		if seen[gv] {
			continue
		}
		seen[gv] = true
		out = append(out, gv)
	}
	return out
}

// runVariant executes one constructive run; nil state means infeasible.
func (pr *problem) runVariant(gv greedyVariant, free []int, fixed map[int]arch.Placement, pump map[grid.Point]int) (*greedyState, error) {
	st := &greedyState{
		fixed:     clonePlacements(fixed),
		pump:      clonePump(pump),
		rootOff:   gv.rootOff,
		shapeRot:  gv.shapeRot,
		noPull:    gv.noPull,
		packLimit: gv.packLimit,
		wearAware: pr.wearAware(),
	}
	for _, op := range free {
		if err := pr.greedyPlace(st, op); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// greedyDone is the multi-start early-exit rule: nothing can beat a
// complete mapping with one pump use per valve and no relaxations.
func greedyDone(st *greedyState) bool {
	return st != nil && len(st.dropped) == 0 && st.maxPump <= 1 && st.rcRelaxed == 0
}

// multiStartGreedy places the free operations on top of the fixed context,
// trying several deterministic variants (root-lattice offsets × shape-order
// rotations) and keeping the best by (max pump load, load spread, RC
// relaxations). With Config.Workers != 1 the variants run concurrently;
// the merge scans results in variant order with the same early-exit rule,
// so the chosen state is identical to the serial loop's.
func (pr *problem) multiStartGreedy(sp *obs.Span, free []int, fixed map[int]arch.Placement, pump map[grid.Point]int) (map[int]arch.Placement, greedyInfo, error) {
	variants := pr.greedyVariants(greedyRuns, true, 0)
	gsp := sp.Start("place.greedy",
		obs.KV("ops", len(free)), obs.KV("variants", len(variants)))
	best, firstErr := pr.bestVariant(gsp, variants, nil, true, free, fixed, pump)
	if best == nil {
		gsp.Set(obs.KV("error", "infeasible"))
		gsp.End()
		return nil, greedyInfo{}, firstErr
	}
	// Packing phase: with the achievable worst-case load known, re-place
	// while preferring already-actuated valves up to that load — the same
	// worst-case wear with fewer manufactured valves. Pointless at load 1,
	// where every ring is necessarily fresh, and skipped under a wear
	// prior, where concentrating duty on already-actuated valves is the
	// opposite of the balancing the prior asks for.
	if best.maxPump > 1 && !pr.wearAware() {
		packing := pr.greedyVariants(greedyRuns/2, false, best.maxPump)
		best, _ = pr.bestVariant(gsp, packing, best, false, free, fixed, pump)
	}
	gsp.Set(obs.KV("max_pump", best.maxPump), obs.KV("rc_relaxed", best.rcRelaxed))
	gsp.End()
	gsp.Metrics().Counter("place_greedy_runs_total").Add(int64(len(variants)))
	return best.fixed, greedyInfo{maxPump: best.maxPump, rcRelaxed: best.rcRelaxed}, nil
}

// bestVariant runs the variants (serially or fanned out over the worker
// pool) and merges them deterministically: scan in variant order, keep the
// first state that beats the incumbent, and — when earlyExit is set (the
// main phase; the legacy packing loop has no early exit) — stop
// considering further variants once the early-exit rule fires. The merge
// order makes the chosen state identical to the serial loop's regardless
// of worker count.
func (pr *problem) bestVariant(sp *obs.Span, variants []greedyVariant, best *greedyState, earlyExit bool, free []int, fixed map[int]arch.Placement, pump map[grid.Point]int) (*greedyState, error) {
	var firstErr error
	workers := par.Workers(pr.cfg.Workers)
	if workers <= 1 {
		// Legacy serial loop: the early exit also skips the runs themselves.
		for _, gv := range variants {
			st, err := pr.runVariant(gv, free, fixed, pump)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if best == nil || st.better(best) {
				best = st
			}
			if earlyExit && greedyDone(best) {
				break
			}
		}
		return best, firstErr
	}
	type runResult struct {
		st  *greedyState
		err error
	}
	ctx := pr.ctx
	if po := sp.Trace().Pool(sp, "greedy.variant"); po != nil {
		ctx = par.WithObserver(ctx, po)
	}
	// Per-variant errors travel inside runResult, so a non-nil pool error
	// is a recovered worker panic (surfaced as *par.TaskPanic since the
	// pool stopped re-raising) — abort rather than silently dropping the
	// variant a serial run would have died on.
	results, poolErr := par.MapCtx(ctx, workers, len(variants), func(slot, i int) (runResult, error) {
		st, err := pr.runVariant(variants[i], free, fixed, pump)
		return runResult{st: st, err: err}, nil
	})
	if poolErr != nil {
		return nil, poolErr
	}
	for _, r := range results {
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		if best == nil || r.st.better(best) {
			best = r.st
		}
		if earlyExit && greedyDone(best) {
			break
		}
	}
	return best, firstErr
}

// better orders completed runs: mapping completeness first (fewest dropped
// operations — only relevant under BestEffort), then pump quality, then
// routing-convenient fidelity, then the number of manufactured pump valves,
// then load spread; among remaining ties prefer the compact (port-attracted)
// run, which needs fewer control valves.
func (st *greedyState) better(o *greedyState) bool {
	if len(st.dropped) != len(o.dropped) {
		return len(st.dropped) < len(o.dropped)
	}
	if st.maxPump != o.maxPump {
		return st.maxPump < o.maxPump
	}
	if st.rcRelaxed != o.rcRelaxed {
		return st.rcRelaxed < o.rcRelaxed
	}
	if st.wearAware {
		if st.sumSq != o.sumSq {
			return st.sumSq < o.sumSq
		}
		if st.usedCells != o.usedCells {
			return st.usedCells < o.usedCells
		}
	} else {
		if st.usedCells != o.usedCells {
			return st.usedCells < o.usedCells
		}
		if st.sumSq != o.sumSq {
			return st.sumSq < o.sumSq
		}
	}
	return !st.noPull && o.noPull
}

// greedyPlace maps one operation within a run.
func (pr *problem) greedyPlace(st *greedyState, op int) error {
	pl, relaxed, err := pr.greedyPick(op, st)
	if err != nil {
		if pr.cfg.BestEffort {
			// Partial-result mode: skip the unplaceable operation and keep
			// going; the drop is reported through Mapping.Dropped.
			st.dropped = append(st.dropped, op)
			return nil
		}
		return err
	}
	if relaxed {
		st.rcRelaxed++
	}
	st.fixed[op] = pl
	if pr.pump[op] {
		for _, pt := range pl.Ring() {
			st.sumSq += 2*st.pump[pt] + 1 // (n+1)² - n²
			if st.pump[pt] == 0 {
				st.usedCells++
			}
			st.pump[pt]++
			if st.pump[pt] > st.maxPump {
				st.maxPump = st.pump[pt]
			}
		}
	}
	return nil
}

// greedyPick chooses the best placement for op; when the routing-convenient
// window admits no candidate it retries with the constraint relaxed.
func (pr *problem) greedyPick(op int, st *greedyState) (arch.Placement, bool, error) {
	opts := candOpts{rootOff: st.rootOff, shapeRot: st.shapeRot}
	cands := pr.candidates(op, st.fixed, opts)
	relaxed := false
	if len(cands) == 0 {
		opts.relaxRC = true
		cands = pr.candidates(op, st.fixed, opts)
		relaxed = true
	}
	if len(cands) == 0 {
		return arch.Placement{}, false, synerr.Infeasible("place",
			"no feasible placement for %s on a %dx%d chip",
			pr.res.Assay.Op(op).Name, pr.cfg.Grid, pr.cfg.Grid)
	}
	best := cands[0]
	bestKey := pr.greedyScore(op, best, st)
	for _, c := range cands[1:] {
		if key := pr.greedyScore(op, c, st); keyLess(key, bestKey) {
			best, bestKey = c, key
		}
	}
	return best, relaxed, nil
}

// greedyScore returns (resulting max load, added load, attraction distance).
// The attraction term pulls an operation toward its placed device parents
// (routing-convenient) and toward placed siblings — operations that share a
// future child, which will need to sit within distance d of both.
func (pr *problem) greedyScore(op int, pl arch.Placement, st *greedyState) [3]int {
	maxLoad, added := 0, 0
	if pr.pump[op] {
		if st.packLimit > 0 {
			// Packing mode: any load within the limit is free; prefer rings
			// that open the fewest fresh valves.
			over, fresh := 0, 0
			for _, pt := range pl.Ring() {
				if st.pump[pt]+1 > st.packLimit {
					over += st.pump[pt] + 1 - st.packLimit
				}
				if st.pump[pt] == 0 {
					fresh++
				}
			}
			maxLoad, added = over, fresh
		} else {
			for _, pt := range pl.Ring() {
				n := st.pump[pt] + 1
				if n > maxLoad {
					maxLoad = n
				}
				added += st.pump[pt]
			}
		}
	}
	fp := pl.Footprint()
	dist := 0
	a := pr.res.Assay
	for _, p := range a.DeviceParents(op) {
		if ppl, ok := st.fixed[p]; ok {
			dist += 4 * fp.Distance(ppl.Footprint())
		}
	}
	// Sibling attraction: the future child must reach both parents, so
	// penalise spread beyond what a child of minimum dimension can span.
	for _, sib := range pr.siblings(op) {
		if spl, ok := st.fixed[sib]; ok {
			if over := fp.Distance(spl.Footprint()) - (2*pr.d + 2); over > 0 {
				dist += 16 * over
			}
		}
	}
	// Port attraction: operations loaded from input ports and operations
	// draining to the output port prefer short routes, which keeps the
	// number of control valves (and thus #v) low.
	if !st.noPull {
		dist += pr.portPull(op, fp)
	}
	return [3]int{maxLoad, added, dist}
}

// portPull returns the port-proximity penalty of placing op at fp.
func (pr *problem) portPull(op int, fp grid.Rect) int {
	a := pr.res.Assay
	pull := 0
	loads := 0
	for _, e := range a.In(op) {
		if a.Op(e.From).Kind == graph.Input {
			loads++
		}
	}
	if loads > 0 {
		best := -1
		for _, port := range pr.chip.Ports {
			if port.Kind != arch.InPort {
				continue
			}
			d := fp.Distance(grid.RectWH(port.At.X, port.At.Y, 1, 1))
			if best < 0 || d < best {
				best = d
			}
		}
		if best > 0 {
			pull += loads * best
		}
	}
	if len(a.Children(op)) == 0 {
		for _, port := range pr.chip.Ports {
			if port.Kind == arch.OutPort {
				pull += fp.Distance(grid.RectWH(port.At.X, port.At.Y, 1, 1))
			}
		}
	}
	return pull
}

// siblings lists the other device parents of op's children.
func (pr *problem) siblings(op int) []int {
	var out []int
	seen := map[int]bool{op: true}
	for _, child := range pr.res.Assay.Children(op) {
		if _, onChip := pr.win[child]; !onChip {
			continue
		}
		for _, p := range pr.res.Assay.DeviceParents(child) {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out
}

func keyLess(a, b [3]int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func clonePlacements(m map[int]arch.Placement) map[int]arch.Placement {
	out := make(map[int]arch.Placement, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func clonePump(m map[grid.Point]int) map[grid.Point]int {
	out := make(map[grid.Point]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// finishMapping assembles the Mapping from chosen placements. Operations
// absent from fixed (skipped under BestEffort) get no window or storage and
// are listed in Mapping.Dropped.
func (pr *problem) finishMapping(fixed map[int]arch.Placement, stats Stats) *Mapping {
	m := &Mapping{
		Placements: fixed,
		Windows:    map[int][2]int{},
		Storages:   map[int]*storage.Timeline{},
		Stats:      stats,
	}
	pump := map[grid.Point]int{}
	for _, op := range pr.ops {
		pl, placed := fixed[op]
		if !placed {
			m.Dropped = append(m.Dropped, op)
			continue
		}
		m.Windows[op] = pr.win[op]
		m.Storages[op] = pr.stor[op]
		if pr.pump[op] {
			for _, pt := range pl.Ring() {
				pump[pt]++
				if pump[pt] > m.MaxPumpOps {
					m.MaxPumpOps = pump[pt]
				}
			}
		}
	}
	sort.Ints(m.Dropped)
	return m
}
