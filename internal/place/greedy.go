package place

import (
	"fmt"

	"mfsynth/internal/arch"
	"mfsynth/internal/graph"
	"mfsynth/internal/grid"
	"mfsynth/internal/storage"
)

// greedyRuns is the number of multi-start variants tried: combinations of
// root-lattice offsets and shape-preference rotations, each with and
// without port attraction (compact runs shorten routing and reduce #v;
// unconstrained runs sometimes spread the pump load better — the primary
// max-pump key picks whichever wins).
const greedyRuns = 32

// greedyState carries one constructive run.
type greedyState struct {
	fixed map[int]arch.Placement
	pump  map[grid.Point]int
	// variant knobs
	rootOff  grid.Point
	shapeRot int
	noPull   bool // disable port attraction
	// packLimit, when positive, switches the scoring into packing mode:
	// placements may load valves up to this limit and prefer already-used
	// valves, minimising the number of manufactured valves at equal
	// worst-case wear.
	packLimit int

	rcRelaxed int
	maxPump   int
	usedCells int // distinct pump valves touched
	sumSq     int // Σ load² over valves, the spread tie-breaker
}

// solveGreedy is the standalone greedy mapper: a multi-start constructive
// heuristic over all operations.
func (pr *problem) solveGreedy() (*Mapping, error) {
	fixed, info, err := pr.multiStartGreedy(pr.ops, map[int]arch.Placement{}, map[grid.Point]int{})
	if err != nil {
		return nil, err
	}
	stats := Stats{Mode: Greedy, RCRelaxed: info.rcRelaxed}
	return pr.finishMapping(fixed, stats), nil
}

// greedyInfo summarises a multi-start result.
type greedyInfo struct {
	maxPump   int
	rcRelaxed int
}

// multiStartGreedy places the free operations on top of the fixed context,
// trying several deterministic variants (root-lattice offsets × shape-order
// rotations) and keeping the best by (max pump load, load spread, RC
// relaxations).
func (pr *problem) multiStartGreedy(free []int, fixed map[int]arch.Placement, pump map[grid.Point]int) (map[int]arch.Placement, greedyInfo, error) {
	stride := pr.cfg.RootStride
	if stride < 1 {
		stride = 1
	}
	run1 := func(st *greedyState) bool {
		for _, op := range free {
			if err := pr.greedyPlace(st, op); err != nil {
				return false
			}
		}
		return true
	}
	var best *greedyState
	var firstErr error
	for run := 0; run < greedyRuns; run++ {
		v := run / 2
		st := &greedyState{
			fixed:    clonePlacements(fixed),
			pump:     clonePump(pump),
			rootOff:  grid.Point{X: v % stride, Y: (v / stride) % stride},
			shapeRot: v / (stride * stride),
			noPull:   run%2 == 1,
		}
		ok := true
		for _, op := range free {
			if err := pr.greedyPlace(st, op); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if best == nil || st.better(best) {
			best = st
		}
		if best.maxPump <= 1 && best.rcRelaxed == 0 {
			break // cannot do better than one pump use per valve
		}
	}
	if best == nil {
		return nil, greedyInfo{}, firstErr
	}
	// Packing phase: with the achievable worst-case load known, re-place
	// while preferring already-actuated valves up to that load — the same
	// worst-case wear with fewer manufactured valves. Pointless at load 1,
	// where every ring is necessarily fresh.
	if best.maxPump > 1 {
		for run := 0; run < greedyRuns/2; run++ {
			st := &greedyState{
				fixed:     clonePlacements(fixed),
				pump:      clonePump(pump),
				rootOff:   grid.Point{X: run % stride, Y: (run / stride) % stride},
				shapeRot:  run / (stride * stride),
				packLimit: best.maxPump,
			}
			if run1(st) && st.better(best) {
				best = st
			}
		}
	}
	return best.fixed, greedyInfo{maxPump: best.maxPump, rcRelaxed: best.rcRelaxed}, nil
}

// better orders completed runs: pump quality first, then routing-convenient
// fidelity, then the number of manufactured pump valves, then load spread;
// among remaining ties prefer the compact (port-attracted) run, which needs
// fewer control valves.
func (st *greedyState) better(o *greedyState) bool {
	if st.maxPump != o.maxPump {
		return st.maxPump < o.maxPump
	}
	if st.rcRelaxed != o.rcRelaxed {
		return st.rcRelaxed < o.rcRelaxed
	}
	if st.usedCells != o.usedCells {
		return st.usedCells < o.usedCells
	}
	if st.sumSq != o.sumSq {
		return st.sumSq < o.sumSq
	}
	return !st.noPull && o.noPull
}

// greedyPlace maps one operation within a run.
func (pr *problem) greedyPlace(st *greedyState, op int) error {
	pl, relaxed, err := pr.greedyPick(op, st)
	if err != nil {
		return err
	}
	if relaxed {
		st.rcRelaxed++
	}
	st.fixed[op] = pl
	if pr.pump[op] {
		for _, pt := range pl.Ring() {
			st.sumSq += 2*st.pump[pt] + 1 // (n+1)² - n²
			if st.pump[pt] == 0 {
				st.usedCells++
			}
			st.pump[pt]++
			if st.pump[pt] > st.maxPump {
				st.maxPump = st.pump[pt]
			}
		}
	}
	return nil
}

// greedyPick chooses the best placement for op; when the routing-convenient
// window admits no candidate it retries with the constraint relaxed.
func (pr *problem) greedyPick(op int, st *greedyState) (arch.Placement, bool, error) {
	opts := candOpts{rootOff: st.rootOff, shapeRot: st.shapeRot}
	cands := pr.candidates(op, st.fixed, opts)
	relaxed := false
	if len(cands) == 0 {
		opts.relaxRC = true
		cands = pr.candidates(op, st.fixed, opts)
		relaxed = true
	}
	if len(cands) == 0 {
		return arch.Placement{}, false, fmt.Errorf(
			"place: no feasible placement for %s on a %dx%d chip",
			pr.res.Assay.Op(op).Name, pr.cfg.Grid, pr.cfg.Grid)
	}
	best := cands[0]
	bestKey := pr.greedyScore(op, best, st)
	for _, c := range cands[1:] {
		if key := pr.greedyScore(op, c, st); keyLess(key, bestKey) {
			best, bestKey = c, key
		}
	}
	return best, relaxed, nil
}

// greedyScore returns (resulting max load, added load, attraction distance).
// The attraction term pulls an operation toward its placed device parents
// (routing-convenient) and toward placed siblings — operations that share a
// future child, which will need to sit within distance d of both.
func (pr *problem) greedyScore(op int, pl arch.Placement, st *greedyState) [3]int {
	maxLoad, added := 0, 0
	if pr.pump[op] {
		if st.packLimit > 0 {
			// Packing mode: any load within the limit is free; prefer rings
			// that open the fewest fresh valves.
			over, fresh := 0, 0
			for _, pt := range pl.Ring() {
				if st.pump[pt]+1 > st.packLimit {
					over += st.pump[pt] + 1 - st.packLimit
				}
				if st.pump[pt] == 0 {
					fresh++
				}
			}
			maxLoad, added = over, fresh
		} else {
			for _, pt := range pl.Ring() {
				n := st.pump[pt] + 1
				if n > maxLoad {
					maxLoad = n
				}
				added += st.pump[pt]
			}
		}
	}
	fp := pl.Footprint()
	dist := 0
	a := pr.res.Assay
	for _, p := range a.DeviceParents(op) {
		if ppl, ok := st.fixed[p]; ok {
			dist += 4 * fp.Distance(ppl.Footprint())
		}
	}
	// Sibling attraction: the future child must reach both parents, so
	// penalise spread beyond what a child of minimum dimension can span.
	for _, sib := range pr.siblings(op) {
		if spl, ok := st.fixed[sib]; ok {
			if over := fp.Distance(spl.Footprint()) - (2*pr.d + 2); over > 0 {
				dist += 16 * over
			}
		}
	}
	// Port attraction: operations loaded from input ports and operations
	// draining to the output port prefer short routes, which keeps the
	// number of control valves (and thus #v) low.
	if !st.noPull {
		dist += pr.portPull(op, fp)
	}
	return [3]int{maxLoad, added, dist}
}

// portPull returns the port-proximity penalty of placing op at fp.
func (pr *problem) portPull(op int, fp grid.Rect) int {
	a := pr.res.Assay
	pull := 0
	loads := 0
	for _, e := range a.In(op) {
		if a.Op(e.From).Kind == graph.Input {
			loads++
		}
	}
	if loads > 0 {
		best := -1
		for _, port := range pr.chip.Ports {
			if port.Kind != arch.InPort {
				continue
			}
			d := fp.Distance(grid.RectWH(port.At.X, port.At.Y, 1, 1))
			if best < 0 || d < best {
				best = d
			}
		}
		if best > 0 {
			pull += loads * best
		}
	}
	if len(a.Children(op)) == 0 {
		for _, port := range pr.chip.Ports {
			if port.Kind == arch.OutPort {
				pull += fp.Distance(grid.RectWH(port.At.X, port.At.Y, 1, 1))
			}
		}
	}
	return pull
}

// siblings lists the other device parents of op's children.
func (pr *problem) siblings(op int) []int {
	var out []int
	seen := map[int]bool{op: true}
	for _, child := range pr.res.Assay.Children(op) {
		if _, onChip := pr.win[child]; !onChip {
			continue
		}
		for _, p := range pr.res.Assay.DeviceParents(child) {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out
}

func keyLess(a, b [3]int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func clonePlacements(m map[int]arch.Placement) map[int]arch.Placement {
	out := make(map[int]arch.Placement, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func clonePump(m map[grid.Point]int) map[grid.Point]int {
	out := make(map[grid.Point]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// finishMapping assembles the Mapping from chosen placements.
func (pr *problem) finishMapping(fixed map[int]arch.Placement, stats Stats) *Mapping {
	m := &Mapping{
		Placements: fixed,
		Windows:    map[int][2]int{},
		Storages:   map[int]*storage.Timeline{},
		Stats:      stats,
	}
	pump := map[grid.Point]int{}
	for _, op := range pr.ops {
		m.Windows[op] = pr.win[op]
		m.Storages[op] = pr.stor[op]
		if pr.pump[op] {
			for _, pt := range fixed[op].Ring() {
				pump[pt]++
				if pump[pt] > m.MaxPumpOps {
					m.MaxPumpOps = pump[pt]
				}
			}
		}
	}
	return m
}
