package place

import (
	"sort"

	"mfsynth/internal/arch"
	"mfsynth/internal/fault"
	"mfsynth/internal/grid"
)

// candOpts controls candidate enumeration.
type candOpts struct {
	// relaxRC ignores the routing-convenient pruning against fixed parents.
	relaxRC bool
	// rootOff shifts the thinned root-candidate lattice (multi-start).
	rootOff grid.Point
	// shapeRot rotates the shape preference order (multi-start).
	shapeRot int
	// fullRoots disables the root-lattice thinning (ILP models, so that
	// every greedy incumbent candidate is representable).
	fullRoots bool
}

// obstacle is a fixed placement alive during the candidate op's window.
type obstacle struct {
	pl        arch.Placement
	overlapOK bool   // storage-parent relaxation applies
	window    [2]int // the obstacle's device window
}

// candidates enumerates the admissible placements of op given the already
// fixed placements. The rules, mirroring the ILP constraints against fixed
// context:
//
//   - the footprint and wall band fit on the chip;
//   - parentless operations use a thinned position lattice (RootStride);
//   - fixed devices whose windows overlap op's window must stay at
//     footprint distance ≥ 1 (shared wall allowed), except parent devices
//     that op's storage may overlap under the c5 relaxation — those only
//     admit overlaps that fit the storage's free space;
//   - fixed device parents keep op within the routing-convenient distance d
//     (constraints (13)-(16)) unless relaxRC is set.
func (pr *problem) candidates(op int, fixed map[int]arch.Placement, o candOpts) []arch.Placement {
	a := pr.res.Assay
	var fixedParents []arch.Placement
	for _, p := range a.DeviceParents(op) {
		if pl, ok := fixed[p]; ok {
			fixedParents = append(fixedParents, pl)
		}
	}
	hasAnyParent := len(a.DeviceParents(op)) > 0

	var obstacles []obstacle
	for j, pl := range fixed {
		if j == op || !pr.overlapsInTime(op, j) {
			continue
		}
		obstacles = append(obstacles, obstacle{
			pl:        pl,
			overlapOK: pr.storagePair(op, j),
			window:    pr.win[j],
		})
	}

	shapes := pr.shp[op]
	if r := o.shapeRot % len(shapes); r > 0 {
		rotated := make([]arch.Shape, 0, len(shapes))
		rotated = append(rotated, shapes[r:]...)
		rotated = append(rotated, shapes[:r]...)
		shapes = rotated
	}
	shapeRank := map[arch.Shape]int{}
	for i, s := range shapes {
		shapeRank[s] = i
	}

	var out []arch.Placement
	for _, s := range shapes {
		area := pr.chip.PlacementArea(s)
		stride := 1
		x0, y0 := area.X0, area.Y0
		if !hasAnyParent && !o.fullRoots && pr.cfg.RootStride > 1 {
			stride = pr.cfg.RootStride
			x0 += o.rootOff.X % stride
			y0 += o.rootOff.Y % stride
		}
		for y := y0; y < area.Y1; y += stride {
			for x := x0; x < area.X1; x += stride {
				pl := arch.Placement{At: grid.Point{X: x, Y: y}, Shape: s}
				if pr.admissible(op, pl, fixedParents, obstacles, o) {
					out = append(out, pl)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Shape != b.Shape {
			return shapeRank[a.Shape] < shapeRank[b.Shape]
		}
		if a.At.Y != b.At.Y {
			return a.At.Y < b.At.Y
		}
		return a.At.X < b.At.X
	})
	return out
}

// admissible checks one placement against fixed context.
func (pr *problem) admissible(op int, pl arch.Placement, fixedParents []arch.Placement, obstacles []obstacle, o candOpts) bool {
	if !pr.faultAdmissible(pl) {
		return false
	}
	fp := pl.Footprint()
	for _, ob := range obstacles {
		if fp.Distance(ob.pl.Footprint()) >= 1 {
			continue
		}
		if !ob.overlapOK {
			return false
		}
		// Overlap with a parent device: pre-filter with the storage
		// free-space test so most repair iterations are avoided.
		area := fp.OverlapArea(ob.pl.Footprint())
		if tl := pr.stor[op]; tl != nil && !tl.CanOverlap(area, ob.window[0], ob.window[1]) {
			return false
		}
	}
	if !o.relaxRC {
		for _, parent := range fixedParents {
			if fp.Distance(parent.Footprint()) > pr.d {
				return false
			}
		}
	}
	return true
}

// faultAdmissible checks a placement against the configured fault set by
// cell role. A stuck-closed valve may appear nowhere in the footprint (the
// chamber must hold and move fluid), but is fine in the wall band — a wall
// cell's job is to stay closed. A stuck-open valve cannot realise a closed
// state, so it is rejected on the pump ring and in the wall band, but
// tolerated in the footprint interior, where chamber cells are held open.
// Since candidate enumeration feeds both the greedy mapper and the ILP's
// variable generation, rejecting a placement here is equivalent to a
// forbidding constraint in the model.
func (pr *problem) faultAdmissible(pl arch.Placement) bool {
	fs := pr.cfg.Faults
	if fs.Empty() {
		return true
	}
	fp := pl.Footprint()
	wall := pl.WallBox()
	for _, f := range fs.Faults() {
		if !wall.Contains(f.At) {
			continue
		}
		switch f.Kind {
		case fault.StuckClosed:
			if fp.Contains(f.At) {
				return false
			}
		case fault.StuckOpen:
			onRing := fp.Contains(f.At) &&
				(f.At.X == fp.X0 || f.At.X == fp.X1-1 || f.At.Y == fp.Y0 || f.At.Y == fp.Y1-1)
			inWallBand := !fp.Contains(f.At) // within wall box but outside footprint
			if onRing || inWallBand {
				return false
			}
		}
	}
	return true
}
