package place

import (
	"testing"
	"time"

	"mfsynth/internal/assays"
	"mfsynth/internal/baseline"
	"mfsynth/internal/schedule"
)

// p1Schedule builds the policy-p1 schedule of a benchmark case (the same
// input Algorithm 1 receives in the Table 1 evaluation).
func p1Schedule(t *testing.T, name string) (*schedule.Result, assays.Case) {
	t.Helper()
	c, err := assays.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	des, err := baseline.Traditional(c, 1, baseline.DefaultCost)
	if err != nil {
		t.Fatal(err)
	}
	res, err := schedule.List(c.Assay, schedule.Options{
		Resources: schedule.Resources{Mixers: des.Mixers, Detectors: c.Detectors},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, c
}

// assertSameMapping asserts two mappings are bit-identical in everything
// Table 1 depends on: objective, every placement, windows and stats.
func assertSameMapping(t *testing.T, label string, serial, parallel *Mapping) {
	t.Helper()
	if serial.MaxPumpOps != parallel.MaxPumpOps {
		t.Fatalf("%s: MaxPumpOps %d (serial) vs %d (parallel)", label, serial.MaxPumpOps, parallel.MaxPumpOps)
	}
	if len(serial.Placements) != len(parallel.Placements) {
		t.Fatalf("%s: %d vs %d placements", label, len(serial.Placements), len(parallel.Placements))
	}
	for op, pl := range serial.Placements {
		if parallel.Placements[op] != pl {
			t.Fatalf("%s: op %d placed at %v (serial) vs %v (parallel)", label, op, pl, parallel.Placements[op])
		}
	}
	for op, w := range serial.Windows {
		if parallel.Windows[op] != w {
			t.Fatalf("%s: op %d window %v vs %v", label, op, w, parallel.Windows[op])
		}
	}
	if serial.Stats != parallel.Stats {
		t.Fatalf("%s: stats %+v (serial) vs %+v (parallel)", label, serial.Stats, parallel.Stats)
	}
}

// TestParallelGreedyMatchesSerial maps all four Table 1 assays under p1
// with the greedy mapper at Workers 1 vs 4 and asserts identical results.
func TestParallelGreedyMatchesSerial(t *testing.T) {
	for _, name := range assays.Names() {
		sched, c := p1Schedule(t, name)
		cfg := Config{Grid: c.GridSize, Mode: Greedy, Workers: 1}
		serial, err := Map(sched, cfg)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		cfg.Workers = 4
		parallel, err := Map(sched, cfg)
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		assertSameMapping(t, name+" greedy", serial, parallel)
		checkMapping(t, sched, parallel, cfg)
	}
}

// TestParallelRollingMatchesSerial runs the default rolling-horizon mapper
// (multi-start greedy incumbents + branch-and-bound batches) on PCR and
// MixingTree p1 — the cases where the ILP path is tractable in test time —
// asserting the parallel engine reproduces the serial mapping exactly.
func TestParallelRollingMatchesSerial(t *testing.T) {
	for _, name := range []string{"PCR", "MixingTree"} {
		sched, c := p1Schedule(t, name)
		// Equivalence holds for any *deterministic* budget; the wall-clock
		// SolveTimeout is timing-dependent (it binds under -race, where
		// everything runs an order of magnitude slower), so the test uses a
		// node cap instead of the 20 s default deadline.
		cfg := Config{Grid: c.GridSize, Mode: RollingHorizon, Workers: 1,
			MaxNodes: 64, SolveTimeout: time.Hour}
		serial, err := Map(sched, cfg)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		cfg.Workers = 4
		parallel, err := Map(sched, cfg)
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		assertSameMapping(t, name+" rolling", serial, parallel)
		checkMapping(t, sched, parallel, cfg)
	}
}

// TestGreedyVariantsDeduplicated checks the explicit variant list: no
// duplicate (rootOff, shapeRot, noPull, packLimit) tuples at any stride,
// including stride 1 where the legacy run/2 derivation repeated offsets.
func TestGreedyVariantsDeduplicated(t *testing.T) {
	sched, c := p1Schedule(t, "PCR")
	for _, stride := range []int{1, 2, 3, 4} {
		pr, err := newProblem(sched, Config{Grid: c.GridSize, RootStride: stride}.withDefaults())
		if err != nil {
			t.Fatal(err)
		}
		for _, phase := range []struct {
			runs     int
			withPull bool
			pack     int
		}{{greedyRuns, true, 0}, {greedyRuns / 2, false, 3}} {
			vs := pr.greedyVariants(phase.runs, phase.withPull, phase.pack)
			if len(vs) == 0 {
				t.Fatalf("stride %d: empty variant list", stride)
			}
			if len(vs) > phase.runs {
				t.Fatalf("stride %d: %d variants exceed %d runs", stride, len(vs), phase.runs)
			}
			seen := map[greedyVariant]bool{}
			for _, v := range vs {
				if seen[v] {
					t.Fatalf("stride %d: duplicate variant %+v", stride, v)
				}
				seen[v] = true
				if v.packLimit != phase.pack {
					t.Fatalf("stride %d: packLimit %d, want %d", stride, v.packLimit, phase.pack)
				}
			}
		}
		// Stride 1 main phase: offsets collapse to {0,0}, so the noPull
		// pairs are the only axis besides shapeRot — every variant must
		// still be unique and the list strictly shorter than the raw run
		// count whenever collisions occur.
		if stride == 1 {
			vs := pr.greedyVariants(greedyRuns, true, 0)
			for _, v := range vs {
				if v.rootOff.X != 0 || v.rootOff.Y != 0 {
					t.Fatalf("stride 1: non-zero offset %+v", v)
				}
			}
		}
	}
}
