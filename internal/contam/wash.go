package contam

import (
	"sort"

	"mfsynth/internal/arch"
	"mfsynth/internal/core"
	"mfsynth/internal/grid"
	"mfsynth/internal/route"
)

// Wash is one flush: buffer from an input port through dirty valves to the
// waste port, immediately before the transports at time T.
type Wash struct {
	// T is the flush time.
	T int
	// Path is the routed flush channel.
	Path route.Path
	// Dirty counts the risky valves this flush clears.
	Dirty int
}

// WashPlan is a set of flushes clearing contamination risks, with the
// reliability price they exact.
type WashPlan struct {
	// Washes lists the flushes in time order.
	Washes []Wash
	// Cleared and Uncleared count the risky valves that could / could not
	// be washed (a valve inside a running device cannot be flushed).
	Cleared, Uncleared int
	// ExtraActuations is the total number of additional valve state
	// changes the washing costs.
	ExtraActuations int
	// VsMax1Before and VsMax1After are the largest per-valve totals
	// (setting 1) without and with the wash traffic — the reliability
	// price of contamination-free operation.
	VsMax1Before, VsMax1After int
}

// PlanWashes analyses res and routes a flush before every transport time
// at which residue would otherwise join an unrelated mixture. Flushes run
// from an input port to the output port through the dirty valves; valves
// that sit inside a device that is alive at flush time cannot be cleared.
func PlanWashes(res *core.Result) WashPlan {
	rep := Analyze(res)
	plan := WashPlan{VsMax1Before: res.VsMax1}
	if len(rep.Risks) == 0 {
		plan.VsMax1After = res.VsMax1
		return plan
	}

	// Dirty valves per flush time, with the number of risks at each.
	byTime := map[int]map[grid.Point]int{}
	for _, r := range rep.Risks {
		if byTime[r.At] == nil {
			byTime[r.At] = map[grid.Point]int{}
		}
		byTime[r.At][r.Cell]++
	}
	var times []int
	for t := range byTime {
		times = append(times, t)
	}
	sort.Ints(times)

	chip := arch.NewChip(res.Grid, res.Grid)
	var inPorts, outPorts []grid.Point
	for _, p := range chip.Ports {
		if p.Kind == arch.InPort {
			inPorts = append(inPorts, p.At)
		} else {
			outPorts = append(outPorts, p.At)
		}
	}

	for _, t := range times {
		riskCells := byTime[t]
		dirty := make([]grid.Point, 0, len(riskCells))
		for c := range riskCells {
			dirty = append(dirty, c)
		}
		dirty = dedupPoints(dirty)
		covered := map[grid.Point]bool{}
		router := route.New(chip.Bounds())
		// Devices alive at flush time block the wash; their dirty cells
		// stay uncleared. Storages also block: buffer through a storage
		// would dilute its content.
		blocked := map[grid.Point]bool{}
		for id, pl := range res.Mapping.Placements {
			w := res.Mapping.Windows[id]
			if t >= w[0] && t < w[1] {
				router.Block(pl.Footprint())
				for _, c := range pl.Footprint().Points() {
					blocked[c] = true
				}
			}
		}
		for _, cell := range dirty {
			if covered[cell] || blocked[cell] {
				continue
			}
			// in-port → dirty valve → out-port.
			seg1, err1 := router.Route(inPorts, []grid.Point{cell})
			seg2, err2 := router.Route([]grid.Point{cell}, outPorts)
			if err1 != nil || err2 != nil {
				continue
			}
			path := append(append(route.Path{}, seg1...), seg2[1:]...)
			washed := 0
			for _, c := range path {
				covered[c] = true
			}
			for _, d := range dirty {
				if covered[d] {
					washed++
				}
			}
			plan.Washes = append(plan.Washes, Wash{T: t, Path: path, Dirty: washed})
			plan.ExtraActuations += 2 * len(path)
			router.Commit(path)
		}
		for c, n := range riskCells {
			if covered[c] {
				plan.Cleared += n
			} else {
				plan.Uncleared += n
			}
		}
	}

	plan.VsMax1After = washAdjustedMax(res, plan.Washes)
	return plan
}

// washAdjustedMax replays the assay with the wash traffic added and returns
// the new largest per-valve total (setting 1).
func washAdjustedMax(res *core.Result, washes []Wash) int {
	chip := res.ChipAt(-1, 1)
	for _, w := range washes {
		chip.AddCtrl(w.Path, 2)
	}
	return chip.MaxTotal()
}

// dedupPoints returns the sorted distinct points.
func dedupPoints(pts []grid.Point) []grid.Point {
	seen := map[grid.Point]bool{}
	var out []grid.Point
	for _, p := range pts {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Y != out[j].Y {
			return out[i].Y < out[j].Y
		}
		return out[i].X < out[j].X
	})
	return out
}
