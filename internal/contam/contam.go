// Package contam analyses cross-contamination risk in a synthesis result.
// The paper's conclusion notes that "we assume that we can freely
// manipulate sample flows, which needs to be restricted and will be
// considered in the future": reusing valves for different fluids leaves
// residue. This package makes the risk measurable — it reconstructs the
// fluid occupancy of every valve over time and flags successions where a
// valve carries fluid B after fluid A although A is not an ingredient of B
// (an ingredient's residue is already part of the mixture and harmless).
// It also estimates how many wash flushes would clear all risks.
package contam

import (
	"fmt"
	"sort"

	"mfsynth/internal/core"
	"mfsynth/internal/graph"
	"mfsynth/internal/grid"
)

// Risk is one contamination hazard: a valve that carried the product of
// Prev and later the fluid of Next without Prev being an ingredient of
// Next.
type Risk struct {
	Cell grid.Point
	// Prev and Next are the operation IDs whose fluids meet (input
	// operations stand for their reagent).
	Prev, Next int
	// At is the time Next's fluid reaches the dirty valve.
	At int
}

// Report summarises the contamination analysis.
type Report struct {
	// Risks lists every risky succession, time-ordered.
	Risks []Risk
	// SharedCells is the number of valves used by more than one fluid.
	SharedCells int
	// WashFlushes estimates the number of wash operations needed: one
	// flush per distinct time at which dirty valves must be cleaned.
	WashFlushes int
}

// String renders a one-line summary.
func (r Report) String() string {
	return fmt.Sprintf("contamination: %d risky successions on %d shared valves, %d wash flushes needed",
		len(r.Risks), r.SharedCells, r.WashFlushes)
}

// occupancy is one fluid visit of one valve. residue is what the visit
// leaves behind (the fluid that physically passed); mixture is the
// operation whose mixture the visit's contents join (-1 for drains to the
// waste port, which cannot be contaminated on-chip).
type occupancy struct {
	t       int
	phase   int // 0 = transport (loading), 1 = peristalsis — loads come first
	residue int
	mixture int
}

// Analyze reconstructs per-valve fluid occupancy from the result's pump
// events and transports and reports the risky successions: residue of an
// earlier visit joining a later mixture it is not an ingredient of.
func Analyze(res *core.Result) Report {
	anc := ancestors(res.Assay)
	visits := map[grid.Point][]occupancy{}

	add := func(cells []grid.Point, o occupancy) {
		for _, c := range cells {
			visits[c] = append(visits[c], o)
		}
	}
	// Device executions: the ring carries the operation's mixture.
	for id, pl := range res.Mapping.Placements {
		add(pl.Ring(), occupancy{t: res.Schedule.Start[id], phase: 1, residue: id, mixture: id})
	}
	// Transports: the path carries the source product toward the
	// destination mixture.
	for _, tr := range res.Transports {
		if tr.InPlace || tr.FromID < 0 {
			continue
		}
		add(tr.Path, occupancy{t: tr.T, phase: 0, residue: tr.FromID, mixture: tr.ToID})
	}

	var rep Report
	washAt := map[int]bool{}
	for cell, occ := range visits {
		sort.SliceStable(occ, func(i, j int) bool {
			if occ[i].t != occ[j].t {
				return occ[i].t < occ[j].t
			}
			return occ[i].phase < occ[j].phase
		})
		shared := false
		for i := 1; i < len(occ); i++ {
			prev, next := occ[i-1], occ[i]
			if prev.residue == next.residue && prev.mixture == next.mixture {
				continue
			}
			shared = true
			if next.mixture < 0 {
				continue // waste stream; nothing on-chip is polluted
			}
			if anc.isIngredient(prev.residue, next.mixture) {
				continue
			}
			rep.Risks = append(rep.Risks, Risk{Cell: cell, Prev: prev.residue, Next: next.mixture, At: next.t})
			washAt[next.t] = true
		}
		if shared {
			rep.SharedCells++
		}
	}
	sort.Slice(rep.Risks, func(i, j int) bool {
		if rep.Risks[i].At != rep.Risks[j].At {
			return rep.Risks[i].At < rep.Risks[j].At
		}
		a, b := rep.Risks[i].Cell, rep.Risks[j].Cell
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		return a.X < b.X
	})
	rep.WashFlushes = len(washAt)
	return rep
}

// ancestry holds, per operation, the set of operations whose product flows
// (transitively) into it.
type ancestry struct {
	in []map[int]bool
}

func ancestors(a *graph.Assay) *ancestry {
	an := &ancestry{in: make([]map[int]bool, a.Len())}
	order, err := a.TopoOrder()
	if err != nil {
		order = nil // validated assays are acyclic; nil keeps sets empty
	}
	for _, id := range order {
		set := map[int]bool{}
		for _, p := range a.Parents(id) {
			set[p] = true
			for q := range an.in[p] {
				set[q] = true
			}
		}
		an.in[id] = set
	}
	return an
}

// isIngredient reports whether prev's fluid is part of next's mixture:
// prev is next itself or a transitive producer of one of its inputs.
func (an *ancestry) isIngredient(prev, next int) bool {
	if prev == next {
		return true
	}
	if next < 0 || next >= len(an.in) || an.in[next] == nil {
		return false
	}
	return an.in[next][prev]
}
