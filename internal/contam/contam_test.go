package contam

import (
	"strings"
	"testing"

	"mfsynth/internal/assays"
	"mfsynth/internal/core"
	"mfsynth/internal/graph"
	"mfsynth/internal/place"
	"mfsynth/internal/schedule"
)

func synth(t *testing.T, a *graph.Assay, grid int, pol map[int]int) *core.Result {
	t.Helper()
	res, err := core.Synthesize(a, core.Options{
		Policy: schedule.Resources{Mixers: pol},
		Place:  place.Config{Grid: grid, Mode: place.Greedy},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestChainHasNoRisk(t *testing.T) {
	// A serial dilution chain: every later fluid contains every earlier
	// product, so valve reuse along the chain is never risky.
	a := assays.SerialDilution("sd", []int{8, 6, 4})
	res := synth(t, a, 10, nil)
	rep := Analyze(res)
	if len(rep.Risks) != 0 {
		t.Errorf("chain produced risks: %v", rep.Risks)
	}
	if rep.WashFlushes != 0 {
		t.Errorf("chain needs %d washes, want 0", rep.WashFlushes)
	}
}

func TestIndependentBranchesShareRisk(t *testing.T) {
	// Two unrelated mixes forced onto the same mixer region in sequence:
	// with one size-8 mixer slot the dynamic devices will reuse valves on a
	// small chip, creating real residue risk.
	a := graph.New("pair")
	for i := 0; i < 2; i++ {
		x := a.Add(graph.Input, "x", 0)
		y := a.Add(graph.Input, "y", 0)
		m := a.Add(graph.Mix, "m", assays.DefaultMixDuration)
		a.Connect(x, m, 4)
		a.Connect(y, m, 4)
	}
	res := synth(t, a, 10, map[int]int{8: 1})
	rep := Analyze(res)
	// Paths from the shared input ports overlap at least near the port, so
	// unrelated fluids meet somewhere.
	if rep.SharedCells == 0 {
		t.Skip("placements happened to be fully disjoint")
	}
	if len(rep.Risks) == 0 {
		t.Error("unrelated fluids share valves but no risk flagged")
	}
	if rep.WashFlushes == 0 {
		t.Error("risks present but no wash flushes proposed")
	}
}

func TestPCRReport(t *testing.T) {
	c := assays.PCR()
	res := synth(t, c.Assay, c.GridSize, c.BaseMixers)
	rep := Analyze(res)
	if rep.SharedCells < 0 || rep.WashFlushes < 0 {
		t.Fatal("negative counts")
	}
	// Risks are time-sorted.
	for i := 1; i < len(rep.Risks); i++ {
		if rep.Risks[i].At < rep.Risks[i-1].At {
			t.Fatal("risks not time-ordered")
		}
	}
	s := rep.String()
	if !strings.Contains(s, "wash") {
		t.Errorf("String = %q", s)
	}
	// Every risk's fluids must be genuinely unrelated.
	an := ancestors(res.Assay)
	for _, r := range rep.Risks {
		if an.isIngredient(r.Prev, r.Next) {
			t.Errorf("risk %v between related fluids", r)
		}
	}
}

func TestIngredientRelation(t *testing.T) {
	a := graph.New("lineage")
	i1 := a.Add(graph.Input, "i1", 0)
	i2 := a.Add(graph.Input, "i2", 0)
	m1 := a.Add(graph.Mix, "m1", 6)
	a.Connect(i1, m1, 2)
	a.Connect(i2, m1, 2)
	i3 := a.Add(graph.Input, "i3", 0)
	m2 := a.Add(graph.Mix, "m2", 6)
	a.Connect(m1, m2, 2)
	a.Connect(i3, m2, 2)
	an := ancestors(a)
	if !an.isIngredient(m1.ID, m2.ID) {
		t.Error("m1 must be an ingredient of m2")
	}
	if !an.isIngredient(i1.ID, m2.ID) {
		t.Error("transitive input i1 must be an ingredient of m2")
	}
	if an.isIngredient(m2.ID, m1.ID) {
		t.Error("descendant flagged as ingredient")
	}
	if an.isIngredient(i3.ID, m1.ID) {
		t.Error("unrelated input flagged as ingredient")
	}
	if !an.isIngredient(m1.ID, m1.ID) {
		t.Error("self must be an ingredient")
	}
}
