package contam

import (
	"testing"

	"mfsynth/internal/assays"
)

func TestWashPlanPCR(t *testing.T) {
	c := assays.PCR()
	res := synth(t, c.Assay, c.GridSize, c.BaseMixers)
	rep := Analyze(res)
	plan := PlanWashes(res)
	if plan.Cleared+plan.Uncleared != len(rep.Risks) {
		t.Fatalf("cleared %d + uncleared %d != %d risks",
			plan.Cleared, plan.Uncleared, len(rep.Risks))
	}
	if len(rep.Risks) > 0 {
		if plan.Cleared == 0 {
			t.Error("no risk cleared at all")
		}
		if len(plan.Washes) == 0 {
			t.Error("risks present but no washes planned")
		}
	}
	if plan.ExtraActuations <= 0 && len(plan.Washes) > 0 {
		t.Error("washes cost nothing")
	}
	if plan.VsMax1Before != res.VsMax1 {
		t.Errorf("VsMax1Before = %d, want %d", plan.VsMax1Before, res.VsMax1)
	}
	if plan.VsMax1After < plan.VsMax1Before {
		t.Errorf("washing reduced the max actuations: %d -> %d",
			plan.VsMax1Before, plan.VsMax1After)
	}
	// Washes are time-ordered and their paths connect port to port.
	for i, w := range plan.Washes {
		if i > 0 && w.T < plan.Washes[i-1].T {
			t.Fatal("washes not time-ordered")
		}
		if len(w.Path) < 2 {
			t.Fatalf("wash %d has trivial path", i)
		}
		first, last := w.Path[0], w.Path[len(w.Path)-1]
		if first.X != 0 {
			t.Errorf("wash %d does not start at an input port: %v", i, first)
		}
		if last.X != res.Grid-1 {
			t.Errorf("wash %d does not end at the output port: %v", i, last)
		}
	}
}

func TestWashPlanCleanAssay(t *testing.T) {
	a := assays.SerialDilution("sd", []int{8, 6, 4})
	res := synth(t, a, 10, nil)
	plan := PlanWashes(res)
	if len(plan.Washes) != 0 || plan.Cleared != 0 || plan.Uncleared != 0 {
		t.Fatalf("clean assay got a plan: %+v", plan)
	}
	if plan.VsMax1After != plan.VsMax1Before {
		t.Error("clean assay changed metrics")
	}
}

func TestWashAdjustedMaxMonotone(t *testing.T) {
	c := assays.PCR()
	res := synth(t, c.Assay, c.GridSize, c.BaseMixers)
	plan := PlanWashes(res)
	grow := washAdjustedMax(res, append(plan.Washes, plan.Washes...))
	if grow < plan.VsMax1After {
		t.Errorf("doubling washes lowered the max: %d < %d", grow, plan.VsMax1After)
	}
}
