package obs

import (
	"fmt"
	"io"
	"os"
)

// SinkSet collects deferred trace exports — a file path plus the writer
// that streams one sink format (WriteText, WriteJSONL, WriteChromeTrace,
// a progress log) — and flushes them together at the end of a run.
//
// Sink writes must not fail silently: Flush attempts every registered
// sink even after one fails (a broken events file should not also cost
// you the Chrome trace), and returns the first error encountered,
// wrapped with the offending path. Close errors count — a short write
// detected at close (full disk) surfaces the same way.
type SinkSet struct {
	sinks []deferredSink
}

type deferredSink struct {
	path  string
	write func(io.Writer) error
}

// Add registers a sink. An empty path is ignored, so flag values can be
// passed through unconditionally.
func (s *SinkSet) Add(path string, write func(io.Writer) error) {
	if path == "" {
		return
	}
	s.sinks = append(s.sinks, deferredSink{path: path, write: write})
}

// Flush writes every registered sink to its file. All sinks are
// attempted; written lists the paths that succeeded, in Add order, and
// err is the first failure (create, write or close).
func (s *SinkSet) Flush() (written []string, err error) {
	for _, sk := range s.sinks {
		if werr := writeFile(sk.path, sk.write); werr != nil {
			if err == nil {
				err = werr
			}
			continue
		}
		written = append(written, sk.path)
	}
	return written, err
}

// writeFile creates path and streams one sink into it, reporting write
// and close errors alike.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("sink %s: %w", path, err)
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("sink %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("sink %s: %w", path, err)
	}
	return nil
}
