package export

import (
	"encoding/json"
	"io"
	"sync"

	"mfsynth/internal/obs"
)

// LogProgress enables the trace's progress bus and streams every
// snapshot to w as JSON lines until stop is called. stop blocks until
// the writer goroutine drains and returns the first encode/write error,
// so a truncated progress log fails the run instead of passing silently
// (tools/tracecheck -progress validates the resulting file).
func LogProgress(tr *obs.Trace, w io.Writer) (stop func() error) {
	bus := tr.EnableProgress()
	ch, cancel := bus.Subscribe(256)
	enc := json.NewEncoder(w)

	var (
		done    = make(chan struct{})
		firstMu sync.Mutex
		first   error
	)
	go func() {
		defer close(done)
		for snap := range ch {
			if err := enc.Encode(snap); err != nil {
				firstMu.Lock()
				if first == nil {
					first = err
				}
				firstMu.Unlock()
				// Keep draining so the publisher-side drop-oldest
				// bookkeeping stays cheap, but stop writing.
				for range ch {
				}
				return
			}
		}
	}()
	var once sync.Once
	return func() error {
		once.Do(func() {
			cancel()
			<-done
		})
		firstMu.Lock()
		defer firstMu.Unlock()
		return first
	}
}
