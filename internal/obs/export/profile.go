package export

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"

	"mfsynth/internal/obs"
)

// Profiler implements the -profile-dir capture mode: one whole-run CPU
// profile (cpu.pprof — phase/worker attribution comes from the
// runtime/pprof labels the engine sets, see internal/core and
// internal/par) plus heap snapshots written at every phase transition
// observed on the progress bus (heap-<phase>.pprof, the live heap at the
// end of that phase) and a final heap-final.pprof at Close.
type Profiler struct {
	dir    string
	cpu    *os.File
	cancel func()
	done   chan struct{}

	mu    sync.Mutex
	first error
}

// StartProfiler begins capture into dir, creating it if needed, and
// enables the trace's progress bus to see phase transitions. Close must
// be called to finish the CPU profile.
func StartProfiler(dir string, tr *obs.Trace) (*Profiler, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("profile-dir: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, fmt.Errorf("profile-dir: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("profile-dir: %w", err)
	}
	p := &Profiler{dir: dir, cpu: f, done: make(chan struct{})}

	ch, cancel := tr.EnableProgress().Subscribe(64)
	p.cancel = cancel
	go func() {
		defer close(p.done)
		last := ""
		for snap := range ch {
			if snap.Phase != last {
				if last != "" {
					p.writeHeap("heap-" + last + ".pprof")
				}
				last = snap.Phase
			}
		}
		if last != "" {
			p.writeHeap("heap-" + last + ".pprof")
		}
	}()
	return p, nil
}

// writeHeap dumps the live heap (after a GC, so the numbers are not
// dominated by collectable garbage) and records the first error.
func (p *Profiler) writeHeap(name string) {
	runtime.GC()
	f, err := os.Create(filepath.Join(p.dir, name))
	if err != nil {
		p.note(err)
		return
	}
	if err := pprof.WriteHeapProfile(f); err != nil {
		p.note(err)
		f.Close()
		return
	}
	p.note(f.Close())
}

func (p *Profiler) note(err error) {
	if err == nil {
		return
	}
	p.mu.Lock()
	if p.first == nil {
		p.first = fmt.Errorf("profile-dir: %w", err)
	}
	p.mu.Unlock()
}

// Close stops the CPU profile, writes heap-final.pprof, and returns the
// first error seen anywhere in the capture.
func (p *Profiler) Close() error {
	p.cancel()
	<-p.done
	pprof.StopCPUProfile()
	p.note(p.cpu.Close())
	p.writeHeap("heap-final.pprof")
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.first
}
