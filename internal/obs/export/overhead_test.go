package export

import (
	"testing"

	"mfsynth/internal/obs"
)

// BenchmarkObsOverhead measures the cost of live observability on a full
// synthesis run. The "off" case is the bare engine (nil trace: every obs
// call is a nil-check no-op); "on" is the worst realistic case — trace
// recording, progress bus enabled, an always-behind subscriber draining
// snapshots, and a Prometheus scrape per run. tools/benchgate -overhead
// gates on/off at ≤2% wall-clock delta.
//
//	go test -bench ObsOverhead -benchtime 3x -count 3 ./internal/obs/export/
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			synthesize(b, nil)
		}
	})
	b.Run("on", func(b *testing.B) {
		tr := obs.New()
		bus := tr.EnableProgress()
		ch, cancel := bus.Subscribe(64)
		defer cancel()
		drained := make(chan struct{})
		go func() {
			defer close(drained)
			for range ch {
			}
		}()
		scrape := newCountWriter()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			synthesize(b, tr)
			if err := WriteProm(scrape, tr.Metrics()); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		cancel()
		<-drained
	})
}

// countWriter discards scrapes without letting the compiler elide them.
type countWriter struct{ n int64 }

func newCountWriter() *countWriter { return &countWriter{} }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}
