package export

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"

	"mfsynth/internal/obs"
)

// Server is the embedded debug/metrics HTTP server of one process. It
// serves, on a single mux:
//
//	/metrics       Prometheus text exposition of the trace's registry
//	/progress      server-sent-events JSON stream of live Progress snapshots
//	/progress?once=1  one JSON snapshot (or 204 before the first update)
//	/debug/pprof/  the standard net/http/pprof handlers
//	/debug/vars    expvar, including the metrics snapshot as mfsynth_metrics
//	/healthz       liveness probe
//
// Construct with Serve; shut down with Close.
type Server struct {
	tr *obs.Trace
	ln net.Listener
	hs *http.Server
}

// Serve starts the debug server on addr ("host:port"; ":0" picks a free
// port — see Addr) over the given trace, enabling the trace's progress
// bus so the hot loops start publishing. The server runs until Close.
func Serve(addr string, tr *obs.Trace) (*Server, error) {
	if tr == nil {
		return nil, fmt.Errorf("export: Serve needs a non-nil trace")
	}
	tr.EnableProgress()
	publishExpvar(tr)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("export: listen %s: %w", addr, err)
	}
	s := &Server{tr: tr, ln: ln}

	mux := http.NewServeMux()
	mux.HandleFunc("/", s.index)
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/progress", s.progress)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())

	s.hs = &http.Server{Handler: mux}
	go s.hs.Serve(ln)
	return s, nil
}

// Addr returns the bound address, resolving ":0" to the chosen port.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately, dropping open SSE streams.
func (s *Server) Close() error { return s.hs.Close() }

func (s *Server) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprint(w, `mfsynth debug server
  /metrics        Prometheus exposition
  /progress       live progress (SSE; ?once=1 for a single JSON snapshot)
  /debug/pprof/   profiling
  /debug/vars     expvar
  /healthz        liveness
`)
}

func (s *Server) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteProm(w, s.tr.Metrics())
}

// progress streams Progress snapshots as server-sent events; a slow
// client sees the newest snapshots (the bus drops oldest), and the
// stream runs until the client disconnects. With ?once=1 it instead
// replies with the latest snapshot as plain JSON.
func (s *Server) progress(w http.ResponseWriter, r *http.Request) {
	bus := s.tr.ProgressBus()
	if r.URL.Query().Get("once") != "" {
		snap, ok := bus.Latest()
		if !ok {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(snap)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	ch, cancel := bus.Subscribe(64)
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case snap, ok := <-ch:
			if !ok {
				return
			}
			data, err := json.Marshal(snap)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// expvar bridge: /debug/vars gains an mfsynth_metrics variable holding
// the current registry snapshot. expvar is a process-global namespace,
// so the variable is published once and reads whichever trace the most
// recent Serve call installed.
var (
	expvarOnce  sync.Once
	expvarTrace atomic.Pointer[obs.Trace]
)

func publishExpvar(tr *obs.Trace) {
	expvarTrace.Store(tr)
	expvarOnce.Do(func() {
		expvar.Publish("mfsynth_metrics", expvar.Func(func() any {
			return expvarTrace.Load().Metrics().Snapshot()
		}))
		expvar.Publish("mfsynth_progress", expvar.Func(func() any {
			snap, ok := expvarTrace.Load().ProgressBus().Latest()
			if !ok {
				return nil
			}
			return snap
		}))
	})
}
