// Package export serves the observability layer live: a Prometheus
// text-format exposition of the metrics registry, an embedded debug HTTP
// server (metrics + pprof + expvar + a server-sent-events progress
// stream), a JSONL progress logger, and per-phase continuous-profiling
// capture. It sits above internal/obs and below the cmds; the engine
// itself never imports it.
package export

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"mfsynth/internal/obs"
)

// WriteProm writes the registry as Prometheus text exposition format
// (one `# TYPE` comment plus samples per metric, sorted by name, so the
// output is deterministic and golden-testable).
//
// Registry counters named `*_us_total` carry integer microseconds; they
// are exposed as `*_seconds_total` with the value divided by 1e6, per
// the Prometheus base-unit convention. Integer gauges expose their
// high-water mark as a second `<name>_max` gauge. Histograms expose
// cumulative `_bucket{le="…"}` samples with the implicit `+Inf` bucket,
// plus `_sum` and `_count`. A nil or empty registry writes nothing.
func WriteProm(w io.Writer, m *obs.Metrics) error {
	snap := m.Snapshot()
	if snap == nil {
		return nil
	}
	var b strings.Builder

	for _, name := range sortedKeys(snap.Counters) {
		pname, v := promName(name), float64(snap.Counters[name])
		if strings.HasSuffix(pname, "_us_total") {
			pname = strings.TrimSuffix(pname, "_us_total") + "_seconds_total"
			v /= 1e6
		}
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %s\n", pname, pname, fnum(v))
	}
	for _, name := range sortedKeys(snap.Gauges) {
		g := snap.Gauges[name]
		pname := promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", pname, pname, fnum(float64(g.Value)))
		fmt.Fprintf(&b, "# TYPE %s_max gauge\n%s_max %s\n", pname, pname, fnum(float64(g.Max)))
	}
	for _, name := range sortedKeys(snap.FloatGauges) {
		pname := promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", pname, pname, fnum(snap.FloatGauges[name]))
	}
	for _, name := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[name]
		pname := promName(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", pname)
		cum := int64(0)
		for _, bk := range h.Buckets {
			cum += bk.Count
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", pname, fnum(bk.Le), cum)
		}
		cum += h.Overflow
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", pname, cum)
		fmt.Fprintf(&b, "%s_sum %s\n", pname, fnum(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", pname, h.Count)
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// promName maps a registry name onto the Prometheus metric-name alphabet
// [a-zA-Z0-9_:], replacing anything else with '_' and prefixing a digit
// with '_'. Canonical registry names pass through unchanged.
func promName(name string) string {
	if name == "" {
		return "_"
	}
	var sb strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			sb.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				sb.WriteByte('_')
			}
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// fnum renders a sample value the way Prometheus expects: shortest
// round-trip float, no exponent for the common integer case.
func fnum(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sortedKeys returns the sorted keys of a string-keyed map.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
