package export

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"mfsynth/internal/assays"
	"mfsynth/internal/core"
	"mfsynth/internal/obs"
	"mfsynth/internal/place"
	"mfsynth/internal/schedule"
)

// synthesize runs one PCR synthesis against the trace; the standard
// integration workload of this package's tests.
func synthesize(t testing.TB, tr *obs.Trace) {
	t.Helper()
	c := assays.PCR()
	_, err := core.Synthesize(c.Assay, core.Options{
		Policy: schedule.Resources{Mixers: c.BaseMixers},
		Place:  place.Config{Grid: c.GridSize},
		Trace:  tr,
	})
	if err != nil {
		t.Fatal(err)
	}
}

// collectSSE reads the /progress event stream until a Done snapshot (or
// EOF) and returns every snapshot received, in arrival order.
func collectSSE(t *testing.T, url string) []obs.Progress {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var snaps []obs.Progress
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var p obs.Progress
		if err := json.Unmarshal([]byte(line[len("data: "):]), &p); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		snaps = append(snaps, p)
		if p.Done {
			break
		}
	}
	return snaps
}

// TestServerLiveSynthesis is the end-to-end exercise of the debug server:
// it serves a real synthesis run and must show live, internally
// consistent state on every endpoint — at least one /progress snapshot
// per pipeline phase, monotone non-increasing B&B gaps within each solve,
// and a /metrics exposition carrying the live gauges.
func TestServerLiveSynthesis(t *testing.T) {
	tr := obs.New()
	srv, err := Serve("127.0.0.1:0", tr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// Stream /progress concurrently with the synthesis it watches.
	snapsCh := make(chan []obs.Progress, 1)
	go func() { snapsCh <- collectSSE(t, base+"/progress") }()
	// Give the subscriber a moment to attach so the earliest snapshots
	// (the schedule phase) are streamed rather than skipped.
	waitForSubscriber(t, tr)

	synthesize(t, tr)

	var snaps []obs.Progress
	select {
	case snaps = <-snapsCh:
	case <-time.After(30 * time.Second):
		t.Fatal("SSE stream never delivered a Done snapshot")
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots streamed")
	}
	if last := snaps[len(snaps)-1]; !last.Done {
		t.Fatalf("stream ended without Done: %+v", last)
	}

	// ≥1 snapshot per pipeline phase.
	phases := map[string]bool{}
	for _, p := range snaps {
		if p.Phase != "" {
			phases[p.Phase] = true
		}
	}
	for _, want := range []string{"schedule", "place", "route", "sim"} {
		if !phases[want] {
			t.Errorf("no snapshot for phase %q (saw %v)", want, phases)
		}
	}

	// Stream invariants: Seq strictly increasing, AtUS non-decreasing
	// (drop-oldest preserves order), and within each B&B solve the gap
	// never widens and the node count never shrinks.
	lastGap := map[int64]float64{}
	lastNodes := map[int64]int64{}
	sawMILP, sawRoute := false, false
	for i, p := range snaps {
		if i > 0 {
			if p.Seq <= snaps[i-1].Seq {
				t.Fatalf("seq not increasing: %d after %d", p.Seq, snaps[i-1].Seq)
			}
			if p.AtUS < snaps[i-1].AtUS {
				t.Fatalf("at_us went backwards: %d after %d", p.AtUS, snaps[i-1].AtUS)
			}
		}
		if p.MILP != nil {
			sawMILP = true
			if n, ok := lastNodes[p.MILP.Solve]; ok && p.MILP.Nodes < n {
				t.Fatalf("solve %d nodes shrank: %d -> %d", p.MILP.Solve, n, p.MILP.Nodes)
			}
			lastNodes[p.MILP.Solve] = p.MILP.Nodes
			if p.MILP.HasIncumbent {
				if g, ok := lastGap[p.MILP.Solve]; ok && p.MILP.Gap > g+1e-9 {
					t.Fatalf("solve %d gap widened: %g -> %g", p.MILP.Solve, g, p.MILP.Gap)
				}
				lastGap[p.MILP.Solve] = p.MILP.Gap
			}
		}
		if p.Route != nil {
			sawRoute = true
		}
	}
	if !sawMILP {
		t.Error("no B&B snapshots in the stream")
	}
	if !sawRoute {
		t.Error("no routing snapshots in the stream")
	}

	// /metrics must expose the live solver state post-run.
	body := get(t, base+"/metrics", "text/plain; version=0.0.4; charset=utf-8")
	for _, want := range []string{
		"# TYPE milp_gap gauge\n",
		"# TYPE milp_nodes_total counter\n",
		"route_wirelength_total ",
		"milp_bound_gap_bucket{le=\"+Inf\"} ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}
	if strings.Contains(body, "_us_total") {
		t.Error("/metrics leaked an unconverted _us_total sample")
	}

	// /progress?once=1 returns the final snapshot as plain JSON.
	var once obs.Progress
	if err := json.Unmarshal([]byte(get(t, base+"/progress?once=1", "application/json")), &once); err != nil {
		t.Fatalf("?once=1 payload: %v", err)
	}
	if !once.Done || once.Phases["schedule"] <= 0 || once.Phases["route"] <= 0 {
		t.Errorf("?once=1 snapshot = %+v, want Done with per-phase seconds", once)
	}

	// The remaining endpoints answer.
	if body := get(t, base+"/healthz", ""); !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %q", body)
	}
	if body := get(t, base+"/debug/vars", ""); !strings.Contains(body, "mfsynth_metrics") {
		t.Error("/debug/vars lacks the mfsynth_metrics bridge")
	}
	if body := get(t, base+"/debug/pprof/", ""); !strings.Contains(body, "goroutine") {
		t.Error("/debug/pprof/ index empty")
	}
	if body := get(t, base+"/", ""); !strings.Contains(body, "/metrics") {
		t.Errorf("index = %q", body)
	}
}

// waitForSubscriber blocks until the SSE handler has registered on the
// trace's progress bus (a snapshot published now reaches it).
func waitForSubscriber(t *testing.T, tr *obs.Trace) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for tr.ProgressBus().Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("SSE subscriber never attached")
		}
		time.Sleep(time.Millisecond)
	}
}

func get(t *testing.T, url, wantCT string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if wantCT != "" && resp.Header.Get("Content-Type") != wantCT {
		t.Fatalf("GET %s Content-Type = %q, want %q", url, resp.Header.Get("Content-Type"), wantCT)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestProgressOnceBeforeFirstUpdate: ?once=1 is 204 until something has
// been published.
func TestProgressOnceBeforeFirstUpdate(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", obs.New())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/progress?once=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("status = %s, want 204", resp.Status)
	}
}

// TestServeNilTrace: the server refuses to start detached from a trace.
func TestServeNilTrace(t *testing.T) {
	if _, err := Serve("127.0.0.1:0", nil); err == nil {
		t.Fatal("Serve accepted a nil trace")
	}
}

// TestConcurrentScrapeRace hammers every read path (Prometheus exposition,
// registry snapshot, bus Latest) while a synthesis publishes from its hot
// loops. Run under -race this is the snapshot-while-synthesizing check;
// without -race it still exercises the locking.
func TestConcurrentScrapeRace(t *testing.T) {
	tr := obs.New()
	tr.EnableProgress()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-done:
				return
			default:
			}
			WriteProm(io.Discard, tr.Metrics())
			tr.Metrics().Snapshot()
			tr.ProgressBus().Latest()
		}
	}()
	synthesize(t, tr)
	done <- struct{}{}
	<-done
}

// ExampleServe shows the one-call wiring: start the server, run the
// synthesis with the shared trace, scrape while it runs.
func ExampleServe() {
	tr := obs.New()
	srv, _ := Serve("127.0.0.1:0", tr)
	defer srv.Close()
	fmt.Println("scrape http://" + srv.Addr() + "/metrics")
}
