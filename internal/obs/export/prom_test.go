package export

import (
	"errors"
	"strings"
	"testing"

	"mfsynth/internal/obs"
)

// TestWritePromGolden pins the full exposition of a representative
// registry: section order (counters, gauges, float gauges, histograms),
// name sorting, the `_us_total` -> `_seconds_total` microsecond
// conversion, gauge `_max` companions, and cumulative histogram buckets
// with the implicit +Inf.
func TestWritePromGolden(t *testing.T) {
	m := obs.NewMetrics()
	m.Counter("milp_nodes_total").Add(42)
	m.Counter("par_w0_busy_us_total").Add(1_500_000)
	g := m.Gauge("par_queue_depth")
	g.Set(9)
	g.Set(3)
	m.FloatGauge("milp_gap").Set(0.25)
	h := m.Histogram("route_path_len", []float64{2, 4})
	h.Observe(1)
	h.Observe(3)
	h.Observe(3)
	h.Observe(99)

	var b strings.Builder
	if err := WriteProm(&b, m); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE milp_nodes_total counter
milp_nodes_total 42
# TYPE par_w0_busy_seconds_total counter
par_w0_busy_seconds_total 1.5
# TYPE par_queue_depth gauge
par_queue_depth 3
# TYPE par_queue_depth_max gauge
par_queue_depth_max 9
# TYPE milp_gap gauge
milp_gap 0.25
# TYPE route_path_len histogram
route_path_len_bucket{le="2"} 1
route_path_len_bucket{le="4"} 3
route_path_len_bucket{le="+Inf"} 4
route_path_len_sum 106
route_path_len_count 4
`
	if b.String() != want {
		t.Fatalf("exposition drifted:\n got:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestWritePromEmpty: a nil or empty registry writes nothing.
func TestWritePromEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteProm(&b, nil); err != nil || b.Len() != 0 {
		t.Fatalf("nil registry: %q, %v", b.String(), err)
	}
	if err := WriteProm(&b, obs.NewMetrics()); err != nil || b.Len() != 0 {
		t.Fatalf("empty registry: %q, %v", b.String(), err)
	}
}

// TestWritePromSanitizesNames: names outside the Prometheus alphabet are
// mapped into it (legacy dots become underscores, leading digits are
// escaped) rather than emitted broken.
func TestWritePromSanitizesNames(t *testing.T) {
	m := obs.NewMetrics()
	m.Counter("legacy.dotted-name").Inc()
	m.Counter("9lives").Inc()

	var b strings.Builder
	if err := WriteProm(&b, m); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"legacy_dotted_name 1\n", "_9lives 1\n"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition lacks %q:\n%s", want, b.String())
		}
	}
}

// TestWritePromWriteError: writer failures surface.
func TestWritePromWriteError(t *testing.T) {
	m := obs.NewMetrics()
	m.Counter("c_total").Inc()
	if err := WriteProm(failWriter{}, m); err == nil {
		t.Fatal("write error swallowed")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("sink full") }
