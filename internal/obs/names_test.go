package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestLegacyAliasRoundTrip: the rename table inverts cleanly, worker
// counters alias structurally, and unknown names pass through.
func TestLegacyAliasRoundTrip(t *testing.T) {
	for canonical, old := range LegacyAliases {
		if got := legacyName(canonical); got != old {
			t.Errorf("legacyName(%s) = %q, want %q", canonical, got, old)
		}
		if got := CanonicalName(old); got != canonical {
			t.Errorf("CanonicalName(%s) = %q, want %q", old, got, canonical)
		}
		if got := CanonicalName(canonical); got != canonical {
			t.Errorf("CanonicalName(%s) changed an already-canonical name to %q", canonical, got)
		}
	}
	if got := legacyName("par_w3_busy_us_total"); got != "par.w3.busy_us" {
		t.Errorf("worker alias = %q", got)
	}
	if got := legacyName("route_wirelength_total"); got != "" {
		t.Errorf("post-rename metric gained an alias %q", got)
	}
	if got := CanonicalName("not.a.metric"); got != "not.a.metric" {
		t.Errorf("unknown name rewritten to %q", got)
	}
}

// TestCanonicalNamesAreHygienic: every canonical name in the table follows
// the convention the package documents — snake_case (no dots), counters
// end in _total.
func TestCanonicalNamesAreHygienic(t *testing.T) {
	for canonical := range LegacyAliases {
		if strings.ContainsAny(canonical, ".-") {
			t.Errorf("canonical name %q is not snake_case", canonical)
		}
	}
}

// TestJSONLCarriesLegacyAliases: the metrics line of the event stream
// duplicates renamed metrics under their old dotted names with equal
// values, and leaves un-renamed metrics alone.
func TestJSONLCarriesLegacyAliases(t *testing.T) {
	tr := New()
	stubClock(tr)
	m := tr.Metrics()
	m.Counter("milp_nodes_total").Add(7)
	m.Counter("par_w2_busy_us_total").Add(1500)
	m.Counter("route_wirelength_total").Add(9) // introduced post-rename: no alias
	m.Gauge("par_queue_depth").Set(3)
	m.Histogram("route_path_len", []float64{4, 8}).Observe(5)
	tr.Start("root").End()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var snap *Snapshot
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var line struct {
			Type string    `json:"type"`
			Data *Snapshot `json:"data"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		if line.Type == "metrics" {
			snap = line.Data
		}
	}
	if snap == nil {
		t.Fatal("no metrics line in the stream")
	}

	for canon, old := range map[string]string{
		"milp_nodes_total":     "milp.nodes",
		"par_w2_busy_us_total": "par.w2.busy_us",
	} {
		if snap.Counters[canon] != snap.Counters[old] || snap.Counters[canon] == 0 {
			t.Errorf("counter alias %s/%s = %d/%d", canon, old, snap.Counters[canon], snap.Counters[old])
		}
	}
	if _, ok := snap.Counters["route_wirelength_total"]; !ok {
		t.Error("un-renamed counter missing")
	}
	if len(snap.Counters) != 5 {
		t.Errorf("counters = %v, want 2 canonical + 2 aliases + 1 plain", snap.Counters)
	}
	if snap.Gauges["par_queue_depth"] != snap.Gauges["par.queue_depth"] {
		t.Errorf("gauge alias mismatch: %v", snap.Gauges)
	}
	if snap.Histograms["route_path_len"].Count != snap.Histograms["route.path_len"].Count ||
		snap.Histograms["route_path_len"].Count != 1 {
		t.Errorf("histogram alias mismatch: %v", snap.Histograms)
	}
}
