package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Progress is one point-in-time snapshot of a running synthesis: which
// assay and phase are active, per-phase wall-clock so far, and the live
// state of the hottest loops (B&B search, net routing). Snapshots are
// value-copied on publish; the MILP/Route sub-structs and the Phases map
// are replace-only — a publisher installs a fresh pointer/map per update
// and never mutates one that has already been published — so a snapshot
// handed to a subscriber is immutable and internally consistent even
// while the next update is being built.
type Progress struct {
	Seq   int64  `json:"seq"`
	AtUS  int64  `json:"at_us"`
	Assay string `json:"assay,omitempty"`
	Phase string `json:"phase,omitempty"`

	// Phases holds completed-or-running per-phase wall-clock seconds.
	Phases map[string]float64 `json:"phases,omitempty"`

	MILP   *MILPProgress   `json:"milp,omitempty"`
	Route  *RouteProgress  `json:"route,omitempty"`
	Anneal *AnnealProgress `json:"anneal,omitempty"`
	Race   *RaceProgress   `json:"race,omitempty"`

	Done bool `json:"done,omitempty"`
}

// MILPProgress is the live state of one branch-and-bound solve: the
// anytime incumbent, the best LP bound among open nodes, their gap, and
// the node/warm-start counters that show search throughput.
type MILPProgress struct {
	Solve        int64   `json:"solve"` // bus-unique solve id
	Nodes        int64   `json:"nodes"`
	Incumbent    float64 `json:"incumbent"`
	HasIncumbent bool    `json:"has_incumbent"`
	Bound        float64 `json:"bound"`
	Gap          float64 `json:"gap"`
	WarmResolves int64   `json:"warm_resolves"`
	ColdSolves   int64   `json:"cold_solves"`
	Incumbents   int64   `json:"incumbents"`
}

// AnnealProgress is the live state of the simulated-annealing mapper.
// Replicates run concurrently and publish independently (replace-only,
// last writer wins), so a stream shows an interleaving of replicate
// states rather than a global aggregate; BestMaxPump is the publishing
// replicate's incumbent objective.
type AnnealProgress struct {
	Replicates  int64   `json:"replicates"`
	Replicate   int64   `json:"replicate"` // publishing replicate index
	Iter        int64   `json:"iter"`
	Temp        float64 `json:"temp"`
	BestMaxPump int64   `json:"best_max_pump"`
	HasBest     bool    `json:"has_best"`
	Accepted    int64   `json:"accepted"`
}

// RaceProgress is the live state of the anytime backend portfolio: one
// lane per raced backend, in priority order. The slice is replace-only
// like every Progress sub-struct.
type RaceProgress struct {
	Backends []BackendLane `json:"backends"`
}

// BackendLane is one backend's state within a portfolio race.
type BackendLane struct {
	Backend string  `json:"backend"`
	State   string  `json:"state"` // running, done, failed
	VsMax1  int     `json:"vs_max1,omitempty"`
	Seconds float64 `json:"seconds,omitempty"`
	Won     bool    `json:"won,omitempty"`
}

// RouteProgress is the live state of the routing phase across time-steps.
type RouteProgress struct {
	Nets       int64 `json:"nets"`
	InPlace    int64 `json:"in_place"`
	Failed     int64 `json:"failed"`
	Ripups     int64 `json:"ripups"`
	Wirelength int64 `json:"wirelength"`
}

// ProgressBus is the live progress channel of a Trace: hot loops publish
// snapshot updates through Update, and consumers either poll Latest (the
// /metrics path) or Subscribe for a pushed stream (the /progress SSE
// path). A nil *ProgressBus no-ops everywhere, so publishers call it
// unconditionally; the bus exists only after Trace.EnableProgress.
type ProgressBus struct {
	clock func() time.Duration

	solves atomic.Int64

	mu   sync.Mutex
	cur  Progress
	seen bool
	subs map[int]chan Progress
	next int
}

// newProgressBus wires a bus to the owning trace's clock.
func newProgressBus(clock func() time.Duration) *ProgressBus {
	return &ProgressBus{clock: clock, subs: map[int]chan Progress{}}
}

// NextSolve hands out a bus-unique id for one B&B solve, so interleaved
// concurrent solves can be told apart in the stream.
func (b *ProgressBus) NextSolve() int64 {
	if b == nil {
		return 0
	}
	return b.solves.Add(1)
}

// Update applies mut to the current snapshot, stamps it with the next
// sequence number and the trace clock, and fans it out to subscribers.
// mut must follow the replace-only contract documented on Progress: set
// sub-struct pointers and maps to freshly built values, never mutate the
// ones already present.
func (b *ProgressBus) Update(mut func(*Progress)) {
	if b == nil {
		return
	}
	b.mu.Lock()
	mut(&b.cur)
	b.cur.Seq++
	b.cur.AtUS = b.clock().Microseconds()
	b.seen = true
	snap := b.cur
	for _, ch := range b.subs {
		// Non-blocking, drop-oldest: a slow subscriber loses
		// intermediate snapshots, never stalls the publisher.
		for {
			select {
			case ch <- snap:
			default:
				select {
				case <-ch:
				default:
				}
				continue
			}
			break
		}
	}
	b.mu.Unlock()
}

// Latest returns the most recent snapshot; ok is false before the first
// Update.
func (b *ProgressBus) Latest() (snap Progress, ok bool) {
	if b == nil {
		return Progress{}, false
	}
	b.mu.Lock()
	snap, ok = b.cur, b.seen
	b.mu.Unlock()
	return snap, ok
}

// Subscribers reports the number of attached subscriptions. Tests and
// publishers that want to skip building expensive snapshots when nobody
// listens can poll it; Latest-based consumers do not register.
func (b *ProgressBus) Subscribers() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Subscribe registers a snapshot stream with the given channel capacity
// (minimum 1). The current snapshot, if any, is pre-queued so a late
// subscriber sees state immediately. cancel unregisters and closes the
// channel; it is safe to call more than once.
func (b *ProgressBus) Subscribe(buf int) (<-chan Progress, func()) {
	if b == nil {
		ch := make(chan Progress)
		close(ch)
		return ch, func() {}
	}
	if buf < 1 {
		buf = 1
	}
	ch := make(chan Progress, buf)
	b.mu.Lock()
	id := b.next
	b.next++
	b.subs[id] = ch
	if b.seen {
		ch <- b.cur
	}
	b.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			b.mu.Lock()
			delete(b.subs, id)
			b.mu.Unlock()
			close(ch)
		})
	}
	return ch, cancel
}
