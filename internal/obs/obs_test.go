package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// stubClock replaces the trace's monotonic source with a counter that
// advances 1ms per reading, making every exported timestamp deterministic.
func stubClock(tr *Trace) {
	var mu sync.Mutex
	var tick time.Duration
	tr.clock = func() time.Duration {
		mu.Lock()
		defer mu.Unlock()
		tick += time.Millisecond
		return tick
	}
}

// TestNilNoOp exercises the disabled path: every method on nil handles must
// be safe and inert.
func TestNilNoOp(t *testing.T) {
	var tr *Trace
	sp := tr.Start("root", KV("k", 1))
	if sp != nil {
		t.Fatal("nil trace returned a span")
	}
	child := sp.Start("child")
	child.Set(KV("a", 2))
	child.Mark("m")
	child.StartTrack("w0", "task").End()
	child.End()
	if d := child.Duration(); d != 0 {
		t.Fatalf("nil span duration %v", d)
	}
	if sp.Trace() != nil || sp.Metrics() != nil || tr.Metrics() != nil {
		t.Fatal("nil handles leaked non-nil components")
	}
	m := tr.Metrics()
	m.Counter("c").Inc()
	m.Gauge("g").Set(5)
	m.Histogram("h", []float64{1}).Observe(2)
	if m.Snapshot() != nil {
		t.Fatal("nil metrics snapshot not nil")
	}
	if tr.Pool(sp, "p") != nil {
		t.Fatal("nil trace built a pool observer")
	}
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil WriteText: %v, %d bytes", err, buf.Len())
	}
	if err := tr.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil WriteJSONL: %v, %d bytes", err, buf.Len())
	}
	buf.Reset()
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil WriteChromeTrace: %v", err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("nil chrome trace not valid JSON: %v", err)
	}
	if evs, ok := out["traceEvents"].([]any); !ok || len(evs) != 0 {
		t.Fatalf("nil chrome trace events = %v", out["traceEvents"])
	}
}

// TestHistogramBuckets pins the bucket semantics: a sample lands in the
// first bucket with v <= bound, inclusive, with an overflow bucket past the
// last bound — and the first registration fixes the bounds.
func TestHistogramBuckets(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5} {
		h.Observe(v)
	}
	// Same name, different bounds: first registration wins.
	if h2 := m.Histogram("h", []float64{100}); h2 != h {
		t.Fatal("re-registration returned a new histogram")
	}
	snap := m.Snapshot()
	hs, ok := snap.Histograms["h"]
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if hs.Count != 7 || hs.Sum != 17 {
		t.Fatalf("count=%d sum=%g, want 7 and 17", hs.Count, hs.Sum)
	}
	wantCounts := []int64{2, 2, 2} // ≤1: {0.5,1}; ≤2: {1.5,2}; ≤4: {3,4}
	for i, b := range hs.Buckets {
		if b.Count != wantCounts[i] {
			t.Fatalf("bucket ≤%g count %d, want %d", b.Le, b.Count, wantCounts[i])
		}
	}
	if hs.Overflow != 1 {
		t.Fatalf("overflow %d, want 1 (sample 5)", hs.Overflow)
	}
}

// TestGaugeHighWater pins the gauge max tracking under Add/Set mixes.
func TestGaugeHighWater(t *testing.T) {
	m := NewMetrics()
	g := m.Gauge("g")
	g.Set(3)
	g.Add(4) // 7, new max
	g.Add(-5)
	g.Set(1)
	if g.Value() != 1 || g.Max() != 7 {
		t.Fatalf("value=%d max=%d, want 1 and 7", g.Value(), g.Max())
	}
}

// TestRootTrackRecycling: sequential roots share "main"; overlapping roots
// get distinct tracks so their Chrome slices cannot overlap.
func TestRootTrackRecycling(t *testing.T) {
	tr := New()
	stubClock(tr)
	a := tr.Start("a")
	b := tr.Start("b") // concurrent with a -> new track
	a.End()
	c := tr.Start("c") // a's track is free again
	b.End()
	c.End()
	_, _, tracks := tr.snapshot()
	if len(tracks) != 2 || tracks[0] != "main" || tracks[1] != "main#2" {
		t.Fatalf("tracks = %v, want [main main#2]", tracks)
	}
	byName := map[string]int{}
	spans, _, _ := tr.snapshot()
	for _, sp := range spans {
		byName[sp.name] = sp.track
	}
	if byName["a"] == byName["b"] {
		t.Fatal("concurrent roots share a track")
	}
	if byName["a"] != byName["c"] {
		t.Fatal("root track not recycled after end")
	}
}

// TestChromeTraceGolden freezes the Chrome export of a deterministic span
// tree (stubbed clock) and validates it against the trace_event schema:
// required ph/ts/pid/tid fields, metadata naming the tracks, "X" slices
// with microsecond durations, "i" instants.
func TestChromeTraceGolden(t *testing.T) {
	tr := New()
	stubClock(tr)
	tr.Metrics().Counter("milp.nodes").Add(42)

	root := tr.Start("synthesize", KV("assay", "PCR"))
	sched := root.Start("schedule")
	sched.End()
	place := root.Start("place", KV("mode", "rolling"))
	w := place.StartTrack("w0", "greedy.variant", KV("i", 0))
	w.End()
	place.Mark("milp.incumbent", KV("obj", 2))
	place.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -run Golden -update`)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace drifted from golden:\n%s", buf.String())
	}

	// Schema validation, independent of the golden bytes.
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if out.Unit != "ms" {
		t.Fatalf("displayTimeUnit = %q", out.Unit)
	}
	tracks := map[float64]string{}
	var slices, instants int
	for _, ev := range out.TraceEvents {
		name, _ := ev["name"].(string)
		ph, _ := ev["ph"].(string)
		pid, pidOK := ev["pid"].(float64)
		tid, tidOK := ev["tid"].(float64)
		if name == "" || !pidOK || !tidOK || pid != 1 {
			t.Fatalf("event missing name/pid/tid: %v", ev)
		}
		switch ph {
		case "M":
			if name == "thread_name" {
				args := ev["args"].(map[string]any)
				tracks[tid] = args["name"].(string)
			}
		case "X":
			slices++
			ts, tsOK := ev["ts"].(float64)
			dur, durOK := ev["dur"].(float64)
			if !tsOK || !durOK || ts <= 0 || dur <= 0 {
				t.Fatalf("X event lacks positive ts/dur: %v", ev)
			}
		case "i":
			instants++
			if _, ok := ev["ts"].(float64); !ok || ev["s"] != "t" {
				t.Fatalf("instant lacks ts/scope: %v", ev)
			}
		default:
			t.Fatalf("unexpected ph %q in %v", ph, ev)
		}
	}
	if slices != 4 || instants != 1 {
		t.Fatalf("got %d slices and %d instants, want 4 and 1", slices, instants)
	}
	names := map[string]bool{}
	for _, n := range tracks {
		names[n] = true
	}
	if !names["main"] || !names["w0"] {
		t.Fatalf("thread_name metadata %v lacks main/w0", tracks)
	}
	// The stub clock ticks 1ms per reading: synthesize starts at tick 1
	// (1000µs) and ends at tick 9 after 8 further readings (schedule
	// start/end, place start, w0 start/end, mark, place end, its own end),
	// so its duration is 8000µs.
	for _, ev := range out.TraceEvents {
		if ev["ph"] == "X" && ev["name"] == "synthesize" {
			if ev["ts"].(float64) != 1000 || ev["dur"].(float64) != 8000 {
				t.Fatalf("synthesize ts/dur = %v/%v, want 1000/8000",
					ev["ts"], ev["dur"])
			}
		}
	}
}

// TestJSONLStream checks the line shape of the JSONL sink: span lines in
// start order, then marks, then one metrics line.
func TestJSONLStream(t *testing.T) {
	tr := New()
	stubClock(tr)
	root := tr.Start("run")
	child := root.Start("step", KV("i", 1))
	child.Mark("hit")
	child.End()
	root.End()
	tr.Metrics().Counter("n").Inc()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), buf.String())
	}
	var types []string
	for _, ln := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(ln), &obj); err != nil {
			t.Fatalf("line %q: %v", ln, err)
		}
		types = append(types, obj["type"].(string))
	}
	if got := strings.Join(types, ","); got != "span,span,mark,metrics" {
		t.Fatalf("line types %s, want span,span,mark,metrics", got)
	}
}

// TestTextTree checks the summary sink renders the span hierarchy and the
// metrics block.
func TestTextTree(t *testing.T) {
	tr := New()
	stubClock(tr)
	root := tr.Start("synthesize")
	root.Start("schedule").End()
	rt := root.Start("route")
	rt.StartTrack("w1", "net").End()
	rt.End()
	root.End()
	tr.Metrics().Counter("route.nets").Add(3)

	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"synthesize", "├─ schedule", "└─ route", "[w1]", "route.nets", "metrics:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary lacks %q:\n%s", want, out)
		}
	}
}

// BenchmarkNilSpan measures the disabled path: instrumented code running
// against a nil trace must cost only nil checks.
func BenchmarkNilSpan(b *testing.B) {
	var sp *Span
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		child := sp.Start("phase", KV("i", n))
		child.Set(KV("x", 1))
		child.Metrics().Counter("c").Inc()
		child.End()
	}
}
