package obs

// The pool tests exercise the PoolObserver against the real worker pool:
// importing par here is cycle-free because par never imports obs — the
// adapter satisfies par.Observer structurally.

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"mfsynth/internal/par"
)

// poolShape runs tasks through an observed pool and returns the span tree
// as sorted "name<-parentName" edges — the scheduling-independent shape.
func poolShape(t *testing.T, workers, tasks int) []string {
	t.Helper()
	tr := New()
	root := tr.Start("synthesize")
	ctx := context.Background()
	if po := tr.Pool(root, "variant"); po != nil {
		ctx = par.WithObserver(ctx, po)
	}
	err := par.DoCtx(ctx, workers, tasks, func(slot, i int) error {
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	root.End()

	spans, _, _ := tr.snapshot()
	byID := map[int]*Span{}
	for _, sp := range spans {
		byID[sp.id] = sp
	}
	var edges []string
	for _, sp := range spans {
		parent := "-"
		if p, ok := byID[sp.parent]; ok {
			parent = p.name
		}
		edges = append(edges, sp.name+"<-"+parent)
	}
	sort.Strings(edges)
	return edges
}

// TestPoolSpanShapeDeterministic: the span tree shape (names and parent
// edges) is identical across worker counts and repeated runs — only which
// wN track a task lands on may differ.
func TestPoolSpanShapeDeterministic(t *testing.T) {
	const tasks = 24
	want := poolShape(t, 1, tasks)
	// tasks + pool + root spans in every run.
	if len(want) != tasks+2 {
		t.Fatalf("serial run produced %d spans, want %d", len(want), tasks+2)
	}
	for _, workers := range []int{2, 4, 8} {
		for rep := 0; rep < 3; rep++ {
			got := poolShape(t, workers, tasks)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("workers=%d rep=%d: span shape diverged\ngot  %v\nwant %v",
					workers, rep, got, want)
			}
		}
	}
}

// TestPoolMetrics: the observer's queue gauge drains to zero with the task
// count as high-water mark, and busy-time counters exist per used slot.
func TestPoolMetrics(t *testing.T) {
	tr := New()
	root := tr.Start("run")
	po := tr.Pool(root, "task")
	if po == nil {
		t.Fatal("Pool returned nil for a live trace")
	}
	ctx := par.WithObserver(context.Background(), po)
	if err := par.DoCtx(ctx, 2, 9, func(slot, i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	root.End()

	m := tr.Metrics()
	if q := m.Gauge("par_queue_depth"); q.Value() != 0 || q.Max() != 9 {
		t.Fatalf("queue gauge value=%d max=%d, want 0 and 9", q.Value(), q.Max())
	}
	if n := m.Counter("par_tasks_total").Value(); n != 9 {
		t.Fatalf("par_tasks_total = %d, want 9", n)
	}
	// Which slots ran tasks is scheduling-dependent (a fast worker may
	// drain the whole feed), but every task accrues into some wN counter.
	snap := m.Snapshot()
	found := false
	for name := range snap.Counters {
		if len(name) > 5 && name[:5] == "par_w" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no per-worker busy-time counter in %v", snap.Counters)
	}
}

// TestPoolTaskTracks: with more than one worker the task spans land on
// per-worker wN tracks, nested under the pool span.
func TestPoolTaskTracks(t *testing.T) {
	tr := New()
	root := tr.Start("run")
	ctx := par.WithObserver(context.Background(), tr.Pool(root, "task"))
	if err := par.DoCtx(ctx, 3, 12, func(slot, i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	root.End()

	spans, _, tracks := tr.snapshot()
	byID := map[int]*Span{}
	for _, sp := range spans {
		byID[sp.id] = sp
	}
	workerTracks := map[string]bool{}
	taskSpans := 0
	for _, sp := range spans {
		// Task spans are the ones nested under the pool span (which shares
		// their label but hangs off the root).
		p, ok := byID[sp.parent]
		if !ok || p.name != "task" {
			continue
		}
		taskSpans++
		name := tracks[sp.track]
		if len(name) < 2 || name[0] != 'w' {
			t.Fatalf("task span on track %q, want wN", name)
		}
		workerTracks[name] = true
	}
	if taskSpans != 12 || len(workerTracks) == 0 {
		t.Fatalf("%d task spans on %d worker tracks", taskSpans, len(workerTracks))
	}
}
