package obs

import (
	"encoding/json"
	"io"
)

// jsonlSpan is one "span" line of the JSONL event stream.
type jsonlSpan struct {
	Type    string         `json:"type"` // "span"
	ID      int            `json:"id"`
	Parent  int            `json:"parent,omitempty"`
	Name    string         `json:"name"`
	Track   string         `json:"track"`
	StartUS int64          `json:"start_us"`
	DurUS   int64          `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// jsonlMark is one "mark" line.
type jsonlMark struct {
	Type  string         `json:"type"` // "mark"
	Span  int            `json:"span,omitempty"`
	Name  string         `json:"name"`
	Track string         `json:"track"`
	AtUS  int64          `json:"at_us"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// jsonlMetrics is the final "metrics" line.
type jsonlMetrics struct {
	Type string    `json:"type"` // "metrics"
	Data *Snapshot `json:"data"`
}

// WriteJSONL writes the trace as a JSON-Lines event stream: one object per
// completed span (in start order) and per mark, followed by one metrics
// snapshot object. Nil traces write nothing.
func (t *Trace) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	spans, marks, tracks := t.snapshot()
	enc := json.NewEncoder(w)
	trackName := func(id int) string {
		if id < len(tracks) {
			return tracks[id]
		}
		return ""
	}
	for _, sp := range spans {
		if err := enc.Encode(jsonlSpan{
			Type:    "span",
			ID:      sp.id,
			Parent:  sp.parent,
			Name:    sp.name,
			Track:   trackName(sp.track),
			StartUS: sp.start.Microseconds(),
			DurUS:   sp.dur.Microseconds(),
			Attrs:   attrMap(sp.attrs),
		}); err != nil {
			return err
		}
	}
	for _, mk := range marks {
		if err := enc.Encode(jsonlMark{
			Type:  "mark",
			Span:  mk.span,
			Name:  mk.name,
			Track: trackName(mk.track),
			AtUS:  mk.at.Microseconds(),
			Attrs: attrMap(mk.attrs),
		}); err != nil {
			return err
		}
	}
	if snap := t.metrics.Snapshot(); snap != nil {
		if err := enc.Encode(jsonlMetrics{Type: "metrics", Data: snap}); err != nil {
			return err
		}
	}
	return nil
}

// attrMap flattens attrs for JSON embedding (last writer wins on key
// collisions, matching Set's append semantics).
func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	out := make(map[string]any, len(attrs))
	for _, a := range attrs {
		out[a.Key] = a.Val
	}
	return out
}
