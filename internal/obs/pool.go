package obs

import "fmt"

// PoolObserver bridges a worker pool's lifecycle callbacks onto the trace:
// the pool becomes a span on the caller's track, every task becomes a span
// on a per-worker "w0", "w1", … track, the number of unstarted tasks is
// exported as the par_queue_depth gauge, and per-worker busy time
// accumulates into par_wN_busy_us_total counters (idle time is the pool
// duration minus busy time, readable off the trace).
//
// The method set deliberately matches mfsynth/internal/par.Observer so the
// adapter satisfies it structurally — obs stays free of engine imports.
// Construct with Trace.Pool; a nil *PoolObserver must not be handed to the
// pool (callers guard with a typed nil check, see par.WithObserver docs).
type PoolObserver struct {
	parent *Span
	label  string

	pool  *Span
	slots []*Span
	queue *Gauge
	tasks *Counter
}

// Pool returns a PoolObserver that nests the pool's spans under parent.
// Returns nil when the trace or parent is nil (tracing disabled).
func (t *Trace) Pool(parent *Span, label string) *PoolObserver {
	if t == nil || parent == nil {
		return nil
	}
	return &PoolObserver{parent: parent, label: label}
}

// PoolStart opens the pool span. Called once, before any task runs.
func (o *PoolObserver) PoolStart(workers, tasks int) {
	o.pool = o.parent.Start(o.label, KV("workers", workers), KV("tasks", tasks))
	o.slots = make([]*Span, workers)
	m := o.parent.Metrics()
	o.queue = m.Gauge("par_queue_depth")
	o.tasks = m.Counter("par_tasks_total")
	o.queue.Set(int64(tasks))
}

// TaskStart opens the task's span on the worker's track. Called from the
// worker goroutine; distinct slots never race.
func (o *PoolObserver) TaskStart(slot, i int) {
	o.queue.Add(-1)
	o.tasks.Inc()
	o.slots[slot] = o.pool.StartTrack(fmt.Sprintf("w%d", slot), o.label, KV("i", i))
}

// TaskDone closes the task's span and accrues the worker's busy time.
func (o *PoolObserver) TaskDone(slot, i int) {
	sp := o.slots[slot]
	o.slots[slot] = nil
	sp.End()
	o.parent.Metrics().
		Counter(fmt.Sprintf("par_w%d_busy_us_total", slot)).
		Add(sp.Duration().Microseconds())
}

// PoolDone closes the pool span. Called once, after every task finished.
func (o *PoolObserver) PoolDone() { o.pool.End() }
