package obs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSinkSetFlushAll: every registered sink is written and reported in
// Add order.
func TestSinkSetFlushAll(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.jsonl")

	var s SinkSet
	s.Add(a, func(w io.Writer) error { _, err := io.WriteString(w, "alpha"); return err })
	s.Add("", func(io.Writer) error { t.Fatal("empty-path sink ran"); return nil })
	s.Add(b, func(w io.Writer) error { _, err := io.WriteString(w, "beta"); return err })

	written, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(written) != 2 || written[0] != a || written[1] != b {
		t.Fatalf("written = %v, want [%s %s]", written, a, b)
	}
	for path, want := range map[string]string{a: "alpha", b: "beta"} {
		got, err := os.ReadFile(path)
		if err != nil || string(got) != want {
			t.Fatalf("%s = %q (%v), want %q", path, got, err, want)
		}
	}
}

// TestSinkSetFirstErrorWins: a failing sink does not stop later sinks and
// the first error surfaces wrapped with its path.
func TestSinkSetFirstErrorWins(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	good := filepath.Join(dir, "good.json")
	boom := errors.New("boom")

	var s SinkSet
	s.Add(bad, func(io.Writer) error { return boom })
	s.Add(good, func(w io.Writer) error { _, err := io.WriteString(w, "ok"); return err })

	written, err := s.Flush()
	if err == nil {
		t.Fatal("Flush swallowed the sink error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error lost the cause: %v", err)
	}
	if !strings.Contains(err.Error(), bad) {
		t.Fatalf("error %q does not name the failing path %s", err, bad)
	}
	if len(written) != 1 || written[0] != good {
		t.Fatalf("written = %v, want the surviving sink only", written)
	}
	if got, rerr := os.ReadFile(good); rerr != nil || string(got) != "ok" {
		t.Fatalf("later sink not written: %q %v", got, rerr)
	}
}

// TestSinkSetCreateError: an uncreatable path is an error, not a silent
// skip.
func TestSinkSetCreateError(t *testing.T) {
	var s SinkSet
	path := filepath.Join(t.TempDir(), "missing", "deep", "x.json")
	s.Add(path, func(io.Writer) error { return nil })
	if _, err := s.Flush(); err == nil || !strings.Contains(err.Error(), path) {
		t.Fatalf("err = %v, want create failure naming %s", err, path)
	}
}

// TestSinkSetEmpty: a SinkSet with nothing registered flushes cleanly.
func TestSinkSetEmpty(t *testing.T) {
	var s SinkSet
	if written, err := s.Flush(); err != nil || len(written) != 0 {
		t.Fatalf("empty Flush = %v, %v", written, err)
	}
}
