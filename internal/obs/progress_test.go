package obs

import (
	"encoding/json"
	"testing"
)

// TestProgressBusNilNoOp exercises the disabled path: a nil bus (no
// EnableProgress call) must be inert everywhere the hot loops touch it.
func TestProgressBusNilNoOp(t *testing.T) {
	var b *ProgressBus
	if id := b.NextSolve(); id != 0 {
		t.Fatalf("nil bus NextSolve = %d", id)
	}
	b.Update(func(p *Progress) { p.Assay = "x" }) // must not panic
	if _, ok := b.Latest(); ok {
		t.Fatal("nil bus has a latest snapshot")
	}
	ch, cancel := b.Subscribe(4)
	if _, ok := <-ch; ok {
		t.Fatal("nil bus subscription not closed")
	}
	cancel()
	cancel() // idempotent

	// The nil *Trace path hands out a nil bus too.
	var tr *Trace
	if tr.EnableProgress() != nil || tr.ProgressBus() != nil {
		t.Fatal("nil trace returned a progress bus")
	}
}

// TestEnableProgressIdempotent: EnableProgress creates the bus once and
// every later call (and ProgressBus) returns the same one.
func TestEnableProgressIdempotent(t *testing.T) {
	tr := New()
	if tr.ProgressBus() != nil {
		t.Fatal("bus exists before EnableProgress")
	}
	b := tr.EnableProgress()
	if b == nil {
		t.Fatal("EnableProgress returned nil")
	}
	if tr.EnableProgress() != b || tr.ProgressBus() != b {
		t.Fatal("EnableProgress is not idempotent")
	}
}

// TestProgressBusUpdateLatest: updates stamp Seq and the trace clock, and
// Latest reflects the newest snapshot.
func TestProgressBusUpdateLatest(t *testing.T) {
	tr := New()
	stubClock(tr)
	b := tr.EnableProgress()

	if _, ok := b.Latest(); ok {
		t.Fatal("Latest ok before first Update")
	}
	b.Update(func(p *Progress) { p.Assay = "PCR"; p.Phase = "schedule" })
	snap, ok := b.Latest()
	if !ok {
		t.Fatal("Latest not ok after Update")
	}
	if snap.Seq != 1 || snap.AtUS != 1000 || snap.Assay != "PCR" || snap.Phase != "schedule" {
		t.Fatalf("snapshot = %+v, want seq 1 at 1000us", snap)
	}
	b.Update(func(p *Progress) { p.Phase = "place" })
	snap, _ = b.Latest()
	if snap.Seq != 2 || snap.AtUS != 2000 || snap.Assay != "PCR" || snap.Phase != "place" {
		t.Fatalf("snapshot = %+v, want seq 2 carrying earlier fields", snap)
	}
}

// TestProgressBusNextSolve hands out distinct increasing ids.
func TestProgressBusNextSolve(t *testing.T) {
	b := New().EnableProgress()
	if a, c := b.NextSolve(), b.NextSolve(); a != 1 || c != 2 {
		t.Fatalf("NextSolve = %d, %d; want 1, 2", a, c)
	}
}

// TestProgressBusSubscribe: a subscriber receives published snapshots in
// order; a late subscriber gets the current snapshot pre-queued.
func TestProgressBusSubscribe(t *testing.T) {
	b := New().EnableProgress()

	early, cancelEarly := b.Subscribe(4)
	defer cancelEarly()
	if len(early) != 0 {
		t.Fatal("pre-queue before any update")
	}

	b.Update(func(p *Progress) { p.Phase = "schedule" })
	b.Update(func(p *Progress) { p.Phase = "place" })
	if s := <-early; s.Seq != 1 || s.Phase != "schedule" {
		t.Fatalf("first delivery = %+v", s)
	}
	if s := <-early; s.Seq != 2 || s.Phase != "place" {
		t.Fatalf("second delivery = %+v", s)
	}

	late, cancelLate := b.Subscribe(4)
	defer cancelLate()
	if s := <-late; s.Seq != 2 || s.Phase != "place" {
		t.Fatalf("late subscriber pre-queue = %+v, want current snapshot", s)
	}
}

// TestProgressBusDropOldest: a full subscriber buffer loses the oldest
// snapshot, never blocks the publisher, and the newest snapshot is always
// retained.
func TestProgressBusDropOldest(t *testing.T) {
	b := New().EnableProgress()
	ch, cancel := b.Subscribe(1)
	defer cancel()

	for i := 0; i < 5; i++ {
		b.Update(func(p *Progress) {}) // never blocks despite the unread buffer
	}
	if s := <-ch; s.Seq != 5 {
		t.Fatalf("retained snapshot seq = %d, want newest (5)", s.Seq)
	}
	if len(ch) != 0 {
		t.Fatalf("buffer holds %d stale snapshots", len(ch))
	}
}

// TestProgressBusCancel: cancel closes the stream, survives double calls,
// and detaches the subscriber from later updates.
func TestProgressBusCancel(t *testing.T) {
	b := New().EnableProgress()
	ch, cancel := b.Subscribe(1)
	cancel()
	cancel()
	if _, ok := <-ch; ok {
		t.Fatal("channel not closed by cancel")
	}
	b.Update(func(p *Progress) {}) // must not send on the closed channel
}

// TestProgressJSONShape pins the wire format of a snapshot: the /progress
// SSE stream and the -progress-log JSONL file both marshal this struct.
func TestProgressJSONShape(t *testing.T) {
	tr := New()
	stubClock(tr)
	b := tr.EnableProgress()
	b.Update(func(p *Progress) {
		p.Assay = "PCR"
		p.Phase = "place"
		p.Phases = map[string]float64{"schedule": 0.25}
		p.MILP = &MILPProgress{Solve: 3, Nodes: 512, Incumbent: 7, HasIncumbent: true, Bound: 6, Gap: 1}
		p.Route = &RouteProgress{Nets: 10, InPlace: 4, Ripups: 1, Wirelength: 55}
	})
	snap, _ := b.Latest()
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"seq":1,"at_us":1000,"assay":"PCR","phase":"place",` +
		`"phases":{"schedule":0.25},` +
		`"milp":{"solve":3,"nodes":512,"incumbent":7,"has_incumbent":true,"bound":6,"gap":1,"warm_resolves":0,"cold_solves":0,"incumbents":0},` +
		`"route":{"nets":10,"in_place":4,"failed":0,"ripups":1,"wirelength":55}}`
	if string(raw) != want {
		t.Fatalf("snapshot JSON drifted:\n got %s\nwant %s", raw, want)
	}
}
