package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// WriteText renders the trace as a human-readable summary: the span tree
// (durations, attributes, track of origin) followed by the metric
// registry. Nil traces write nothing.
func (t *Trace) WriteText(w io.Writer) error {
	if t == nil {
		return nil
	}
	spans, _, tracks := t.snapshot()

	children := map[int][]*Span{}
	for _, sp := range spans {
		children[sp.parent] = append(children[sp.parent], sp)
	}
	var write func(sp *Span, prefix, branch string) error
	write = func(sp *Span, prefix, branch string) error {
		track := ""
		if sp.track < len(tracks) && tracks[sp.track] != "main" {
			track = " [" + tracks[sp.track] + "]"
		}
		if _, err := fmt.Fprintf(w, "%s%s%s %s%s%s\n",
			prefix, branch, sp.name, fmtDur(sp.dur), track, fmtAttrs(sp.attrs)); err != nil {
			return err
		}
		kids := children[sp.id]
		childPrefix := prefix
		switch branch {
		case "├─ ":
			childPrefix += "│  "
		case "└─ ":
			childPrefix += "   "
		}
		for i, c := range kids {
			b := "├─ "
			if i == len(kids)-1 {
				b = "└─ "
			}
			if err := write(c, childPrefix, b); err != nil {
				return err
			}
		}
		return nil
	}
	for _, root := range children[0] {
		if err := write(root, "", ""); err != nil {
			return err
		}
	}

	snap := t.metrics.Snapshot()
	if snap == nil {
		return nil
	}
	if _, err := fmt.Fprintln(w, "\nmetrics:"); err != nil {
		return err
	}
	for _, name := range sortedKeys(snap.Counters) {
		if _, err := fmt.Fprintf(w, "  %-28s %d\n", name, snap.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.Gauges) {
		g := snap.Gauges[name]
		if _, err := fmt.Fprintf(w, "  %-28s %d (max %d)\n", name, g.Value, g.Max); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.FloatGauges) {
		if _, err := fmt.Fprintf(w, "  %-28s %g\n", name, snap.FloatGauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[name]
		var parts []string
		for _, b := range h.Buckets {
			parts = append(parts, fmt.Sprintf("≤%g:%d", b.Le, b.Count))
		}
		parts = append(parts, fmt.Sprintf(">:%d", h.Overflow))
		if _, err := fmt.Fprintf(w, "  %-28s n=%d sum=%g  %s\n",
			name, h.Count, h.Sum, strings.Join(parts, " ")); err != nil {
			return err
		}
	}
	return nil
}

// fmtDur renders a duration at a readable precision.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	}
}

// fmtAttrs renders attributes as "  k=v k=v".
func fmtAttrs(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString(" ")
	for _, a := range attrs {
		fmt.Fprintf(&sb, " %s=%v", a.Key, a.Val)
	}
	return sb.String()
}

// sortedKeys returns the sorted keys of a string-keyed map.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
