package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// Metrics is a registry of named counters, gauges and histograms. All
// operations are safe for concurrent use; a nil *Metrics (the disabled
// path) hands out nil instruments whose methods no-op.
//
// Metric names follow the Prometheus convention: snake_case with a unit
// suffix where one applies (`_total` for counters, `_us` for microsecond
// quantities — converted to `_seconds` by the exposition writer in
// internal/obs/export).
type Metrics struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	fgauges  map[string]*FloatGauge
	hists    map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		fgauges:  map[string]*FloatGauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	m.mu.Unlock()
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	g, ok := m.gauges[name]
	if !ok {
		g = &Gauge{}
		m.gauges[name] = g
	}
	m.mu.Unlock()
	return g
}

// FloatGauge returns the named float-valued gauge, creating it on first
// use. Float gauges carry continuous live readings (objective values,
// bound gaps) that the integer Gauge cannot represent.
func (m *Metrics) FloatGauge(name string) *FloatGauge {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	g, ok := m.fgauges[name]
	if !ok {
		g = &FloatGauge{}
		m.fgauges[name] = g
	}
	m.mu.Unlock()
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending inclusive bucket upper bounds on first use (later bounds are
// ignored — first registration wins).
func (m *Metrics) Histogram(name string, bounds []float64) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	h, ok := m.hists[name]
	if !ok {
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]int64, len(bounds)+1),
		}
		m.hists[name] = h
	}
	m.mu.Unlock()
	return h
}

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time value that also tracks its high-water mark.
type Gauge struct{ v, max atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.bumpMax(v)
}

// Add shifts the value by d.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.bumpMax(g.v.Add(d))
}

func (g *Gauge) bumpMax(v int64) {
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the high-water mark.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// FloatGauge is a point-in-time float64 value (atomic bit-pattern store).
type FloatGauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *FloatGauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 before the first Set).
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution: a sample v lands in the first
// bucket whose upper bound satisfies v <= bound, or in the overflow bucket
// beyond the last bound.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1; last entry is the overflow bucket
	sum    float64
	n      int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Snapshot is a point-in-time JSON-marshalable copy of a registry.
type Snapshot struct {
	Counters    map[string]int64             `json:"counters,omitempty"`
	Gauges      map[string]GaugeSnapshot     `json:"gauges,omitempty"`
	FloatGauges map[string]float64           `json:"float_gauges,omitempty"`
	Histograms  map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// GaugeSnapshot is a gauge's exported state.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// HistogramSnapshot is a histogram's exported state.
type HistogramSnapshot struct {
	Count    int64    `json:"count"`
	Sum      float64  `json:"sum"`
	Buckets  []Bucket `json:"buckets"`
	Overflow int64    `json:"overflow"`
}

// Bucket is one histogram bucket: the count of samples v with
// prevBound < v <= Le.
type Bucket struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// Snapshot copies the registry. Returns nil for a nil or empty registry,
// so JSON embeddings can use omitempty.
func (m *Metrics) Snapshot() *Snapshot {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.counters) == 0 && len(m.gauges) == 0 && len(m.fgauges) == 0 && len(m.hists) == 0 {
		return nil
	}
	s := &Snapshot{}
	if len(m.counters) > 0 {
		s.Counters = make(map[string]int64, len(m.counters))
		for name, c := range m.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(m.gauges) > 0 {
		s.Gauges = make(map[string]GaugeSnapshot, len(m.gauges))
		for name, g := range m.gauges {
			s.Gauges[name] = GaugeSnapshot{Value: g.Value(), Max: g.Max()}
		}
	}
	if len(m.fgauges) > 0 {
		s.FloatGauges = make(map[string]float64, len(m.fgauges))
		for name, g := range m.fgauges {
			s.FloatGauges[name] = g.Value()
		}
	}
	if len(m.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(m.hists))
		for name, h := range m.hists {
			h.mu.Lock()
			hs := HistogramSnapshot{
				Count:    h.n,
				Sum:      roundSum(h.sum),
				Buckets:  make([]Bucket, len(h.bounds)),
				Overflow: h.counts[len(h.bounds)],
			}
			for i, b := range h.bounds {
				hs.Buckets[i] = Bucket{Le: b, Count: h.counts[i]}
			}
			h.mu.Unlock()
			s.Histograms[name] = hs
		}
	}
	return s
}

// roundSum trims float noise so snapshots of integer-valued samples stay
// readable in JSON.
func roundSum(v float64) float64 {
	r := math.Round(v)
	if math.Abs(v-r) < 1e-9 {
		return r
	}
	return v
}
