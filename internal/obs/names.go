package obs

// Metric-name hygiene. Registry names were renamed from the original
// dotted scheme ("milp.simplex_pivots") to Prometheus-lint-clean
// snake_case with unit suffixes ("milp_simplex_pivots_total"):
// counters carry `_total`, microsecond counters carry `_us_total` (the
// exposition writer converts them to `_seconds_total`), gauges and
// histograms carry no suffix.
//
// LegacyAliases maps each renamed metric's new canonical name to its old
// dotted name. The JSONL sink emits every aliased metric twice — once
// under each name — for one release, so downstream consumers of the event
// stream (and committed BENCH_table1.json baselines) have a migration
// window; tools/benchgate normalises old names through the same table.

// LegacyAliases maps new canonical metric names to the dotted names they
// replaced. Metrics introduced after the rename have no entry.
var LegacyAliases = map[string]string{
	"milp_nodes_total":           "milp.nodes",
	"milp_lp_solves_total":       "milp.lp_solves",
	"milp_simplex_pivots_total":  "milp.simplex_pivots",
	"milp_incumbents_total":      "milp.incumbents",
	"milp_deadline_checks_total": "milp.deadline_checks",
	"milp_floor_fathoms_total":   "milp.floor_fathoms",
	"milp_warm_fathoms_total":    "milp.warm_fathoms",
	"milp_warm_resolves_total":   "milp.warm_resolves",
	"milp_warm_infeasible_total": "milp.warm_infeasible",
	"milp_warm_failures_total":   "milp.warm_failures",
	"milp_warm_fail_pivots_total": "milp.warm_fail_pivots",
	"milp_bound_gap":             "milp.bound_gap",
	"place_ilp_candidates_total": "place.ilp_candidates",
	"place_repairs_total":        "place.repairs",
	"place_ilp_solves_total":     "place.ilp_solves",
	"place_ilp_nodes_total":      "place.ilp_nodes",
	"place_rc_relaxed_total":     "place.rc_relaxed",
	"place_greedy_runs_total":    "place.greedy_runs",
	"schedule_ops_total":         "schedule.ops",
	"schedule_makespan":          "schedule.makespan",
	"schedule_instances":         "schedule.instances",
	"route_nets_total":           "route.nets",
	"route_in_place_total":       "route.in_place",
	"route_failed_total":         "route.failed",
	"route_dijkstra_pops_total":  "route.dijkstra_pops",
	"route_ripups_total":         "route.ripups",
	"route_crossings_total":      "route.crossings",
	"route_path_len":             "route.path_len",
	"par_queue_depth":            "par.queue_depth",
	"par_tasks_total":            "par.tasks",
	// par_wN_busy_us_total aliases are generated per worker id; see
	// legacyName.
}

// legacyName returns the dotted pre-rename alias of a canonical metric
// name, or "" when the metric never had one. Per-worker busy counters are
// matched structurally (par_w<id>_busy_us_total -> par.w<id>.busy_us).
func legacyName(name string) string {
	if old, ok := LegacyAliases[name]; ok {
		return old
	}
	const pre, post = "par_w", "_busy_us_total"
	if len(name) > len(pre)+len(post) &&
		name[:len(pre)] == pre && name[len(name)-len(post):] == post {
		return "par.w" + name[len(pre):len(name)-len(post)] + ".busy_us"
	}
	return ""
}

// CanonicalName maps a legacy dotted metric name back to its canonical
// snake_case name, returning the input unchanged when it is not a known
// legacy name. tools/benchgate uses this to compare baselines recorded
// before the rename against fresh snapshots.
func CanonicalName(name string) string {
	if canonical, ok := legacyToCanonical[name]; ok {
		return canonical
	}
	return name
}

// legacyToCanonical is the inverse of LegacyAliases.
var legacyToCanonical = func() map[string]string {
	m := make(map[string]string, len(LegacyAliases))
	for canonical, old := range LegacyAliases {
		m[old] = canonical
	}
	return m
}()
