package obs

import (
	"encoding/json"
	"io"
	"time"
)

// Chrome trace_event export. The format is the Trace Event Format's JSON
// object form: {"traceEvents": [...], "displayTimeUnit": "ms"}, loadable
// in chrome://tracing and https://ui.perfetto.dev. Each ended span becomes
// a complete event (ph "X") with microsecond timestamps; marks become
// instant events (ph "i"); tracks map to threads (tid) of one process
// (pid 1) named via metadata events (ph "M").

// chromeEvent is one trace_event entry.
type chromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"`            // microseconds
	Dur   float64        `json:"dur,omitempty"` // microseconds, ph "X" only
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant scope, ph "i" only
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const chromePID = 1

// WriteChromeTrace writes the trace in Chrome trace_event JSON. Nil traces
// write an empty but valid trace object.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	out := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	if t != nil {
		spans, marks, tracks := t.snapshot()
		out.TraceEvents = make([]chromeEvent, 0, len(spans)+len(marks)+len(tracks)+1)
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: chromePID, TID: 0,
			Args: map[string]any{"name": "mfsynth"},
		})
		for id, name := range tracks {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: chromePID, TID: id + 1,
				Args: map[string]any{"name": name},
			})
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_sort_index", Ph: "M", PID: chromePID, TID: id + 1,
				Args: map[string]any{"sort_index": id},
			})
		}
		for _, sp := range spans {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: sp.name,
				Ph:   "X",
				TS:   us(sp.start),
				Dur:  us(sp.dur),
				PID:  chromePID,
				TID:  sp.track + 1,
				Args: attrMap(sp.attrs),
			})
		}
		for _, mk := range marks {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name:  mk.name,
				Ph:    "i",
				TS:    us(mk.at),
				PID:   chromePID,
				TID:   mk.track + 1,
				Scope: "t",
				Args:  attrMap(mk.attrs),
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// us converts a duration to trace_event microseconds.
func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
