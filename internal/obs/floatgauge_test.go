package obs

import "testing"

// TestFloatGauge covers the float-valued gauge: nil no-op, last-write-wins
// semantics, registry identity, and snapshot export.
func TestFloatGauge(t *testing.T) {
	var nilG *FloatGauge
	nilG.Set(3.5)
	if nilG.Value() != 0 {
		t.Fatal("nil FloatGauge not inert")
	}
	var nilM *Metrics
	if nilM.FloatGauge("x") != nil {
		t.Fatal("nil registry handed out a gauge")
	}

	m := NewMetrics()
	g := m.FloatGauge("milp_gap")
	if g.Value() != 0 {
		t.Fatalf("initial value %g", g.Value())
	}
	g.Set(2.5)
	g.Set(-0.125) // gauges go down; no high-water tracking
	if g.Value() != -0.125 {
		t.Fatalf("value %g, want -0.125", g.Value())
	}
	if m.FloatGauge("milp_gap") != g {
		t.Fatal("registry minted a second gauge for the same name")
	}

	snap := m.Snapshot()
	if snap == nil || snap.FloatGauges["milp_gap"] != -0.125 {
		t.Fatalf("snapshot = %+v", snap)
	}
}
