// Package obs is the observability layer of the synthesis engine: it
// collects hierarchical timed spans, point marks and a registry of named
// metrics (counters, gauges, fixed-bucket histograms) for one synthesis
// run — or a whole benchmark batch — and exports them through three sinks:
// a human-readable summary tree (WriteText), a JSONL event stream
// (WriteJSONL) and Chrome trace_event JSON loadable in chrome://tracing
// and Perfetto (WriteChromeTrace).
//
// The package has no dependencies outside the standard library and, by
// design, no dependency on the rest of the engine: the worker-pool adapter
// (PoolObserver) satisfies internal/par's Observer interface structurally.
//
// Tracing is strictly opt-in. A nil *Trace is a valid no-op tracer: every
// method on a nil *Trace, *Span, *Counter, *Gauge, *Histogram and *Metrics
// is safe to call and does nothing, so instrumented code reads
//
//	sp := opts.Obs.Start("phase")
//	defer sp.End()
//
// unconditionally and the disabled path costs only an inlinable nil check.
//
// Spans are organised into tracks — the rows of the Chrome trace view.
// Root spans own a "main" track each (concurrent roots, e.g. benchmark
// cells evaluated in parallel, get distinct tracks so their slices do not
// overlap); child spans inherit their parent's track unless started with
// StartTrack, which is how parallel work lands on per-worker "w0", "w1", …
// tracks.
package obs

import (
	"sort"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span or mark. Values must be
// JSON-marshalable (strings, numbers, booleans).
type Attr struct {
	Key string
	Val any
}

// KV builds an Attr.
func KV(key string, val any) Attr { return Attr{Key: key, Val: val} }

// Trace collects the spans, marks and metrics of one run. The zero value
// is not usable; construct with New. A nil *Trace no-ops everywhere.
type Trace struct {
	metrics *Metrics
	epoch   time.Time             // wall-clock anchor; span times are offsets
	clock   func() time.Duration  // monotonic offset source (tests override)

	progressMu sync.Mutex
	progress   *ProgressBus // nil until EnableProgress

	mu         sync.Mutex
	nextID     int
	done       []*Span // ended spans, in End order
	marks      []markRec
	trackIDs   map[string]int
	trackNames []string // track id -> display name
	freeRoots  []int    // root tracks not owned by a live root span
	rootTracks int      // number of root tracks ever created
}

// markRec is one recorded instantaneous event.
type markRec struct {
	name  string
	span  int // enclosing span id
	track int
	at    time.Duration
	attrs []Attr
}

// New returns an empty trace anchored at the current time.
func New() *Trace {
	t := &Trace{
		metrics:  NewMetrics(),
		epoch:    time.Now(),
		trackIDs: map[string]int{},
	}
	t.clock = func() time.Duration { return time.Since(t.epoch) }
	return t
}

// Metrics returns the trace's metric registry; nil for a nil trace (the
// nil registry no-ops).
func (t *Trace) Metrics() *Metrics {
	if t == nil {
		return nil
	}
	return t.metrics
}

// EnableProgress switches on the live progress bus, creating it on first
// call (idempotent — later calls return the same bus). Publishers in the
// hot loops fetch the bus via ProgressBus and see nil until some consumer
// (the debug HTTP server, a progress log) has enabled it, so the disabled
// path stays a nil check. Returns nil on a nil trace.
func (t *Trace) EnableProgress() *ProgressBus {
	if t == nil {
		return nil
	}
	t.progressMu.Lock()
	defer t.progressMu.Unlock()
	if t.progress == nil {
		t.progress = newProgressBus(func() time.Duration { return t.clock() })
	}
	return t.progress
}

// ProgressBus returns the live progress bus, or nil when EnableProgress
// has not been called (the nil bus no-ops).
func (t *Trace) ProgressBus() *ProgressBus {
	if t == nil {
		return nil
	}
	t.progressMu.Lock()
	defer t.progressMu.Unlock()
	return t.progress
}

// trackLocked interns a track display name. t.mu must be held.
func (t *Trace) trackLocked(name string) int {
	if id, ok := t.trackIDs[name]; ok {
		return id
	}
	id := len(t.trackNames)
	t.trackNames = append(t.trackNames, name)
	t.trackIDs[name] = id
	return id
}

// Start opens a root span. Concurrent root spans get distinct main tracks
// ("main", "main#2", …) so their slices do not overlap in the trace view;
// a root's track is recycled once it ends.
func (t *Trace) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	var track int
	if n := len(t.freeRoots); n > 0 {
		track = t.freeRoots[n-1]
		t.freeRoots = t.freeRoots[:n-1]
	} else {
		t.rootTracks++
		label := "main"
		if t.rootTracks > 1 {
			label = "main#" + itoa(t.rootTracks)
		}
		track = t.trackLocked(label)
	}
	sp := t.newSpanLocked(name, track, 0, attrs)
	sp.root = true
	t.mu.Unlock()
	return sp
}

// newSpanLocked allocates a span. t.mu must be held.
func (t *Trace) newSpanLocked(name string, track, parent int, attrs []Attr) *Span {
	t.nextID++
	return &Span{
		tr:     t,
		id:     t.nextID,
		parent: parent,
		name:   name,
		track:  track,
		start:  t.clock(),
		attrs:  attrs,
	}
}

// Span is one timed region of a trace. A nil *Span no-ops everywhere.
type Span struct {
	tr     *Trace
	id     int
	parent int // parent span id; 0 for roots
	name   string
	track  int
	root   bool
	start  time.Duration

	mu    sync.Mutex
	dur   time.Duration
	attrs []Attr
	ended bool
}

// Trace returns the owning trace; nil for a nil span.
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.tr
}

// Metrics returns the owning trace's metric registry; nil for a nil span.
func (s *Span) Metrics() *Metrics { return s.Trace().Metrics() }

// Start opens a child span on the same track.
func (s *Span) Start(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	t := s.tr
	t.mu.Lock()
	sp := t.newSpanLocked(name, s.track, s.id, attrs)
	t.mu.Unlock()
	return sp
}

// StartTrack opens a child span on the named track — how concurrent work
// lands on per-worker rows of the trace view.
func (s *Span) StartTrack(track, name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	t := s.tr
	t.mu.Lock()
	sp := t.newSpanLocked(name, t.trackLocked(track), s.id, attrs)
	t.mu.Unlock()
	return sp
}

// Set appends attributes to the span.
func (s *Span) Set(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// Mark records an instantaneous event inside the span (e.g. an incumbent
// update) — an "i" instant in the Chrome trace.
func (s *Span) Mark(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	t := s.tr
	t.mu.Lock()
	t.marks = append(t.marks, markRec{
		name: name, span: s.id, track: s.track, at: t.clock(), attrs: attrs,
	})
	t.mu.Unlock()
}

// End closes the span, fixing its duration. Ending twice is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.mu.Unlock()
	t := s.tr
	t.mu.Lock()
	s.dur = t.clock() - s.start
	t.done = append(t.done, s)
	if s.root {
		t.freeRoots = append(t.freeRoots, s.track)
	}
	t.mu.Unlock()
}

// Duration returns the span's duration (zero until End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// snapshot returns the ended spans sorted by (start, id) and the track
// names — the canonical export order shared by every sink.
func (t *Trace) snapshot() (spans []*Span, marks []markRec, tracks []string) {
	t.mu.Lock()
	spans = append([]*Span(nil), t.done...)
	marks = append([]markRec(nil), t.marks...)
	tracks = append([]string(nil), t.trackNames...)
	t.mu.Unlock()
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].start != spans[j].start {
			return spans[i].start < spans[j].start
		}
		return spans[i].id < spans[j].id
	})
	sort.SliceStable(marks, func(i, j int) bool {
		if marks[i].at != marks[j].at {
			return marks[i].at < marks[j].at
		}
		return marks[i].span < marks[j].span
	})
	return spans, marks, tracks
}

// itoa is strconv.Itoa for small positive ints without the import weight
// in the hot path file.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
