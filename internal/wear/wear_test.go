package wear

import (
	"math"
	"testing"
	"testing/quick"

	"mfsynth/internal/assays"
	"mfsynth/internal/baseline"
	"mfsynth/internal/core"
	"mfsynth/internal/place"
	"mfsynth/internal/schedule"
)

func TestRunsToFirstWearout(t *testing.T) {
	m := Model{RatedActuations: 4000}
	if got := m.RunsToFirstWearout([]int{160, 40, 8}); got != 25 {
		t.Errorf("runs = %d, want 4000/160 = 25", got)
	}
	if got := m.RunsToFirstWearout([]int{45}); got != 88 {
		t.Errorf("runs = %d, want 88", got)
	}
	if got := m.RunsToFirstWearout(nil); got != math.MaxInt32 {
		t.Errorf("empty profile should never wear out, got %d", got)
	}
}

func TestDefaultRating(t *testing.T) {
	var m Model
	if m.rated() != DefaultRatedActuations {
		t.Fatalf("rated = %g", m.rated())
	}
	if m.sigma() != DefaultRatedActuations/10 {
		t.Fatalf("sigma = %g", m.sigma())
	}
}

func TestSurvivalProbMonotonic(t *testing.T) {
	m := Model{RatedActuations: 4000}
	counts := []int{160, 80, 40}
	prev := 1.0
	for runs := 1; runs <= 60; runs += 5 {
		p := m.SurvivalProb(counts, runs)
		if p > prev+1e-12 {
			t.Fatalf("survival increased at %d runs: %g > %g", runs, p, prev)
		}
		prev = p
	}
	// Far below the rated life survival is ~1; far above it ~0.
	if p := m.SurvivalProb(counts, 1); p < 0.999 {
		t.Errorf("survival after 1 run = %g", p)
	}
	if p := m.SurvivalProb(counts, 100); p > 0.001 {
		t.Errorf("survival after 100 runs = %g", p)
	}
}

func TestExpectedRunsNearDeterministic(t *testing.T) {
	m := Model{RatedActuations: 4000, Sigma: 40}
	counts := []int{160}
	want := 25.0 // 4000/160
	got := m.ExpectedRuns(counts)
	if math.Abs(got-want) > 2 {
		t.Errorf("ExpectedRuns = %g, want ≈ %g", got, want)
	}
	if !math.IsInf(m.ExpectedRuns(nil), 1) {
		t.Error("empty profile should last forever")
	}
}

func TestBalance(t *testing.T) {
	if b := Balance([]int{40, 40, 40}); b != 1 {
		t.Errorf("uniform balance = %g, want 1", b)
	}
	if b := Balance([]int{80, 8, 8, 8}); b >= 0.5 {
		t.Errorf("skewed balance = %g, want < 0.5", b)
	}
	if b := Balance(nil); b != 1 {
		t.Errorf("empty balance = %g", b)
	}
	if b := Balance([]int{0, 0}); b != 1 {
		t.Errorf("all-zero balance = %g", b)
	}
}

// Property: survival at RunsToFirstWearout/2 is high and balance is in (0,1].
func TestWearProperties(t *testing.T) {
	m := Model{RatedActuations: 4000}
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		counts := make([]int, len(raw))
		any := false
		for i, r := range raw {
			counts[i] = int(r)
			if r > 0 {
				any = true
			}
		}
		if !any {
			return true
		}
		b := Balance(counts)
		if b <= 0 || b > 1 {
			return false
		}
		runs := m.RunsToFirstWearout(counts)
		if runs < 1 {
			return false
		}
		return m.SurvivalProb(counts, runs/2) > 0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The paper's headline: the dynamic-device chip outlives the traditional
// design by roughly the vs_tmax / vs1max ratio.
func TestServiceLifeGainOnPCR(t *testing.T) {
	c := assays.PCR()
	des, err := baseline.Traditional(c, 1, baseline.DefaultCost)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Synthesize(c.Assay, core.Options{
		Policy: schedule.Resources{Mixers: des.Mixers},
		Place:  place.Config{Grid: c.GridSize, Mode: place.Greedy},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := Model{RatedActuations: 4000}

	trad := TraditionalProfile(des, baseline.DefaultCost)
	ours := ChipCounts(res.ChipAt(-1, 1))
	runsTrad := m.RunsToFirstWearout(trad)
	runsOurs := m.RunsToFirstWearout(ours)
	if runsTrad != 4000/des.VsTmax {
		t.Errorf("traditional runs = %d, want %d", runsTrad, 4000/des.VsTmax)
	}
	gain := float64(runsOurs) / float64(runsTrad)
	if gain < 2 {
		t.Errorf("service-life gain = %.2f, want ≥ 2 (paper: ~3.5x on PCR p1)", gain)
	}
	// Wear is much better balanced on the dynamic chip.
	if Balance(ours) <= Balance(trad) {
		t.Errorf("balance ours %.3f ≤ traditional %.3f", Balance(ours), Balance(trad))
	}
}

func TestTraditionalProfileShape(t *testing.T) {
	c := assays.PCR()
	des, err := baseline.Traditional(c, 1, baseline.DefaultCost)
	if err != nil {
		t.Fatal(err)
	}
	prof := TraditionalProfile(des, baseline.DefaultCost)
	if len(prof) == 0 {
		t.Fatal("empty profile")
	}
	// Descending, max = vs_tmax (the most loaded pump valve).
	for i := 1; i < len(prof); i++ {
		if prof[i] > prof[i-1] {
			t.Fatal("profile not descending")
		}
	}
	if prof[0] != des.VsTmax {
		t.Errorf("profile max = %d, want vs_tmax %d", prof[0], des.VsTmax)
	}
}

// TestGridCounts checks the positional counter view agrees with the
// sorted zero-dropped ChipCounts on a real synthesized chip.
func TestGridCounts(t *testing.T) {
	c := assays.PCR()
	res, err := core.Synthesize(c.Assay, core.Options{
		Policy: schedule.Resources{Mixers: map[int]int{8: 2}},
		Place:  place.Config{Grid: c.GridSize, Mode: place.Greedy},
	})
	if err != nil {
		t.Fatal(err)
	}
	chip := res.ChipAt(-1, 1)
	flat := GridCounts(chip)
	if len(flat) != chip.W*chip.H {
		t.Fatalf("len = %d, want %d", len(flat), chip.W*chip.H)
	}
	nonzero := []int{}
	for _, v := range flat {
		if v < 0 {
			t.Fatalf("negative counter %d", v)
		}
		if v > 0 {
			nonzero = append(nonzero, v)
		}
	}
	want := ChipCounts(chip)
	if len(nonzero) != len(want) {
		t.Fatalf("%d nonzero counters, ChipCounts has %d", len(nonzero), len(want))
	}
	// Spot-check positional addressing against the chip accessor.
	if flat[3*chip.W+5] != chip.TotalAt(5, 3) {
		t.Fatalf("positional mismatch at (5,3)")
	}
}

func TestRemainingRuns(t *testing.T) {
	counts := []int{100, 0, 390}
	perRun := []int{10, 0, 40}
	lives := []int{200, 50, 400}
	// Valve 2 has 10 actuations left at 40/run → 0 full runs remain.
	if got := RemainingRuns(counts, perRun, lives); got != 0 {
		t.Errorf("remaining = %d, want 0", got)
	}
	// With valve 2 retired from the profile, valve 0 allows 10 more runs.
	if got := RemainingRuns(counts, []int{10, 0, 0}, lives); got != 10 {
		t.Errorf("remaining = %d, want 10", got)
	}
	// Overrun counters clamp to zero rather than going negative.
	if got := RemainingRuns([]int{500, 0, 0}, []int{10, 0, 0}, lives); got != 0 {
		t.Errorf("overrun remaining = %d, want 0", got)
	}
	// A profile that actuates nothing never wears out.
	if got := RemainingRuns(counts, []int{0, 0, 0}, lives); got != math.MaxInt32 {
		t.Errorf("idle remaining = %d", got)
	}
}
