// Package wear turns actuation counts into lifetime estimates. The paper's
// motivation is that "valves can only be actuated reliably for a few
// thousand times" and "the service life of a biochip might be affected by
// the first worn out valve"; this package quantifies that: given the
// per-valve actuation profile of one assay execution, it computes how many
// times the assay can be repeated before the first valve exceeds its rated
// life, and a probabilistic survival model for the whole chip.
package wear

import (
	"math"
	"sort"

	"mfsynth/internal/arch"
	"mfsynth/internal/baseline"
)

// DefaultRatedActuations is the rated valve life used when a Model leaves
// it zero — "a few thousand times" in the paper, after Minhass et al.
const DefaultRatedActuations = 4000

// Model parameterises valve wear-out.
type Model struct {
	// RatedActuations is the nominal life of one valve in actuations.
	RatedActuations float64
	// Sigma is the standard deviation of the (normally distributed)
	// individual valve life. Zero selects 10% of the rated life.
	Sigma float64
}

func (m Model) rated() float64 {
	if m.RatedActuations <= 0 {
		return DefaultRatedActuations
	}
	return m.RatedActuations
}

func (m Model) sigma() float64 {
	if m.Sigma <= 0 {
		return m.rated() / 10
	}
	return m.Sigma
}

// RunsToFirstWearout returns how many times an assay with the given
// per-valve actuation profile can run before the most-stressed valve
// exceeds its rated life (the deterministic service-life of the chip).
func (m Model) RunsToFirstWearout(counts []int) int {
	max := maxCount(counts)
	if max == 0 {
		return math.MaxInt32
	}
	return int(m.rated()) / max
}

// SurvivalProb returns the probability that every valve survives the given
// number of assay repetitions, with valve lives i.i.d. normal around the
// rated life.
func (m Model) SurvivalProb(counts []int, runs int) float64 {
	p := 1.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		used := float64(c * runs)
		// P(life > used) for life ~ N(rated, sigma).
		z := (used - m.rated()) / (m.sigma() * math.Sqrt2)
		p *= 0.5 * math.Erfc(z)
	}
	return p
}

// ExpectedRuns integrates the survival curve to estimate the mean number
// of complete assay repetitions before the first valve failure.
func (m Model) ExpectedRuns(counts []int) float64 {
	if maxCount(counts) == 0 {
		return math.Inf(1)
	}
	// Survival drops from ~1 to ~0 around RunsToFirstWearout; sum until
	// negligible.
	sum := 0.0
	for runs := 1; ; runs++ {
		s := m.SurvivalProb(counts, runs)
		sum += s
		if s < 1e-6 {
			return sum
		}
	}
}

// Balance returns how evenly the actuations are spread over the used
// valves: mean/max over non-zero counts, in (0, 1]. The valve-role-changing
// concept exists to push this toward 1.
func Balance(counts []int) float64 {
	max, sum, n := 0, 0, 0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		n++
		sum += c
		if c > max {
			max = c
		}
	}
	if n == 0 || max == 0 {
		return 1
	}
	return float64(sum) / float64(n) / float64(max)
}

// ChipCounts flattens a chip's per-valve total actuation counts, dropping
// the never-actuated virtual valves (they are not manufactured).
func ChipCounts(c *arch.Chip) []int {
	var out []int
	for y := 0; y < c.H; y++ {
		for x := 0; x < c.W; x++ {
			if t := c.TotalAt(x, y); t > 0 {
				out = append(out, t)
			}
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// GridCounts flattens a chip's per-valve total actuation counters in
// row-major order (index y·W + x), zeros included — the positional form
// that place.Config.WearPrior and the fleet telemetry counters use
// (ChipCounts is the sorted, zero-dropped view of the same data).
func GridCounts(c *arch.Chip) []int {
	out := make([]int, c.W*c.H)
	for y := 0; y < c.H; y++ {
		for x := 0; x < c.W; x++ {
			out[y*c.W+x] = c.TotalAt(x, y)
		}
	}
	return out
}

// RemainingRuns returns how many more executions of an assay with
// per-valve profile perRun a chip with cumulative counters counts can
// complete before some valve's total exceeds its life in lives (both
// positional, same length as counts; a zero life means the rated default
// is not consulted — pass explicit lives). Returns MaxInt32 when the
// profile actuates nothing.
func RemainingRuns(counts, perRun, lives []int) int {
	remaining := math.MaxInt32
	for i, p := range perRun {
		if p == 0 {
			continue
		}
		left := lives[i] - counts[i]
		if left < 0 {
			left = 0
		}
		if r := left / p; r < remaining {
			remaining = r
		}
	}
	return remaining
}

// TraditionalProfile derives the per-valve actuation profile of one assay
// execution on a traditional design, using the dedicated-mixer model of
// Fig. 2: per bound operation a mixer's 3 pump valves actuate 40 times, its
// 4 inlet/outlet control valves 4 times and its 2 isolation valves twice;
// bus taps see 4 state changes per bound operation, storage cells 4 per
// stored product, port and inlet valves 2 per use.
func TraditionalProfile(d *baseline.Design, cost baseline.CostModel) []int {
	var out []int
	for _, loads := range d.Loads {
		for _, l := range loads {
			if l == 0 {
				continue
			}
			out = append(out,
				40*l, 40*l, 40*l, // pump trio
				4*l, 4*l, 4*l, 4*l, // inlets and outlets
				2*l, 2*l) // ring isolation
			for k := 0; k < cost.TapValves; k++ {
				out = append(out, 4*l)
			}
		}
	}
	for k := 0; k < d.Detectors*cost.DetectorValves; k++ {
		out = append(out, 4)
	}
	for k := 0; k < d.StorageCells; k++ {
		for j := 0; j < cost.StorageCellValves; j++ {
			out = append(out, 4)
		}
	}
	for k := 0; k < cost.Ports*cost.PortValves; k++ {
		out = append(out, 2)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

func maxCount(counts []int) int {
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	return max
}
