package synerr

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestDeadlineWrapsCause(t *testing.T) {
	err := Deadline("route", context.Canceled)
	if !errors.Is(err, ErrDeadline) {
		t.Error("Deadline does not match ErrDeadline")
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("Deadline does not preserve the context cause")
	}
	if got := Phase(err); got != "route" {
		t.Errorf("Phase = %q, want %q", got, "route")
	}

	bare := Deadline("milp", nil)
	if !errors.Is(bare, ErrDeadline) || Phase(bare) != "milp" {
		t.Errorf("Deadline(nil cause) = %v, phase %q", bare, Phase(bare))
	}
}

func TestSentinelsAreDistinct(t *testing.T) {
	inf := Infeasible("place", "no shape fits %dx%d", 3, 3)
	unr := Unroutable("route", "net %s->%s blocked", "a", "b")

	if !errors.Is(inf, ErrInfeasible) || errors.Is(inf, ErrUnroutable) || errors.Is(inf, ErrDeadline) {
		t.Errorf("Infeasible matches the wrong sentinels: %v", inf)
	}
	if !errors.Is(unr, ErrUnroutable) || errors.Is(unr, ErrInfeasible) {
		t.Errorf("Unroutable matches the wrong sentinels: %v", unr)
	}
	if Phase(inf) != "place" || Phase(unr) != "route" {
		t.Errorf("phases: %q, %q", Phase(inf), Phase(unr))
	}
}

func TestPhaseSeesThroughWrapping(t *testing.T) {
	err := fmt.Errorf("outer context: %w", Infeasible("milp", "proven infeasible"))
	if got := Phase(err); got != "milp" {
		t.Errorf("Phase through a %%w wrap = %q, want %q", got, "milp")
	}
	if got := Phase(errors.New("untyped")); got != "" {
		t.Errorf("Phase of an untagged error = %q, want empty", got)
	}

	var pe *PhaseError
	if !errors.As(err, &pe) || pe.Phase != "milp" {
		t.Error("errors.As does not recover the PhaseError")
	}
}
