// Package synerr defines the typed error taxonomy of the synthesis
// pipeline. It sits below every other package (it only imports the standard
// library) so that schedule, place, milp, route and core can all tag their
// failures with the same sentinels without import cycles.
//
// The three sentinels classify how a synthesis attempt ends:
//
//   - ErrInfeasible: the instance admits no solution under the current
//     constraints (no fitting shape, no admissible candidate, ILP proven
//     infeasible). Callers may retry with relaxed constraints.
//   - ErrDeadline: a deadline or context cancellation stopped the work
//     before a verdict. Retrying with the same budget is pointless.
//   - ErrUnroutable: a flow demand cannot be realised on the chip (no
//     channel path between the endpoints). Callers may rip up and retry or
//     degrade to a partial result.
//
// Errors are matched with errors.Is/errors.As; PhaseError carries which
// pipeline phase failed.
package synerr

import (
	"errors"
	"fmt"
)

// Sentinel errors. Wrap them with %w (or via the helpers below) so that
// errors.Is works across package boundaries.
var (
	// ErrInfeasible marks an instance with no solution under the current
	// constraints.
	ErrInfeasible = errors.New("infeasible")
	// ErrDeadline marks work cut short by a deadline or a cancelled
	// context.
	ErrDeadline = errors.New("deadline exceeded or cancelled")
	// ErrUnroutable marks a flow demand with no channel path.
	ErrUnroutable = errors.New("unroutable")
)

// PhaseError tags an error with the pipeline phase that produced it
// ("schedule", "place", "milp", "route", "core"). It unwraps to the cause,
// so errors.Is(err, ErrDeadline) etc. see through it.
type PhaseError struct {
	Phase string
	Err   error
}

func (e *PhaseError) Error() string { return e.Phase + ": " + e.Err.Error() }

func (e *PhaseError) Unwrap() error { return e.Err }

// Deadline wraps cause (typically ctx.Err()) as an ErrDeadline carrying the
// phase. The cause's message is preserved; the result matches both
// ErrDeadline and, via Is on the cause, context.Canceled or
// context.DeadlineExceeded.
func Deadline(phase string, cause error) error {
	if cause == nil {
		return &PhaseError{Phase: phase, Err: ErrDeadline}
	}
	return &PhaseError{Phase: phase, Err: fmt.Errorf("%w: %w", ErrDeadline, cause)}
}

// Infeasible builds an ErrInfeasible-compatible PhaseError with a formatted
// detail message.
func Infeasible(phase, format string, args ...any) error {
	return &PhaseError{Phase: phase, Err: fmt.Errorf("%w: "+format, append([]any{ErrInfeasible}, args...)...)}
}

// Unroutable builds an ErrUnroutable-compatible PhaseError with a formatted
// detail message.
func Unroutable(phase, format string, args ...any) error {
	return &PhaseError{Phase: phase, Err: fmt.Errorf("%w: "+format, append([]any{ErrUnroutable}, args...)...)}
}

// Phase returns the phase recorded on err's PhaseError, or "" if none.
func Phase(err error) string {
	var pe *PhaseError
	if errors.As(err, &pe) {
		return pe.Phase
	}
	return ""
}
