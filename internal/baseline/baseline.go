// Package baseline implements the traditional flow-based biochip designs
// that the paper compares against: dedicated mixers of fixed sizes (4, 6,
// 8, 10), a dedicated storage, optional detectors, and an optimal
// (balanced) binding of operations to mixers. Policies p1, p2, p3 follow
// the paper's construction: "we add one more mixer for each mixer type that
// is under the heaviest loading as the policy index increases".
package baseline

import (
	"fmt"
	"sort"
	"strings"

	"mfsynth/internal/assays"
	"mfsynth/internal/graph"
	"mfsynth/internal/schedule"
)

// PumpActuations is the per-pump-valve actuation count of one mixing
// operation on a dedicated mixer.
const PumpActuations = 40

// DedicatedPumpValves is the number of pump valves in a dedicated mixer
// (Fig. 2 shows 3 of its 9 valves forming the peristaltic pump).
const DedicatedPumpValves = 3

// CostModel counts the valves of a traditional design. The paper does not
// publish its layout recipe, so this model reconstructs one: a dedicated
// mixer of volume V has V+1 valves (the classic 8-volume mixer of Fig. 2
// has 9: 6 control + 3 pump); devices hang off a shared transport bus via
// multiplexer taps; the storage has per-cell gating valves.
type CostModel struct {
	// DetectorValves per dedicated detector.
	DetectorValves int
	// StorageCellValves per storage cell (gate in + gate out).
	StorageCellValves int
	// StorageBaseValves per storage block (bus connection).
	StorageBaseValves int
	// TapValves per device connected to the transport bus (device inlet,
	// outlet, bus multiplexer pair and isolation valve).
	TapValves int
	// PortValves per chip port.
	PortValves int
	// Ports on the chip (two inputs, one output, as in the paper's PCR
	// example).
	Ports int
	// InletValves per distinct reagent input: a dedicated inlet gate on the
	// reagent manifold.
	InletValves int
	// InletBaseValves per reagent manifold.
	InletBaseValves int
}

// DefaultCost is the calibrated cost model used for Table 1; with it the
// twelve traditional #v values land within ~6% of the published numbers.
var DefaultCost = CostModel{
	DetectorValves:    4,
	StorageCellValves: 2,
	StorageBaseValves: 2,
	TapValves:         7,
	PortValves:        2,
	Ports:             3,
	InletValves:       1,
	InletBaseValves:   2,
}

// MixerValves returns the valve count of a dedicated mixer of volume v.
func MixerValves(v int) int { return v + 1 }

// Design is one traditional design evaluated under optimal binding.
type Design struct {
	// Case and PolicyIndex identify the row.
	Case        string
	PolicyIndex int
	// Mixers maps size to instance count (the policy).
	Mixers map[int]int
	// Loads maps size to the per-instance operation loads, descending.
	Loads map[int][]int
	// Detectors is the dedicated detector count.
	Detectors int
	// StorageCells is the dedicated storage size (peak simultaneous
	// products under the policy's schedule).
	StorageCells int
	// NumDevices is the #d column: used mixers plus detectors.
	NumDevices int
	// VsTmax is the largest number of valve actuations under optimal
	// binding: 40 × (heaviest mixer load).
	VsTmax int
	// Valves is the #v column: total valves of the design.
	Valves int
	// Schedule is the policy's scheduling result (reused as the input of
	// the dynamic-device synthesis, as in the paper).
	Schedule *schedule.Result
}

// sizes returns the mixer sizes of the design in ascending order: the
// catalog sizes plus any custom volumes present in the policy or loads.
func (d *Design) sizes() []int {
	set := map[int]bool{}
	for _, s := range assays.MixerSizes {
		set[s] = true
	}
	for s := range d.Mixers {
		set[s] = true
	}
	for s := range d.Loads {
		set[s] = true
	}
	var out []int
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// MixVector renders the #m column, e.g. "1-0-(2,2)-2".
func (d *Design) MixVector() string {
	var parts []string
	for _, size := range d.sizes() {
		loads := d.Loads[size]
		switch len(loads) {
		case 0:
			parts = append(parts, "0")
		case 1:
			parts = append(parts, fmt.Sprintf("%d", loads[0]))
		default:
			strs := make([]string, len(loads))
			for i, l := range loads {
				strs[i] = fmt.Sprintf("%d", l)
			}
			parts = append(parts, "("+strings.Join(strs, ",")+")")
		}
	}
	return strings.Join(parts, "-")
}

// Policies derives the mixer policies p1..pn for a case: p1 is the base
// policy; each successor adds one mixer to every size class at the current
// heaviest loading.
func Policies(c assays.Case, n int) []map[int]int {
	hist := c.Assay.Stats().VolumeHistogram
	cur := map[int]int{}
	for s, m := range c.BaseMixers {
		cur[s] = m
	}
	out := []map[int]int{clone(cur)}
	for len(out) < n {
		maxLoad := 0
		for s, m := range cur {
			if hist[s] == 0 {
				continue
			}
			if l := ceilDiv(hist[s], m); l > maxLoad {
				maxLoad = l
			}
		}
		for s, m := range cur {
			if hist[s] > 0 && ceilDiv(hist[s], m) == maxLoad {
				cur[s] = m + 1
			}
		}
		out = append(out, clone(cur))
	}
	return out
}

// Traditional evaluates the traditional design of the case under the given
// policy (1-based index into Policies).
func Traditional(c assays.Case, policyIdx int, cost CostModel) (*Design, error) {
	if policyIdx < 1 {
		return nil, fmt.Errorf("baseline: policy index %d < 1", policyIdx)
	}
	pol := Policies(c, policyIdx)[policyIdx-1]
	hist := c.Assay.Stats().VolumeHistogram

	res, err := schedule.List(c.Assay, schedule.Options{
		Resources: schedule.Resources{Mixers: pol, Detectors: c.Detectors},
	})
	if err != nil {
		return nil, err
	}

	d := &Design{
		Case:        c.Assay.Name,
		PolicyIndex: policyIdx,
		Mixers:      clone(pol),
		Loads:       map[int][]int{},
		Detectors:   c.Detectors,
		Schedule:    res,
	}
	// Optimal binding: distribute each size's operations as evenly as
	// possible over its instances.
	maxLoad := 0
	usedMixers := 0
	for _, size := range sizeUnion(hist, pol) {
		n, m := hist[size], pol[size]
		if m == 0 || n == 0 {
			if n > 0 {
				return nil, fmt.Errorf("baseline: %d size-%d ops but no mixer", n, size)
			}
			continue
		}
		loads := balancedLoads(n, m)
		d.Loads[size] = loads
		for _, l := range loads {
			if l > 0 {
				usedMixers++
			}
			if l > maxLoad {
				maxLoad = l
			}
		}
	}
	d.VsTmax = PumpActuations * maxLoad
	d.NumDevices = usedMixers + c.Detectors

	_, peak := res.StorageDemand()
	d.StorageCells = peak

	// Valve count of the explicit layout.
	valves := 0
	taps := 0
	for _, size := range d.sizes() {
		for _, l := range d.Loads[size] {
			if l > 0 {
				valves += MixerValves(size)
				taps++
			}
		}
	}
	valves += c.Detectors * cost.DetectorValves
	taps += c.Detectors
	if peak > 0 {
		valves += peak*cost.StorageCellValves + cost.StorageBaseValves
		taps++
	}
	valves += taps * cost.TapValves
	valves += cost.Ports * cost.PortValves
	if inputs := c.Assay.CountKind(graph.Input); inputs > 0 {
		valves += inputs*cost.InletValves + cost.InletBaseValves
	}
	d.Valves = valves
	return d, nil
}

// balancedLoads splits n operations over m instances as evenly as possible,
// descending.
func balancedLoads(n, m int) []int {
	loads := make([]int, m)
	for i := range loads {
		loads[i] = n / m
	}
	for i := 0; i < n%m; i++ {
		loads[i]++
	}
	sort.Sort(sort.Reverse(sort.IntSlice(loads)))
	return loads
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// sizeUnion returns the ascending union of the key sets.
func sizeUnion(a, b map[int]int) []int {
	set := map[int]bool{}
	for s := range a {
		set[s] = true
	}
	for s := range b {
		set[s] = true
	}
	var out []int
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

func clone(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
