package baseline

import (
	"testing"

	"mfsynth/internal/assays"
)

// table1Traditional captures the traditional-design columns of Table 1.
var table1Traditional = []struct {
	name   string
	policy int
	numDev int
	mixVec string
	vsTmax int
	paperV int // #v as published (our layout model approximates this)
}{
	{"PCR", 1, 3, "1-0-4-2", 160, 83},
	{"PCR", 2, 4, "1-0-(2,2)-2", 80, 99},
	{"PCR", 3, 6, "1-0-(2,1,1)-(1,1)", 80, 131},
	{"MixingTree", 1, 4, "2-4-5-7", 280, 108},
	{"MixingTree", 2, 5, "2-4-5-(4,3)", 200, 124},
	{"MixingTree", 3, 6, "2-4-(3,2)-(4,3)", 160, 140},
	{"InterpolatingDilution", 1, 7, "5-9-9-(6,6)", 360, 178},
	{"InterpolatingDilution", 2, 9, "5-(5,4)-(5,4)-(6,6)", 240, 207},
	{"InterpolatingDilution", 3, 10, "5-(5,4)-(5,4)-(4,4,4)", 200, 225},
	{"ExponentialDilution", 1, 10, "6-(8,8)-(7,6)-(6,6)", 320, 241},
	{"ExponentialDilution", 2, 11, "6-(6,5,5)-(7,6)-(6,6)", 280, 254},
	{"ExponentialDilution", 3, 12, "6-(6,5,5)-(5,4,4)-(6,6)", 240, 268},
}

func TestTable1TraditionalColumns(t *testing.T) {
	for _, tt := range table1Traditional {
		c, err := assays.ByName(tt.name)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Traditional(c, tt.policy, DefaultCost)
		if err != nil {
			t.Fatalf("%s p%d: %v", tt.name, tt.policy, err)
		}
		if d.NumDevices != tt.numDev {
			t.Errorf("%s p%d: #d = %d, want %d", tt.name, tt.policy, d.NumDevices, tt.numDev)
		}
		if got := d.MixVector(); got != tt.mixVec {
			t.Errorf("%s p%d: #m = %q, want %q", tt.name, tt.policy, got, tt.mixVec)
		}
		if d.VsTmax != tt.vsTmax {
			t.Errorf("%s p%d: vs_tmax = %d, want %d", tt.name, tt.policy, d.VsTmax, tt.vsTmax)
		}
		// The paper's layout recipe is unpublished; our explicit model must
		// land within 10% of the published valve counts and preserve the
		// ordering p1 < p2 < p3.
		lo, hi := tt.paperV*9/10, tt.paperV*11/10
		if d.Valves < lo || d.Valves > hi {
			t.Errorf("%s p%d: #v = %d, outside %d..%d (paper %d)",
				tt.name, tt.policy, d.Valves, lo, hi, tt.paperV)
		}
	}
}

func TestValvesGrowWithPolicy(t *testing.T) {
	for _, name := range assays.Names() {
		c, _ := assays.ByName(name)
		prev := 0
		for p := 1; p <= 3; p++ {
			d, err := Traditional(c, p, DefaultCost)
			if err != nil {
				t.Fatal(err)
			}
			if d.Valves <= prev {
				t.Errorf("%s: #v did not grow from p%d to p%d (%d -> %d)",
					name, p-1, p, prev, d.Valves)
			}
			prev = d.Valves
		}
	}
}

func TestPoliciesDerivation(t *testing.T) {
	c := assays.PCR()
	pols := Policies(c, 3)
	if len(pols) != 3 {
		t.Fatalf("policies = %d", len(pols))
	}
	// p1: base. p2: size-8 (load 4) gets one more. p3: sizes 8 and 10
	// (both at load 2) each get one more.
	if pols[1][8] != 2 || pols[1][10] != 1 {
		t.Errorf("p2 = %v", pols[1])
	}
	if pols[2][8] != 3 || pols[2][10] != 2 {
		t.Errorf("p3 = %v", pols[2])
	}
	// Sizes without operations never gain mixers.
	if pols[2][6] != 1 {
		t.Errorf("size-6 mixer count grew to %d without ops", pols[2][6])
	}
}

func TestBalancedLoads(t *testing.T) {
	tests := []struct {
		n, m int
		want []int
	}{
		{7, 1, []int{7}},
		{7, 2, []int{4, 3}},
		{16, 2, []int{8, 8}},
		{13, 2, []int{7, 6}},
		{12, 3, []int{4, 4, 4}},
		{2, 3, []int{1, 1, 0}},
	}
	for _, tt := range tests {
		got := balancedLoads(tt.n, tt.m)
		if len(got) != len(tt.want) {
			t.Fatalf("balancedLoads(%d,%d) = %v", tt.n, tt.m, got)
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("balancedLoads(%d,%d) = %v, want %v", tt.n, tt.m, got, tt.want)
				break
			}
		}
	}
}

func TestVsTmaxIsMaxLoadTimes40(t *testing.T) {
	c := assays.MixingTree()
	d, err := Traditional(c, 1, DefaultCost)
	if err != nil {
		t.Fatal(err)
	}
	if d.VsTmax != 7*PumpActuations {
		t.Errorf("vs_tmax = %d, want %d", d.VsTmax, 7*PumpActuations)
	}
}

func TestStorageSized(t *testing.T) {
	c := assays.PCR()
	d, err := Traditional(c, 1, DefaultCost)
	if err != nil {
		t.Fatal(err)
	}
	if d.StorageCells < 1 {
		t.Errorf("StorageCells = %d, want ≥ 1", d.StorageCells)
	}
	if d.Schedule == nil || d.Schedule.Makespan == 0 {
		t.Error("schedule missing")
	}
}

func TestBadPolicyIndex(t *testing.T) {
	if _, err := Traditional(assays.PCR(), 0, DefaultCost); err == nil {
		t.Fatal("policy 0 accepted")
	}
}

func TestMixerValves(t *testing.T) {
	// The classic dedicated mixer of Fig. 2 has 9 valves at volume 8.
	if MixerValves(8) != 9 {
		t.Fatalf("MixerValves(8) = %d, want 9", MixerValves(8))
	}
}
