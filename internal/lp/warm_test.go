package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randomBoxLP builds a random bounded LP that is feasible by construction
// (rows are ≤/≥ constraints anchored at an interior point).
func randomBoxLP(rng *rand.Rand) *Problem {
	p := NewProblem()
	n := 3 + rng.Intn(6)
	m := 2 + rng.Intn(6)
	anchor := make([]float64, n)
	for j := 0; j < n; j++ {
		lo := float64(rng.Intn(5))
		hi := lo + 1 + float64(rng.Intn(9))
		c := float64(rng.Intn(11) - 5)
		p.AddVar("", lo, hi, c)
		anchor[j] = lo + (hi-lo)*rng.Float64()
	}
	for i := 0; i < m; i++ {
		var terms []Term
		lhs := 0.0
		for j := 0; j < n; j++ {
			if rng.Intn(2) == 0 {
				continue
			}
			coef := float64(rng.Intn(7) - 3)
			if coef == 0 {
				continue
			}
			terms = append(terms, Term{Var: Var(j), Coef: coef})
			lhs += coef * anchor[j]
		}
		if len(terms) == 0 {
			continue
		}
		if rng.Intn(2) == 0 {
			p.AddRow(terms, LE, lhs+float64(rng.Intn(4)))
		} else {
			p.AddRow(terms, GE, lhs-float64(rng.Intn(4)))
		}
	}
	return p
}

// TestWarmResolveMatchesCold checks the core warm-start contract: after a
// bound tightening, a dual-simplex re-solve from the parent optimum agrees
// with a from-scratch solve of the tightened problem — same status, and on
// Optimal the same objective.
func TestWarmResolveMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	wa := NewWarmArena()
	tried, warmOK := 0, 0
	for trial := 0; trial < 500; trial++ {
		p := randomBoxLP(rng)
		sol, snap, err := p.SolveScratchRetain(nil, wa)
		if err != nil {
			t.Fatalf("trial %d: root solve: %v", trial, err)
		}
		if sol.Status != Optimal || snap == nil {
			continue
		}
		// Tighten one to three variables the way branching would.
		var deltas []BoundDelta
		sLo, sHi := p.BoundsSnapshot()
		nTight := 1 + rng.Intn(3)
		for k := 0; k < nTight; k++ {
			v := Var(rng.Intn(p.NumVars()))
			lo, hi := p.Bounds(v)
			if hi-lo < 1 {
				continue
			}
			cut := math.Floor(lo + (hi-lo)*rng.Float64())
			if rng.Intn(2) == 0 {
				hi = math.Max(lo, cut)
			} else {
				lo = math.Min(hi, cut+1)
			}
			if lo > hi {
				continue
			}
			p.SetBounds(v, lo, hi)
			deltas = append(deltas, BoundDelta{Var: v, Lo: lo, Hi: hi})
		}
		if len(deltas) == 0 {
			p.RestoreBounds(sLo, sHi)
			wa.Release(snap)
			continue
		}
		tried++

		cold, err := p.SolveScratch(nil)
		if err != nil {
			t.Fatalf("trial %d: cold child solve: %v", trial, err)
		}
		w := NewWarmSolver(p)
		res := w.Resolve(snap, deltas)
		switch res.Status {
		case Optimal:
			if cold.Status != Optimal {
				t.Fatalf("trial %d: warm Optimal obj=%g but cold status %v", trial, res.Obj, cold.Status)
			}
			if math.Abs(res.Obj-cold.Obj) > 1e-6 {
				t.Fatalf("trial %d: warm obj %g != cold obj %g (deltas %v)", trial, res.Obj, cold.Obj, deltas)
			}
			warmOK++
			// A snapshot of the child optimum must itself be a valid parent.
			child := w.Snapshot(wa)
			w2 := NewWarmSolver(p)
			res2 := w2.Resolve(child, nil)
			if res2.Status != Optimal || math.Abs(res2.Obj-cold.Obj) > 1e-6 {
				t.Fatalf("trial %d: re-resolve from child snapshot: status %v obj %g want %g",
					trial, res2.Status, res2.Obj, cold.Obj)
			}
			wa.Release(child)
		case Infeasible:
			if cold.Status != Infeasible {
				t.Fatalf("trial %d: warm Infeasible but cold status %v obj %g", trial, cold.Status, cold.Obj)
			}
		case IterLimit:
			// Allowed: the caller falls back to the cold path.
		default:
			t.Fatalf("trial %d: unexpected warm status %v", trial, res.Status)
		}
		p.RestoreBounds(sLo, sHi)
		wa.Release(snap)
	}
	if tried < 100 {
		t.Fatalf("too few usable trials: %d", tried)
	}
	if warmOK < tried/2 {
		t.Fatalf("warm path succeeded on only %d/%d trials", warmOK, tried)
	}
}

// TestObjectiveFloor checks the row-free bound is valid and exact on a
// model where it is attained.
func TestObjectiveFloor(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", 1, 5, 2)  // cheapest at lower: 2*1
	y := p.AddVar("y", 0, 3, -4) // cheapest at upper: -4*3
	p.AddVar("z", 0, 10, 0)
	p.AddObjOffset(7)
	if got, want := p.ObjectiveFloor(), 7.0+2-12; got != want {
		t.Fatalf("floor = %g, want %g", got, want)
	}
	// The floor must lower-bound the LP optimum of any feasible model.
	p.AddRow([]Term{{x, 1}, {y, 1}}, GE, 4)
	sol, err := p.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("solve: %v %v", sol, err)
	}
	if fl := p.ObjectiveFloor(); fl > sol.Obj+1e-9 {
		t.Fatalf("floor %g exceeds optimum %g", fl, sol.Obj)
	}
	// Unbounded-above negative-cost variable: floor is -Inf.
	q := NewProblem()
	q.AddVar("u", 0, Inf, -1)
	if fl := q.ObjectiveFloor(); !math.IsInf(fl, -1) {
		t.Fatalf("floor = %g, want -Inf", fl)
	}
}
