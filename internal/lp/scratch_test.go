package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randomLP builds a small feasible-ish random LP deterministic in rng.
func randomLP(rng *rand.Rand) *Problem {
	p := NewProblem()
	nv := 3 + rng.Intn(6)
	for v := 0; v < nv; v++ {
		up := Inf
		if rng.Intn(2) == 0 {
			up = float64(1 + rng.Intn(9))
		}
		p.AddVar("x", 0, up, float64(rng.Intn(7))-3)
	}
	nr := 2 + rng.Intn(5)
	for r := 0; r < nr; r++ {
		var terms []Term
		for v := 0; v < nv; v++ {
			if rng.Intn(2) == 0 {
				terms = append(terms, Term{Var: Var(v), Coef: float64(rng.Intn(5)) - 2})
			}
		}
		if len(terms) == 0 {
			terms = append(terms, Term{Var: 0, Coef: 1})
		}
		p.AddRow(terms, Rel(rng.Intn(3)), float64(rng.Intn(12)))
	}
	return p
}

// TestScratchReuseMatchesFresh reuses one arena across many solves of
// differently-sized problems and checks each result against a fresh solve.
func TestScratchReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewScratch()
	for k := 0; k < 200; k++ {
		p := randomLP(rng)
		fresh, err := p.Solve()
		if err != nil {
			t.Fatalf("case %d fresh: %v", k, err)
		}
		reused, err := p.SolveScratch(s)
		if err != nil {
			t.Fatalf("case %d scratch: %v", k, err)
		}
		if fresh.Status != reused.Status {
			t.Fatalf("case %d: status %v vs %v", k, fresh.Status, reused.Status)
		}
		if fresh.Status == Optimal {
			if math.Abs(fresh.Obj-reused.Obj) > 1e-9 {
				t.Fatalf("case %d: obj %g vs %g", k, fresh.Obj, reused.Obj)
			}
			for v := range fresh.X {
				if math.Abs(fresh.X[v]-reused.X[v]) > 1e-9 {
					t.Fatalf("case %d: x[%d] %g vs %g", k, v, fresh.X[v], reused.X[v])
				}
			}
		}
	}
}

// TestCloneIndependentBounds verifies clones solve independently after
// diverging bound changes.
func TestCloneIndependentBounds(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", 0, 10, 1)
	y := p.AddVar("y", 0, 10, 1)
	p.AddRow([]Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, GE, 4)

	q := p.Clone()
	q.SetBounds(x, 3, 10) // force x >= 3 only in the clone

	ps, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	qs, err := q.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if ps.Obj != 4 {
		t.Fatalf("original obj = %g, want 4", ps.Obj)
	}
	if qs.Obj != 4 || qs.X[x] < 3-1e-9 {
		t.Fatalf("clone obj = %g x = %g, want x >= 3", qs.Obj, qs.X[x])
	}
	lo, _ := p.Bounds(x)
	if lo != 0 {
		t.Fatalf("clone bound change leaked into original: lo = %g", lo)
	}
}

// TestBoundsSnapshotRoundTrip exercises snapshot/restore.
func TestBoundsSnapshotRoundTrip(t *testing.T) {
	p := NewProblem()
	v := p.AddVar("x", 1, 5, 1)
	lo, hi := p.BoundsSnapshot()
	p.SetBounds(v, 2, 2)
	p.RestoreBounds(lo, hi)
	l, h := p.Bounds(v)
	if l != 1 || h != 5 {
		t.Fatalf("restored bounds = [%g,%g]", l, h)
	}
}
