package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solve(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return s
}

func wantOptimal(t *testing.T, s *Solution, obj float64) {
	t.Helper()
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	if math.Abs(s.Obj-obj) > 1e-6 {
		t.Fatalf("obj = %g, want %g", s.Obj, obj)
	}
}

func TestTrivialBounds(t *testing.T) {
	// minimize x subject to 2 ≤ x ≤ 5 → x = 2.
	p := NewProblem()
	x := p.AddVar("x", 2, 5, 1)
	s := solve(t, p)
	wantOptimal(t, s, 2)
	if s.Value(x) != 2 {
		t.Fatalf("x = %g", s.Value(x))
	}
}

func TestMaximizeViaNegation(t *testing.T) {
	// maximize x+y s.t. x+y ≤ 4, x ≤ 3, y ≤ 2 → min -(x+y) = -4.
	p := NewProblem()
	x := p.AddVar("x", 0, 3, -1)
	y := p.AddVar("y", 0, 2, -1)
	p.AddRow([]Term{{x, 1}, {y, 1}}, LE, 4)
	s := solve(t, p)
	wantOptimal(t, s, -4)
	if math.Abs(s.Value(x)+s.Value(y)-4) > 1e-7 {
		t.Fatalf("x+y = %g", s.Value(x)+s.Value(y))
	}
}

func TestClassicDiet(t *testing.T) {
	// minimize 3x + 2y s.t. x + y ≥ 4, x + 3y ≥ 6, x,y ≥ 0.
	// Optimum at (3,1): obj 11? Check corners: (4,0):12, (0,4):8!, wait
	// (0,4): x+3y=12 ≥ 6 ok, x+y=4 ok, obj 8. (0,2): x+y=2 <4 no.
	// Intersection x+y=4, x+3y=6 → y=1, x=3, obj 11. So optimum is (0,4)=8.
	p := NewProblem()
	x := p.AddVar("x", 0, Inf, 3)
	y := p.AddVar("y", 0, Inf, 2)
	p.AddRow([]Term{{x, 1}, {y, 1}}, GE, 4)
	p.AddRow([]Term{{x, 1}, {y, 3}}, GE, 6)
	s := solve(t, p)
	wantOptimal(t, s, 8)
	if math.Abs(s.Value(y)-4) > 1e-7 || math.Abs(s.Value(x)) > 1e-7 {
		t.Fatalf("solution = (%g,%g), want (0,4)", s.Value(x), s.Value(y))
	}
}

func TestEqualityRows(t *testing.T) {
	// minimize x + 2y s.t. x + y = 10, x - y = 4 → x=7, y=3, obj 13.
	p := NewProblem()
	x := p.AddVar("x", 0, Inf, 1)
	y := p.AddVar("y", 0, Inf, 2)
	p.AddRow([]Term{{x, 1}, {y, 1}}, EQ, 10)
	p.AddRow([]Term{{x, 1}, {y, -1}}, EQ, 4)
	s := solve(t, p)
	wantOptimal(t, s, 13)
	if math.Abs(s.Value(x)-7) > 1e-7 || math.Abs(s.Value(y)-3) > 1e-7 {
		t.Fatalf("solution = (%g,%g)", s.Value(x), s.Value(y))
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", 0, 1, 1)
	p.AddRow([]Term{{x, 1}}, GE, 2)
	s := solve(t, p)
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestInfeasibleEqualities(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", 0, Inf, 0)
	y := p.AddVar("y", 0, Inf, 0)
	p.AddRow([]Term{{x, 1}, {y, 1}}, EQ, 1)
	p.AddRow([]Term{{x, 1}, {y, 1}}, EQ, 2)
	s := solve(t, p)
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", 0, Inf, -1)
	y := p.AddVar("y", 0, Inf, 0)
	p.AddRow([]Term{{x, 1}, {y, -1}}, LE, 1)
	s := solve(t, p)
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestNegativeLowerBounds(t *testing.T) {
	// minimize x + y with x ∈ [-5, 5], y ∈ [-2, ∞), x + y ≥ -4 → (-5,1)?
	// x+y ≥ -4 binds: best x=-5 → y ≥ 1... but y ≥ -2 and x+y ≥ -4 →
	// optimum x=-5,y=1 obj -4? Or x=-2,y=-2 obj -4. Objective equals -4
	// anywhere on the binding line; min is -4.
	p := NewProblem()
	x := p.AddVar("x", -5, 5, 1)
	y := p.AddVar("y", -2, Inf, 1)
	p.AddRow([]Term{{x, 1}, {y, 1}}, GE, -4)
	s := solve(t, p)
	wantOptimal(t, s, -4)
	if s.Value(x) < -5-1e-9 || s.Value(y) < -2-1e-9 {
		t.Fatalf("bounds violated: (%g,%g)", s.Value(x), s.Value(y))
	}
}

func TestUpperBoundFlips(t *testing.T) {
	// maximize 2x + y with x ≤ 1, y ≤ 1 and x + y ≤ 1.5 → x=1, y=0.5.
	p := NewProblem()
	x := p.AddVar("x", 0, 1, -2)
	y := p.AddVar("y", 0, 1, -1)
	p.AddRow([]Term{{x, 1}, {y, 1}}, LE, 1.5)
	s := solve(t, p)
	wantOptimal(t, s, -2.5)
	if math.Abs(s.Value(x)-1) > 1e-7 || math.Abs(s.Value(y)-0.5) > 1e-7 {
		t.Fatalf("solution = (%g,%g)", s.Value(x), s.Value(y))
	}
}

func TestDuplicateTermsSummed(t *testing.T) {
	// x + x ≤ 4 must behave as 2x ≤ 4.
	p := NewProblem()
	x := p.AddVar("x", 0, Inf, -1)
	p.AddRow([]Term{{x, 1}, {x, 1}}, LE, 4)
	s := solve(t, p)
	wantOptimal(t, s, -2)
}

func TestObjOffset(t *testing.T) {
	p := NewProblem()
	p.AddVar("x", 1, 1, 2)
	p.AddObjOffset(10)
	s := solve(t, p)
	wantOptimal(t, s, 12)
}

func TestDegenerate(t *testing.T) {
	// Several redundant constraints through one vertex.
	p := NewProblem()
	x := p.AddVar("x", 0, Inf, -1)
	y := p.AddVar("y", 0, Inf, -1)
	p.AddRow([]Term{{x, 1}}, LE, 1)
	p.AddRow([]Term{{y, 1}}, LE, 1)
	p.AddRow([]Term{{x, 1}, {y, 1}}, LE, 2)
	p.AddRow([]Term{{x, 2}, {y, 2}}, LE, 4)
	s := solve(t, p)
	wantOptimal(t, s, -2)
}

func TestRedundantEqualities(t *testing.T) {
	// Duplicate equality rows force a redundant artificial row.
	p := NewProblem()
	x := p.AddVar("x", 0, Inf, 1)
	y := p.AddVar("y", 0, Inf, 1)
	p.AddRow([]Term{{x, 1}, {y, 1}}, EQ, 5)
	p.AddRow([]Term{{x, 2}, {y, 2}}, EQ, 10)
	s := solve(t, p)
	wantOptimal(t, s, 5)
}

func TestBigMDisjunctionShape(t *testing.T) {
	// The non-overlap pattern used by the mapper: with c binary relaxed,
	// b1r ≤ b2l + c*M. Fix c=0 and check the row binds.
	const M = 100
	p := NewProblem()
	b1r := p.AddVar("b1r", 0, 10, 0)
	b2l := p.AddVar("b2l", 0, 10, -1) // maximize b2l
	c := p.AddVar("c", 0, 0, 0)       // fixed to 0
	p.AddRow([]Term{{b1r, 1}, {b2l, -1}, {c, -M}}, LE, 0)
	p.AddRow([]Term{{b1r, 1}}, GE, 4) // b1r ≥ 4 → b2l can grow to 10? b2l ≥ b1r? no:
	// b1r ≤ b2l → b2l ≥ 4; maximize b2l hits its bound 10.
	s := solve(t, p)
	wantOptimal(t, s, -10)
	if s.Value(b2l) < s.Value(b1r)-1e-7 {
		t.Fatalf("disjunction violated: b1r=%g b2l=%g", s.Value(b1r), s.Value(b2l))
	}
}

func TestAssignmentLP(t *testing.T) {
	// 3×3 assignment problem; LP relaxation of assignment is integral.
	cost := [3][3]float64{{4, 1, 3}, {2, 0, 5}, {3, 2, 2}}
	p := NewProblem()
	var v [3][3]Var
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			v[i][j] = p.AddVar("x", 0, 1, cost[i][j])
		}
	}
	for i := 0; i < 3; i++ {
		row := []Term{{v[i][0], 1}, {v[i][1], 1}, {v[i][2], 1}}
		p.AddRow(row, EQ, 1)
		col := []Term{{v[0][i], 1}, {v[1][i], 1}, {v[2][i], 1}}
		p.AddRow(col, EQ, 1)
	}
	s := solve(t, p)
	// Optimal assignment: (0,1)+(1,0)+(2,2) = 1+2+2 = 5.
	wantOptimal(t, s, 5)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			x := s.Value(v[i][j])
			if math.Abs(x) > 1e-6 && math.Abs(x-1) > 1e-6 {
				t.Fatalf("fractional assignment x[%d][%d]=%g", i, j, x)
			}
		}
	}
}

func TestMinimaxPattern(t *testing.T) {
	// The mapper's core objective: minimize w with v_k ≤ w where v are
	// fixed by equalities; w must equal max(v).
	p := NewProblem()
	w := p.AddVar("w", 0, Inf, 1)
	vals := []float64{3, 9, 6}
	for _, val := range vals {
		v := p.AddVar("v", 0, Inf, 0)
		p.AddRow([]Term{{v, 1}}, EQ, val)
		p.AddRow([]Term{{v, 1}, {w, -1}}, LE, 0)
	}
	s := solve(t, p)
	wantOptimal(t, s, 9)
}

func TestIterLimit(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", 0, Inf, -1)
	y := p.AddVar("y", 0, Inf, -2)
	p.AddRow([]Term{{x, 1}, {y, 1}}, LE, 10)
	p.AddRow([]Term{{x, 1}, {y, 3}}, LE, 20)
	p.SetIterLimit(1)
	s := solve(t, p)
	if s.Status != IterLimit && s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
}

func TestBadModelRejected(t *testing.T) {
	p := NewProblem()
	p.AddRow([]Term{{Var(3), 1}}, LE, 1) // unknown variable
	if _, err := p.Solve(); err == nil {
		t.Fatal("Solve accepted row with unknown variable")
	}
}

func TestAddVarPanics(t *testing.T) {
	p := NewProblem()
	t.Run("infinite lower", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		p.AddVar("x", math.Inf(-1), 0, 0)
	})
	t.Run("crossed bounds", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic")
			}
		}()
		p.AddVar("x", 2, 1, 0)
	})
}

// Property: for random feasible-by-construction problems min c·x subject to
// A·x ≤ A·x₀ (x₀ a random point within bounds), the solver must return
// Optimal with obj ≤ c·x₀ and a feasible x.
func TestRandomFeasibleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		n := 2 + r.Intn(6)
		m := 1 + r.Intn(6)
		p := NewProblem()
		x0 := make([]float64, n)
		vars := make([]Var, n)
		c := make([]float64, n)
		for j := 0; j < n; j++ {
			lo := float64(r.Intn(5)) - 2
			hi := lo + float64(1+r.Intn(6))
			c[j] = float64(r.Intn(11) - 5)
			vars[j] = p.AddVar("x", lo, hi, c[j])
			x0[j] = lo + r.Float64()*(hi-lo)
		}
		rows := make([][]float64, m)
		for i := 0; i < m; i++ {
			rows[i] = make([]float64, n)
			var terms []Term
			rhs := 0.0
			for j := 0; j < n; j++ {
				a := float64(r.Intn(7) - 3)
				rows[i][j] = a
				if a != 0 {
					terms = append(terms, Term{vars[j], a})
				}
				rhs += a * x0[j]
			}
			if len(terms) == 0 {
				continue
			}
			p.AddRow(terms, LE, rhs+0.001)
		}
		s, err := p.Solve()
		if err != nil || s.Status != Optimal {
			t.Logf("seed %d: status %v err %v", seed, s.Status, err)
			return false
		}
		objAt := func(x []float64) float64 {
			v := 0.0
			for j := range x {
				v += c[j] * x[j]
			}
			return v
		}
		if s.Obj > objAt(x0)+1e-6 {
			t.Logf("seed %d: obj %g worse than feasible %g", seed, s.Obj, objAt(x0))
			return false
		}
		// Feasibility of the returned point.
		for j, v := range vars {
			lo, hi := p.Bounds(v)
			if s.X[j] < lo-1e-6 || s.X[j] > hi+1e-6 {
				t.Logf("seed %d: bound violated", seed)
				return false
			}
		}
		for i := range rows {
			lhs, rhs := 0.0, 0.0
			for j := range rows[i] {
				lhs += rows[i][j] * s.X[j]
				rhs += rows[i][j] * x0[j]
			}
			if lhs > rhs+0.001+1e-5 {
				t.Logf("seed %d: row %d violated: %g > %g", seed, i, lhs, rhs)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding a redundant constraint never changes the optimum.
func TestRedundantRowInvariance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := NewProblem()
		x := p.AddVar("x", 0, 10, float64(1+r.Intn(5)))
		y := p.AddVar("y", 0, 10, float64(1+r.Intn(5)))
		p.AddRow([]Term{{x, 1}, {y, 1}}, GE, float64(2+r.Intn(8)))
		s1, err := p.Solve()
		if err != nil || s1.Status != Optimal {
			return false
		}
		p.AddRow([]Term{{x, 1}, {y, 1}}, LE, 1000) // redundant
		s2, err := p.Solve()
		if err != nil || s2.Status != Optimal {
			return false
		}
		return math.Abs(s1.Obj-s2.Obj) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// buildMediumLP returns a 40×80 random-ish LP, representative of a
// rolling-horizon node.
func buildMediumLP() *Problem {
	r := rand.New(rand.NewSource(7))
	p := NewProblem()
	n, m := 80, 40
	vars := make([]Var, n)
	for j := 0; j < n; j++ {
		vars[j] = p.AddVar("x", 0, 1, r.Float64()-0.3)
	}
	for i := 0; i < m; i++ {
		var terms []Term
		for j := 0; j < n; j++ {
			if r.Intn(4) == 0 {
				terms = append(terms, Term{vars[j], float64(1 + r.Intn(3))})
			}
		}
		if terms != nil {
			p.AddRow(terms, LE, float64(3+r.Intn(5)))
		}
	}
	return p
}

func BenchmarkSimplexMedium(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := buildMediumLP()
		s, err := p.Solve()
		if err != nil || s.Status != Optimal {
			b.Fatalf("status %v err %v", s.Status, err)
		}
	}
}

// BenchmarkSimplexMediumScratch is the branch-and-bound node profile: the
// problem is built once and re-solved with a reused tableau arena, the way
// each solver worker re-solves LP relaxations across nodes.
func BenchmarkSimplexMediumScratch(b *testing.B) {
	p := buildMediumLP()
	scratch := NewScratch()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := p.SolveScratch(scratch)
		if err != nil || s.Status != Optimal {
			b.Fatalf("status %v err %v", s.Status, err)
		}
	}
}
