package lp

import (
	"math"
	"testing"
)

// Klee-Minty cube: the classic worst case for Dantzig's rule. For
//
//	maximize Σ_j 2^(n-j) x_j
//	s.t.     2 Σ_{j<i} 2^(i-j) x_j + x_i ≤ 5^i   (i = 1..n)
//
// the optimum is 5^n with x_n = 5^n and all other x_j = 0. The solver must
// get the right answer even if it visits many vertices.
func TestKleeMinty(t *testing.T) {
	for _, n := range []int{3, 5, 7} {
		p := NewProblem()
		xs := make([]Var, n+1)
		for j := 1; j <= n; j++ {
			xs[j] = p.AddVar("x", 0, Inf, -math.Pow(2, float64(n-j)))
		}
		for i := 1; i <= n; i++ {
			var terms []Term
			for j := 1; j < i; j++ {
				terms = append(terms, Term{xs[j], 2 * math.Pow(2, float64(i-j))})
			}
			terms = append(terms, Term{xs[i], 1})
			p.AddRow(terms, LE, math.Pow(5, float64(i)))
		}
		s := solve(t, p)
		want := -math.Pow(5, float64(n))
		if s.Status != Optimal || math.Abs(s.Obj-want)/math.Abs(want) > 1e-9 {
			t.Errorf("n=%d: status %v obj %g, want %g", n, s.Status, s.Obj, want)
		}
		if math.Abs(s.Value(xs[n])-math.Pow(5, float64(n))) > 1e-6*math.Pow(5, float64(n)) {
			t.Errorf("n=%d: x_n = %g", n, s.Value(xs[n]))
		}
	}
}

// A cycling-prone degenerate LP (Beale's example); Bland's fallback must
// terminate with the optimum -1/20... Beale: min -3/4x4 +150x5 -1/50x6 +6x7
// s.t. 1/4x4 -60x5 -1/25x6 +9x7 ≤ 0; 1/2x4 -90x5 -1/50x6 +3x7 ≤ 0; x6 ≤ 1.
// Optimum -1/20.
func TestBealeCycling(t *testing.T) {
	p := NewProblem()
	x4 := p.AddVar("x4", 0, Inf, -0.75)
	x5 := p.AddVar("x5", 0, Inf, 150)
	x6 := p.AddVar("x6", 0, Inf, -0.02)
	x7 := p.AddVar("x7", 0, Inf, 6)
	p.AddRow([]Term{{x4, 0.25}, {x5, -60}, {x6, -0.04}, {x7, 9}}, LE, 0)
	p.AddRow([]Term{{x4, 0.5}, {x5, -90}, {x6, -0.02}, {x7, 3}}, LE, 0)
	p.AddRow([]Term{{x6, 1}}, LE, 1)
	s := solve(t, p)
	if s.Status != Optimal || math.Abs(s.Obj-(-0.05)) > 1e-9 {
		t.Fatalf("status %v obj %g, want -0.05", s.Status, s.Obj)
	}
}
