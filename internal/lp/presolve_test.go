package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPresolveFixedVariableSubstitution(t *testing.T) {
	// min x + 2y with y fixed to 3 and x + y ≥ 5 → x = 2, obj 8.
	p := NewProblem()
	x := p.AddVar("x", 0, Inf, 1)
	y := p.AddVar("y", 3, 3, 2)
	p.AddRow([]Term{{x, 1}, {y, 1}}, GE, 5)
	s := solve(t, p)
	wantOptimal(t, s, 8)
	if math.Abs(s.Value(x)-2) > 1e-7 || s.Value(y) != 3 {
		t.Fatalf("solution = (%g, %g)", s.Value(x), s.Value(y))
	}
}

func TestPresolveAllFixed(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", 2, 2, 3)
	y := p.AddVar("y", -1, -1, 1)
	p.AddRow([]Term{{x, 1}, {y, 1}}, LE, 2)
	s := solve(t, p)
	wantOptimal(t, s, 5)
	if s.Value(x) != 2 || s.Value(y) != -1 {
		t.Fatalf("solution = (%g, %g)", s.Value(x), s.Value(y))
	}
}

func TestPresolveAllFixedInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", 2, 2, 0)
	p.AddRow([]Term{{x, 1}}, GE, 3)
	s := solve(t, p)
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestPresolveConstantRowKinds(t *testing.T) {
	for _, tt := range []struct {
		rel  Rel
		rhs  float64
		want Status
	}{
		{LE, 1, Optimal}, {LE, -1, Infeasible},
		{GE, -1, Optimal}, {GE, 1, Infeasible},
		{EQ, 0, Optimal}, {EQ, 1, Infeasible},
	} {
		p := NewProblem()
		x := p.AddVar("x", 0, 0, 0)
		free := p.AddVar("free", 0, 1, -1)
		_ = free
		p.AddRow([]Term{{x, 1}}, tt.rel, tt.rhs)
		s := solve(t, p)
		if s.Status != tt.want {
			t.Errorf("rel %v rhs %g: status %v, want %v", tt.rel, tt.rhs, s.Status, tt.want)
		}
	}
}

func TestPresolveObjectiveOffsetInteraction(t *testing.T) {
	p := NewProblem()
	p.AddObjOffset(10)
	x := p.AddVar("x", 4, 4, 2) // contributes 8
	y := p.AddVar("y", 0, 5, 1)
	p.AddRow([]Term{{x, 1}, {y, 1}}, GE, 6) // y ≥ 2
	s := solve(t, p)
	wantOptimal(t, s, 20) // 10 + 8 + 2
}

// Property: fixing a variable at its optimal value must not change the
// optimum; presolve then solves a smaller problem with the same answer.
func TestPresolveEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := NewProblem()
		n := 3 + r.Intn(4)
		vars := make([]Var, n)
		for i := range vars {
			vars[i] = p.AddVar("x", 0, float64(1+r.Intn(5)), float64(r.Intn(7)-3))
		}
		for k := 0; k < 2+r.Intn(3); k++ {
			var terms []Term
			for _, v := range vars {
				if r.Intn(2) == 0 {
					terms = append(terms, Term{v, float64(1 + r.Intn(3))})
				}
			}
			if terms != nil {
				p.AddRow(terms, LE, float64(2+r.Intn(9)))
			}
		}
		s1, err := p.Solve()
		if err != nil || s1.Status != Optimal {
			return true // nothing to compare
		}
		// Fix the first variable at its optimal value and re-solve.
		lo, hi := p.Bounds(vars[0])
		p.SetBounds(vars[0], s1.Value(vars[0]), s1.Value(vars[0]))
		s2, err := p.Solve()
		p.SetBounds(vars[0], lo, hi)
		if err != nil || s2.Status != Optimal {
			return false
		}
		return math.Abs(s1.Obj-s2.Obj) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestPresolveReducesSize(t *testing.T) {
	p := NewProblem()
	var vars []Var
	for i := 0; i < 10; i++ {
		hi := 1.0
		if i%2 == 0 {
			hi = 0 // fixed to zero
		}
		vars = append(vars, p.AddVar("x", 0, hi, 1))
	}
	var terms []Term
	for _, v := range vars {
		terms = append(terms, Term{v, 1})
	}
	p.AddRow(terms, GE, 2)
	pr := p.reduce()
	if pr.reduced.NumVars() != 5 {
		t.Fatalf("reduced to %d vars, want 5", pr.reduced.NumVars())
	}
	s := solve(t, p)
	wantOptimal(t, s, 2)
}
