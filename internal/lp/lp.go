// Package lp implements a linear-programming solver: a dense two-phase
// primal simplex with bounded variables (nonbasic variables may rest at
// their lower or upper bound) and a Bland anti-cycling fallback.
//
// It is the foundation of the MILP solver in internal/milp, which together
// replace the commercial ILP solver (Gurobi) used by the paper. The solver
// is deliberately dense and allocation-friendly: the dynamic-device mapping
// models it has to carry are a few hundred rows by a few thousand columns.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Rel is a row relation.
type Rel int

// Row relations.
const (
	LE Rel = iota // Σ aᵢxᵢ ≤ b
	GE            // Σ aᵢxᵢ ≥ b
	EQ            // Σ aᵢxᵢ = b
)

// String returns the relation symbol.
func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("rel(%d)", int(r))
	}
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Inf is the upper bound meaning "no upper bound".
var Inf = math.Inf(1)

// Var is a variable handle (an index into the problem's variables).
type Var int

// Term is one coefficient of a linear row.
type Term struct {
	Var  Var
	Coef float64
}

// Problem is an LP in the form
//
//	minimize   c·x
//	subject to Σ aᵢxᵢ {≤,=,≥} b   per row
//	           l ≤ x ≤ u          per variable (l finite, u may be +Inf)
type Problem struct {
	obj    []float64
	lower  []float64
	upper  []float64
	names  []string
	rows   [][]Term
	rels   []Rel
	rhs    []float64
	maxIt  int
	objOff float64
}

// NewProblem returns an empty minimisation problem.
func NewProblem() *Problem { return &Problem{} }

// SetIterLimit bounds the total number of simplex pivots (0 = automatic).
func (p *Problem) SetIterLimit(n int) { p.maxIt = n }

// AddVar adds a variable with bounds [lower, upper] and objective
// coefficient obj. lower must be finite; upper may be lp.Inf.
func (p *Problem) AddVar(name string, lower, upper, obj float64) Var {
	if math.IsInf(lower, 0) || math.IsNaN(lower) {
		panic(fmt.Sprintf("lp: variable %q needs a finite lower bound", name))
	}
	if upper < lower {
		panic(fmt.Sprintf("lp: variable %q has upper %g < lower %g", name, upper, lower))
	}
	p.obj = append(p.obj, obj)
	p.lower = append(p.lower, lower)
	p.upper = append(p.upper, upper)
	p.names = append(p.names, name)
	return Var(len(p.obj) - 1)
}

// AddBinary adds a {0,1}-bounded variable (continuous here; the MILP layer
// enforces integrality).
func (p *Problem) AddBinary(name string, obj float64) Var {
	return p.AddVar(name, 0, 1, obj)
}

// SetObj overwrites the objective coefficient of v.
func (p *Problem) SetObj(v Var, c float64) { p.obj[v] = c }

// ObjCoef returns the objective coefficient of v.
func (p *Problem) ObjCoef(v Var) float64 { return p.obj[v] }

// AddObjOffset adds a constant to the objective value.
func (p *Problem) AddObjOffset(c float64) { p.objOff += c }

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return len(p.obj) }

// NumRows returns the number of constraint rows.
func (p *Problem) NumRows() int { return len(p.rows) }

// Name returns the name of v.
func (p *Problem) Name(v Var) string { return p.names[v] }

// Bounds returns the bounds of v.
func (p *Problem) Bounds(v Var) (lower, upper float64) { return p.lower[v], p.upper[v] }

// SetBounds changes the bounds of v (used by branch & bound).
func (p *Problem) SetBounds(v Var, lower, upper float64) {
	p.lower[v], p.upper[v] = lower, upper
}

// Clone returns a Problem that shares the (immutable during solving)
// structure — rows, objective, names — with p but owns private copies of
// the bound vectors. Clones exist so branch-and-bound workers can apply
// node-specific bounds and solve concurrently; structural edits (AddVar,
// AddRow, SetObj) after cloning are not supported on either copy.
func (p *Problem) Clone() *Problem {
	q := *p
	q.lower = append([]float64(nil), p.lower...)
	q.upper = append([]float64(nil), p.upper...)
	return &q
}

// BoundsSnapshot returns copies of the full lower and upper bound vectors.
func (p *Problem) BoundsSnapshot() (lower, upper []float64) {
	return append([]float64(nil), p.lower...), append([]float64(nil), p.upper...)
}

// RestoreBounds overwrites every variable's bounds from vectors previously
// produced by BoundsSnapshot.
func (p *Problem) RestoreBounds(lower, upper []float64) {
	copy(p.lower, lower)
	copy(p.upper, upper)
}

// AddRow adds the constraint Σ terms {rel} rhs. Terms may repeat a variable;
// coefficients are summed.
func (p *Problem) AddRow(terms []Term, rel Rel, rhs float64) {
	own := make([]Term, len(terms))
	copy(own, terms)
	p.rows = append(p.rows, own)
	p.rels = append(p.rels, rel)
	p.rhs = append(p.rhs, rhs)
}

// Solution is the result of a successful solve.
type Solution struct {
	Status Status
	// Obj is the objective value (including any offset).
	Obj float64
	// X holds the variable values.
	X []float64
	// Iters is the number of simplex pivots performed.
	Iters int
}

// Value returns the value of v.
func (s *Solution) Value(v Var) float64 { return s.X[v] }

const (
	epsCost  = 1e-9 // reduced-cost optimality tolerance
	epsPivot = 1e-8 // minimum pivot magnitude
	epsFeas  = 1e-7 // feasibility tolerance (phase-1 residual)
)

// ErrBadModel reports a structurally unusable model.
var ErrBadModel = errors.New("lp: bad model")

// Solve runs presolve followed by two-phase bounded simplex. The problem
// is not modified. The returned solution has Status Optimal, Infeasible,
// Unbounded or IterLimit; X is only meaningful for Optimal.
func (p *Problem) Solve() (*Solution, error) { return p.SolvePresolved() }

// tableau is the dense working form. All structural variables are shifted so
// their lower bound is 0; nonbasic variables rest at value 0 ("low") or at
// their (shifted) upper bound.
type tableau struct {
	p *Problem

	m, n   int // rows, total columns (structural + slack + artificial)
	nStru  int
	nSlack int

	a     [][]float64 // m × n constraint matrix, updated in place by pivots
	b     []float64   // m basic values
	upper []float64   // n column upper bounds (shifted); Inf allowed
	cost2 []float64   // phase-2 reduced costs, length n
	cost1 []float64   // phase-1 reduced costs, length n
	z1    float64     // phase-1 objective (sum of artificial values)
	z2    float64     // phase-2 objective (shifted)

	basis   []int  // basis[i] = column basic in row i
	inBasis []bool // per column
	atUpper []bool // per nonbasic column
	artBase int    // first artificial column
	iters   int
	maxIt   int
}

func newTableau(p *Problem, scratch *Scratch) (*tableau, error) {
	m := len(p.rows)
	nStru := len(p.obj)
	// Count slacks: one per LE/GE row.
	nSlack := 0
	for _, r := range p.rels {
		if r != EQ {
			nSlack++
		}
	}
	n := nStru + nSlack + m // artificials allocated per row; unused ones get upper bound 0
	if scratch != nil {
		scratch.begin(m, n)
	}
	t := &tableau{
		p: p, m: m, n: n, nStru: nStru, nSlack: nSlack,
		a:       scratch.matrix(m, n),
		b:       scratch.floats(m),
		upper:   scratch.floats(n),
		cost2:   scratch.floats(n),
		cost1:   scratch.floats(n),
		basis:   scratch.intSlice(m),
		inBasis: scratch.boolSlice(n),
		atUpper: scratch.boolSlice(n),
		artBase: nStru + nSlack,
		maxIt:   p.maxIt,
	}
	if t.maxIt == 0 {
		t.maxIt = 2000 * (m + n + 10)
	}
	for j := 0; j < nStru; j++ {
		t.upper[j] = p.upper[j] - p.lower[j]
		t.cost2[j] = p.obj[j]
	}

	// Build rows: shift structurals, add slacks, normalise rhs ≥ 0, add
	// artificials where the slack cannot serve as the initial basic var.
	slack := nStru
	for i := 0; i < m; i++ {
		row := t.a[i] // zeroed by the arena (or fresh)
		for _, term := range p.rows[i] {
			if int(term.Var) < 0 || int(term.Var) >= nStru {
				return nil, fmt.Errorf("%w: row %d references unknown variable %d", ErrBadModel, i, term.Var)
			}
			row[term.Var] += term.Coef
		}
		rhs := p.rhs[i]
		for j := 0; j < nStru; j++ {
			rhs -= row[j] * p.lower[j]
		}
		sCol := -1
		switch p.rels[i] {
		case LE:
			sCol = slack
			row[sCol] = 1
			t.upper[sCol] = Inf
			slack++
		case GE:
			sCol = slack
			row[sCol] = -1
			t.upper[sCol] = Inf
			slack++
		case EQ:
			// no slack
		default:
			return nil, fmt.Errorf("%w: row %d has unknown relation", ErrBadModel, i)
		}
		if rhs < 0 {
			for j := range row {
				row[j] = -row[j]
			}
			rhs = -rhs
		}
		t.a[i] = row
		t.b[i] = rhs

		if sCol >= 0 && row[sCol] > 0 {
			// Slack has +1 after normalisation: use it as the basic var.
			t.basis[i] = sCol
			t.inBasis[sCol] = true
			t.upper[t.artBase+i] = 0 // artificial unused
		} else {
			art := t.artBase + i
			t.a[i][art] = 1
			t.upper[art] = Inf
			t.cost1[art] = 1
			t.basis[i] = art
			t.inBasis[art] = true
		}
	}

	// Initial reduced costs: subtract basic-cost multiples of rows. Only
	// artificials carry phase-1 cost, and they start with identity columns,
	// so d1_j = -Σ over artificial-basic rows of a[i][j].
	for i := 0; i < m; i++ {
		if t.basis[i] >= t.artBase {
			for j := 0; j < t.n; j++ {
				t.cost1[j] -= t.a[i][j]
			}
			t.z1 += t.b[i]
		}
	}
	// cost1 of the basic artificials themselves becomes 0 (1 - 1).
	return t, nil
}

// solve runs phase 1 then phase 2.
func (t *tableau) solve() (*Solution, error) {
	// Phase 1: minimise artificial sum.
	if t.z1 > epsFeas {
		st := t.iterate(true)
		if st == IterLimit {
			return &Solution{Status: IterLimit, Iters: t.iters}, nil
		}
		if t.z1 > epsFeas {
			return &Solution{Status: Infeasible, Iters: t.iters}, nil
		}
	}
	t.expelArtificials()

	st := t.iterate(false)
	if st != Optimal {
		return &Solution{Status: st, Iters: t.iters}, nil
	}
	return t.extract(), nil
}

// iterate runs simplex pivots on the phase-1 (phase1=true) or phase-2
// reduced costs until optimal, unbounded or the iteration limit.
func (t *tableau) iterate(phase1 bool) Status {
	stall := 0
	lastZ := math.Inf(1)
	for {
		if t.iters >= t.maxIt {
			return IterLimit
		}
		cost := t.cost2
		if phase1 {
			cost = t.cost1
		}
		bland := stall > 2*(t.m+10)
		j, dir := t.chooseEntering(cost, phase1, bland)
		if j < 0 {
			return Optimal
		}
		leave, tMax, flip := t.ratioTest(j, dir)
		if leave < 0 && !flip {
			if phase1 {
				// Phase-1 objective is bounded below by 0; treat as stalled
				// optimality of the phase.
				return Optimal
			}
			return Unbounded
		}
		t.applyStep(j, dir, leave, tMax, flip)
		t.iters++

		z := t.z2
		if phase1 {
			z = t.z1
		}
		if z < lastZ-1e-12 {
			lastZ = z
			stall = 0
		} else {
			stall++
		}
		if phase1 && t.z1 <= epsFeas {
			return Optimal
		}
	}
}

// chooseEntering picks an entering column and direction (+1 = increase from
// lower, -1 = decrease from upper). Dantzig rule by default; Bland when
// stalled. Returns -1 when optimal.
func (t *tableau) chooseEntering(cost []float64, phase1, bland bool) (col, dir int) {
	best, bestScore := -1, epsCost
	bestDir := 0
	for j := 0; j < t.n; j++ {
		if t.inBasis[j] || t.upper[j] == 0 {
			continue
		}
		if !phase1 && j >= t.artBase {
			continue // artificials stay out in phase 2
		}
		var score float64
		var d int
		if !t.atUpper[j] && cost[j] < -epsCost {
			score, d = -cost[j], +1
		} else if t.atUpper[j] && cost[j] > epsCost {
			score, d = cost[j], -1
		} else {
			continue
		}
		if bland {
			return j, d
		}
		if score > bestScore {
			best, bestScore, bestDir = j, score, d
		}
	}
	return best, bestDir
}

// ratioTest finds how far the entering column j can move in direction dir.
// It returns the leaving row (-1 if none), the step length, and whether the
// step is a pure bound flip of j.
func (t *tableau) ratioTest(j, dir int) (leaveRow int, step float64, flip bool) {
	limit := t.upper[j] // bound-flip distance
	leaveRow = -1
	step = limit
	leaveAtUpper := false
	for i := 0; i < t.m; i++ {
		aij := t.a[i][j] * float64(dir)
		if math.Abs(aij) < epsPivot {
			continue
		}
		bi := t.basis[i]
		var ratio float64
		var hitsUpper bool
		if aij > 0 {
			// Basic value decreases toward 0.
			ratio = t.b[i] / aij
			hitsUpper = false
		} else {
			// Basic value increases toward its upper bound.
			ub := t.upper[bi]
			if math.IsInf(ub, 1) {
				continue
			}
			ratio = (ub - t.b[i]) / -aij
			hitsUpper = true
		}
		if ratio < -1e-12 {
			ratio = 0
		}
		if ratio < step-1e-12 || (ratio < step+1e-12 && leaveRow >= 0 && t.basis[i] < t.basis[leaveRow]) {
			step = ratio
			leaveRow = i
			leaveAtUpper = hitsUpper
		}
	}
	if leaveRow < 0 {
		if math.IsInf(limit, 1) {
			return -1, 0, false
		}
		return -1, limit, true // bound flip
	}
	_ = leaveAtUpper
	return leaveRow, step, false
}

// applyStep performs either a bound flip of column j or a pivot where j
// enters the basis and basis[leave] leaves.
func (t *tableau) applyStep(j, dir, leave int, step float64, flip bool) {
	if flip {
		// Move j across its range: basic values shift, costs unchanged.
		if step != 0 {
			for i := 0; i < t.m; i++ {
				t.b[i] -= float64(dir) * step * t.a[i][j]
			}
			t.z1 += float64(dir) * step * t.cost1[j]
			t.z2 += float64(dir) * step * t.cost2[j]
		}
		t.atUpper[j] = !t.atUpper[j]
		return
	}

	// The entering variable's new basic value (measured from its lower
	// bound): step if entering from lower, upper-step if from upper.
	enterVal := step
	if dir < 0 {
		enterVal = t.upper[j] - step
	}

	piv := t.a[leave][j]
	// If entering from upper bound, it is convenient to first re-express
	// the column as "distance below upper": handled implicitly below by
	// computing the new rhs directly.
	leaving := t.basis[leave]

	// Update basic values for all rows except the pivot row.
	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		t.b[i] -= float64(dir) * step * t.a[i][j]
	}
	t.z1 += float64(dir) * step * t.cost1[j]
	t.z2 += float64(dir) * step * t.cost2[j]

	// Determine whether the leaving variable exits at lower (0) or upper.
	leaveVal := t.b[leave] - float64(dir)*step*piv
	lvUpper := false
	if ub := t.upper[leaving]; !math.IsInf(ub, 1) && math.Abs(leaveVal-ub) < math.Abs(leaveVal) {
		lvUpper = true
	}

	// Normalise pivot row.
	inv := 1 / piv
	row := t.a[leave]
	for k := 0; k < t.n; k++ {
		row[k] *= inv
	}
	t.b[leave] = enterVal

	// Eliminate column j elsewhere.
	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		f := t.a[i][j]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for k := 0; k < t.n; k++ {
			ri[k] -= f * row[k]
		}
		ri[j] = 0
	}
	// Update both cost rows.
	for _, cost := range [][]float64{t.cost1, t.cost2} {
		f := cost[j]
		if f != 0 {
			for k := 0; k < t.n; k++ {
				cost[k] -= f * row[k]
			}
			cost[j] = 0
		}
	}

	t.inBasis[leaving] = false
	t.atUpper[leaving] = lvUpper
	t.inBasis[j] = true
	t.atUpper[j] = false
	t.basis[leave] = j
}

// expelArtificials pivots basic artificial variables (at value ~0) out of
// the basis or zeroes their rows, so phase 2 cannot reuse them.
func (t *tableau) expelArtificials() {
	for i := 0; i < t.m; i++ {
		bi := t.basis[i]
		if bi < t.artBase {
			continue
		}
		// Find any usable pivot among non-artificial columns.
		pivCol := -1
		for j := 0; j < t.artBase; j++ {
			if !t.inBasis[j] && t.upper[j] != 0 && math.Abs(t.a[i][j]) > epsPivot {
				pivCol = j
				break
			}
		}
		if pivCol < 0 {
			// Redundant row: keep the artificial basic at 0 but forbid it
			// from moving by clamping its bound.
			t.upper[bi] = 0
			continue
		}
		t.pivotInPlace(i, pivCol)
	}
	// Freeze all nonbasic artificials at 0.
	for j := t.artBase; j < t.n; j++ {
		if !t.inBasis[j] {
			t.upper[j] = 0
			t.atUpper[j] = false
		}
	}
}

// pivotInPlace performs a degenerate pivot: the entering column j joins the
// basis at its current bound value and the leaving (artificial, value ~0)
// variable exits, with no change to any variable's value.
func (t *tableau) pivotInPlace(leave, j int) {
	piv := t.a[leave][j]
	leaving := t.basis[leave]
	enterVal := 0.0
	if t.atUpper[j] {
		enterVal = t.upper[j]
	}
	inv := 1 / piv
	row := t.a[leave]
	for k := 0; k < t.n; k++ {
		row[k] *= inv
	}
	for i := 0; i < t.m; i++ {
		if i == leave {
			continue
		}
		f := t.a[i][j]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for k := 0; k < t.n; k++ {
			ri[k] -= f * row[k]
		}
		ri[j] = 0
		// No b update: nothing moves in a degenerate pivot.
	}
	for _, cost := range [][]float64{t.cost1, t.cost2} {
		f := cost[j]
		if f != 0 {
			for k := 0; k < t.n; k++ {
				cost[k] -= f * row[k]
			}
			cost[j] = 0
		}
	}
	t.b[leave] = enterVal
	t.inBasis[leaving] = false
	t.atUpper[leaving] = false
	t.inBasis[j] = true
	t.atUpper[j] = false
	t.basis[leave] = j
}

// extract builds the Solution from the final tableau.
func (t *tableau) extract() *Solution {
	x := make([]float64, t.nStru)
	for j := 0; j < t.nStru; j++ {
		if t.atUpper[j] {
			x[j] = t.upper[j]
		}
	}
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.nStru {
			x[t.basis[i]] = t.b[i]
		}
	}
	obj := t.p.objOff
	for j := 0; j < t.nStru; j++ {
		x[j] += t.p.lower[j]
		obj += t.p.obj[j] * x[j]
	}
	return &Solution{Status: Optimal, Obj: obj, X: x, Iters: t.iters}
}
