package lp

// Scratch is a reusable allocation arena for the dense simplex tableau.
// Branch-and-bound solves thousands of closely-sized LPs back to back;
// drawing the tableau matrix and work vectors from one arena instead of
// reallocating them per solve removes the dominant allocation cost of the
// search (the m×n dense matrix).
//
// A Scratch may be reused across solves of differently-sized problems (it
// grows monotonically and zeroes what it hands out) but must not be shared
// by concurrent solves — give each worker its own.
type Scratch struct {
	f    []float64
	ints []int
	bs   []bool
	rows [][]float64
	fOff, iOff, bOff int
}

// NewScratch returns an empty arena.
func NewScratch() *Scratch { return &Scratch{} }

// begin prepares the arena for one tableau of m rows and n columns,
// presizing the backings so later sub-allocations never reallocate.
func (s *Scratch) begin(m, n int) {
	s.fOff, s.iOff, s.bOff = 0, 0, 0
	nf := m*n + m + 3*n // matrix + b + upper/cost1/cost2
	if cap(s.f) < nf {
		s.f = make([]float64, nf)
	}
	s.f = s.f[:cap(s.f)]
	if cap(s.ints) < m {
		s.ints = make([]int, m)
	}
	s.ints = s.ints[:cap(s.ints)]
	if cap(s.bs) < 2*n {
		s.bs = make([]bool, 2*n)
	}
	s.bs = s.bs[:cap(s.bs)]
	if cap(s.rows) < m {
		s.rows = make([][]float64, m)
	}
	s.rows = s.rows[:cap(s.rows)]
}

// floats hands out a zeroed float vector of length n. Nil receivers (no
// arena) fall back to plain allocation, so tableau construction needs no
// branching at the call sites.
func (s *Scratch) floats(n int) []float64 {
	if s == nil {
		return make([]float64, n)
	}
	out := s.f[s.fOff : s.fOff+n]
	s.fOff += n
	for i := range out {
		out[i] = 0
	}
	return out
}

// intSlice hands out a zeroed int vector of length n.
func (s *Scratch) intSlice(n int) []int {
	if s == nil {
		return make([]int, n)
	}
	out := s.ints[s.iOff : s.iOff+n]
	s.iOff += n
	for i := range out {
		out[i] = 0
	}
	return out
}

// boolSlice hands out a zeroed bool vector of length n.
func (s *Scratch) boolSlice(n int) []bool {
	if s == nil {
		return make([]bool, n)
	}
	out := s.bs[s.bOff : s.bOff+n]
	s.bOff += n
	for i := range out {
		out[i] = false
	}
	return out
}

// matrix hands out an m×n zeroed dense matrix.
func (s *Scratch) matrix(m, n int) [][]float64 {
	if s == nil {
		out := make([][]float64, m)
		for i := range out {
			out[i] = make([]float64, n)
		}
		return out
	}
	out := s.rows[:m]
	for i := range out {
		out[i] = s.floats(n)
	}
	return out
}
