package lp

// Warm-started re-solving for branch and bound.
//
// A branch-and-bound child differs from its parent only in variable bounds,
// and bound changes never disturb dual feasibility: the parent's optimal
// basis is a dual-feasible starting point for the child. The WarmSolver
// below exploits that. It keeps a frozen copy of the parent's final simplex
// tableau (a WarmSnap), applies the child's bound tightenings directly to
// the basic values — O(m) per changed variable — and runs the bounded dual
// simplex until the basis is primal feasible again. The objective at that
// point is the child's exact LP-relaxation value, usually reached in a
// handful of pivots instead of a full two-phase solve.
//
// The MILP layer uses the warm tableau as the node's LP solve: an Optimal
// re-solve yields the node's exact relaxation value and (via Solution) its
// optimal point, and a dual-infeasibility certificate prunes the node as
// infeasible — both without the cold path. Any numerical doubt (iteration
// cap, eroded dual feasibility, a non-tightening delta) makes Resolve
// report failure and the caller falls back to the cold two-phase solve,
// which remains the sole authority in those cases.

import (
	"math"
	"sync"
	"sync/atomic"
)

// BoundDelta is one bound tightening applied between a parent node and its
// child. Branching only ever shrinks boxes, so Lo ≥ parent lower and
// Hi ≤ parent upper; deltas outside the parent box are rejected.
type BoundDelta struct {
	Var    Var
	Lo, Hi float64
}

// WarmSnap is a frozen optimal tableau: everything the dual simplex needs
// to resume from a node's optimum under tightened bounds. Snapshots are
// plain memory — pooled through a WarmArena and safe to hand across
// goroutines once frozen.
type WarmSnap struct {
	m, n, nStru, artBase int

	a       []float64 // m×n, row-major
	b       []float64 // m basic values
	upper   []float64 // n shifted column bounds (Inf allowed)
	cost2   []float64 // n phase-2 reduced costs
	lower   []float64 // nStru current structural lower bounds
	basis   []int32   // m
	inBasis []bool    // n
	atUpper []bool    // n

	rc int32 // reference count, managed by WarmArena
}

// WarmArena pools WarmSnaps: branch and bound creates and discards one
// snapshot per surviving node, all identically sized within one model, so
// a freelist removes the dominant allocation. Release is reference-counted
// (parallel search shares a parent snapshot between both children); the
// arena may be shared by concurrent workers.
type WarmArena struct {
	mu   sync.Mutex
	free []*WarmSnap
}

// NewWarmArena returns an empty snapshot pool.
func NewWarmArena() *WarmArena { return &WarmArena{} }

// get returns a snapshot with capacity for an m×n tableau over nStru
// structural variables, drawing from the freelist when possible. The
// returned snapshot has rc == 1.
func (wa *WarmArena) get(m, n, nStru int) *WarmSnap {
	var s *WarmSnap
	if wa != nil {
		wa.mu.Lock()
		if k := len(wa.free); k > 0 {
			s = wa.free[k-1]
			wa.free = wa.free[:k-1]
		}
		wa.mu.Unlock()
	}
	if s == nil {
		s = &WarmSnap{}
	}
	s.m, s.n, s.nStru = m, n, nStru
	s.a = growF(s.a, m*n)
	s.b = growF(s.b, m)
	s.upper = growF(s.upper, n)
	s.cost2 = growF(s.cost2, n)
	s.lower = growF(s.lower, nStru)
	s.basis = growI32(s.basis, m)
	s.inBasis = growB(s.inBasis, n)
	s.atUpper = growB(s.atUpper, n)
	s.rc = 1
	return s
}

// AddRef adds a reference to s (one per child that will resolve from it).
func (wa *WarmArena) AddRef(s *WarmSnap) {
	if s != nil {
		atomic.AddInt32(&s.rc, 1)
	}
}

// Release drops one reference; the last release returns s to the pool.
func (wa *WarmArena) Release(s *WarmSnap) {
	if s == nil {
		return
	}
	if atomic.AddInt32(&s.rc, -1) > 0 {
		return
	}
	if wa == nil {
		return // unpooled: let the GC take it
	}
	wa.mu.Lock()
	wa.free = append(wa.free, s)
	wa.mu.Unlock()
}

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growB(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// snapFromTableau freezes the final state of a solved tableau. Only valid
// when t was built over the full problem (no presolve reduction), so the
// structural columns map 1:1 onto the problem's variables.
func snapFromTableau(t *tableau, wa *WarmArena) *WarmSnap {
	s := wa.get(t.m, t.n, t.nStru)
	s.artBase = t.artBase
	for i := 0; i < t.m; i++ {
		copy(s.a[i*t.n:(i+1)*t.n], t.a[i])
	}
	copy(s.b, t.b)
	copy(s.upper, t.upper)
	copy(s.cost2, t.cost2)
	copy(s.lower, t.p.lower[:t.nStru])
	for i, bi := range t.basis {
		s.basis[i] = int32(bi)
	}
	copy(s.inBasis, t.inBasis)
	copy(s.atUpper, t.atUpper)
	return s
}

// WarmResult reports one warm re-solve. Obj is meaningful only for Optimal.
// Infeasible means the tightened bounds admit no feasible point; IterLimit
// is the generic "no usable answer, use the cold path" outcome (iteration
// cap, numerical erosion, or an unusable delta).
type WarmResult struct {
	Status Status
	Obj    float64
	Iters  int
}

// WarmSolver re-solves LP relaxations from parent snapshots via the bounded
// dual simplex. One solver serves one search lane (goroutine): it owns a
// working tableau sized to the model, reused across Resolve calls and —
// via Rebind — across models of similar size. It reads only the problem's
// immutable structure (objective, offset), never its mutable bounds, so
// several solvers may share one Problem concurrently.
type WarmSolver struct {
	p *Problem

	m, n, nStru, artBase int

	af      []float64 // m×n backing
	a       [][]float64
	b       []float64
	upper   []float64
	cost2   []float64
	lower   []float64
	basis   []int
	inBasis []bool
	atUpper []bool
}

// NewWarmSolver returns a solver lane for p.
func NewWarmSolver(p *Problem) *WarmSolver { return &WarmSolver{p: p} }

// Rebind points the solver at a new problem, keeping its working buffers.
func (w *WarmSolver) Rebind(p *Problem) { w.p = p }

// load copies a snapshot into the working tableau.
func (w *WarmSolver) load(s *WarmSnap) {
	m, n := s.m, s.n
	w.m, w.n, w.nStru, w.artBase = m, n, s.nStru, s.artBase
	w.af = growF(w.af, m*n)
	copy(w.af, s.a)
	if cap(w.a) < m {
		w.a = make([][]float64, m)
	}
	w.a = w.a[:m]
	for i := range w.a {
		w.a[i] = w.af[i*n : (i+1)*n]
	}
	w.b = growF(w.b, m)
	copy(w.b, s.b)
	w.upper = growF(w.upper, n)
	copy(w.upper, s.upper)
	w.cost2 = growF(w.cost2, n)
	copy(w.cost2, s.cost2)
	w.lower = growF(w.lower, s.nStru)
	copy(w.lower, s.lower)
	if cap(w.basis) < m {
		w.basis = make([]int, m)
	}
	w.basis = w.basis[:m]
	for i, bi := range s.basis {
		w.basis[i] = int(bi)
	}
	w.inBasis = growB(w.inBasis, n)
	copy(w.inBasis, s.inBasis)
	w.atUpper = growB(w.atUpper, n)
	copy(w.atUpper, s.atUpper)
}

// applyDelta tightens the bounds of one structural variable in the working
// tableau: basic variables re-shift their stored value, nonbasic variables
// move with their resting bound (an O(m) column update). Returns false when
// the delta is unusable (empty box or not a tightening), telling the caller
// to fall back to a cold solve.
func (w *WarmSolver) applyDelta(d BoundDelta) bool {
	v := int(d.Var)
	if v < 0 || v >= w.nStru {
		return false
	}
	oldLo := w.lower[v]
	oldHi := math.Inf(1)
	if !math.IsInf(w.upper[v], 1) {
		oldHi = oldLo + w.upper[v]
	}
	lo, hi := d.Lo, d.Hi
	if lo < oldLo-1e-12 || hi > oldHi+1e-12 {
		return false // a relaxation, not a tightening: basis may be stale
	}
	if lo < oldLo {
		lo = oldLo
	}
	if hi > oldHi {
		hi = oldHi
	}
	if hi < lo {
		return false
	}

	if w.inBasis[v] {
		// Basic: the stored value is measured from the lower bound; re-shift.
		for i := 0; i < w.m; i++ {
			if w.basis[i] == v {
				w.b[i] -= lo - oldLo
				break
			}
		}
	} else {
		// Nonbasic: the variable rests on a bound, and the bound moved.
		rest := oldLo
		newRest := lo
		if w.atUpper[v] {
			rest, newRest = oldHi, hi
		}
		if delta := newRest - rest; delta != 0 {
			for i := 0; i < w.m; i++ {
				if aiv := w.a[i][v]; aiv != 0 {
					w.b[i] -= delta * aiv
				}
			}
		}
	}
	w.lower[v] = lo
	if math.IsInf(hi, 1) {
		w.upper[v] = Inf
	} else {
		w.upper[v] = hi - lo
	}
	if w.upper[v] == 0 {
		w.atUpper[v] = false
	}
	return true
}

// dualSimplex restores primal feasibility from a dual-feasible basis:
// repeatedly drop the most-violated basic variable to its violated bound
// and bring in the column that preserves dual feasibility (smallest
// reduced-cost ratio, lowest index on near-ties). Terminates Optimal
// (primal feasible), Infeasible (a violated row with no eligible column
// proves the box empty) or IterLimit.
func (w *WarmSolver) dualSimplex(maxIt int) (Status, int) {
	for it := 0; ; it++ {
		if it >= maxIt {
			return IterLimit, it
		}
		// Most violated basic variable.
		leave, leaveAtUpper := -1, false
		worst := epsFeas
		for i := 0; i < w.m; i++ {
			bi := w.b[i]
			if -bi > worst {
				worst, leave, leaveAtUpper = -bi, i, false
			}
			if ub := w.upper[w.basis[i]]; !math.IsInf(ub, 1) && bi-ub > worst {
				worst, leave, leaveAtUpper = bi-ub, i, true
			}
		}
		if leave < 0 {
			return Optimal, it
		}

		// Dual ratio test over eligible entering columns.
		row := w.a[leave]
		enter, bestRatio := -1, math.Inf(1)
		for j := 0; j < w.artBase; j++ {
			if w.inBasis[j] || w.upper[j] == 0 {
				continue
			}
			arj := row[j]
			if math.Abs(arj) <= epsPivot {
				continue
			}
			// The leaving variable must move back toward its violated bound:
			// increase when it fell below lower, decrease when above upper.
			var ok bool
			if !leaveAtUpper {
				ok = (!w.atUpper[j] && arj < 0) || (w.atUpper[j] && arj > 0)
			} else {
				ok = (!w.atUpper[j] && arj > 0) || (w.atUpper[j] && arj < 0)
			}
			if !ok {
				continue
			}
			ratio := math.Abs(w.cost2[j]) / math.Abs(arj)
			if ratio < bestRatio-1e-12 {
				bestRatio, enter = ratio, j
			}
		}
		if enter < 0 {
			return Infeasible, it
		}
		w.dualPivot(leave, enter, leaveAtUpper)
	}
}

// dualPivot swaps entering column j into the basis at row r, moving the
// leaving variable exactly onto its violated bound.
func (w *WarmSolver) dualPivot(r, j int, leaveAtUpper bool) {
	row := w.a[r]
	piv := row[j]
	leaving := w.basis[r]
	target := 0.0
	if leaveAtUpper {
		target = w.upper[leaving]
	}
	dx := (w.b[r] - target) / piv // change in the entering variable's value
	e0 := 0.0
	if w.atUpper[j] {
		e0 = w.upper[j]
	}
	enterVal := e0 + dx

	for i := 0; i < w.m; i++ {
		if i == r {
			continue
		}
		if aij := w.a[i][j]; aij != 0 {
			w.b[i] -= aij * dx
		}
	}
	inv := 1 / piv
	for k := 0; k < w.n; k++ {
		row[k] *= inv
	}
	for i := 0; i < w.m; i++ {
		if i == r {
			continue
		}
		f := w.a[i][j]
		if f == 0 {
			continue
		}
		ri := w.a[i]
		for k := 0; k < w.n; k++ {
			ri[k] -= f * row[k]
		}
		ri[j] = 0
	}
	if f := w.cost2[j]; f != 0 {
		for k := 0; k < w.n; k++ {
			w.cost2[k] -= f * row[k]
		}
		w.cost2[j] = 0
	}
	w.b[r] = enterVal
	w.inBasis[leaving] = false
	w.atUpper[leaving] = leaveAtUpper
	if w.upper[leaving] == 0 {
		w.atUpper[leaving] = false
	}
	w.inBasis[j] = true
	w.atUpper[j] = false
	w.basis[r] = j
}

// dualClean verifies dual feasibility survived the pivots; erosion beyond
// tolerance voids the bound and the caller must go cold.
func (w *WarmSolver) dualClean() bool {
	for j := 0; j < w.artBase; j++ {
		if w.inBasis[j] || w.upper[j] == 0 {
			continue
		}
		if !w.atUpper[j] {
			if w.cost2[j] < -1e-7 {
				return false
			}
		} else if w.cost2[j] > 1e-7 {
			return false
		}
	}
	return true
}

// objective evaluates the problem objective at the working tableau's point.
func (w *WarmSolver) objective() float64 {
	obj := w.p.objOff
	for j := 0; j < w.nStru; j++ {
		if w.inBasis[j] {
			continue
		}
		x := w.lower[j]
		if w.atUpper[j] {
			x += w.upper[j]
		}
		obj += w.p.obj[j] * x
	}
	for i := 0; i < w.m; i++ {
		if bj := w.basis[i]; bj < w.nStru {
			obj += w.p.obj[bj] * (w.lower[bj] + w.b[i])
		}
	}
	return obj
}

// Resolve computes the LP value of a child node from its parent's frozen
// optimum: load the snapshot, tighten the bounds, restore primal
// feasibility dual-simplex-wise. The parent snapshot is not modified. On
// Optimal the working tableau holds the child's optimum and may be frozen
// with Snapshot for the grandchildren.
func (w *WarmSolver) Resolve(parent *WarmSnap, deltas []BoundDelta) WarmResult {
	w.load(parent)
	for _, d := range deltas {
		if !w.applyDelta(d) {
			return WarmResult{Status: IterLimit}
		}
	}
	st, iters := w.dualSimplex(4*w.m + 100)
	if st == Optimal && !w.dualClean() {
		return WarmResult{Status: IterLimit, Iters: iters}
	}
	res := WarmResult{Status: st, Iters: iters}
	if st == Optimal {
		res.Obj = w.objective()
	}
	return res
}

// Solution materialises the working tableau's point as a full LP solution
// in the problem's variable space (valid after an Optimal Resolve): every
// nonbasic structural at its resting bound, every basic one at its row's
// value. obj and iters come from the Resolve that produced the tableau.
func (w *WarmSolver) Solution(obj float64, iters int) *Solution {
	x := make([]float64, w.nStru)
	for j := 0; j < w.nStru; j++ {
		if w.inBasis[j] {
			continue
		}
		x[j] = w.lower[j]
		if w.atUpper[j] {
			x[j] += w.upper[j]
		}
	}
	for i := 0; i < w.m; i++ {
		if bj := w.basis[i]; bj < w.nStru {
			x[bj] = w.lower[bj] + w.b[i]
		}
	}
	return &Solution{Status: Optimal, Obj: obj, X: x, Iters: iters}
}

// Snapshot freezes the working tableau (valid after an Optimal Resolve).
func (w *WarmSolver) Snapshot(wa *WarmArena) *WarmSnap {
	s := wa.get(w.m, w.n, w.nStru)
	s.artBase = w.artBase
	copy(s.a, w.af[:w.m*w.n])
	copy(s.b, w.b)
	copy(s.upper, w.upper)
	copy(s.cost2, w.cost2)
	copy(s.lower, w.lower)
	for i, bi := range w.basis {
		s.basis[i] = int32(bi)
	}
	copy(s.inBasis, w.inBasis)
	copy(s.atUpper, w.atUpper)
	return s
}

// ObjectiveFloor returns a lower bound on the optimal objective computed
// from the variable bounds alone — every row ignored, every variable at its
// cheapest feasible value (the dual bound of the all-zero dual point). It
// is O(n) and exact arithmetic over the bounds, so branch and bound can
// test it against the incumbent before paying for an LP solve; -Inf when a
// negative-cost variable is unbounded above.
func (p *Problem) ObjectiveFloor() float64 {
	fl := p.objOff
	for j, c := range p.obj {
		switch {
		case c > 0:
			fl += c * p.lower[j]
		case c < 0:
			u := p.upper[j]
			if math.IsInf(u, 1) {
				return math.Inf(-1)
			}
			fl += c * u
		}
	}
	return fl
}
