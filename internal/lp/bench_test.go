package lp

import "testing"

// childBenchSetup solves the medium LP's root and finds a variable whose
// fixing to zero leaves the child feasible — the canonical branch-and-bound
// child solve the warm path exists for.
func childBenchSetup(b *testing.B) (*Problem, *WarmSnap, *WarmArena, Var) {
	b.Helper()
	p := buildMediumLP()
	wa := NewWarmArena()
	sol, snap, err := p.SolveScratchRetain(nil, wa)
	if err != nil || sol.Status != Optimal || snap == nil {
		b.Fatalf("root solve: status %v snap %v err %v", sol.Status, snap != nil, err)
	}
	w := NewWarmSolver(p)
	for v := 0; v < p.NumVars(); v++ {
		if sol.X[v] < 1e-9 {
			continue
		}
		res := w.Resolve(snap, []BoundDelta{{Var: Var(v), Lo: 0, Hi: 0}})
		if res.Status == Optimal {
			return p, snap, wa, Var(v)
		}
	}
	b.Fatal("no fixable variable found")
	return nil, nil, nil, 0
}

// BenchmarkChildSolveCold is the pre-warm-start branch-and-bound node
// profile: one bound tightening, then a from-scratch two-phase solve.
func BenchmarkChildSolveCold(b *testing.B) {
	p, snap, wa, v := childBenchSetup(b)
	defer wa.Release(snap)
	scratch := NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.SetBounds(v, 0, 0)
		s, err := p.SolveScratch(scratch)
		p.SetBounds(v, 0, 1)
		if err != nil || s.Status != Optimal {
			b.Fatalf("status %v err %v", s.Status, err)
		}
	}
}

// BenchmarkChildSolveWarm is the warm-started node profile: the same
// tightening re-solved dual-feasibly from the parent's frozen optimum,
// plus the solution materialisation the search consumes.
func BenchmarkChildSolveWarm(b *testing.B) {
	p, snap, wa, v := childBenchSetup(b)
	defer wa.Release(snap)
	w := NewWarmSolver(p)
	delta := []BoundDelta{{Var: v, Lo: 0, Hi: 0}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := w.Resolve(snap, delta)
		if res.Status != Optimal {
			b.Fatalf("status %v", res.Status)
		}
		if sol := w.Solution(res.Obj, res.Iters); sol.Status != Optimal {
			b.Fatalf("solution status %v", sol.Status)
		}
	}
}
