package lp

import (
	"fmt"
	"math"
)

// presolve produces a reduced problem with all fixed variables (lower ==
// upper) substituted into the rows and the objective. With the
// branch-and-bound searches above fixing large variable sets to zero, the
// per-node tableau shrinks accordingly.
type presolved struct {
	reduced *Problem
	// keep[i] is the original index of reduced variable i.
	keep []Var
	// fixedVal[v] is the value of original variable v if fixed.
	fixedVal map[Var]float64
	// objOff accumulates the fixed variables' objective contribution.
	objOff float64
	// infeasible is set when a row without free variables is violated.
	infeasible bool
}

const fixTol = 1e-12

// reduce builds the presolved problem. It never modifies p.
func (p *Problem) reduce() *presolved {
	pr := &presolved{fixedVal: map[Var]float64{}}
	nFixed := 0
	for v := 0; v < p.NumVars(); v++ {
		if p.upper[v]-p.lower[v] <= fixTol {
			pr.fixedVal[Var(v)] = p.lower[v]
			nFixed++
		}
	}
	if nFixed == 0 {
		pr.reduced = p
		return pr
	}

	red := NewProblem()
	red.maxIt = p.maxIt
	newIdx := make([]Var, p.NumVars())
	for v := 0; v < p.NumVars(); v++ {
		if val, fixed := pr.fixedVal[Var(v)]; fixed {
			newIdx[v] = -1
			pr.objOff += p.obj[v] * val
			continue
		}
		newIdx[v] = red.AddVar(p.names[v], p.lower[v], p.upper[v], p.obj[v])
		pr.keep = append(pr.keep, Var(v))
	}
	red.AddObjOffset(p.objOff + pr.objOff)

	for i := range p.rows {
		rhs := p.rhs[i]
		var terms []Term
		for _, t := range p.rows[i] {
			if val, fixed := pr.fixedVal[t.Var]; fixed {
				rhs -= t.Coef * val
				continue
			}
			terms = append(terms, Term{Var: newIdx[t.Var], Coef: t.Coef})
		}
		if len(terms) == 0 {
			// Constant row: feasible or not, no variable can change it.
			ok := true
			switch p.rels[i] {
			case LE:
				ok = rhs >= -1e-7
			case GE:
				ok = rhs <= 1e-7
			case EQ:
				ok = math.Abs(rhs) <= 1e-7
			}
			if !ok {
				pr.infeasible = true
				return pr
			}
			continue
		}
		red.AddRow(terms, p.rels[i], rhs)
	}
	pr.reduced = red
	return pr
}

// expand maps a reduced solution back to the original variable space.
func (pr *presolved) expand(p *Problem, sol *Solution) *Solution {
	if pr.reduced == p {
		return sol
	}
	x := make([]float64, p.NumVars())
	for v, val := range pr.fixedVal {
		x[v] = val
	}
	for i, orig := range pr.keep {
		x[orig] = sol.X[i]
	}
	return &Solution{Status: sol.Status, Obj: sol.Obj, X: x, Iters: sol.Iters}
}

// SolvePresolved runs reduce + simplex + expand. Problem.Solve delegates
// here; the split exists so tests can target the presolve path directly.
func (p *Problem) SolvePresolved() (*Solution, error) { return p.SolveScratch(nil) }

// SolveScratch is SolvePresolved drawing its tableau from the given arena
// (nil = allocate fresh). Branch-and-bound callers keep one Scratch per
// worker and pass it to every node solve.
func (p *Problem) SolveScratch(scratch *Scratch) (*Solution, error) {
	for i := range p.rows {
		for _, t := range p.rows[i] {
			if int(t.Var) < 0 || int(t.Var) >= p.NumVars() {
				return nil, fmt.Errorf("%w: row %d references unknown variable %d", ErrBadModel, i, t.Var)
			}
		}
	}
	pr := p.reduce()
	if pr.infeasible {
		return &Solution{Status: Infeasible}, nil
	}
	if pr.reduced.NumVars() == 0 {
		// Everything fixed and all rows satisfied.
		x := make([]float64, p.NumVars())
		obj := p.objOff
		for v, val := range pr.fixedVal {
			x[v] = val
			obj += p.obj[v] * val
		}
		return &Solution{Status: Optimal, Obj: obj, X: x}, nil
	}
	t, err := newTableau(pr.reduced, scratch)
	if err != nil {
		return nil, fmt.Errorf("lp: presolved model: %w", err)
	}
	sol, err := t.solve()
	if err != nil {
		return nil, err
	}
	if sol.Status != Optimal {
		return sol, nil
	}
	return pr.expand(p, sol), nil
}

// SolveScratchRetain is SolveScratch that additionally freezes the final
// simplex tableau as a warm-start seed for child-node re-solves. To keep
// the tableau columns mapped 1:1 onto problem variables — the layout the
// warm re-solver expects — it solves the problem full-space, skipping
// presolve: fixed variables (lower == upper) have zero range after the
// tableau's bound shift and are never priced into the basis, so they cost
// column space but no pivots. The snapshot is available whenever the solve
// ends Optimal; otherwise it is nil and callers use the cold path. The
// caller owns the returned snapshot and must Release it to wa.
func (p *Problem) SolveScratchRetain(scratch *Scratch, wa *WarmArena) (*Solution, *WarmSnap, error) {
	for i := range p.rows {
		for _, t := range p.rows[i] {
			if int(t.Var) < 0 || int(t.Var) >= p.NumVars() {
				return nil, nil, fmt.Errorf("%w: row %d references unknown variable %d", ErrBadModel, i, t.Var)
			}
		}
	}
	if p.NumVars() == 0 {
		sol, err := p.SolveScratch(scratch)
		return sol, nil, err
	}
	t, err := newTableau(p, scratch)
	if err != nil {
		return nil, nil, err
	}
	sol, err := t.solve()
	if err != nil {
		return nil, nil, err
	}
	if sol.Status != Optimal {
		return sol, nil, nil
	}
	return sol, snapFromTableau(t, wa), nil
}
