package arch

import (
	"testing"
	"testing/quick"

	"mfsynth/internal/grid"
)

func TestShapesForVolume(t *testing.T) {
	tests := []struct {
		v    int
		want []Shape
	}{
		{4, []Shape{{2, 2}}},
		{6, []Shape{{2, 3}, {3, 2}}},
		{8, []Shape{{3, 3}, {2, 4}, {4, 2}}},
		{10, []Shape{{3, 4}, {4, 3}, {2, 5}, {5, 2}}},
	}
	for _, tt := range tests {
		got := ShapesForVolume(tt.v)
		if len(got) != len(tt.want) {
			t.Fatalf("ShapesForVolume(%d) = %v, want %v", tt.v, got, tt.want)
		}
		seen := map[Shape]bool{}
		for _, s := range got {
			seen[s] = true
			if s.Volume() != tt.v {
				t.Errorf("shape %v has volume %d, want %d", s, s.Volume(), tt.v)
			}
		}
		for _, s := range tt.want {
			if !seen[s] {
				t.Errorf("ShapesForVolume(%d) misses %v", tt.v, s)
			}
		}
		// Square-most shape first (paper's 3×3 before 2×4 for volume 8).
		if tt.v == 8 && got[0] != (Shape{3, 3}) {
			t.Errorf("volume 8 should lead with 3x3, got %v", got[0])
		}
	}
}

func TestShapesForVolumeInvalid(t *testing.T) {
	for _, v := range []int{0, 2, 3, 5, 7, -4} {
		if got := ShapesForVolume(v); got != nil {
			t.Errorf("ShapesForVolume(%d) = %v, want nil", v, got)
		}
	}
}

// Property: every generated shape has the requested ring volume, and shape
// count grows linearly (v/2 - 1 shapes).
func TestShapesForVolumeProperty(t *testing.T) {
	f := func(raw uint8) bool {
		v := 4 + 2*int(raw%20)
		shapes := ShapesForVolume(v)
		if len(shapes) != v/2-1 {
			return false
		}
		for _, s := range shapes {
			if s.Volume() != v || s.W < 2 || s.H < 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinShapeDim(t *testing.T) {
	if d := MinShapeDim([]int{4, 6, 8, 10}); d != 2 {
		t.Fatalf("MinShapeDim = %d, want 2", d)
	}
	if d := MinShapeDim(nil); d != 2 {
		t.Fatalf("MinShapeDim(nil) = %d, want fallback 2", d)
	}
}

func TestPlacementGeometry(t *testing.T) {
	p := Placement{At: grid.Point{X: 2, Y: 3}, Shape: Shape{2, 4}}
	if fp := p.Footprint(); fp != grid.RectWH(2, 3, 2, 4) {
		t.Fatalf("Footprint = %v", fp)
	}
	if len(p.Ring()) != 8 || p.Volume() != 8 {
		t.Fatalf("Ring len = %d, Volume = %d", len(p.Ring()), p.Volume())
	}
	if wb := p.WallBox(); wb != (grid.Rect{X0: 1, Y0: 2, X1: 5, Y1: 8}) {
		t.Fatalf("WallBox = %v", wb)
	}
}

func TestCompatibility(t *testing.T) {
	a := Placement{At: grid.Point{X: 1, Y: 1}, Shape: Shape{3, 3}}
	tests := []struct {
		b    Placement
		want bool
	}{
		{Placement{At: grid.Point{X: 1, Y: 1}, Shape: Shape{3, 3}}, false}, // same place
		{Placement{At: grid.Point{X: 3, Y: 1}, Shape: Shape{3, 3}}, false}, // overlapping
		{Placement{At: grid.Point{X: 4, Y: 1}, Shape: Shape{3, 3}}, false}, // touching
		{Placement{At: grid.Point{X: 5, Y: 1}, Shape: Shape{3, 3}}, true},  // shared wall band
		{Placement{At: grid.Point{X: 5, Y: 5}, Shape: Shape{2, 2}}, true},  // diagonal gap
	}
	for _, tt := range tests {
		if got := a.CompatibleWith(tt.b); got != tt.want {
			t.Errorf("CompatibleWith(%v) = %v, want %v", tt.b, got, tt.want)
		}
		if got := tt.b.CompatibleWith(a); got != tt.want {
			t.Errorf("CompatibleWith not symmetric for %v", tt.b)
		}
	}
}

// The paper's Fig. 5(d): a 2×4 and a 4×2 mixer in the same region have
// completely different pump valves only for specific offsets; here we check
// the underlying fact the figure illustrates — overlapping rings of the two
// orientations can be disjoint.
func TestOrientationSharingFig5(t *testing.T) {
	h := Placement{At: grid.Point{X: 1, Y: 2}, Shape: Shape{4, 2}}
	v := Placement{At: grid.Point{X: 2, Y: 1}, Shape: Shape{2, 4}}
	if !h.Footprint().Overlaps(v.Footprint()) {
		t.Fatal("test placements should overlap in area")
	}
	ringSet := map[grid.Point]bool{}
	for _, pt := range h.Ring() {
		ringSet[pt] = true
	}
	shared := 0
	for _, pt := range v.Ring() {
		if ringSet[pt] {
			shared++
		}
	}
	// A 4×2 ring is its full footprint; a 2×4 too. Their overlap region is
	// 2×2, so 4 pump valves coincide — the figure's exact disjointness needs
	// offset placements; what matters for the architecture is that pump sets
	// are position-dependent. Verify the overlap is strictly smaller than
	// either ring.
	if shared >= len(v.Ring()) {
		t.Fatalf("rings identical: %d shared", shared)
	}
	// And a shifted pair is fully disjoint.
	v2 := Placement{At: grid.Point{X: 6, Y: 1}, Shape: Shape{2, 4}}
	for _, pt := range v2.Ring() {
		if ringSet[pt] {
			t.Fatalf("shifted rings share %v", pt)
		}
	}
}

func TestChipCountersAndMax(t *testing.T) {
	c := NewChip(10, 10)
	pl := Placement{At: grid.Point{X: 2, Y: 2}, Shape: Shape{3, 3}}
	c.AddPump(pl, 40)
	if c.MaxPump() != 40 || c.MaxTotal() != 40 {
		t.Fatalf("MaxPump/MaxTotal = %d/%d", c.MaxPump(), c.MaxTotal())
	}
	if got := c.UsedValves(); got != 8 {
		t.Fatalf("UsedValves = %d, want 8 (ring of 3x3)", got)
	}
	if c.PumpAt(3, 3) != 0 {
		t.Fatal("ring must not include the 3x3 centre")
	}
	if c.PumpAt(2, 2) != 40 {
		t.Fatalf("corner pump = %d", c.PumpAt(2, 2))
	}
	c.AddCtrl([]grid.Point{{X: 2, Y: 2}, {X: 9, Y: 9}}, 5)
	if c.MaxTotal() != 45 {
		t.Fatalf("MaxTotal = %d, want 45", c.MaxTotal())
	}
	if c.TotalAt(2, 2) != 45 || c.CtrlAt(9, 9) != 5 {
		t.Fatal("counter bookkeeping wrong")
	}
	if c.UsedValves() != 9 {
		t.Fatalf("UsedValves = %d, want 9", c.UsedValves())
	}
	c.Reset()
	if c.MaxTotal() != 0 || c.UsedValves() != 0 {
		t.Fatal("Reset did not zero counters")
	}
}

// Pump-valve disjointness across time (Fig. 5(d)): two overlapping devices
// used at different times accumulate counts independently; the max stays at
// one op's worth when their rings are disjoint.
func TestTimeSharedAreaKeepsMaxLow(t *testing.T) {
	c := NewChip(10, 10)
	h := Placement{At: grid.Point{X: 2, Y: 3}, Shape: Shape{4, 2}}
	v := Placement{At: grid.Point{X: 7, Y: 2}, Shape: Shape{2, 4}}
	c.AddPump(h, 40)
	c.AddPump(v, 40)
	if c.MaxPump() != 40 {
		t.Fatalf("MaxPump = %d, want 40 for disjoint rings", c.MaxPump())
	}
}

func TestPlacementArea(t *testing.T) {
	c := NewChip(10, 10)
	area := c.PlacementArea(Shape{3, 3})
	if area != (grid.Rect{X0: 1, Y0: 1, X1: 7, Y1: 7}) {
		t.Fatalf("PlacementArea = %v", area)
	}
	for _, pt := range area.Points() {
		pl := Placement{At: pt, Shape: Shape{3, 3}}
		if !c.Bounds().ContainsRect(pl.WallBox()) {
			t.Fatalf("placement %v wall box %v leaves the chip", pl, pl.WallBox())
		}
	}
	// One step outside the area must overflow.
	out := Placement{At: grid.Point{X: 7, Y: 1}, Shape: Shape{3, 3}}
	if c.Bounds().ContainsRect(out.WallBox()) {
		t.Fatal("placement outside area unexpectedly fits")
	}
}

func TestChipPorts(t *testing.T) {
	c := NewChip(12, 12)
	if len(c.Ports) != 3 {
		t.Fatalf("ports = %d, want 3", len(c.Ports))
	}
	ins, outs := 0, 0
	for _, p := range c.Ports {
		if !c.InBounds(p.At) {
			t.Errorf("port %v off-chip", p)
		}
		switch p.Kind {
		case InPort:
			ins++
		case OutPort:
			outs++
		}
	}
	if ins != 2 || outs != 1 {
		t.Fatalf("ins/outs = %d/%d", ins, outs)
	}
}

func TestClone(t *testing.T) {
	c := NewChip(8, 8)
	c.AddCtrl([]grid.Point{{X: 1, Y: 1}}, 3)
	d := c.Clone()
	d.AddCtrl([]grid.Point{{X: 1, Y: 1}}, 3)
	if c.CtrlAt(1, 1) != 3 || d.CtrlAt(1, 1) != 6 {
		t.Fatal("Clone shares counter storage")
	}
}

func TestNewChipPanicsOnTiny(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 2x2 chip")
		}
	}()
	NewChip(2, 2)
}
