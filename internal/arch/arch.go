// Package arch models the valve-centered architecture of the paper's
// Section 3.1: a regular matrix of virtual valves (after Fidalgo & Maerkl's
// programmable valve matrix) from which dynamic devices are formed by
// assigning valve roles — control, pump, or wall — that may change over the
// course of the bioassay.
//
// A dynamic mixer is a w×h block of valves whose perimeter forms the
// peristaltic circulation ring (all 2(w+h)-4 perimeter valves act as pump
// valves while the mixer runs, exactly as the paper treats the 2×4 mixer of
// Fig. 5(b) as using 8 pump valves). The lattice ring length is the mixer's
// volume in units. The valves in the band immediately around the block act
// as wall valves; two devices may share a wall band but never a footprint.
package arch

import (
	"fmt"
	"sort"

	"mfsynth/internal/grid"
)

// Shape is a device footprint in valves.
type Shape struct {
	W, H int
}

// String returns "WxH".
func (s Shape) String() string { return fmt.Sprintf("%dx%d", s.W, s.H) }

// Volume returns the ring length 2(W+H)-4, the fluid capacity in units.
func (s Shape) Volume() int {
	if s.W <= 2 || s.H <= 2 {
		return s.W * s.H
	}
	return 2*(s.W+s.H) - 4
}

// MinDim returns the smaller footprint dimension.
func (s Shape) MinDim() int {
	if s.W < s.H {
		return s.W
	}
	return s.H
}

// ShapesForVolume enumerates every shape (location-free device type in the
// paper's sense: shape and orientation) whose peristaltic ring holds exactly
// v units: all w×h with w,h ≥ 2 and w+h = v/2+2. The paper's example types
// for volume 8 are 3×3, 2×4 and 4×2. v must be even and ≥ 4.
func ShapesForVolume(v int) []Shape {
	if v < 4 || v%2 != 0 {
		return nil
	}
	sum := v/2 + 2
	var shapes []Shape
	for w := 2; sum-w >= 2; w++ {
		shapes = append(shapes, Shape{W: w, H: sum - w})
	}
	// Square-most first: they tend to give the most compact placements.
	sort.SliceStable(shapes, func(i, j int) bool {
		return absInt(shapes[i].W-shapes[i].H) < absInt(shapes[j].W-shapes[j].H)
	})
	return shapes
}

func absInt(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// MinShapeDim returns the smallest footprint dimension over every shape of
// every given volume — the constant d of the paper's routing-convenient
// constraints (13)-(16).
func MinShapeDim(volumes []int) int {
	min := 0
	for _, v := range volumes {
		for _, s := range ShapesForVolume(v) {
			if min == 0 || s.MinDim() < min {
				min = s.MinDim()
			}
		}
	}
	if min == 0 {
		min = 2
	}
	return min
}

// Placement is a device instance: a shape at a left-bottom corner.
type Placement struct {
	At    grid.Point
	Shape Shape
}

// String returns "WxH@(x,y)".
func (p Placement) String() string { return fmt.Sprintf("%v@%v", p.Shape, p.At) }

// Footprint returns the valve block covered by the device.
func (p Placement) Footprint() grid.Rect {
	return grid.RectWH(p.At.X, p.At.Y, p.Shape.W, p.Shape.H)
}

// Ring returns the pump-valve coordinates: the footprint perimeter.
func (p Placement) Ring() []grid.Point { return p.Footprint().Perimeter() }

// WallBox returns the footprint expanded by the one-valve wall band; its
// edges are the wall-valve coordinates b_le, b_ri, b_do, b_up of the paper's
// constraints (3)-(16).
func (p Placement) WallBox() grid.Rect { return p.Footprint().Expand(1) }

// Volume returns the ring length.
func (p Placement) Volume() int { return p.Shape.Volume() }

// CompatibleWith reports whether two placements may exist at the same time:
// their footprints must not touch or overlap (the one-valve band between
// devices is shared wall), which is the paper's non-overlap constraint (3)
// expressed through the wall coordinates.
func (p Placement) CompatibleWith(q Placement) bool {
	return p.Footprint().Distance(q.Footprint()) >= 1
}

// PortKind distinguishes chip ports.
type PortKind int

// Port kinds.
const (
	InPort  PortKind = iota // connected to an off-chip sample/reagent pump
	OutPort                 // connected to a waste sink or collector
)

// Port is a fixed opening on the chip boundary.
type Port struct {
	Kind PortKind
	At   grid.Point
	Name string
}

// Chip is a W×H virtual-valve matrix with per-valve actuation counters. It
// records what the synthesis result does to each valve; the counters are the
// paper's v(x,y) values plus the control-actuation bookkeeping.
type Chip struct {
	W, H  int
	Ports []Port

	pump [][]int // peristaltic actuations per valve
	ctrl [][]int // control (transport/loading) actuations per valve
}

// NewChip returns a chip with w×h virtual valves and the standard port set:
// two input ports on the left edge and one output port on the right edge
// (as in the paper's PCR example, "two input ports for samples and
// reagents, and one output port for waste and final product").
func NewChip(w, h int) *Chip {
	if w < 4 || h < 4 {
		panic(fmt.Sprintf("arch: chip %dx%d is too small", w, h))
	}
	c := &Chip{W: w, H: h}
	c.pump = make([][]int, h)
	c.ctrl = make([][]int, h)
	for y := 0; y < h; y++ {
		c.pump[y] = make([]int, w)
		c.ctrl[y] = make([]int, w)
	}
	c.Ports = []Port{
		{Kind: InPort, At: grid.Point{X: 0, Y: h / 3}, Name: "in1"},
		{Kind: InPort, At: grid.Point{X: 0, Y: 2 * h / 3}, Name: "in2"},
		{Kind: OutPort, At: grid.Point{X: w - 1, Y: h / 2}, Name: "out"},
	}
	return c
}

// Bounds returns the valve lattice rectangle.
func (c *Chip) Bounds() grid.Rect { return grid.RectWH(0, 0, c.W, c.H) }

// PlacementArea returns the rectangle of admissible left-bottom corners for
// a device of the given shape: the footprint and its wall band must fit on
// the lattice.
func (c *Chip) PlacementArea(s Shape) grid.Rect {
	return grid.Rect{X0: 1, Y0: 1, X1: c.W - s.W, Y1: c.H - s.H}
}

// InBounds reports whether p is on the lattice.
func (c *Chip) InBounds(p grid.Point) bool { return c.Bounds().Contains(p) }

// AddPump adds n peristaltic actuations to every ring valve of pl.
func (c *Chip) AddPump(pl Placement, n int) {
	for _, pt := range pl.Ring() {
		c.pump[pt.Y][pt.X] += n
	}
}

// AddPumpAt adds n peristaltic actuations to the valve at pt.
func (c *Chip) AddPumpAt(pt grid.Point, n int) {
	c.pump[pt.Y][pt.X] += n
}

// AddCtrl adds n control actuations to each given valve.
func (c *Chip) AddCtrl(points []grid.Point, n int) {
	for _, pt := range points {
		c.ctrl[pt.Y][pt.X] += n
	}
}

// PumpAt returns the peristaltic actuation count of the valve at (x, y).
func (c *Chip) PumpAt(x, y int) int { return c.pump[y][x] }

// CtrlAt returns the control actuation count of the valve at (x, y).
func (c *Chip) CtrlAt(x, y int) int { return c.ctrl[y][x] }

// TotalAt returns the total actuation count of the valve at (x, y).
func (c *Chip) TotalAt(x, y int) int { return c.pump[y][x] + c.ctrl[y][x] }

// MaxPump returns the largest peristaltic actuation count over all valves —
// the paper's optimisation objective w.
func (c *Chip) MaxPump() int {
	max := 0
	for y := 0; y < c.H; y++ {
		for x := 0; x < c.W; x++ {
			if c.pump[y][x] > max {
				max = c.pump[y][x]
			}
		}
	}
	return max
}

// MaxTotal returns the largest total actuation count over all valves — the
// vs_max columns of Table 1.
func (c *Chip) MaxTotal() int {
	max := 0
	for y := 0; y < c.H; y++ {
		for x := 0; x < c.W; x++ {
			if t := c.pump[y][x] + c.ctrl[y][x]; t > max {
				max = t
			}
		}
	}
	return max
}

// UsedValves counts valves with at least one actuation. Virtual valves that
// never actuate are not manufactured (they become functionless PDMS walls or
// permanently open chambers), so this is the #v column for our method.
func (c *Chip) UsedValves() int {
	n := 0
	for y := 0; y < c.H; y++ {
		for x := 0; x < c.W; x++ {
			if c.pump[y][x]+c.ctrl[y][x] > 0 {
				n++
			}
		}
	}
	return n
}

// Reset zeroes all actuation counters.
func (c *Chip) Reset() {
	for y := 0; y < c.H; y++ {
		for x := 0; x < c.W; x++ {
			c.pump[y][x] = 0
			c.ctrl[y][x] = 0
		}
	}
}

// Clone returns a deep copy of the chip.
func (c *Chip) Clone() *Chip {
	n := NewChip(c.W, c.H)
	n.Ports = append([]Port(nil), c.Ports...)
	for y := 0; y < c.H; y++ {
		copy(n.pump[y], c.pump[y])
		copy(n.ctrl[y], c.ctrl[y])
	}
	return n
}
