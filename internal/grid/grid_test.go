package grid

import (
	"testing"
	"testing/quick"
)

func TestPointDistances(t *testing.T) {
	tests := []struct {
		p, q           Point
		manhattan, che int
	}{
		{Point{0, 0}, Point{0, 0}, 0, 0},
		{Point{0, 0}, Point{3, 4}, 7, 4},
		{Point{-1, 2}, Point{2, -2}, 7, 4},
		{Point{5, 5}, Point{5, 9}, 4, 4},
	}
	for _, tt := range tests {
		if got := tt.p.Manhattan(tt.q); got != tt.manhattan {
			t.Errorf("%v.Manhattan(%v) = %d, want %d", tt.p, tt.q, got, tt.manhattan)
		}
		if got := tt.p.Chebyshev(tt.q); got != tt.che {
			t.Errorf("%v.Chebyshev(%v) = %d, want %d", tt.p, tt.q, got, tt.che)
		}
	}
}

func TestPointAddAndString(t *testing.T) {
	p := Point{1, 2}.Add(Point{3, -1})
	if p != (Point{4, 1}) {
		t.Fatalf("Add = %v, want (4,1)", p)
	}
	if p.String() != "(4,1)" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestRectBasics(t *testing.T) {
	r := RectWH(2, 3, 4, 2)
	if r != (Rect{2, 3, 6, 5}) {
		t.Fatalf("RectWH = %v", r)
	}
	if r.W() != 4 || r.H() != 2 || r.Area() != 8 {
		t.Fatalf("W/H/Area = %d/%d/%d", r.W(), r.H(), r.Area())
	}
	if r.Empty() {
		t.Fatal("non-degenerate rect reported empty")
	}
	if !r.Contains(Point{2, 3}) || !r.Contains(Point{5, 4}) {
		t.Fatal("Contains misses corner cells")
	}
	if r.Contains(Point{6, 4}) || r.Contains(Point{3, 5}) {
		t.Fatal("Contains includes cells outside the half-open bounds")
	}
}

func TestRectEmpty(t *testing.T) {
	for _, r := range []Rect{{}, {3, 3, 3, 5}, {4, 2, 2, 6}} {
		if !r.Empty() {
			t.Errorf("%v should be empty", r)
		}
		if r.Area() != 0 {
			t.Errorf("%v area = %d, want 0", r, r.Area())
		}
	}
}

func TestIntersect(t *testing.T) {
	a := RectWH(0, 0, 4, 4)
	b := RectWH(2, 2, 4, 4)
	got := a.Intersect(b)
	if got != (Rect{2, 2, 4, 4}) {
		t.Fatalf("Intersect = %v", got)
	}
	if a.OverlapArea(b) != 4 {
		t.Fatalf("OverlapArea = %d, want 4", a.OverlapArea(b))
	}
	c := RectWH(4, 0, 2, 2) // shares only an edge with a
	if a.Overlaps(c) {
		t.Fatal("edge-adjacent rects must not overlap (half-open)")
	}
}

func TestContainsRect(t *testing.T) {
	outer := RectWH(0, 0, 10, 10)
	if !outer.ContainsRect(RectWH(0, 0, 10, 10)) {
		t.Fatal("rect must contain itself")
	}
	if !outer.ContainsRect(Rect{}) {
		t.Fatal("every rect contains the empty rect")
	}
	if outer.ContainsRect(RectWH(8, 8, 3, 3)) {
		t.Fatal("overhanging rect reported contained")
	}
}

func TestDistance(t *testing.T) {
	a := RectWH(0, 0, 2, 2)
	tests := []struct {
		b Rect
		d int
	}{
		{RectWH(0, 0, 2, 2), 0}, // identical
		{RectWH(1, 1, 2, 2), 0}, // overlapping
		{RectWH(2, 0, 2, 2), 0}, // touching edge
		{RectWH(3, 0, 2, 2), 1}, // one unit gap in x
		{RectWH(0, 5, 2, 2), 3}, // three unit gap in y
		{RectWH(4, 4, 2, 2), 2}, // diagonal gap
	}
	for _, tt := range tests {
		if got := a.Distance(tt.b); got != tt.d {
			t.Errorf("Distance(%v, %v) = %d, want %d", a, tt.b, got, tt.d)
		}
		if got := tt.b.Distance(a); got != tt.d {
			t.Errorf("Distance is not symmetric for %v", tt.b)
		}
	}
}

func TestPerimeter(t *testing.T) {
	tests := []struct {
		r    Rect
		want int
	}{
		{RectWH(0, 0, 2, 2), 4},
		{RectWH(0, 0, 2, 3), 6},
		{RectWH(0, 0, 3, 3), 8},
		{RectWH(0, 0, 2, 4), 8},
		{RectWH(0, 0, 4, 2), 8},
		{RectWH(0, 0, 3, 4), 10},
		{RectWH(0, 0, 2, 5), 10},
		{RectWH(0, 0, 5, 5), 16},
	}
	for _, tt := range tests {
		per := tt.r.Perimeter()
		if len(per) != tt.want {
			t.Errorf("Perimeter(%v) has %d cells, want %d", tt.r, len(per), tt.want)
		}
		if tt.r.PerimeterLen() != tt.want {
			t.Errorf("PerimeterLen(%v) = %d, want %d", tt.r, tt.r.PerimeterLen(), tt.want)
		}
		seen := map[Point]bool{}
		for _, p := range per {
			if seen[p] {
				t.Errorf("Perimeter(%v) repeats %v", tt.r, p)
			}
			seen[p] = true
			if !tt.r.Contains(p) {
				t.Errorf("Perimeter(%v) includes outside point %v", tt.r, p)
			}
		}
	}
}

func TestInteriorPlusPerimeterIsArea(t *testing.T) {
	for w := 2; w <= 6; w++ {
		for h := 2; h <= 6; h++ {
			r := RectWH(1, 1, w, h)
			if got := len(r.Interior()) + len(r.Perimeter()); got != r.Area() {
				t.Errorf("%v: interior+perimeter = %d, want %d", r, got, r.Area())
			}
		}
	}
}

func TestPointsRowMajor(t *testing.T) {
	r := RectWH(1, 1, 2, 2)
	want := []Point{{1, 1}, {2, 1}, {1, 2}, {2, 2}}
	got := r.Points()
	if len(got) != len(want) {
		t.Fatalf("Points len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Points[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestExpand(t *testing.T) {
	r := RectWH(2, 2, 2, 2).Expand(1)
	if r != (Rect{1, 1, 5, 5}) {
		t.Fatalf("Expand = %v", r)
	}
}

// Property: intersection is commutative and its area never exceeds either
// operand's area.
func TestIntersectProperties(t *testing.T) {
	norm := func(a, b int8) (int, int) {
		lo, hi := int(a)%16, int(b)%16
		if lo > hi {
			lo, hi = hi, lo
		}
		return lo, hi + 1
	}
	f := func(ax0, ax1, ay0, ay1, bx0, bx1, by0, by1 int8) bool {
		aX0, aX1 := norm(ax0, ax1)
		aY0, aY1 := norm(ay0, ay1)
		bX0, bX1 := norm(bx0, bx1)
		bY0, bY1 := norm(by0, by1)
		a := Rect{aX0, aY0, aX1, aY1}
		b := Rect{bX0, bY0, bX1, bY1}
		ab, ba := a.Intersect(b), b.Intersect(a)
		if ab != ba {
			return false
		}
		if ab.Area() > a.Area() || ab.Area() > b.Area() {
			return false
		}
		return a.Overlaps(b) == (ab.Area() > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Distance(a,b)==0 iff the 1-expanded rectangles overlap or touch,
// and expanding either rect by Distance makes them touch or overlap.
func TestDistanceProperty(t *testing.T) {
	f := func(ax, ay, bx, by uint8) bool {
		a := RectWH(int(ax%20), int(ay%20), 2, 2)
		b := RectWH(int(bx%20), int(by%20), 3, 2)
		d := a.Distance(b)
		if d < 0 {
			return false
		}
		if d == 0 {
			return true
		}
		// Growing a by d must close the gap.
		return a.Expand(d).Overlaps(b) || a.Expand(d).Distance(b) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
