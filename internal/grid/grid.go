// Package grid provides the integer-lattice geometry used by the
// valve-centered architecture: points, axis-aligned rectangles, distances and
// iteration helpers. All coordinates are valve indices, not physical microns;
// one unit is the pitch of the virtual valve matrix.
package grid

import "fmt"

// Point is a lattice point (a virtual valve position).
type Point struct {
	X, Y int
}

// String returns "(x,y)".
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Manhattan returns the L1 distance between p and q.
func (p Point) Manhattan(q Point) int {
	return abs(p.X-q.X) + abs(p.Y-q.Y)
}

// Chebyshev returns the L∞ distance between p and q.
func (p Point) Chebyshev(q Point) int {
	return max(abs(p.X-q.X), abs(p.Y-q.Y))
}

// Rect is a half-open axis-aligned rectangle [X0,X1)×[Y0,Y1) on the lattice.
// A device of shape w×h placed at (x,y) covers Rect{x, y, x+w, y+h}.
type Rect struct {
	X0, Y0, X1, Y1 int
}

// RectWH returns the rectangle of width w and height h with its left-bottom
// corner at (x, y).
func RectWH(x, y, w, h int) Rect { return Rect{x, y, x + w, y + h} }

// String returns "[x0,y0..x1,y1)".
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d..%d,%d)", r.X0, r.Y0, r.X1, r.Y1)
}

// W returns the width of r.
func (r Rect) W() int { return r.X1 - r.X0 }

// H returns the height of r.
func (r Rect) H() int { return r.Y1 - r.Y0 }

// Area returns the number of lattice cells covered by r; degenerate
// rectangles have area 0.
func (r Rect) Area() int {
	if r.Empty() {
		return 0
	}
	return r.W() * r.H()
}

// Empty reports whether r covers no cell.
func (r Rect) Empty() bool { return r.X0 >= r.X1 || r.Y0 >= r.Y1 }

// Contains reports whether p lies inside r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X0 && p.X < r.X1 && p.Y >= r.Y0 && p.Y < r.Y1
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.Empty() {
		return true
	}
	return s.X0 >= r.X0 && s.Y0 >= r.Y0 && s.X1 <= r.X1 && s.Y1 <= r.Y1
}

// Intersect returns the intersection of r and s. The result may be empty.
func (r Rect) Intersect(s Rect) Rect {
	t := Rect{
		X0: max(r.X0, s.X0),
		Y0: max(r.Y0, s.Y0),
		X1: min(r.X1, s.X1),
		Y1: min(r.Y1, s.Y1),
	}
	if t.Empty() {
		return Rect{}
	}
	return t
}

// Overlaps reports whether r and s share at least one cell.
func (r Rect) Overlaps(s Rect) bool { return !r.Intersect(s).Empty() }

// OverlapArea returns the number of cells shared by r and s.
func (r Rect) OverlapArea(s Rect) int { return r.Intersect(s).Area() }

// Expand returns r grown by m units on every side.
func (r Rect) Expand(m int) Rect {
	return Rect{r.X0 - m, r.Y0 - m, r.X1 + m, r.Y1 + m}
}

// Distance returns the Chebyshev gap between r and s: 0 when they touch or
// overlap, otherwise the number of empty lattice units separating them.
func (r Rect) Distance(s Rect) int {
	dx := axisGap(r.X0, r.X1, s.X0, s.X1)
	dy := axisGap(r.Y0, r.Y1, s.Y0, s.Y1)
	return max(dx, dy)
}

func axisGap(a0, a1, b0, b1 int) int {
	switch {
	case a1 <= b0:
		return b0 - a1
	case b1 <= a0:
		return a0 - b1
	default:
		return 0
	}
}

// Points returns every lattice point covered by r in row-major order.
func (r Rect) Points() []Point {
	if r.Empty() {
		return nil
	}
	pts := make([]Point, 0, r.Area())
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			pts = append(pts, Point{x, y})
		}
	}
	return pts
}

// Perimeter returns the boundary cells of r in row-major order. For
// rectangles with W or H ≤ 2 this is every cell of r. The perimeter of a
// w×h rectangle has 2(w+h)-4 cells, which is the pump-ring volume of a
// dynamic mixer of that footprint.
func (r Rect) Perimeter() []Point {
	if r.Empty() {
		return nil
	}
	pts := make([]Point, 0, 2*(r.W()+r.H())-4)
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			if x == r.X0 || x == r.X1-1 || y == r.Y0 || y == r.Y1-1 {
				pts = append(pts, Point{x, y})
			}
		}
	}
	return pts
}

// PerimeterLen returns len(r.Perimeter()) without allocating.
func (r Rect) PerimeterLen() int {
	if r.Empty() {
		return 0
	}
	if r.W() <= 2 || r.H() <= 2 {
		return r.Area()
	}
	return 2*(r.W()+r.H()) - 4
}

// Interior returns the non-perimeter cells of r.
func (r Rect) Interior() []Point {
	inner := Rect{r.X0 + 1, r.Y0 + 1, r.X1 - 1, r.Y1 - 1}
	return inner.Points()
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
