package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"mfsynth/internal/anneal"
	"mfsynth/internal/graph"
	"mfsynth/internal/obs"
	"mfsynth/internal/place"
	"mfsynth/internal/schedule"
	"mfsynth/internal/synerr"
)

// Backend names one mapper strategy of the anytime portfolio. The order
// backends are listed in Options.Backends is their tie-break priority:
// when two backends produce equally good results, the earlier one wins,
// which is what keeps the race deterministic regardless of which
// goroutine finishes first.
type Backend string

// The portfolio backends.
const (
	// BackendILP is the paper's exact mapper (rolling-horizon or
	// monolithic branch-and-bound, per Place.Mode).
	BackendILP Backend = "ilp"
	// BackendGreedy is the constructive multi-start heuristic.
	BackendGreedy Backend = "greedy"
	// BackendAnneal is the seeded simulated-annealing mapper
	// (internal/anneal).
	BackendAnneal Backend = "anneal"
)

// Backends returns every known backend in canonical priority order.
func Backends() []Backend { return []Backend{BackendILP, BackendGreedy, BackendAnneal} }

// ParseBackends parses a comma-separated backend list ("ilp,anneal").
// The empty string and "none" mean the default single pipeline (no
// portfolio). Order is preserved — it is the tie-break priority — and
// duplicates collapse to their first occurrence.
func ParseBackends(s string) ([]Backend, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return nil, nil
	}
	var out []Backend
	for _, f := range strings.Split(s, ",") {
		b := Backend(strings.TrimSpace(f))
		switch b {
		case BackendILP, BackendGreedy, BackendAnneal:
		default:
			return nil, fmt.Errorf("core: unknown backend %q (want ilp, greedy or anneal)", f)
		}
		out = append(out, b)
	}
	return normalizeBackends(out)
}

// normalizeBackends validates and dedupes, preserving first-occurrence
// order.
func normalizeBackends(bs []Backend) ([]Backend, error) {
	var out []Backend
	seen := map[Backend]bool{}
	for _, b := range bs {
		switch b {
		case BackendILP, BackendGreedy, BackendAnneal:
		default:
			return nil, fmt.Errorf("core: unknown backend %q (want ilp, greedy or anneal)", string(b))
		}
		if seen[b] {
			continue
		}
		seen[b] = true
		out = append(out, b)
	}
	return out, nil
}

func backendNames(bs []Backend) string {
	names := make([]string, len(bs))
	for i, b := range bs {
		names[i] = string(b)
	}
	return strings.Join(names, ",")
}

// AnnealOptions tunes the simulated-annealing backend. The zero value
// means the anneal package defaults, so a zero-valued struct and one with
// the defaults spelled out fingerprint identically (the canonical-request
// contract).
type AnnealOptions struct {
	// Seed is the base RNG seed (default anneal.DefaultSeed). The result
	// is a pure function of the seed: same seed, same mapping.
	Seed int64
	// Replicates is the number of independent restarts (default 8).
	Replicates int
	// Iters is the per-replicate move budget (default 4000).
	Iters int
	// InitTemp and Cooling define the geometric temperature schedule
	// (defaults 1.5 and 0.998).
	InitTemp float64
	Cooling  float64
}

// WithDefaults returns the options with every zero field replaced by its
// default. verify's canonical request uses it so the fingerprint is
// stable under spelling out defaults.
func (a AnnealOptions) WithDefaults() AnnealOptions {
	if a.Seed == 0 {
		a.Seed = anneal.DefaultSeed
	}
	if a.Replicates == 0 {
		a.Replicates = anneal.DefaultReplicates
	}
	if a.Iters == 0 {
		a.Iters = anneal.DefaultIters
	}
	if a.InitTemp == 0 {
		a.InitTemp = anneal.DefaultInitTemp
	}
	if a.Cooling == 0 {
		a.Cooling = anneal.DefaultCooling
	}
	return a
}

// backendOptions specialises the run options for one portfolio lane. The
// ILP lane keeps the configured exact mode; the greedy lane forces the
// heuristic; the anneal lane installs the annealer as the ladder's first
// rung with greedy fallbacks (an anneal failure must not cascade into a
// second expensive search).
func backendOptions(opts Options, b Backend) Options {
	o := opts
	o.Backends = nil
	o.mapper = nil
	switch b {
	case BackendILP:
		if o.Place.Mode == place.Greedy || o.Place.Mode == place.Annealed {
			o.Place.Mode = place.RollingHorizon
		}
	case BackendGreedy:
		o.Place.Mode = place.Greedy
	case BackendAnneal:
		o.Place.Mode = place.Greedy
		an := opts.Anneal.WithDefaults()
		o.mapper = func(ctx context.Context, sched *schedule.Result, cfg place.Config) (*place.Mapping, error) {
			m, _, err := anneal.MapCtx(ctx, sched, anneal.Config{
				Place:      cfg,
				Seed:       an.Seed,
				Replicates: an.Replicates,
				Iters:      an.Iters,
				InitTemp:   an.InitTemp,
				Cooling:    an.Cooling,
				Workers:    cfg.Workers,
				Obs:        cfg.Obs,
			})
			return m, err
		}
	}
	return o
}

// RaceReport records the outcome of an anytime portfolio race, one lane
// per backend in priority order.
type RaceReport struct {
	// Winner is the backend whose result was returned.
	Winner string `json:"winner"`
	// Lanes lists every backend's outcome.
	Lanes []RaceLane `json:"lanes"`
}

// RaceLane is one backend's outcome within a race.
type RaceLane struct {
	Backend string `json:"backend"`
	// Ok is true when the backend produced a result; Err carries its
	// failure otherwise (a deadline-expired exact solve, typically).
	Ok  bool   `json:"ok"`
	Err string `json:"err,omitempty"`
	// Seconds is the lane's wall-clock time.
	Seconds float64 `json:"seconds"`
	// The result quality, for Ok lanes.
	VsMax1       int `json:"vs_max1,omitempty"`
	VsMax2       int `json:"vs_max2,omitempty"`
	UsedValves   int `json:"used_valves,omitempty"`
	Dropped      int `json:"dropped,omitempty"`
	FailedRoutes int `json:"failed_routes,omitempty"`
	// Won marks the winning lane.
	Won bool `json:"won,omitempty"`
}

// raceCost is the quality key a race is judged by, lexicographic best
// first: completeness (dropped operations plus unrouted nets), then the
// paper's objective and its tie-breaks. It deliberately matches the
// report package's Table 1 reading order.
func raceCost(r *Result) [4]int {
	return [4]int{
		len(r.Mapping.Dropped) + r.FailedRoutes,
		r.VsMax1,
		r.VsMax2,
		r.UsedValves,
	}
}

func costLess(a, b [4]int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// pickWinner returns the index of the best non-nil result, scanning in
// priority order with a strictly-less comparison — ties go to the
// earlier backend, so the choice does not depend on finish order.
// Returns -1 when every lane failed.
func pickWinner(rs []*Result) int {
	win := -1
	var best [4]int
	for i, r := range rs {
		if r == nil {
			continue
		}
		c := raceCost(r)
		if win < 0 || costLess(c, best) {
			win, best = i, c
		}
	}
	return win
}

// synthesizeRace runs one full pipeline per backend concurrently under
// the same context and returns the best result (pickWinner). The race
// waits for every lane: the caller's deadline is the time bound, and a
// lane that cannot answer by then fails with ErrDeadline and simply
// loses — the race itself succeeds as long as one lane finished, which
// is the anytime contract.
func synthesizeRace(ctx context.Context, a *graph.Assay, opts Options, backends []Backend, root *obs.Span) (*Result, error) {
	raceSp := root.Start("race", obs.KV("backends", backendNames(backends)))
	defer raceSp.End()
	bus := opts.Trace.ProgressBus()

	var mu sync.Mutex
	lanes := make([]obs.BackendLane, len(backends))
	for i, b := range backends {
		lanes[i] = obs.BackendLane{Backend: string(b), State: "running"}
	}
	// publishLocked mirrors the lane states onto the progress bus; mu must
	// be held (the clone keeps published snapshots immutable).
	publishLocked := func() {
		cl := make([]obs.BackendLane, len(lanes))
		copy(cl, lanes)
		bus.Update(func(p *obs.Progress) { p.Race = &obs.RaceProgress{Backends: cl} })
	}
	mu.Lock()
	publishLocked()
	mu.Unlock()

	type lane struct {
		res *Result
		err error
		dur time.Duration
	}
	results := make([]lane, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		wg.Add(1)
		go func(i int, b Backend) {
			defer wg.Done()
			sp := raceSp.StartTrack("race:"+string(b), "race.backend",
				obs.KV("backend", string(b)))
			t0 := time.Now()
			var res *Result
			var err error
			func() {
				// Per-lane recovery: one panicking backend loses its lane,
				// it does not take the race (or the process) down.
				defer func() {
					if p := recover(); p != nil {
						res, err = nil, fmt.Errorf("core: backend %s panic: %v", b, p)
					}
				}()
				res, err = synthesizeOne(ctx, a, backendOptions(opts, b), sp)
			}()
			dur := time.Since(t0)
			if err != nil {
				sp.Set(obs.KV("error", err.Error()))
			} else {
				sp.Set(obs.KV("vs_max1", res.VsMax1), obs.KV("vs_max2", res.VsMax2))
			}
			sp.End()

			mu.Lock()
			results[i] = lane{res: res, err: err, dur: dur}
			lanes[i].Seconds = dur.Seconds()
			if err != nil {
				lanes[i].State = "failed"
			} else {
				lanes[i].State = "done"
				lanes[i].VsMax1 = res.VsMax1
			}
			publishLocked()
			mu.Unlock()
		}(i, b)
	}
	wg.Wait()

	rs := make([]*Result, len(results))
	for i, l := range results {
		rs[i] = l.res
	}
	win := pickWinner(rs)
	if win < 0 {
		// Every lane failed. Surface the highest-priority lane's error;
		// prefer a non-deadline cause when one exists (it explains more).
		var first, nonDeadline error
		for _, l := range results {
			if l.err == nil {
				continue
			}
			if first == nil {
				first = l.err
			}
			if nonDeadline == nil && !errors.Is(l.err, synerr.ErrDeadline) {
				nonDeadline = l.err
			}
		}
		if nonDeadline != nil {
			return nil, nonDeadline
		}
		if first != nil {
			return nil, first
		}
		return nil, synerr.Deadline("race", ctx.Err())
	}

	winner := results[win].res
	winner.Backend = string(backends[win])
	report := &RaceReport{Winner: string(backends[win])}
	for i, l := range results {
		rl := RaceLane{
			Backend: string(backends[i]),
			Seconds: l.dur.Seconds(),
			Won:     i == win,
		}
		if l.err != nil {
			rl.Err = l.err.Error()
		} else if l.res != nil {
			rl.Ok = true
			rl.VsMax1 = l.res.VsMax1
			rl.VsMax2 = l.res.VsMax2
			rl.UsedValves = l.res.UsedValves
			rl.Dropped = len(l.res.Mapping.Dropped)
			rl.FailedRoutes = l.res.FailedRoutes
		}
		report.Lanes = append(report.Lanes, rl)
	}
	winner.Race = report

	mu.Lock()
	lanes[win].Won = true
	publishLocked()
	mu.Unlock()
	raceSp.Set(obs.KV("winner", string(backends[win])),
		obs.KV("vs_max1", winner.VsMax1))
	return winner, nil
}

// Complete routes and simulates an externally produced mapping against
// the given schedule, yielding a full Result with the Table 1 metrics —
// the downstream two thirds of the pipeline without the mapper. The
// anneal property tests run every accepted annealing state through it so
// verify.Conformance can audit states the normal flow never surfaces.
func Complete(ctx context.Context, a *graph.Assay, sched *schedule.Result, m *place.Mapping, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	root := opts.Trace.Start("complete", obs.KV("assay", a.Name))
	defer root.End()
	res := &Result{
		Assay:    a,
		Schedule: sched,
		Mapping:  m,
		Grid:     opts.Place.Grid,
		opts:     opts,
	}
	if len(m.Dropped) > 0 {
		d := res.degrade()
		for _, op := range m.Dropped {
			d.DroppedOps = append(d.DroppedOps, a.Op(op).Name)
		}
		sort.Strings(d.DroppedOps)
		d.escalate(DegradePartial)
	}
	start := time.Now()
	routeSp := root.Start("route")
	err := res.routeAndSimulate(ctx, routeSp)
	routeSp.End()
	if err != nil {
		return nil, err
	}
	res.computeMetrics()
	res.Runtime = time.Since(start)
	return res, nil
}
