package core

import (
	"mfsynth/internal/graph"
	"mfsynth/internal/grid"
)

// Role is what a virtual valve is doing at one instant — the paper's
// valve-role-changing concept made inspectable (control, pump, wall).
type Role int

// Valve roles at a time instant, in ascending precedence (RolesAt keeps
// the strongest role when several apply).
const (
	// Unused: the valve has not actuated yet and is not part of any active
	// structure (a functionless wall if it never actuates).
	Unused Role = iota
	// Closed: a manufactured valve currently holding shut.
	Closed
	// WallRole: closed as the boundary of a device alive right now.
	WallRole
	// ControlRole: open on an active transport path.
	ControlRole
	// StorageRole: inside an in situ storage holding fluid.
	StorageRole
	// PumpRole: part of a running mixer's peristaltic ring.
	PumpRole
)

// String returns the role name.
func (r Role) String() string {
	switch r {
	case Unused:
		return "unused"
	case Closed:
		return "closed"
	case PumpRole:
		return "pump"
	case ControlRole:
		return "control"
	case WallRole:
		return "wall"
	case StorageRole:
		return "storage"
	default:
		return "role?"
	}
}

// RolesAt returns the role of every valve at time t, indexed [y][x].
// Precedence: pump > storage > control > wall > closed/unused.
func (r *Result) RolesAt(t int) [][]Role {
	roles := make([][]Role, r.Grid)
	for y := range roles {
		roles[y] = make([]Role, r.Grid)
	}
	// Closed vs unused baseline from cumulative actuation.
	chip := r.ChipAt(t, 1)
	for y := 0; y < r.Grid; y++ {
		for x := 0; x < r.Grid; x++ {
			if chip.TotalAt(x, y) > 0 {
				roles[y][x] = Closed
			}
		}
	}
	set := func(p grid.Point, role Role) {
		if roles[p.Y][p.X] < role {
			roles[p.Y][p.X] = role
		}
	}
	for id, pl := range r.Mapping.Placements {
		w := r.Mapping.Windows[id]
		if t < w[0] || t >= w[1] {
			continue
		}
		// Wall band around any alive device.
		for _, c := range pl.WallBox().Points() {
			if c.X < 0 || c.Y < 0 || c.X >= r.Grid || c.Y >= r.Grid {
				continue
			}
			if !pl.Footprint().Contains(c) {
				set(c, WallRole)
			}
		}
		if tl := r.Mapping.Storages[id]; tl != nil && tl.Active(t) {
			for _, c := range pl.Footprint().Points() {
				set(c, StorageRole)
			}
			continue
		}
		if r.Assay.Op(id).Kind == graph.Mix &&
			t >= r.Schedule.Start[id] && t < r.Schedule.Finish[id] {
			for _, c := range pl.Ring() {
				set(c, PumpRole)
			}
		}
	}
	for _, tr := range r.Transports {
		if tr.T != t || tr.InPlace {
			continue
		}
		for _, c := range tr.Path {
			set(c, ControlRole)
		}
	}
	return roles
}

// RoleCounts tallies the roles at time t.
func (r *Result) RoleCounts(t int) map[Role]int {
	out := map[Role]int{}
	for _, row := range r.RolesAt(t) {
		for _, role := range row {
			out[role]++
		}
	}
	return out
}
