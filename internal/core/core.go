// Package core implements the paper's overall reliability-aware synthesis
// (Algorithm 1): it takes a bioassay and a scheduling policy, produces the
// scheduling result, maps every operation to a dynamic device on the
// valve-centered architecture (internal/place), routes all fluid transports
// with storage pass-through and rip-up & re-route (internal/route), and
// simulates the per-valve actuation counts that Table 1 reports.
//
// Two evaluation settings are produced, as in the paper's Section 4:
//
//   - Setting 1: every ring valve of a dynamic mixer is actuated 40 times
//     per mixing operation — the same per-valve effort as a dedicated
//     mixer's pump valve (conservative).
//   - Setting 2: the same synthesis result, but the per-valve count is
//     scaled so a mixing operation costs 120 total actuations (three
//     dedicated pump valves × 40), e.g. 15 per valve on an 8-valve ring.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sort"
	"time"

	"mfsynth/internal/arch"
	"mfsynth/internal/fault"
	"mfsynth/internal/graph"
	"mfsynth/internal/grid"
	"mfsynth/internal/obs"
	"mfsynth/internal/place"
	"mfsynth/internal/route"
	"mfsynth/internal/schedule"
	"mfsynth/internal/synerr"
)

// DefaultPumpActuations is the per-valve actuation count of one mixing
// operation in setting 1 (from the paper, after [9]).
const DefaultPumpActuations = 40

// DefaultDedicatedPumpValves is the number of pump valves in a traditional
// dedicated mixer (Fig. 2), fixing setting 2's per-operation total at
// 3 × 40 = 120 actuations.
const DefaultDedicatedPumpValves = 3

// Options configures a synthesis run.
type Options struct {
	// Policy bounds device concurrency during scheduling (the traditional
	// design whose schedule is reused, as in the paper's evaluation).
	Policy schedule.Resources
	// TransportDelay in time units (default schedule.DefaultTransportDelay).
	TransportDelay int
	// Place configures the dynamic-device mapper. Place.Grid must be set.
	Place place.Config
	// PumpActuations is setting 1's per-valve per-operation count
	// (default 40).
	PumpActuations int
	// DedicatedPumpValves fixes setting 2's per-operation total as
	// DedicatedPumpValves × PumpActuations (default 3).
	DedicatedPumpValves int
	// DisableStoragePassthrough treats in situ storages as routing
	// obstacles (the Fig. 8(a) behaviour; ablation of Section 3.5).
	DisableStoragePassthrough bool
	// Workers bounds the synthesis-internal parallelism — the multi-start
	// greedy fan-out and the branch-and-bound relaxation solves
	// (0 = runtime.GOMAXPROCS, 1 = legacy serial). Every value produces
	// bit-identical results, provided Place.SolveTimeout does not bind
	// (see place.Config.Workers); only wall-clock time changes.
	// Place.Workers, when set, takes precedence.
	Workers int
	// Trace, when non-nil, records a hierarchical span tree and metrics for
	// the run (one root span per Synthesize call). Tracing never changes
	// synthesis results; a nil Trace costs nothing.
	Trace *obs.Trace
	// Faults lists the defective valves the synthesis must work around:
	// stuck-closed cells are kept out of every footprint and path,
	// stuck-open cells out of every ring and wall band, and wear-out cells
	// whose actuation count would exceed their threshold are re-mapped
	// around. Nil means a fault-free chip and changes nothing — with no
	// faults the result is bit-identical to a run without this field.
	Faults *fault.Set
	// MaxRipups bounds the rip-up & re-route attempts per net
	// (Algorithm 1 L13-L17). Default 8.
	MaxRipups int
	// DisableDegradation turns off the graceful-degradation ladder: only
	// the configured mapper runs, and its failure is the run's failure.
	// Failed routes and wear overruns are still reported either way.
	DisableDegradation bool
	// Backends, when it lists two or more backends, races one full
	// pipeline per backend concurrently under the caller's context and
	// returns the best result by (completeness, VsMax1, VsMax2,
	// UsedValves), ties broken by list order — the anytime portfolio. A
	// single entry runs that backend alone; empty means the classic
	// single pipeline with Place.Mode as configured.
	Backends []Backend
	// Anneal tunes the simulated-annealing backend (used only when
	// Backends lists "anneal"); zero fields mean the anneal defaults.
	Anneal AnnealOptions
	// WearBias scales how strongly cumulative per-valve wear steers the
	// placement objective: WearCounts is converted into per-operation load
	// units (count × WearBias / PumpActuations, rounded) and seeded into
	// the mapper's load accumulation (place.Config.WearPrior), so a
	// re-synthesis on a worn chip routes new duty onto lightly-used
	// valves. 0 disables the bias; 1 weighs past wear equally with new
	// load. The anneal backend searches per-run cost and ignores the
	// prior.
	WearBias float64
	// WearCounts is the chip's cumulative per-valve actuation counters in
	// row-major Place.Grid×Place.Grid order (fleet telemetry); consulted
	// only when WearBias > 0. An explicitly set Place.WearPrior takes
	// precedence.
	WearCounts []int
	// mapper overrides the first ladder rung's mapper (set by
	// backendOptions for the anneal lane; nil means place.MapCtx).
	mapper func(ctx context.Context, sched *schedule.Result, cfg place.Config) (*place.Mapping, error)
}

// withDefaults resolves the derived option defaults shared by every
// entry point (SynthesizeCtx, Complete).
func (o Options) withDefaults() Options {
	if o.PumpActuations == 0 {
		o.PumpActuations = DefaultPumpActuations
	}
	if o.DedicatedPumpValves == 0 {
		o.DedicatedPumpValves = DefaultDedicatedPumpValves
	}
	if o.Place.Grid == 0 {
		o.Place.Grid = 10
	}
	if o.Place.Workers == 0 {
		o.Place.Workers = o.Workers
	}
	if o.WearBias > 0 && len(o.WearCounts) > 0 && o.Place.WearPrior == nil {
		o.Place.WearPrior = WearPriorUnits(o.WearCounts, o.WearBias, o.PumpActuations)
	}
	return o
}

// WearPriorUnits converts cumulative per-valve actuation counters into the
// per-operation load units place.Config.WearPrior expects, scaled by the
// bias weight: round(count × bias / pumpActuations). Exported so the
// canonical-request writer resolves the prior exactly as the engine does.
func WearPriorUnits(counts []int, bias float64, pumpActuations int) []int {
	if pumpActuations <= 0 {
		pumpActuations = DefaultPumpActuations
	}
	out := make([]int, len(counts))
	for i, c := range counts {
		if c > 0 {
			out[i] = int(float64(c)*bias/float64(pumpActuations) + 0.5)
		}
	}
	return out
}

// EventKind classifies actuation events.
type EventKind int

// Event kinds.
const (
	// PumpEvent is a mixing operation's peristalsis on its ring valves.
	PumpEvent EventKind = iota
	// CtrlEvent is a transport path being opened and closed once.
	CtrlEvent
)

// Event is one actuation event of the synthesis result.
type Event struct {
	// T is the time the event occurs.
	T int
	// Kind classifies the event.
	Kind EventKind
	// Cells are the valves involved.
	Cells []grid.Point
	// Op is the operation that caused the event.
	Op int
	// Ring is the ring length of the pumping device (PumpEvent only); it
	// determines the per-valve count in setting 2.
	Ring int
}

// Transport is one routed fluid movement.
type Transport struct {
	// T is the transport time.
	T int
	// From and To name the endpoints (operation names or port names).
	From, To string
	// FromID and ToID are the endpoint operation IDs, -1 for chip ports.
	FromID, ToID int
	// Path is the routed cell sequence.
	Path route.Path
	// InPlace marks a transfer whose source and destination devices share
	// cells: the product is already inside the in situ storage, no valve
	// actuates (the paper's Section 3.3 benefit of turning a storage into
	// its device directly, "saving the transportation effort").
	InPlace bool
}

// Result is a complete synthesis result with both evaluation settings.
type Result struct {
	Assay    *graph.Assay
	Schedule *schedule.Result
	Mapping  *place.Mapping
	Grid     int

	// Events is the full actuation event log in time order.
	Events []Event
	// Transports lists every routed fluid movement.
	Transports []Transport

	// VsMax1 and VsPump1 are setting 1's largest total and pump-only
	// per-valve actuation counts (Table 1's "vs 1max" as "45(40)").
	VsMax1, VsPump1 int
	// VsMax2 and VsPump2 are setting 2's counterparts.
	VsMax2, VsPump2 int
	// UsedValves is the number of virtual valves that actuate at least
	// once — the valves actually manufactured (#v).
	UsedValves int
	// FailedRoutes counts transports that could not be routed (0 on all
	// benchmarks; kept for diagnostics on dense custom assays). Each one
	// is itemised in Degradation.FailedNets.
	FailedRoutes int
	// Degradation is non-nil when the run deviated from nominal in any
	// way: a fallback rung of the mapper was used, operations were
	// dropped, nets went unrouted, or wear-out valves were promoted. Nil
	// on every clean run, so nominal results are unchanged bit for bit.
	Degradation *Degradation
	// Runtime is the wall-clock synthesis time.
	Runtime time.Duration
	// PhaseSeconds is the wall-clock time spent in each pipeline phase
	// (keys "schedule", "place", "route"), accumulated over wear-promotion
	// rounds. Route time includes the actuation simulation.
	PhaseSeconds map[string]float64
	// Backend names the backend that produced this result when
	// Options.Backends was set ("ilp", "greedy" or "anneal"); empty for
	// the classic single pipeline.
	Backend string
	// Race is the portfolio outcome, non-nil only when two or more
	// backends raced.
	Race *RaceReport

	opts Options
}

// Options returns the effective options of the run, with defaults applied
// (PumpActuations, DedicatedPumpValves, Place.Grid). Conformance checkers
// need them to re-derive the actuation accounting from first principles.
func (r *Result) Options() Options { return r.opts }

// Synthesize runs the full flow on the assay.
func Synthesize(a *graph.Assay, opts Options) (*Result, error) {
	return SynthesizeCtx(context.Background(), a, opts)
}

// maxWearRounds bounds the wear-promotion re-mapping loop: each round may
// push actuations onto fresh wear-out cells, so without a bound a chip
// riddled with low-threshold valves could cycle. After the last round the
// remaining overruns are reported in Degradation.WearExceeded instead.
const maxWearRounds = 4

// SynthesizeCtx is Synthesize with cancellation: ctx is checked in every
// phase (scheduling, each branch-and-bound node, routing each net), and a
// cancelled run returns an error matching synerr.ErrDeadline. A panic
// anywhere in the pipeline is recovered and returned as an error — a
// synthesis call never takes the process down.
//
// With Options.Faults set, mapping and routing avoid the defective valves,
// and wear-out cells whose simulated actuation count exceeds their
// threshold are promoted to obstacles and the synthesis re-runs (bounded by
// maxWearRounds). When the configured mapper cannot produce a result, a
// degradation ladder backs off — relaxed couplings, then greedy, then
// best-effort partial mapping — and the accepted rung is reported in
// Result.Degradation rather than hidden behind an error.
func SynthesizeCtx(ctx context.Context, a *graph.Assay, opts Options) (res *Result, err error) {
	start := time.Now()
	opts = opts.withDefaults()
	root := opts.Trace.Start("synthesize",
		obs.KV("assay", a.Name), obs.KV("grid", opts.Place.Grid),
		obs.KV("workers", opts.Place.Workers))
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("core: synthesis panic: %v", p)
		}
		if err != nil {
			root.Set(obs.KV("error", err.Error()))
		} else {
			root.Set(obs.KV("vs_max1", res.VsMax1), obs.KV("vs_max2", res.VsMax2),
				obs.KV("used_valves", res.UsedValves))
		}
		root.End()
	}()

	backends, err := normalizeBackends(opts.Backends)
	if err != nil {
		return nil, err
	}
	switch len(backends) {
	case 0:
		res, err = synthesizeOne(ctx, a, opts, root)
	case 1:
		res, err = synthesizeOne(ctx, a, backendOptions(opts, backends[0]), root)
		if res != nil {
			res.Backend = string(backends[0])
		}
	default:
		res, err = synthesizeRace(ctx, a, opts, backends, root)
	}
	if err != nil {
		return nil, err
	}
	res.Runtime = time.Since(start)
	// The Done pulse is published exactly once, here — never by the
	// per-backend pipelines, whose early completion must not end a
	// progress stream while other race lanes still run.
	opts.Trace.ProgressBus().Update(func(p *obs.Progress) { p.Done = true })
	return res, nil
}

// synthesizeOne runs the classic single pipeline: the wear-promotion
// loop around schedule→place→route→simulate. It neither applies option
// defaults nor publishes the final Done pulse — SynthesizeCtx owns both,
// so race lanes can call this concurrently.
func synthesizeOne(ctx context.Context, a *graph.Assay, opts Options, root *obs.Span) (res *Result, err error) {
	// Wear-promotion loop: synthesize, simulate the actuation counts,
	// promote over-threshold wear-out valves to obstacles, repeat.
	working := opts.Faults
	var worn []grid.Point
	var phaseAcc map[string]float64
	for round := 0; ; round++ {
		attemptOpts := opts
		attemptOpts.Faults = working
		res, err = synthesizeAttempt(ctx, a, attemptOpts, root)
		if err != nil {
			return nil, err
		}
		for k, v := range phaseAcc {
			res.PhaseSeconds[k] += v
		}
		phaseAcc = res.PhaseSeconds
		over := wearExceeded(res, working)
		if len(over) == 0 {
			break
		}
		if round == maxWearRounds-1 {
			res.degrade().WearExceeded = over
			break
		}
		working = working.Clone()
		for _, p := range over {
			working.Promote(p)
			worn = append(worn, p)
		}
		root.Mark("wear.promote",
			obs.KV("round", round), obs.KV("cells", len(over)))
	}
	if len(worn) > 0 {
		sort.Slice(worn, func(i, j int) bool {
			if worn[i].Y != worn[j].Y {
				return worn[i].Y < worn[j].Y
			}
			return worn[i].X < worn[j].X
		})
		res.degrade().WornValves = worn
	}
	return res, nil
}

// phaseDo runs f under a pprof label marking the pipeline phase, so CPU
// profiles (continuous capture included, see internal/obs/export) can be
// filtered and attributed per phase. Labels propagate through the context
// into spawned worker goroutines.
func phaseDo(ctx context.Context, phase string, f func(ctx context.Context)) {
	pprof.Do(ctx, pprof.Labels("mf_phase", phase), f)
}

// synthesizeAttempt runs one schedule→place→route→simulate pass against a
// fixed working fault set.
func synthesizeAttempt(ctx context.Context, a *graph.Assay, opts Options, root *obs.Span) (*Result, error) {
	bus := opts.Trace.ProgressBus()
	phases := map[string]float64{}
	// enterPhase announces the running phase on the progress bus with the
	// per-phase seconds accumulated so far; the map is cloned per update
	// (published snapshots are immutable, see obs.Progress).
	enterPhase := func(name string) {
		bus.Update(func(p *obs.Progress) {
			p.Assay = a.Name
			p.Phase = name
			p.Done = false
			cl := make(map[string]float64, len(phases))
			for k, v := range phases {
				cl[k] = v
			}
			p.Phases = cl
		})
	}

	t0 := time.Now()
	enterPhase("schedule")
	schedSp := root.Start("schedule")
	var sched *schedule.Result
	var err error
	phaseDo(ctx, "schedule", func(ctx context.Context) {
		sched, err = schedule.ListCtx(ctx, a, schedule.Options{
			TransportDelay: opts.TransportDelay,
			Resources:      opts.Policy,
			Obs:            schedSp,
		})
	})
	schedSp.End()
	phases["schedule"] = time.Since(t0).Seconds()
	if err != nil {
		return nil, err
	}

	t0 = time.Now()
	enterPhase("place")
	var mapping *place.Mapping
	var deg *Degradation
	phaseDo(ctx, "place", func(ctx context.Context) {
		mapping, deg, err = placeLadder(ctx, sched, opts, root)
	})
	phases["place"] = time.Since(t0).Seconds()
	if err != nil {
		return nil, err
	}

	res := &Result{
		Assay:       a,
		Schedule:    sched,
		Mapping:     mapping,
		Grid:        opts.Place.Grid,
		Degradation: deg,
		opts:        opts,
	}
	if len(mapping.Dropped) > 0 {
		d := res.degrade()
		for _, op := range mapping.Dropped {
			d.DroppedOps = append(d.DroppedOps, a.Op(op).Name)
		}
		d.escalate(DegradePartial)
	}

	t0 = time.Now()
	enterPhase("route")
	routeSp := root.Start("route")
	phaseDo(ctx, "route", func(ctx context.Context) {
		err = res.routeAndSimulate(ctx, routeSp)
	})
	routeSp.End()
	if err != nil {
		return nil, err
	}

	enterPhase("sim")
	simSp := root.Start("sim")
	phaseDo(ctx, "sim", func(context.Context) {
		res.computeMetrics()
	})
	simSp.Set(obs.KV("events", len(res.Events)))
	simSp.End()
	phases["route"] = time.Since(t0).Seconds()
	enterPhase("sim") // re-announce with the final route+sim seconds
	res.PhaseSeconds = phases
	return res, nil
}

// placeLadder maps the scheduled assay, backing off rung by rung when the
// configured mapper fails: the full configuration first, then with the
// storage-overlap and routing-convenient couplings dropped (the two
// constraint families whose interaction causes repair divergence on tight
// instances), then the greedy heuristic, and finally greedy in best-effort
// mode, which drops unplaceable operations instead of failing. The first
// rung that succeeds wins; any later rung yields a non-nil Degradation
// listing the failed attempts. Cancellation aborts the ladder immediately
// — a dead context would fail every rung for the wrong reason.
func placeLadder(ctx context.Context, sched *schedule.Result, opts Options, root *obs.Span) (*place.Mapping, *Degradation, error) {
	type rung struct {
		name   string
		level  DegradationLevel
		mutate func(*place.Config)
	}
	rungs := []rung{
		{"configured", DegradeNone, func(*place.Config) {}},
		{"relaxed-couplings", DegradeRelaxed, func(c *place.Config) {
			c.NoStorageOverlap = true
			c.NoRoutingConvenient = true
		}},
		{"greedy", DegradeGreedy, func(c *place.Config) {
			c.Mode = place.Greedy
		}},
		{"greedy-best-effort", DegradePartial, func(c *place.Config) {
			c.Mode = place.Greedy
			c.BestEffort = true
		}},
	}
	if opts.DisableDegradation {
		rungs = rungs[:1]
	}
	var attempts []Attempt
	var firstErr error
	for i, rg := range rungs {
		cfg := opts.Place
		if opts.Faults != nil {
			cfg.Faults = opts.Faults // the working set, wear promotions included
		}
		rg.mutate(&cfg)
		placeSp := root.Start("place", obs.KV("rung", rg.name))
		cfg.Obs = placeSp
		var mapping *place.Mapping
		var err error
		if i == 0 && opts.mapper != nil {
			// The backend's own mapper owns the first rung (the anneal
			// lane); the fallback rungs below stay place.MapCtx.
			mapping, err = opts.mapper(ctx, sched, cfg)
		} else {
			mapping, err = place.MapCtx(ctx, sched, cfg)
		}
		placeSp.End()
		if err == nil {
			var deg *Degradation
			if i > 0 {
				deg = &Degradation{Level: rg.level, Attempts: attempts}
			}
			return mapping, deg, nil
		}
		if errors.Is(err, synerr.ErrDeadline) {
			return nil, nil, err
		}
		if firstErr == nil {
			firstErr = err
		}
		attempts = append(attempts, Attempt{Rung: rg.name, Err: err.Error()})
	}
	return nil, nil, fmt.Errorf("core: every placement rung failed: %w", firstErr)
}

// wearExceeded simulates the result's full actuation horizon and returns
// the wear-out cells of fs whose total count exceeds their threshold,
// sorted row-major.
func wearExceeded(r *Result, fs *fault.Set) []grid.Point {
	wearOuts := fs.WearOuts()
	if len(wearOuts) == 0 {
		return nil
	}
	chip := r.ChipAt(-1, 1)
	var out []grid.Point
	for _, f := range wearOuts {
		if chip.TotalAt(f.At.X, f.At.Y) > f.Threshold {
			out = append(out, f.At)
		}
	}
	return out
}

// routeObs bundles the routing-phase instrument handles. Every field is
// nil-safe, so the zero value (nil trace) adds only nil checks to the loop.
type routeObs struct {
	nets       *obs.Counter
	inPlace    *obs.Counter
	failed     *obs.Counter
	pops       *obs.Counter
	ripups     *obs.Counter
	crossings  *obs.Counter
	wirelength *obs.Counter
	pathLen    *obs.Histogram

	// Live progress: the registry counters above are cumulative across a
	// whole trace (e.g. all Table 1 cells), so the bus snapshot carries
	// its own per-run tallies. All routing runs on one goroutine.
	bus *obs.ProgressBus
	run obs.RouteProgress
}

// publish mirrors the per-run tallies onto the progress bus (fresh
// sub-struct per update — published snapshots are immutable).
func (ro *routeObs) publish() {
	if ro.bus == nil {
		return
	}
	run := ro.run
	ro.bus.Update(func(p *obs.Progress) { p.Route = &run })
}

// routeAndSimulate builds the event log: pump events from the schedule and
// control events from routing every transport (Algorithm 1 L10-L19).
func (r *Result) routeAndSimulate(ctx context.Context, sp *obs.Span) error {
	a := r.Assay
	sched := r.Schedule
	m := r.Mapping
	chip := arch.NewChip(r.Grid, r.Grid)
	mtr := sp.Metrics()
	ro := &routeObs{
		nets:       mtr.Counter("route_nets_total"),
		inPlace:    mtr.Counter("route_in_place_total"),
		failed:     mtr.Counter("route_failed_total"),
		pops:       mtr.Counter("route_dijkstra_pops_total"),
		ripups:     mtr.Counter("route_ripups_total"),
		crossings:  mtr.Counter("route_crossings_total"),
		wirelength: mtr.Counter("route_wirelength_total"),
		pathLen:    mtr.Histogram("route_path_len", []float64{4, 8, 16, 32, 64}),
		bus:        sp.Trace().ProgressBus(),
	}

	// Pump events at operation start.
	for id, pl := range m.Placements {
		if a.Op(id).Kind != graph.Mix {
			continue
		}
		r.Events = append(r.Events, Event{
			T: sched.Start[id], Kind: PumpEvent,
			Cells: pl.Ring(), Op: id, Ring: pl.Volume(),
		})
	}

	// Transport demands grouped by time.
	var demands []net
	inPorts, outPorts := portCells(chip)

	for _, op := range a.Ops() {
		if op.Kind == graph.Output {
			continue
		}
		if _, placed := m.Placements[op.ID]; !placed && op.Kind != graph.Input {
			continue
		}
		if op.Kind != graph.Input {
			pl := m.Placements[op.ID]
			// Input-port loads arrive at operation start.
			for _, e := range a.In(op.ID) {
				if a.Op(e.From).Kind != graph.Input {
					continue
				}
				demands = append(demands, net{
					t: sched.Start[op.ID], from: inPorts, to: pl.Ring(),
					fromName: a.Op(e.From).Name, toName: op.Name,
					fromID: e.From, toID: op.ID, op: op.ID,
					exclude: map[int]bool{op.ID: true},
				})
			}
			// Product transports to children devices at finish.
			for _, e := range a.Out(op.ID) {
				child := a.Op(e.To)
				switch child.Kind {
				case graph.Output:
					demands = append(demands, net{
						t: sched.Finish[op.ID], from: pl.Ring(), to: outPorts,
						fromName: op.Name, toName: child.Name,
						fromID: op.ID, toID: e.To, op: op.ID,
						exclude: map[int]bool{op.ID: true},
					})
				default:
					cpl, ok := m.Placements[e.To]
					if !ok {
						continue
					}
					demands = append(demands, net{
						t: sched.Finish[op.ID], from: pl.Ring(), to: cpl.Ring(),
						fromName: op.Name, toName: child.Name,
						fromID: op.ID, toID: e.To, op: e.To,
						exclude: map[int]bool{op.ID: true, e.To: true},
					})
				}
			}
			// Childless products drain to the waste/output port.
			if len(a.Out(op.ID)) == 0 {
				demands = append(demands, net{
					t: sched.Finish[op.ID], from: pl.Ring(), to: outPorts,
					fromName: op.Name, toName: "out",
					fromID: op.ID, toID: -1, op: op.ID,
					exclude: map[int]bool{op.ID: true},
				})
			}
		}
	}
	sort.SliceStable(demands, func(i, j int) bool {
		if demands[i].t != demands[j].t {
			return demands[i].t < demands[j].t
		}
		return demands[i].op < demands[j].op
	})

	// Cells no path may cross: stuck-closed valves cannot open for fluid,
	// stuck-open valves cannot close behind it. Computed once; the set is
	// immutable within a run.
	faulty := r.opts.Faults.UnroutableCells()

	// One router for the whole run: the flat grids are sized once and only
	// reset between nets, so the per-net cost is a few memclr calls instead
	// of fresh allocations.
	router := route.New(chip.Bounds())

	// Route time step by time step.
	for i := 0; i < len(demands); {
		j := i
		for j < len(demands) && demands[j].t == demands[i].t {
			j++
		}
		stepSp := sp.Start("route.step",
			obs.KV("t", demands[i].t), obs.KV("nets", j-i))
		err := r.routeStep(ctx, router, demands[i].t, demands[i:j], faulty, stepSp, ro)
		stepSp.End()
		ro.publish()
		if err != nil {
			return err
		}
		i = j
	}
	sp.Set(obs.KV("transports", len(r.Transports)),
		obs.KV("failed", r.FailedRoutes))
	// Total order: pump events come from map iteration, so sorting by time
	// alone would leave the within-step order random from run to run. The
	// event log is part of the bit-identical-results contract (the verify
	// package fingerprints it), so break ties all the way down.
	sort.SliceStable(r.Events, func(i, j int) bool {
		a, b := r.Events[i], r.Events[j]
		if a.T != b.T {
			return a.T < b.T
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		if len(a.Cells) != len(b.Cells) {
			return len(a.Cells) < len(b.Cells)
		}
		for k := range a.Cells {
			if a.Cells[k] != b.Cells[k] {
				if a.Cells[k].Y != b.Cells[k].Y {
					return a.Cells[k].Y < b.Cells[k].Y
				}
				return a.Cells[k].X < b.Cells[k].X
			}
		}
		return false
	})
	return nil
}

// net is one routing request within a time step.
type net struct {
	t            int
	from, to     []grid.Point
	fromName     string
	toName       string
	fromID, toID int
	op           int
	exclude      map[int]bool
}

// routeStep routes all nets of one time step with shared congestion state,
// applying the storage pass-through rule and rip-up & re-route. An
// unroutable net is not an error: it is counted, itemised in
// Degradation.FailedNets and marked on the span, and routing continues —
// the rest of the step's fluid still moves.
func (r *Result) routeStep(ctx context.Context, router *route.Router, t int, nets []net, faulty []grid.Point, sp *obs.Span, ro *routeObs) error {
	m := r.Mapping
	for _, n := range nets {
		if err := ctx.Err(); err != nil {
			return synerr.Deadline("route", err)
		}
		ro.nets.Inc()
		ro.run.Nets++
		// In-place transfer: the endpoints share cells (a storage that
		// overlaps its parent device); the fluid is already in position.
		if shared := sharedCells(n.from, n.to); len(shared) > 0 {
			ro.inPlace.Inc()
			ro.run.InPlace++
			r.Transports = append(r.Transports, Transport{
				T: t, From: n.fromName, To: n.toName,
				FromID: n.fromID, ToID: n.toID, Path: shared, InPlace: true,
			})
			continue
		}
		router.Reset()
		router.BlockFaulty(faulty)
		// Build obstacles: devices alive at t. Ring cells of every device
		// actuate anyway, so they are preferred path material whenever the
		// device is not alive right now.
		for id, pl := range m.Placements {
			router.Prefer(pl.Ring())
			if n.exclude[id] {
				continue
			}
			w := m.Windows[id]
			if t < w[0] || t >= w[1] {
				continue
			}
			if tl := m.Storages[id]; tl != nil && tl.Active(t) && !r.opts.DisableStoragePassthrough {
				router.AddStorage(id, pl.Footprint())
				continue
			}
			router.Block(pl.Footprint())
		}
		// Replay congestion from already-routed nets of this step, and
		// prefer cells any earlier path already actuates.
		for _, tr := range r.Transports {
			if tr.T == t {
				router.Commit(tr.Path)
			}
			router.Prefer(tr.Path)
		}

		path, err := r.routeNet(router, n, t, ro)
		ro.pops.Add(int64(router.Pops))
		if errors.Is(err, route.ErrNoPath) {
			r.FailedRoutes++
			ro.failed.Inc()
			ro.run.Failed++
			d := r.degrade()
			d.FailedNets = append(d.FailedNets, FailedNet{
				T: t, From: n.fromName, To: n.toName,
				FromID: n.fromID, ToID: n.toID,
			})
			d.escalate(DegradePartial)
			sp.Mark("route.failed_net",
				obs.KV("from", n.fromName), obs.KV("to", n.toName))
			continue
		}
		if err != nil {
			return err
		}
		ro.pathLen.Observe(float64(len(path)))
		ro.crossings.Add(int64(router.Crossings(path)))
		ro.wirelength.Add(int64(len(path)))
		ro.run.Wirelength += int64(len(path))
		r.Transports = append(r.Transports, Transport{
			T: t, From: n.fromName, To: n.toName,
			FromID: n.fromID, ToID: n.toID, Path: path,
		})
		r.Events = append(r.Events, Event{T: t, Kind: CtrlEvent, Cells: path, Op: n.op})
	}
	return nil
}

// routeNet routes one net, enforcing the storage free-space rule with
// rip-up & re-route (Algorithm 1 L13-L17).
func (r *Result) routeNet(router *route.Router, n net, t int, ro *routeObs) (route.Path, error) {
	m := r.Mapping
	delay := r.Schedule.TransportDelay
	limit := r.opts.MaxRipups
	if limit <= 0 {
		limit = 8
	}
	for attempt := 0; attempt < limit; attempt++ {
		path, err := router.Route(n.from, n.to)
		if err != nil {
			return nil, err
		}
		// Rip up the lowest violating storage id: the choice steers the
		// re-route, so it must not depend on map iteration order.
		violated := -1
		for sid, cells := range router.StoragesTouched(path) {
			if n.exclude[sid] {
				continue // the target storage receives the fluid; no check
			}
			tl := m.Storages[sid]
			if tl == nil {
				continue
			}
			if !tl.CanOverlap(cells, t, t+delay) && (violated < 0 || sid < violated) {
				violated = sid
			}
		}
		if violated < 0 {
			return path, nil
		}
		router.BlockStorage(violated)
		ro.ripups.Inc()
		ro.run.Ripups++
	}
	return nil, route.ErrNoPath
}

// sharedCells returns the cells common to both terminal sets.
func sharedCells(a, b []grid.Point) route.Path {
	set := make(map[grid.Point]bool, len(a))
	for _, p := range a {
		set[p] = true
	}
	var out route.Path
	for _, p := range b {
		if set[p] {
			out = append(out, p)
		}
	}
	return out
}

// portCells returns the input and output port cell sets.
func portCells(chip *arch.Chip) (in, out []grid.Point) {
	for _, p := range chip.Ports {
		switch p.Kind {
		case arch.InPort:
			in = append(in, p.At)
		case arch.OutPort:
			out = append(out, p.At)
		}
	}
	return in, out
}

// computeMetrics derives the Table 1 numbers from the event log.
func (r *Result) computeMetrics() {
	c1 := r.ChipAt(-1, 1) // setting 1, full horizon
	c2 := r.ChipAt(-1, 2)
	r.VsMax1, r.VsPump1 = c1.MaxTotal(), c1.MaxPump()
	r.VsMax2, r.VsPump2 = c2.MaxTotal(), c2.MaxPump()
	r.UsedValves = c1.UsedValves()
}

// ChipAt replays the event log up to and including time t (t < 0 replays
// everything) under the given setting (1 or 2) and returns the resulting
// actuation counters.
func (r *Result) ChipAt(t int, setting int) *arch.Chip {
	chip := arch.NewChip(r.Grid, r.Grid)
	for _, ev := range r.Events {
		if t >= 0 && ev.T > t {
			break
		}
		switch ev.Kind {
		case PumpEvent:
			n := r.opts.PumpActuations
			if setting == 2 {
				n = r.opts.DedicatedPumpValves * r.opts.PumpActuations / ev.Ring
			}
			for _, pt := range ev.Cells {
				chip.AddPumpAt(pt, n)
			}
		case CtrlEvent:
			// One transport opens and closes every path valve: two state
			// changes, the same accounting as Fig. 2's control counts.
			chip.AddCtrl(ev.Cells, 2)
		}
	}
	return chip
}

// String summarises the result in Table 1 style.
func (r *Result) String() string {
	return fmt.Sprintf("%s: vs1=%d(%d) vs2=%d(%d) #v=%d",
		r.Assay.Name, r.VsMax1, r.VsPump1, r.VsMax2, r.VsPump2, r.UsedValves)
}
