// Package core implements the paper's overall reliability-aware synthesis
// (Algorithm 1): it takes a bioassay and a scheduling policy, produces the
// scheduling result, maps every operation to a dynamic device on the
// valve-centered architecture (internal/place), routes all fluid transports
// with storage pass-through and rip-up & re-route (internal/route), and
// simulates the per-valve actuation counts that Table 1 reports.
//
// Two evaluation settings are produced, as in the paper's Section 4:
//
//   - Setting 1: every ring valve of a dynamic mixer is actuated 40 times
//     per mixing operation — the same per-valve effort as a dedicated
//     mixer's pump valve (conservative).
//   - Setting 2: the same synthesis result, but the per-valve count is
//     scaled so a mixing operation costs 120 total actuations (three
//     dedicated pump valves × 40), e.g. 15 per valve on an 8-valve ring.
package core

import (
	"fmt"
	"sort"
	"time"

	"mfsynth/internal/arch"
	"mfsynth/internal/graph"
	"mfsynth/internal/grid"
	"mfsynth/internal/obs"
	"mfsynth/internal/place"
	"mfsynth/internal/route"
	"mfsynth/internal/schedule"
)

// DefaultPumpActuations is the per-valve actuation count of one mixing
// operation in setting 1 (from the paper, after [9]).
const DefaultPumpActuations = 40

// DefaultDedicatedPumpValves is the number of pump valves in a traditional
// dedicated mixer (Fig. 2), fixing setting 2's per-operation total at
// 3 × 40 = 120 actuations.
const DefaultDedicatedPumpValves = 3

// Options configures a synthesis run.
type Options struct {
	// Policy bounds device concurrency during scheduling (the traditional
	// design whose schedule is reused, as in the paper's evaluation).
	Policy schedule.Resources
	// TransportDelay in time units (default schedule.DefaultTransportDelay).
	TransportDelay int
	// Place configures the dynamic-device mapper. Place.Grid must be set.
	Place place.Config
	// PumpActuations is setting 1's per-valve per-operation count
	// (default 40).
	PumpActuations int
	// DedicatedPumpValves fixes setting 2's per-operation total as
	// DedicatedPumpValves × PumpActuations (default 3).
	DedicatedPumpValves int
	// DisableStoragePassthrough treats in situ storages as routing
	// obstacles (the Fig. 8(a) behaviour; ablation of Section 3.5).
	DisableStoragePassthrough bool
	// Workers bounds the synthesis-internal parallelism — the multi-start
	// greedy fan-out and the branch-and-bound relaxation solves
	// (0 = runtime.GOMAXPROCS, 1 = legacy serial). Every value produces
	// bit-identical results, provided Place.SolveTimeout does not bind
	// (see place.Config.Workers); only wall-clock time changes.
	// Place.Workers, when set, takes precedence.
	Workers int
	// Trace, when non-nil, records a hierarchical span tree and metrics for
	// the run (one root span per Synthesize call). Tracing never changes
	// synthesis results; a nil Trace costs nothing.
	Trace *obs.Trace
}

// EventKind classifies actuation events.
type EventKind int

// Event kinds.
const (
	// PumpEvent is a mixing operation's peristalsis on its ring valves.
	PumpEvent EventKind = iota
	// CtrlEvent is a transport path being opened and closed once.
	CtrlEvent
)

// Event is one actuation event of the synthesis result.
type Event struct {
	// T is the time the event occurs.
	T int
	// Kind classifies the event.
	Kind EventKind
	// Cells are the valves involved.
	Cells []grid.Point
	// Op is the operation that caused the event.
	Op int
	// Ring is the ring length of the pumping device (PumpEvent only); it
	// determines the per-valve count in setting 2.
	Ring int
}

// Transport is one routed fluid movement.
type Transport struct {
	// T is the transport time.
	T int
	// From and To name the endpoints (operation names or port names).
	From, To string
	// FromID and ToID are the endpoint operation IDs, -1 for chip ports.
	FromID, ToID int
	// Path is the routed cell sequence.
	Path route.Path
	// InPlace marks a transfer whose source and destination devices share
	// cells: the product is already inside the in situ storage, no valve
	// actuates (the paper's Section 3.3 benefit of turning a storage into
	// its device directly, "saving the transportation effort").
	InPlace bool
}

// Result is a complete synthesis result with both evaluation settings.
type Result struct {
	Assay    *graph.Assay
	Schedule *schedule.Result
	Mapping  *place.Mapping
	Grid     int

	// Events is the full actuation event log in time order.
	Events []Event
	// Transports lists every routed fluid movement.
	Transports []Transport

	// VsMax1 and VsPump1 are setting 1's largest total and pump-only
	// per-valve actuation counts (Table 1's "vs 1max" as "45(40)").
	VsMax1, VsPump1 int
	// VsMax2 and VsPump2 are setting 2's counterparts.
	VsMax2, VsPump2 int
	// UsedValves is the number of virtual valves that actuate at least
	// once — the valves actually manufactured (#v).
	UsedValves int
	// FailedRoutes counts transports that could not be routed (0 on all
	// benchmarks; kept for diagnostics on dense custom assays).
	FailedRoutes int
	// Runtime is the wall-clock synthesis time.
	Runtime time.Duration

	opts Options
}

// Options returns the effective options of the run, with defaults applied
// (PumpActuations, DedicatedPumpValves, Place.Grid). Conformance checkers
// need them to re-derive the actuation accounting from first principles.
func (r *Result) Options() Options { return r.opts }

// Synthesize runs the full flow on the assay.
func Synthesize(a *graph.Assay, opts Options) (*Result, error) {
	start := time.Now()
	if opts.PumpActuations == 0 {
		opts.PumpActuations = DefaultPumpActuations
	}
	if opts.DedicatedPumpValves == 0 {
		opts.DedicatedPumpValves = DefaultDedicatedPumpValves
	}
	if opts.Place.Grid == 0 {
		opts.Place.Grid = 10
	}
	if opts.Place.Workers == 0 {
		opts.Place.Workers = opts.Workers
	}
	root := opts.Trace.Start("synthesize",
		obs.KV("assay", a.Name), obs.KV("grid", opts.Place.Grid),
		obs.KV("workers", opts.Place.Workers))
	fail := func(err error) (*Result, error) {
		root.Set(obs.KV("error", err.Error()))
		root.End()
		return nil, err
	}

	schedSp := root.Start("schedule")
	sched, err := schedule.List(a, schedule.Options{
		TransportDelay: opts.TransportDelay,
		Resources:      opts.Policy,
		Obs:            schedSp,
	})
	schedSp.End()
	if err != nil {
		return fail(err)
	}

	placeSp := root.Start("place")
	pcfg := opts.Place
	pcfg.Obs = placeSp
	mapping, err := place.Map(sched, pcfg)
	placeSp.End()
	if err != nil {
		return fail(err)
	}

	res := &Result{
		Assay:    a,
		Schedule: sched,
		Mapping:  mapping,
		Grid:     opts.Place.Grid,
		opts:     opts,
	}
	routeSp := root.Start("route")
	err = res.routeAndSimulate(routeSp)
	routeSp.End()
	if err != nil {
		return fail(err)
	}

	simSp := root.Start("sim")
	res.computeMetrics()
	simSp.Set(obs.KV("events", len(res.Events)))
	simSp.End()

	res.Runtime = time.Since(start)
	root.Set(obs.KV("vs_max1", res.VsMax1), obs.KV("vs_max2", res.VsMax2),
		obs.KV("used_valves", res.UsedValves))
	root.End()
	return res, nil
}

// routeObs bundles the routing-phase instrument handles. Every field is
// nil-safe, so the zero value (nil trace) adds only nil checks to the loop.
type routeObs struct {
	nets      *obs.Counter
	inPlace   *obs.Counter
	failed    *obs.Counter
	pops      *obs.Counter
	ripups    *obs.Counter
	crossings *obs.Counter
	pathLen   *obs.Histogram
}

// routeAndSimulate builds the event log: pump events from the schedule and
// control events from routing every transport (Algorithm 1 L10-L19).
func (r *Result) routeAndSimulate(sp *obs.Span) error {
	a := r.Assay
	sched := r.Schedule
	m := r.Mapping
	chip := arch.NewChip(r.Grid, r.Grid)
	mtr := sp.Metrics()
	ro := &routeObs{
		nets:      mtr.Counter("route.nets"),
		inPlace:   mtr.Counter("route.in_place"),
		failed:    mtr.Counter("route.failed"),
		pops:      mtr.Counter("route.dijkstra_pops"),
		ripups:    mtr.Counter("route.ripups"),
		crossings: mtr.Counter("route.crossings"),
		pathLen:   mtr.Histogram("route.path_len", []float64{4, 8, 16, 32, 64}),
	}

	// Pump events at operation start.
	for id, pl := range m.Placements {
		if a.Op(id).Kind != graph.Mix {
			continue
		}
		r.Events = append(r.Events, Event{
			T: sched.Start[id], Kind: PumpEvent,
			Cells: pl.Ring(), Op: id, Ring: pl.Volume(),
		})
	}

	// Transport demands grouped by time.
	var demands []net
	inPorts, outPorts := portCells(chip)

	for _, op := range a.Ops() {
		if op.Kind == graph.Output {
			continue
		}
		if _, placed := m.Placements[op.ID]; !placed && op.Kind != graph.Input {
			continue
		}
		if op.Kind != graph.Input {
			pl := m.Placements[op.ID]
			// Input-port loads arrive at operation start.
			for _, e := range a.In(op.ID) {
				if a.Op(e.From).Kind != graph.Input {
					continue
				}
				demands = append(demands, net{
					t: sched.Start[op.ID], from: inPorts, to: pl.Ring(),
					fromName: a.Op(e.From).Name, toName: op.Name,
					fromID: e.From, toID: op.ID, op: op.ID,
					exclude: map[int]bool{op.ID: true},
				})
			}
			// Product transports to children devices at finish.
			for _, e := range a.Out(op.ID) {
				child := a.Op(e.To)
				switch child.Kind {
				case graph.Output:
					demands = append(demands, net{
						t: sched.Finish[op.ID], from: pl.Ring(), to: outPorts,
						fromName: op.Name, toName: child.Name,
						fromID: op.ID, toID: e.To, op: op.ID,
						exclude: map[int]bool{op.ID: true},
					})
				default:
					cpl, ok := m.Placements[e.To]
					if !ok {
						continue
					}
					demands = append(demands, net{
						t: sched.Finish[op.ID], from: pl.Ring(), to: cpl.Ring(),
						fromName: op.Name, toName: child.Name,
						fromID: op.ID, toID: e.To, op: e.To,
						exclude: map[int]bool{op.ID: true, e.To: true},
					})
				}
			}
			// Childless products drain to the waste/output port.
			if len(a.Out(op.ID)) == 0 {
				demands = append(demands, net{
					t: sched.Finish[op.ID], from: pl.Ring(), to: outPorts,
					fromName: op.Name, toName: "out",
					fromID: op.ID, toID: -1, op: op.ID,
					exclude: map[int]bool{op.ID: true},
				})
			}
		}
	}
	sort.SliceStable(demands, func(i, j int) bool {
		if demands[i].t != demands[j].t {
			return demands[i].t < demands[j].t
		}
		return demands[i].op < demands[j].op
	})

	// Route time step by time step.
	for i := 0; i < len(demands); {
		j := i
		for j < len(demands) && demands[j].t == demands[i].t {
			j++
		}
		stepSp := sp.Start("route.step",
			obs.KV("t", demands[i].t), obs.KV("nets", j-i))
		err := r.routeStep(chip, demands[i].t, demands[i:j], ro)
		stepSp.End()
		if err != nil {
			return err
		}
		i = j
	}
	sp.Set(obs.KV("transports", len(r.Transports)),
		obs.KV("failed", r.FailedRoutes))
	// Total order: pump events come from map iteration, so sorting by time
	// alone would leave the within-step order random from run to run. The
	// event log is part of the bit-identical-results contract (the verify
	// package fingerprints it), so break ties all the way down.
	sort.SliceStable(r.Events, func(i, j int) bool {
		a, b := r.Events[i], r.Events[j]
		if a.T != b.T {
			return a.T < b.T
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		if len(a.Cells) != len(b.Cells) {
			return len(a.Cells) < len(b.Cells)
		}
		for k := range a.Cells {
			if a.Cells[k] != b.Cells[k] {
				if a.Cells[k].Y != b.Cells[k].Y {
					return a.Cells[k].Y < b.Cells[k].Y
				}
				return a.Cells[k].X < b.Cells[k].X
			}
		}
		return false
	})
	return nil
}

// net is one routing request within a time step.
type net struct {
	t            int
	from, to     []grid.Point
	fromName     string
	toName       string
	fromID, toID int
	op           int
	exclude      map[int]bool
}

// routeStep routes all nets of one time step with shared congestion state,
// applying the storage pass-through rule and rip-up & re-route.
func (r *Result) routeStep(chip *arch.Chip, t int, nets []net, ro *routeObs) error {
	m := r.Mapping
	for _, n := range nets {
		ro.nets.Inc()
		// In-place transfer: the endpoints share cells (a storage that
		// overlaps its parent device); the fluid is already in position.
		if shared := sharedCells(n.from, n.to); len(shared) > 0 {
			ro.inPlace.Inc()
			r.Transports = append(r.Transports, Transport{
				T: t, From: n.fromName, To: n.toName,
				FromID: n.fromID, ToID: n.toID, Path: shared, InPlace: true,
			})
			continue
		}
		router := route.New(chip.Bounds())
		// Build obstacles: devices alive at t. Ring cells of every device
		// actuate anyway, so they are preferred path material whenever the
		// device is not alive right now.
		for id, pl := range m.Placements {
			router.Prefer(pl.Ring())
			if n.exclude[id] {
				continue
			}
			w := m.Windows[id]
			if t < w[0] || t >= w[1] {
				continue
			}
			if tl := m.Storages[id]; tl != nil && tl.Active(t) && !r.opts.DisableStoragePassthrough {
				router.AddStorage(id, pl.Footprint())
				continue
			}
			router.Block(pl.Footprint())
		}
		// Replay congestion from already-routed nets of this step, and
		// prefer cells any earlier path already actuates.
		for _, tr := range r.Transports {
			if tr.T == t {
				router.Commit(tr.Path)
			}
			router.Prefer(tr.Path)
		}

		path, err := r.routeNet(router, n, t, ro)
		ro.pops.Add(int64(router.Pops))
		if err == route.ErrNoPath {
			r.FailedRoutes++
			ro.failed.Inc()
			continue
		}
		if err != nil {
			return err
		}
		ro.pathLen.Observe(float64(len(path)))
		ro.crossings.Add(int64(router.Crossings(path)))
		r.Transports = append(r.Transports, Transport{
			T: t, From: n.fromName, To: n.toName,
			FromID: n.fromID, ToID: n.toID, Path: path,
		})
		r.Events = append(r.Events, Event{T: t, Kind: CtrlEvent, Cells: path, Op: n.op})
	}
	return nil
}

// routeNet routes one net, enforcing the storage free-space rule with
// rip-up & re-route (Algorithm 1 L13-L17).
func (r *Result) routeNet(router *route.Router, n net, t int, ro *routeObs) (route.Path, error) {
	m := r.Mapping
	delay := r.Schedule.TransportDelay
	for attempt := 0; attempt < 8; attempt++ {
		path, err := router.Route(n.from, n.to)
		if err != nil {
			return nil, err
		}
		violated := -1
		for sid, cells := range router.StoragesTouched(path) {
			if n.exclude[sid] {
				continue // the target storage receives the fluid; no check
			}
			tl := m.Storages[sid]
			if tl == nil {
				continue
			}
			if !tl.CanOverlap(cells, t, t+delay) {
				violated = sid
				break
			}
		}
		if violated < 0 {
			return path, nil
		}
		router.BlockStorage(violated)
		ro.ripups.Inc()
	}
	return nil, route.ErrNoPath
}

// sharedCells returns the cells common to both terminal sets.
func sharedCells(a, b []grid.Point) route.Path {
	set := make(map[grid.Point]bool, len(a))
	for _, p := range a {
		set[p] = true
	}
	var out route.Path
	for _, p := range b {
		if set[p] {
			out = append(out, p)
		}
	}
	return out
}

// portCells returns the input and output port cell sets.
func portCells(chip *arch.Chip) (in, out []grid.Point) {
	for _, p := range chip.Ports {
		switch p.Kind {
		case arch.InPort:
			in = append(in, p.At)
		case arch.OutPort:
			out = append(out, p.At)
		}
	}
	return in, out
}

// computeMetrics derives the Table 1 numbers from the event log.
func (r *Result) computeMetrics() {
	c1 := r.ChipAt(-1, 1) // setting 1, full horizon
	c2 := r.ChipAt(-1, 2)
	r.VsMax1, r.VsPump1 = c1.MaxTotal(), c1.MaxPump()
	r.VsMax2, r.VsPump2 = c2.MaxTotal(), c2.MaxPump()
	r.UsedValves = c1.UsedValves()
}

// ChipAt replays the event log up to and including time t (t < 0 replays
// everything) under the given setting (1 or 2) and returns the resulting
// actuation counters.
func (r *Result) ChipAt(t int, setting int) *arch.Chip {
	chip := arch.NewChip(r.Grid, r.Grid)
	for _, ev := range r.Events {
		if t >= 0 && ev.T > t {
			break
		}
		switch ev.Kind {
		case PumpEvent:
			n := r.opts.PumpActuations
			if setting == 2 {
				n = r.opts.DedicatedPumpValves * r.opts.PumpActuations / ev.Ring
			}
			for _, pt := range ev.Cells {
				chip.AddPumpAt(pt, n)
			}
		case CtrlEvent:
			// One transport opens and closes every path valve: two state
			// changes, the same accounting as Fig. 2's control counts.
			chip.AddCtrl(ev.Cells, 2)
		}
	}
	return chip
}

// String summarises the result in Table 1 style.
func (r *Result) String() string {
	return fmt.Sprintf("%s: vs1=%d(%d) vs2=%d(%d) #v=%d",
		r.Assay.Name, r.VsMax1, r.VsPump1, r.VsMax2, r.VsPump2, r.UsedValves)
}
