package core

import (
	"testing"

	"mfsynth/internal/arch"
	"mfsynth/internal/graph"
	"mfsynth/internal/grid"
	"mfsynth/internal/place"
	"mfsynth/internal/route"
	"mfsynth/internal/schedule"
	"mfsynth/internal/storage"
)

// fullStorageResult stages a Result whose single storage is completely
// full during its window, so any path crossing it must be ripped up and
// re-routed around (Algorithm 1 L14-L17).
func fullStorageResult(t *testing.T) (*Result, arch.Placement) {
	t.Helper()
	a := graph.New("full")
	i1 := a.Add(graph.Input, "i1", 0)
	i2 := a.Add(graph.Input, "i2", 0)
	mA := a.Add(graph.Mix, "mA", 6)
	mB := a.Add(graph.Mix, "mB", 6)
	a.Connect(i1, mA, 4)
	a.Connect(i2, mB, 4)
	i3 := a.Add(graph.Input, "i3", 0)
	a.Connect(i3, mA, 4)
	a.Connect(i3, mB, 4)
	mC := a.Add(graph.Mix, "mC", 6)
	a.Connect(mA, mC, 2)
	a.Connect(mB, mC, 2)
	res, err := schedule.List(a, schedule.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// mC's device is a 2×2 (volume 4) completely filled by its parents'
	// products (2 + 2) once both finish at t=6.
	tl := storage.NewTimeline(res, mC.ID, 4)
	if tl == nil || tl.FreeAt(tl.Start) != 0 {
		t.Fatalf("storage not full: %+v", tl)
	}
	pl := arch.Placement{At: grid.Point{X: 4, Y: 4}, Shape: arch.Shape{W: 2, H: 2}}
	r := &Result{
		Assay:    a,
		Schedule: res,
		Grid:     10,
		Mapping: &place.Mapping{
			Placements: map[int]arch.Placement{mC.ID: pl},
			Windows:    map[int][2]int{mC.ID: {tl.Start, res.Finish[mC.ID]}},
			Storages:   map[int]*storage.Timeline{mC.ID: tl},
		},
	}
	return r, pl
}

func TestRouteNetRipsFullStorage(t *testing.T) {
	r, pl := fullStorageResult(t)
	router := route.New(grid.RectWH(0, 0, 10, 10))
	router.AddStorage(opID(t, r, "mC"), pl.Footprint())

	// A net whose straight path crosses the storage footprint.
	n := net{
		t:    r.Mapping.Windows[opID(t, r, "mC")][0] + 1,
		from: []grid.Point{{X: 0, Y: 4}}, to: []grid.Point{{X: 9, Y: 4}},
		fromName: "left", toName: "right", fromID: -1, toID: -1,
		exclude: map[int]bool{},
	}
	path, err := r.routeNet(router, n, n.t, &routeObs{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range path {
		if pl.Footprint().Contains(c) {
			t.Fatalf("path crosses the full storage at %v", c)
		}
	}
	if len(path) <= 10 {
		t.Errorf("path length %d suggests no detour happened", len(path))
	}
}

func TestRouteNetPassesStorageWithFreeSpace(t *testing.T) {
	r, pl := fullStorageResult(t)
	id := opID(t, r, "mC")
	// Give the storage free space by doubling its capacity.
	r.Mapping.Storages[id] = storage.NewTimeline(r.Schedule, id, 8)
	router := route.New(grid.RectWH(0, 0, 10, 10))
	router.AddStorage(id, pl.Footprint())

	n := net{
		t:    r.Mapping.Windows[id][0] + 1,
		from: []grid.Point{{X: 0, Y: 4}}, to: []grid.Point{{X: 9, Y: 4}},
		fromName: "left", toName: "right", fromID: -1, toID: -1,
		exclude: map[int]bool{},
	}
	path, err := r.routeNet(router, n, n.t, &routeObs{})
	if err != nil {
		t.Fatal(err)
	}
	crossed := 0
	for _, c := range path {
		if pl.Footprint().Contains(c) {
			crossed++
		}
	}
	if crossed == 0 {
		t.Error("path detoured although the storage had free space")
	}
	if crossed > r.Mapping.Storages[id].FreeAt(n.t) {
		t.Errorf("path intrudes %d cells, free space only %d",
			crossed, r.Mapping.Storages[id].FreeAt(n.t))
	}
}

func TestRouteNetNoPathAfterBlocking(t *testing.T) {
	r, _ := fullStorageResult(t)
	id := opID(t, r, "mC")
	// A 1-wide corridor fully occupied by the (full) storage: rip-up leads
	// to ErrNoPath.
	wall := arch.Placement{At: grid.Point{X: 4, Y: 0}, Shape: arch.Shape{W: 2, H: 10}}
	router := route.New(grid.RectWH(0, 0, 10, 10))
	router.AddStorage(id, wall.Footprint())
	n := net{
		t:    r.Mapping.Windows[id][0] + 1,
		from: []grid.Point{{X: 0, Y: 4}}, to: []grid.Point{{X: 9, Y: 4}},
		fromName: "left", toName: "right", fromID: -1, toID: -1,
		exclude: map[int]bool{},
	}
	if _, err := r.routeNet(router, n, n.t, &routeObs{}); err != route.ErrNoPath {
		t.Fatalf("err = %v, want ErrNoPath", err)
	}
}

func opID(t *testing.T, r *Result, name string) int {
	t.Helper()
	for _, op := range r.Assay.Ops() {
		if op.Name == name {
			return op.ID
		}
	}
	t.Fatalf("op %q not found", name)
	return -1
}
