package core

import (
	"strings"
	"sync"
	"testing"

	"mfsynth/internal/assays"
	"mfsynth/internal/graph"
	"mfsynth/internal/place"
	"mfsynth/internal/schedule"
)

var (
	pcrOnce sync.Once
	pcrRes  *Result
	pcrErr  error
)

// synthPCR synthesizes PCR p1 once and shares the result across tests
// (tests only read it).
func synthPCR(t *testing.T) *Result {
	t.Helper()
	pcrOnce.Do(func() {
		c := assays.PCR()
		pcrRes, pcrErr = Synthesize(c.Assay, Options{
			Policy: schedule.Resources{Mixers: c.BaseMixers},
			Place:  place.Config{Grid: c.GridSize},
		})
	})
	if pcrErr != nil {
		t.Fatal(pcrErr)
	}
	return pcrRes
}

func TestPCRSetting1MatchesPaperShape(t *testing.T) {
	r := synthPCR(t)
	// Paper Table 1, PCR p1: vs1max = 45(40). The pump part must be exactly
	// 40 (one op per valve); the control overhead is small but non-zero.
	if r.VsPump1 != 40 {
		t.Errorf("VsPump1 = %d, want 40", r.VsPump1)
	}
	if r.VsMax1 < 40 || r.VsMax1 > 50 {
		t.Errorf("VsMax1 = %d, want 40..50 (paper: 45)", r.VsMax1)
	}
	if r.FailedRoutes != 0 {
		t.Errorf("FailedRoutes = %d", r.FailedRoutes)
	}
}

func TestPCRSetting2(t *testing.T) {
	r := synthPCR(t)
	// Setting 2: each op costs 120 total pump actuations; rings are 8 or 10
	// or 4 valves → per-valve 15, 12 or 30; with one op per valve the pump
	// max is 30 (the 4-ring final mix) or less.
	if r.VsPump2 > r.VsPump1 {
		t.Errorf("VsPump2 = %d > VsPump1 = %d", r.VsPump2, r.VsPump1)
	}
	if r.VsPump2 < 12 || r.VsPump2 > 30 {
		t.Errorf("VsPump2 = %d, want 12..30 (paper: 30)", r.VsPump2)
	}
	if r.VsMax2 > r.VsMax1 {
		t.Errorf("VsMax2 = %d > VsMax1 = %d", r.VsMax2, r.VsMax1)
	}
}

func TestUsedValves(t *testing.T) {
	r := synthPCR(t)
	// 7 rings with one op per valve: 4×8 + 2×10 + 4 = 56 pump valves, plus
	// routing control valves. Paper reports 71 on PCR p1.
	if r.UsedValves < 56 {
		t.Errorf("UsedValves = %d, want ≥ 56", r.UsedValves)
	}
	if r.UsedValves > r.Grid*r.Grid {
		t.Errorf("UsedValves = %d exceeds the grid", r.UsedValves)
	}
	if r.UsedValves > 110 {
		t.Errorf("UsedValves = %d, far above the paper's ~71-83", r.UsedValves)
	}
}

func TestEventLogConsistency(t *testing.T) {
	r := synthPCR(t)
	pumpEvents, ctrlEvents := 0, 0
	lastT := -1
	for _, ev := range r.Events {
		if ev.T < lastT {
			t.Fatal("events not sorted by time")
		}
		lastT = ev.T
		switch ev.Kind {
		case PumpEvent:
			pumpEvents++
			if ev.Ring != len(ev.Cells) {
				t.Errorf("pump event ring %d != cells %d", ev.Ring, len(ev.Cells))
			}
		case CtrlEvent:
			ctrlEvents++
			if len(ev.Cells) == 0 {
				t.Error("empty control event")
			}
		}
	}
	if pumpEvents != 7 {
		t.Errorf("pump events = %d, want 7", pumpEvents)
	}
	// PCR: 8 input loads + 6 product transports + 1 final drain = 15.
	if ctrlEvents != 15 {
		t.Errorf("ctrl events = %d, want 15", ctrlEvents)
	}
	if len(r.Transports) != ctrlEvents {
		t.Errorf("transports = %d, events = %d", len(r.Transports), ctrlEvents)
	}
}

func TestTransportsEndpoints(t *testing.T) {
	r := synthPCR(t)
	for _, tr := range r.Transports {
		if len(tr.Path) < 2 {
			t.Errorf("transport %s->%s at %d has trivial path", tr.From, tr.To, tr.T)
		}
		for i := 1; i < len(tr.Path); i++ {
			if tr.Path[i].Manhattan(tr.Path[i-1]) != 1 {
				t.Errorf("transport %s->%s has non-adjacent step", tr.From, tr.To)
			}
		}
	}
}

func TestChipAtCumulative(t *testing.T) {
	r := synthPCR(t)
	full := r.ChipAt(-1, 1)
	half := r.ChipAt(r.Schedule.Makespan/2, 1)
	sumAt := func(c interface{ TotalAt(x, y int) int }) int {
		s := 0
		for y := 0; y < r.Grid; y++ {
			for x := 0; x < r.Grid; x++ {
				s += c.TotalAt(x, y)
			}
		}
		return s
	}
	if sumAt(half) >= sumAt(full) {
		t.Errorf("half-time total %d not below full total %d", sumAt(half), sumAt(full))
	}
	if got := r.ChipAt(-1, 1).MaxTotal(); got != r.VsMax1 {
		t.Errorf("replay MaxTotal = %d, want %d", got, r.VsMax1)
	}
}

func TestSetting2Totals(t *testing.T) {
	r := synthPCR(t)
	// Total pump actuations in setting 2 must be exactly 120 per mixing op.
	chip := r.ChipAt(-1, 2)
	total := 0
	for y := 0; y < r.Grid; y++ {
		for x := 0; x < r.Grid; x++ {
			total += chip.PumpAt(x, y)
		}
	}
	if want := 7 * 120; total != want {
		t.Errorf("setting-2 pump total = %d, want %d", total, want)
	}
}

func TestSnapshot(t *testing.T) {
	r := synthPCR(t)
	times := r.SnapshotTimes()
	if len(times) < 5 {
		t.Fatalf("SnapshotTimes = %v", times)
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatal("SnapshotTimes not sorted")
		}
	}
	s0 := r.Snapshot(times[0])
	if !strings.Contains(s0, "t=") {
		t.Fatalf("snapshot header missing:\n%s", s0)
	}
	lines := strings.Split(strings.TrimRight(s0, "\n"), "\n")
	if len(lines) != 1+r.Grid {
		t.Fatalf("snapshot has %d lines, want %d", len(lines), 1+r.Grid)
	}
	// A late snapshot must show pump counts (40).
	late := r.Snapshot(r.Schedule.Makespan)
	if !strings.Contains(late, "40") {
		t.Errorf("late snapshot shows no pump counts:\n%s", late)
	}
}

func TestAliveOps(t *testing.T) {
	r := synthPCR(t)
	// During the first operation's run, at least one device is alive.
	if got := r.aliveOps(1); len(got) == 0 {
		t.Error("no device alive at t=1")
	}
	// Long after makespan nothing is alive.
	if got := r.aliveOps(r.Schedule.Makespan + 100); len(got) != 0 {
		t.Errorf("devices alive after makespan: %v", got)
	}
}

func TestResultString(t *testing.T) {
	r := synthPCR(t)
	s := r.String()
	if !strings.Contains(s, "PCR") || !strings.Contains(s, "#v=") {
		t.Errorf("String = %q", s)
	}
}

func TestDetectAndOutputOps(t *testing.T) {
	// A custom assay with a detector and an explicit output op.
	a := graph.New("detout")
	i1 := a.Add(graph.Input, "i1", 0)
	i2 := a.Add(graph.Input, "i2", 0)
	m := a.Add(graph.Mix, "m", 6)
	a.Connect(i1, m, 4)
	a.Connect(i2, m, 4)
	d := a.Add(graph.Detect, "d", 4)
	a.Connect(m, d, 4)
	o := a.Add(graph.Output, "o", 0)
	a.Connect(d, o, 4)
	r, err := Synthesize(a, Options{Place: place.Config{Grid: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Mapping.Placements) != 2 {
		t.Fatalf("placed %d devices, want 2 (mix + detect)", len(r.Mapping.Placements))
	}
	// Detectors do not pump.
	if r.VsPump1 != 40 {
		t.Errorf("VsPump1 = %d, want 40 (only the mix pumps)", r.VsPump1)
	}
	if r.FailedRoutes != 0 {
		t.Errorf("FailedRoutes = %d", r.FailedRoutes)
	}
}

func TestGreedyModeSynthesis(t *testing.T) {
	c := assays.PCR()
	r, err := Synthesize(c.Assay, Options{
		Policy: schedule.Resources{Mixers: c.BaseMixers},
		Place:  place.Config{Grid: c.GridSize, Mode: place.Greedy},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.VsPump1 != 40 {
		t.Errorf("greedy VsPump1 = %d, want 40", r.VsPump1)
	}
}

func TestSynthesizeRejectsInvalidAssay(t *testing.T) {
	a := graph.New("bad")
	a.Add(graph.Mix, "m", 6) // no inputs
	if _, err := Synthesize(a, Options{}); err == nil {
		t.Fatal("invalid assay accepted")
	}
}

func TestSynthesizeDefaultGrid(t *testing.T) {
	a := graph.New("tiny")
	i1 := a.Add(graph.Input, "i1", 0)
	i2 := a.Add(graph.Input, "i2", 0)
	m := a.Add(graph.Mix, "m", 6)
	a.Connect(i1, m, 2)
	a.Connect(i2, m, 2)
	r, err := Synthesize(a, Options{}) // Grid unset → default
	if err != nil {
		t.Fatal(err)
	}
	if r.Grid != 10 {
		t.Errorf("default grid = %d, want 10", r.Grid)
	}
}

func TestSynthesizeGridTooSmallForAssay(t *testing.T) {
	// An 8x8 chip cannot hold the interpolating dilution. With the
	// degradation ladder disabled that is a hard error; by default the
	// ladder ends in a best-effort partial result that says what was lost.
	c := assays.InterpolatingDilution()
	opts := Options{
		Policy:             schedule.Resources{Mixers: c.BaseMixers},
		Place:              place.Config{Grid: 8, Mode: place.Greedy},
		DisableDegradation: true,
	}
	if _, err := Synthesize(c.Assay, opts); err == nil {
		t.Fatal("8x8 chip accepted for the interpolating dilution with degradation disabled")
	}

	opts.DisableDegradation = false
	r, err := Synthesize(c.Assay, opts)
	if err != nil {
		t.Fatalf("degradation ladder did not rescue the 8x8 run: %v", err)
	}
	if !r.Degraded() {
		t.Fatal("8x8 run succeeded without a degradation report")
	}
	if r.Degradation.Level != DegradePartial {
		t.Errorf("level = %v, want %v", r.Degradation.Level, DegradePartial)
	}
	if len(r.Degradation.DroppedOps) == 0 {
		t.Error("partial result reports no dropped operations")
	}
	if len(r.Mapping.Dropped)+len(r.Mapping.Placements) == 0 {
		t.Error("empty mapping")
	}
}

func TestSettingsOverride(t *testing.T) {
	c := assays.PCR()
	r, err := Synthesize(c.Assay, Options{
		Policy:         schedule.Resources{Mixers: c.BaseMixers},
		Place:          place.Config{Grid: c.GridSize, Mode: place.Greedy},
		PumpActuations: 10, // one quarter of the default
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.VsPump1 != 10 {
		t.Errorf("VsPump1 = %d, want 10 with PumpActuations 10", r.VsPump1)
	}
}

func TestRolesAt(t *testing.T) {
	r := synthPCR(t)
	// At t=0 the first mixes run: pump roles present, walls around them.
	counts := r.RoleCounts(0)
	if counts[PumpRole] == 0 {
		t.Error("no pump valves while mixes run")
	}
	if counts[WallRole] == 0 {
		t.Error("no wall valves around running devices")
	}
	// Long after the assay everything is closed or unused.
	late := r.RoleCounts(r.Schedule.Makespan + 50)
	if late[PumpRole] != 0 || late[StorageRole] != 0 || late[ControlRole] != 0 {
		t.Errorf("active roles after makespan: %v", late)
	}
	if late[Closed] != r.UsedValves {
		t.Errorf("closed = %d, want UsedValves %d", late[Closed], r.UsedValves)
	}
	if late[Unused] != r.Grid*r.Grid-r.UsedValves {
		t.Errorf("unused = %d", late[Unused])
	}
	// Storage role appears while a storage is filling: find one.
	found := false
	for id, tl := range r.Mapping.Storages {
		if tl == nil {
			continue
		}
		_ = id
		if c := r.RoleCounts(tl.Start); c[StorageRole] > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no storage role observed at any storage start")
	}
}

func TestRoleString(t *testing.T) {
	names := map[Role]string{
		Unused: "unused", Closed: "closed", PumpRole: "pump",
		ControlRole: "control", WallRole: "wall", StorageRole: "storage",
		Role(99): "role?",
	}
	for role, want := range names {
		if role.String() != want {
			t.Errorf("Role(%d).String() = %q, want %q", int(role), role.String(), want)
		}
	}
}
