package core

import (
	"reflect"
	"testing"

	"mfsynth/internal/place"
)

func raceResult(dropped, failedRoutes, vs1, vs2, valves int) *Result {
	m := &place.Mapping{}
	for i := 0; i < dropped; i++ {
		m.Dropped = append(m.Dropped, i)
	}
	return &Result{
		Mapping:      m,
		FailedRoutes: failedRoutes,
		VsMax1:       vs1,
		VsMax2:       vs2,
		UsedValves:   valves,
	}
}

// TestPickWinnerDeterministicTiebreak pins the race's winner selection:
// strictly better quality wins regardless of position, exact ties go to
// the earlier (higher-priority) lane, failed lanes are skipped, and an
// all-failed race has no winner. Nothing here depends on goroutine finish
// order — that is the point.
func TestPickWinnerDeterministicTiebreak(t *testing.T) {
	cases := []struct {
		name string
		rs   []*Result
		want int
	}{
		{"all nil", []*Result{nil, nil, nil}, -1},
		{"empty", nil, -1},
		{"single", []*Result{raceResult(0, 0, 5, 4, 50)}, 0},
		{"exact tie goes to first",
			[]*Result{raceResult(0, 0, 5, 4, 50), raceResult(0, 0, 5, 4, 50)}, 0},
		{"later strictly better wins",
			[]*Result{raceResult(0, 0, 5, 4, 50), raceResult(0, 0, 4, 9, 99)}, 1},
		{"completeness dominates vs_max1",
			[]*Result{raceResult(1, 0, 1, 1, 10), raceResult(0, 0, 9, 9, 99)}, 1},
		{"failed routes count as incompleteness",
			[]*Result{raceResult(0, 2, 1, 1, 10), raceResult(0, 1, 9, 9, 99)}, 1},
		{"vs_max2 breaks vs_max1 ties",
			[]*Result{raceResult(0, 0, 5, 4, 50), raceResult(0, 0, 5, 3, 99)}, 1},
		{"valves break vs_max2 ties",
			[]*Result{raceResult(0, 0, 5, 4, 50), raceResult(0, 0, 5, 4, 49)}, 1},
		{"nil lane skipped",
			[]*Result{nil, raceResult(0, 0, 5, 4, 50), raceResult(0, 0, 5, 4, 50)}, 1},
	}
	for _, tc := range cases {
		if got := pickWinner(tc.rs); got != tc.want {
			t.Errorf("%s: pickWinner = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestParseBackends(t *testing.T) {
	cases := []struct {
		in      string
		want    []Backend
		wantErr bool
	}{
		{"", nil, false},
		{"none", nil, false},
		{"ilp", []Backend{BackendILP}, false},
		{"anneal, greedy", []Backend{BackendAnneal, BackendGreedy}, false},
		{"ilp,greedy,ilp", []Backend{BackendILP, BackendGreedy}, false},
		{"tabu", nil, true},
		{"ilp,,greedy", nil, true},
	}
	for _, tc := range cases {
		got, err := ParseBackends(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("ParseBackends(%q): err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if err == nil && !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseBackends(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestBackendOptions checks the per-lane option specialisation: the ILP
// lane never inherits a heuristic mode, the greedy lane always forces the
// heuristic, the anneal lane installs its own mapper, and no lane keeps
// the portfolio list (which would recurse).
func TestBackendOptions(t *testing.T) {
	base := Options{
		Backends: []Backend{BackendILP, BackendAnneal},
		Place:    place.Config{Grid: 12, Mode: place.Greedy},
	}

	ilp := backendOptions(base, BackendILP)
	if ilp.Place.Mode != place.RollingHorizon {
		t.Errorf("ilp lane mode = %v, want rolling-horizon", ilp.Place.Mode)
	}
	if ilp.mapper != nil || ilp.Backends != nil {
		t.Errorf("ilp lane keeps mapper/backends")
	}

	base.Place.Mode = place.Monolithic
	if got := backendOptions(base, BackendILP).Place.Mode; got != place.Monolithic {
		t.Errorf("ilp lane mode = %v, want the configured monolithic", got)
	}

	greedy := backendOptions(base, BackendGreedy)
	if greedy.Place.Mode != place.Greedy || greedy.mapper != nil {
		t.Errorf("greedy lane: mode %v, mapper %v", greedy.Place.Mode, greedy.mapper != nil)
	}

	ann := backendOptions(base, BackendAnneal)
	if ann.mapper == nil {
		t.Errorf("anneal lane has no mapper")
	}
	if ann.Backends != nil {
		t.Errorf("anneal lane keeps the portfolio list")
	}
}
