package core

import (
	"fmt"
	"strings"

	"mfsynth/internal/grid"
)

// DegradationLevel classifies how far the synthesis had to back off from
// the configured pipeline to produce a result. Levels are ordered: a higher
// level means a weaker guarantee.
type DegradationLevel int

// The degradation ladder, in escalation order.
const (
	// DegradeNone: the configured mapper succeeded as-is.
	DegradeNone DegradationLevel = iota
	// DegradeRelaxed: the configured mapper succeeded only after dropping
	// the storage-overlap (c5) and routing-convenient ((13)-(16))
	// couplings — the constraints whose interaction most often makes a
	// tight instance infeasible or the repair loop diverge.
	DegradeRelaxed
	// DegradeGreedy: the ILP modes failed; the multi-start greedy mapper
	// produced a complete but heuristic mapping.
	DegradeGreedy
	// DegradePartial: the result is incomplete — operations were dropped
	// (greedy best-effort) and/or transports could not be routed. The
	// placed and routed portion is still valid and fully audited.
	DegradePartial
)

func (l DegradationLevel) String() string {
	switch l {
	case DegradeNone:
		return "none"
	case DegradeRelaxed:
		return "relaxed-couplings"
	case DegradeGreedy:
		return "greedy-fallback"
	case DegradePartial:
		return "partial"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// Attempt records one failed rung of the degradation ladder.
type Attempt struct {
	// Rung names the configuration that was tried.
	Rung string
	// Err is the failure message.
	Err string
}

// FailedNet describes a transport demand that could not be routed: the
// record behind the FailedRoutes counter, so a degraded result says *what*
// was dropped, not just how much.
type FailedNet struct {
	// T is the scheduled transport time.
	T int
	// From and To name the endpoints (operation or port names).
	From, To string
	// FromID and ToID are the endpoint operation IDs, -1 for chip ports.
	FromID, ToID int
}

func (f FailedNet) String() string {
	return fmt.Sprintf("t=%d %s->%s", f.T, f.From, f.To)
}

// Degradation is the structured report a degraded synthesis carries
// instead of an opaque error. A nil *Degradation on a Result means the run
// was nominal; the report never participates in result fingerprints.
type Degradation struct {
	// Level is the rung the pipeline ended on.
	Level DegradationLevel
	// Attempts lists the rungs that failed before the accepted one.
	Attempts []Attempt
	// FailedNets lists the unroutable transports (len == FailedRoutes).
	FailedNets []FailedNet
	// DroppedOps names operations skipped by the best-effort mapper.
	DroppedOps []string
	// WornValves lists cells that crossed their wear-out threshold and
	// were re-mapped around (promoted to stuck-closed).
	WornValves []grid.Point
	// WearExceeded lists wear-out cells still over threshold after the
	// bounded re-mapping rounds — the result over-actuates them.
	WearExceeded []grid.Point
}

// String renders a one-line human summary, e.g.
// "degraded(greedy-fallback): 2 attempts failed; 1 net unrouted".
func (d *Degradation) String() string {
	if d == nil {
		return "nominal"
	}
	var parts []string
	if len(d.Attempts) > 0 {
		parts = append(parts, fmt.Sprintf("%d rung(s) failed", len(d.Attempts)))
	}
	if len(d.DroppedOps) > 0 {
		parts = append(parts, fmt.Sprintf("%d op(s) dropped: %s", len(d.DroppedOps), strings.Join(d.DroppedOps, ",")))
	}
	if len(d.FailedNets) > 0 {
		nets := make([]string, len(d.FailedNets))
		for i, f := range d.FailedNets {
			nets[i] = f.String()
		}
		parts = append(parts, fmt.Sprintf("%d net(s) unrouted: %s", len(d.FailedNets), strings.Join(nets, ",")))
	}
	if len(d.WornValves) > 0 {
		parts = append(parts, fmt.Sprintf("%d valve(s) worn out and re-mapped", len(d.WornValves)))
	}
	if len(d.WearExceeded) > 0 {
		parts = append(parts, fmt.Sprintf("%d wear threshold(s) still exceeded", len(d.WearExceeded)))
	}
	s := fmt.Sprintf("degraded(%s)", d.Level)
	if len(parts) > 0 {
		s += ": " + strings.Join(parts, "; ")
	}
	return s
}

// escalate raises the level (levels only ever go up).
func (d *Degradation) escalate(l DegradationLevel) {
	if l > d.Level {
		d.Level = l
	}
}

// Degraded reports whether the result deviates from a nominal run.
func (r *Result) Degraded() bool { return r.Degradation != nil }

// degrade returns the result's degradation report, allocating it on first
// use. Nominal runs never call this, keeping Degradation nil.
func (r *Result) degrade() *Degradation {
	if r.Degradation == nil {
		r.Degradation = &Degradation{}
	}
	return r.Degradation
}
