package core_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"mfsynth/internal/assays"
	"mfsynth/internal/core"
	"mfsynth/internal/graph"
	"mfsynth/internal/place"
	"mfsynth/internal/schedule"
	"mfsynth/internal/synerr"
	"mfsynth/internal/verify"
)

// racePolicy builds the one-mixer-per-volume scheduling policy for a
// generated assay.
func racePolicy(a *graph.Assay) schedule.Resources {
	mixers := map[int]int{}
	for _, id := range a.MixOps() {
		mixers[a.Volume(id)] = 1
	}
	return schedule.Resources{Mixers: mixers, Detectors: 1}
}

// TestRaceDeadlineReturnsIncumbent is the anytime contract under a binding
// deadline: the ILP lane is configured so the monolithic branch-and-bound
// cannot finish (a huge node budget on a large instance), the deadline
// expires under it, and the race still returns the heuristic lanes' best
// incumbent instead of failing — never nil when greedy succeeded.
func TestRaceDeadlineReturnsIncumbent(t *testing.T) {
	a := assays.Random(21, assays.RandomOptions{MixOps: 9, Detects: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	res, err := core.SynthesizeCtx(ctx, a, core.Options{
		Policy: racePolicy(a),
		Place: place.Config{
			Grid:         10,
			Mode:         place.Monolithic,
			MaxNodes:     1 << 30, // never binds: the deadline must cut the lane
			SolveTimeout: time.Hour,
		},
		Backends: []core.Backend{core.BackendILP, core.BackendGreedy, core.BackendAnneal},
		Anneal:   core.AnnealOptions{Seed: 5, Replicates: 2, Iters: 300},
	})
	if err != nil {
		t.Fatalf("race returned no incumbent: %v", err)
	}
	if res == nil || res.Race == nil {
		t.Fatal("nil result or race report")
	}
	if len(res.Race.Lanes) != 3 {
		t.Fatalf("lanes = %d, want 3", len(res.Race.Lanes))
	}
	var greedyOk bool
	for _, l := range res.Race.Lanes {
		if l.Backend == string(core.BackendGreedy) && l.Ok {
			greedyOk = true
		}
		if l.Won && l.Backend != res.Backend {
			t.Errorf("won lane %s != result backend %s", l.Backend, res.Backend)
		}
	}
	if !greedyOk {
		t.Fatalf("greedy lane failed; lanes: %+v", res.Race.Lanes)
	}
	if res.Backend == string(core.BackendILP) {
		// The ILP cannot legitimately crack 2^30 nodes in half a second; it
		// winning would mean the deadline never reached the lane.
		t.Errorf("ilp lane won under a deadline it cannot meet")
	}
	ilp := res.Race.Lanes[0]
	if ilp.Backend != string(core.BackendILP) {
		t.Fatalf("lane order does not follow priority: %+v", res.Race.Lanes)
	}
	if ilp.Ok {
		t.Errorf("ilp lane finished a 2^30-node search in 500ms")
	} else if ilp.Err == "" {
		t.Errorf("losing ilp lane carries no error")
	}
}

// TestRaceAllLanesCancelled: a context dead on arrival fails every lane,
// and the race surfaces an ErrDeadline-compatible error rather than a
// result.
func TestRaceAllLanesCancelled(t *testing.T) {
	a := assays.Random(4, assays.RandomOptions{MixOps: 6, Detects: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := core.SynthesizeCtx(ctx, a, core.Options{
		Policy:   racePolicy(a),
		Place:    place.Config{Grid: 12},
		Backends: []core.Backend{core.BackendGreedy, core.BackendAnneal},
	})
	if res != nil {
		t.Fatal("got a result from a dead context")
	}
	if !errors.Is(err, synerr.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}

// TestSingleBackendPinsPipeline: one entry in Backends runs that backend
// alone (no race report) and stamps the result with its name.
func TestSingleBackendPinsPipeline(t *testing.T) {
	a := assays.Random(4, assays.RandomOptions{MixOps: 6, Detects: 1})
	res, err := core.SynthesizeCtx(context.Background(), a, core.Options{
		Policy:   racePolicy(a),
		Place:    place.Config{Grid: 12},
		Backends: []core.Backend{core.BackendAnneal},
		Anneal:   core.AnnealOptions{Replicates: 2, Iters: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != string(core.BackendAnneal) {
		t.Errorf("Backend = %q, want anneal", res.Backend)
	}
	if res.Race != nil {
		t.Errorf("single backend produced a race report")
	}
	if res.Mapping.Stats.Mode != place.Annealed {
		t.Errorf("mapping mode = %v, want annealed", res.Mapping.Stats.Mode)
	}
}

// TestPortfolioRescuesNoIncumbent is the issue's acceptance criterion: on
// a generated assay whose node-capped monolithic branch-and-bound ends
// with no incumbent (place.Stats.NoIncumbent > 0), the portfolio still
// returns a conformance-clean mapping before the deadline, and does so
// deterministically for a fixed seed.
func TestPortfolioRescuesNoIncumbent(t *testing.T) {
	pcfg := place.Config{Grid: 11, Mode: place.Monolithic, MaxNodes: 4}

	// Find a seeded assay that actually defeats the capped search. The
	// generator and the solver are deterministic, so the known-good seed
	// (5, listed first) always hits on the current corpus; the loop keeps
	// the test honest if either evolves.
	var hard *graph.Assay
	for _, seed := range []int64{5, 2, 1, 3, 4, 6, 7, 8} {
		a := assays.Random(seed, assays.RandomOptions{MixOps: 8, Detects: 1})
		sched, err := schedule.List(a, schedule.Options{Resources: racePolicy(a)})
		if err != nil {
			continue
		}
		m, err := place.Map(sched, pcfg)
		if err == nil && m.Stats.NoIncumbent > 0 {
			hard = a
			break
		}
	}
	if hard == nil {
		t.Fatal("no probed seed drives the capped B&B to NoIncumbent > 0; pick a new corpus")
	}

	run := func() *core.Result {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		res, err := core.SynthesizeCtx(ctx, hard, core.Options{
			Policy:   racePolicy(hard),
			Place:    pcfg,
			Backends: []core.Backend{core.BackendILP, core.BackendGreedy, core.BackendAnneal},
			Anneal:   core.AnnealOptions{Seed: 11, Replicates: 3, Iters: 500},
		})
		if err != nil {
			t.Fatalf("portfolio failed on the no-incumbent instance: %v", err)
		}
		return res
	}

	res := run()
	if res.Backend == "" || res.Race == nil {
		t.Fatal("portfolio result carries no backend/race report")
	}
	if rep := verify.Conformance(res); !rep.Clean() {
		t.Fatalf("portfolio result fails conformance:\n%s", rep)
	}

	again := run()
	if verify.Fingerprint(res) != verify.Fingerprint(again) {
		t.Errorf("portfolio result not deterministic for a fixed seed")
	}
	if res.Backend != again.Backend {
		t.Errorf("winner flapped: %s vs %s", res.Backend, again.Backend)
	}
}
