package core

import (
	"fmt"
	"strings"

	"mfsynth/internal/graph"
)

// Snapshot renders the chip state after time t in the style of the paper's
// Fig. 10: a matrix of cumulative per-valve actuation counts (setting 1),
// with '.' for virtual valves that have not actuated yet (functionless
// walls if they never do) and the footprints of devices alive at t framed
// by their operation names in the legend.
func (r *Result) Snapshot(t int) string {
	chip := r.ChipAt(t, 1)
	// Mark cells of devices alive at t.
	alive := map[[2]int]rune{}
	var legend []string
	for _, id := range r.aliveOps(t) {
		pl := r.Mapping.Placements[id]
		marker := rune('A' + len(legend)%26)
		for _, pt := range pl.Footprint().Points() {
			alive[[2]int{pt.X, pt.Y}] = marker
		}
		phase := "run"
		if tl := r.Mapping.Storages[id]; tl != nil && tl.Active(t) {
			phase = "store"
		}
		legend = append(legend, fmt.Sprintf("%c=%s(%s)", marker, r.Assay.Op(id).Name, phase))
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "t=%dtu", t)
	if len(legend) > 0 {
		fmt.Fprintf(&sb, "  %s", strings.Join(legend, " "))
	}
	sb.WriteByte('\n')
	for y := r.Grid - 1; y >= 0; y-- {
		for x := 0; x < r.Grid; x++ {
			total := chip.TotalAt(x, y)
			cell := "  ."
			if total > 0 {
				cell = fmt.Sprintf("%3d", total)
			}
			sb.WriteString(cell)
			if m, ok := alive[[2]int{x, y}]; ok {
				sb.WriteRune(m)
			} else {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// aliveOps returns the on-chip operations whose device window covers t, in
// ID order.
func (r *Result) aliveOps(t int) []int {
	var ids []int
	for _, op := range r.Assay.Ops() {
		if op.Kind == graph.Input || op.Kind == graph.Output {
			continue
		}
		if _, ok := r.Mapping.Placements[op.ID]; !ok {
			continue
		}
		w := r.Mapping.Windows[op.ID]
		if t >= w[0] && t < w[1] {
			ids = append(ids, op.ID)
		}
	}
	return ids
}

// SnapshotTimes returns the interesting snapshot times: every device
// creation, start and finish, deduplicated and sorted.
func (r *Result) SnapshotTimes() []int {
	seen := map[int]bool{}
	var ts []int
	add := func(t int) {
		if !seen[t] {
			seen[t] = true
			ts = append(ts, t)
		}
	}
	for id, w := range r.Mapping.Windows {
		add(w[0])
		add(r.Schedule.Start[id])
		add(w[1])
	}
	// Insertion sort (short list, avoids importing sort twice... keep std).
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
	return ts
}
