package core

import (
	"context"
	"errors"
	"testing"

	"mfsynth/internal/assays"
	"mfsynth/internal/grid"
	"mfsynth/internal/milp"
	"mfsynth/internal/place"
	"mfsynth/internal/route"
	"mfsynth/internal/schedule"
	"mfsynth/internal/synerr"
)

// cancelled returns an already-dead context.
func cancelled() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

// TestSynthesizeCtxCancelled: a pre-cancelled context must return promptly
// with an ErrDeadline-compatible error from the first phase, not burn
// through the degradation ladder or produce a partial result.
func TestSynthesizeCtxCancelled(t *testing.T) {
	c := assays.PCR()
	res, err := SynthesizeCtx(cancelled(), c.Assay, Options{
		Policy: schedule.Resources{Mixers: c.BaseMixers},
		Place:  place.Config{Grid: c.GridSize, Mode: place.Greedy},
	})
	if err == nil {
		t.Fatal("cancelled synthesis returned a result")
	}
	if res != nil {
		t.Fatal("cancelled synthesis returned a non-nil result alongside the error")
	}
	if !errors.Is(err, synerr.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline compatibility", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v does not wrap context.Canceled", err)
	}
	if ph := synerr.Phase(err); ph != "schedule" {
		t.Errorf("phase = %q, want %q (the first phase must notice)", ph, "schedule")
	}
}

// TestPhaseCancellation checks each pipeline phase in isolation: schedule,
// place, the branch-and-bound solver, and routing all return an
// ErrDeadline-compatible error from an already-cancelled context.
func TestPhaseCancellation(t *testing.T) {
	c := assays.PCR()
	opts := Options{
		Policy: schedule.Resources{Mixers: c.BaseMixers},
		Place:  place.Config{Grid: c.GridSize, Mode: place.Greedy},
	}

	t.Run("schedule", func(t *testing.T) {
		_, err := schedule.ListCtx(cancelled(), c.Assay, schedule.Options{Resources: opts.Policy})
		if !errors.Is(err, synerr.ErrDeadline) {
			t.Fatalf("err = %v, want ErrDeadline", err)
		}
	})

	sched, err := schedule.List(c.Assay, schedule.Options{Resources: opts.Policy})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("place", func(t *testing.T) {
		_, err := place.MapCtx(cancelled(), sched, opts.Place)
		if !errors.Is(err, synerr.ErrDeadline) {
			t.Fatalf("err = %v, want ErrDeadline", err)
		}
	})

	t.Run("milp", func(t *testing.T) {
		m := milp.NewModel()
		x := m.AddBinary("x", 1)
		y := m.AddBinary("y", 1)
		m.AddRow([]milp.Term{milp.T(x, 1), milp.T(y, 1)}, milp.GE, 1)
		_, err := m.Solve(milp.Options{Ctx: cancelled()})
		if !errors.Is(err, synerr.ErrDeadline) {
			t.Fatalf("err = %v, want ErrDeadline", err)
		}
	})

	t.Run("route", func(t *testing.T) {
		full, err := SynthesizeCtx(context.Background(), c.Assay, opts)
		if err != nil {
			t.Fatal(err)
		}
		res := &Result{
			Assay:    full.Assay,
			Schedule: full.Schedule,
			Mapping:  full.Mapping,
			Grid:     full.Grid,
			opts:     full.opts,
		}
		err = res.routeAndSimulate(cancelled(), nil)
		if !errors.Is(err, synerr.ErrDeadline) {
			t.Fatalf("err = %v, want ErrDeadline", err)
		}
		if ph := synerr.Phase(err); ph != "route" {
			t.Errorf("phase = %q, want %q", ph, "route")
		}
	})
}

// TestRouteNetMaxRipups: the rip-up budget must come from Options.MaxRipups
// — a budget of one attempt fails on a net that needs a rip-up, while the
// zero-value default (8) succeeds with a detour.
func TestRouteNetMaxRipups(t *testing.T) {
	mkNet := func(r *Result, id int) net {
		return net{
			t:    r.Mapping.Windows[id][0] + 1,
			from: []grid.Point{{X: 0, Y: 4}}, to: []grid.Point{{X: 9, Y: 4}},
			fromName: "left", toName: "right", fromID: -1, toID: -1,
			exclude: map[int]bool{},
		}
	}

	// Budget 1: the only attempt crosses the full storage and is ripped
	// up; there is no second attempt.
	r, pl := fullStorageResult(t)
	id := opID(t, r, "mC")
	r.opts.MaxRipups = 1
	router := route.New(grid.RectWH(0, 0, 10, 10))
	router.AddStorage(id, pl.Footprint())
	n := mkNet(r, id)
	if _, err := r.routeNet(router, n, n.t, &routeObs{}); !errors.Is(err, route.ErrNoPath) {
		t.Fatalf("MaxRipups=1: err = %v, want ErrNoPath", err)
	}

	// Zero value: routeNet applies the default budget of 8 and the
	// rip-up succeeds with a detour around the storage.
	r2, pl2 := fullStorageResult(t)
	id2 := opID(t, r2, "mC")
	router2 := route.New(grid.RectWH(0, 0, 10, 10))
	router2.AddStorage(id2, pl2.Footprint())
	n2 := mkNet(r2, id2)
	path, err := r2.routeNet(router2, n2, n2.t, &routeObs{})
	if err != nil {
		t.Fatalf("default budget: %v", err)
	}
	for _, cell := range path {
		if pl2.Footprint().Contains(cell) {
			t.Fatalf("path crosses the full storage at %v", cell)
		}
	}
}
