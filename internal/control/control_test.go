package control

import (
	"strings"
	"testing"

	"mfsynth/internal/assays"
	"mfsynth/internal/core"
	"mfsynth/internal/place"
	"mfsynth/internal/schedule"
)

func pcrResult(t *testing.T) *core.Result {
	t.Helper()
	c := assays.PCR()
	res, err := core.Synthesize(c.Assay, core.Options{
		Policy: schedule.Resources{Mixers: c.BaseMixers},
		Place:  place.Config{Grid: c.GridSize, Mode: place.Greedy},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAnalyzePCR(t *testing.T) {
	res := pcrResult(t)
	a := Analyze(res)
	if a.VirtualValves != res.Grid*res.Grid {
		t.Errorf("VirtualValves = %d", a.VirtualValves)
	}
	if a.UsedValves != res.UsedValves {
		t.Errorf("UsedValves = %d, want %d", a.UsedValves, res.UsedValves)
	}
	if a.Pins <= 0 || a.Pins > a.UsedValves {
		t.Errorf("Pins = %d outside (0, %d]", a.Pins, a.UsedValves)
	}
	// Sharing must actually happen: ring valves of a device pumped together
	// and loaded together share a trace.
	if a.Pins == a.UsedValves {
		t.Error("no control sharing found; ring valves should group")
	}
	if a.Sharing() <= 1 {
		t.Errorf("Sharing = %.2f, want > 1", a.Sharing())
	}
	if a.LargestGroup < 2 {
		t.Errorf("LargestGroup = %d", a.LargestGroup)
	}
}

func TestGroupsPartitionUsedValves(t *testing.T) {
	res := pcrResult(t)
	a := Analyze(res)
	seen := map[[2]int]bool{}
	total := 0
	for _, g := range a.Groups {
		for _, p := range g {
			k := [2]int{p.X, p.Y}
			if seen[k] {
				t.Fatalf("valve %v in two groups", p)
			}
			seen[k] = true
			total++
		}
	}
	if total != a.UsedValves {
		t.Errorf("groups cover %d valves, want %d", total, a.UsedValves)
	}
	// Groups sorted largest first.
	for i := 1; i < len(a.Groups); i++ {
		if len(a.Groups[i]) > len(a.Groups[i-1]) {
			t.Fatal("groups not sorted by size")
		}
	}
}

func TestAnalysisString(t *testing.T) {
	res := pcrResult(t)
	a := Analyze(res)
	s := a.String()
	if !strings.Contains(s, "pins") || !strings.Contains(s, "valves") {
		t.Errorf("String = %q", s)
	}
}

func TestSharingEmptyAnalysis(t *testing.T) {
	var a Analysis
	if a.Sharing() != 0 {
		t.Errorf("Sharing of empty analysis = %g", a.Sharing())
	}
}
