// Package control analyses the control-layer effort of a synthesis result.
// The paper notes that a fully programmable valve matrix (Fidalgo &
// Maerkl's) needs per-valve control, "which leads to much control effort";
// after synthesis, however, many of the remaining valves switch in exactly
// the same pattern over the whole assay and can therefore share one
// pressure source and control channel. This package derives the per-valve
// switching traces from the event log and counts the distinct traces — the
// number of control pins the synthesized chip actually needs.
package control

import (
	"fmt"
	"sort"
	"strings"

	"mfsynth/internal/core"
	"mfsynth/internal/grid"
)

// Analysis summarises the control layer of one synthesis result.
type Analysis struct {
	// VirtualValves is the full matrix size.
	VirtualValves int
	// UsedValves is the number of manufactured valves (≥1 actuation).
	UsedValves int
	// Pins is the number of distinct switching traces: valves with equal
	// traces share one control channel.
	Pins int
	// LargestGroup is the size of the biggest pin-sharing class.
	LargestGroup int
	// Groups maps each pin (by index) to its valves, largest first.
	Groups [][]grid.Point
}

// Sharing returns the average number of valves per pin.
func (a Analysis) Sharing() float64 {
	if a.Pins == 0 {
		return 0
	}
	return float64(a.UsedValves) / float64(a.Pins)
}

// String renders a one-line summary.
func (a Analysis) String() string {
	return fmt.Sprintf("control: %d pins drive %d valves (%.2f valves/pin, largest group %d)",
		a.Pins, a.UsedValves, a.Sharing(), a.LargestGroup)
}

// Analyze derives the pin-sharing structure from the result's event log.
// Two valves may share a control pin iff they participate in exactly the
// same actuation events over the whole assay (same times, same kinds, same
// operations) — then their pressure profiles are identical.
func Analyze(res *core.Result) Analysis {
	traces := map[grid.Point][]string{}
	for i, ev := range res.Events {
		tag := fmt.Sprintf("%d/%d/%d", ev.T, int(ev.Kind), i)
		for _, c := range ev.Cells {
			traces[c] = append(traces[c], tag)
		}
	}
	classes := map[string][]grid.Point{}
	for c, tr := range traces {
		key := strings.Join(tr, ",")
		classes[key] = append(classes[key], c)
	}
	a := Analysis{
		VirtualValves: res.Grid * res.Grid,
		UsedValves:    len(traces),
		Pins:          len(classes),
	}
	for _, pts := range classes {
		sort.Slice(pts, func(i, j int) bool {
			if pts[i].Y != pts[j].Y {
				return pts[i].Y < pts[j].Y
			}
			return pts[i].X < pts[j].X
		})
		a.Groups = append(a.Groups, pts)
		if len(pts) > a.LargestGroup {
			a.LargestGroup = len(pts)
		}
	}
	sort.Slice(a.Groups, func(i, j int) bool {
		if len(a.Groups[i]) != len(a.Groups[j]) {
			return len(a.Groups[i]) > len(a.Groups[j])
		}
		return less(a.Groups[i][0], a.Groups[j][0])
	})
	return a
}

func less(p, q grid.Point) bool {
	if p.Y != q.Y {
		return p.Y < q.Y
	}
	return p.X < q.X
}
