package control

import (
	"sort"

	"mfsynth/internal/core"
	"mfsynth/internal/grid"
	"mfsynth/internal/route"
)

// Layout is a routed control layer: one pressure pin on the chip boundary
// per pin group, connected to all of the group's valves by a channel tree.
// Control channels live on their own PDMS layer, so they may cross flow
// channels freely, but channels of different pins must not touch each
// other and must not run over foreign valves (they would actuate them).
// Routing happens on a lattice ctrlScale times as fine as the valve
// matrix: channels run in the tracks between valve rows, with valve (x, y)
// at control coordinate (ctrlScale·x, ctrlScale·y).
type Layout struct {
	// Pins maps group index (as in Analysis.Groups) to its boundary pin.
	Pins []grid.Point
	// Channels holds each group's routed channel cells (including the pin
	// and the valves).
	Channels [][]grid.Point
	// Routed and Failed count the groups with complete/incomplete trees.
	Routed, Failed int
	// ExtraPins counts additional boundary pins used when a congested
	// group had to be split across two pins (externally tied to the same
	// pressure source).
	ExtraPins int
	// TotalLength is the summed channel cell count.
	TotalLength int
}

// RouteControl builds the control layer for an analysis: each group is
// routed from a boundary pin near its centroid, connecting terminals to
// the growing tree nearest-first; other groups' channels and valves are
// obstacles. Several rip-up passes reorder the groups (failures first) and
// the best attempt is kept.
func RouteControl(res *core.Result, a Analysis) Layout {
	bounds := grid.RectWH(0, 0, ctrlScale*(res.Grid-1)+1, ctrlScale*(res.Grid-1)+1)
	groups := make([][]grid.Point, len(a.Groups))
	for gi, group := range a.Groups {
		for _, v := range group {
			groups[gi] = append(groups[gi], ctrlCoord(v))
		}
	}

	// Initial order: largest groups first, they are the hardest to route.
	order := make([]int, len(groups))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		return len(groups[order[x]]) > len(groups[order[y]])
	})

	var best Layout
	for attempt := 0; attempt < 4; attempt++ {
		lay, failedSet := routeAttempt(bounds, groups, order)
		if attempt == 0 || lay.Routed > best.Routed ||
			(lay.Routed == best.Routed && lay.TotalLength < best.TotalLength) {
			best = lay
		}
		if lay.Failed == 0 {
			break
		}
		// Rip-up: move the failed groups to the front.
		var front, back []int
		for _, gi := range order {
			if failedSet[gi] {
				front = append(front, gi)
			} else {
				back = append(back, gi)
			}
		}
		order = append(front, back...)
	}
	return best
}

// routeAttempt runs one full sequential routing pass in the given order.
func routeAttempt(bounds grid.Rect, groups [][]grid.Point, order []int) (Layout, map[int]bool) {
	lay := Layout{
		Pins:     make([]grid.Point, len(groups)),
		Channels: make([][]grid.Point, len(groups)),
	}
	usedPins := map[grid.Point]bool{}
	occupied := map[grid.Point]int{} // control cell -> owning group
	// Valve cells belong to their group before any channel is routed: a
	// foreign channel over a valve would actuate it.
	for gi, group := range groups {
		for _, c := range group {
			occupied[c] = gi
		}
	}
	failed := map[int]bool{}
	for _, gi := range order {
		pin, ok := choosePin(bounds, centroid(groups[gi]), usedPins, occupied)
		if !ok {
			lay.Failed++
			failed[gi] = true
			continue
		}
		usedPins[pin] = true
		lay.Pins[gi] = pin

		tree, rest := routeTree(bounds, pin, groups[gi], gi, occupied)
		if len(rest) > 0 {
			// Congested: split the group onto a second pin near the
			// unreached terminals (tied to the same source off-chip).
			if pin2, ok := choosePin(bounds, centroid(rest), usedPins, occupied); ok {
				usedPins[pin2] = true
				tree2, rest2 := routeTree(bounds, pin2, rest, gi, occupied)
				tree = append(tree, tree2...)
				rest = rest2
				lay.ExtraPins++
			}
		}
		if len(rest) > 0 {
			lay.Failed++
			failed[gi] = true
			// Keep the partial tree occupied so later groups stay clear.
		} else {
			lay.Routed++
		}
		lay.Channels[gi] = tree
		lay.TotalLength += len(tree)
	}
	return lay, failed
}

// ctrlScale is the control-layer lattice refinement: the number of channel
// tracks between adjacent valves plus one. Multilayer soft lithography
// routes control lines far finer than the valve pitch.
const ctrlScale = 4

// ctrlCoord maps a valve position to its control-layer coordinate.
func ctrlCoord(v grid.Point) grid.Point {
	return grid.Point{X: ctrlScale * v.X, Y: ctrlScale * v.Y}
}

// routeTree connects the terminals to the pin, nearest-first, through
// cells not owned by other groups. It returns the tree cells and any
// terminals it could not reach.
func routeTree(bounds grid.Rect, pin grid.Point, terminals []grid.Point, gi int, occupied map[grid.Point]int) (cells, unreached []grid.Point) {
	tree := map[grid.Point]bool{pin: true}
	remaining := map[grid.Point]bool{}
	for _, t := range terminals {
		if t != pin {
			remaining[t] = true
		}
	}
	occupied[pin] = gi
	for len(remaining) > 0 {
		r := route.New(bounds)
		for c, owner := range occupied {
			if owner != gi {
				r.Block(grid.RectWH(c.X, c.Y, 1, 1))
			}
		}
		var sources, targets []grid.Point
		for c := range tree {
			sources = append(sources, c)
		}
		for c := range remaining {
			targets = append(targets, c)
		}
		sortPoints(sources)
		sortPoints(targets)
		path, err := r.Route(sources, targets)
		if err != nil {
			break
		}
		for _, c := range path {
			tree[c] = true
			occupied[c] = gi
			delete(remaining, c)
		}
	}
	for c := range remaining {
		unreached = append(unreached, c)
	}
	sortPoints(unreached)
	cells = make([]grid.Point, 0, len(tree))
	for c := range tree {
		cells = append(cells, c)
	}
	sortPoints(cells)
	return cells, unreached
}

// choosePin picks the free boundary cell nearest to p.
func choosePin(bounds grid.Rect, p grid.Point, usedPins map[grid.Point]bool, occupied map[grid.Point]int) (grid.Point, bool) {
	best := grid.Point{}
	bestD := -1
	for _, c := range boundaryCells(bounds) {
		if usedPins[c] {
			continue
		}
		if _, taken := occupied[c]; taken {
			continue
		}
		if d := c.Manhattan(p); bestD < 0 || d < bestD {
			best, bestD = c, d
		}
	}
	return best, bestD >= 0
}

// boundaryCells lists the chip edge cells clockwise from the origin.
func boundaryCells(b grid.Rect) []grid.Point {
	var out []grid.Point
	for x := b.X0; x < b.X1; x++ {
		out = append(out, grid.Point{X: x, Y: b.Y0})
	}
	for y := b.Y0 + 1; y < b.Y1; y++ {
		out = append(out, grid.Point{X: b.X1 - 1, Y: y})
	}
	for x := b.X1 - 2; x >= b.X0; x-- {
		out = append(out, grid.Point{X: x, Y: b.Y1 - 1})
	}
	for y := b.Y1 - 2; y > b.Y0; y-- {
		out = append(out, grid.Point{X: b.X0, Y: y})
	}
	return out
}

func centroid(pts []grid.Point) grid.Point {
	if len(pts) == 0 {
		return grid.Point{}
	}
	sx, sy := 0, 0
	for _, p := range pts {
		sx += p.X
		sy += p.Y
	}
	return grid.Point{X: sx / len(pts), Y: sy / len(pts)}
}

func sortPoints(pts []grid.Point) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Y != pts[j].Y {
			return pts[i].Y < pts[j].Y
		}
		return pts[i].X < pts[j].X
	})
}
