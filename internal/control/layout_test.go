package control

import (
	"testing"

	"mfsynth/internal/grid"
)

func TestRouteControlPCR(t *testing.T) {
	res := pcrResult(t)
	a := Analyze(res)
	lay := RouteControl(res, a)
	if lay.Routed+lay.Failed != len(a.Groups) {
		t.Fatalf("routed %d + failed %d != %d groups", lay.Routed, lay.Failed, len(a.Groups))
	}
	// On a 12×12 chip with ~40 pins the vast majority of groups must route
	// (channel congestion may strand the odd deeply-enclosed valve).
	if lay.Routed < len(a.Groups)*8/10 {
		t.Errorf("only %d of %d control trees routed", lay.Routed, len(a.Groups))
	}
	if lay.ExtraPins < 0 || lay.ExtraPins > len(a.Groups) {
		t.Errorf("ExtraPins = %d", lay.ExtraPins)
	}
	if lay.TotalLength == 0 {
		t.Fatal("no channel cells")
	}

	// Channels of different groups are disjoint.
	owner := map[grid.Point]int{}
	for gi, ch := range lay.Channels {
		for _, c := range ch {
			if prev, ok := owner[c]; ok && prev != gi {
				t.Fatalf("cell %v owned by groups %d and %d", c, prev, gi)
			}
			owner[c] = gi
		}
	}
	// Every complete tree contains its pin and all its valves.
	for gi, ch := range lay.Channels {
		if len(ch) == 0 {
			continue
		}
		cells := map[grid.Point]bool{}
		for _, c := range ch {
			cells[c] = true
		}
		if !cells[lay.Pins[gi]] {
			t.Errorf("group %d tree misses its pin %v", gi, lay.Pins[gi])
		}
	}
}

func TestBoundaryCells(t *testing.T) {
	b := grid.RectWH(0, 0, 4, 4)
	cells := boundaryCells(b)
	if len(cells) != 12 {
		t.Fatalf("boundary of 4x4 has %d cells, want 12", len(cells))
	}
	seen := map[grid.Point]bool{}
	for _, c := range cells {
		if seen[c] {
			t.Fatalf("duplicate boundary cell %v", c)
		}
		seen[c] = true
		if c.X != 0 && c.X != 3 && c.Y != 0 && c.Y != 3 {
			t.Fatalf("interior cell %v on boundary", c)
		}
	}
}

func TestCentroid(t *testing.T) {
	c := centroid([]grid.Point{{X: 0, Y: 0}, {X: 4, Y: 2}})
	if c != (grid.Point{X: 2, Y: 1}) {
		t.Fatalf("centroid = %v", c)
	}
	if centroid(nil) != (grid.Point{}) {
		t.Fatal("empty centroid")
	}
}

func TestChoosePinSkipsUsed(t *testing.T) {
	b := grid.RectWH(0, 0, 6, 6)
	used := map[grid.Point]bool{}
	occ := map[grid.Point]int{}
	p1, ok := choosePin(b, grid.Point{X: 3, Y: 0}, used, occ)
	if !ok {
		t.Fatal("no pin found")
	}
	used[p1] = true
	p2, ok := choosePin(b, grid.Point{X: 3, Y: 0}, used, occ)
	if !ok || p2 == p1 {
		t.Fatalf("second pin = %v (first %v)", p2, p1)
	}
}
