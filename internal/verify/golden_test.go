package verify

import (
	"strings"
	"testing"
	"time"

	"mfsynth/internal/assays"
	"mfsynth/internal/baseline"
	"mfsynth/internal/core"
	"mfsynth/internal/place"
	"mfsynth/internal/schedule"
)

// goldenMetrics pins the Table 1 p1 outcome of every benchmark. The values
// are regression anchors: any synthesis change that moves them must be
// deliberate (and re-pinned here), and every golden run must also pass the
// full conformance audit.
type goldenMetrics struct {
	vsMax1, vsPump1 int
	vsMax2, vsPump2 int
	used, failed    int
	maxPumpOps      int
}

var golden = map[string]goldenMetrics{
	"PCR":                   {46, 40, 32, 30, 76, 0, 1},
	"MixingTree":            {90, 80, 52, 50, 112, 0, 2},
	"InterpolatingDilution": {128, 120, 69, 65, 222, 0, 3},
	"ExponentialDilution":   {136, 120, 70, 62, 224, 0, 3},
}

// synthBenchmark runs one Table 1 cell under policy p1. The node cap
// replaces the default wall-clock B&B deadline so results are deterministic
// (a binding deadline is timing-dependent; a node cap is not).
func synthBenchmark(t *testing.T, name string, mode place.Mode, workers int) *core.Result {
	t.Helper()
	c, err := assays.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	des, err := baseline.Traditional(c, 1, baseline.DefaultCost)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Synthesize(c.Assay, core.Options{
		Policy: schedule.Resources{Mixers: des.Mixers, Detectors: c.Detectors},
		Place: place.Config{Grid: c.GridSize, Mode: mode,
			MaxNodes: 64, SolveTimeout: time.Hour},
		Workers: workers,
	})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return res
}

// TestGoldenBenchmarksConform audits all four Table 1 benchmarks (policy
// p1, both evaluation settings) and pins their metrics — the acceptance
// gate of the conformance harness.
func TestGoldenBenchmarksConform(t *testing.T) {
	for _, name := range assays.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			res := synthBenchmark(t, name, place.Greedy, 1)
			if rep := Conformance(res); !rep.Clean() {
				t.Errorf("conformance: %s", rep)
			}
			want := golden[name]
			got := goldenMetrics{res.VsMax1, res.VsPump1, res.VsMax2, res.VsPump2,
				res.UsedValves, res.FailedRoutes, res.Mapping.MaxPumpOps}
			if got != want {
				t.Errorf("metrics drifted: got %+v, want %+v", got, want)
			}
		})
	}
}

// TestGoldenRollingConforms repeats the audit for the ILP-backed
// rolling-horizon mapper on PCR, which must reach the same pinned metrics.
func TestGoldenRollingConforms(t *testing.T) {
	if testing.Short() {
		t.Skip("branch-and-bound run skipped in -short mode")
	}
	res := synthBenchmark(t, "PCR", place.RollingHorizon, 1)
	if rep := Conformance(res); !rep.Clean() {
		t.Errorf("conformance: %s", rep)
	}
	want := golden["PCR"]
	got := goldenMetrics{res.VsMax1, res.VsPump1, res.VsMax2, res.VsPump2,
		res.UsedValves, res.FailedRoutes, res.Mapping.MaxPumpOps}
	if got != want {
		t.Errorf("metrics drifted: got %+v, want %+v", got, want)
	}
}

// TestSerialParallelBitIdentical is the differential oracle of the parallel
// engine: a serial run and a Workers=8 run must produce bit-identical
// results — same fingerprint over every scheduling, placement, routing and
// actuation decision — and both must pass the conformance audit.
func TestSerialParallelBitIdentical(t *testing.T) {
	cases := []struct {
		name string
		mode place.Mode
	}{
		{"MixingTree", place.Greedy},
		{"PCR", place.RollingHorizon},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tc.mode == place.RollingHorizon && testing.Short() {
				t.Skip("branch-and-bound run skipped in -short mode")
			}
			serial := synthBenchmark(t, tc.name, tc.mode, 1)
			parallel := synthBenchmark(t, tc.name, tc.mode, 8)
			if Fingerprint(serial) != Fingerprint(parallel) {
				t.Errorf("serial and workers=8 diverge:\n%s",
					strings.Join(Diff("serial", serial, "workers=8", parallel), "\n"))
			}
			for label, res := range map[string]*core.Result{"serial": serial, "workers=8": parallel} {
				if rep := Conformance(res); !rep.Clean() {
					t.Errorf("%s: %s", label, rep)
				}
			}
		})
	}
}

// TestDynamicDominatesTraditional checks the paper's headline claim as an
// oracle: under policy p1, dynamic-device mapping must not exceed the
// traditional static binding's peak actuation count on any benchmark.
func TestDynamicDominatesTraditional(t *testing.T) {
	for _, name := range assays.Names() {
		c, err := assays.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		des, err := baseline.Traditional(c, 1, baseline.DefaultCost)
		if err != nil {
			t.Fatal(err)
		}
		res := synthBenchmark(t, name, place.Greedy, 1)
		if res.VsMax1 > des.VsTmax {
			t.Errorf("%s: dynamic peak %d exceeds traditional peak %d",
				name, res.VsMax1, des.VsTmax)
		}
	}
}

// TestRollingObjectiveSanity checks the mapper hierarchy: the ILP-backed
// rolling-horizon mapper's objective (peak pump operations per device site)
// must not be worse than the greedy heuristic's on PCR.
func TestRollingObjectiveSanity(t *testing.T) {
	if testing.Short() {
		t.Skip("branch-and-bound run skipped in -short mode")
	}
	greedy := synthBenchmark(t, "PCR", place.Greedy, 1)
	rolling := synthBenchmark(t, "PCR", place.RollingHorizon, 1)
	if rolling.Mapping.MaxPumpOps > greedy.Mapping.MaxPumpOps {
		t.Errorf("rolling objective %d worse than greedy %d",
			rolling.Mapping.MaxPumpOps, greedy.Mapping.MaxPumpOps)
	}
}
