package verify

import (
	"fmt"
	"sort"
	"strings"

	"mfsynth/internal/core"
	"mfsynth/internal/graph"
	"mfsynth/internal/grid"
)

// checkFlow audits fluid conservation and the event log. Conservation:
// every fluid edge of the assay is realised by exactly as many transports
// as the assay has parallel edges between the pair, and every childless
// on-chip product drains to a port exactly once. The event log is then
// re-derived from schedule, mapping and transports and compared.
func checkFlow(r *Report, res *core.Result) {
	a := res.Assay

	type key struct{ from, to int }
	routed := map[key]int{}
	for _, tr := range res.Transports {
		routed[key{tr.FromID, tr.ToID}]++
	}

	// Expected transport multiset, mirroring the demand construction of the
	// synthesis flow: per incoming port edge, per outgoing edge, plus one
	// drain for childless products. Edges to dropped consumers generate no
	// demand (the drop itself is audited in checkPlacement).
	dropped := map[int]bool{}
	for _, id := range res.Mapping.Dropped {
		dropped[id] = true
	}
	expected := map[key]int{}
	for _, op := range a.Ops() {
		if op.Kind == graph.Input || op.Kind == graph.Output {
			continue
		}
		if _, placed := res.Mapping.Placements[op.ID]; !placed {
			continue // unplaced-op, or a declared drop
		}
		for _, e := range a.In(op.ID) {
			if a.Op(e.From).Kind == graph.Input {
				expected[key{e.From, op.ID}]++
			}
		}
		for _, e := range a.Out(op.ID) {
			if dropped[e.To] {
				continue
			}
			expected[key{op.ID, e.To}]++
		}
		if len(a.Out(op.ID)) == 0 {
			expected[key{op.ID, -1}]++
		}
	}

	name := func(id int) string {
		if id < 0 {
			return "out"
		}
		return a.Op(id).Name
	}

	// A degraded result that declares a net unrouted is consistent exactly
	// when that transport is indeed missing: each declared failure consumes
	// one expectation.
	if d := res.Degradation; d != nil {
		for _, f := range d.FailedNets {
			k := key{f.FromID, f.ToID}
			r.check()
			if expected[k] == 0 {
				r.add("degradation-report", fmt.Sprintf(
					"declared failed net %s matches no expected transport", f))
				continue
			}
			expected[k]--
		}
	}
	for k, want := range expected {
		r.check()
		if routed[k] != want {
			rule := "unrouted-edge"
			if k.to == -1 {
				rule = "undrained-product"
			}
			r.add(rule, fmt.Sprintf("edge %s->%s routed %d times, want %d",
				name(k.from), name(k.to), routed[k], want))
		}
	}
	for k, got := range routed {
		r.check()
		if expected[k] == 0 {
			r.add("unrouted-edge", fmt.Sprintf("unexpected transport %s->%s routed %d times",
				name(k.from), name(k.to), got))
		}
	}

	declaredFails := 0
	if res.Degradation != nil {
		declaredFails = len(res.Degradation.FailedNets)
	}
	r.check()
	if res.FailedRoutes != declaredFails {
		r.add("failed-routes", fmt.Sprintf("%d transport(s) could not be routed, %d declared in the degradation report",
			res.FailedRoutes, declaredFails))
	}

	checkEvents(r, res)
}

// checkEvents re-derives the actuation event log from the schedule, the
// mapping and the transports, and compares it with the recorded one as a
// canonical multiset.
func checkEvents(r *Report, res *core.Result) {
	var derived []string
	for id, pl := range res.Mapping.Placements {
		if res.Assay.Op(id).Kind != graph.Mix {
			continue
		}
		derived = append(derived, pumpKey(res.Schedule.Start[id], id, pl.Volume(), pl.Ring()))
	}
	for _, tr := range res.Transports {
		if tr.InPlace {
			continue
		}
		derived = append(derived, ctrlKey(tr.T, tr.Path))
	}

	var recorded []string
	for _, ev := range res.Events {
		switch ev.Kind {
		case core.PumpEvent:
			recorded = append(recorded, pumpKey(ev.T, ev.Op, ev.Ring, ev.Cells))
		case core.CtrlEvent:
			recorded = append(recorded, ctrlKey(ev.T, ev.Cells))
		default:
			r.check()
			r.add("event-mismatch", fmt.Sprintf("unknown event kind %d at t=%d", int(ev.Kind), ev.T))
		}
	}

	sort.Strings(derived)
	sort.Strings(recorded)
	r.check()
	if len(derived) != len(recorded) {
		r.add("event-mismatch", fmt.Sprintf("%d events recorded, %d derived from schedule+transports",
			len(recorded), len(derived)))
		return
	}
	for i := range derived {
		r.check()
		if derived[i] != recorded[i] {
			r.add("event-mismatch", fmt.Sprintf("event %q recorded, %q derived", recorded[i], derived[i]))
			return
		}
	}
}

// pumpKey canonicalises one pump event (cells sorted, so ring enumeration
// order does not matter).
func pumpKey(t, op, ring int, cells []grid.Point) string {
	return fmt.Sprintf("pump t=%d op=%d ring=%d %s", t, op, ring, cellsKey(cells))
}

// ctrlKey canonicalises one control event by time and cell set.
func ctrlKey(t int, cells []grid.Point) string {
	return fmt.Sprintf("ctrl t=%d %s", t, cellsKey(cells))
}

func cellsKey(cells []grid.Point) string {
	ss := make([]string, len(cells))
	for i, c := range cells {
		ss[i] = fmt.Sprintf("(%d,%d)", c.X, c.Y)
	}
	sort.Strings(ss)
	return strings.Join(ss, " ")
}
