package verify

import (
	"fmt"

	"mfsynth/internal/core"
	"mfsynth/internal/graph"
	"mfsynth/internal/wear"
)

// checkWear re-derives the per-valve actuation counts of both evaluation
// settings from first principles — schedule, mapping and transports, never
// the event log — and requires the result's chip replay (ChipAt, the source
// of ChipActuationCounts) and its reported Table 1 metrics to match.
func checkWear(r *Report, res *core.Result) {
	opts := res.Options()
	for _, setting := range []int{1, 2} {
		pump := make([][]int, res.Grid)
		ctrl := make([][]int, res.Grid)
		for y := range pump {
			pump[y] = make([]int, res.Grid)
			ctrl[y] = make([]int, res.Grid)
		}

		// Peristalsis: every placed mixing operation actuates each of its
		// ring valves; setting 2 scales the per-valve count so one mixing
		// operation always costs DedicatedPumpValves × PumpActuations total.
		for id, pl := range res.Mapping.Placements {
			if res.Assay.Op(id).Kind != graph.Mix {
				continue
			}
			n := opts.PumpActuations
			if setting == 2 {
				n = opts.DedicatedPumpValves * opts.PumpActuations / pl.Volume()
			}
			for _, pt := range pl.Ring() {
				if pt.Y >= 0 && pt.Y < res.Grid && pt.X >= 0 && pt.X < res.Grid {
					pump[pt.Y][pt.X] += n
				}
			}
		}
		// Control: every routed transport opens and closes each path valve
		// once — two state changes per valve.
		for _, tr := range res.Transports {
			if tr.InPlace {
				continue
			}
			for _, c := range tr.Path {
				if c.Y >= 0 && c.Y < res.Grid && c.X >= 0 && c.X < res.Grid {
					ctrl[c.Y][c.X] += 2
				}
			}
		}

		// The replayed chip must match cell by cell.
		chip := res.ChipAt(-1, setting)
		mismatches := 0
		for y := 0; y < res.Grid; y++ {
			for x := 0; x < res.Grid; x++ {
				r.check()
				if chip.PumpAt(x, y) != pump[y][x] || chip.CtrlAt(x, y) != ctrl[y][x] {
					if mismatches == 0 {
						r.add("wear-accounting", fmt.Sprintf(
							"setting %d valve (%d,%d): replay %d+%d, first principles %d+%d",
							setting, x, y, chip.PumpAt(x, y), chip.CtrlAt(x, y), pump[y][x], ctrl[y][x]))
					}
					mismatches++
				}
			}
		}
		if mismatches > 1 {
			r.add("wear-accounting", fmt.Sprintf("setting %d: %d valves disagree in total", setting, mismatches))
		}

		// The reported Table 1 metrics must match the re-derived counts.
		maxTotal, maxPump, used := 0, 0, 0
		var counts []int
		for y := 0; y < res.Grid; y++ {
			for x := 0; x < res.Grid; x++ {
				t := pump[y][x] + ctrl[y][x]
				if t > maxTotal {
					maxTotal = t
				}
				if pump[y][x] > maxPump {
					maxPump = pump[y][x]
				}
				if t > 0 {
					used++
					counts = append(counts, t)
				}
			}
		}
		repMax, repPump := res.VsMax1, res.VsPump1
		if setting == 2 {
			repMax, repPump = res.VsMax2, res.VsPump2
		}
		r.check()
		if repMax != maxTotal || repPump != maxPump {
			r.add("metric-mismatch", fmt.Sprintf("setting %d: reported %d(%d), first principles %d(%d)",
				setting, repMax, repPump, maxTotal, maxPump))
		}
		if setting == 1 {
			r.check()
			if res.UsedValves != used {
				r.add("metric-mismatch", fmt.Sprintf("reported %d used valves, first principles %d",
					res.UsedValves, used))
			}
			// ChipActuationCounts (wear.ChipCounts of the replayed chip) must
			// equal the first-principles profile, descending.
			got := wear.ChipCounts(chip)
			want := append([]int(nil), counts...)
			sortDesc(want)
			r.check()
			if !equalInts(got, want) {
				r.add("wear-accounting", fmt.Sprintf(
					"ChipActuationCounts has %d entries (max %d), first principles %d (max %d)",
					len(got), headInt(got), len(want), headInt(want)))
			}
		}
	}
}

func sortDesc(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] > xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func headInt(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	return xs[0]
}
