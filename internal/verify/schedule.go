package verify

import (
	"fmt"

	"mfsynth/internal/core"
	"mfsynth/internal/graph"
)

// checkSchedule audits the scheduling result: precedence with transport
// delay, duration consistency, makespan, and the dedicated-instance binding
// (exclusivity and policy limits).
func checkSchedule(r *Report, res *core.Result) {
	a := res.Assay
	s := res.Schedule
	delay := s.TransportDelay

	maxFinish := 0
	for _, op := range a.Ops() {
		id := op.ID
		r.check()
		if s.Start[id] < 0 {
			r.add("schedule-precedence", fmt.Sprintf("%s starts at negative time %d", op.Name, s.Start[id]))
		}
		r.check()
		if s.Finish[id] != s.Start[id]+op.Duration {
			r.add("schedule-precedence", fmt.Sprintf("%s: finish %d != start %d + duration %d",
				op.Name, s.Finish[id], s.Start[id], op.Duration))
		}
		if s.Finish[id] > maxFinish {
			maxFinish = s.Finish[id]
		}
		for _, e := range a.In(id) {
			parent := a.Op(e.From)
			want := s.Finish[e.From]
			if parent.Kind != graph.Input {
				// On-chip products must be transported to the consumer.
				want += delay
			}
			r.check()
			if s.Start[id] < want {
				r.add("schedule-precedence", fmt.Sprintf("%s starts at %d before %s's product is ready at %d",
					op.Name, s.Start[id], parent.Name, want))
			}
		}
	}
	r.check()
	if s.Makespan != maxFinish {
		r.add("schedule-makespan", fmt.Sprintf("reported makespan %d, max finish %d", s.Makespan, maxFinish))
	}

	// Instance binding: bound windows must be disjoint per instance.
	for _, inst := range s.Instances {
		for i := 0; i < len(inst.Ops); i++ {
			for j := i + 1; j < len(inst.Ops); j++ {
				x, y := inst.Ops[i], inst.Ops[j]
				r.check()
				if s.Start[x] < s.Finish[y] && s.Start[y] < s.Finish[x] {
					r.add("instance-conflict", fmt.Sprintf("%s and %s overlap on %s instance %d",
						a.Op(x).Name, a.Op(y).Name, sizeName(inst.Size), inst.Index))
				}
			}
		}
	}

	// Policy limits: instances per class must not exceed the policy.
	policy := res.Options().Policy
	counts := map[int]int{} // size (0 = detector) -> instance count
	for _, inst := range s.Instances {
		counts[inst.Size]++
	}
	for size, n := range counts {
		var limit int
		if size == 0 {
			limit = policy.Detectors
		} else {
			limit = policy.Mixers[size]
		}
		r.check()
		if limit > 0 && n > limit {
			r.add("instance-limit", fmt.Sprintf("%d %s instances used, policy allows %d",
				n, sizeName(size), limit))
		}
	}
}

func sizeName(size int) string {
	if size == 0 {
		return "detector"
	}
	return fmt.Sprintf("mixer-%d", size)
}
