package verify

import (
	"strings"
	"testing"
	"time"

	"mfsynth/internal/core"
	"mfsynth/internal/fault"
	"mfsynth/internal/graph"
	"mfsynth/internal/grid"
	"mfsynth/internal/obs"
	"mfsynth/internal/place"
	"mfsynth/internal/schedule"
)

func testAssay(t *testing.T) *graph.Assay {
	t.Helper()
	a := graph.New("req-test")
	in1 := a.Add(graph.Input, "s1", 0)
	in2 := a.Add(graph.Input, "s2", 0)
	mix := a.Add(graph.Mix, "m1", 3)
	out := a.Add(graph.Output, "o1", 0)
	a.Connect(in1, mix, 4)
	a.Connect(in2, mix, 4)
	a.Connect(mix, out, 8)
	return a
}

func baseOpts() core.Options {
	return core.Options{
		Policy: schedule.Resources{Mixers: map[int]int{8: 1}, Detectors: 1},
		Place:  place.Config{Grid: 12},
	}
}

func mustFingerprint(t *testing.T, a *graph.Assay, opts core.Options) string {
	t.Helper()
	fp, err := RequestFingerprint(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

// TestRequestFingerprintDefaultInvariance: a request spelled with zero
// values hashes identically to one spelling every default explicitly, and
// to one setting the result-neutral fields (Workers, Trace, Obs). A
// divergence here would split the result cache into spurious cold entries;
// a collision in the sensitivity test below would poison it.
func TestRequestFingerprintDefaultInvariance(t *testing.T) {
	a := testAssay(t)
	base := mustFingerprint(t, a, baseOpts())

	cases := []struct {
		name string
		mut  func(*core.Options)
	}{
		{"explicit transport delay default", func(o *core.Options) { o.TransportDelay = schedule.DefaultTransportDelay }},
		{"explicit pump actuations default", func(o *core.Options) { o.PumpActuations = core.DefaultPumpActuations }},
		{"explicit dedicated pump valves default", func(o *core.Options) { o.DedicatedPumpValves = core.DefaultDedicatedPumpValves }},
		{"explicit max ripups default", func(o *core.Options) { o.MaxRipups = 8 }},
		{"explicit batch size default", func(o *core.Options) { o.Place.BatchSize = 6 }},
		{"explicit max nodes default", func(o *core.Options) { o.Place.MaxNodes = 1024 }},
		{"explicit solve timeout default", func(o *core.Options) { o.Place.SolveTimeout = 120 * time.Second }},
		{"explicit root stride default", func(o *core.Options) { o.Place.RootStride = 2 }},
		{"workers is result-neutral", func(o *core.Options) { o.Workers = 7 }},
		{"place workers is result-neutral", func(o *core.Options) { o.Place.Workers = 3 }},
		{"trace is result-neutral", func(o *core.Options) { o.Trace = obs.New() }},
		{"zero-count mixer entry is absent", func(o *core.Options) {
			o.Policy.Mixers = map[int]int{8: 1, 6: 0}
		}},
		{"anneal knobs without anneal backend are result-neutral", func(o *core.Options) {
			o.Anneal.Seed = 99
			o.Anneal.Replicates = 3
		}},
	}
	for _, tc := range cases {
		opts := baseOpts()
		tc.mut(&opts)
		if got := mustFingerprint(t, a, opts); got != base {
			canon, _ := CanonicalRequest(a, opts)
			t.Errorf("%s: fingerprint changed\ncanonical:\n%s", tc.name, canon)
		}
	}

	// Nil vs empty mixer map.
	optsNil := baseOpts()
	optsNil.Policy.Mixers = nil
	optsEmpty := baseOpts()
	optsEmpty.Policy.Mixers = map[int]int{}
	if mustFingerprint(t, a, optsNil) != mustFingerprint(t, a, optsEmpty) {
		t.Error("nil and empty mixer maps hash differently")
	}

	// Zero-valued anneal knobs hash like the spelled-out defaults (the
	// anneal backend must be listed for the knobs to hash at all).
	withAnneal := baseOpts()
	withAnneal.Backends = []core.Backend{core.BackendAnneal}
	spelled := withAnneal
	spelled.Anneal = core.AnnealOptions{}.WithDefaults()
	if mustFingerprint(t, a, withAnneal) != mustFingerprint(t, a, spelled) {
		t.Error("zero-valued and spelled-default anneal options hash differently")
	}

	// Duplicate backends collapse to their first occurrence.
	dup := baseOpts()
	dup.Backends = []core.Backend{core.BackendILP, core.BackendILP, core.BackendGreedy}
	plain := baseOpts()
	plain.Backends = []core.Backend{core.BackendILP, core.BackendGreedy}
	if mustFingerprint(t, a, dup) != mustFingerprint(t, a, plain) {
		t.Error("duplicate backend entries hash differently from the deduped list")
	}
}

// TestRequestFingerprintSensitivity: every semantically distinct option,
// fault-spec change and assay mutation produces a distinct fingerprint. A
// silent collision between two of these would let the serving tier return
// a cached result for a different problem.
func TestRequestFingerprintSensitivity(t *testing.T) {
	a := testAssay(t)
	seen := map[string]string{
		"base": mustFingerprint(t, a, baseOpts()),
	}
	record := func(name, fp string) {
		for prev, prevFP := range seen {
			if prevFP == fp {
				t.Errorf("%s collides with %s", name, prev)
			}
		}
		seen[name] = fp
	}

	optCases := []struct {
		name string
		mut  func(*core.Options)
	}{
		{"detectors", func(o *core.Options) { o.Policy.Detectors = 2 }},
		{"mixer count", func(o *core.Options) { o.Policy.Mixers = map[int]int{8: 2} }},
		{"mixer size", func(o *core.Options) { o.Policy.Mixers = map[int]int{4: 1} }},
		{"transport delay", func(o *core.Options) { o.TransportDelay = 5 }},
		{"pump actuations", func(o *core.Options) { o.PumpActuations = 20 }},
		{"dedicated pump valves", func(o *core.Options) { o.DedicatedPumpValves = 4 }},
		{"storage passthrough", func(o *core.Options) { o.DisableStoragePassthrough = true }},
		{"max ripups", func(o *core.Options) { o.MaxRipups = 3 }},
		{"disable degradation", func(o *core.Options) { o.DisableDegradation = true }},
		{"grid", func(o *core.Options) { o.Place.Grid = 14 }},
		{"mode monolithic", func(o *core.Options) { o.Place.Mode = place.Monolithic }},
		{"mode greedy", func(o *core.Options) { o.Place.Mode = place.Greedy }},
		{"batch size", func(o *core.Options) { o.Place.BatchSize = 4 }},
		{"max nodes", func(o *core.Options) { o.Place.MaxNodes = 256 }},
		{"solve timeout", func(o *core.Options) { o.Place.SolveTimeout = time.Minute }},
		{"root stride", func(o *core.Options) { o.Place.RootStride = 1 }},
		{"no storage overlap", func(o *core.Options) { o.Place.NoStorageOverlap = true }},
		{"no routing convenient", func(o *core.Options) { o.Place.NoRoutingConvenient = true }},
		{"best effort", func(o *core.Options) { o.Place.BestEffort = true }},
		{"cold lp", func(o *core.Options) { o.Place.ColdLP = true }},
		{"one stuck-closed fault", func(o *core.Options) {
			o.Faults = fault.NewSet(12, fault.Fault{At: grid.Point{X: 3, Y: 4}, Kind: fault.StuckClosed})
		}},
		{"fault kind", func(o *core.Options) {
			o.Faults = fault.NewSet(12, fault.Fault{At: grid.Point{X: 3, Y: 4}, Kind: fault.StuckOpen})
		}},
		{"fault position", func(o *core.Options) {
			o.Faults = fault.NewSet(12, fault.Fault{At: grid.Point{X: 4, Y: 3}, Kind: fault.StuckClosed})
		}},
		{"wear-out threshold", func(o *core.Options) {
			o.Faults = fault.NewSet(12, fault.Fault{At: grid.Point{X: 3, Y: 4}, Kind: fault.WearOut, Threshold: 100})
		}},
		{"wear-out threshold value", func(o *core.Options) {
			o.Faults = fault.NewSet(12, fault.Fault{At: grid.Point{X: 3, Y: 4}, Kind: fault.WearOut, Threshold: 200})
		}},
		{"backend greedy alone", func(o *core.Options) {
			o.Backends = []core.Backend{core.BackendGreedy}
		}},
		{"backend portfolio", func(o *core.Options) {
			o.Backends = []core.Backend{core.BackendILP, core.BackendAnneal}
		}},
		{"backend priority order", func(o *core.Options) {
			o.Backends = []core.Backend{core.BackendAnneal, core.BackendILP}
		}},
		{"anneal seed", func(o *core.Options) {
			o.Backends = []core.Backend{core.BackendAnneal, core.BackendILP}
			o.Anneal.Seed = 7
		}},
		{"anneal replicates", func(o *core.Options) {
			o.Backends = []core.Backend{core.BackendAnneal, core.BackendILP}
			o.Anneal.Replicates = 2
		}},
		{"anneal iters", func(o *core.Options) {
			o.Backends = []core.Backend{core.BackendAnneal, core.BackendILP}
			o.Anneal.Iters = 500
		}},
		{"anneal temperature schedule", func(o *core.Options) {
			o.Backends = []core.Backend{core.BackendAnneal, core.BackendILP}
			o.Anneal.InitTemp = 3
			o.Anneal.Cooling = 0.99
		}},
	}
	for _, tc := range optCases {
		opts := baseOpts()
		tc.mut(&opts)
		record("option "+tc.name, mustFingerprint(t, a, opts))
	}

	// Faults reach the fingerprint through either field.
	viaPlace := baseOpts()
	viaPlace.Place.Faults = fault.NewSet(12, fault.Fault{At: grid.Point{X: 3, Y: 4}, Kind: fault.StuckClosed})
	if got := mustFingerprint(t, a, viaPlace); got != seen["option one stuck-closed fault"] {
		t.Error("Place.Faults fallback hashes differently from Options.Faults")
	}

	assayCases := []struct {
		name string
		mut  func(a *graph.Assay)
	}{
		{"op renamed", func(a *graph.Assay) { a.Op(2).Name = "m1x" }},
		{"duration", func(a *graph.Assay) { a.Op(2).Duration = 4 }},
		{"extra op", func(a *graph.Assay) {
			d := a.Add(graph.Detect, "d1", 2)
			a.Connect(a.Op(2), d, 8)
		}},
	}
	for _, tc := range assayCases {
		b := testAssay(t)
		tc.mut(b)
		record("assay "+tc.name, mustFingerprint(t, b, baseOpts()))
	}

	// Edge volume change (rebuild: volumes are set on Connect).
	b := graph.New("req-test")
	in1 := b.Add(graph.Input, "s1", 0)
	in2 := b.Add(graph.Input, "s2", 0)
	mix := b.Add(graph.Mix, "m1", 3)
	out := b.Add(graph.Output, "o1", 0)
	b.Connect(in1, mix, 2)
	b.Connect(in2, mix, 2)
	b.Connect(mix, out, 4)
	record("assay edge volume", mustFingerprint(t, b, baseOpts()))
}

// TestCanonicalRequestShape: the canonical text carries the labelled
// sections the fingerprint is defined over, and applies defaults.
func TestCanonicalRequestShape(t *testing.T) {
	a := testAssay(t)
	canon, err := CanonicalRequest(a, baseOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"request v1\n", "assay:\n", "options:\n", "faults:\nnone\n",
		"transport_delay 3\n", "pump_actuations 40\n", "max_ripups 8\n",
		"place grid=12 mode=rolling-horizon batch=6 max_nodes=1024",
		"backends none\n",
	} {
		if !strings.Contains(canon, want) {
			t.Errorf("canonical request missing %q:\n%s", want, canon)
		}
	}

	// A portfolio request spells the priority order and the anneal schedule.
	opts := baseOpts()
	opts.Backends = []core.Backend{core.BackendAnneal, core.BackendGreedy}
	opts.Anneal.Seed = 5
	canon, err = CanonicalRequest(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"backends anneal,greedy\n",
		"anneal seed=5 replicates=8 iters=4000 init_temp=1.5 cooling=0.998\n",
	} {
		if !strings.Contains(canon, want) {
			t.Errorf("canonical request missing %q:\n%s", want, canon)
		}
	}
}
