// Package verify is the pipeline-wide conformance checker: it audits a
// complete core.Result against a numbered catalogue of the paper's
// invariants — constraints (1)-(16) of the ILP formulation plus the routing
// and storage legality rules of Algorithm 1 — re-deriving every quantity
// from first principles instead of trusting the pipeline's own bookkeeping.
//
// The catalogue is the single source of truth for "what a correct synthesis
// result looks like": sim.Check delegates here, the fuzzers assert a clean
// report on every random assay, and the golden tests pin the four Table 1
// benchmarks. Each rule carries the paper constraint it realises (see
// Catalogue and DESIGN.md §8).
//
// On top of Conformance sits a differential layer (diff.go): canonical
// fingerprints of results for serial-vs-parallel bit-identity oracles,
// field-level diffs, and assay dumps in the assays text format so any
// failing random input can be replayed with `mfsynth -assay`.
package verify

import (
	"fmt"
	"sort"
	"strings"

	"mfsynth/internal/core"
)

// Violation is one broken invariant.
type Violation struct {
	// Rule is the stable kebab-case rule identifier, e.g. "device-overlap".
	Rule string
	// Constraint references the paper: a constraint number like "(3)-(8)",
	// an algorithm line like "Alg.1 L13-L17", or a section.
	Constraint string
	// Detail is a human-readable description of the specific failure.
	Detail string
}

// String renders "rule [constraint]: detail".
func (v Violation) String() string {
	return fmt.Sprintf("%s [%s]: %s", v.Rule, v.Constraint, v.Detail)
}

// Invariant is one catalogue entry.
type Invariant struct {
	// Rule is the identifier violations carry.
	Rule string
	// Constraint is the paper reference.
	Constraint string
	// Desc says what must hold.
	Desc string
}

// Catalogue lists every invariant Conformance audits, in audit order. It is
// the machine-readable counterpart of DESIGN.md §8.
var Catalogue = []Invariant{
	{"schedule-precedence", "§2 problem formulation", "every consumer starts no earlier than each producer's finish plus the transport delay (delay waived for port inputs); Finish = Start + Duration"},
	{"schedule-makespan", "§2 problem formulation", "the reported makespan is the maximum finish time"},
	{"instance-conflict", "§2 optimal binding", "operations bound to the same dedicated instance never overlap in execution time"},
	{"instance-limit", "§2 policy", "no more instances of a mixer size (or detectors) than the policy provides"},
	{"unplaced-op", "(1)", "every on-chip operation is mapped to exactly one dynamic device, unless declared dropped by a best-effort degraded run"},
	{"off-chip", "(10)-(11)", "every device footprint plus its one-valve wall band lies on the chip"},
	{"undersized-device", "§3.2", "a device's peristaltic ring holds at least the operation's fluid volume"},
	{"window-mismatch", "§3.3", "the mapping's device lifetime equals the schedule-derived window (storage start to operation finish)"},
	{"device-overlap", "(3)-(8), (12)", "temporally overlapping devices keep a wall between footprints, except a storage hosting a parent within its free space"},
	{"storage-capacity", "§3.3", "deposits re-derived from the schedule never exceed the storage's ring capacity"},
	{"empty-inplace", "§3.3", "an in-place transfer's endpoints genuinely share cells"},
	{"trivial-path", "Alg.1 L10-L19", "a routed transport has at least two cells"},
	{"path-off-chip", "Alg.1 L10-L19", "every path cell lies on the valve lattice"},
	{"path-discontinuous", "Alg.1 L10-L19", "consecutive path cells are lattice neighbours"},
	{"path-endpoints", "Alg.1 L10-L19", "a path starts on its source terminal set (device ring or input port) and ends on its target terminal set (device ring or output port)"},
	{"path-through-device", "Alg.1 L13", "no path interior crosses a device that is executing at transport time"},
	{"storage-crossing", "§3.5, Alg.1 L14-L15", "cells a path borrows from an active storage fit the storage's free space for the transport duration"},
	{"unrouted-edge", "§2 problem formulation", "every fluid edge of the assay is realised by exactly as many transports as the assay has parallel edges"},
	{"undrained-product", "§2 problem formulation", "every childless on-chip product is drained to an output port exactly once"},
	{"failed-routes", "Alg.1 L10-L19", "every failed route is itemised in the degradation report; none are silent"},
	{"degradation-report", "graceful degradation", "the degradation report is consistent with the result: declared failed nets correspond to missing transports and declared drops to unmapped operations"},
	{"event-mismatch", "§4 evaluation", "the event log re-derived from schedule, mapping and transports matches the recorded one"},
	{"wear-accounting", "§4 settings 1-2", "per-valve actuation counts re-derived from first principles match the result's chip replay in both settings"},
	{"metric-mismatch", "§4 Table 1", "vs_max, pump-only maxima and the used-valve count match the re-derived counts in both settings"},
	{"faulty-footprint", "§3.2 fault admissibility", "no stuck-closed valve lies inside any device footprint (hence no ring or in situ storage), and no stuck-open valve serves on a ring or wall band"},
	{"faulty-path", "Alg.1 L10-L19", "no routed transport path crosses a stuck-closed or stuck-open valve"},
	{"wear-threshold", "reliability model", "every wear-out valve's replayed actuation total stays within its threshold, unless the degradation report declares the overrun"},
}

// Report is the outcome of one conformance audit.
type Report struct {
	// Violations lists every broken invariant, in catalogue order.
	Violations []Violation
	// Checks counts the individual assertions evaluated (a measure of audit
	// depth, not of failures).
	Checks int
}

// Clean reports whether the audit found no violations.
func (r *Report) Clean() bool { return len(r.Violations) == 0 }

// Rules returns the distinct violated rule names in first-seen order.
func (r *Report) Rules() []string {
	seen := map[string]bool{}
	var out []string
	for _, v := range r.Violations {
		if !seen[v.Rule] {
			seen[v.Rule] = true
			out = append(out, v.Rule)
		}
	}
	return out
}

// String summarises the report: "conformance: N checks, clean" or the
// violation list.
func (r *Report) String() string {
	if r.Clean() {
		return fmt.Sprintf("conformance: %d checks, clean", r.Checks)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "conformance: %d checks, %d violation(s):\n", r.Checks, len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(&sb, "  %s\n", v)
	}
	return strings.TrimRight(sb.String(), "\n")
}

func (r *Report) add(rule, detail string) {
	r.Violations = append(r.Violations, Violation{
		Rule:       rule,
		Constraint: constraintOf(rule),
		Detail:     detail,
	})
}

// check counts one assertion; violated assertions additionally call add.
func (r *Report) check() { r.Checks++ }

func constraintOf(rule string) string {
	for _, inv := range Catalogue {
		if inv.Rule == rule {
			return inv.Constraint
		}
	}
	return "?"
}

// Conformance audits res against the full invariant catalogue and returns
// the report. The audit is read-only and re-derives schedules, obstacle
// sets, storage fill levels and actuation counts independently of the
// pipeline's own accounting.
func Conformance(res *core.Result) *Report {
	r := &Report{}
	checkSchedule(r, res)
	checkPlacement(r, res)
	checkRouting(r, res)
	checkFlow(r, res)
	checkWear(r, res)
	checkFaults(r, res)
	sortViolations(r)
	return r
}

// sortViolations orders violations by catalogue position, then detail, so
// reports are deterministic regardless of map iteration order.
func sortViolations(r *Report) {
	pos := map[string]int{}
	for i, inv := range Catalogue {
		pos[inv.Rule] = i
	}
	sort.SliceStable(r.Violations, func(i, j int) bool {
		a, b := r.Violations[i], r.Violations[j]
		if pos[a.Rule] != pos[b.Rule] {
			return pos[a.Rule] < pos[b.Rule]
		}
		return a.Detail < b.Detail
	})
}
