package verify

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"mfsynth/internal/assays"
	"mfsynth/internal/core"
	"mfsynth/internal/graph"
)

// Canonical serialises every decision of a synthesis result — schedule,
// binding, placements, windows, transports, events and the reported
// metrics — as a deterministic text, independent of map iteration order and
// wall-clock time. Two results are bit-identical (in the sense of the
// parallel engine's contract) exactly when their canonical forms are equal.
func Canonical(res *core.Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "assay %s grid %d\n", res.Assay.Name, res.Grid)
	fmt.Fprintf(&sb, "metrics vs1=%d(%d) vs2=%d(%d) used=%d failed=%d maxpump=%d\n",
		res.VsMax1, res.VsPump1, res.VsMax2, res.VsPump2,
		res.UsedValves, res.FailedRoutes, res.Mapping.MaxPumpOps)

	s := res.Schedule
	for _, op := range res.Assay.Ops() {
		fmt.Fprintf(&sb, "sched %d %s [%d,%d) inst=%d\n",
			op.ID, op.Name, s.Start[op.ID], s.Finish[op.ID], s.InstanceOf[op.ID])
	}

	ids := make([]int, 0, len(res.Mapping.Placements))
	for id := range res.Mapping.Placements {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		w := res.Mapping.Windows[id]
		fmt.Fprintf(&sb, "place %d %v window [%d,%d)\n", id, res.Mapping.Placements[id], w[0], w[1])
	}

	for _, tr := range res.Transports {
		fmt.Fprintf(&sb, "transport t=%d %d->%d inplace=%v path=%v\n",
			tr.T, tr.FromID, tr.ToID, tr.InPlace, tr.Path)
	}
	for _, ev := range res.Events {
		fmt.Fprintf(&sb, "event t=%d kind=%d op=%d ring=%d cells=%v\n",
			ev.T, int(ev.Kind), ev.Op, ev.Ring, ev.Cells)
	}
	return sb.String()
}

// Fingerprint returns the SHA-256 of the canonical form, hex-encoded — the
// oracle value of the serial-vs-parallel bit-identity comparison.
func Fingerprint(res *core.Result) string {
	sum := sha256.Sum256([]byte(Canonical(res)))
	return hex.EncodeToString(sum[:])
}

// Diff compares two results decision by decision and returns a list of
// human-readable differences (nil when bit-identical). Labels a and b name
// the runs, e.g. "serial" and "workers=8".
func Diff(labelA string, a *core.Result, labelB string, b *core.Result) []string {
	la := strings.Split(strings.TrimRight(Canonical(a), "\n"), "\n")
	lb := strings.Split(strings.TrimRight(Canonical(b), "\n"), "\n")
	var out []string
	n := len(la)
	if len(lb) > n {
		n = len(lb)
	}
	for i := 0; i < n && len(out) < 20; i++ {
		va, vb := "<missing>", "<missing>"
		if i < len(la) {
			va = la[i]
		}
		if i < len(lb) {
			vb = lb[i]
		}
		if va != vb {
			out = append(out, fmt.Sprintf("line %d: %s %q != %s %q", i+1, labelA, va, labelB, vb))
		}
	}
	if len(out) == 20 {
		out = append(out, "… diff truncated")
	}
	return out
}

// DumpAssay renders the assay in the assays text format, for embedding in a
// failure report: the dump can be saved to a file and replayed with
// `mfsynth -assay <file> -verify`. Errors (a cyclic assay) are reported in
// place of the dump.
func DumpAssay(a *graph.Assay) string {
	var sb strings.Builder
	if err := assays.Write(&sb, a); err != nil {
		return fmt.Sprintf("# assay dump failed: %v", err)
	}
	return sb.String()
}
