package verify

import (
	"strings"
	"testing"
	"time"

	"mfsynth/internal/assays"
	"mfsynth/internal/baseline"
	"mfsynth/internal/core"
	"mfsynth/internal/graph"
	"mfsynth/internal/place"
	"mfsynth/internal/schedule"
)

// synthWithLPMode runs one node-capped synthesis with the branch-and-bound
// warm-start machinery on or off (place.Config.ColdLP).
func synthWithLPMode(t *testing.T, a *graph.Assay, policy schedule.Resources, grid int, coldLP bool) *core.Result {
	t.Helper()
	res, err := core.Synthesize(a, core.Options{
		Policy: policy,
		Place: place.Config{Grid: grid, Mode: place.RollingHorizon,
			MaxNodes: 64, SolveTimeout: time.Hour, ColdLP: coldLP},
	})
	if err != nil {
		t.Fatalf("%s coldLP=%v: %v", a.Name, coldLP, err)
	}
	return res
}

// TestWarmColdPipelineIdentical is the pipeline-level warm-start property:
// synthesis with warm-started branch and bound must produce the same result
// — same fingerprint over every scheduling, placement, routing and
// actuation decision — as synthesis with all-cold LP solves. The pipeline
// consumes only the solver's incumbent and status, so this holds as long
// as both search modes land on the same incumbent; the milp-level fuzz
// suite (TestWarmMatchesCold) checks that answer-equality directly, and
// this test pins it end to end across the Table 1 benchmarks and a batch
// of fuzzed assays, all node-capped so runs are deterministic.
func TestWarmColdPipelineIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("branch-and-bound runs skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("single-configuration determinism property; skipped under -race " +
			"(no concurrency to check, and the slowdown breaks the package timeout)")
	}
	// PCR and MixingTree cover both rolling-horizon regimes (ILP solves
	// that complete and ones that fall back) at a tier-1-friendly cost;
	// the dilution benchmarks add minutes without new solver behaviour.
	for _, name := range []string{"PCR", "MixingTree"} {
		name := name
		t.Run(name, func(t *testing.T) {
			c, err := assays.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			des, err := baseline.Traditional(c, 1, baseline.DefaultCost)
			if err != nil {
				t.Fatal(err)
			}
			policy := schedule.Resources{Mixers: des.Mixers, Detectors: c.Detectors}
			warm := synthWithLPMode(t, c.Assay, policy, c.GridSize, false)
			cold := synthWithLPMode(t, c.Assay, policy, c.GridSize, true)
			if Fingerprint(warm) != Fingerprint(cold) {
				t.Errorf("warm and cold LP modes diverge:\n%s",
					strings.Join(Diff("warm", warm, "cold", cold), "\n"))
			}
			if rep := Conformance(warm); !rep.Clean() {
				t.Errorf("warm conformance: %s", rep)
			}
		})
	}
	t.Run("fuzzed", func(t *testing.T) {
		for seed := int64(1); seed <= 4; seed++ {
			a := assays.Random(seed, assays.RandomOptions{MixOps: 4 + int(seed%3), Detects: 1})
			warm := synthWithLPMode(t, a, schedule.Resources{}, 14, false)
			cold := synthWithLPMode(t, a, schedule.Resources{}, 14, true)
			if Fingerprint(warm) != Fingerprint(cold) {
				t.Errorf("seed %d: warm and cold LP modes diverge:\n%s",
					seed, strings.Join(Diff("warm", warm, "cold", cold), "\n"))
			}
			if rep := Conformance(warm); !rep.Clean() {
				t.Errorf("seed %d: warm conformance: %s", seed, rep)
			}
		}
	})
}
