package verify

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"mfsynth/internal/assays"
	"mfsynth/internal/core"
	"mfsynth/internal/fault"
	"mfsynth/internal/graph"
	"mfsynth/internal/schedule"
)

// CanonicalRequest serialises a synthesis *request* — the assay, the
// effective options and the fault set — as a deterministic text. It is the
// request-side counterpart of Canonical: two requests with equal canonical
// forms are guaranteed (by the engine's determinism contract) to produce
// bit-identical results, which is what makes RequestFingerprint a safe
// result-cache key for the serving tier.
//
// Canonicalisation rules:
//
//   - Every defaultable option is emitted with its default applied, exactly
//     as core.SynthesizeCtx and place.Config.withDefaults would resolve it,
//     so a zero value and an explicitly-spelled default hash identically.
//   - Fields that provably never change results are excluded: Workers /
//     Place.Workers (the parallel engine's bit-identity contract), Trace
//     and Place.Obs (observation never changes results).
//   - The fault set is the effective one the pipeline would use:
//     Options.Faults, falling back to Place.Faults, serialised in the
//     fault-spec text format (sorted by cell).
//   - The assay is serialised in the assays text format (topological op
//     order, sorted edges), so the hash covers structure, names, kinds,
//     durations and volumes rather than pointer identity.
//
// An assay that cannot be serialised (a cyclic graph) yields an error; such
// a request cannot be synthesised either, so it is never cacheable.
func CanonicalRequest(a *graph.Assay, opts core.Options) (string, error) {
	var sb strings.Builder
	sb.WriteString("request v1\n")

	sb.WriteString("assay:\n")
	if err := assays.Write(&sb, a); err != nil {
		return "", fmt.Errorf("verify: canonical request: %w", err)
	}

	sb.WriteString("options:\n")
	writeCanonicalOptions(&sb, opts)

	sb.WriteString("faults:\n")
	fs := opts.Faults
	if fs == nil {
		fs = opts.Place.Faults
	}
	if fs.Empty() {
		sb.WriteString("none\n")
	} else if err := fault.Write(&sb, fs); err != nil {
		return "", fmt.Errorf("verify: canonical request: %w", err)
	}
	return sb.String(), nil
}

// writeCanonicalOptions emits every semantically significant option with
// defaults applied, in a fixed field order independent of how the caller
// spelled the struct literal.
func writeCanonicalOptions(sb *strings.Builder, opts core.Options) {
	// Scheduling policy: mixer sizes sorted ascending; an absent and an
	// empty mixer map are the same policy.
	sizes := make([]int, 0, len(opts.Policy.Mixers))
	for size, n := range opts.Policy.Mixers {
		if n != 0 {
			sizes = append(sizes, size)
		}
	}
	sort.Ints(sizes)
	fmt.Fprintf(sb, "policy detectors=%d mixers=", opts.Policy.Detectors)
	for i, size := range sizes {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(sb, "%d:%d", size, opts.Policy.Mixers[size])
	}
	sb.WriteByte('\n')

	delay := opts.TransportDelay
	if delay <= 0 {
		delay = schedule.DefaultTransportDelay
	}
	fmt.Fprintf(sb, "transport_delay %d\n", delay)

	pump := opts.PumpActuations
	if pump == 0 {
		pump = core.DefaultPumpActuations
	}
	fmt.Fprintf(sb, "pump_actuations %d\n", pump)

	dedicated := opts.DedicatedPumpValves
	if dedicated == 0 {
		dedicated = core.DefaultDedicatedPumpValves
	}
	fmt.Fprintf(sb, "dedicated_pump_valves %d\n", dedicated)

	fmt.Fprintf(sb, "disable_storage_passthrough %v\n", opts.DisableStoragePassthrough)

	ripups := opts.MaxRipups
	if ripups <= 0 {
		ripups = 8
	}
	fmt.Fprintf(sb, "max_ripups %d\n", ripups)

	fmt.Fprintf(sb, "disable_degradation %v\n", opts.DisableDegradation)

	p := opts.Place
	grid := p.Grid
	if grid == 0 {
		grid = 10
	}
	batch := p.BatchSize
	if batch == 0 {
		batch = 6
	}
	maxNodes := p.MaxNodes
	if maxNodes == 0 {
		maxNodes = 1024
	}
	timeout := p.SolveTimeout
	if timeout == 0 {
		timeout = 120e9 // 120s, as place.Config.withDefaults resolves it
	}
	stride := p.RootStride
	if stride == 0 {
		stride = 2
	}
	fmt.Fprintf(sb, "place grid=%d mode=%s batch=%d max_nodes=%d solve_timeout_ns=%d root_stride=%d\n",
		grid, p.Mode, batch, maxNodes, int64(timeout), stride)
	fmt.Fprintf(sb, "place no_storage_overlap=%v no_routing_convenient=%v best_effort=%v cold_lp=%v\n",
		p.NoStorageOverlap, p.NoRoutingConvenient, p.BestEffort, p.ColdLP)

	// Wear prior: past-load placement bias changes placements, so it
	// hashes — resolved to the per-operation units the engine seeds the
	// mapper with, in sparse index:units form. A nil, all-zero or
	// bias-less prior emits "none": all three are provably identical to a
	// fresh chip.
	prior := p.WearPrior
	if prior == nil && opts.WearBias > 0 && len(opts.WearCounts) > 0 {
		prior = core.WearPriorUnits(opts.WearCounts, opts.WearBias, pump)
	}
	sb.WriteString("wear_prior")
	any := false
	for i, v := range prior {
		if v != 0 {
			fmt.Fprintf(sb, " %d:%d", i, v)
			any = true
		}
	}
	if !any {
		sb.WriteString(" none")
	}
	sb.WriteByte('\n')

	// Portfolio configuration. Order is significant (it is the tie-break
	// priority) so the list is emitted verbatim after dedup; unknown
	// backends make the whole line "invalid <name>" — such a request fails
	// synthesis, so the unreachable cache entry is harmless. The anneal
	// schedule hashes whenever the anneal backend can run: with no anneal
	// backend the knobs provably cannot change the result and are elided.
	backends := "none"
	annealRuns := false
	if bs, err := core.ParseBackends(backendsSpec(opts.Backends)); err != nil {
		backends = "invalid " + backendsSpec(opts.Backends)
	} else if len(bs) > 0 {
		backends = backendsSpec(bs)
		for _, b := range bs {
			if b == core.BackendAnneal {
				annealRuns = true
			}
		}
	}
	fmt.Fprintf(sb, "backends %s\n", backends)
	if annealRuns {
		an := opts.Anneal.WithDefaults()
		fmt.Fprintf(sb, "anneal seed=%d replicates=%d iters=%d init_temp=%g cooling=%g\n",
			an.Seed, an.Replicates, an.Iters, an.InitTemp, an.Cooling)
	}
}

// backendsSpec renders a backend list in the comma-separated flag syntax.
func backendsSpec(bs []core.Backend) string {
	parts := make([]string, len(bs))
	for i, b := range bs {
		parts[i] = string(b)
	}
	return strings.Join(parts, ",")
}

// RequestFingerprint returns the SHA-256 of the canonical request form,
// hex-encoded — the serving tier's cache / coalescing key. Equal
// fingerprints imply bit-identical synthesis results (same schedule,
// placement, routing, events and metrics), so a cached result can be
// returned verbatim for a repeated request.
func RequestFingerprint(a *graph.Assay, opts core.Options) (string, error) {
	canon, err := CanonicalRequest(a, opts)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:]), nil
}
