package verify

import (
	"fmt"

	"mfsynth/internal/core"
	"mfsynth/internal/graph"
	"mfsynth/internal/grid"
	"mfsynth/internal/storage"
)

// checkPlacement audits the dynamic-device mapping: completeness, on-chip
// bounds with the wall band, device sizing, lifetime windows, the
// non-overlap constraints with the in-situ-storage exception, and storage
// capacity — all against windows and storage timelines re-derived from the
// schedule, not the mapping's own copies.
func checkPlacement(r *Report, res *core.Result) {
	a := res.Assay
	m := res.Mapping
	bounds := grid.RectWH(0, 0, res.Grid, res.Grid)

	dropped := map[int]bool{}
	for _, id := range m.Dropped {
		dropped[id] = true
	}
	declaredDrop := map[string]bool{}
	if res.Degradation != nil {
		for _, n := range res.Degradation.DroppedOps {
			declaredDrop[n] = true
		}
	}

	var placed []int
	for _, op := range a.Ops() {
		if op.Kind == graph.Input || op.Kind == graph.Output {
			continue
		}
		pl, ok := m.Placements[op.ID]
		r.check()
		if !ok {
			if dropped[op.ID] && declaredDrop[op.Name] {
				continue // a best-effort drop the degradation report owns up to
			}
			r.add("unplaced-op", fmt.Sprintf("operation %s has no device", op.Name))
			continue
		}
		placed = append(placed, op.ID)
		r.check()
		if !bounds.ContainsRect(pl.WallBox()) {
			r.add("off-chip", fmt.Sprintf("%s: wall box %v leaves the %dx%d chip",
				op.Name, pl.WallBox(), res.Grid, res.Grid))
		}
		r.check()
		if pl.Volume() < a.Volume(op.ID) {
			r.add("undersized-device", fmt.Sprintf("%s: ring volume %d < fluid volume %d",
				op.Name, pl.Volume(), a.Volume(op.ID)))
		}
		// The mapping's lifetime window must equal the schedule-derived one.
		from, to := res.Schedule.DeviceWindow(op.ID)
		r.check()
		if w, ok := m.Windows[op.ID]; ok && (w[0] != from || w[1] != to) {
			r.add("window-mismatch", fmt.Sprintf("%s: mapping window [%d,%d), schedule derives [%d,%d)",
				op.Name, w[0], w[1], from, to))
		}
		// Storage capacity: deposits re-derived from the schedule must fit
		// the device ring.
		r.check()
		if total := depositTotal(res, op.ID); total > pl.Volume() {
			r.add("storage-capacity", fmt.Sprintf("%s: stores %d units in ring volume %d",
				op.Name, total, pl.Volume()))
		}
	}

	// Non-overlap, constraints (3)-(8) with the (12) relaxation.
	for i := 0; i < len(placed); i++ {
		for j := i + 1; j < len(placed); j++ {
			x, y := placed[i], placed[j]
			xa, xb := res.Schedule.DeviceWindow(x)
			ya, yb := res.Schedule.DeviceWindow(y)
			if xa >= yb || ya >= xb {
				continue // disjoint lifetimes
			}
			px, py := m.Placements[x], m.Placements[y]
			r.check()
			if px.CompatibleWith(py) {
				continue
			}
			if storageOverlapOK(res, x, y) || storageOverlapOK(res, y, x) {
				continue
			}
			r.add("device-overlap", fmt.Sprintf("%s (%v) and %s (%v) conflict in space and time",
				a.Op(x).Name, px, a.Op(y).Name, py))
		}
	}

	// Every mapping-level drop must be owned by the degradation report.
	for _, id := range m.Dropped {
		r.check()
		if !declaredDrop[a.Op(id).Name] {
			r.add("degradation-report", fmt.Sprintf(
				"mapping drops %s but the degradation report does not declare it", a.Op(id).Name))
		}
	}
}

// depositTotal sums the product volumes the in situ storage of id receives
// from its device parents (port inputs arrive at operation start and are
// never stored).
func depositTotal(res *core.Result, id int) int {
	total := 0
	for _, e := range res.Assay.In(id) {
		if res.Assay.Op(e.From).Kind != graph.Input {
			total += e.Volume
		}
	}
	return total
}

// derivedTimeline rebuilds the in situ storage timeline of id from the
// schedule alone. It returns nil when id has no storage phase or when the
// deposits exceed capacity (that case is reported as storage-capacity).
func derivedTimeline(res *core.Result, id int) *storage.Timeline {
	pl, ok := res.Mapping.Placements[id]
	if !ok {
		return nil
	}
	if depositTotal(res, id) > pl.Volume() {
		return nil
	}
	return storage.NewTimeline(res.Schedule, id, pl.Volume())
}

// storageOverlapOK reports whether parent's footprint may intrude into
// child's in situ storage: parent must be a device parent of child and the
// intruded area must fit the storage's free space for parent's lifetime.
func storageOverlapOK(res *core.Result, child, parent int) bool {
	isParent := false
	for _, p := range res.Assay.DeviceParents(child) {
		if p == parent {
			isParent = true
		}
	}
	if !isParent {
		return false
	}
	tl := derivedTimeline(res, child)
	if tl == nil {
		return false
	}
	area := res.Mapping.Placements[child].Footprint().OverlapArea(
		res.Mapping.Placements[parent].Footprint())
	pa, pb := res.Schedule.DeviceWindow(parent)
	return tl.CanOverlap(area, pa, pb)
}
