package verify

import (
	"strings"
	"testing"

	"mfsynth/internal/assays"
	"mfsynth/internal/core"
	"mfsynth/internal/grid"
	"mfsynth/internal/place"
	"mfsynth/internal/schedule"
)

func synthCase(t *testing.T, c assays.Case, mode place.Mode) *core.Result {
	t.Helper()
	res, err := core.Synthesize(c.Assay, core.Options{
		Policy: schedule.Resources{Mixers: c.BaseMixers, Detectors: c.Detectors},
		Place:  place.Config{Grid: c.GridSize, Mode: mode},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCatalogueRulesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, inv := range Catalogue {
		if seen[inv.Rule] {
			t.Errorf("duplicate catalogue rule %q", inv.Rule)
		}
		seen[inv.Rule] = true
		if inv.Constraint == "" || inv.Desc == "" {
			t.Errorf("catalogue rule %q lacks constraint or description", inv.Rule)
		}
	}
}

func TestPCRCleanUnderAllMappers(t *testing.T) {
	c := assays.PCR()
	for _, mode := range []place.Mode{place.Greedy, place.RollingHorizon} {
		rep := Conformance(synthCase(t, c, mode))
		if !rep.Clean() {
			t.Errorf("%v mapping: %s", mode, rep)
		}
		if rep.Checks == 0 {
			t.Errorf("%v mapping: no checks evaluated", mode)
		}
	}
}

func TestRandomAssaysClean(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a := assays.Random(seed, assays.RandomOptions{MixOps: 6, Detects: 1})
		res, err := core.Synthesize(a, core.Options{
			Place: place.Config{Grid: 14, Mode: place.Greedy},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep := Conformance(res); !rep.Clean() {
			t.Errorf("seed %d: %s\nreplay assay:\n%s", seed, rep, DumpAssay(a))
		}
	}
}

// Every corruption of a clean result must be caught by the expected rule —
// the self-test of the invariant catalogue.
func TestCorruptionDetection(t *testing.T) {
	c := assays.PCR()
	res := synthCase(t, c, place.Greedy)
	if rep := Conformance(res); !rep.Clean() {
		t.Fatalf("baseline result not clean: %s", rep)
	}

	anyPlaced := func() int {
		for id := range res.Mapping.Placements {
			return id
		}
		t.Fatal("no placements")
		return -1
	}

	cases := []struct {
		name    string
		rule    string
		corrupt func() (restore func())
	}{
		{"late start", "schedule-precedence", func() func() {
			id := anyPlaced()
			saved := res.Schedule.Start[id]
			res.Schedule.Start[id] = saved - 1 // breaks finish = start+duration too
			return func() { res.Schedule.Start[id] = saved }
		}},
		{"wrong makespan", "schedule-makespan", func() func() {
			saved := res.Schedule.Makespan
			res.Schedule.Makespan = saved + 7
			return func() { res.Schedule.Makespan = saved }
		}},
		{"missing placement", "unplaced-op", func() func() {
			id := anyPlaced()
			saved := res.Mapping.Placements[id]
			delete(res.Mapping.Placements, id)
			return func() { res.Mapping.Placements[id] = saved }
		}},
		{"device off chip", "off-chip", func() func() {
			id := anyPlaced()
			saved := res.Mapping.Placements[id]
			moved := saved
			moved.At = grid.Point{X: res.Grid - 1, Y: res.Grid - 1}
			res.Mapping.Placements[id] = moved
			return func() { res.Mapping.Placements[id] = saved }
		}},
		{"undersized device", "undersized-device", func() func() {
			id := -1
			for cand := range res.Mapping.Placements {
				if res.Assay.Volume(cand) >= 8 {
					id = cand
					break
				}
			}
			if id < 0 {
				t.Fatal("no 8-volume op")
			}
			saved := res.Mapping.Placements[id]
			small := saved
			small.Shape.W, small.Shape.H = 2, 2
			res.Mapping.Placements[id] = small
			return func() { res.Mapping.Placements[id] = saved }
		}},
		{"shifted window", "window-mismatch", func() func() {
			id := anyPlaced()
			saved := res.Mapping.Windows[id]
			res.Mapping.Windows[id] = [2]int{saved[0] + 1, saved[1] + 1}
			return func() { res.Mapping.Windows[id] = saved }
		}},
		{"dropped transport", "unrouted-edge", func() func() {
			idx := -1
			for i, tr := range res.Transports {
				if tr.ToID >= 0 {
					idx = i
					break
				}
			}
			if idx < 0 {
				t.Fatal("no non-drain transport")
			}
			saved := res.Transports
			res.Transports = append(append([]core.Transport(nil),
				saved[:idx]...), saved[idx+1:]...)
			return func() { res.Transports = saved }
		}},
		{"dropped drain", "undrained-product", func() func() {
			idx := -1
			for i, tr := range res.Transports {
				if tr.ToID == -1 {
					idx = i
					break
				}
			}
			if idx < 0 {
				t.Fatal("no drain transport")
			}
			saved := res.Transports
			res.Transports = append(append([]core.Transport(nil),
				saved[:idx]...), saved[idx+1:]...)
			return func() { res.Transports = saved }
		}},
		{"declared failure", "failed-routes", func() func() {
			res.FailedRoutes = 1
			return func() { res.FailedRoutes = 0 }
		}},
		{"dropped event", "event-mismatch", func() func() {
			saved := res.Events
			res.Events = res.Events[:len(res.Events)-1]
			return func() { res.Events = saved }
		}},
		{"inflated metric", "metric-mismatch", func() func() {
			saved := res.VsMax1
			res.VsMax1 = saved + 1
			return func() { res.VsMax1 = saved }
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			restore := tc.corrupt()
			defer restore()
			rep := Conformance(res)
			if rep.Clean() {
				t.Fatalf("corruption not detected")
			}
			found := false
			for _, rule := range rep.Rules() {
				if rule == tc.rule {
					found = true
				}
			}
			if !found {
				t.Errorf("want rule %q, got %v", tc.rule, rep.Rules())
			}
		})
	}
	if rep := Conformance(res); !rep.Clean() {
		t.Fatalf("result not restored after corruption tests: %s", rep)
	}
}

// A corrupted path interior must trip the continuity or obstacle checks.
func TestPathCorruptionDetection(t *testing.T) {
	c := assays.PCR()
	res := synthCase(t, c, place.Greedy)
	idx := -1
	for i, tr := range res.Transports {
		if !tr.InPlace && len(tr.Path) >= 4 {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Skip("no long transport found")
	}
	saved := append([]grid.Point(nil), res.Transports[idx].Path...)
	defer func() { copy(res.Transports[idx].Path, saved) }()

	// Teleport a middle cell far away: breaks continuity (and possibly the
	// event comparison, since events carry the same cells).
	res.Transports[idx].Path[len(saved)/2] = grid.Point{X: 0, Y: 0}
	rep := Conformance(res)
	found := false
	for _, rule := range rep.Rules() {
		switch rule {
		case "path-discontinuous", "path-endpoints", "path-through-device":
			found = true
		}
	}
	if !found {
		t.Errorf("teleported path cell not detected: %v", rep.Rules())
	}
}

func TestReportString(t *testing.T) {
	r := &Report{Checks: 3}
	if got := r.String(); !strings.Contains(got, "clean") {
		t.Errorf("clean report renders %q", got)
	}
	r.add("device-overlap", "x and y collide")
	if got := r.String(); !strings.Contains(got, "device-overlap") || !strings.Contains(got, "(3)-(8)") {
		t.Errorf("violation report renders %q", got)
	}
	if rules := r.Rules(); len(rules) != 1 || rules[0] != "device-overlap" {
		t.Errorf("Rules = %v", rules)
	}
}

func TestDiffAndFingerprint(t *testing.T) {
	c := assays.PCR()
	a := synthCase(t, c, place.Greedy)
	b := synthCase(t, c, place.Greedy)
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatalf("same synthesis, different fingerprints:\n%s",
			strings.Join(Diff("a", a, "b", b), "\n"))
	}
	if d := Diff("a", a, "b", b); d != nil {
		t.Fatalf("identical results diff: %v", d)
	}
	saved := b.VsMax1
	b.VsMax1++
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("metric change did not change the fingerprint")
	}
	if d := Diff("a", a, "b", b); len(d) == 0 {
		t.Fatal("metric change produced an empty diff")
	}
	b.VsMax1 = saved
}

func TestDumpAssayRoundTrips(t *testing.T) {
	a := assays.Random(3, assays.RandomOptions{MixOps: 5})
	dump := DumpAssay(a)
	got, err := assays.Parse(strings.NewReader(dump))
	if err != nil {
		t.Fatalf("dump does not re-parse: %v\n%s", err, dump)
	}
	if got.Len() != a.Len() || got.NumEdges() != a.NumEdges() {
		t.Fatalf("dump round-trip lost structure: %d/%d ops, %d/%d edges",
			got.Len(), a.Len(), got.NumEdges(), a.NumEdges())
	}
}
