package verify

import (
	"fmt"

	"mfsynth/internal/core"
	"mfsynth/internal/fault"
	"mfsynth/internal/grid"
)

// checkFaults audits the result against the fault set it was synthesised
// with (Options().Faults — the working set, including wear-out valves
// promoted during synthesis). The roles mirror place's admissibility rules
// and route's blocking, but are re-derived from the final placements and
// paths: a stuck-closed valve may appear in no footprint (and therefore no
// ring or in situ storage) and no routed path; a stuck-open valve may serve
// on no ring, in no wall band and on no path; a wear-out valve's replayed
// actuation total stays within its threshold unless the degradation report
// declares the overrun.
func checkFaults(r *Report, res *core.Result) {
	fs := res.Options().Faults
	if fs.Empty() {
		return
	}
	a := res.Assay
	m := res.Mapping
	faults := fs.Faults()

	for _, op := range a.Ops() {
		pl, ok := m.Placements[op.ID]
		if !ok {
			continue
		}
		fp := pl.Footprint()
		wall := pl.WallBox()
		ring := map[grid.Point]bool{}
		for _, p := range pl.Ring() {
			ring[p] = true
		}
		for _, f := range faults {
			if !wall.Contains(f.At) {
				continue
			}
			switch f.Kind {
			case fault.StuckClosed:
				r.check()
				if fp.Contains(f.At) {
					r.add("faulty-footprint", fmt.Sprintf("%s: stuck-closed valve %v inside footprint %v",
						op.Name, f.At, fp))
				}
			case fault.StuckOpen:
				r.check()
				if ring[f.At] || !fp.Contains(f.At) {
					r.add("faulty-footprint", fmt.Sprintf("%s: stuck-open valve %v on the ring or wall band of %v",
						op.Name, f.At, fp))
				}
			}
		}
	}

	// Routed paths must avoid every unroutable cell. In-place transfers are
	// exempt: their "path" is the shared ring cells and nothing actuates.
	unroutable := map[grid.Point]fault.Kind{}
	for _, p := range fs.UnroutableCells() {
		f, _ := fs.At(p)
		unroutable[p] = f.Kind
	}
	for _, tr := range res.Transports {
		if tr.InPlace {
			continue
		}
		for _, p := range tr.Path {
			r.check()
			if k, bad := unroutable[p]; bad {
				r.add("faulty-path", fmt.Sprintf("transport %s->%s at t=%d crosses %v valve %v",
					tr.From, tr.To, tr.T, k, p))
			}
		}
	}

	// Wear thresholds against the full-horizon replay.
	declared := map[grid.Point]bool{}
	if res.Degradation != nil {
		for _, p := range res.Degradation.WearExceeded {
			declared[p] = true
		}
	}
	chip := res.ChipAt(-1, 1)
	for _, f := range fs.WearOuts() {
		r.check()
		if got := chip.TotalAt(f.At.X, f.At.Y); got > f.Threshold && !declared[f.At] {
			r.add("wear-threshold", fmt.Sprintf("valve %v actuates %d times against threshold %d, undeclared",
				f.At, got, f.Threshold))
		}
	}
}
