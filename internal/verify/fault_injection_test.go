package verify

import (
	"testing"

	"mfsynth/internal/assays"
	"mfsynth/internal/baseline"
	"mfsynth/internal/core"
	"mfsynth/internal/fault"
	"mfsynth/internal/place"
	"mfsynth/internal/schedule"
)

// synthWithFaults runs one benchmark under policy p1 with the given fault
// set (greedy mapper, deterministic).
func synthWithFaults(t *testing.T, name string, fs *fault.Set) *core.Result {
	t.Helper()
	c, err := assays.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	des, err := baseline.Traditional(c, 1, baseline.DefaultCost)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Synthesize(c.Assay, core.Options{
		Policy: schedule.Resources{Mixers: des.Mixers, Detectors: c.Detectors},
		Place:  place.Config{Grid: c.GridSize, Mode: place.Greedy},
		Faults: fs,
	})
	if err != nil {
		t.Fatalf("%s with %d faults: %v", name, fs.Len(), err)
	}
	return res
}

// TestStuckClosedNeverUsed is the property test of the fault model: across
// all four Table 1 benchmarks and several seeded 5% stuck-closed defect
// sets, no stuck-closed valve may appear in any footprint (hence any ring
// or in situ storage) or on any routed path — asserted both directly and
// through the conformance catalogue's fault rules.
func TestStuckClosedNeverUsed(t *testing.T) {
	for _, name := range assays.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			c, err := assays.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(1); seed <= 3; seed++ {
				fs := fault.Generate(seed, fault.GenOptions{
					Grid: c.GridSize, Rate: 0.05, KeepPorts: true,
				})
				res := synthWithFaults(t, name, fs)

				// Direct assertions, independent of the catalogue.
				for id, pl := range res.Mapping.Placements {
					fp := pl.Footprint()
					for _, f := range fs.Faults() {
						if f.Kind == fault.StuckClosed && fp.Contains(f.At) {
							t.Errorf("seed %d: op %d footprint %v contains stuck-closed %v",
								seed, id, fp, f.At)
						}
					}
				}
				for _, tr := range res.Transports {
					if tr.InPlace {
						continue
					}
					for _, p := range tr.Path {
						if fs.Blocked(p) {
							t.Errorf("seed %d: path %s->%s crosses stuck-closed %v",
								seed, tr.From, tr.To, p)
						}
					}
				}

				// The catalogue must agree (and audit everything else too).
				if rep := Conformance(res); !rep.Clean() {
					t.Errorf("seed %d: %s", seed, rep)
				}
			}
		})
	}
}

// TestZeroFaultsBitIdentical: threading an empty fault set through the
// pipeline must not move a single decision — the fingerprint oracle of the
// fault-awareness plumbing, checked on all four benchmarks.
func TestZeroFaultsBitIdentical(t *testing.T) {
	for _, name := range assays.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			c, err := assays.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			clean := synthWithFaults(t, name, nil)
			empty := synthWithFaults(t, name, fault.NewSet(c.GridSize))
			if Fingerprint(clean) != Fingerprint(empty) {
				t.Errorf("empty fault set perturbs the result:\n%v",
					Diff("no-faults", clean, "empty-set", empty))
			}
			if clean.Degraded() {
				t.Error("fault-free run carries a degradation report")
			}
		})
	}
}

// TestDegradedPartialConforms: a best-effort partial result (grid too small
// for the assay) must still pass the full conformance audit — its losses
// are declared, not silent.
func TestDegradedPartialConforms(t *testing.T) {
	c := assays.InterpolatingDilution()
	res, err := core.Synthesize(c.Assay, core.Options{
		Policy: schedule.Resources{Mixers: c.BaseMixers},
		Place:  place.Config{Grid: 8, Mode: place.Greedy},
	})
	if err != nil {
		t.Fatalf("degradation ladder did not rescue the 8x8 run: %v", err)
	}
	if !res.Degraded() || res.Degradation.Level != core.DegradePartial {
		t.Fatalf("expected a partial result, got %s", res.Degradation)
	}
	if rep := Conformance(res); !rep.Clean() {
		t.Errorf("declared-degraded result fails conformance: %s", rep)
	}
}
