package verify

import (
	"fmt"

	"mfsynth/internal/arch"
	"mfsynth/internal/core"
	"mfsynth/internal/graph"
	"mfsynth/internal/grid"
)

// checkRouting audits every transport: in-place legality, path
// well-formedness (length, bounds, continuity), terminal endpoints, the
// executing-device obstacle rule, and the storage free-space rule for every
// cell a path borrows from an active in situ storage.
func checkRouting(r *Report, res *core.Result) {
	bounds := grid.RectWH(0, 0, res.Grid, res.Grid)
	inPorts, outPorts := portCells(res.Grid)

	for _, tr := range res.Transports {
		where := fmt.Sprintf("t=%d %s->%s", tr.T, tr.From, tr.To)
		if tr.InPlace {
			r.check()
			if len(tr.Path) == 0 {
				r.add("empty-inplace", where+" shares no cells")
				continue
			}
			// Every shared cell must genuinely belong to both rings.
			src, dst := ringOf(res, tr.FromID), ringOf(res, tr.ToID)
			r.check()
			for _, c := range tr.Path {
				if !src[c] || !dst[c] {
					r.add("empty-inplace", fmt.Sprintf("%s claims shared cell %v outside both rings", where, c))
					break
				}
			}
			continue
		}

		r.check()
		if len(tr.Path) < 2 {
			r.add("trivial-path", fmt.Sprintf("%s has %d cells", where, len(tr.Path)))
			continue
		}
		for k, c := range tr.Path {
			r.check()
			if !bounds.Contains(c) {
				r.add("path-off-chip", fmt.Sprintf("%s cell %v", where, c))
			}
			r.check()
			if k > 0 && c.Manhattan(tr.Path[k-1]) != 1 {
				r.add("path-discontinuous", fmt.Sprintf("%s between %v and %v", where, tr.Path[k-1], c))
			}
		}
		checkEndpoints(r, res, tr, inPorts, outPorts, where)
		checkObstacles(r, res, tr, where)
		checkStorageCrossing(r, res, tr, where)
	}
}

// checkEndpoints verifies the path starts on the source terminal set and
// ends on the target terminal set.
func checkEndpoints(r *Report, res *core.Result, tr core.Transport, inPorts, outPorts map[grid.Point]bool, where string) {
	src := terminalSet(res, tr.FromID, inPorts, outPorts)
	dst := terminalSet(res, tr.ToID, inPorts, outPorts)
	r.check()
	if src != nil && !src[tr.Path[0]] {
		r.add("path-endpoints", fmt.Sprintf("%s starts at %v outside the source terminals", where, tr.Path[0]))
	}
	r.check()
	if dst != nil && !dst[tr.Path[len(tr.Path)-1]] {
		r.add("path-endpoints", fmt.Sprintf("%s ends at %v outside the target terminals", where, tr.Path[len(tr.Path)-1]))
	}
}

// terminalSet returns the legal terminal cells of one transport endpoint:
// the device ring for a placed operation, the input ports for a port load,
// the output ports for a drain. nil means the endpoint cannot be resolved
// (reported elsewhere as unplaced-op).
func terminalSet(res *core.Result, id int, inPorts, outPorts map[grid.Point]bool) map[grid.Point]bool {
	if id < 0 {
		return outPorts // waste/collection drain
	}
	switch res.Assay.Op(id).Kind {
	case graph.Input:
		return inPorts
	case graph.Output:
		return outPorts
	}
	if ring := ringOf(res, id); ring != nil {
		return ring
	}
	return nil
}

// checkObstacles verifies the path interior against devices that are
// executing at transport time (storing devices are handled by the storage
// free-space rule, unless pass-through is disabled).
func checkObstacles(r *Report, res *core.Result, tr core.Transport, where string) {
	for id, pl := range res.Mapping.Placements {
		if id == tr.FromID || id == tr.ToID {
			continue
		}
		if tr.T < res.Schedule.Start[id] || tr.T >= res.Schedule.Finish[id] {
			continue
		}
		fp := pl.Footprint()
		r.check()
		for _, c := range tr.Path[1 : len(tr.Path)-1] {
			if fp.Contains(c) {
				r.add("path-through-device", fmt.Sprintf("%s crosses executing %s at %v",
					where, res.Assay.Op(id).Name, c))
				break
			}
		}
	}
}

// checkStorageCrossing verifies every cell the path borrows from an active
// in situ storage against the storage's free space over the transport
// window [t, t+delay) — Algorithm 1 L14's feasibility test, re-derived.
func checkStorageCrossing(r *Report, res *core.Result, tr core.Transport, where string) {
	delay := res.Schedule.TransportDelay
	noPass := res.Options().DisableStoragePassthrough
	for id, pl := range res.Mapping.Placements {
		if id == tr.FromID || id == tr.ToID {
			continue
		}
		tl := derivedTimeline(res, id)
		if tl == nil || !tl.Active(tr.T) {
			continue
		}
		fp := pl.Footprint()
		cells := 0
		for _, c := range tr.Path {
			if fp.Contains(c) {
				cells++
			}
		}
		if cells == 0 {
			continue
		}
		r.check()
		if noPass {
			r.add("storage-crossing", fmt.Sprintf("%s crosses storage of %s with pass-through disabled",
				where, res.Assay.Op(id).Name))
			continue
		}
		if !tl.CanOverlap(cells, tr.T, tr.T+delay) {
			r.add("storage-crossing", fmt.Sprintf("%s borrows %d cells from %s's storage beyond its free space",
				where, cells, res.Assay.Op(id).Name))
		}
	}
}

// ringOf returns the ring-cell set of id's device, nil when unplaced.
func ringOf(res *core.Result, id int) map[grid.Point]bool {
	if id < 0 {
		return nil
	}
	pl, ok := res.Mapping.Placements[id]
	if !ok {
		return nil
	}
	set := map[grid.Point]bool{}
	for _, c := range pl.Ring() {
		set[c] = true
	}
	return set
}

// portCells returns the input and output port cell sets of the standard
// chip of the given side length.
func portCells(gridSize int) (in, out map[grid.Point]bool) {
	chip := arch.NewChip(gridSize, gridSize)
	in, out = map[grid.Point]bool{}, map[grid.Point]bool{}
	for _, p := range chip.Ports {
		switch p.Kind {
		case arch.InPort:
			in[p.At] = true
		case arch.OutPort:
			out[p.At] = true
		}
	}
	return in, out
}
