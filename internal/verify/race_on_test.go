//go:build race

package verify

// raceEnabled reports whether this test binary was built with the race
// detector; wall-clock-heavy single-configuration property tests skip
// themselves under it (they assert determinism, not synchronisation, and
// the ~10x race slowdown pushes the package past the test timeout).
const raceEnabled = true
