package verify

import (
	"testing"

	"mfsynth/internal/assays"
	"mfsynth/internal/core"
	"mfsynth/internal/fault"
	"mfsynth/internal/place"
)

// FuzzPipeline drives randomly generated assays through the complete
// schedule→place→route→simulate pipeline — optionally on a chip with a
// seeded valve defect set — and audits every result against the full
// invariant catalogue. Any violation is a real pipeline bug; the failure
// message embeds the assay in the assays text format so it can be saved
// and replayed with `mfsynth -assay <file> -verify`.
func FuzzPipeline(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(0), uint8(12), int64(0), uint8(0))
	f.Add(int64(2), uint8(6), uint8(1), uint8(14), int64(0), uint8(0))
	f.Add(int64(7), uint8(8), uint8(2), uint8(16), int64(0), uint8(0))
	f.Add(int64(42), uint8(3), uint8(1), uint8(13), int64(0), uint8(0))
	f.Add(int64(5), uint8(5), uint8(1), uint8(14), int64(11), uint8(5))
	f.Fuzz(func(t *testing.T, seed int64, mixOps, detects, gridSize uint8, faultSeed int64, faultRate uint8) {
		// Clamp to the density regime the router handles without capacity
		// failures: a failed route on an oversubscribed chip is an honest
		// pipeline outcome, not the silent corruption this fuzzer hunts.
		mo := 1 + int(mixOps)%8
		det := int(detects) % 3
		g := 12 + int(gridSize)%5
		rate := float64(int(faultRate)%8) / 100

		var fs *fault.Set
		if rate > 0 {
			fs = fault.Generate(faultSeed, fault.GenOptions{
				Grid: g, Rate: rate, KeepPorts: true,
			})
		}

		a := assays.Random(seed, assays.RandomOptions{MixOps: mo, Detects: det})
		res, err := core.Synthesize(a, core.Options{
			Place:  place.Config{Grid: g, Mode: place.Greedy},
			Faults: fs,
		})
		if err != nil {
			if !fs.Empty() {
				// A defect set can make a random assay honestly
				// infeasible; only a healthy chip must always succeed.
				t.Skipf("synthesis under %d faults: %v", fs.Len(), err)
			}
			t.Fatalf("synthesis failed: %v\nassay:\n%s", err, DumpAssay(a))
		}
		if fs.Empty() && res.FailedRoutes > 0 {
			t.Skipf("chip capacity exceeded (%d failed routes)", res.FailedRoutes)
		}
		if rep := Conformance(res); !rep.Clean() {
			t.Fatalf("conformance: %s\nassay:\n%s", rep, DumpAssay(a))
		}
	})
}
