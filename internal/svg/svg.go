// Package svg renders synthesis results as standalone SVG drawings: the
// flow layer (virtual valve matrix, per-valve actuation heat, device
// footprints with their operation labels, transport paths, chip ports) and
// optionally the routed control layer. Output is plain SVG 1.1 built with
// the standard library only.
package svg

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"mfsynth/internal/arch"
	"mfsynth/internal/control"
	"mfsynth/internal/core"
	"mfsynth/internal/graph"
)

// cell is the drawing pitch of one valve in SVG user units.
const cell = 28

// Options selects what to draw.
type Options struct {
	// At renders the chip state after time At; negative renders the full
	// assay (cumulative counts, all devices outlined).
	At int
	// ControlLayer additionally draws the routed control channels.
	ControlLayer *control.Layout
	// Title is the drawing caption (defaults to the assay name).
	Title string
}

// Write renders res as an SVG document.
func Write(w io.Writer, res *core.Result, opts Options) error {
	var b strings.Builder
	grid := res.Grid
	margin := cell
	width := grid*cell + 2*margin
	height := grid*cell + 2*margin + 24

	title := opts.Title
	if title == "" {
		title = res.Assay.Name
	}

	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="#ffffff"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="18" font-family="sans-serif" font-size="14">%s</text>`+"\n",
		margin, escape(title))

	// Valve heat map.
	chip := res.ChipAt(opts.At, 1)
	maxTotal := chip.MaxTotal()
	for y := 0; y < grid; y++ {
		for x := 0; x < grid; x++ {
			total := chip.TotalAt(x, y)
			fill := "#f4f4f4" // functionless wall / unused virtual valve
			if total > 0 {
				fill = heat(total, maxTotal)
			}
			px, py := toPx(grid, x, y, margin)
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#dddddd"/>`+"\n",
				px, py, cell-2, cell-2, fill)
		}
	}

	// Transport paths.
	for _, tr := range res.Transports {
		if tr.InPlace {
			continue
		}
		if opts.At >= 0 && tr.T > opts.At {
			continue
		}
		var pts []string
		for _, c := range tr.Path {
			px, py := toPx(grid, c.X, c.Y, margin)
			pts = append(pts, fmt.Sprintf("%d,%d", px+cell/2-1, py+cell/2-1))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="#3b6fd4" stroke-width="2" stroke-opacity="0.45"/>`+"\n",
			strings.Join(pts, " "))
	}

	// Device footprints.
	ids := make([]int, 0, len(res.Mapping.Placements))
	for id := range res.Mapping.Placements {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		wdw := res.Mapping.Windows[id]
		if opts.At >= 0 && (opts.At < wdw[0] || opts.At >= wdw[1]) {
			continue
		}
		pl := res.Mapping.Placements[id]
		fp := pl.Footprint()
		px, py := toPx(grid, fp.X0, fp.Y1-1, margin)
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="#111111" stroke-width="2"/>`+"\n",
			px, py, fp.W()*cell-2, fp.H()*cell-2)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			px+3, py+13, escape(res.Assay.Op(id).Name))
	}

	// Chip ports.
	for _, p := range arch.NewChip(grid, grid).Ports {
		px, py := toPx(grid, p.At.X, p.At.Y, margin)
		color := "#2e9940"
		if p.Kind == arch.OutPort {
			color = "#c03a2b"
		}
		fmt.Fprintf(&b, `<circle cx="%d" cy="%d" r="6" fill="%s"/>`+"\n",
			px+cell/2-1, py+cell/2-1, color)
	}

	// Control layer.
	if lay := opts.ControlLayer; lay != nil {
		scale := float64(cell) / 4.0 // control lattice is 4× finer
		for _, ch := range lay.Channels {
			for _, c := range ch {
				cx := float64(margin) + float64(c.X)*scale
				cy := float64(margin) + float64((res.Grid-1)*4-c.Y)*scale
				fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#d07a1f" fill-opacity="0.35"/>`+"\n",
					cx, cy, scale, scale)
			}
		}
	}

	// Legend.
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11" fill="#555555">%s</text>`+"\n",
		margin, height-6,
		fmt.Sprintf("%s | max actuations %d | valves %d/%d", escape(res.Assay.Name),
			maxTotal, chip.UsedValves(), grid*grid))

	fmt.Fprintln(&b, `</svg>`)
	_, err := io.WriteString(w, b.String())
	return err
}

// toPx maps a valve coordinate to the top-left pixel of its cell (SVG y
// grows downward; valve y grows upward).
func toPx(grid, x, y, margin int) (int, int) {
	return margin + x*cell, margin + (grid-1-y)*cell
}

// heat maps an actuation count to a white→red fill.
func heat(v, max int) string {
	if max <= 0 {
		max = 1
	}
	f := float64(v) / float64(max)
	if f > 1 {
		f = 1
	}
	r := 255
	g := int(235 - 180*f)
	bl := int(205 - 180*f)
	return fmt.Sprintf("#%02x%02x%02x", r, g, bl)
}

func escape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}

// WriteAssayLegend renders a small table of the assay's operations under
// the drawing — convenience for reports.
func WriteAssayLegend(w io.Writer, a *graph.Assay) error {
	var b strings.Builder
	for _, op := range a.Ops() {
		if op.Kind == graph.Input {
			continue
		}
		fmt.Fprintf(&b, "%s (%s, vol %d)\n", op.Name, op.Kind, a.Volume(op.ID))
	}
	_, err := io.WriteString(w, b.String())
	return err
}
