package svg

import (
	"strings"
	"testing"

	"mfsynth/internal/assays"
	"mfsynth/internal/control"
	"mfsynth/internal/core"
	"mfsynth/internal/place"
	"mfsynth/internal/schedule"
)

func pcrResult(t *testing.T) *core.Result {
	t.Helper()
	c := assays.PCR()
	res, err := core.Synthesize(c.Assay, core.Options{
		Policy: schedule.Resources{Mixers: c.BaseMixers},
		Place:  place.Config{Grid: c.GridSize, Mode: place.Greedy},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWriteFullAssay(t *testing.T) {
	res := pcrResult(t)
	var sb strings.Builder
	if err := Write(&sb, res, Options{At: -1}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"<svg", "</svg>", "PCR",
		"<polyline", // transports
		"o7",        // device label
		"<circle",   // ports
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// One heat cell per virtual valve.
	if got := strings.Count(out, "<rect"); got < res.Grid*res.Grid {
		t.Errorf("only %d rects for a %d-valve matrix", got, res.Grid*res.Grid)
	}
}

func TestWriteSnapshotInTime(t *testing.T) {
	res := pcrResult(t)
	var early, late strings.Builder
	if err := Write(&early, res, Options{At: 1}); err != nil {
		t.Fatal(err)
	}
	if err := Write(&late, res, Options{At: res.Schedule.Makespan}); err != nil {
		t.Fatal(err)
	}
	// Early snapshot shows fewer transports than the full drawing.
	if strings.Count(early.String(), "<polyline") >= strings.Count(late.String(), "<polyline") {
		t.Error("early snapshot has no fewer transport paths than the final state")
	}
	// Early snapshot labels only alive devices.
	if strings.Contains(early.String(), ">o7<") {
		t.Error("o7 drawn long before it exists")
	}
}

func TestWriteControlLayer(t *testing.T) {
	res := pcrResult(t)
	a := control.Analyze(res)
	lay := control.RouteControl(res, a)
	var sb strings.Builder
	if err := Write(&sb, res, Options{At: -1, ControlLayer: &lay}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "#d07a1f") {
		t.Error("control channels not drawn")
	}
}

func TestHeatBounds(t *testing.T) {
	if h := heat(0, 0); !strings.HasPrefix(h, "#") || len(h) != 7 {
		t.Errorf("heat(0,0) = %q", h)
	}
	if heat(10, 10) == heat(1, 10) {
		t.Error("heat scale is flat")
	}
	if h := heat(20, 10); h != heat(10, 10) {
		t.Errorf("heat clamps at max: %q vs %q", h, heat(10, 10))
	}
}

func TestEscape(t *testing.T) {
	if got := escape("a<b>&c"); got != "a&lt;b&gt;&amp;c" {
		t.Errorf("escape = %q", got)
	}
}

func TestAssayLegend(t *testing.T) {
	res := pcrResult(t)
	var sb strings.Builder
	if err := WriteAssayLegend(&sb, res.Assay); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "o7 (mix, vol 4)") {
		t.Errorf("legend:\n%s", sb.String())
	}
	if strings.Contains(sb.String(), "input") {
		t.Error("legend should skip inputs")
	}
}
