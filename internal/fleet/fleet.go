// Package fleet closes the reliability loop the paper motivates: instead of
// treating wear as a one-shot synthesis input, it simulates a fleet of chips
// executing a stream of assay requests over their whole service life, with
// per-valve cumulative actuation counters persisted per chip, and runs an
// autoscaler-style control loop around the synthesis engine:
//
//   - the collector accumulates each run's actuation profile into the chip's
//     lifetime counters and publishes fleet health through obs (remaining-life
//     gauges, promotion/re-synthesis counters);
//   - the analyzer flags chips whose first-valve remaining life falls below a
//     configurable horizon and promotes crossed-threshold valves to permanent
//     obstacles (fault.Set.Promote);
//   - the optimizer re-invokes core.SynthesizeCtx with the promoted fault set
//     and a wear-aware placement bias (core.Options.WearBias seeded from the
//     telemetry counters) that steers new duty onto lightly-worn valves;
//   - the actuator swaps the chip's active mapping between runs.
//
// Everything is deterministic in the campaign seed: per-valve lives, the
// request stream and every synthesis result are pure functions of the
// configuration, so a campaign's JSON artefact reproduces bit-identically
// (the benchgate -fleet contract).
package fleet

import (
	"fmt"

	"mfsynth/internal/core"
	"mfsynth/internal/fault"
	"mfsynth/internal/graph"
	"mfsynth/internal/grid"
	"mfsynth/internal/obs"
	"mfsynth/internal/wear"
)

// Workload is one assay the request stream can dispatch to a chip.
type Workload struct {
	// Name labels the workload in reports.
	Name string
	// Assay is the bioassay to synthesize and execute.
	Assay *graph.Assay
	// Options is the synthesis configuration. Place.Grid must match (or be
	// left zero to inherit) the fleet's Grid; Faults, WearBias and
	// WearCounts must be unset — the control loop owns them.
	Options core.Options
}

// Config parameterises a fleet campaign.
type Config struct {
	// Chips is the fleet size (default 3).
	Chips int
	// Grid is the valve matrix side length of every chip (default: the
	// first workload's Place.Grid, else 10).
	Grid int
	// Seed determines the per-valve lives and the request stream; the
	// whole campaign is a pure function of it (default 1).
	Seed int64
	// Rounds bounds the campaign: each round dispatches one assay request
	// to every chip still alive (default 64).
	Rounds int
	// Rated is the nominal per-valve life in actuations (default
	// wear.DefaultRatedActuations).
	Rated int
	// LifeSpread is the ± fractional spread of individual valve lives
	// around Rated, drawn deterministically from Seed (default 0: every
	// valve lives exactly Rated actuations).
	LifeSpread float64
	// Horizon is the analyzer's look-ahead in runs: a chip whose
	// first-valve remaining life would be exceeded within Horizon further
	// runs of its active mapping is flagged for re-synthesis (default 2).
	Horizon int
	// WearBias is the optimizer's placement bias weight
	// (core.Options.WearBias; default 1).
	WearBias float64
	// Workloads is the assay mix of the request stream (required). With
	// more than one entry, each request picks a workload seeded-randomly.
	Workloads []Workload
	// Trace, when non-nil, receives the collector's fleet metrics and the
	// synthesis spans. Observation never changes campaign results.
	Trace *obs.Trace
}

func (c Config) withDefaults() (Config, error) {
	if len(c.Workloads) == 0 {
		return c, fmt.Errorf("fleet: config needs at least one workload")
	}
	if c.Chips == 0 {
		c.Chips = 3
	}
	if c.Chips < 1 {
		return c, fmt.Errorf("fleet: %d chips", c.Chips)
	}
	if c.Grid == 0 {
		c.Grid = c.Workloads[0].Options.Place.Grid
	}
	if c.Grid == 0 {
		c.Grid = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Rounds == 0 {
		c.Rounds = 64
	}
	if c.Rated == 0 {
		c.Rated = wear.DefaultRatedActuations
	}
	if c.LifeSpread < 0 || c.LifeSpread >= 1 {
		return c, fmt.Errorf("fleet: LifeSpread %g outside [0, 1)", c.LifeSpread)
	}
	if c.Horizon == 0 {
		c.Horizon = 2
	}
	if c.WearBias == 0 {
		c.WearBias = 1
	}
	ws := make([]Workload, len(c.Workloads))
	copy(ws, c.Workloads)
	for i := range ws {
		w := &ws[i]
		if w.Assay == nil {
			return c, fmt.Errorf("fleet: workload %d has no assay", i)
		}
		if w.Name == "" {
			w.Name = w.Assay.Name
		}
		if w.Options.Place.Grid == 0 {
			w.Options.Place.Grid = c.Grid
		}
		if w.Options.Place.Grid != c.Grid {
			return c, fmt.Errorf("fleet: workload %q grid %d != fleet grid %d",
				w.Name, w.Options.Place.Grid, c.Grid)
		}
		if w.Options.Faults != nil || w.Options.WearBias != 0 || w.Options.WearCounts != nil {
			return c, fmt.Errorf("fleet: workload %q pre-sets faults or wear options; the control loop owns them", w.Name)
		}
	}
	c.Workloads = ws
	return c, nil
}

// ChipState is one chip's persisted telemetry: the cumulative per-valve
// actuation counters and the control loop's bookkeeping. The exported
// fields round-trip through Save/Load; the unexported ones are runtime
// state the loop rebuilds.
type ChipState struct {
	// ID is the chip's index in the fleet.
	ID int
	// Grid is the valve matrix side length.
	Grid int
	// Counts is the cumulative per-valve actuation counters, row-major
	// (index y·Grid+x), accumulated over every run of the chip's life.
	Counts []int
	// Runs is the number of assay executions completed.
	Runs int
	// Resyntheses counts mapping re-syntheses after the first per
	// workload (the optimizer reacting to wear).
	Resyntheses int
	// Promotions counts valves promoted to permanent obstacles.
	Promotions int
	// Dead marks a chip that failed a run (valve overran its life) or
	// could no longer obtain a complete mapping.
	Dead bool
	// DeathRound is the 1-based campaign round the chip died in (0 while
	// alive).
	DeathRound int

	lives       []int                // per-valve actuation budget, drawn from the seed
	promoted    *fault.Set           // valves retired by the analyzer
	active      map[int]*core.Result // workload index → active mapping (actuator state)
	hadMapping  map[int]bool         // workload index → a mapping was accepted before
	lastProfile []int                // most recent run's per-valve profile
	lastErr     error                // why the optimizer retired the chip, if it did
}

// newChip builds a fresh chip with seeded per-valve lives.
func newChip(id int, cfg Config) *ChipState {
	n := cfg.Grid * cfg.Grid
	c := &ChipState{
		ID:         id,
		Grid:       cfg.Grid,
		Counts:     make([]int, n),
		lives:      make([]int, n),
		promoted:   fault.NewSet(cfg.Grid),
		active:     map[int]*core.Result{},
		hadMapping: map[int]bool{},
	}
	for v := range c.lives {
		c.lives[v] = valveLife(cfg, id, v)
	}
	return c
}

// valveLife draws valve v's actuation budget: Rated exactly when
// LifeSpread is zero, else uniform in Rated·[1−spread, 1+spread), a pure
// function of (seed, chip, valve).
func valveLife(cfg Config, chip, v int) int {
	if cfg.LifeSpread == 0 {
		return cfg.Rated
	}
	h := mix64(mix64(uint64(cfg.Seed)) ^ (uint64(chip)<<32 | uint64(v)+1))
	u := float64(h>>11) / (1 << 53) // uniform [0, 1)
	life := int(float64(cfg.Rated)*(1-cfg.LifeSpread) + float64(cfg.Rated)*2*cfg.LifeSpread*u + 0.5)
	if life < 1 {
		life = 1
	}
	return life
}

// cell maps a row-major counter index to its valve coordinate.
func (c *ChipState) cell(i int) grid.Point {
	return grid.Point{X: i % c.Grid, Y: i / c.Grid}
}

// promote retires valve i permanently; repeated promotion is a no-op.
func (c *ChipState) promote(i int) bool {
	pt := c.cell(i)
	if _, dead := c.promoted.At(pt); dead {
		return false
	}
	c.promoted.Promote(pt)
	c.Promotions++
	return true
}

// remainingRuns estimates how many more runs of the last profile the chip
// survives (MaxInt32 before its first run).
func (c *ChipState) remainingRuns() int {
	return wear.RemainingRuns(c.Counts, c.lastProfile, c.lives)
}

// mix64 is a splitmix64 finaliser, the repo's standard seeded-stream
// derivation (see internal/anneal): adjacent inputs decorrelate fully.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
