package fleet

import (
	"bytes"
	"sort"
	"testing"
)

// FuzzTelemetry checks the persistence layer's round-trip property: any
// input Load accepts must Save to a form Load parses back to identical
// counters — telemetry written by one controller generation is never
// corrupted by the next.
func FuzzTelemetry(f *testing.F) {
	f.Add([]byte("fleet-telemetry v1\nchip 0 grid 2 runs 3 resyntheses 1 promotions 2 dead 0 deathround 0\ncounts 0 40 360 2\n"))
	f.Add([]byte("fleet-telemetry v1\n# comment\nchip 1 grid 1 runs 0 resyntheses 0 promotions 0 dead 1 deathround 4\ncounts 9\n"))
	f.Add([]byte("fleet-telemetry v1\n"))
	f.Add([]byte("chip 0\ncounts"))
	f.Fuzz(func(t *testing.T, data []byte) {
		chips, err := Load(bytes.NewReader(data))
		if err != nil {
			return // malformed input is fine; it just must not panic
		}
		// Save canonicalises chip order by ID, so compare against the
		// sorted view of the loaded set.
		sort.Slice(chips, func(i, j int) bool { return chips[i].ID < chips[j].ID })
		var buf bytes.Buffer
		if err := Save(&buf, chips); err != nil {
			t.Fatalf("Save of loaded telemetry failed: %v", err)
		}
		again, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("Load of saved telemetry failed: %v\n%s", err, buf.Bytes())
		}
		if len(again) != len(chips) {
			t.Fatalf("round trip changed chip count: %d vs %d", len(again), len(chips))
		}
		for i, c := range chips {
			l := again[i]
			if l.ID != c.ID || l.Grid != c.Grid || l.Runs != c.Runs ||
				l.Resyntheses != c.Resyntheses || l.Promotions != c.Promotions ||
				l.Dead != c.Dead || l.DeathRound != c.DeathRound {
				t.Fatalf("chip %d header drifted: %+v vs %+v", i, l, c)
			}
			for v := range c.Counts {
				if l.Counts[v] != c.Counts[v] {
					t.Fatalf("chip %d valve %d: %d vs %d", i, v, l.Counts[v], c.Counts[v])
				}
			}
		}
	})
}
