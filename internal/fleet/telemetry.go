package fleet

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Telemetry text format, line-oriented like the fault-spec format:
//
//	fleet-telemetry v1
//	chip 0 grid 12 runs 9 resyntheses 2 promotions 3 dead 0 deathround 0
//	counts 0 0 40 360 ...   (grid² integers, row-major)
//
// One chip/counts pair per chip, chips sorted by ID. '#' starts a comment;
// blank lines are ignored. The format is the persistence layer for the
// per-chip cumulative actuation counters: a fleet controller saves after
// every campaign and reloads on restart, so counters survive process
// lifetimes the way real chips survive reboots of their controller.

const telemetryHeader = "fleet-telemetry v1"

// Save writes the chips' persisted telemetry. Chips are emitted sorted by
// ID so the output is deterministic regardless of caller order.
func Save(w io.Writer, chips []*ChipState) error {
	sorted := make([]*ChipState, len(chips))
	copy(sorted, chips)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, telemetryHeader)
	for _, c := range sorted {
		if len(c.Counts) != c.Grid*c.Grid {
			return fmt.Errorf("fleet: chip %d has %d counters, want %d for grid %d",
				c.ID, len(c.Counts), c.Grid*c.Grid, c.Grid)
		}
		dead := 0
		if c.Dead {
			dead = 1
		}
		fmt.Fprintf(bw, "chip %d grid %d runs %d resyntheses %d promotions %d dead %d deathround %d\n",
			c.ID, c.Grid, c.Runs, c.Resyntheses, c.Promotions, dead, c.DeathRound)
		bw.WriteString("counts")
		for _, n := range c.Counts {
			fmt.Fprintf(bw, " %d", n)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// Load parses telemetry written by Save. Every loaded chip carries the
// persisted counters and counters only — runtime state (valve lives, the
// active mappings) is rebuilt by the campaign from its seed.
func Load(r io.Reader) ([]*ChipState, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineno := 0
	bad := func(format string, args ...any) error {
		return fmt.Errorf("fleet telemetry line %d: %s", lineno, fmt.Sprintf(format, args...))
	}
	sawHeader := false
	var chips []*ChipState
	seen := map[int]int{} // chip ID → declaring line
	var cur *ChipState    // chip awaiting its counts line
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		if !sawHeader {
			if line != telemetryHeader {
				return nil, bad("want header %q, got %q", telemetryHeader, line)
			}
			sawHeader = true
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "chip":
			if cur != nil {
				return nil, bad("chip %d is missing its counts line", cur.ID)
			}
			// "chip ID grid G runs R resyntheses S promotions P dead D deathround DR"
			if len(fields) != 14 {
				return nil, bad("chip record has %d fields, want 14", len(fields))
			}
			keys := []string{"chip", "grid", "runs", "resyntheses", "promotions", "dead", "deathround"}
			vals := make([]int, len(keys))
			for i, key := range keys {
				if fields[2*i] != key {
					return nil, bad("field %d is %q, want %q", 2*i+1, fields[2*i], key)
				}
				v, err := strconv.Atoi(fields[2*i+1])
				if err != nil || v < 0 {
					return nil, bad("bad %s value %q", key, fields[2*i+1])
				}
				vals[i] = v
			}
			id, g, dead := vals[0], vals[1], vals[5]
			if prev, dup := seen[id]; dup {
				return nil, bad("duplicate chip %d: already declared on line %d", id, prev)
			}
			if g < 1 || g > 1024 {
				return nil, bad("grid %d out of range", g)
			}
			if dead > 1 {
				return nil, bad("dead flag %d, want 0 or 1", dead)
			}
			seen[id] = lineno
			cur = &ChipState{
				ID:          id,
				Grid:        g,
				Runs:        vals[2],
				Resyntheses: vals[3],
				Promotions:  vals[4],
				Dead:        dead == 1,
				DeathRound:  vals[6],
			}
		case "counts":
			if cur == nil {
				return nil, bad("counts line without a preceding chip record")
			}
			want := cur.Grid * cur.Grid
			if len(fields)-1 != want {
				return nil, bad("chip %d has %d counters, want %d for grid %d",
					cur.ID, len(fields)-1, want, cur.Grid)
			}
			cur.Counts = make([]int, want)
			for i, f := range fields[1:] {
				v, err := strconv.Atoi(f)
				if err != nil || v < 0 {
					return nil, bad("bad counter %q at index %d", f, i)
				}
				cur.Counts[i] = v
			}
			chips = append(chips, cur)
			cur = nil
		default:
			return nil, bad("unknown record %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fleet telemetry line %d: %w", lineno+1, err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("fleet telemetry: empty input (missing %q header)", telemetryHeader)
	}
	if cur != nil {
		return nil, fmt.Errorf("fleet telemetry: chip %d is missing its counts line", cur.ID)
	}
	return chips, nil
}
