package fleet

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"mfsynth/internal/assays"
	"mfsynth/internal/core"
	"mfsynth/internal/fault"
	"mfsynth/internal/grid"
	"mfsynth/internal/obs"
	"mfsynth/internal/place"
	"mfsynth/internal/wear"
)

// testConfig builds a small PCR campaign whose rated life is a few runs of
// the static mapping's hottest valve, so static wears out mid-campaign.
func testConfig(t *testing.T) Config {
	t.Helper()
	pcr := assays.PCR()
	opts := core.Options{Place: place.Config{Grid: pcr.GridSize, Mode: place.Greedy}}
	res, err := core.SynthesizeCtx(context.Background(), pcr.Assay, opts)
	if err != nil {
		t.Fatalf("baseline synthesis: %v", err)
	}
	max := 0
	for _, c := range wear.GridCounts(res.ChipAt(-1, 1)) {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		t.Fatal("baseline profile actuates nothing")
	}
	return Config{
		Chips:  2,
		Grid:   pcr.GridSize,
		Seed:   7,
		Rounds: 24,
		// Static survives 3 full runs of the hottest valve and dies
		// during the 4th.
		Rated:    3*max + max/2,
		Horizon:  2,
		WearBias: 1,
		Workloads: []Workload{{
			Name:    "pcr",
			Assay:   pcr.Assay,
			Options: core.Options{Place: place.Config{Mode: place.Greedy}},
		}},
	}
}

func TestClosedLoopOutlivesStatic(t *testing.T) {
	cfg := testConfig(t)
	trace := obs.New()
	cfg.Trace = trace
	res, chips, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Static.FirstDeathRound == 0 {
		t.Fatalf("static mode never died in %d rounds; the campaign is not stressing wear", cfg.Rounds)
	}
	if res.Closed.AssaysBeforeFirstDeath <= res.Static.AssaysBeforeFirstDeath {
		t.Errorf("closed loop did not outlive static: closed %d assays before first death, static %d",
			res.Closed.AssaysBeforeFirstDeath, res.Static.AssaysBeforeFirstDeath)
	}
	if res.LifetimeExtensionPct <= 0 {
		t.Errorf("LifetimeExtensionPct = %g, want > 0", res.LifetimeExtensionPct)
	}
	if res.Closed.Resyntheses == 0 {
		t.Error("closed loop performed no re-syntheses; the control loop never reacted")
	}
	if res.Closed.Promotions == 0 {
		t.Error("closed loop promoted no valves")
	}
	if res.Static.Resyntheses != 0 || res.Static.Promotions != 0 {
		t.Errorf("static mode reacted to wear: %d resyntheses, %d promotions",
			res.Static.Resyntheses, res.Static.Promotions)
	}
	if len(chips) != 2 || len(chips[0]) != cfg.Chips || len(chips[1]) != cfg.Chips {
		t.Fatalf("want 2 modes x %d chips of telemetry", cfg.Chips)
	}

	// The collector must have published fleet metrics through obs.
	snap := trace.Metrics().Snapshot()
	if snap == nil {
		t.Fatal("no metrics published")
	}
	if snap.Counters["fleet_closed_runs_total"] == 0 {
		t.Error("fleet_closed_runs_total not published")
	}
	if snap.Counters["fleet_static_deaths_total"] == 0 {
		t.Error("fleet_static_deaths_total not published")
	}

	// Property: no placement footprint of any active mapping covers a
	// valve the analyzer promoted (the actuator only installs mappings
	// synthesized around the promoted fault set).
	for _, chip := range chips[1] {
		for _, f := range chip.promoted.Faults() {
			for widx, r := range chip.active {
				for op, pl := range r.Mapping.Placements {
					if pl.Footprint().Contains(f.At) {
						t.Errorf("chip %d workload %d: op %d footprint %v covers promoted valve %v",
							chip.ID, widx, op, pl.Footprint(), f.At)
					}
				}
			}
		}
	}
}

func TestCampaignDeterministic(t *testing.T) {
	cfg := testConfig(t)
	a, _, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, _, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a.Fingerprint == "" {
		t.Fatal("empty fingerprint")
	}
	if a.Fingerprint != b.Fingerprint {
		t.Errorf("same seed produced different campaigns: %s vs %s", a.Fingerprint, b.Fingerprint)
	}

	cfg.Seed = 8
	c, _, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("reseeded run: %v", err)
	}
	if c.Fingerprint == a.Fingerprint && cfg.LifeSpread > 0 {
		t.Error("different seed produced an identical campaign")
	}
}

// TestPromotedValveNeverPlaced is the Promote + re-synthesis property: a
// synthesis carrying promoted (stuck-closed) valves never places any part
// of a device footprint — ring, chamber or in situ storage, all subsets of
// the footprint — on a promoted cell, across many seeded fault patterns.
func TestPromotedValveNeverPlaced(t *testing.T) {
	pcr := assays.PCR()
	for trial := 0; trial < 10; trial++ {
		promoted := fault.NewSet(pcr.GridSize)
		var cells []grid.Point
		for k := 0; promoted.Len() < 5; k++ {
			h := mix64(uint64(trial)<<16 | uint64(k))
			pt := grid.Point{X: int(h % uint64(pcr.GridSize)), Y: int((h >> 32) % uint64(pcr.GridSize))}
			if _, dup := promoted.At(pt); dup {
				continue
			}
			promoted.Promote(pt)
			cells = append(cells, pt)
		}
		res, err := core.SynthesizeCtx(context.Background(), pcr.Assay, core.Options{
			Faults: promoted,
			Place:  place.Config{Grid: pcr.GridSize, Mode: place.Greedy},
		})
		if err != nil {
			t.Fatalf("trial %d: synthesis with %v: %v", trial, cells, err)
		}
		if len(res.Mapping.Dropped) > 0 || res.FailedRoutes > 0 {
			t.Fatalf("trial %d: degraded mapping around %v: %d dropped, %d failed routes",
				trial, cells, len(res.Mapping.Dropped), res.FailedRoutes)
		}
		for op, pl := range res.Mapping.Placements {
			for _, pt := range cells {
				if pl.Footprint().Contains(pt) {
					t.Errorf("trial %d: op %d footprint %v covers promoted valve %v",
						trial, op, pl.Footprint(), pt)
				}
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	pcr := assays.PCR()
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"no workloads", Config{}, "at least one workload"},
		{"nil assay", Config{Workloads: []Workload{{Name: "x"}}}, "has no assay"},
		{"grid mismatch", Config{Grid: 10, Workloads: []Workload{{
			Assay: pcr.Assay, Options: core.Options{Place: place.Config{Grid: 12}},
		}}}, "grid 12 != fleet grid 10"},
		{"pre-set faults", Config{Workloads: []Workload{{
			Assay: pcr.Assay, Options: core.Options{Faults: fault.NewSet(12)},
		}}}, "control loop owns them"},
		{"bad spread", Config{LifeSpread: 1.5, Workloads: []Workload{{Assay: pcr.Assay}}},
			"LifeSpread"},
	}
	for _, tc := range cases {
		_, _, err := Run(context.Background(), tc.cfg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestValveLifeSpread(t *testing.T) {
	cfg := Config{Seed: 3, Rated: 4000, LifeSpread: 0.1, Grid: 8, Chips: 1}
	lo, hi := 4000, 4000
	for v := 0; v < 64; v++ {
		l := valveLife(cfg, 0, v)
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
		if l != valveLife(cfg, 0, v) {
			t.Fatal("valveLife not deterministic")
		}
	}
	if lo < 3600 || hi > 4400 {
		t.Errorf("lives outside Rated·[0.9, 1.1]: min %d max %d", lo, hi)
	}
	if lo == hi {
		t.Error("LifeSpread produced uniform lives")
	}
	if valveLife(Config{Seed: 3, Rated: 4000, Grid: 8}, 0, 5) != 4000 {
		t.Error("zero spread should pin lives at Rated")
	}
}

func TestTelemetryRoundTrip(t *testing.T) {
	cfg := testConfig(t)
	cfg.Rounds = 6
	_, chips, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for mode, set := range chips {
		var buf bytes.Buffer
		if err := Save(&buf, set); err != nil {
			t.Fatalf("mode %d: Save: %v", mode, err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatalf("mode %d: Load: %v", mode, err)
		}
		if len(loaded) != len(set) {
			t.Fatalf("mode %d: %d chips loaded, want %d", mode, len(loaded), len(set))
		}
		for i, c := range set {
			l := loaded[i]
			if l.ID != c.ID || l.Grid != c.Grid || l.Runs != c.Runs ||
				l.Resyntheses != c.Resyntheses || l.Promotions != c.Promotions ||
				l.Dead != c.Dead || l.DeathRound != c.DeathRound {
				t.Errorf("mode %d chip %d: header fields drifted: %+v vs %+v", mode, i, l, c)
			}
			if len(l.Counts) != len(c.Counts) {
				t.Fatalf("mode %d chip %d: %d counters, want %d", mode, i, len(l.Counts), len(c.Counts))
			}
			for v := range c.Counts {
				if l.Counts[v] != c.Counts[v] {
					t.Fatalf("mode %d chip %d valve %d: counter %d, want %d",
						mode, i, v, l.Counts[v], c.Counts[v])
				}
			}
		}
	}
}

func TestTelemetryErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"empty", "", "missing"},
		{"bad header", "nope\n", "line 1"},
		{"dup chip", "fleet-telemetry v1\nchip 0 grid 1 runs 0 resyntheses 0 promotions 0 dead 0 deathround 0\ncounts 5\nchip 0 grid 1 runs 0 resyntheses 0 promotions 0 dead 0 deathround 0\ncounts 5\n",
			"duplicate chip 0: already declared on line 2"},
		{"short counts", "fleet-telemetry v1\nchip 0 grid 2 runs 0 resyntheses 0 promotions 0 dead 0 deathround 0\ncounts 1 2 3\n",
			"3 counters, want 4"},
		{"orphan counts", "fleet-telemetry v1\ncounts 1\n", "without a preceding chip"},
		{"missing counts", "fleet-telemetry v1\nchip 0 grid 1 runs 0 resyntheses 0 promotions 0 dead 0 deathround 0\n",
			"missing its counts line"},
		{"negative", "fleet-telemetry v1\nchip 0 grid 1 runs 0 resyntheses 0 promotions 0 dead 0 deathround 0\ncounts -1\n",
			"bad counter"},
	}
	for _, tc := range cases {
		_, err := Load(strings.NewReader(tc.in))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}
