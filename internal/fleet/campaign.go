package fleet

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"mfsynth/internal/core"
	"mfsynth/internal/obs"
	"mfsynth/internal/wear"
)

// maxRemapAttempts bounds the optimizer's promote-and-retry loop for one
// request: if after this many re-syntheses the mapping still lands duty on
// a valve that would overrun during the very next run, the chip is retired.
const maxRemapAttempts = 4

// ChipSummary is the per-chip slice of a ModeResult.
type ChipSummary struct {
	ID          int  `json:"id"`
	Runs        int  `json:"runs"`
	Resyntheses int  `json:"resyntheses"`
	Promotions  int  `json:"promotions"`
	Dead        bool `json:"dead"`
	DeathRound  int  `json:"death_round,omitempty"`
	// MaxCount is the chip's most-worn valve counter at campaign end.
	MaxCount int `json:"max_count"`
}

// ModeResult aggregates one campaign mode (static or closed-loop).
type ModeResult struct {
	// AssaysBeforeFirstDeath is the fleet-wide number of completed assay
	// executions at the moment the first chip died (the paper's
	// first-worn-out-valve service-life notion lifted to fleet level);
	// equals TotalAssays when no chip died within the campaign.
	AssaysBeforeFirstDeath int `json:"assays_before_first_death"`
	// TotalAssays is the fleet-wide number of completed assay executions
	// over the whole campaign.
	TotalAssays int `json:"total_assays"`
	// FirstDeathRound is the 1-based round of the first chip death (0 if
	// every chip survived the campaign).
	FirstDeathRound int `json:"first_death_round"`
	// MeanRunsToFirstWearout is the mean per-chip run count at death;
	// chips alive at campaign end contribute their (censored) final count.
	MeanRunsToFirstWearout float64 `json:"mean_runs_to_first_wearout"`
	// Resyntheses and Promotions total the optimizer's reactions.
	Resyntheses int `json:"resyntheses"`
	Promotions  int `json:"promotions"`
	// Deaths is the number of chips dead at campaign end.
	Deaths int           `json:"deaths"`
	Chips  []ChipSummary `json:"chips"`
}

// Result is a full campaign artefact: both modes on the identical seeded
// request stream and valve lives, plus the headline comparison.
type Result struct {
	Chips      int      `json:"chips"`
	Grid       int      `json:"grid"`
	Seed       int64    `json:"seed"`
	Rounds     int      `json:"rounds"`
	Rated      int      `json:"rated_actuations"`
	LifeSpread float64  `json:"life_spread"`
	Horizon    int      `json:"horizon"`
	WearBias   float64  `json:"wear_bias"`
	Workloads  []string `json:"workloads"`

	// Static executes the first-synthesized mapping of each workload for
	// the chip's whole life, never consulting telemetry.
	Static ModeResult `json:"static"`
	// Closed runs the collector→analyzer→optimizer→actuator loop.
	Closed ModeResult `json:"closed"`

	// LifetimeExtensionPct is the headline number: the closed loop's
	// assays-before-first-death relative to static, in percent.
	LifetimeExtensionPct float64 `json:"lifetime_extension_pct"`

	// Fingerprint is the SHA-256 of the artefact with this field blank —
	// the bit-identical-reproduction contract benchgate -fleet checks.
	Fingerprint string `json:"fingerprint,omitempty"`
}

// Run executes the campaign twice — static and closed-loop — on identical
// seeded valve lives and request streams, and returns the comparison. The
// final chip states of each mode are also returned (static first) so
// callers can persist telemetry.
func Run(ctx context.Context, cfg Config) (*Result, [][]*ChipState, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	static, staticChips, err := runMode(ctx, cfg, false)
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: static campaign: %w", err)
	}
	closed, closedChips, err := runMode(ctx, cfg, true)
	if err != nil {
		return nil, nil, fmt.Errorf("fleet: closed-loop campaign: %w", err)
	}
	res := &Result{
		Chips:      cfg.Chips,
		Grid:       cfg.Grid,
		Seed:       cfg.Seed,
		Rounds:     cfg.Rounds,
		Rated:      cfg.Rated,
		LifeSpread: cfg.LifeSpread,
		Horizon:    cfg.Horizon,
		WearBias:   cfg.WearBias,
		Static:     static,
		Closed:     closed,
	}
	for _, w := range cfg.Workloads {
		res.Workloads = append(res.Workloads, w.Name)
	}
	if static.AssaysBeforeFirstDeath > 0 {
		res.LifetimeExtensionPct = 100 * float64(closed.AssaysBeforeFirstDeath-static.AssaysBeforeFirstDeath) /
			float64(static.AssaysBeforeFirstDeath)
	}
	fp, err := fingerprint(res)
	if err != nil {
		return nil, nil, err
	}
	res.Fingerprint = fp
	return res, [][]*ChipState{staticChips, closedChips}, nil
}

// fingerprint hashes the JSON encoding of the artefact with the
// Fingerprint field blank.
func fingerprint(r *Result) (string, error) {
	blank := *r
	blank.Fingerprint = ""
	b, err := json.Marshal(&blank)
	if err != nil {
		return "", fmt.Errorf("fleet: fingerprint: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// runMode executes one campaign. Per round every live chip receives one
// assay request; the chip dies when a valve overruns its life mid-run or
// when no complete mapping exists any more.
func runMode(ctx context.Context, cfg Config, closed bool) (ModeResult, []*ChipState, error) {
	mode := "static"
	if closed {
		mode = "closed"
	}
	m := cfg.Trace.Metrics()
	chips := make([]*ChipState, cfg.Chips)
	for i := range chips {
		chips[i] = newChip(i, cfg)
	}

	var mr ModeResult
	completed := 0
	for round := 1; round <= cfg.Rounds; round++ {
		if err := ctx.Err(); err != nil {
			return mr, chips, err
		}
		alive := 0
		for _, chip := range chips {
			if !chip.Dead {
				alive++
			}
		}
		if alive == 0 {
			break
		}
		for _, chip := range chips {
			if chip.Dead {
				continue
			}
			widx := pickWorkload(cfg, chip.ID, round)
			res, err := ensureMapping(ctx, cfg, chip, widx, closed)
			if err != nil {
				if ctx.Err() != nil {
					return mr, chips, ctx.Err()
				}
				// The optimizer ran out of moves: the chip is retired.
				chip.lastErr = err
				die(chip, round, &mr, completed, m, mode)
				continue
			}
			// Collector: fold the run's actuation profile into the
			// chip's lifetime counters.
			profile := wear.GridCounts(res.ChipAt(-1, 1))
			overrun := false
			for i, p := range profile {
				chip.Counts[i] += p
				if chip.Counts[i] > chip.lives[i] {
					overrun = true
				}
			}
			chip.lastProfile = profile
			if overrun {
				// A valve wore out mid-run: the assay is lost and the
				// chip is dead — the event the closed loop exists to
				// pre-empt.
				die(chip, round, &mr, completed, m, mode)
				continue
			}
			chip.Runs++
			completed++
			m.Counter("fleet_" + mode + "_runs_total").Inc()
			if closed {
				analyze(cfg, chip, profile, m)
			}
		}
		publishHealth(chips, m, mode)
	}

	mr.TotalAssays = completed
	if mr.FirstDeathRound == 0 {
		mr.AssaysBeforeFirstDeath = completed
	}
	sumRuns := 0
	for _, chip := range chips {
		sumRuns += chip.Runs
		mr.Resyntheses += chip.Resyntheses
		mr.Promotions += chip.Promotions
		if chip.Dead {
			mr.Deaths++
		}
		maxCount := 0
		for _, c := range chip.Counts {
			if c > maxCount {
				maxCount = c
			}
		}
		mr.Chips = append(mr.Chips, ChipSummary{
			ID:          chip.ID,
			Runs:        chip.Runs,
			Resyntheses: chip.Resyntheses,
			Promotions:  chip.Promotions,
			Dead:        chip.Dead,
			DeathRound:  chip.DeathRound,
			MaxCount:    maxCount,
		})
	}
	mr.MeanRunsToFirstWearout = float64(sumRuns) / float64(len(chips))
	return mr, chips, nil
}

// die retires a chip and records the fleet-level first-death marker.
func die(chip *ChipState, round int, mr *ModeResult, completed int, m *obs.Metrics, mode string) {
	chip.Dead = true
	chip.DeathRound = round
	if mr.FirstDeathRound == 0 {
		mr.FirstDeathRound = round
		mr.AssaysBeforeFirstDeath = completed
	}
	m.Counter("fleet_" + mode + "_deaths_total").Inc()
}

// pickWorkload selects the request's assay: a pure function of
// (seed, chip, round) so both modes see the identical stream.
func pickWorkload(cfg Config, chip, round int) int {
	if len(cfg.Workloads) == 1 {
		return 0
	}
	h := mix64(mix64(uint64(cfg.Seed)+0x5eed) ^ (uint64(chip)<<32 | uint64(round)))
	return int(h % uint64(len(cfg.Workloads)))
}

// ensureMapping is the optimizer + actuator: it returns the chip's active
// mapping for the workload, synthesizing one when none is installed. In
// closed-loop mode the synthesis carries the promoted fault set and the
// wear-bias prior, and a pre-flight check promotes any valve that would
// overrun during the very next run, walking down the remap ladder before
// giving up.
func ensureMapping(ctx context.Context, cfg Config, chip *ChipState, widx int, closed bool) (*core.Result, error) {
	if res := chip.active[widx]; res != nil {
		return res, nil
	}
	m := cfg.Trace.Metrics()
	mode := "static"
	if closed {
		mode = "closed"
	}
	attempts := 1
	if closed {
		attempts = maxRemapAttempts
	}
	for attempt := 0; attempt < attempts; attempt++ {
		opts := cfg.Workloads[widx].Options
		opts.Trace = cfg.Trace
		if closed {
			opts.WearBias = cfg.WearBias
			opts.WearCounts = append([]int(nil), chip.Counts...)
			if !chip.promoted.Empty() {
				opts.Faults = chip.promoted.Clone()
			}
		}
		if attempt > 0 || chip.hadMapping[widx] {
			chip.Resyntheses++
			m.Counter("fleet_" + mode + "_resyntheses_total").Inc()
		}
		res, err := core.SynthesizeCtx(ctx, cfg.Workloads[widx].Assay, opts)
		if err != nil {
			return nil, err
		}
		if len(res.Mapping.Dropped) > 0 || res.FailedRoutes > 0 {
			return nil, fmt.Errorf("degraded mapping for %q: %d ops dropped, %d routes failed",
				cfg.Workloads[widx].Name, len(res.Mapping.Dropped), res.FailedRoutes)
		}
		if !closed {
			chip.active[widx] = res
			chip.hadMapping[widx] = true
			return res, nil
		}
		// Pre-flight: would the very next run overrun a valve? Promote the
		// victims and re-synthesize around them.
		profile := wear.GridCounts(res.ChipAt(-1, 1))
		over := 0
		for i, p := range profile {
			if p > 0 && chip.Counts[i]+p > chip.lives[i] {
				if chip.promote(i) {
					m.Counter("fleet_" + mode + "_promotions_total").Inc()
				}
				over++
			}
		}
		if over == 0 {
			// Actuator: install the mapping for subsequent runs.
			chip.active[widx] = res
			chip.hadMapping[widx] = true
			return res, nil
		}
	}
	return nil, fmt.Errorf("no mapping for %q avoids worn-out valves after %d attempts",
		cfg.Workloads[widx].Name, attempts)
}

// analyze is the closed loop's analyzer: after a successful run it flags
// the chip when its remaining life under the active profile falls below
// the horizon and invalidates the actuator's mappings, so the optimizer
// re-synthesizes with the fresh counters (the wear bias then steers duty
// onto lightly-worn valves). Valves that could not even complete one more
// run of their current duty are spent and retired outright; promoting a
// broader band here would blind whole regions at once and strand the
// placer — the pre-flight check in ensureMapping retires further valves
// precisely when a candidate mapping would overrun them.
func analyze(cfg Config, chip *ChipState, profile []int, m *obs.Metrics) {
	if wear.RemainingRuns(chip.Counts, profile, chip.lives) >= cfg.Horizon {
		return
	}
	for i, p := range profile {
		if p > 0 && chip.Counts[i]+p > chip.lives[i] {
			if chip.promote(i) {
				m.Counter("fleet_closed_promotions_total").Inc()
			}
		}
	}
	chip.active = map[int]*core.Result{}
}

// publishHealth exports the fleet's remaining-life distribution after each
// round: the minimum and median remaining runs across live chips.
func publishHealth(chips []*ChipState, m *obs.Metrics, mode string) {
	if m == nil {
		return
	}
	var rem []int
	aliveN := 0
	for _, chip := range chips {
		if chip.Dead {
			continue
		}
		aliveN++
		if chip.lastProfile != nil {
			rem = append(rem, chip.remainingRuns())
		}
	}
	m.Gauge("fleet_" + mode + "_alive").Set(int64(aliveN))
	if len(rem) == 0 {
		return
	}
	sort.Ints(rem)
	m.Gauge("fleet_" + mode + "_remaining_runs_min").Set(int64(rem[0]))
	m.Gauge("fleet_" + mode + "_remaining_runs_p50").Set(int64(rem[len(rem)/2]))
}
