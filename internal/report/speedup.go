package report

import (
	"fmt"
	"strings"

	"mfsynth/internal/assays"
	"mfsynth/internal/baseline"
	"mfsynth/internal/core"
	"mfsynth/internal/place"
	"mfsynth/internal/schedule"
)

// Speedup is one row of the execution-speedup experiment — the paper's
// stated future work ("the architecture may also bring benefits to some
// aspects other than reliability, such as to speed up the bioassay
// execution"): dynamic devices are not limited to a fixed mixer count, so
// the assay can be scheduled with full parallelism as long as the devices
// fit on the valve matrix.
type Speedup struct {
	Case   string
	Policy int
	// TraditionalMakespan is the assay completion time under the policy's
	// dedicated mixer counts.
	TraditionalMakespan int
	// DynamicMakespan is the completion time with unlimited concurrent
	// dynamic devices, verified to fit on a DynamicGrid² valve matrix.
	DynamicMakespan int
	// DynamicGrid is the smallest tried matrix that fits the parallel
	// schedule.
	DynamicGrid int
	// Factor is TraditionalMakespan / DynamicMakespan.
	Factor float64
}

// ExecutionSpeedup evaluates the speedup of case c against policy p's
// traditional schedule. The unconstrained schedule is synthesized (greedy
// mapper) on growing grids until the mapping fits, proving the parallel
// schedule is realisable on a valve matrix.
func ExecutionSpeedup(c assays.Case, policy int) (*Speedup, error) {
	des, err := baseline.Traditional(c, policy, baseline.DefaultCost)
	if err != nil {
		return nil, err
	}
	s := &Speedup{
		Case:                c.Assay.Name,
		Policy:              policy,
		TraditionalMakespan: des.Schedule.Makespan,
	}
	for grid := c.GridSize; grid <= c.GridSize+8; grid += 2 {
		res, err := core.Synthesize(c.Assay, core.Options{
			Policy: schedule.Resources{}, // unlimited devices
			Place:  place.Config{Grid: grid, Mode: place.Greedy},
		})
		if err != nil {
			continue // does not fit; try a larger matrix
		}
		s.DynamicMakespan = res.Schedule.Makespan
		s.DynamicGrid = grid
		s.Factor = float64(s.TraditionalMakespan) / float64(s.DynamicMakespan)
		return s, nil
	}
	return nil, fmt.Errorf("report: %s does not fit an unconstrained schedule on up to %dx%d",
		c.Assay.Name, c.GridSize+8, c.GridSize+8)
}

// RenderSpeedups formats the execution-speedup experiment.
func RenderSpeedups(rows []*Speedup) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %-4s %12s %10s %6s %8s\n",
		"case", "po.", "trad. tu", "dyn. tu", "grid", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-22s p%-3d %12d %10d %4dx%d %7.2fx\n",
			r.Case, r.Policy, r.TraditionalMakespan, r.DynamicMakespan,
			r.DynamicGrid, r.DynamicGrid, r.Factor)
	}
	return sb.String()
}
