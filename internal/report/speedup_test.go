package report

import (
	"strings"
	"testing"

	"mfsynth/internal/assays"
)

func TestExecutionSpeedupPCR(t *testing.T) {
	c := assays.PCR()
	s, err := ExecutionSpeedup(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Case != "PCR" || s.Policy != 1 {
		t.Fatalf("row = %+v", s)
	}
	if s.DynamicMakespan <= 0 || s.TraditionalMakespan <= 0 {
		t.Fatalf("makespans = %d/%d", s.TraditionalMakespan, s.DynamicMakespan)
	}
	// PCR p1 serialises four size-8 mixes on one mixer; unlimited dynamic
	// devices run them in parallel: the paper's dependency-limited makespan
	// is 24 tu (see the schedule tests) versus ~42 tu under p1.
	if s.DynamicMakespan > s.TraditionalMakespan {
		t.Errorf("dynamic makespan %d exceeds traditional %d", s.DynamicMakespan, s.TraditionalMakespan)
	}
	if s.Factor < 1.2 {
		t.Errorf("speedup = %.2f, want ≥ 1.2 on serialised PCR", s.Factor)
	}
	if s.DynamicGrid < c.GridSize {
		t.Errorf("grid = %d below the case default", s.DynamicGrid)
	}
}

func TestExecutionSpeedupLaterPoliciesShrink(t *testing.T) {
	// More mixers in the traditional design → less serialisation → smaller
	// speedup factor.
	c := assays.PCR()
	s1, err := ExecutionSpeedup(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	s3, err := ExecutionSpeedup(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Factor > s1.Factor {
		t.Errorf("p3 speedup %.2f exceeds p1 speedup %.2f", s3.Factor, s1.Factor)
	}
}

func TestRenderSpeedups(t *testing.T) {
	rows := []*Speedup{{
		Case: "X", Policy: 1, TraditionalMakespan: 40, DynamicMakespan: 20,
		DynamicGrid: 12, Factor: 2,
	}}
	out := RenderSpeedups(rows)
	if !strings.Contains(out, "2.00x") || !strings.Contains(out, "12x12") {
		t.Errorf("render:\n%s", out)
	}
}
