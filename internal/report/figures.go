// Package report regenerates the paper's evaluation artefacts: the
// actuation tables of Figs. 2 and 3, the schedule and snapshot renderings
// of Figs. 9 and 10, and Table 1.
package report

import (
	"fmt"
	"strings"
)

// Fig2 models the traditional dedicated 8-volume mixer of the paper's
// Fig. 2: 3 pump valves and 6 control valves (two inlets, two outlets and
// two ring-isolation valves). One mixing operation runs the phase sequence
// load-1, load-2, mix, unload-half, unload-rest (Figs. 2(a)-(e)); an
// actuation is one valve state change. Per operation the pump valves
// actuate 40 times; the inlet and outlet valves change state 4 times and
// the isolation valves twice, so after two operations the counts are the
// 80/8/4 values of Fig. 2(f).
type Fig2 struct {
	// Pump holds the three pump valves' actuation counts.
	Pump [3]int
	// Control holds the six control valves' counts: inA, inB, outA, outB,
	// isoL, isoR.
	Control [6]int
}

// DedicatedMixer returns the Fig. 2 actuation counts after n mixing
// operations.
func DedicatedMixer(n int) Fig2 {
	var f Fig2
	for i := range f.Pump {
		f.Pump[i] = 40 * n
	}
	perOp := [6]int{4, 4, 4, 4, 2, 2}
	for i, c := range perOp {
		f.Control[i] = c * n
	}
	return f
}

// Max returns the largest actuation count of any valve.
func (f Fig2) Max() int {
	max := 0
	for _, v := range f.Pump {
		if v > max {
			max = v
		}
	}
	for _, v := range f.Control {
		if v > max {
			max = v
		}
	}
	return max
}

// NumValves returns the dedicated mixer's valve count.
func (f Fig2) NumValves() int { return len(f.Pump) + len(f.Control) }

// Fig3 models the valve-role-changing rectangular mixer of the paper's
// Fig. 3: 8 valves, two of which only work as control valves (the port
// pair) while the other six alternate between pump and control roles. Each
// operation pumps with a trio of the role-changing valves (40 actuations)
// while every valve sees 4 control state changes for loading/unloading;
// consecutive operations use disjoint trios, so after two operations the
// largest count is 48 instead of the dedicated mixer's 80.
type Fig3 struct {
	// RoleChanging holds the six role-changing valves' counts.
	RoleChanging [6]int
	// Ports holds the two dedicated control valves' counts.
	Ports [2]int
}

// RoleChangingMixer returns the Fig. 3 actuation counts after n mixing
// operations.
func RoleChangingMixer(n int) Fig3 {
	var f Fig3
	for op := 0; op < n; op++ {
		trio := (op % 2) * 3
		for i := 0; i < 6; i++ {
			f.RoleChanging[i] += 4 // loading/unloading control changes
			if i >= trio && i < trio+3 {
				f.RoleChanging[i] += 40 // pump role this operation
			}
		}
		for i := range f.Ports {
			f.Ports[i] += 4
		}
	}
	return f
}

// Max returns the largest actuation count of any valve.
func (f Fig3) Max() int {
	max := 0
	for _, v := range f.RoleChanging {
		if v > max {
			max = v
		}
	}
	for _, v := range f.Ports {
		if v > max {
			max = v
		}
	}
	return max
}

// NumValves returns the role-changing mixer's valve count.
func (f Fig3) NumValves() int { return len(f.RoleChanging) + len(f.Ports) }

// Fig2vs3 renders the headline comparison of Section 2.2: after two
// operations the role-changing mixer nearly doubles the service life.
func Fig2vs3() string {
	ded := DedicatedMixer(2)
	rc := RoleChangingMixer(2)
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig.2 dedicated mixer after 2 ops:     pump %v control %v  max %d  valves %d\n",
		ded.Pump, ded.Control, ded.Max(), ded.NumValves())
	fmt.Fprintf(&sb, "Fig.3 role-changing mixer after 2 ops: role-changing %v ports %v  max %d  valves %d\n",
		rc.RoleChanging, rc.Ports, rc.Max(), rc.NumValves())
	fmt.Fprintf(&sb, "largest actuation count: %d -> %d\n", ded.Max(), rc.Max())
	return sb.String()
}
