// Fault-injection campaigns: synthesize a benchmark many times against
// independently seeded random defect sets and aggregate how gracefully the
// pipeline holds up — success rate, degradation-level histogram, and the
// actuation-metric yield relative to the fault-free baseline.
package report

import (
	"fmt"
	"sort"
	"strings"

	"mfsynth/internal/assays"
	"mfsynth/internal/baseline"
	"mfsynth/internal/core"
	"mfsynth/internal/fault"
	"mfsynth/internal/par"
	"mfsynth/internal/place"
	"mfsynth/internal/schedule"
	"mfsynth/internal/verify"
)

// CampaignOptions parameterises one fault-injection campaign.
type CampaignOptions struct {
	// Runs is the number of injections (each with its own seed).
	Runs int
	// Seed is the base seed; run i uses Seed+i.
	Seed int64
	// Rate is the per-valve defect probability (e.g. 0.05).
	Rate float64
	// StuckOpenFrac and WearOutFrac split the defects by kind; the rest
	// are stuck-closed (see fault.GenOptions).
	StuckOpenFrac, WearOutFrac float64
	// Grid overrides the case's grid size when positive.
	Grid int
	// Mode selects the mapper (default rolling horizon).
	Mode place.Mode
	// Workers bounds the parallelism across runs (0 = all CPUs). Each
	// run's mapper is serial, mirroring Table1's budget split.
	Workers int
	// Verify audits every surviving result against the conformance
	// catalogue — including the fault rules, proving no defective valve
	// was used.
	Verify bool
}

// CampaignRun is the outcome of one injection.
type CampaignRun struct {
	// Seed generated this run's fault set.
	Seed int64
	// Faults is the injected defect count.
	Faults int
	// Err is the failure message of an unsuccessful run ("" = a usable
	// result was produced, possibly degraded).
	Err string
	// Degraded and Level report the degradation outcome of a successful
	// run.
	Degraded bool
	Level    core.DegradationLevel
	// VsMax1 is the run's setting-1 metric (0 when Err != "").
	VsMax1 int
	// FailedNets and DroppedOps count the declared losses.
	FailedNets, DroppedOps int
	// Violations lists conformance rules broken (Verify only; empty =
	// clean audit).
	Violations []string
}

// Campaign aggregates one benchmark's injection runs.
type Campaign struct {
	Case   string
	Policy int
	// BaselineVsMax1 is the fault-free setting-1 metric the yield is
	// measured against.
	BaselineVsMax1 int
	Runs           []CampaignRun
}

// SuccessRate is the fraction of runs that produced a usable result.
func (c *Campaign) SuccessRate() float64 {
	if len(c.Runs) == 0 {
		return 0
	}
	ok := 0
	for _, r := range c.Runs {
		if r.Err == "" {
			ok++
		}
	}
	return float64(ok) / float64(len(c.Runs))
}

// NominalRate is the fraction of runs that succeeded without degradation.
func (c *Campaign) NominalRate() float64 {
	if len(c.Runs) == 0 {
		return 0
	}
	n := 0
	for _, r := range c.Runs {
		if r.Err == "" && !r.Degraded {
			n++
		}
	}
	return float64(n) / float64(len(c.Runs))
}

// LevelCounts histograms the degradation levels of successful runs.
func (c *Campaign) LevelCounts() map[core.DegradationLevel]int {
	out := map[core.DegradationLevel]int{}
	for _, r := range c.Runs {
		if r.Err == "" {
			out[r.Level]++
		}
	}
	return out
}

// MeanYield is the mean of baseline/vsmax over successful runs: 1.0 means
// faults cost nothing, below 1.0 the injected defects inflated the worst
// per-valve actuation count.
func (c *Campaign) MeanYield() float64 {
	sum, n := 0.0, 0
	for _, r := range c.Runs {
		if r.Err == "" && r.VsMax1 > 0 {
			sum += float64(c.BaselineVsMax1) / float64(r.VsMax1)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Violations counts runs whose conformance audit found violations.
func (c *Campaign) ViolationRuns() int {
	n := 0
	for _, r := range c.Runs {
		if len(r.Violations) > 0 {
			n++
		}
	}
	return n
}

// RunCampaign synthesizes the case Runs times against seeded random fault
// sets (plus one fault-free baseline run) and aggregates the outcomes. The
// runs are independent and evaluated concurrently; the aggregate is
// deterministic in the options.
func RunCampaign(c assays.Case, policy int, opts CampaignOptions) (*Campaign, error) {
	des, err := baseline.Traditional(c, policy, baseline.DefaultCost)
	if err != nil {
		return nil, err
	}
	grid := c.GridSize
	if opts.Grid > 0 {
		grid = opts.Grid
	}
	synth := func(fs *fault.Set) (*core.Result, error) {
		return core.Synthesize(c.Assay, core.Options{
			Policy: schedule.Resources{Mixers: des.Mixers, Detectors: c.Detectors},
			Place:  place.Config{Grid: grid, Mode: opts.Mode, Workers: 1},
			Faults: fs,
		})
	}

	base, err := synth(nil)
	if err != nil {
		return nil, fmt.Errorf("fault-free baseline: %w", err)
	}
	camp := &Campaign{Case: c.Assay.Name, Policy: policy, BaselineVsMax1: base.VsMax1}

	runs, err := par.Map(par.Workers(opts.Workers), opts.Runs, func(_, i int) (CampaignRun, error) {
		seed := opts.Seed + int64(i)
		fs := fault.Generate(seed, fault.GenOptions{
			Grid:          grid,
			Rate:          opts.Rate,
			StuckOpenFrac: opts.StuckOpenFrac,
			WearOutFrac:   opts.WearOutFrac,
			KeepPorts:     true,
		})
		run := CampaignRun{Seed: seed, Faults: fs.Len()}
		res, err := synth(fs)
		if err != nil {
			run.Err = err.Error()
			return run, nil
		}
		run.VsMax1 = res.VsMax1
		if d := res.Degradation; d != nil {
			run.Degraded = true
			run.Level = d.Level
			run.FailedNets = len(d.FailedNets)
			run.DroppedOps = len(d.DroppedOps)
		}
		if opts.Verify {
			if rep := verify.Conformance(res); !rep.Clean() {
				run.Violations = rep.Rules()
			}
		}
		return run, nil
	})
	if err != nil {
		return nil, err
	}
	camp.Runs = runs
	return camp, nil
}

// RenderCampaign formats one campaign as a text block.
func RenderCampaign(c *Campaign) string {
	var sb strings.Builder
	levels := c.LevelCounts()
	var keys []core.DegradationLevel
	for k := range levels {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var lv []string
	for _, k := range keys {
		lv = append(lv, fmt.Sprintf("%s=%d", k, levels[k]))
	}
	fmt.Fprintf(&sb, "%-22s p%d  %3d runs  success %5.1f%%  nominal %5.1f%%  yield %.3f  levels: %s",
		c.Case, c.Policy, len(c.Runs), 100*c.SuccessRate(), 100*c.NominalRate(),
		c.MeanYield(), strings.Join(lv, " "))
	if v := c.ViolationRuns(); v > 0 {
		fmt.Fprintf(&sb, "  CONFORMANCE VIOLATIONS in %d run(s)", v)
	}
	return sb.String()
}
