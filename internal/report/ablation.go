package report

import (
	"context"
	"fmt"
	"time"

	"mfsynth/internal/assays"
	"mfsynth/internal/baseline"
	"mfsynth/internal/core"
	"mfsynth/internal/graph"
	"mfsynth/internal/obs"
	"mfsynth/internal/place"
	"mfsynth/internal/schedule"
	"mfsynth/internal/verify"
)

// AblationOptions tunes the backend-ablation sweep: every instance is
// synthesised once per backend, in isolation, under the same per-run
// deadline — the experiment behind EXPERIMENTS.md's "anytime portfolio"
// table and the BENCH_ablation.json gate artefact.
type AblationOptions struct {
	// Backends lists the backends to ablate (default ilp, greedy, anneal).
	Backends []core.Backend
	// Sizes lists the mix-op counts of the seeded random assays (default
	// 6, 9, 12); Seed seeds their generation (default 1).
	Sizes []int
	Seed  int64
	// Cases additionally ablates the named paper benchmarks at policy 1;
	// empty means generated assays only (the benchmarks dominate the
	// sweep's wall-clock, so the CI smoke leaves them out).
	Cases []string
	// Grid is the chip edge for generated assays (default 12); benchmark
	// cases keep their own grid.
	Grid int
	// Deadline caps each backend run's wall-clock (default 20s); an
	// expired exact solve is an "ok=false" cell, not a sweep failure.
	Deadline time.Duration
	// Anneal tunes the anneal backend (zero fields = anneal defaults).
	Anneal core.AnnealOptions
	// Workers bounds each run's internal parallelism.
	Workers int
	// Verify audits every successful run against the conformance
	// catalogue; a violation fails the sweep (it would poison the gate).
	Verify bool
	// Trace, when non-nil, records every run under one trace.
	Trace *obs.Trace
}

func (o AblationOptions) withDefaults() AblationOptions {
	if len(o.Backends) == 0 {
		o.Backends = core.Backends()
	}
	if len(o.Sizes) == 0 {
		o.Sizes = []int{6, 9, 12}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Grid == 0 {
		o.Grid = 12
	}
	if o.Deadline == 0 {
		o.Deadline = 20 * time.Second
	}
	return o
}

// AblationCell is one backend's outcome on one instance.
type AblationCell struct {
	Backend string `json:"backend"`
	// Ok marks a run that produced a result; Err carries the failure
	// otherwise (typically a deadline-expired exact solve).
	Ok  bool   `json:"ok"`
	Err string `json:"err,omitempty"`
	// Quality of the result, for Ok cells. Complete is true when nothing
	// was dropped and every net routed — only complete cells are
	// comparable on VsMax1 (an incomplete mapping pumps less because it
	// does less).
	Complete     bool    `json:"complete"`
	VsMax1       int     `json:"vs_max1"`
	VsMax2       int     `json:"vs_max2"`
	UsedValves   int     `json:"used_valves"`
	Dropped      int     `json:"dropped"`
	FailedRoutes int     `json:"failed_routes"`
	Degraded     bool    `json:"degraded,omitempty"`
	Seconds      float64 `json:"seconds"`
}

// AblationRow is one instance's sweep across all backends, cells in
// backend order.
type AblationRow struct {
	Instance string         `json:"instance"`
	Ops      int            `json:"ops"`
	Grid     int            `json:"grid"`
	Cells    []AblationCell `json:"cells"`
}

// Cell returns the named backend's cell, nil when absent.
func (r *AblationRow) Cell(b string) *AblationCell {
	for i := range r.Cells {
		if r.Cells[i].Backend == b {
			return &r.Cells[i]
		}
	}
	return nil
}

// ablationInstance is one problem of the sweep.
type ablationInstance struct {
	name  string
	assay *graph.Assay
	opts  core.Options
}

// Ablation runs the backend-ablation sweep. Instances run sequentially
// (each backend already spends the worker budget internally) and every
// backend sees the identical problem; ctx bounds the whole sweep while
// AblationOptions.Deadline bounds each run.
func Ablation(ctx context.Context, opts AblationOptions) ([]*AblationRow, error) {
	opts = opts.withDefaults()

	var instances []ablationInstance
	for _, size := range opts.Sizes {
		a := assays.Random(opts.Seed, assays.RandomOptions{MixOps: size, Detects: 1})
		mixers := map[int]int{}
		for _, id := range a.MixOps() {
			mixers[a.Volume(id)] = 1
		}
		instances = append(instances, ablationInstance{
			name:  fmt.Sprintf("random%d-m%d", opts.Seed, size),
			assay: a,
			opts: core.Options{
				Policy: schedule.Resources{Mixers: mixers, Detectors: 1},
				Place:  place.Config{Grid: opts.Grid},
			},
		})
	}
	for _, name := range opts.Cases {
		c, err := assays.ByName(name)
		if err != nil {
			return nil, err
		}
		des, err := baselineFor(c, 1)
		if err != nil {
			return nil, err
		}
		instances = append(instances, ablationInstance{
			name:  c.Assay.Name + "-p1",
			assay: c.Assay,
			opts: core.Options{
				Policy: schedule.Resources{Mixers: des, Detectors: c.Detectors},
				Place:  place.Config{Grid: c.GridSize},
			},
		})
	}

	var rows []*AblationRow
	for _, inst := range instances {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		row := &AblationRow{
			Instance: inst.name,
			Ops:      len(inst.assay.Ops()),
			Grid:     inst.opts.Place.Grid,
		}
		for _, b := range opts.Backends {
			runOpts := inst.opts
			runOpts.Backends = []core.Backend{b}
			runOpts.Anneal = opts.Anneal
			runOpts.Workers = opts.Workers
			runOpts.Trace = opts.Trace
			runCtx, cancel := context.WithTimeout(ctx, opts.Deadline)
			t0 := time.Now()
			res, err := core.SynthesizeCtx(runCtx, inst.assay, runOpts)
			cancel()
			cell := AblationCell{Backend: string(b), Seconds: time.Since(t0).Seconds()}
			if err != nil {
				cell.Err = err.Error()
			} else {
				if opts.Verify {
					if rep := verify.Conformance(res); !rep.Clean() {
						return nil, fmt.Errorf("%s/%s fails conformance: %s", inst.name, b, rep)
					}
				}
				cell.Ok = true
				cell.VsMax1 = res.VsMax1
				cell.VsMax2 = res.VsMax2
				cell.UsedValves = res.UsedValves
				cell.Dropped = len(res.Mapping.Dropped)
				cell.FailedRoutes = res.FailedRoutes
				cell.Degraded = res.Degraded()
				cell.Complete = cell.Dropped == 0 && cell.FailedRoutes == 0
			}
			row.Cells = append(row.Cells, cell)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// baselineFor resolves a benchmark case's traditional mixer policy.
func baselineFor(c assays.Case, policy int) (map[int]int, error) {
	des, err := baseline.Traditional(c, policy, baseline.DefaultCost)
	if err != nil {
		return nil, err
	}
	return des.Mixers, nil
}
