package report

import (
	"context"
	"fmt"
	"strings"
	"time"

	"mfsynth/internal/assays"
	"mfsynth/internal/baseline"
	"mfsynth/internal/core"
	"mfsynth/internal/fault"
	"mfsynth/internal/obs"
	"mfsynth/internal/par"
	"mfsynth/internal/place"
	"mfsynth/internal/schedule"
	"mfsynth/internal/verify"
)

// Row is one line of Table 1: a benchmark under one policy, comparing the
// optimal binding for the traditional design with our method in both
// settings.
type Row struct {
	Case   string
	Ops    string // #op, e.g. "15(7)"
	Policy int

	// Traditional design columns.
	NumDevices int    // #d
	MixVector  string // #m4-6-8-10
	VsTmax     int    // largest actuations, optimal binding
	TradValves int    // #v (traditional)

	// Our method columns.
	Vs1Max, Vs1Pump int     // setting 1: total (pump-only)
	Imp1            float64 // improvement vs VsTmax, percent
	Vs2Max, Vs2Pump int     // setting 2
	Imp2            float64
	OurValves       int     // #v (ours)
	ImpV            float64 // valve-count improvement, percent
	Runtime         time.Duration
	// Phases is the wall-clock split of Runtime over the synthesis
	// pipeline phases ("schedule", "place", "route").
	Phases map[string]float64
}

// RowOptions tunes the synthesis side of a row.
type RowOptions struct {
	// Mode selects the mapper (default rolling horizon).
	Mode place.Mode
	// Grid overrides the case's grid size when positive.
	Grid int
	// Workers bounds the parallelism (0 = runtime.GOMAXPROCS, 1 = legacy
	// serial). For a single row it is the mapper-internal worker count;
	// Table1 instead spends the budget across its twelve case × policy
	// cells and runs each cell's mapper serially. Either way the reported
	// metrics are bit-identical to a serial run.
	Workers int
	// Trace, when non-nil, records every synthesis run of the evaluation
	// under one trace (one root span per cell). Concurrent Table1 cells land
	// on separate root tracks of the Chrome export.
	Trace *obs.Trace
	// Verify audits every synthesis result against the full conformance
	// catalogue; a cell with violations fails with an error carrying the
	// report.
	Verify bool
	// Faults injects a valve defect set into every synthesis run (nil =
	// healthy chip). The mapper and router work around the defects; the
	// conformance audit (with Verify) proves no faulty valve is used.
	Faults *fault.Set
	// FaultSeed and FaultRate, when Faults is nil and FaultRate > 0, draw
	// a seeded random defect set sized to each cell's grid (ports kept
	// healthy) — the per-cell form of Faults for multi-grid sweeps.
	FaultSeed int64
	FaultRate float64
	// Backends races the anytime backend portfolio on every cell (two or
	// more entries) or pins a single backend; empty keeps the classic
	// single pipeline with Mode as configured. Anneal tunes the anneal
	// backend when it is listed.
	Backends []core.Backend
	Anneal   core.AnnealOptions
	// Deadline caps each cell's synthesis wall-clock (0 = none) — the
	// portfolio's anytime bound.
	Deadline time.Duration
}

// Table1Row evaluates one benchmark × policy cell of Table 1.
func Table1Row(c assays.Case, policy int, opts RowOptions) (*Row, error) {
	return Table1RowCtx(context.Background(), c, policy, opts)
}

// Table1RowCtx is Table1Row with cancellation: the synthesis run checks
// ctx between phases and inside the solvers, so an interrupted evaluation
// returns promptly with an error matching synerr.ErrDeadline.
func Table1RowCtx(ctx context.Context, c assays.Case, policy int, opts RowOptions) (*Row, error) {
	des, err := baseline.Traditional(c, policy, baseline.DefaultCost)
	if err != nil {
		return nil, err
	}
	grid := c.GridSize
	if opts.Grid > 0 {
		grid = opts.Grid
	}
	if opts.Faults == nil && opts.FaultRate > 0 {
		opts.Faults = fault.Generate(opts.FaultSeed, fault.GenOptions{
			Grid: grid, Rate: opts.FaultRate, KeepPorts: true,
		})
	}
	if opts.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Deadline)
		defer cancel()
	}
	res, err := core.SynthesizeCtx(ctx, c.Assay, core.Options{
		Policy:   schedule.Resources{Mixers: des.Mixers, Detectors: c.Detectors},
		Place:    place.Config{Grid: grid, Mode: opts.Mode},
		Workers:  opts.Workers,
		Trace:    opts.Trace,
		Faults:   opts.Faults,
		Backends: opts.Backends,
		Anneal:   opts.Anneal,
	})
	if err != nil {
		return nil, err
	}
	if opts.Verify {
		if rep := verify.Conformance(res); !rep.Clean() {
			return nil, fmt.Errorf("%s p%d fails conformance: %s", c.Assay.Name, policy, rep)
		}
	}
	row := &Row{
		Case:       c.Assay.Name,
		Ops:        c.Assay.Stats().String(),
		Policy:     policy,
		NumDevices: des.NumDevices,
		MixVector:  des.MixVector(),
		VsTmax:     des.VsTmax,
		TradValves: des.Valves,
		Vs1Max:     res.VsMax1,
		Vs1Pump:    res.VsPump1,
		Vs2Max:     res.VsMax2,
		Vs2Pump:    res.VsPump2,
		OurValves:  res.UsedValves,
		Runtime:    res.Runtime,
		Phases:     res.PhaseSeconds,
	}
	row.Imp1 = improvement(des.VsTmax, res.VsMax1)
	row.Imp2 = improvement(des.VsTmax, res.VsMax2)
	row.ImpV = improvement(des.Valves, res.UsedValves)
	return row, nil
}

// improvement returns the percentage reduction from base to ours.
func improvement(base, ours int) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(base-ours) / float64(base)
}

// Table1 evaluates all four benchmarks under policies p1..p3. The twelve
// case × policy cells are independent synthesis runs, so with Workers > 1
// they are evaluated concurrently; the row order (and every metric) is the
// same as in a serial run.
func Table1(opts RowOptions) ([]*Row, error) {
	return Table1Ctx(context.Background(), opts)
}

// Table1Ctx is Table1 with cancellation: pending cells are skipped once
// ctx is cut and in-flight cells return early, so an interrupted
// evaluation fails promptly instead of finishing the sweep.
func Table1Ctx(ctx context.Context, opts RowOptions) ([]*Row, error) {
	type cell struct {
		c      assays.Case
		policy int
	}
	var cells []cell
	for _, name := range assays.Names() {
		c, err := assays.ByName(name)
		if err != nil {
			return nil, err
		}
		for p := 1; p <= 3; p++ {
			cells = append(cells, cell{c, p})
		}
	}
	workers := par.Workers(opts.Workers)
	rowOpts := opts
	if workers > 1 {
		// The worker budget is spent across cells; each cell's mapper runs
		// serially to avoid oversubscribing the machine.
		rowOpts.Workers = 1
	}
	rows, err := par.MapCtx(ctx, workers, len(cells), func(_, i int) (*Row, error) {
		row, err := Table1RowCtx(ctx, cells[i].c, cells[i].policy, rowOpts)
		if err != nil {
			return nil, fmt.Errorf("%s p%d: %w", cells[i].c.Assay.Name, cells[i].policy, err)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Averages returns the mean improvements over the rows (the paper's bottom
// line: 55.76%, 72.97%, 10.62%).
func Averages(rows []*Row) (imp1, imp2, impV float64) {
	if len(rows) == 0 {
		return 0, 0, 0
	}
	for _, r := range rows {
		imp1 += r.Imp1
		imp2 += r.Imp2
		impV += r.ImpV
	}
	n := float64(len(rows))
	return imp1 / n, imp2 / n, impV / n
}

// Render formats the rows as a text table in the layout of Table 1.
func Render(rows []*Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %-8s %-3s %3s %-24s %8s %5s | %9s %8s %9s %8s %5s %7s %8s\n",
		"case", "#op", "po.", "#d", "#m4-6-8-10", "vs_tmax", "#v",
		"vs1max", "imp1", "vs2max", "imp2", "#v", "impv", "T")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-22s %-8s p%-2d %3d %-24s %8d %5d | %4d(%3d) %7.2f%% %4d(%3d) %7.2f%% %5d %6.2f%% %7.1fs\n",
			r.Case, r.Ops, r.Policy, r.NumDevices, r.MixVector, r.VsTmax, r.TradValves,
			r.Vs1Max, r.Vs1Pump, r.Imp1, r.Vs2Max, r.Vs2Pump, r.Imp2,
			r.OurValves, r.ImpV, r.Runtime.Seconds())
	}
	i1, i2, iv := Averages(rows)
	fmt.Fprintf(&sb, "%-22s %68s | %9s %7.2f%% %9s %7.2f%% %5s %6.2f%%\n",
		"average", "", "", i1, "", i2, "", iv)
	return sb.String()
}
