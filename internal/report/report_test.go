package report

import (
	"strings"
	"testing"

	"mfsynth/internal/assays"
	"mfsynth/internal/place"
)

func TestFig2DedicatedMixer(t *testing.T) {
	f := DedicatedMixer(2)
	// Fig. 2(f): pump valves at 80, inlet/outlet control valves at 8,
	// isolation valves at 4 after two mixing operations.
	for _, p := range f.Pump {
		if p != 80 {
			t.Errorf("pump = %d, want 80", p)
		}
	}
	want := [6]int{8, 8, 8, 8, 4, 4}
	if f.Control != want {
		t.Errorf("control = %v, want %v", f.Control, want)
	}
	if f.Max() != 80 {
		t.Errorf("Max = %d, want 80", f.Max())
	}
	if f.NumValves() != 9 {
		t.Errorf("NumValves = %d, want 9", f.NumValves())
	}
}

func TestFig3RoleChangingMixer(t *testing.T) {
	f := RoleChangingMixer(2)
	// Section 2.2: "the largest number of valve actuations is reduced from
	// 80 to 48 ... we only use 8 valves".
	if f.Max() != 48 {
		t.Errorf("Max = %d, want 48", f.Max())
	}
	if f.NumValves() != 8 {
		t.Errorf("NumValves = %d, want 8", f.NumValves())
	}
	// Every role-changing valve pumped exactly once over the two ops.
	for i, v := range f.RoleChanging {
		if v != 48 {
			t.Errorf("role-changing valve %d = %d, want 48", i, v)
		}
	}
	for i, v := range f.Ports {
		if v != 8 {
			t.Errorf("port valve %d = %d, want 8", i, v)
		}
	}
}

func TestFig3SingleOp(t *testing.T) {
	f := RoleChangingMixer(1)
	// One op: trio at 44, the rest at 4.
	counts := map[int]int{}
	for _, v := range f.RoleChanging {
		counts[v]++
	}
	if counts[44] != 3 || counts[4] != 3 {
		t.Errorf("after 1 op: %v", f.RoleChanging)
	}
}

func TestFig2vs3Headline(t *testing.T) {
	s := Fig2vs3()
	if !strings.Contains(s, "80 -> 48") {
		t.Errorf("headline missing:\n%s", s)
	}
}

func TestServiceLifeNearlyDoubled(t *testing.T) {
	// The paper: "the service life of this mixer is nearly doubled".
	for n := 2; n <= 10; n += 2 {
		ded := DedicatedMixer(n).Max()
		rc := RoleChangingMixer(n).Max()
		ratio := float64(ded) / float64(rc)
		if ratio < 1.6 || ratio > 2.0 {
			t.Errorf("after %d ops: ratio %.2f outside [1.6, 2.0]", n, ratio)
		}
	}
}

func TestTable1RowGreedy(t *testing.T) {
	c := assays.PCR()
	row, err := Table1Row(c, 1, RowOptions{Mode: place.Greedy})
	if err != nil {
		t.Fatal(err)
	}
	if row.VsTmax != 160 {
		t.Errorf("VsTmax = %d, want 160", row.VsTmax)
	}
	if row.Vs1Pump != 40 {
		t.Errorf("Vs1Pump = %d, want 40", row.Vs1Pump)
	}
	if row.Imp1 < 50 {
		t.Errorf("Imp1 = %.2f%%, want > 50%% (paper: 71.88%%)", row.Imp1)
	}
	if row.Imp2 <= row.Imp1 {
		t.Errorf("Imp2 (%.2f) should exceed Imp1 (%.2f)", row.Imp2, row.Imp1)
	}
	if row.MixVector != "1-0-4-2" {
		t.Errorf("MixVector = %q", row.MixVector)
	}
}

func TestRenderContainsAverages(t *testing.T) {
	rows := []*Row{
		{Case: "A", Ops: "2(1)", Policy: 1, MixVector: "1-0-0-0", VsTmax: 100,
			Vs1Max: 50, Imp1: 50, Vs2Max: 25, Imp2: 75, TradValves: 80, OurValves: 72, ImpV: 10},
		{Case: "B", Ops: "4(2)", Policy: 2, MixVector: "0-2-0-0", VsTmax: 200,
			Vs1Max: 100, Imp1: 50, Vs2Max: 50, Imp2: 75, TradValves: 100, OurValves: 90, ImpV: 10},
	}
	out := Render(rows)
	if !strings.Contains(out, "average") {
		t.Errorf("no averages row:\n%s", out)
	}
	i1, i2, iv := Averages(rows)
	if i1 != 50 || i2 != 75 || iv != 10 {
		t.Errorf("Averages = %v %v %v", i1, i2, iv)
	}
	if !strings.Contains(out, "1-0-0-0") {
		t.Errorf("mix vector missing:\n%s", out)
	}
}

func TestAveragesEmpty(t *testing.T) {
	i1, i2, iv := Averages(nil)
	if i1 != 0 || i2 != 0 || iv != 0 {
		t.Error("Averages(nil) not zero")
	}
}

// Full Table 1 with the greedy mapper: fast enough for CI, and the
// headline averages must keep the paper's shape (imp2 > imp1 > 40%).
func TestTable1GreedyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("12 syntheses")
	}
	rows, err := Table1(RowOptions{Mode: place.Greedy})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	i1, i2, _ := Averages(rows)
	if i1 < 40 {
		t.Errorf("avg imp1 = %.2f%%, want > 40%% (paper: 55.76%%)", i1)
	}
	if i2 <= i1 {
		t.Errorf("avg imp2 = %.2f%% not above imp1 = %.2f%%", i2, i1)
	}
	for _, r := range rows {
		if r.Vs1Max >= r.VsTmax {
			t.Errorf("%s p%d: our method does not beat the traditional design (%d >= %d)",
				r.Case, r.Policy, r.Vs1Max, r.VsTmax)
		}
		if r.Vs2Max > r.Vs1Max {
			t.Errorf("%s p%d: setting 2 worse than setting 1", r.Case, r.Policy)
		}
	}
	out := Render(rows)
	if !strings.Contains(out, "ExponentialDilution") {
		t.Error("render incomplete")
	}
}
