package route

import (
	"errors"
	"testing"

	"mfsynth/internal/grid"
	"mfsynth/internal/synerr"
)

func TestFaultyCellsAvoided(t *testing.T) {
	r := New(bounds10())
	// Dead valves form a wall with a gap at the bottom.
	var wall []grid.Point
	for y := 0; y < 9; y++ {
		wall = append(wall, pt(5, y))
	}
	r.BlockFaulty(wall)
	p, err := r.Route([]grid.Point{pt(0, 0)}, []grid.Point{pt(9, 0)})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range p {
		if r.faulty.get(r.idx(c)) {
			t.Fatalf("path crosses faulty cell %v", c)
		}
	}
	if len(p) < 10+2*9 {
		t.Fatalf("path length = %d, expected a detour via y=9", len(p))
	}
}

func TestFaultyTerminalUnreachable(t *testing.T) {
	// Unlike Block, a faulty cell may not even be a terminal.
	r := New(bounds10())
	r.BlockFaulty([]grid.Point{pt(9, 5)})
	if _, err := r.Route([]grid.Point{pt(0, 5)}, []grid.Point{pt(9, 5)}); err != ErrNoPath {
		t.Fatalf("err = %v, want ErrNoPath for a faulty target", err)
	}
	if _, err := r.Route([]grid.Point{pt(9, 5)}, []grid.Point{pt(0, 5)}); err != ErrNoPath {
		t.Fatalf("err = %v, want ErrNoPath for a faulty source", err)
	}
	// With a second healthy terminal the route succeeds around the fault.
	p, err := r.Route([]grid.Point{pt(0, 5)}, []grid.Point{pt(9, 5), pt(9, 6)})
	if err != nil {
		t.Fatal(err)
	}
	if last := p[len(p)-1]; last != pt(9, 6) {
		t.Fatalf("path ends at %v, want the healthy terminal (9,6)", last)
	}
}

func TestErrNoPathMatchesTaxonomy(t *testing.T) {
	if !errors.Is(ErrNoPath, synerr.ErrUnroutable) {
		t.Fatal("ErrNoPath should wrap synerr.ErrUnroutable")
	}
	r := New(bounds10())
	r.Block(grid.RectWH(4, 0, 2, 10))
	_, err := r.Route([]grid.Point{pt(0, 0)}, []grid.Point{pt(9, 0)})
	if !errors.Is(err, synerr.ErrUnroutable) {
		t.Fatalf("Route error %v does not match synerr.ErrUnroutable", err)
	}
}
