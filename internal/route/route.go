// Package route decides the fluid transport paths of the synthesis result
// (the paper's Sections 3.5 and Algorithm 1 L10-L19): Dijkstra's shortest
// path on the valve lattice, with higher costs on cells already used by
// previously-routed paths (so parallel transports avoid crossing), optional
// pass-through of in situ storages that still have free space (Fig. 8), and
// rip-up & re-route when a storage must become an obstacle.
//
// The router state is index-addressed: cell flags live in bitsets and flat
// slices sized to the grid, and the per-query Dijkstra state (distances,
// predecessors, terminal sets) is epoch-stamped so a new query costs no
// clearing. Every pushed heap entry carries a unique (dist, seq) key — a
// strict total order — so the pop sequence, and with it every path, is
// independent of heap internals and identical to the map-based
// implementation this replaced (kept as the test oracle in
// route_map_test.go).
package route

import (
	"fmt"

	"mfsynth/internal/grid"
	"mfsynth/internal/synerr"
)

// Default cost weights. Costs are per cell entered.
const (
	// FreshCost is the cost of a cell no valve has used yet. It exceeds
	// PreferredCost so paths reuse already-actuated valves (ring valves and
	// earlier paths) instead of consuming fresh virtual valves, which keeps
	// the manufactured valve count low.
	FreshCost = 2
	// PreferredCost is the cost of a cell marked by Prefer.
	PreferredCost = 1
	// StorageCost is the extra cost of crossing a storage cell; small, so a
	// pass-through still beats a long detour, but free cells are preferred.
	StorageCost = 1
	// CrossCost is the extra cost per previous path using a cell within the
	// same time step; high enough that crossings happen only when
	// unavoidable.
	CrossCost = 64
)

// ErrNoPath reports that no path exists between the given terminals. It
// wraps synerr.ErrUnroutable, so errors.Is(err, synerr.ErrUnroutable)
// matches it across package boundaries.
var ErrNoPath = fmt.Errorf("route: no path: %w", synerr.ErrUnroutable)

// Path is a cell sequence from a source terminal to a target terminal.
type Path []grid.Point

// bitset is a fixed-capacity bit vector over cell indices.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) get(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }
func (b bitset) set(i int)      { b[i>>6] |= 1 << uint(i&63) }
func (b bitset) clear() {
	for i := range b {
		b[i] = 0
	}
}

// Router routes the transports of one time step over the valve lattice.
type Router struct {
	bounds grid.Rect
	w      int // bounds width, for point→index mapping
	cells  int

	blocked bitset
	faulty  bitset  // defective valves: impassable even as terminals
	prefer  bitset  // cells whose valves actuate anyway
	storage []int32 // cell -> storage id, -1 = none
	used    []int32 // cell -> number of committed paths

	// Per-query Dijkstra state, epoch-stamped: an entry is valid only when
	// its stamp equals the current epoch, so starting a query is O(1).
	epoch    uint32
	dist     []int32
	prev     []int32 // predecessor cell index, -1 = none
	distSeen []uint32
	isTgt    []uint32
	isSrc    []uint32
	heap     []pqItem

	// Pops counts priority-queue extractions across all Route calls on
	// this router — the Dijkstra work metric the observability layer
	// aggregates into route.dijkstra_pops.
	Pops int
}

// New returns a router over the given lattice bounds.
func New(bounds grid.Rect) *Router {
	n := bounds.W() * bounds.H()
	if n < 0 {
		n = 0
	}
	ro := &Router{
		bounds:   bounds,
		w:        bounds.W(),
		cells:    n,
		blocked:  newBitset(n),
		faulty:   newBitset(n),
		prefer:   newBitset(n),
		storage:  make([]int32, n),
		used:     make([]int32, n),
		dist:     make([]int32, n),
		prev:     make([]int32, n),
		distSeen: make([]uint32, n),
		isTgt:    make([]uint32, n),
		isSrc:    make([]uint32, n),
	}
	for i := range ro.storage {
		ro.storage[i] = -1
	}
	return ro
}

// Reset returns the router to its freshly-constructed state (no blocks,
// storages, committed paths or pop count), keeping every buffer: a pooled
// router is reused across nets and rip-up iterations instead of
// reallocating its grids.
func (ro *Router) Reset() {
	ro.blocked.clear()
	ro.faulty.clear()
	ro.prefer.clear()
	for i := 0; i < ro.cells; i++ {
		ro.storage[i] = -1
		ro.used[i] = 0
	}
	ro.Pops = 0
}

// idx maps an in-bounds point to its cell index.
func (ro *Router) idx(p grid.Point) int {
	return (p.Y-ro.bounds.Y0)*ro.w + (p.X - ro.bounds.X0)
}

// pt maps a cell index back to its point.
func (ro *Router) pt(i int) grid.Point {
	return grid.Point{X: ro.bounds.X0 + i%ro.w, Y: ro.bounds.Y0 + i/ro.w}
}

// BlockFaulty marks defective valves as impassable. Unlike Block, a faulty
// cell is excluded even when it is a terminal: a stuck valve at a device
// boundary makes that boundary cell unusable, it does not become reachable
// just because a transport ends there.
func (ro *Router) BlockFaulty(cells []grid.Point) {
	for _, c := range cells {
		if ro.bounds.Contains(c) {
			ro.faulty.set(ro.idx(c))
		}
	}
}

// Prefer marks cells whose valves are actuated anyway (device rings,
// already-committed paths of earlier time steps): paths favour them over
// fresh cells. Out-of-bounds cells are ignored — edge-device rings may
// overhang the lattice.
func (ro *Router) Prefer(cells []grid.Point) {
	for _, c := range cells {
		if ro.bounds.Contains(c) {
			ro.prefer.set(ro.idx(c))
		}
	}
}

// Block marks every cell of r as impassable (an active device footprint or a
// full storage).
func (ro *Router) Block(r grid.Rect) {
	for _, p := range r.Intersect(ro.bounds).Points() {
		ro.blocked.set(ro.idx(p))
	}
}

// AddStorage marks the cells of rect as belonging to storage id: passable
// with a small penalty until BlockStorage is called.
func (ro *Router) AddStorage(id int, rect grid.Rect) {
	for _, p := range rect.Intersect(ro.bounds).Points() {
		ro.storage[ro.idx(p)] = int32(id)
	}
}

// BlockStorage turns storage id into an obstacle (Algorithm 1 L15: "Forbid
// (s,p) from overlapping with each other").
func (ro *Router) BlockStorage(id int) {
	for i, sid := range ro.storage {
		if sid == int32(id) {
			ro.blocked.set(i)
		}
	}
}

// Commit records a routed path so later routes see its cells as expensive.
func (ro *Router) Commit(p Path) {
	for _, c := range p {
		if ro.bounds.Contains(c) {
			ro.used[ro.idx(c)]++
		}
	}
}

// Rip removes a previously committed path (rip-up & re-route).
func (ro *Router) Rip(p Path) {
	for _, c := range p {
		if ro.bounds.Contains(c) {
			if i := ro.idx(c); ro.used[i] > 0 {
				ro.used[i]--
			}
		}
	}
}

// StorageCells returns how many cells of path lie inside storage id —
// the intrusion area checked against the storage's free space.
func (ro *Router) StorageCells(p Path, id int) int {
	n := 0
	for _, c := range p {
		if ro.bounds.Contains(c) && ro.storage[ro.idx(c)] == int32(id) {
			n++
		}
	}
	return n
}

// StoragesTouched returns the set of storage ids crossed by the path.
func (ro *Router) StoragesTouched(p Path) map[int]int {
	out := map[int]int{}
	for _, c := range p {
		if !ro.bounds.Contains(c) {
			continue
		}
		if sid := ro.storage[ro.idx(c)]; sid >= 0 {
			out[int(sid)]++
		}
	}
	return out
}

// Route finds a cheapest path from any source to any target cell. Sources
// and targets are terminals (device boundary cells or chip ports): they may
// sit on blocked cells, but the interior of the path only uses passable
// cells. The path includes its terminals.
func (ro *Router) Route(sources, targets []grid.Point) (Path, error) {
	if len(sources) == 0 || len(targets) == 0 {
		return nil, fmt.Errorf("route: empty terminal set")
	}
	ro.epoch++
	if ro.epoch == 0 { // stamp wrap-around: invalidate everything once
		for i := range ro.distSeen {
			ro.distSeen[i], ro.isTgt[i], ro.isSrc[i] = 0, 0, 0
		}
		ro.epoch = 1
	}
	ep := ro.epoch
	liveTargets := 0
	for _, t := range targets {
		if !ro.bounds.Contains(t) {
			return nil, fmt.Errorf("route: target %v out of bounds", t)
		}
		i := ro.idx(t)
		if ro.faulty.get(i) {
			continue
		}
		if ro.isTgt[i] != ep {
			ro.isTgt[i] = ep
			liveTargets++
		}
	}
	if liveTargets == 0 {
		return nil, ErrNoPath // every target cell is a dead valve
	}

	ro.heap = ro.heap[:0]
	seq := 0
	push := func(i int, d int32, from int32) {
		if ro.distSeen[i] == ep && ro.dist[i] <= d {
			return
		}
		ro.distSeen[i] = ep
		ro.dist[i] = d
		ro.prev[i] = from
		seq++
		ro.heapPush(pqItem{dist: d, seq: int32(seq), cell: int32(i)})
	}
	for _, s := range sources {
		if !ro.bounds.Contains(s) {
			return nil, fmt.Errorf("route: source %v out of bounds", s)
		}
		i := ro.idx(s)
		if ro.faulty.get(i) {
			continue
		}
		ro.isSrc[i] = ep
		push(i, 0, -1)
	}

	// Neighbour index offsets in the expansion order +x, -x, +y, -y; the
	// first/last column guards keep ±x from wrapping across rows.
	for len(ro.heap) > 0 {
		it := ro.heapPop()
		ro.Pops++
		i := int(it.cell)
		if it.dist > ro.dist[i] {
			continue // stale entry
		}
		if ro.isTgt[i] == ep {
			return ro.walkBack(i), nil
		}
		d := it.dist
		x := i % ro.w
		if x+1 < ro.w {
			ro.expand(i+1, d, int32(i), push)
		}
		if x > 0 {
			ro.expand(i-1, d, int32(i), push)
		}
		if i+ro.w < ro.cells {
			ro.expand(i+ro.w, d, int32(i), push)
		}
		if i-ro.w >= 0 {
			ro.expand(i-ro.w, d, int32(i), push)
		}
	}
	return nil, ErrNoPath
}

// expand relaxes the edge into cell n at base distance d.
func (ro *Router) expand(n int, d, from int32, push func(int, int32, int32)) {
	if ro.faulty.get(n) {
		return
	}
	if ro.blocked.get(n) && ro.isTgt[n] != ro.epoch {
		return
	}
	push(n, d+ro.cellCost(n), from)
}

// cellCost returns the cost of entering cell i.
func (ro *Router) cellCost(i int) int32 {
	c := int32(FreshCost)
	if ro.prefer.get(i) {
		c = PreferredCost
	}
	if ro.storage[i] >= 0 {
		c += StorageCost
	}
	return c + CrossCost*ro.used[i]
}

// walkBack reconstructs the path ending at cell t.
func (ro *Router) walkBack(t int) Path {
	ep := ro.epoch
	var rev Path
	i := t
	for {
		rev = append(rev, ro.pt(i))
		if ro.isSrc[i] == ep {
			break
		}
		if ro.prev[i] < 0 {
			break
		}
		i = int(ro.prev[i])
	}
	// Reverse.
	for a, b := 0, len(rev)-1; a < b; a, b = a+1, b-1 {
		rev[a], rev[b] = rev[b], rev[a]
	}
	return rev
}

// Crossings counts cells of p that other committed paths already use.
func (ro *Router) Crossings(p Path) int {
	n := 0
	for _, c := range p {
		if ro.bounds.Contains(c) && ro.used[ro.idx(c)] > 0 {
			n++
		}
	}
	return n
}

// pqItem is one heap entry; (dist, seq) is unique per push, giving the
// queue a strict total order.
type pqItem struct {
	dist int32
	seq  int32
	cell int32
}

func pqLess(a, b pqItem) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.seq < b.seq
}

// heapPush inserts it into the router's binary min-heap.
func (ro *Router) heapPush(it pqItem) {
	h := append(ro.heap, it)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !pqLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	ro.heap = h
}

// heapPop removes and returns the minimum entry.
func (ro *Router) heapPop() pqItem {
	h := ro.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && pqLess(h[l], h[small]) {
			small = l
		}
		if r < n && pqLess(h[r], h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	ro.heap = h
	return top
}
