// Package route decides the fluid transport paths of the synthesis result
// (the paper's Sections 3.5 and Algorithm 1 L10-L19): Dijkstra's shortest
// path on the valve lattice, with higher costs on cells already used by
// previously-routed paths (so parallel transports avoid crossing), optional
// pass-through of in situ storages that still have free space (Fig. 8), and
// rip-up & re-route when a storage must become an obstacle.
package route

import (
	"container/heap"
	"fmt"

	"mfsynth/internal/grid"
	"mfsynth/internal/synerr"
)

// Default cost weights. Costs are per cell entered.
const (
	// FreshCost is the cost of a cell no valve has used yet. It exceeds
	// PreferredCost so paths reuse already-actuated valves (ring valves and
	// earlier paths) instead of consuming fresh virtual valves, which keeps
	// the manufactured valve count low.
	FreshCost = 2
	// PreferredCost is the cost of a cell marked by Prefer.
	PreferredCost = 1
	// StorageCost is the extra cost of crossing a storage cell; small, so a
	// pass-through still beats a long detour, but free cells are preferred.
	StorageCost = 1
	// CrossCost is the extra cost per previous path using a cell within the
	// same time step; high enough that crossings happen only when
	// unavoidable.
	CrossCost = 64
)

// ErrNoPath reports that no path exists between the given terminals. It
// wraps synerr.ErrUnroutable, so errors.Is(err, synerr.ErrUnroutable)
// matches it across package boundaries.
var ErrNoPath = fmt.Errorf("route: no path: %w", synerr.ErrUnroutable)

// Path is a cell sequence from a source terminal to a target terminal.
type Path []grid.Point

// Router routes the transports of one time step over the valve lattice.
type Router struct {
	bounds grid.Rect

	blocked map[grid.Point]bool
	faulty  map[grid.Point]bool // defective valves: impassable even as terminals
	storage map[grid.Point]int  // cell -> storage id
	used    map[grid.Point]int  // cell -> number of committed paths
	prefer  map[grid.Point]bool // cells whose valves actuate anyway

	// Pops counts priority-queue extractions across all Route calls on
	// this router — the Dijkstra work metric the observability layer
	// aggregates into route.dijkstra_pops.
	Pops int
}

// New returns a router over the given lattice bounds.
func New(bounds grid.Rect) *Router {
	return &Router{
		bounds:  bounds,
		blocked: map[grid.Point]bool{},
		faulty:  map[grid.Point]bool{},
		storage: map[grid.Point]int{},
		used:    map[grid.Point]int{},
		prefer:  map[grid.Point]bool{},
	}
}

// BlockFaulty marks defective valves as impassable. Unlike Block, a faulty
// cell is excluded even when it is a terminal: a stuck valve at a device
// boundary makes that boundary cell unusable, it does not become reachable
// just because a transport ends there.
func (ro *Router) BlockFaulty(cells []grid.Point) {
	for _, c := range cells {
		ro.faulty[c] = true
	}
}

// Prefer marks cells whose valves are actuated anyway (device rings,
// already-committed paths of earlier time steps): paths favour them over
// fresh cells.
func (ro *Router) Prefer(cells []grid.Point) {
	for _, c := range cells {
		ro.prefer[c] = true
	}
}

// Block marks every cell of r as impassable (an active device footprint or a
// full storage).
func (ro *Router) Block(r grid.Rect) {
	for _, p := range r.Points() {
		ro.blocked[p] = true
	}
}

// AddStorage marks the cells of rect as belonging to storage id: passable
// with a small penalty until BlockStorage is called.
func (ro *Router) AddStorage(id int, rect grid.Rect) {
	for _, p := range rect.Points() {
		ro.storage[p] = id
	}
}

// BlockStorage turns storage id into an obstacle (Algorithm 1 L15: "Forbid
// (s,p) from overlapping with each other").
func (ro *Router) BlockStorage(id int) {
	for p, sid := range ro.storage {
		if sid == id {
			ro.blocked[p] = true
		}
	}
}

// Commit records a routed path so later routes see its cells as expensive.
func (ro *Router) Commit(p Path) {
	for _, c := range p {
		ro.used[c]++
	}
}

// Rip removes a previously committed path (rip-up & re-route).
func (ro *Router) Rip(p Path) {
	for _, c := range p {
		if ro.used[c] > 0 {
			ro.used[c]--
		}
	}
}

// StorageCells returns how many cells of path lie inside storage id —
// the intrusion area checked against the storage's free space.
func (ro *Router) StorageCells(p Path, id int) int {
	n := 0
	for _, c := range p {
		if sid, ok := ro.storage[c]; ok && sid == id {
			n++
		}
	}
	return n
}

// StoragesTouched returns the set of storage ids crossed by the path.
func (ro *Router) StoragesTouched(p Path) map[int]int {
	out := map[int]int{}
	for _, c := range p {
		if sid, ok := ro.storage[c]; ok {
			out[sid]++
		}
	}
	return out
}

// Route finds a cheapest path from any source to any target cell. Sources
// and targets are terminals (device boundary cells or chip ports): they may
// sit on blocked cells, but the interior of the path only uses passable
// cells. The path includes its terminals.
func (ro *Router) Route(sources, targets []grid.Point) (Path, error) {
	if len(sources) == 0 || len(targets) == 0 {
		return nil, fmt.Errorf("route: empty terminal set")
	}
	targetSet := make(map[grid.Point]bool, len(targets))
	for _, t := range targets {
		if !ro.bounds.Contains(t) {
			return nil, fmt.Errorf("route: target %v out of bounds", t)
		}
		if ro.faulty[t] {
			continue
		}
		targetSet[t] = true
	}
	if len(targetSet) == 0 {
		return nil, ErrNoPath // every target cell is a dead valve
	}

	dist := map[grid.Point]int{}
	prev := map[grid.Point]grid.Point{}
	var pq pqueue
	seq := 0
	push := func(p grid.Point, d int, from grid.Point, hasFrom bool) {
		if old, ok := dist[p]; ok && old <= d {
			return
		}
		dist[p] = d
		if hasFrom {
			prev[p] = from
		}
		seq++
		heap.Push(&pq, pqItem{p: p, dist: d, seq: seq})
	}
	for _, s := range sources {
		if !ro.bounds.Contains(s) {
			return nil, fmt.Errorf("route: source %v out of bounds", s)
		}
		if ro.faulty[s] {
			continue
		}
		push(s, 0, grid.Point{}, false)
	}

	dirs := []grid.Point{{X: 1, Y: 0}, {X: -1, Y: 0}, {X: 0, Y: 1}, {X: 0, Y: -1}}
	for pq.Len() > 0 {
		it := heap.Pop(&pq).(pqItem)
		ro.Pops++
		if it.dist > dist[it.p] {
			continue // stale entry
		}
		if targetSet[it.p] {
			return ro.walkBack(it.p, sources, prev), nil
		}
		for _, d := range dirs {
			n := it.p.Add(d)
			if !ro.bounds.Contains(n) {
				continue
			}
			if ro.faulty[n] {
				continue
			}
			if ro.blocked[n] && !targetSet[n] {
				continue
			}
			push(n, it.dist+ro.cellCost(n), it.p, true)
		}
	}
	return nil, ErrNoPath
}

// cellCost returns the cost of entering cell p.
func (ro *Router) cellCost(p grid.Point) int {
	c := FreshCost
	if ro.prefer[p] {
		c = PreferredCost
	}
	if _, ok := ro.storage[p]; ok {
		c += StorageCost
	}
	c += CrossCost * ro.used[p]
	return c
}

// walkBack reconstructs the path ending at t.
func (ro *Router) walkBack(t grid.Point, sources []grid.Point, prev map[grid.Point]grid.Point) Path {
	isSource := make(map[grid.Point]bool, len(sources))
	for _, s := range sources {
		isSource[s] = true
	}
	var rev Path
	p := t
	for {
		rev = append(rev, p)
		if isSource[p] {
			break
		}
		q, ok := prev[p]
		if !ok {
			break
		}
		p = q
	}
	// Reverse.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Crossings counts cells of p that other committed paths already use.
func (ro *Router) Crossings(p Path) int {
	n := 0
	for _, c := range p {
		if ro.used[c] > 0 {
			n++
		}
	}
	return n
}

// pqueue is a min-heap of (dist, seq) for deterministic Dijkstra.
type pqItem struct {
	p    grid.Point
	dist int
	seq  int
}

type pqueue []pqItem

func (q pqueue) Len() int { return len(q) }
func (q pqueue) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return q[i].seq < q[j].seq
}
func (q pqueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pqueue) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pqueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}
