package route

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"mfsynth/internal/grid"
)

// randPoint draws a point in bounds.
func randPoint(rng *rand.Rand, b grid.Rect) grid.Point {
	return grid.Point{X: b.X0 + rng.Intn(b.W()), Y: b.Y0 + rng.Intn(b.H())}
}

// randRect draws a small rectangle overlapping bounds.
func randRect(rng *rand.Rand, b grid.Rect) grid.Rect {
	p := randPoint(rng, b)
	return grid.RectWH(p.X, p.Y, 1+rng.Intn(3), 1+rng.Intn(3))
}

// TestFlatMatchesMap drives the flat-array router and the retained
// map-based implementation through identical randomized scenarios —
// obstacles, faulty valves, storages (some later blocked), preferred
// rings, committed and ripped paths, multi-terminal queries — and requires
// identical paths, identical errors and identical pop counts from every
// Route call.
func TestFlatMatchesMap(t *testing.T) {
	for seed := int64(1); seed <= 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := grid.Rect{X0: 0, Y0: 0, X1: 4 + rng.Intn(12), Y1: 4 + rng.Intn(12)}
		if rng.Intn(4) == 0 { // exercise non-zero origins too
			b.X0, b.Y0, b.X1, b.Y1 = b.X0+3, b.Y0+2, b.X1+3, b.Y1+2
		}
		flat := New(b)
		ref := newMapRouter(b)

		// Shared random setup.
		var faulty []grid.Point
		for i := rng.Intn(5); i > 0; i-- {
			faulty = append(faulty, randPoint(rng, b))
		}
		flat.BlockFaulty(faulty)
		ref.BlockFaulty(faulty)
		for i := rng.Intn(3); i > 0; i-- {
			r := randRect(rng, b)
			flat.Block(r)
			ref.Block(r)
		}
		var prefer []grid.Point
		for i := rng.Intn(10); i > 0; i-- {
			prefer = append(prefer, randPoint(rng, b))
		}
		flat.Prefer(prefer)
		ref.Prefer(prefer)
		nStor := rng.Intn(3)
		for id := 0; id < nStor; id++ {
			r := randRect(rng, b)
			flat.AddStorage(id, r)
			ref.AddStorage(id, r)
		}

		// A sequence of queries with commits, rips and storage blocks in
		// between — the shape of a rip-up & re-route loop.
		var committed []Path
		for q := 0; q < 6; q++ {
			ns, nt := 1+rng.Intn(3), 1+rng.Intn(3)
			var sources, targets []grid.Point
			for i := 0; i < ns; i++ {
				sources = append(sources, randPoint(rng, b))
			}
			for i := 0; i < nt; i++ {
				targets = append(targets, randPoint(rng, b))
			}

			fp, ferr := flat.Route(sources, targets)
			mp, merr := ref.Route(sources, targets)
			if fmt.Sprint(ferr) != fmt.Sprint(merr) {
				t.Fatalf("seed %d q%d: error %v, map %v", seed, q, ferr, merr)
			}
			if !reflect.DeepEqual(fp, mp) {
				t.Fatalf("seed %d q%d: path %v, map %v", seed, q, fp, mp)
			}
			if flat.Pops != ref.Pops {
				t.Fatalf("seed %d q%d: pops %d, map %d", seed, q, flat.Pops, ref.Pops)
			}
			if fp == nil {
				continue
			}
			if flat.Crossings(fp) != ref.Crossings(mp) {
				t.Fatalf("seed %d q%d: crossings diverge", seed, q)
			}
			if !reflect.DeepEqual(flat.StoragesTouched(fp), ref.StoragesTouched(mp)) {
				t.Fatalf("seed %d q%d: storages touched diverge", seed, q)
			}
			for id := 0; id < nStor; id++ {
				if flat.StorageCells(fp, id) != ref.StorageCells(mp, id) {
					t.Fatalf("seed %d q%d: storage cells diverge for id %d", seed, q, id)
				}
			}

			flat.Commit(fp)
			ref.Commit(mp)
			committed = append(committed, fp)
			switch {
			case rng.Intn(3) == 0 && len(committed) > 0:
				i := rng.Intn(len(committed))
				flat.Rip(committed[i])
				ref.Rip(committed[i])
			case rng.Intn(4) == 0 && nStor > 0:
				id := rng.Intn(nStor)
				flat.BlockStorage(id)
				ref.BlockStorage(id)
			}
		}
	}
}

// TestFlatErrors pins the terminal-validation error messages the
// simulation layer string-matches on.
func TestFlatErrors(t *testing.T) {
	b := grid.Rect{X0: 0, Y0: 0, X1: 5, Y1: 5}
	ro := New(b)
	if _, err := ro.Route(nil, []grid.Point{{X: 1, Y: 1}}); err == nil || err.Error() != "route: empty terminal set" {
		t.Fatalf("empty sources: %v", err)
	}
	if _, err := ro.Route([]grid.Point{{X: 1, Y: 1}}, nil); err == nil || err.Error() != "route: empty terminal set" {
		t.Fatalf("empty targets: %v", err)
	}
	out := grid.Point{X: 9, Y: 9}
	if _, err := ro.Route([]grid.Point{{X: 1, Y: 1}}, []grid.Point{out}); err == nil || err.Error() != fmt.Sprintf("route: target %v out of bounds", out) {
		t.Fatalf("oob target: %v", err)
	}
	if _, err := ro.Route([]grid.Point{out}, []grid.Point{{X: 1, Y: 1}}); err == nil || err.Error() != fmt.Sprintf("route: source %v out of bounds", out) {
		t.Fatalf("oob source: %v", err)
	}
}

// TestRouterReset checks a Reset router behaves like a fresh one.
func TestRouterReset(t *testing.T) {
	b := grid.Rect{X0: 0, Y0: 0, X1: 8, Y1: 8}
	ro := New(b)
	ro.Block(grid.RectWH(2, 0, 1, 7))
	ro.BlockFaulty([]grid.Point{{X: 5, Y: 5}})
	ro.AddStorage(0, grid.RectWH(4, 4, 2, 2))
	ro.Prefer([]grid.Point{{X: 1, Y: 1}})
	p, err := ro.Route([]grid.Point{{X: 0, Y: 0}}, []grid.Point{{X: 7, Y: 7}})
	if err != nil || len(p) == 0 {
		t.Fatalf("route: %v %v", p, err)
	}
	ro.Commit(p)
	ro.Reset()
	if ro.Pops != 0 {
		t.Fatalf("Pops not reset: %d", ro.Pops)
	}
	fresh := New(b)
	for q := 0; q < 3; q++ {
		src := []grid.Point{{X: q, Y: 0}}
		tgt := []grid.Point{{X: 7, Y: 7 - q}}
		a, aerr := ro.Route(src, tgt)
		f, ferr := fresh.Route(src, tgt)
		if fmt.Sprint(aerr) != fmt.Sprint(ferr) || !reflect.DeepEqual(a, f) {
			t.Fatalf("q%d: reset router diverges: %v/%v vs %v/%v", q, a, aerr, f, ferr)
		}
		if ro.Pops != fresh.Pops {
			t.Fatalf("q%d: pops %d vs fresh %d", q, ro.Pops, fresh.Pops)
		}
	}
}
