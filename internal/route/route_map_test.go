package route

// The original map-based router, retained verbatim as a differential
// oracle: TestFlatMatchesMap drives it and the flat-array Router through
// identical randomized scenarios and requires identical paths, errors and
// pop counts.

import (
	"container/heap"
	"fmt"

	"mfsynth/internal/grid"
)

type mapRouter struct {
	bounds grid.Rect

	blocked map[grid.Point]bool
	faulty  map[grid.Point]bool
	storage map[grid.Point]int
	used    map[grid.Point]int
	prefer  map[grid.Point]bool

	Pops int
}

func newMapRouter(bounds grid.Rect) *mapRouter {
	return &mapRouter{
		bounds:  bounds,
		blocked: map[grid.Point]bool{},
		faulty:  map[grid.Point]bool{},
		storage: map[grid.Point]int{},
		used:    map[grid.Point]int{},
		prefer:  map[grid.Point]bool{},
	}
}

func (ro *mapRouter) BlockFaulty(cells []grid.Point) {
	for _, c := range cells {
		ro.faulty[c] = true
	}
}

func (ro *mapRouter) Prefer(cells []grid.Point) {
	for _, c := range cells {
		ro.prefer[c] = true
	}
}

func (ro *mapRouter) Block(r grid.Rect) {
	for _, p := range r.Points() {
		ro.blocked[p] = true
	}
}

func (ro *mapRouter) AddStorage(id int, rect grid.Rect) {
	for _, p := range rect.Points() {
		ro.storage[p] = id
	}
}

func (ro *mapRouter) BlockStorage(id int) {
	for p, sid := range ro.storage {
		if sid == id {
			ro.blocked[p] = true
		}
	}
}

func (ro *mapRouter) Commit(p Path) {
	for _, c := range p {
		ro.used[c]++
	}
}

func (ro *mapRouter) Rip(p Path) {
	for _, c := range p {
		if ro.used[c] > 0 {
			ro.used[c]--
		}
	}
}

func (ro *mapRouter) StorageCells(p Path, id int) int {
	n := 0
	for _, c := range p {
		if sid, ok := ro.storage[c]; ok && sid == id {
			n++
		}
	}
	return n
}

func (ro *mapRouter) StoragesTouched(p Path) map[int]int {
	out := map[int]int{}
	for _, c := range p {
		if sid, ok := ro.storage[c]; ok {
			out[sid]++
		}
	}
	return out
}

func (ro *mapRouter) Route(sources, targets []grid.Point) (Path, error) {
	if len(sources) == 0 || len(targets) == 0 {
		return nil, fmt.Errorf("route: empty terminal set")
	}
	targetSet := make(map[grid.Point]bool, len(targets))
	for _, t := range targets {
		if !ro.bounds.Contains(t) {
			return nil, fmt.Errorf("route: target %v out of bounds", t)
		}
		if ro.faulty[t] {
			continue
		}
		targetSet[t] = true
	}
	if len(targetSet) == 0 {
		return nil, ErrNoPath
	}

	dist := map[grid.Point]int{}
	prev := map[grid.Point]grid.Point{}
	var pq mapPqueue
	seq := 0
	push := func(p grid.Point, d int, from grid.Point, hasFrom bool) {
		if old, ok := dist[p]; ok && old <= d {
			return
		}
		dist[p] = d
		if hasFrom {
			prev[p] = from
		}
		seq++
		heap.Push(&pq, mapPqItem{p: p, dist: d, seq: seq})
	}
	for _, s := range sources {
		if !ro.bounds.Contains(s) {
			return nil, fmt.Errorf("route: source %v out of bounds", s)
		}
		if ro.faulty[s] {
			continue
		}
		push(s, 0, grid.Point{}, false)
	}

	dirs := []grid.Point{{X: 1, Y: 0}, {X: -1, Y: 0}, {X: 0, Y: 1}, {X: 0, Y: -1}}
	for pq.Len() > 0 {
		it := heap.Pop(&pq).(mapPqItem)
		ro.Pops++
		if it.dist > dist[it.p] {
			continue
		}
		if targetSet[it.p] {
			return ro.walkBack(it.p, sources, prev), nil
		}
		for _, d := range dirs {
			n := it.p.Add(d)
			if !ro.bounds.Contains(n) {
				continue
			}
			if ro.faulty[n] {
				continue
			}
			if ro.blocked[n] && !targetSet[n] {
				continue
			}
			push(n, it.dist+ro.cellCost(n), it.p, true)
		}
	}
	return nil, ErrNoPath
}

func (ro *mapRouter) cellCost(p grid.Point) int {
	c := FreshCost
	if ro.prefer[p] {
		c = PreferredCost
	}
	if _, ok := ro.storage[p]; ok {
		c += StorageCost
	}
	c += CrossCost * ro.used[p]
	return c
}

func (ro *mapRouter) walkBack(t grid.Point, sources []grid.Point, prev map[grid.Point]grid.Point) Path {
	isSource := make(map[grid.Point]bool, len(sources))
	for _, s := range sources {
		isSource[s] = true
	}
	var rev Path
	p := t
	for {
		rev = append(rev, p)
		if isSource[p] {
			break
		}
		q, ok := prev[p]
		if !ok {
			break
		}
		p = q
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

func (ro *mapRouter) Crossings(p Path) int {
	n := 0
	for _, c := range p {
		if ro.used[c] > 0 {
			n++
		}
	}
	return n
}

type mapPqItem struct {
	p    grid.Point
	dist int
	seq  int
}

type mapPqueue []mapPqItem

func (q mapPqueue) Len() int { return len(q) }
func (q mapPqueue) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return q[i].seq < q[j].seq
}
func (q mapPqueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *mapPqueue) Push(x interface{}) { *q = append(*q, x.(mapPqItem)) }
func (q *mapPqueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}
