package route

import (
	"testing"

	"mfsynth/internal/grid"
)

// benchRouter is the surface shared by the flat Router and the retained
// map-based oracle, so both run the identical benchmark scenario.
type benchRouter interface {
	BlockFaulty([]grid.Point)
	Prefer([]grid.Point)
	Block(grid.Rect)
	AddStorage(int, grid.Rect)
	Route(sources, targets []grid.Point) (Path, error)
	Commit(Path)
}

var benchBounds = grid.Rect{X0: 0, Y0: 0, X1: 16, Y1: 16}

// runBenchScenario routes six nets across a 16×16 chip with obstacles, a
// storage, preferred cells and committed-path crossings — the shape of one
// time step's routing in the synthesis pipeline.
func runBenchScenario(b *testing.B, ro benchRouter) {
	ro.BlockFaulty([]grid.Point{{X: 5, Y: 5}, {X: 10, Y: 3}})
	ro.Block(grid.RectWH(7, 7, 2, 2))
	ro.Block(grid.RectWH(3, 11, 3, 2))
	ro.AddStorage(0, grid.RectWH(12, 10, 2, 2))
	ro.Prefer([]grid.Point{{X: 2, Y: 2}, {X: 2, Y: 3}, {X: 13, Y: 2}, {X: 13, Y: 3}})
	for i := 0; i < 6; i++ {
		src := []grid.Point{{X: 0, Y: 2 + 2*i}}
		tgt := []grid.Point{{X: 15, Y: 13 - 2*i}}
		p, err := ro.Route(src, tgt)
		if err != nil {
			b.Fatalf("net %d: %v", i, err)
		}
		ro.Commit(p)
	}
}

// BenchmarkRouteNetsMap is the pre-flat-grid router profile: hash-map cell
// state and a container/heap priority queue, one fresh router per scenario
// (the old pipeline allocated a router per net).
func BenchmarkRouteNetsMap(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runBenchScenario(b, newMapRouter(benchBounds))
	}
}

// BenchmarkRouteNetsFlat is the flat-array router profile: bitset and
// epoch-stamped grids with a manual binary heap, one pooled router reset
// between scenarios as the pipeline reuses it between nets.
func BenchmarkRouteNetsFlat(b *testing.B) {
	ro := New(benchBounds)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ro.Reset()
		runBenchScenario(b, ro)
	}
}
