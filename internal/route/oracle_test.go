package route

import (
	"errors"
	"math/rand"
	"testing"

	"mfsynth/internal/grid"
)

// pathCost prices a returned path the way Dijkstra accumulates it: the
// source cell is free, every subsequent cell costs its entry cost.
func pathCost(ro *Router, p Path) int {
	c := 0
	for _, cell := range p[1:] {
		c += int(ro.cellCost(ro.idx(cell)))
	}
	return c
}

// bruteForceCost computes the cheapest source→target cost by Bellman-Ford
// relaxation until fixpoint — no priority queue, no early exit, no tie
// breaking — and returns the minimum over all targets (-1 when unreachable).
// The independent oracle for Router.Route.
func bruteForceCost(ro *Router, sources, targets []grid.Point) int {
	targetSet := map[grid.Point]bool{}
	for _, t := range targets {
		targetSet[t] = true
	}
	const inf = 1 << 30
	dist := map[grid.Point]int{}
	for _, s := range sources {
		dist[s] = 0
	}
	dirs := []grid.Point{{X: 1}, {X: -1}, {Y: 1}, {Y: -1}}
	for changed := true; changed; {
		changed = false
		for _, p := range ro.bounds.Points() {
			dp, ok := dist[p]
			if !ok {
				continue
			}
			// A blocked cell can seed a path (terminals may sit on blocked
			// cells) but is never an intermediate hop; a target is never
			// expanded because Route returns upon reaching it.
			if (ro.blocked.get(ro.idx(p)) && dist[p] != 0) || targetSet[p] {
				continue
			}
			for _, d := range dirs {
				n := p.Add(d)
				if !ro.bounds.Contains(n) {
					continue
				}
				if ro.blocked.get(ro.idx(n)) && !targetSet[n] {
					continue
				}
				if nd := dp + int(ro.cellCost(ro.idx(n))); nd < valueOr(dist, n, inf) {
					dist[n] = nd
					changed = true
				}
			}
		}
	}
	best := -1
	for _, t := range targets {
		if d, ok := dist[t]; ok && (best < 0 || d < best) {
			best = d
		}
	}
	return best
}

func valueOr(m map[grid.Point]int, k grid.Point, def int) int {
	if v, ok := m[k]; ok {
		return v
	}
	return def
}

// randomRouter builds a random small routing instance: scattered blocked
// cells, one storage block, preferred cells and pre-committed traffic.
func randomRouter(rng *rand.Rand) (*Router, []grid.Point, []grid.Point) {
	side := 5 + rng.Intn(4)
	ro := New(grid.RectWH(0, 0, side, side))
	for i := 0; i < rng.Intn(side); i++ {
		ro.Block(grid.RectWH(rng.Intn(side), rng.Intn(side), 1, 1))
	}
	if rng.Intn(2) == 0 {
		ro.AddStorage(1, grid.RectWH(rng.Intn(side-1), rng.Intn(side-1), 2, 2))
	}
	var prefer []grid.Point
	for i := 0; i < rng.Intn(2*side); i++ {
		prefer = append(prefer, grid.Point{X: rng.Intn(side), Y: rng.Intn(side)})
	}
	ro.Prefer(prefer)
	for i := 0; i < rng.Intn(3); i++ {
		var traffic Path
		for j := 0; j < 1+rng.Intn(side); j++ {
			traffic = append(traffic, grid.Point{X: rng.Intn(side), Y: rng.Intn(side)})
		}
		ro.Commit(traffic)
	}
	cell := func() grid.Point { return grid.Point{X: rng.Intn(side), Y: rng.Intn(side)} }
	sources := []grid.Point{cell()}
	targets := []grid.Point{cell()}
	if rng.Intn(2) == 0 {
		sources = append(sources, cell())
		targets = append(targets, cell())
	}
	return ro, sources, targets
}

// checkAgainstOracle routes one instance and compares against the
// brute-force oracle: same reachability verdict, same optimal cost, and a
// well-formed path (connected, on-chip, terminal-to-terminal, interior off
// blocked cells).
func checkAgainstOracle(t *testing.T, ro *Router, sources, targets []grid.Point) {
	t.Helper()
	want := bruteForceCost(ro, sources, targets)
	p, err := ro.Route(sources, targets)
	if err != nil {
		if !errors.Is(err, ErrNoPath) {
			t.Fatalf("route error: %v", err)
		}
		if want >= 0 {
			t.Fatalf("Route says unreachable, oracle finds cost %d", want)
		}
		return
	}
	if want < 0 {
		t.Fatalf("Route found %v, oracle says unreachable", p)
	}
	if got := pathCost(ro, p); got != want {
		t.Fatalf("path cost %d, oracle optimum %d (path %v)", got, want, p)
	}
	srcSet := map[grid.Point]bool{}
	for _, s := range sources {
		srcSet[s] = true
	}
	tgtSet := map[grid.Point]bool{}
	for _, tg := range targets {
		tgtSet[tg] = true
	}
	if !srcSet[p[0]] || !tgtSet[p[len(p)-1]] {
		t.Fatalf("path %v does not connect a source to a target", p)
	}
	for k, c := range p {
		if !ro.bounds.Contains(c) {
			t.Fatalf("path cell %v off chip", c)
		}
		if k > 0 && c.Manhattan(p[k-1]) != 1 {
			t.Fatalf("path discontinuous between %v and %v", p[k-1], c)
		}
		if k > 0 && k < len(p)-1 && ro.blocked.get(ro.idx(c)) && !tgtSet[c] {
			t.Fatalf("path interior crosses blocked cell %v", c)
		}
	}
}

// TestRouteMatchesBruteForce cross-checks Dijkstra against the exhaustive
// relaxation oracle on many random instances.
func TestRouteMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ro, sources, targets := randomRouter(rng)
		checkAgainstOracle(t, ro, sources, targets)
	}
}

// FuzzRouteOracle is the open-ended version of the brute-force cross-check:
// the fuzzer explores instance seeds beyond the fixed test sweep.
func FuzzRouteOracle(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(17))
	f.Add(int64(-3))
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		ro, sources, targets := randomRouter(rng)
		checkAgainstOracle(t, ro, sources, targets)
	})
}

// TestRipUpReroute covers the Algorithm 1 L15 sequence as table-driven
// cases: a path that borrows storage cells is ripped up, the storage is
// blocked, and the re-route must converge to a storage-free path (or an
// honest ErrNoPath when the storage seals the only corridor).
func TestRipUpReroute(t *testing.T) {
	cases := []struct {
		name       string
		storage    grid.Rect
		extraBlock []grid.Rect
		wantPath   bool
	}{
		{
			name:     "detour exists",
			storage:  grid.RectWH(2, 1, 2, 3), // mid-chip storage, rows 1-3
			wantPath: true,
		},
		{
			name:       "storage seals corridor",
			storage:    grid.RectWH(2, 0, 2, 6), // full-height storage wall
			extraBlock: []grid.Rect{
				// No gap left anywhere around the storage column.
			},
			wantPath: false,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ro := New(grid.RectWH(0, 0, 6, 6))
			ro.AddStorage(1, tc.storage)
			for _, b := range tc.extraBlock {
				ro.Block(b)
			}
			sources := []grid.Point{{X: 0, Y: 2}}
			targets := []grid.Point{{X: 5, Y: 2}}

			first, err := ro.Route(sources, targets)
			if err != nil {
				t.Fatalf("initial route: %v", err)
			}
			if ro.StorageCells(first, 1) == 0 {
				t.Fatalf("test premise broken: initial path %v avoids the storage", first)
			}
			ro.Commit(first)

			// The storage turned out to be full: rip up, forbid, re-route.
			ro.Rip(first)
			ro.BlockStorage(1)
			second, err := ro.Route(sources, targets)
			if !tc.wantPath {
				if !errors.Is(err, ErrNoPath) {
					t.Fatalf("want ErrNoPath, got path %v err %v", second, err)
				}
				return
			}
			if err != nil {
				t.Fatalf("re-route: %v", err)
			}
			if n := ro.StorageCells(second, 1); n != 0 {
				t.Fatalf("re-routed path still borrows %d storage cells: %v", n, second)
			}
			if got := pathCost(ro, second); got != bruteForceCost(ro, sources, targets) {
				t.Fatalf("re-routed path cost %d is not optimal", got)
			}
		})
	}
}

// TestCommitAvoidance: once a path is committed, an identical second demand
// must route around it when a same-cost detour exists, because crossing a
// committed cell costs CrossCost.
func TestCommitAvoidance(t *testing.T) {
	ro := New(grid.RectWH(0, 0, 7, 7))
	sources := []grid.Point{{X: 0, Y: 3}}
	targets := []grid.Point{{X: 6, Y: 3}}
	first, err := ro.Route(sources, targets)
	if err != nil {
		t.Fatal(err)
	}
	ro.Commit(first)
	second, err := ro.Route(sources, targets)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := pathCost(ro, second), bruteForceCost(ro, sources, targets); got != want {
		t.Fatalf("second path cost %d, oracle optimum %d", got, want)
	}
	// The shared cells are exactly the unavoidable terminals.
	if n := ro.Crossings(second); n > 2 {
		t.Errorf("second path crosses the committed one on %d cells: %v vs %v", n, second, first)
	}
}
