package route

import (
	"testing"
	"testing/quick"

	"mfsynth/internal/grid"
)

func bounds10() grid.Rect { return grid.RectWH(0, 0, 10, 10) }

func pt(x, y int) grid.Point { return grid.Point{X: x, Y: y} }

func TestStraightLine(t *testing.T) {
	r := New(bounds10())
	p, err := r.Route([]grid.Point{pt(0, 5)}, []grid.Point{pt(9, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 10 {
		t.Fatalf("path length = %d, want 10", len(p))
	}
	if p[0] != pt(0, 5) || p[len(p)-1] != pt(9, 5) {
		t.Fatalf("endpoints = %v..%v", p[0], p[len(p)-1])
	}
	for i := 1; i < len(p); i++ {
		if p[i].Manhattan(p[i-1]) != 1 {
			t.Fatalf("non-adjacent step %v -> %v", p[i-1], p[i])
		}
	}
}

func TestDetourAroundBlock(t *testing.T) {
	r := New(bounds10())
	r.Block(grid.RectWH(4, 0, 2, 9)) // wall with gap at the top
	p, err := r.Route([]grid.Point{pt(0, 0)}, []grid.Point{pt(9, 0)})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range p {
		if grid.RectWH(4, 0, 2, 9).Contains(c) {
			t.Fatalf("path enters blocked cell %v", c)
		}
	}
	// Must detour via y=9: length ≥ 9 + 2*9.
	if len(p) < 27 {
		t.Fatalf("path length = %d, expected a long detour", len(p))
	}
}

func TestNoPath(t *testing.T) {
	r := New(bounds10())
	r.Block(grid.RectWH(4, 0, 2, 10)) // full wall
	_, err := r.Route([]grid.Point{pt(0, 0)}, []grid.Point{pt(9, 0)})
	if err != ErrNoPath {
		t.Fatalf("err = %v, want ErrNoPath", err)
	}
}

func TestTerminalsMayBeBlocked(t *testing.T) {
	// Device footprints are blocked but serve as terminals.
	r := New(bounds10())
	src := grid.RectWH(1, 1, 3, 3)
	dst := grid.RectWH(6, 6, 3, 3)
	r.Block(src)
	r.Block(dst)
	p, err := r.Route(src.Perimeter(), dst.Perimeter())
	if err != nil {
		t.Fatal(err)
	}
	inner := 0
	for _, c := range p {
		if src.Contains(c) || dst.Contains(c) {
			continue
		}
		if r.blocked.get(r.idx(c)) {
			t.Fatalf("interior path cell %v is blocked", c)
		}
		inner++
	}
	if inner == 0 {
		t.Fatal("path has no cells between the devices")
	}
}

func TestStoragePassThroughFig8(t *testing.T) {
	// Fig. 8: a storage sits between source and sink. With free space the
	// path goes straight through; once blocked, it detours.
	r := New(bounds10())
	sk := grid.RectWH(3, 3, 4, 4)
	r.AddStorage(7, sk)
	src := []grid.Point{pt(0, 5)}
	dst := []grid.Point{pt(9, 5)}
	through, err := r.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if n := r.StorageCells(through, 7); n != 4 {
		t.Fatalf("pass-through crosses %d storage cells, want 4", n)
	}
	touched := r.StoragesTouched(through)
	if touched[7] != 4 || len(touched) != 1 {
		t.Fatalf("StoragesTouched = %v", touched)
	}

	r.BlockStorage(7)
	detour, err := r.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if n := r.StorageCells(detour, 7); n != 0 {
		t.Fatalf("detour still crosses %d storage cells", n)
	}
	if len(detour) <= len(through) {
		t.Fatalf("detour (%d) not longer than pass-through (%d)", len(detour), len(through))
	}
}

func TestCrossingAvoidance(t *testing.T) {
	// Two nets whose straight paths cross; the second must avoid the first
	// (the first leaves room to route around its upper end).
	r := New(bounds10())
	p1, err := r.Route([]grid.Point{pt(5, 0)}, []grid.Point{pt(5, 6)})
	if err != nil {
		t.Fatal(err)
	}
	r.Commit(p1)
	p2, err := r.Route([]grid.Point{pt(0, 5)}, []grid.Point{pt(9, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if c := r.Crossings(p2); c != 0 {
		// Crossing is allowed but must be penalised away when an
		// alternative exists; on an empty 10×10 grid it always does.
		t.Fatalf("second path crosses the first %d times", c)
	}
}

func TestCrossingWhenUnavoidable(t *testing.T) {
	// Corridor of height 1: second net must reuse cells of the first.
	r := New(grid.RectWH(0, 0, 10, 1))
	p1, _ := r.Route([]grid.Point{pt(0, 0)}, []grid.Point{pt(9, 0)})
	r.Commit(p1)
	p2, err := r.Route([]grid.Point{pt(1, 0)}, []grid.Point{pt(8, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if r.Crossings(p2) == 0 {
		t.Fatal("crossings should be non-zero in a 1-wide corridor")
	}
}

func TestRipAndReroute(t *testing.T) {
	r := New(bounds10())
	p1, _ := r.Route([]grid.Point{pt(5, 0)}, []grid.Point{pt(5, 9)})
	r.Commit(p1)
	r.Rip(p1)
	p2, err := r.Route([]grid.Point{pt(0, 5)}, []grid.Point{pt(9, 5)})
	if err != nil {
		t.Fatal(err)
	}
	if len(p2) != 10 {
		t.Fatalf("after rip, direct path should be free: len=%d", len(p2))
	}
}

func TestMultiSourceMultiTarget(t *testing.T) {
	r := New(bounds10())
	srcs := []grid.Point{pt(0, 0), pt(0, 9)}
	dsts := []grid.Point{pt(9, 9), pt(5, 9)}
	p, err := r.Route(srcs, dsts)
	if err != nil {
		t.Fatal(err)
	}
	// Best combination: (0,9) -> (5,9), length 6.
	if len(p) != 6 {
		t.Fatalf("path length = %d, want 6", len(p))
	}
	if p[0] != pt(0, 9) || p[len(p)-1] != pt(5, 9) {
		t.Fatalf("endpoints %v..%v", p[0], p[len(p)-1])
	}
}

func TestBoundsChecking(t *testing.T) {
	r := New(bounds10())
	if _, err := r.Route([]grid.Point{pt(-1, 0)}, []grid.Point{pt(5, 5)}); err == nil {
		t.Fatal("out-of-bounds source accepted")
	}
	if _, err := r.Route([]grid.Point{pt(0, 0)}, []grid.Point{pt(10, 10)}); err == nil {
		t.Fatal("out-of-bounds target accepted")
	}
	if _, err := r.Route(nil, []grid.Point{pt(1, 1)}); err == nil {
		t.Fatal("empty source set accepted")
	}
}

func TestDeterminism(t *testing.T) {
	route := func() Path {
		r := New(bounds10())
		r.Block(grid.RectWH(3, 3, 2, 2))
		p, _ := r.Route([]grid.Point{pt(0, 0)}, []grid.Point{pt(9, 9)})
		return p
	}
	a, b := route(), route()
	if len(a) != len(b) {
		t.Fatal("nondeterministic path length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("paths differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: on an empty grid the path length equals Manhattan distance + 1.
func TestShortestProperty(t *testing.T) {
	f := func(ax, ay, bx, by uint8) bool {
		a := pt(int(ax%10), int(ay%10))
		b := pt(int(bx%10), int(by%10))
		r := New(bounds10())
		p, err := r.Route([]grid.Point{a}, []grid.Point{b})
		if err != nil {
			return false
		}
		return len(p) == a.Manhattan(b)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every returned path is connected, in bounds, and avoids blocked
// interior cells.
func TestPathValidityProperty(t *testing.T) {
	f := func(bx, by uint8, seed int64) bool {
		r := New(bounds10())
		blk := grid.RectWH(int(bx%6)+1, int(by%6)+1, 2, 2)
		r.Block(blk)
		src, dst := pt(0, 0), pt(9, 9)
		p, err := r.Route([]grid.Point{src}, []grid.Point{dst})
		if err != nil {
			return false
		}
		if p[0] != src || p[len(p)-1] != dst {
			return false
		}
		for i, c := range p {
			if !bounds10().Contains(c) {
				return false
			}
			if blk.Contains(c) {
				return false
			}
			if i > 0 && c.Manhattan(p[i-1]) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
