package serve

import (
	"fmt"
	"strings"
	"time"

	"mfsynth/internal/assays"
	"mfsynth/internal/baseline"
	"mfsynth/internal/core"
	"mfsynth/internal/fault"
	"mfsynth/internal/graph"
	"mfsynth/internal/place"
	"mfsynth/internal/schedule"
)

// JobRequest is the POST /v1/jobs body. The assay comes either inline
// (Assay, the mfsynth text format) or by benchmark name (Case + Policy,
// which also derives the scheduling policy from the paper's traditional
// design, exactly like the mfsynth CLI). Faults is an optional fault-spec
// text. Options tunes the synthesis.
type JobRequest struct {
	Assay  string      `json:"assay,omitempty"`
	Case   string      `json:"case,omitempty"`
	Policy int         `json:"policy,omitempty"`
	Faults string      `json:"faults,omitempty"`
	Opts   OptionsSpec `json:"options,omitempty"`
}

// OptionsSpec is the JSON form of the synthesis options a client may set.
// Zero values mean "engine default"; Workers is deliberately absent (the
// server owns its parallelism budget, and worker count never changes
// results).
type OptionsSpec struct {
	Grid int `json:"grid,omitempty"`
	// Mode is "rolling" (default), "monolithic" or "greedy".
	Mode string `json:"mode,omitempty"`
	// Mixers maps mixer volume to concurrently usable instances; ignored
	// when Case is set (the case's traditional design provides it).
	Mixers    map[int]int `json:"mixers,omitempty"`
	Detectors int         `json:"detectors,omitempty"`

	TransportDelay            int  `json:"transport_delay,omitempty"`
	PumpActuations            int  `json:"pump_actuations,omitempty"`
	DedicatedPumpValves       int  `json:"dedicated_pump_valves,omitempty"`
	MaxRipups                 int  `json:"max_ripups,omitempty"`
	DisableStoragePassthrough bool `json:"disable_storage_passthrough,omitempty"`
	DisableDegradation        bool `json:"disable_degradation,omitempty"`

	// Backends is the anytime-portfolio spec, comma-separated in priority
	// order ("ilp,greedy,anneal"); empty means the classic single
	// pipeline. The anneal knobs apply only when "anneal" is listed; all
	// of them are part of the request fingerprint, so differently
	// configured portfolios never share a cache entry.
	Backends         string `json:"backends,omitempty"`
	AnnealSeed       int64  `json:"anneal_seed,omitempty"`
	AnnealReplicates int    `json:"anneal_replicates,omitempty"`
	AnnealIters      int    `json:"anneal_iters,omitempty"`

	// DeadlineSeconds caps this job's synthesis wall-clock; it bounds the
	// job context, not the fingerprint (a timed-out request is a 504, not
	// a different problem).
	DeadlineSeconds float64 `json:"deadline_seconds,omitempty"`
}

// resolve turns the wire request into the synthesis inputs: the parsed
// assay, the core options (faults included) and the per-job deadline.
// Errors are client errors (400).
func (req *JobRequest) resolve() (*graph.Assay, core.Options, time.Duration, error) {
	var (
		a    *graph.Assay
		opts core.Options
	)
	switch {
	case req.Assay != "" && req.Case != "":
		return nil, opts, 0, fmt.Errorf("request has both assay text and case name; pick one")
	case req.Assay != "":
		parsed, err := assays.Parse(strings.NewReader(req.Assay))
		if err != nil {
			return nil, opts, 0, fmt.Errorf("bad assay: %w", err)
		}
		a = parsed
		opts.Policy = schedule.Resources{Mixers: req.Opts.Mixers, Detectors: req.Opts.Detectors}
		if len(opts.Policy.Mixers) == 0 {
			// No policy given: one mixer per distinct volume, like the
			// mfsynth CLI's -assay path.
			opts.Policy.Mixers = map[int]int{}
			for _, id := range a.MixOps() {
				opts.Policy.Mixers[a.Volume(id)] = 1
			}
		}
		opts.Place.Grid = 12
	case req.Case != "":
		c, err := assays.ByName(req.Case)
		if err != nil {
			return nil, opts, 0, fmt.Errorf("bad case: %w", err)
		}
		policy := req.Policy
		if policy == 0 {
			policy = 1
		}
		des, err := baseline.Traditional(c, policy, baseline.DefaultCost)
		if err != nil {
			return nil, opts, 0, fmt.Errorf("bad policy %d for case %s: %w", policy, req.Case, err)
		}
		a = c.Assay
		opts.Policy = schedule.Resources{Mixers: des.Mixers, Detectors: c.Detectors}
		opts.Place.Grid = c.GridSize
	default:
		return nil, opts, 0, fmt.Errorf("request needs an assay text or a case name")
	}
	if err := a.Validate(); err != nil {
		return nil, opts, 0, fmt.Errorf("invalid assay: %w", err)
	}

	o := req.Opts
	if o.Grid > 0 {
		opts.Place.Grid = o.Grid
	}
	switch o.Mode {
	case "", "rolling":
		opts.Place.Mode = place.RollingHorizon
	case "monolithic":
		opts.Place.Mode = place.Monolithic
	case "greedy":
		opts.Place.Mode = place.Greedy
	default:
		return nil, opts, 0, fmt.Errorf("unknown mode %q (want rolling, monolithic or greedy)", o.Mode)
	}
	opts.TransportDelay = o.TransportDelay
	opts.PumpActuations = o.PumpActuations
	opts.DedicatedPumpValves = o.DedicatedPumpValves
	opts.MaxRipups = o.MaxRipups
	opts.DisableStoragePassthrough = o.DisableStoragePassthrough
	opts.DisableDegradation = o.DisableDegradation

	backends, err := core.ParseBackends(o.Backends)
	if err != nil {
		return nil, opts, 0, fmt.Errorf("bad backends %q: %w", o.Backends, err)
	}
	opts.Backends = backends
	opts.Anneal = core.AnnealOptions{
		Seed:       o.AnnealSeed,
		Replicates: o.AnnealReplicates,
		Iters:      o.AnnealIters,
	}

	if req.Faults != "" {
		fs, err := fault.Parse(strings.NewReader(req.Faults))
		if err != nil {
			return nil, opts, 0, fmt.Errorf("bad fault spec: %w", err)
		}
		opts.Faults = fs
	}

	if o.DeadlineSeconds < 0 {
		return nil, opts, 0, fmt.Errorf("negative deadline")
	}
	deadline := time.Duration(o.DeadlineSeconds * float64(time.Second))
	return a, opts, deadline, nil
}
