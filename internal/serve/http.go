package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"

	"mfsynth/internal/obs/export"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs             submit (assay text or case name + options + faults)
//	GET    /v1/jobs/{id}        job status / result JSON
//	GET    /v1/jobs/{id}/events live progress as server-sent events
//	DELETE /v1/jobs/{id}        cancel (queued or running)
//	GET    /v1/stats            queue/cache/admission counters
//	GET    /metrics             the same counters, Prometheus text format
//	GET    /healthz             liveness ("ok", or "draining" with 503)
//
// The rate-limit client identity is the X-Client header when present,
// else the remote address's host part.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// handleMetrics serves the server-level obs registry in Prometheus text
// exposition format. Values are projected from the Stats atomics at
// scrape time, so /metrics and /v1/stats always agree.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.Metrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := export.WriteProm(w, m); err != nil {
		// Headers are gone by the time a write fails; nothing to salvage.
		return
	}
}

func clientID(r *http.Request) string {
	if c := r.Header.Get("X-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// submitResponse is the POST /v1/jobs success body: the job view plus
// how the submission was satisfied ("queued", "coalesced", "cached").
type submitResponse struct {
	JobView
	Via string `json:"via"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.CountBadRequest()
		writeProblem(w, Problem{Type: "bad-request", Title: "malformed JSON body",
			Status: http.StatusBadRequest, Detail: err.Error()})
		return
	}
	a, opts, deadline, err := req.resolve()
	if err != nil {
		s.CountBadRequest()
		writeProblem(w, Problem{Type: "bad-request", Title: "invalid synthesis request",
			Status: http.StatusBadRequest, Detail: err.Error()})
		return
	}
	j, outcome, retry, err := s.Submit(clientID(r), a, opts, deadline)
	if err != nil {
		writeProblem(w, Problem{Type: "bad-request", Title: "invalid synthesis request",
			Status: http.StatusBadRequest, Detail: err.Error()})
		return
	}
	switch outcome {
	case SubmitShedRateLimited:
		writeProblem(w, Problem{Type: "rate-limited", Title: "client over submission rate",
			Status: http.StatusTooManyRequests, Detail: "token bucket empty; slow down",
			RetryAfterSeconds: int(retry.Seconds())})
	case SubmitShedQueueFull:
		writeProblem(w, Problem{Type: "queue-full", Title: "job queue full",
			Status: http.StatusTooManyRequests, Detail: "the server is at capacity; retry later",
			RetryAfterSeconds: int(retry.Seconds())})
	case SubmitShedDraining:
		writeProblem(w, Problem{Type: "draining", Title: "server is draining",
			Status: http.StatusServiceUnavailable, Detail: "shutting down; resubmit elsewhere"})
	default:
		via := map[SubmitOutcome]string{
			SubmitQueued: "queued", SubmitCoalesced: "coalesced", SubmitCached: "cached",
		}[outcome]
		status := http.StatusAccepted
		if outcome == SubmitCached {
			status = http.StatusOK // the result is already in the body
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Location", "/v1/jobs/"+j.ID)
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(submitResponse{JobView: j.View(), Via: via})
	}
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeProblem(w, Problem{Type: "not-found", Title: "no such job",
			Status: http.StatusNotFound})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(j.View())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	_, found := s.Cancel(r.PathValue("id"))
	if !found {
		writeProblem(w, Problem{Type: "not-found", Title: "no such job",
			Status: http.StatusNotFound})
		return
	}
	j, _ := s.Job(r.PathValue("id"))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(j.View())
}

// handleEvents streams the job's live progress as server-sent events:
// one "progress" event per bus snapshot (drop-oldest on slow clients),
// then a final "done" event carrying the terminal JobView. Cached or
// already-finished jobs go straight to "done".
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeProblem(w, Problem{Type: "not-found", Title: "no such job",
			Status: http.StatusNotFound})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	ch, cancel := j.Progress().Subscribe(64)
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	sendDone := func() {
		data, err := json.Marshal(j.View())
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: done\ndata: %s\n\n", data)
		fl.Flush()
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-j.Done():
			sendDone()
			return
		case snap, ok := <-ch:
			if !ok {
				sendDone()
				return
			}
			data, err := json.Marshal(snap)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: progress\ndata: %s\n\n", data); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.Stats().Draining {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}
