package serve

import (
	"math"
	"sync"
	"time"
)

// rateLimiter is per-client token-bucket admission control: each client
// id owns a bucket refilled at rate tokens/second up to burst. A request
// costs one token; an empty bucket is a shed (429) with a Retry-After
// derived from the refill rate, so well-behaved clients back off instead
// of hammering a collapsing server.
//
// Buckets are pruned opportunistically once the table grows past
// maxClients: any bucket that has been idle long enough to refill
// completely carries no state worth keeping (a fresh bucket behaves
// identically), so dropping it cannot grant extra tokens.
type rateLimiter struct {
	rate  float64 // tokens per second; <= 0 disables limiting
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
	now     func() time.Time // injectable clock for tests
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxClients bounds the bucket table before idle pruning kicks in.
const maxClients = 4096

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// Allow spends one token of the client's bucket. When the bucket is
// empty it returns false and the duration after which one token will be
// available (the Retry-After hint).
func (l *rateLimiter) Allow(client string) (ok bool, retryAfter time.Duration) {
	if l == nil || l.rate <= 0 {
		return true, 0
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok2 := l.buckets[client]
	if !ok2 {
		if len(l.buckets) >= maxClients {
			l.prune(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / l.rate
	return false, time.Duration(math.Ceil(need)) * time.Second
}

// prune drops buckets idle long enough to be full again. Called with the
// lock held.
func (l *rateLimiter) prune(now time.Time) {
	idle := time.Duration(l.burst/l.rate*float64(time.Second)) + time.Second
	for id, b := range l.buckets {
		if now.Sub(b.last) > idle {
			delete(l.buckets, id)
		}
	}
}
