package serve

import "sync"

// jobQueue is the bounded FIFO feeding the worker fleet. It wraps a
// buffered channel so workers block cheaply on `range`, and guards pushes
// with a mutex so the queue can be closed during a drain without racing a
// concurrent TryPush (send-on-closed-channel is a panic; this makes it a
// clean rejection instead).
type jobQueue struct {
	mu     sync.Mutex
	ch     chan *Job
	closed bool
}

func newJobQueue(depth int) *jobQueue {
	return &jobQueue{ch: make(chan *Job, depth)}
}

// TryPush enqueues without blocking. It reports false when the queue is
// full (the caller sheds load with 429) or closed (the server is
// draining; the caller replies 503).
func (q *jobQueue) TryPush(j *Job) (ok, closed bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false, true
	}
	select {
	case q.ch <- j:
		return true, false
	default:
		return false, false
	}
}

// Close stops intake. Jobs already queued still reach the workers; the
// worker `range` loop exits once the channel drains.
func (q *jobQueue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		close(q.ch)
	}
}

// Chan is the worker-side receive channel.
func (q *jobQueue) Chan() <-chan *Job { return q.ch }

// Len is the number of queued jobs (approximate under concurrency; used
// for stats and backpressure hints only).
func (q *jobQueue) Len() int { return len(q.ch) }

// Cap is the configured queue depth.
func (q *jobQueue) Cap() int { return cap(q.ch) }
