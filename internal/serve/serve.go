// Package serve is the synthesis-as-a-service tier: it composes the
// deterministic synthesis engine (core.SynthesizeCtx), the canonical
// request fingerprints of internal/verify and the live progress bus of
// internal/obs into a long-running HTTP daemon (cmd/mfserved).
//
// Architecture — one Server owns four cooperating pieces:
//
//	admission   per-client token buckets; empty bucket → 429 + Retry-After
//	queue       bounded FIFO; full queue sheds with 429 instead of collapsing
//	workers     a fixed fleet of goroutines running SynthesizeCtx; in-flight
//	            synthesis never exceeds the worker count
//	cache       LRU of completed results keyed by the canonical request
//	            fingerprint — safe because the engine is deterministic:
//	            equal fingerprints imply bit-identical results
//
// Identical concurrent submissions coalesce onto one Job (one synthesis,
// N waiters); identical later submissions hit the cache. Both paths
// return the same bytes a fresh run would, provable via the result
// fingerprint in every response.
//
// Lifecycle: New starts the fleet; Drain stops intake (new submissions
// get 503), lets queued and running jobs finish within the drain grace,
// then cancels stragglers through their contexts; Close is an immediate
// drain with no grace.
package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mfsynth/internal/core"
	"mfsynth/internal/graph"
	"mfsynth/internal/obs"
	"mfsynth/internal/par"
	"mfsynth/internal/verify"
)

// Config parameterises a Server.
type Config struct {
	// Workers is the synthesis fleet size (0 = runtime.GOMAXPROCS). Each
	// worker runs one job at a time with Workers=1 mapper-internal
	// parallelism, so the fleet size is the process's synthesis budget.
	Workers int
	// QueueDepth bounds the job queue (default 64). A full queue sheds
	// new work with 429 + Retry-After.
	QueueDepth int
	// CacheEntries bounds the LRU result cache (default 512; 0 disables).
	CacheEntries int
	// RatePerSec is the per-client token refill rate (0 = no limiting).
	RatePerSec float64
	// Burst is the per-client bucket size (default 16 when limiting).
	Burst int
	// MaxJobRecords bounds retained job metadata, completed jobs
	// included (default 4096); the oldest finished jobs are forgotten
	// first. Queued or running jobs are never evicted.
	MaxJobRecords int
	// DefaultDeadline caps each job's synthesis wall-clock when the
	// request does not set one (0 = unbounded).
	DefaultDeadline time.Duration
	// OnJobDone, when set, observes every job that reaches a terminal
	// state (done, failed or cancelled — cache-hit jobs included). It is
	// called from worker goroutines and must be safe for concurrent use;
	// cmd/mfserved points it at the job-log sink.
	OnJobDone func(JobView)
}

func (c Config) withDefaults() Config {
	c.Workers = par.Workers(c.Workers)
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 512
	}
	if c.Burst == 0 {
		c.Burst = 16
	}
	if c.MaxJobRecords == 0 {
		c.MaxJobRecords = 4096
	}
	return c
}

// Stats is the /v1/stats payload. Counter identities the load harness
// asserts: Submitted = Accepted + ShedQueueFull + ShedRateLimited +
// ShedDraining + BadRequests, Accepted = Fresh + Coalesced + CacheHits,
// and PeakRunning ≤ Workers.
type Stats struct {
	Workers     int  `json:"workers"`
	QueueDepth  int  `json:"queue_depth"`
	QueueCap    int  `json:"queue_cap"`
	Running     int  `json:"running"`
	PeakRunning int  `json:"peak_running"`
	Draining    bool `json:"draining"`

	Submitted      int64 `json:"submitted"`
	Accepted       int64 `json:"accepted"`
	Fresh          int64 `json:"fresh"`
	Coalesced      int64 `json:"coalesced"`
	CacheHits      int64 `json:"cache_hits"`
	CacheEntries   int   `json:"cache_entries"`
	CacheCap       int   `json:"cache_cap"`
	CacheEvictions int64 `json:"cache_evictions"`

	ShedQueueFull   int64 `json:"shed_queue_full"`
	ShedRateLimited int64 `json:"shed_rate_limited"`
	ShedDraining    int64 `json:"shed_draining"`
	BadRequests     int64 `json:"bad_requests"`

	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
}

// Server is one synthesis service instance.
type Server struct {
	cfg     Config
	queue   *jobQueue
	cache   *resultCache
	limiter *rateLimiter

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	jobOrder []string // creation order, for bounded retention
	inflight map[string]*Job
	nextID   int64
	draining bool

	running     atomic.Int64
	peakRunning atomic.Int64

	submitted, accepted, fresh           atomic.Int64
	coalesced, cacheHits, cacheEvictions atomic.Int64
	shedQueueFull, shedRateLimited       atomic.Int64
	shedDraining, badRequests            atomic.Int64
	completed, failed, cancelled         atomic.Int64

	promMu  sync.Mutex   // serialises scrape-time projection into metrics
	metrics *obs.Metrics // the GET /metrics registry
}

// New builds a Server and starts its worker fleet.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		queue:      newJobQueue(cfg.QueueDepth),
		cache:      newResultCache(cfg.CacheEntries),
		limiter:    newRateLimiter(cfg.RatePerSec, cfg.Burst),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
		inflight:   make(map[string]*Job),
		metrics:    obs.NewMetrics(),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// SubmitOutcome classifies what happened to a submission.
type SubmitOutcome int

// Submission outcomes.
const (
	// SubmitQueued: a fresh job was enqueued.
	SubmitQueued SubmitOutcome = iota
	// SubmitCoalesced: an identical job is already queued or running;
	// the submission shares it.
	SubmitCoalesced
	// SubmitCached: the result cache held the answer; the returned job
	// is already done.
	SubmitCached
	// SubmitShedQueueFull: the queue is full; retry later.
	SubmitShedQueueFull
	// SubmitShedRateLimited: the client is over its rate; retry later.
	SubmitShedRateLimited
	// SubmitShedDraining: the server is shutting down.
	SubmitShedDraining
)

// Submit runs admission control and either returns the job the
// submission landed on (queued, coalesced or cached) or a shed outcome
// with a Retry-After hint. client identifies the rate-limit bucket.
func (s *Server) Submit(client string, a *graph.Assay, opts core.Options, deadline time.Duration) (*Job, SubmitOutcome, time.Duration, error) {
	s.submitted.Add(1)
	if ok, retry := s.limiter.Allow(client); !ok {
		s.shedRateLimited.Add(1)
		return nil, SubmitShedRateLimited, retry, nil
	}
	fp, err := verify.RequestFingerprint(a, opts)
	if err != nil {
		s.badRequests.Add(1)
		return nil, SubmitQueued, 0, fmt.Errorf("serve: unfingerprintable request: %w", err)
	}
	if deadline == 0 {
		deadline = s.cfg.DefaultDeadline
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.shedDraining.Add(1)
		return nil, SubmitShedDraining, 0, nil
	}
	// Coalesce onto an identical in-flight job: one synthesis, N waiters.
	// A job already cancelled while queued is skipped — a new submission
	// should not inherit someone else's cancellation.
	if j, ok := s.inflight[fp]; ok && !j.State().Terminal() {
		j.attach()
		s.mu.Unlock()
		s.accepted.Add(1)
		s.coalesced.Add(1)
		return j, SubmitCoalesced, 0, nil
	}
	// Result cache: a completed identical request answers instantly with
	// the bit-identical result (equal fingerprints ⇒ equal results).
	if res, ok := s.cache.Get(fp); ok {
		id := s.newJobIDLocked()
		j := newJob(s.baseCtx, id, fp, a, opts, 0)
		j.cacheHit = true
		s.rememberLocked(j)
		s.mu.Unlock()
		j.finish(StateDone, res, nil)
		s.accepted.Add(1)
		s.cacheHits.Add(1)
		s.completed.Add(1)
		s.notifyDone(j)
		return j, SubmitCached, 0, nil
	}
	id := s.newJobIDLocked()
	j := newJob(s.baseCtx, id, fp, a, opts, deadline)
	s.inflight[fp] = j
	s.rememberLocked(j)
	s.mu.Unlock()

	ok, closed := s.queue.TryPush(j)
	if !ok {
		s.forgetJob(j, fp)
		if closed {
			s.shedDraining.Add(1)
			return nil, SubmitShedDraining, 0, nil
		}
		s.shedQueueFull.Add(1)
		return nil, SubmitShedQueueFull, time.Second, nil
	}
	s.accepted.Add(1)
	s.fresh.Add(1)
	return j, SubmitQueued, 0, nil
}

// newJobIDLocked mints the next job id; callers hold s.mu.
func (s *Server) newJobIDLocked() string {
	s.nextID++
	return fmt.Sprintf("j%06d", s.nextID)
}

// rememberLocked records the job and evicts the oldest finished records
// beyond MaxJobRecords; callers hold s.mu.
func (s *Server) rememberLocked(j *Job) {
	s.jobs[j.ID] = j
	s.jobOrder = append(s.jobOrder, j.ID)
	if len(s.jobOrder) <= s.cfg.MaxJobRecords {
		return
	}
	kept := s.jobOrder[:0]
	excess := len(s.jobOrder) - s.cfg.MaxJobRecords
	for _, id := range s.jobOrder {
		if excess > 0 {
			if old, ok := s.jobs[id]; ok && old.State().Terminal() {
				delete(s.jobs, id)
				excess--
				continue
			}
		}
		kept = append(kept, id)
	}
	s.jobOrder = kept
}

// forgetJob removes a job that never entered the queue (shed after
// reservation), undoing its registration.
func (s *Server) forgetJob(j *Job, fp string) {
	s.mu.Lock()
	if s.inflight[fp] == j {
		delete(s.inflight, fp)
	}
	delete(s.jobs, j.ID)
	for i, id := range s.jobOrder {
		if id == j.ID {
			s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
}

// Job looks up a job by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel cancels a job by id. The second result reports whether the job
// exists, the first whether the cancel had any effect.
func (s *Server) Cancel(id string) (cancelled, found bool) {
	j, ok := s.Job(id)
	if !ok {
		return false, false
	}
	return j.Cancel(), true
}

// worker is one fleet goroutine: it drains the queue until Close.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue.Chan() {
		s.runJob(j)
	}
}

// runJob executes one job end to end and publishes its terminal state.
func (s *Server) runJob(j *Job) {
	if !j.start() {
		// Cancelled while queued (or already terminal); account for it.
		j.finish(StateCancelled, nil, context.Cause(j.ctx))
		s.cancelled.Add(1)
		s.dropInflight(j)
		s.notifyDone(j)
		return
	}
	n := s.running.Add(1)
	for {
		peak := s.peakRunning.Load()
		if n <= peak || s.peakRunning.CompareAndSwap(peak, n) {
			break
		}
	}
	opts := j.opts
	opts.Workers = 1 // the fleet, not the mapper, owns the parallelism budget
	res, err := core.SynthesizeCtx(j.ctx, j.assay, opts)
	s.running.Add(-1)

	switch {
	case err == nil:
		view := viewOf(res)
		s.cacheEvictions.Add(int64(s.cache.Put(j.Fingerprint, view)))
		s.dropInflight(j)
		j.finish(StateDone, view, nil)
		s.completed.Add(1)
	case j.clientCancelled():
		s.dropInflight(j)
		j.finish(StateCancelled, nil, err)
		s.cancelled.Add(1)
	default:
		s.dropInflight(j)
		j.finish(StateFailed, nil, err)
		s.failed.Add(1)
	}
	s.notifyDone(j)
}

// notifyDone delivers the terminal JobView to the configured observer.
func (s *Server) notifyDone(j *Job) {
	if s.cfg.OnJobDone != nil {
		s.cfg.OnJobDone(j.View())
	}
}

// dropInflight unregisters the job from the coalescing table.
func (s *Server) dropInflight(j *Job) {
	s.mu.Lock()
	if s.inflight[j.Fingerprint] == j {
		delete(s.inflight, j.Fingerprint)
	}
	s.mu.Unlock()
}

// viewOf flattens a core.Result into the wire form, stamping the result
// fingerprint that proves bit-identity across cache and coalesce paths.
func viewOf(res *core.Result) *ResultView {
	v := &ResultView{
		Fingerprint:    verify.Fingerprint(res),
		Makespan:       res.Schedule.Makespan,
		VsMax1:         res.VsMax1,
		VsPump1:        res.VsPump1,
		VsMax2:         res.VsMax2,
		VsPump2:        res.VsPump2,
		UsedValves:     res.UsedValves,
		RuntimeSeconds: res.Runtime.Seconds(),
		PhaseSeconds:   res.PhaseSeconds,
		Backend:        res.Backend,
		Race:           res.Race,
	}
	if res.Degraded() {
		v.Degraded = true
		v.Degradation = res.Degradation.String()
	}
	return v
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	return Stats{
		Workers:         s.cfg.Workers,
		QueueDepth:      s.queue.Len(),
		QueueCap:        s.queue.Cap(),
		Running:         int(s.running.Load()),
		PeakRunning:     int(s.peakRunning.Load()),
		Draining:        draining,
		Submitted:       s.submitted.Load(),
		Accepted:        s.accepted.Load(),
		Fresh:           s.fresh.Load(),
		Coalesced:       s.coalesced.Load(),
		CacheHits:       s.cacheHits.Load(),
		CacheEntries:    s.cache.Len(),
		CacheCap:        s.cache.Cap(),
		CacheEvictions:  s.cacheEvictions.Load(),
		ShedQueueFull:   s.shedQueueFull.Load(),
		ShedRateLimited: s.shedRateLimited.Load(),
		ShedDraining:    s.shedDraining.Load(),
		BadRequests:     s.badRequests.Load(),
		Completed:       s.completed.Load(),
		Failed:          s.failed.Load(),
		Cancelled:       s.cancelled.Load(),
	}
}

// Metrics returns the server-level obs registry backing GET /metrics.
// Counters are projected into it at scrape time from the same atomics
// Stats reads, so the two endpoints can never disagree; per-job traces
// (which feed the /events SSE stream) are deliberately separate.
func (s *Server) Metrics() *obs.Metrics {
	s.scrapeMetrics()
	return s.metrics
}

// scrapeMetrics projects the Stats snapshot into the Prometheus
// registry. Gauges are set absolutely; counters advance by the delta
// since the last scrape so they stay monotonic even under concurrent
// scrapes (the mutex serialises the read-modify-write).
func (s *Server) scrapeMetrics() {
	s.promMu.Lock()
	defer s.promMu.Unlock()
	st := s.Stats()
	m := s.metrics
	m.Gauge("serve_workers").Set(int64(st.Workers))
	m.Gauge("serve_queue_depth").Set(int64(st.QueueDepth))
	m.Gauge("serve_queue_cap").Set(int64(st.QueueCap))
	m.Gauge("serve_running").Set(int64(st.Running))
	m.Gauge("serve_running_peak").Set(int64(st.PeakRunning))
	m.Gauge("serve_cache_entries").Set(int64(st.CacheEntries))
	m.Gauge("serve_cache_cap").Set(int64(st.CacheCap))
	var draining int64
	if st.Draining {
		draining = 1
	}
	m.Gauge("serve_draining").Set(draining)
	bump := func(name string, v int64) {
		c := m.Counter(name)
		if d := v - c.Value(); d > 0 {
			c.Add(d)
		}
	}
	bump("serve_submitted_total", st.Submitted)
	bump("serve_accepted_total", st.Accepted)
	bump("serve_fresh_total", st.Fresh)
	bump("serve_coalesced_total", st.Coalesced)
	bump("serve_cache_hits_total", st.CacheHits)
	bump("serve_cache_evictions_total", st.CacheEvictions)
	bump("serve_shed_queue_full_total", st.ShedQueueFull)
	bump("serve_shed_rate_limited_total", st.ShedRateLimited)
	bump("serve_shed_draining_total", st.ShedDraining)
	bump("serve_bad_requests_total", st.BadRequests)
	bump("serve_completed_total", st.Completed)
	bump("serve_failed_total", st.Failed)
	bump("serve_cancelled_total", st.Cancelled)
}

// CountBadRequest records a request rejected before Submit (parse errors
// in the HTTP layer), keeping the Submitted identity intact.
func (s *Server) CountBadRequest() {
	s.submitted.Add(1)
	s.badRequests.Add(1)
}

// Drain gracefully shuts the fleet down: stop accepting, let queued and
// running jobs finish, and when ctx expires cancel the stragglers through
// their contexts and wait for the workers to exit. It returns nil when
// every job finished on its own, or ctx.Err() when the grace ran out
// (jobs were then cancelled, each still receiving a structured
// cancellation response).
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.queue.Close()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel() // cut every job context; workers wind down
		<-done
		return ctx.Err()
	}
}

// Close is an immediate Drain: intake stops and every job is cancelled.
func (s *Server) Close() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.queue.Close()
	s.baseCancel()
	s.wg.Wait()
}
