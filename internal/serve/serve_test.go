package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mfsynth/internal/assays"
	"mfsynth/internal/core"
	"mfsynth/internal/graph"
	"mfsynth/internal/place"
	"mfsynth/internal/schedule"
	"mfsynth/internal/synerr"
	"mfsynth/internal/verify"
)

// tinyAssay builds a minimal mix assay that synthesizes in milliseconds.
func tinyAssay(name string) *graph.Assay {
	a := graph.New(name)
	in1 := a.Add(graph.Input, "s1", 0)
	in2 := a.Add(graph.Input, "s2", 0)
	mix := a.Add(graph.Mix, "m1", 3)
	out := a.Add(graph.Output, "o1", 0)
	a.Connect(in1, mix, 4)
	a.Connect(in2, mix, 4)
	a.Connect(mix, out, 8)
	return a
}

// tinyOpts are fast greedy-mapper options; pump varies the request
// fingerprint without changing the synthesis work.
func tinyOpts(pump int) core.Options {
	return core.Options{
		Policy:         schedule.Resources{Mixers: map[int]int{8: 1}},
		Place:          place.Config{Grid: 10, Mode: place.Greedy},
		PumpActuations: pump,
	}
}

func mustCase(t *testing.T, name string) assays.Case {
	t.Helper()
	c, err := assays.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func waitDone(t *testing.T, j *Job) JobView {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s stuck in state %s", j.ID, j.State())
	}
	return j.View()
}

// TestSubmitRunsAndCaches: a fresh submission synthesizes; an identical
// resubmission is served from the cache with the bit-identical result; a
// distinct request misses.
func TestSubmitRunsAndCaches(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8, CacheEntries: 8})
	defer s.Close()

	j1, outcome, _, err := s.Submit("c1", tinyAssay("t"), tinyOpts(40), 0)
	if err != nil || outcome != SubmitQueued {
		t.Fatalf("first submit: outcome %v err %v", outcome, err)
	}
	v1 := waitDone(t, j1)
	if v1.State != StateDone || v1.Result == nil {
		t.Fatalf("first job: %+v", v1)
	}

	// Single-shot oracle: the service's result is bit-identical to a
	// direct engine run of the same request.
	direct, err := core.Synthesize(tinyAssay("t"), tinyOpts(40))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := v1.Result.Fingerprint, verify.Fingerprint(direct); got != want {
		t.Fatalf("service fingerprint %s != single-shot %s", got, want)
	}

	j2, outcome, _, err := s.Submit("c1", tinyAssay("t"), tinyOpts(40), 0)
	if err != nil || outcome != SubmitCached {
		t.Fatalf("resubmit: outcome %v err %v", outcome, err)
	}
	v2 := j2.View()
	if v2.State != StateDone || !v2.CacheHit {
		t.Fatalf("cached job: %+v", v2)
	}
	if v2.Result.Fingerprint != v1.Result.Fingerprint {
		t.Fatal("cached result fingerprint differs")
	}

	if _, outcome, _, _ := s.Submit("c1", tinyAssay("t"), tinyOpts(41), 0); outcome != SubmitQueued {
		t.Fatalf("distinct request should miss the cache, got %v", outcome)
	}

	st := s.Stats()
	if st.CacheHits != 1 || st.Fresh != 2 || st.Accepted != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestCoalescing: concurrent identical submissions share one synthesis.
func TestCoalescing(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8, CacheEntries: 8})
	defer s.Close()

	// Occupy the single worker so the coalescing window stays open.
	blocker, _, _, err := s.Submit("c", tinyAssay("blocker"), tinyOpts(40), 0)
	if err != nil {
		t.Fatal(err)
	}
	j1, o1, _, err := s.Submit("c", tinyAssay("t"), tinyOpts(40), 0)
	if err != nil || (o1 != SubmitQueued) {
		t.Fatalf("submit 1: %v %v", o1, err)
	}
	j2, o2, _, err := s.Submit("c", tinyAssay("t"), tinyOpts(40), 0)
	if err != nil || o2 != SubmitCoalesced {
		t.Fatalf("submit 2: %v %v", o2, err)
	}
	if j1 != j2 {
		t.Fatal("coalesced submission landed on a different job")
	}
	waitDone(t, blocker)
	v := waitDone(t, j1)
	if v.State != StateDone || v.Coalesced != 1 {
		t.Fatalf("coalesced job view: %+v", v)
	}
	if st := s.Stats(); st.Coalesced != 1 || st.Fresh != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestQueueFullSheds: a full queue sheds with a retry hint instead of
// blocking or collapsing.
func TestQueueFullSheds(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, CacheEntries: 8})
	defer s.Close()

	// Worker busy + queue slot taken ⇒ the third distinct job sheds.
	s.Submit("c", tinyAssay("a"), tinyOpts(40), 0)
	s.Submit("c", tinyAssay("b"), tinyOpts(40), 0)
	var shed bool
	for i := 0; i < 32; i++ {
		_, outcome, retry, err := s.Submit("c", tinyAssay(fmt.Sprintf("x%d", i)), tinyOpts(40), 0)
		if err != nil {
			t.Fatal(err)
		}
		if outcome == SubmitShedQueueFull {
			if retry <= 0 {
				t.Fatal("queue-full shed without a retry hint")
			}
			shed = true
			break
		}
	}
	if !shed {
		t.Fatal("queue never shed")
	}
	if st := s.Stats(); st.ShedQueueFull == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestRateLimiting: an over-rate client is shed with 429 semantics while
// an independent client still gets through.
func TestRateLimiting(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 64, CacheEntries: 8, RatePerSec: 0.001, Burst: 2})
	defer s.Close()

	for i := 0; i < 2; i++ {
		if _, outcome, _, err := s.Submit("greedy", tinyAssay(fmt.Sprintf("r%d", i)), tinyOpts(40), 0); err != nil || outcome == SubmitShedRateLimited {
			t.Fatalf("burst submit %d shed early: %v %v", i, outcome, err)
		}
	}
	_, outcome, retry, err := s.Submit("greedy", tinyAssay("r2"), tinyOpts(40), 0)
	if err != nil || outcome != SubmitShedRateLimited || retry <= 0 {
		t.Fatalf("over-rate submit: %v retry %v err %v", outcome, retry, err)
	}
	if _, outcome, _, _ := s.Submit("polite", tinyAssay("r3"), tinyOpts(40), 0); outcome != SubmitQueued {
		t.Fatalf("independent client shed: %v", outcome)
	}
}

// TestCancelQueuedJob: cancelling a queued job finishes it as cancelled
// without synthesis, and a later identical submission is not poisoned.
func TestCancelQueuedJob(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8, CacheEntries: 8})
	defer s.Close()

	blocker, _, _, _ := s.Submit("c", tinyAssay("blocker"), tinyOpts(40), 0)
	j, _, _, err := s.Submit("c", tinyAssay("victim"), tinyOpts(40), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok, found := s.Cancel(j.ID); !ok || !found {
		t.Fatalf("cancel: ok=%v found=%v", ok, found)
	}
	v := waitDone(t, j)
	if v.State != StateCancelled {
		t.Fatalf("state %s", v.State)
	}
	if v.Error == nil || v.Error.Status != StatusClientClosedRequest {
		t.Fatalf("cancelled job error: %+v", v.Error)
	}
	waitDone(t, blocker)

	// The same request resubmitted must run fresh, not coalesce onto the
	// cancelled record.
	j2, outcome, _, err := s.Submit("c", tinyAssay("victim"), tinyOpts(40), 0)
	if err != nil || outcome != SubmitQueued {
		t.Fatalf("resubmit after cancel: %v %v", outcome, err)
	}
	if v := waitDone(t, j2); v.State != StateDone {
		t.Fatalf("resubmitted job: %+v", v)
	}
}

// TestProblemMapping: the synerr taxonomy maps onto the documented HTTP
// statuses.
func TestProblemMapping(t *testing.T) {
	cases := []struct {
		err       error
		cancelled bool
		status    int
	}{
		{synerr.Infeasible("place", "no fit"), false, http.StatusUnprocessableEntity},
		{synerr.Unroutable("route", "no path"), false, http.StatusUnprocessableEntity},
		{synerr.Deadline("milp", context.DeadlineExceeded), false, http.StatusGatewayTimeout},
		{synerr.Deadline("core", context.Canceled), true, StatusClientClosedRequest},
		{fmt.Errorf("boom"), false, http.StatusInternalServerError},
	}
	for _, tc := range cases {
		p := problemFor(tc.err, tc.cancelled)
		if p.Status != tc.status {
			t.Errorf("problemFor(%v, %v) status = %d, want %d", tc.err, tc.cancelled, p.Status, tc.status)
		}
	}
	if p := problemFor(synerr.Infeasible("place", "x"), false); p.Phase != "place" {
		t.Errorf("phase not extracted: %+v", p)
	}
}

// TestInfeasibleJobFails: an unsolvable request surfaces as a failed job
// carrying a 422 problem.
func TestInfeasibleJobFails(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, CacheEntries: 4})
	defer s.Close()

	// Volume 40 cannot fit any device on a tiny grid.
	a := graph.New("toolarge")
	in := a.Add(graph.Input, "s", 0)
	mix := a.Add(graph.Mix, "m", 3)
	out := a.Add(graph.Output, "o", 0)
	a.Connect(in, mix, 40)
	a.Connect(mix, out, 40)
	opts := core.Options{
		Policy:             schedule.Resources{Mixers: map[int]int{40: 1}},
		Place:              place.Config{Grid: 6, Mode: place.Greedy},
		DisableDegradation: true,
	}
	j, _, _, err := s.Submit("c", a, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	v := waitDone(t, j)
	if v.State != StateFailed || v.Error == nil {
		t.Fatalf("job view: %+v", v)
	}
	if v.Error.Status != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible mapped to %d: %+v", v.Error.Status, v.Error)
	}
	if st := s.Stats(); st.Failed != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// Failures are not cached: a resubmission runs (and fails) afresh.
	if _, outcome, _, _ := s.Submit("c", a, opts, 0); outcome != SubmitQueued {
		t.Fatalf("failed result was cached: %v", outcome)
	}
}

// TestHTTPAPI walks the full HTTP surface: submit by case name, poll,
// stream events, observe a cache hit on resubmission, stats, cancel 404.
func TestHTTPAPI(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8, CacheEntries: 8})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"assay":"assay web\nop s1 input 0\nop s2 input 0\nop m1 mix 3\nop o1 output 0\nedge s1 m1 4\nedge s2 m1 4\nedge m1 o1 8\n","options":{"mode":"greedy","grid":10}}`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sub.Via != "queued" || sub.ID == "" {
		t.Fatalf("submit response: %+v", sub)
	}

	// Events stream: read until the done event arrives.
	eresp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	if ct := eresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	sawDone := false
	sc := bufio.NewScanner(eresp.Body)
	for sc.Scan() {
		if sc.Text() == "event: done" {
			sawDone = true
			break
		}
	}
	if !sawDone {
		t.Fatal("event stream ended without a done event")
	}

	// Poll the completed job.
	var view JobView
	getJSON(t, ts.URL+"/v1/jobs/"+sub.ID, &view)
	if view.State != StateDone || view.Result == nil || view.Result.Fingerprint == "" {
		t.Fatalf("job view: %+v", view)
	}

	// Resubmission hits the cache with HTTP 200 and the identical result.
	resp2, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub2 submitResponse
	if err := json.NewDecoder(resp2.Body).Decode(&sub2); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || sub2.Via != "cached" {
		t.Fatalf("resubmit: status %d via %s", resp2.StatusCode, sub2.Via)
	}
	if sub2.Result == nil || sub2.Result.Fingerprint != view.Result.Fingerprint {
		t.Fatalf("cached response result drifted: %+v", sub2.Result)
	}

	var st Stats
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.CacheHits != 1 || st.Fresh != 1 {
		t.Fatalf("stats: %+v", st)
	}

	// Unknown job: 404 problem for GET and DELETE.
	if resp, _ := http.Get(ts.URL + "/v1/jobs/nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job GET status %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/nope", nil)
	if resp, _ := http.DefaultClient.Do(req); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job DELETE status %d", resp.StatusCode)
	}

	// Malformed body: 400 problem.
	if resp, _ := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed submit status %d", resp.StatusCode)
	}

	// Healthz.
	if resp, _ := http.Get(ts.URL + "/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

// TestHTTPSubmitByCase: the case+policy form resolves the benchmark and
// its traditional-design policy, like the CLI.
func TestHTTPSubmitByCase(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8, CacheEntries: 8})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"case":"PCR","policy":1,"options":{"mode":"greedy"}}`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub submitResponse
	json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %+v", resp.StatusCode, sub)
	}
	j, ok := s.Job(sub.ID)
	if !ok {
		t.Fatal("job not found")
	}
	if v := waitDone(t, j); v.State != StateDone {
		t.Fatalf("PCR job: %+v", v)
	}

	// Unknown case: 400.
	if resp, _ := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"case":"NotABenchmark"}`)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown case status %d", resp.StatusCode)
	}
}

// TestDrainGraceful: with enough grace, Drain lets in-flight jobs finish
// and new submissions are shed with draining semantics.
func TestDrainGraceful(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8, CacheEntries: 8})

	j, _, _, err := s.Submit("c", tinyAssay("d"), tinyOpts(40), 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if v := j.View(); v.State != StateDone {
		t.Fatalf("in-flight job after graceful drain: %+v", v)
	}
	if _, outcome, _, _ := s.Submit("c", tinyAssay("late"), tinyOpts(40), 0); outcome != SubmitShedDraining {
		t.Fatalf("post-drain submit outcome %v", outcome)
	}
}

// TestDrainDeadlineCancels: when the grace runs out, running jobs are cut
// through their contexts and finish with a structured cancellation.
func TestDrainDeadlineCancels(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8, CacheEntries: 8})

	// A monolithic ILP solve on a benchmark takes long enough to outlive
	// a millisecond grace.
	pcr := mustCase(t, "PCR")
	opts := core.Options{
		Policy: schedule.Resources{Mixers: pcr.BaseMixers},
		Place:  place.Config{Grid: pcr.GridSize, Mode: place.Monolithic},
	}
	j, _, _, err := s.Submit("c", pcr.Assay, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err = s.Drain(ctx)
	v := waitDone(t, j)
	if v.State == StateDone {
		return // the job beat the grace; nothing to assert about cancellation
	}
	if err == nil {
		t.Fatal("drain reported clean despite unfinished job")
	}
	if v.State != StateFailed && v.State != StateCancelled {
		t.Fatalf("state %s", v.State)
	}
	if v.Error == nil {
		t.Fatalf("no structured error: %+v", v)
	}
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), into); err != nil {
		t.Fatalf("bad JSON from %s: %v\n%s", url, err, buf.String())
	}
}

// TestBackendCacheIsolation: requests that differ only in their anytime
// portfolio configuration — backend list, priority order, anneal seed —
// never share a cache entry, because the request fingerprint hashes the
// backend and seed options. A collision here would hand a client the
// other portfolio's result verbatim.
func TestBackendCacheIsolation(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8, CacheEntries: 8})
	defer s.Close()

	portfolio := tinyOpts(40)
	portfolio.Backends = []core.Backend{core.BackendGreedy, core.BackendAnneal}
	portfolio.Anneal = core.AnnealOptions{Replicates: 2, Iters: 200}

	j1, outcome, _, err := s.Submit("c1", tinyAssay("t"), portfolio, 0)
	if err != nil || outcome != SubmitQueued {
		t.Fatalf("portfolio submit: outcome %v err %v", outcome, err)
	}
	v1 := waitDone(t, j1)
	if v1.State != StateDone || v1.Result == nil {
		t.Fatalf("portfolio job: %+v", v1)
	}
	if v1.Result.Backend == "" {
		t.Error("portfolio result has no winning backend")
	}
	if v1.Result.Race == nil || len(v1.Result.Race.Lanes) != 2 {
		t.Fatalf("portfolio result race report: %+v", v1.Result.Race)
	}

	// Bit-identical resubmission hits the cache.
	if _, outcome, _, _ := s.Submit("c1", tinyAssay("t"), portfolio, 0); outcome != SubmitCached {
		t.Fatalf("identical portfolio resubmit should hit the cache, got %v", outcome)
	}

	// A different anneal seed is a different request.
	seeded := portfolio
	seeded.Anneal.Seed = 7
	if _, outcome, _, _ := s.Submit("c1", tinyAssay("t"), seeded, 0); outcome != SubmitQueued {
		t.Fatalf("seed change should miss the cache, got %v", outcome)
	}

	// So is a different priority order (it changes the tie-break).
	flipped := portfolio
	flipped.Backends = []core.Backend{core.BackendAnneal, core.BackendGreedy}
	if _, outcome, _, _ := s.Submit("c1", tinyAssay("t"), flipped, 0); outcome != SubmitQueued {
		t.Fatalf("backend order change should miss the cache, got %v", outcome)
	}

	// And so is dropping the portfolio entirely.
	if _, outcome, _, _ := s.Submit("c1", tinyAssay("t"), tinyOpts(40), 0); outcome != SubmitQueued {
		t.Fatalf("classic pipeline should miss the portfolio's cache, got %v", outcome)
	}
}

// TestResolveBackends: the wire spec round-trips into core options, and
// an unknown backend is a client error.
func TestResolveBackends(t *testing.T) {
	req := JobRequest{
		Assay: "assay t\nop s1 input\nop s2 input\nop m1 mix 3\nop o1 output\n" +
			"edge s1 m1 4\nedge s2 m1 4\nedge m1 o1 8\n",
		Opts: OptionsSpec{Backends: "anneal,ilp", AnnealSeed: 9, AnnealReplicates: 2},
	}
	_, opts, _, err := req.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(opts.Backends) != 2 || opts.Backends[0] != core.BackendAnneal {
		t.Fatalf("backends: %v", opts.Backends)
	}
	if opts.Anneal.Seed != 9 || opts.Anneal.Replicates != 2 {
		t.Fatalf("anneal options: %+v", opts.Anneal)
	}

	bad := req
	bad.Opts.Backends = "ilp,tabu"
	if _, _, _, err := bad.resolve(); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

// TestMetricsEndpoint checks GET /metrics serves the admission/queue/
// cache counters in Prometheus text exposition format, agrees with
// /v1/stats, and stays monotonic across scrapes (the projection adds
// deltas; a second scrape must not double counters).
func TestMetricsEndpoint(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4, CacheEntries: 4})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j, outcome, _, err := s.Submit("c", tinyAssay("metrics"), tinyOpts(0), 0)
	if err != nil || outcome != SubmitQueued {
		t.Fatalf("submit: %v %v", outcome, err)
	}
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("job did not finish")
	}

	scrape := func() string {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("metrics status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
			t.Fatalf("metrics content type %q", ct)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	body := scrape()
	for _, want := range []string{
		"# TYPE serve_submitted_total counter",
		"serve_submitted_total 1",
		"serve_completed_total 1",
		"# TYPE serve_workers gauge",
		"serve_workers 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}

	// A second scrape with no new work must report identical counters:
	// the delta projection must not re-add already-counted totals.
	if body2 := scrape(); !strings.Contains(body2, "serve_submitted_total 1") ||
		!strings.Contains(body2, "serve_completed_total 1") {
		t.Fatalf("second scrape drifted:\n%s", body2)
	}

	// And the registry must agree with /v1/stats.
	var st Stats
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Submitted != 1 || st.Completed != 1 {
		t.Fatalf("stats disagree with metrics: %+v", st)
	}
}
