package serve

import (
	"container/list"
	"sync"
)

// resultCache is the LRU result cache, keyed by the canonical request
// fingerprint (verify.RequestFingerprint). Safe because the engine is
// deterministic: equal request fingerprints imply bit-identical results,
// so a cached ResultView can be returned verbatim — its result
// fingerprint equals what a fresh synthesis of the same request would
// produce (the load test asserts exactly this).
type resultCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element
}

type cacheEntry struct {
	key string
	res *ResultView
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached result for the fingerprint and refreshes its
// recency. The returned view is shared and must be treated as immutable.
func (c *resultCache) Get(fp string) (*ResultView, bool) {
	if c == nil || c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[fp]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Put stores a completed result, evicting the least recently used entry
// beyond capacity. It reports the number of evictions (0 or 1).
func (c *resultCache) Put(fp string, res *ResultView) int {
	if c == nil || c.cap <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[fp]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return 0
	}
	c.entries[fp] = c.order.PushFront(&cacheEntry{key: fp, res: res})
	evicted := 0
	for c.order.Len() > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
		evicted++
	}
	return evicted
}

// Cap is the configured capacity (0 = disabled).
func (c *resultCache) Cap() int {
	if c == nil {
		return 0
	}
	return c.cap
}

// Len is the current entry count.
func (c *resultCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
