package serve

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"

	"mfsynth/internal/core"
	"mfsynth/internal/verify"
)

// loadJobs picks the load-test size: MFSERVE_LOAD_JOBS wins, -short runs
// the scaled-down CI variant, the default is the full acceptance load.
func loadJobs(t *testing.T) int {
	if v := os.Getenv("MFSERVE_LOAD_JOBS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 2 {
			t.Fatalf("bad MFSERVE_LOAD_JOBS=%q", v)
		}
		return n
	}
	if testing.Short() {
		return 200
	}
	return 1000
}

// TestLoadConcurrentSubmissions is the service's load harness: it fires
// many concurrent submissions with an exact 50% duplicate ratio and then
// reconciles every acceptance property of the tier —
//
//   - zero failed, cancelled or shed jobs;
//   - in-flight synthesis never exceeds the worker budget (PeakRunning);
//   - Fresh equals the number of distinct requests (each synthesized
//     exactly once) and Coalesced+CacheHits equals the duplicate count;
//   - every response is bit-identical (same result fingerprint) across
//     the fresh, coalesced and cached paths, and sampled requests match
//     a single-shot engine run of the same input.
func TestLoadConcurrentSubmissions(t *testing.T) {
	jobs := loadJobs(t)
	unique := jobs / 2
	jobs = unique * 2 // exact 50% duplicate ratio

	const workers = 4
	s := New(Config{Workers: workers, QueueDepth: jobs, CacheEntries: unique})
	defer s.Close()

	// Each distinct request is the same tiny assay with a distinct pump
	// actuation count: semantically different options, hence different
	// request and result fingerprints, at identical synthesis cost.
	type outcome struct {
		key int
		via SubmitOutcome
		fp  string
	}
	order := make([]int, 0, jobs)
	for k := 0; k < unique; k++ {
		order = append(order, k, k)
	}
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

	results := make([]outcome, jobs)
	var wg sync.WaitGroup
	for i, key := range order {
		wg.Add(1)
		go func(i, key int) {
			defer wg.Done()
			j, via, _, err := s.Submit(fmt.Sprintf("client%d", i%8), tinyAssay("load"), tinyOpts(10+key), 0)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			if j == nil {
				t.Errorf("submit %d shed: %v", i, via)
				return
			}
			<-j.Done()
			v := j.View()
			if v.State != StateDone || v.Result == nil {
				t.Errorf("job %s (req %d): state %s error %+v", j.ID, key, v.State, v.Error)
				return
			}
			results[i] = outcome{key: key, via: via, fp: v.Result.Fingerprint}
		}(i, key)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Bit-identity within each request: all submissions of the same input
	// returned the same result fingerprint, whichever path served them.
	byKey := map[int]string{}
	for _, r := range results {
		if prev, ok := byKey[r.key]; ok && prev != r.fp {
			t.Errorf("request %d: fingerprints diverged: %s vs %s", r.key, prev, r.fp)
		}
		byKey[r.key] = r.fp
	}

	// Bit-identity against the engine: sampled requests match a fresh
	// single-shot run outside the service.
	sample := unique / 20
	if sample < 5 {
		sample = 5
	}
	for i := 0; i < sample; i++ {
		key := (i * unique) / sample
		direct, err := core.Synthesize(tinyAssay("load"), tinyOpts(10+key))
		if err != nil {
			t.Fatalf("single-shot %d: %v", key, err)
		}
		if want := verify.Fingerprint(direct); byKey[key] != want {
			t.Errorf("request %d: service fingerprint %s != single-shot %s", key, byKey[key], want)
		}
	}

	// Counter reconciliation with the driver's duplicate ratio.
	st := s.Stats()
	if st.PeakRunning > workers {
		t.Errorf("peak running %d exceeds worker budget %d", st.PeakRunning, workers)
	}
	if st.Submitted != int64(jobs) || st.Accepted != int64(jobs) {
		t.Errorf("submitted %d accepted %d, want %d of each", st.Submitted, st.Accepted, jobs)
	}
	if st.Fresh != int64(unique) {
		t.Errorf("fresh %d, want %d (each distinct request synthesized exactly once)", st.Fresh, unique)
	}
	if got, want := st.Coalesced+st.CacheHits, int64(jobs-unique); got != want {
		t.Errorf("coalesced %d + cache hits %d = %d, want duplicate count %d",
			st.Coalesced, st.CacheHits, got, want)
	}
	if st.Failed != 0 || st.Cancelled != 0 ||
		st.ShedQueueFull != 0 || st.ShedRateLimited != 0 || st.ShedDraining != 0 || st.BadRequests != 0 {
		t.Errorf("unexpected failures or sheds: %+v", st)
	}
	if st.Completed != int64(jobs-int(st.Coalesced)) {
		t.Errorf("completed %d, want %d (fresh + cache-hit jobs)", st.Completed, jobs-int(st.Coalesced))
	}
	if st.Running != 0 || st.QueueDepth != 0 {
		t.Errorf("work left behind: %+v", st)
	}
	t.Logf("load: %d jobs (%d unique, %d duplicates) — fresh %d, coalesced %d, cached %d, peak running %d/%d",
		jobs, unique, jobs-unique, st.Fresh, st.Coalesced, st.CacheHits, st.PeakRunning, workers)
}
