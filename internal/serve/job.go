package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"mfsynth/internal/core"
	"mfsynth/internal/graph"
	"mfsynth/internal/obs"
)

// State is a job's lifecycle position. Transitions are monotone:
// queued → running → one of {done, failed, cancelled}; a queued job may
// also go straight to cancelled.
type State string

// Job states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// ResultView is the JSON-marshalable summary of a completed synthesis —
// the paper's Table 1 metrics, the degradation report, and the canonical
// result fingerprint that proves cached and coalesced responses are
// bit-identical to a fresh run.
type ResultView struct {
	// Fingerprint is verify.Fingerprint of the full result: the SHA-256
	// over every decision (schedule, placement, routing, events, metrics).
	Fingerprint string `json:"fingerprint"`

	Makespan   int `json:"makespan"`
	VsMax1     int `json:"vs_max1"`
	VsPump1    int `json:"vs_pump1"`
	VsMax2     int `json:"vs_max2"`
	VsPump2    int `json:"vs_pump2"`
	UsedValves int `json:"used_valves"`

	Degraded    bool   `json:"degraded,omitempty"`
	Degradation string `json:"degradation,omitempty"`

	// Backend names the portfolio backend that produced the result; Race
	// itemises every lane of an anytime portfolio run. Both are empty for
	// the classic single pipeline.
	Backend string           `json:"backend,omitempty"`
	Race    *core.RaceReport `json:"race,omitempty"`

	// RuntimeSeconds is this job's synthesis wall-clock; zero when the
	// response was served from the result cache.
	RuntimeSeconds float64            `json:"runtime_seconds,omitempty"`
	PhaseSeconds   map[string]float64 `json:"phase_seconds,omitempty"`
}

// Job is one synthesis submission moving through the queue. Coalesced
// duplicate submissions share a single Job (and hence a single synthesis);
// a cache hit produces a Job born directly in StateDone.
type Job struct {
	// Immutable after creation.
	ID          string
	Fingerprint string
	assay       *graph.Assay
	opts        core.Options
	trace       *obs.Trace // per-job trace: its progress bus feeds /events
	ctx         context.Context
	cancel      context.CancelCauseFunc

	mu         sync.Mutex
	state      State
	result     *ResultView
	err        error
	cacheHit   bool
	coalesced  int64 // extra submissions sharing this job
	queuedAt   time.Time
	startedAt  time.Time
	finishedAt time.Time
	done       chan struct{} // closed exactly once, on the terminal transition
}

// errClientCancelled is the cancellation cause of a DELETE /v1/jobs/{id}:
// it distinguishes "the client gave up" (499) from a server-side deadline
// (504) in the problem mapping.
var errClientCancelled = errors.New("cancelled by client")

// newJob builds a queued job owning its own cancellable context (derived
// from base, so a server drain can cut every job at once) and a per-job
// trace with the progress bus enabled for the /events SSE stream.
func newJob(base context.Context, id, fp string, a *graph.Assay, opts core.Options, deadline time.Duration) *Job {
	ctx, cancelCause := context.WithCancelCause(base)
	stop := func() {}
	if deadline > 0 {
		ctx, stop = context.WithTimeout(ctx, deadline)
	}
	cancel := func(cause error) {
		cancelCause(cause)
		stop()
	}
	tr := obs.New()
	tr.EnableProgress()
	opts.Trace = tr
	return &Job{
		ID:          id,
		Fingerprint: fp,
		assay:       a,
		opts:        opts,
		trace:       tr,
		ctx:         ctx,
		cancel:      cancel,
		state:       StateQueued,
		queuedAt:    time.Now(),
		done:        make(chan struct{}),
	}
}

// Progress exposes the job's live progress bus (never nil).
func (j *Job) Progress() *obs.ProgressBus { return j.trace.ProgressBus() }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// start moves queued → running; it reports false when the job was
// cancelled while waiting in the queue (the worker must skip it).
func (j *Job) start() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	if j.ctx.Err() != nil {
		return false
	}
	j.state = StateRunning
	j.startedAt = time.Now()
	return true
}

// finish records the terminal state exactly once; later calls no-op, so a
// racing cancel and worker completion cannot double-close done.
func (j *Job) finish(state State, res *ResultView, err error) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.result = res
	j.err = err
	j.finishedAt = time.Now()
	close(j.done)
	j.mu.Unlock()
	j.cancel(nil)
}

// Cancel requests cancellation: a queued job is finished as cancelled on
// the spot, a running one has its context cut (the worker then records the
// terminal state). Reports whether the request had any effect.
func (j *Job) Cancel() bool {
	j.mu.Lock()
	switch {
	case j.state.Terminal():
		j.mu.Unlock()
		return false
	case j.state == StateQueued:
		j.state = StateCancelled
		j.err = context.Canceled
		j.finishedAt = time.Now()
		close(j.done)
		j.mu.Unlock()
		j.cancel(errClientCancelled)
		return true
	default: // running
		j.mu.Unlock()
		j.cancel(errClientCancelled)
		return true
	}
}

// clientCancelled reports whether the job's context was cut by Cancel (as
// opposed to a deadline or a server drain).
func (j *Job) clientCancelled() bool {
	return context.Cause(j.ctx) == errClientCancelled && j.ctx.Err() != nil
}

// attach registers one more coalesced submission sharing this job.
func (j *Job) attach() {
	j.mu.Lock()
	j.coalesced++
	j.mu.Unlock()
}

// JobView is the JSON representation of a job's current state.
type JobView struct {
	ID          string      `json:"id"`
	State       State       `json:"state"`
	Fingerprint string      `json:"fingerprint"`
	CacheHit    bool        `json:"cache_hit,omitempty"`
	Coalesced   int64       `json:"coalesced,omitempty"`
	QueuedAt    time.Time   `json:"queued_at"`
	StartedAt   *time.Time  `json:"started_at,omitempty"`
	FinishedAt  *time.Time  `json:"finished_at,omitempty"`
	Result      *ResultView `json:"result,omitempty"`
	Error       *Problem    `json:"error,omitempty"`
}

// View snapshots the job for JSON serialisation.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.ID,
		State:       j.state,
		Fingerprint: j.Fingerprint,
		CacheHit:    j.cacheHit,
		Coalesced:   j.coalesced,
		QueuedAt:    j.queuedAt,
		Result:      j.result,
	}
	if !j.startedAt.IsZero() {
		t := j.startedAt
		v.StartedAt = &t
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		v.FinishedAt = &t
	}
	if j.err != nil {
		p := problemFor(j.err, j.state == StateCancelled)
		v.Error = &p
	}
	return v
}
