package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"mfsynth/internal/synerr"
)

// StatusClientClosedRequest is the non-standard 499 status (nginx
// convention) recorded for jobs cancelled by the client's own DELETE:
// the outcome is no one's error, but it is not a success either.
const StatusClientClosedRequest = 499

// Problem is a structured HTTP error body (application/problem+json,
// RFC 9457 shape). Synthesis failures map through the internal/synerr
// taxonomy:
//
//	ErrInfeasible  → 422 unprocessable (the instance has no solution)
//	ErrUnroutable  → 422 unprocessable (no admissible channel path)
//	ErrDeadline    → 504 gateway timeout (budget exhausted server-side)
//	client cancel  → 499 client closed request
//
// Admission failures use 429 (rate limit / queue full, with Retry-After)
// and 503 (draining); malformed requests use 400.
type Problem struct {
	Type   string `json:"type"`
	Title  string `json:"title"`
	Status int    `json:"status"`
	Detail string `json:"detail,omitempty"`
	// Phase is the pipeline phase a synthesis error originated in
	// ("schedule", "place", "milp", "route"), when known.
	Phase string `json:"phase,omitempty"`
	// RetryAfterSeconds mirrors the Retry-After header on 429 responses.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

// problemFor classifies a synthesis error. clientCancelled marks jobs the
// client itself cancelled, which outrank the generic deadline mapping.
func problemFor(err error, clientCancelled bool) Problem {
	p := Problem{Phase: synerr.Phase(err)}
	switch {
	case clientCancelled:
		p.Type, p.Title, p.Status = "cancelled", "job cancelled by client", StatusClientClosedRequest
	case errors.Is(err, synerr.ErrInfeasible):
		p.Type, p.Title, p.Status = "infeasible", "synthesis infeasible", http.StatusUnprocessableEntity
	case errors.Is(err, synerr.ErrUnroutable):
		p.Type, p.Title, p.Status = "unroutable", "transport unroutable", http.StatusUnprocessableEntity
	case errors.Is(err, synerr.ErrDeadline):
		p.Type, p.Title, p.Status = "deadline", "synthesis deadline exceeded", http.StatusGatewayTimeout
	default:
		p.Type, p.Title, p.Status = "internal", "synthesis failed", http.StatusInternalServerError
	}
	if err != nil {
		p.Detail = err.Error()
	}
	return p
}

// writeProblem sends p as application/problem+json, setting Retry-After
// when the problem carries one.
func writeProblem(w http.ResponseWriter, p Problem) {
	w.Header().Set("Content-Type", "application/problem+json")
	if p.RetryAfterSeconds > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(p.RetryAfterSeconds))
	}
	w.WriteHeader(p.Status)
	json.NewEncoder(w).Encode(p)
}
