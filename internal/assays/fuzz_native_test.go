package assays

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseAssay is the native fuzzer behind the testing/quick property
// tests: the parser must never panic on arbitrary bytes, must reject every
// input it cannot fully validate, and every accepted assay must survive a
// Write→Parse round trip unchanged.
func FuzzParseAssay(f *testing.F) {
	// A well-formed document, a few near-misses, and raw junk.
	var sb strings.Builder
	if err := Write(&sb, PCR().Assay); err != nil {
		f.Fatal(err)
	}
	f.Add([]byte(sb.String()))
	f.Add([]byte("assay demo\nop s input 0\nop m mix 6\nedge s m 4\n"))
	f.Add([]byte("assay demo\nop m mix -6\n"))
	f.Add([]byte("assay demo\nedge a b 4\n"))
	f.Add([]byte("op before header\n"))
	f.Add([]byte("\x00\xff\xfe"))

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := Parse(bytes.NewReader(data))
		if err != nil {
			return // rejection is always fine; panicking is not
		}
		if verr := a.Validate(); verr != nil {
			t.Fatalf("Parse accepted an invalid assay: %v\ninput: %q", verr, data)
		}
		var out strings.Builder
		if werr := Write(&out, a); werr != nil {
			t.Fatalf("accepted assay does not re-serialise: %v\ninput: %q", werr, data)
		}
		back, rerr := Parse(strings.NewReader(out.String()))
		if rerr != nil {
			t.Fatalf("round trip does not re-parse: %v\nserialised: %q", rerr, out.String())
		}
		if back.Len() != a.Len() || back.NumEdges() != a.NumEdges() ||
			back.Stats().String() != a.Stats().String() {
			t.Fatalf("round trip lost structure: %d/%d ops, %d/%d edges\ninput: %q",
				back.Len(), a.Len(), back.NumEdges(), a.NumEdges(), data)
		}
	})
}
