package assays

import (
	"fmt"
	"math/rand"

	"mfsynth/internal/graph"
)

// RandomOptions parameterises Random.
type RandomOptions struct {
	// MixOps is the number of mixing operations (default 8).
	MixOps int
	// MaxFanIn bounds how many mix products one mix may consume (default 2;
	// at least 1 input edge always comes from a port or a product).
	MaxFanIn int
	// Detects adds this many detection operations on random products.
	Detects int
	// Volumes is the catalog of mixing volumes to draw from (default
	// MixerSizes).
	Volumes []int
}

// Random generates a pseudo-random valid bioassay from a seed. The
// construction is reverse-topological: mixing operation i may consume the
// products of operations j > i (at most half of the producer's volume, so
// fluid conservation always holds); remaining demand is fed from input
// ports. The same seed yields the same assay.
func Random(seed int64, opts RandomOptions) *graph.Assay {
	if opts.MixOps <= 0 {
		opts.MixOps = 8
	}
	if opts.MaxFanIn <= 0 {
		opts.MaxFanIn = 2
	}
	if len(opts.Volumes) == 0 {
		opts.Volumes = MixerSizes
	}
	r := rand.New(rand.NewSource(seed))
	a := graph.New(fmt.Sprintf("random%d", seed))

	n := opts.MixOps
	mixes := make([]*graph.Op, n)
	vols := make([]int, n)
	for i := 0; i < n; i++ {
		mixes[i] = a.Add(graph.Mix, fmt.Sprintf("o%d", i+1), DefaultMixDuration)
		vols[i] = opts.Volumes[r.Intn(len(opts.Volumes))]
	}
	// drawn[j] tracks how much of product j is already consumed.
	drawn := make([]int, n)
	inputs := 0
	for i := 0; i < n; i++ {
		need := vols[i]
		// Consume up to MaxFanIn-1 products of later-indexed (deeper) mixes.
		producers := r.Perm(n - i - 1)
		taken := 0
		for _, off := range producers {
			if taken >= opts.MaxFanIn-1 || need <= vols[i]/2 {
				break
			}
			j := i + 1 + off
			avail := vols[j] - drawn[j]
			want := need / 2
			if want < 1 || avail < 1 {
				continue
			}
			if want > avail {
				want = avail
			}
			a.Connect(mixes[j], mixes[i], want)
			drawn[j] += want
			need -= want
			taken++
		}
		// Feed the rest from ports, in at most two streams.
		for need > 0 {
			inputs++
			in := a.Add(graph.Input, fmt.Sprintf("i%d", inputs), 0)
			amount := need
			if amount > 2 && r.Intn(2) == 0 {
				amount = need/2 + r.Intn(need/2)
			}
			a.Connect(in, mixes[i], amount)
			need -= amount
		}
	}
	// Detections on random products with spare volume.
	for d := 0; d < opts.Detects; d++ {
		j := r.Intn(n)
		if vols[j]-drawn[j] < 1 {
			continue
		}
		det := a.Add(graph.Detect, fmt.Sprintf("d%d", d+1), DefaultDetectDuration)
		a.Connect(mixes[j], det, vols[j]-drawn[j])
		drawn[j] = vols[j]
	}
	return a
}
