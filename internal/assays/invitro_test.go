package assays

import (
	"strings"
	"testing"

	"mfsynth/internal/graph"
)

func TestInVitroShape(t *testing.T) {
	a := InVitro(3, 4, 8)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	s := a.Stats()
	if s.MixOps != 12 {
		t.Errorf("mixes = %d, want 3*4", s.MixOps)
	}
	if got := a.CountKind(graph.Detect); got != 12 {
		t.Errorf("detects = %d, want 12", got)
	}
	if got := a.CountKind(graph.Input); got != 7 {
		t.Errorf("inputs = %d, want 3+4", got)
	}
	for _, id := range a.MixOps() {
		if v := a.Volume(id); v != 8 {
			t.Errorf("mix volume = %d, want 8", v)
		}
	}
}

func TestInVitroOddVolume(t *testing.T) {
	a := InVitro(2, 2, 7)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, id := range a.MixOps() {
		if v := a.Volume(id); v != 7 {
			t.Errorf("mix volume = %d, want 7", v)
		}
	}
}

func TestInVitroDOT(t *testing.T) {
	a := InVitro(2, 2, 8)
	var sb strings.Builder
	if err := graph.WriteDOT(&sb, a); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	for _, want := range []string{"digraph", "shape=box", "shape=diamond", "vol 8", `"s1" -> "m1.1"`} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}
