// Package assays provides the benchmark bioassays used in the paper's
// evaluation (Table 1): PCR, Mixing Tree, Interpolating Dilution and
// Exponential Dilution, all from widely used laboratory protocols.
//
// The paper does not publish the exact sequencing graphs, so they are
// reconstructed here from the published summary data: the operation counts
// (#op column: 15(7), 37(18), 71(35), 103(47)) and the per-mixer-size
// operation distributions (#m4-6-8-10 column). The reconstruction rules are:
//
//   - #op counts inputs plus mixing operations (PCR: 8 inputs + 7 mixes).
//   - Tree-shaped cases (PCR, Mixing Tree, Interpolating Dilution) are full
//     binary mixing trees: a tree with n mixing nodes has n+1 input leaves,
//     which reproduces the #op arithmetic of all three cases.
//   - Exponential Dilution is a set of serial dilution chains; each chain of
//     length L has L+1 inputs (sample + buffer for the first step, one
//     buffer per later step). Nine chains totalling 47 steps give
//     47 + 9 + 47 = 103 operations.
//   - Mixing volumes are drawn from the four mixer sizes {4, 6, 8, 10} so
//     that the per-size mixing-operation counts match the p1 binding vector
//     of Table 1 exactly (e.g. PCR: 1-0-4-2 → one size-4, four size-8 and
//     two size-10 mixes).
//   - Within a tree, deeper mixes get larger volumes, so a parent always
//     draws at most half of any child product (fluid conservation holds).
package assays

import (
	"fmt"
	"sort"

	"mfsynth/internal/graph"
)

// DefaultMixDuration is the mixing-operation duration in time units used by
// all benchmark assays.
const DefaultMixDuration = 6

// DefaultDetectDuration is the detection duration in time units.
const DefaultDetectDuration = 4

// MixerSizes lists the dedicated mixer volumes available in the traditional
// designs of the paper's evaluation ("we assume there are 4 different sizes
// of mixers: 4, 6, 8, and 10").
var MixerSizes = []int{4, 6, 8, 10}

// Case bundles a benchmark assay with the evaluation parameters that the
// paper attaches to it.
type Case struct {
	// Assay is the sequencing graph.
	Assay *graph.Assay
	// Detectors is the number of dedicated detectors in the traditional
	// design of this case (derived from Table 1's #d column).
	Detectors int
	// GridSize is the side length of the valve-centered architecture used
	// for the dynamic-device synthesis of this case.
	GridSize int
	// BaseMixers is the traditional design's policy-p1 mixer count per size
	// (from Table 1's #m column; sizes with zero bound operations still get
	// a mixer which the design then drops).
	BaseMixers map[int]int
}

// PCR returns the polymerase chain reaction benchmark: 15 operations, 7 of
// which are mixing operations, arranged as a three-level binary mixing tree
// over 8 inputs. Mixing volumes: 4×8-unit (first level), 2×10-unit (second
// level), 1×4-unit (final mix), matching the p1 binding vector 1-0-4-2.
func PCR() Case {
	a := graph.New("PCR")
	var l1 []*graph.Op
	for i := 0; i < 4; i++ {
		s := a.Add(graph.Input, fmt.Sprintf("s%d", i+1), 0)
		r := a.Add(graph.Input, fmt.Sprintf("r%d", i+1), 0)
		m := a.Add(graph.Mix, fmt.Sprintf("o%d", i+1), DefaultMixDuration)
		a.Connect(s, m, 4)
		a.Connect(r, m, 4)
		l1 = append(l1, m)
	}
	var l2 []*graph.Op
	for i := 0; i < 2; i++ {
		m := a.Add(graph.Mix, fmt.Sprintf("o%d", 5+i), DefaultMixDuration)
		a.Connect(l1[2*i], m, 5)
		a.Connect(l1[2*i+1], m, 5)
		l2 = append(l2, m)
	}
	final := a.Add(graph.Mix, "o7", DefaultMixDuration)
	a.Connect(l2[0], final, 2)
	a.Connect(l2[1], final, 2)
	return Case{Assay: a, Detectors: 0, GridSize: 12,
		BaseMixers: map[int]int{4: 1, 6: 1, 8: 1, 10: 1}}
}

// MixingTree returns the mixing-tree benchmark: 37 operations, 18 mixes in a
// balanced binary tree over 19 inputs. Mix volumes realise the p1 binding
// vector 2-4-5-7 (two size-4, four size-6, five size-8, seven size-10).
func MixingTree() Case {
	a := buildBinaryTree("MixingTree", volumeMultiset(map[int]int{4: 2, 6: 4, 8: 5, 10: 7}))
	return Case{Assay: a, Detectors: 0, GridSize: 12,
		BaseMixers: map[int]int{4: 1, 6: 1, 8: 1, 10: 1}}
}

// InterpolatingDilution returns the interpolating-dilution benchmark [Ren et
// al. 2003]: 71 operations, 35 mixes over 36 inputs. Mix volumes realise the
// p1 binding vector 5-9-9-(6,6) (five size-4, nine size-6, nine size-8,
// twelve size-10 mixing operations).
func InterpolatingDilution() Case {
	a := buildBinaryTree("InterpolatingDilution", volumeMultiset(map[int]int{4: 5, 6: 9, 8: 9, 10: 12}))
	return Case{Assay: a, Detectors: 2, GridSize: 16,
		BaseMixers: map[int]int{4: 1, 6: 1, 8: 1, 10: 2}}
}

// ExponentialDilution returns the exponential-dilution benchmark
// [Chakrabarty & Su 2006]: 103 operations, 47 mixes arranged as nine serial
// 1:1 dilution chains (lengths 6,6,6,6,5,5,5,4,4). Mix volumes realise the
// p1 binding vector 6-(8,8)-(7,6)-(6,6) (six size-4, sixteen size-6,
// thirteen size-8, twelve size-10).
func ExponentialDilution() Case {
	chains := []int{6, 6, 6, 6, 5, 5, 5, 4, 4}
	vols := volumeMultiset(map[int]int{4: 6, 6: 16, 8: 13, 10: 12})
	a := buildDilutionChains("ExponentialDilution", chains, vols)
	return Case{Assay: a, Detectors: 3, GridSize: 16,
		BaseMixers: map[int]int{4: 1, 6: 2, 8: 2, 10: 2}}
}

// ByName returns the benchmark case with the given name. Recognised names
// (case-sensitive): "PCR", "MixingTree", "InterpolatingDilution",
// "ExponentialDilution".
func ByName(name string) (Case, error) {
	switch name {
	case "PCR":
		return PCR(), nil
	case "MixingTree":
		return MixingTree(), nil
	case "InterpolatingDilution":
		return InterpolatingDilution(), nil
	case "ExponentialDilution":
		return ExponentialDilution(), nil
	}
	return Case{}, fmt.Errorf("assays: unknown benchmark %q", name)
}

// Names lists the benchmark names accepted by ByName, in Table 1 order.
func Names() []string {
	return []string{"PCR", "MixingTree", "InterpolatingDilution", "ExponentialDilution"}
}

// volumeMultiset flattens a volume histogram into a descending-sorted slice.
func volumeMultiset(hist map[int]int) []int {
	var vols []int
	for v, n := range hist {
		for i := 0; i < n; i++ {
			vols = append(vols, v)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(vols)))
	return vols
}

// buildBinaryTree builds a full binary mixing tree with len(vols) internal
// nodes in heap layout (node i's children are 2i and 2i+1). Deeper nodes are
// assigned larger volumes so that every parent draws at most half of any
// child product. Leaves become alternating sample/buffer inputs.
func buildBinaryTree(name string, vols []int) *graph.Assay {
	n := len(vols)
	a := graph.New(name)

	// Heap indices 1..n are mixes; deeper (larger) indices get the larger
	// volumes. vols is sorted descending, so assign in reverse heap order.
	volOf := make([]int, n+1)
	for i := 0; i < n; i++ {
		volOf[n-i] = vols[i]
	}
	mixes := make([]*graph.Op, n+1)
	// Create input leaves and mixes bottom-up so that Connect sees both ends.
	inputs := 0
	newInput := func() *graph.Op {
		inputs++
		role := "b" // buffer
		if inputs%2 == 1 {
			role = "s" // sample
		}
		return a.Add(graph.Input, fmt.Sprintf("%s%d", role, inputs), 0)
	}
	for i := n; i >= 1; i-- {
		mixes[i] = a.Add(graph.Mix, fmt.Sprintf("o%d", i), DefaultMixDuration)
	}
	for i := n; i >= 1; i-- {
		half := volOf[i] / 2
		for _, c := range []int{2 * i, 2*i + 1} {
			if c <= n {
				a.Connect(mixes[c], mixes[i], half)
			} else {
				a.Connect(newInput(), mixes[i], half)
			}
		}
	}
	return a
}

// buildDilutionChains builds serial 1:1 dilution chains. chainLens gives the
// number of mixing steps per chain; vols is the descending multiset of step
// volumes, dealt round-robin so every chain ends up with a descending volume
// sequence (a step never draws more than the previous step produced).
func buildDilutionChains(name string, chainLens []int, vols []int) *graph.Assay {
	total := 0
	for _, l := range chainLens {
		total += l
	}
	if total != len(vols) {
		panic(fmt.Sprintf("assays: %d chain steps but %d volumes", total, len(vols)))
	}
	// Deal volumes round-robin; each chain's hand stays descending because
	// the deck is descending.
	hands := make([][]int, len(chainLens))
	deck := 0
	for len(vols) > deck {
		for c := range hands {
			if len(hands[c]) < chainLens[c] && deck < len(vols) {
				hands[c] = append(hands[c], vols[deck])
				deck++
			}
		}
	}

	a := graph.New(name)
	op := 0
	for c, hand := range hands {
		var prev *graph.Op
		for step, v := range hand {
			op++
			m := a.Add(graph.Mix, fmt.Sprintf("o%d", op), DefaultMixDuration)
			buf := a.Add(graph.Input, fmt.Sprintf("b%d.%d", c+1, step+1), 0)
			a.Connect(buf, m, v/2)
			if prev == nil {
				smp := a.Add(graph.Input, fmt.Sprintf("s%d", c+1), 0)
				a.Connect(smp, m, v/2)
			} else {
				a.Connect(prev, m, v/2)
			}
			prev = m
		}
	}
	return a
}

// SerialDilution returns a single 1:1 serial dilution chain with the given
// step volumes (a simple parametric assay for examples and tests).
func SerialDilution(name string, stepVolumes []int) *graph.Assay {
	return buildDilutionChains(name, []int{len(stepVolumes)}, stepVolumes)
}

// InVitro returns an in-vitro diagnostics assay: every one of samples
// physiological fluids is mixed with every one of reagents and the product
// detected — the classic samples×reagents benchmark family of the digital
// and flow-based biochip literature. Each mix uses the given volume and is
// followed by a detection.
func InVitro(samples, reagents, volume int) *graph.Assay {
	a := graph.New(fmt.Sprintf("InVitro%dx%d", samples, reagents))
	ss := make([]*graph.Op, samples)
	for i := range ss {
		ss[i] = a.Add(graph.Input, fmt.Sprintf("s%d", i+1), 0)
	}
	rs := make([]*graph.Op, reagents)
	for j := range rs {
		rs[j] = a.Add(graph.Input, fmt.Sprintf("r%d", j+1), 0)
	}
	for i, s := range ss {
		for j, r := range rs {
			m := a.Add(graph.Mix, fmt.Sprintf("m%d.%d", i+1, j+1), DefaultMixDuration)
			a.Connect(s, m, volume/2)
			a.Connect(r, m, volume-volume/2)
			d := a.Add(graph.Detect, fmt.Sprintf("d%d.%d", i+1, j+1), DefaultDetectDuration)
			a.Connect(m, d, volume)
		}
	}
	return a
}
