package assays

import (
	"strings"
	"testing"

	"mfsynth/internal/graph"
)

// table1 captures the #op column and p1 per-size mixing-op distribution of
// the paper's Table 1 for each benchmark.
var table1 = []struct {
	name      string
	ops       int
	mixes     int
	hist      map[int]int // mixer size -> mixing ops of that size
	detectors int
}{
	{"PCR", 15, 7, map[int]int{4: 1, 8: 4, 10: 2}, 0},
	{"MixingTree", 37, 18, map[int]int{4: 2, 6: 4, 8: 5, 10: 7}, 0},
	{"InterpolatingDilution", 71, 35, map[int]int{4: 5, 6: 9, 8: 9, 10: 12}, 2},
	{"ExponentialDilution", 103, 47, map[int]int{4: 6, 6: 16, 8: 13, 10: 12}, 3},
}

func TestBenchmarksMatchTable1(t *testing.T) {
	for _, tt := range table1 {
		t.Run(tt.name, func(t *testing.T) {
			c, err := ByName(tt.name)
			if err != nil {
				t.Fatal(err)
			}
			a := c.Assay
			if err := a.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			s := a.Stats()
			if s.Ops != tt.ops {
				t.Errorf("#op = %d, want %d", s.Ops, tt.ops)
			}
			if s.MixOps != tt.mixes {
				t.Errorf("#mix = %d, want %d", s.MixOps, tt.mixes)
			}
			for size, want := range tt.hist {
				if got := s.VolumeHistogram[size]; got != want {
					t.Errorf("size-%d mixes = %d, want %d", size, got, want)
				}
			}
			for size := range s.VolumeHistogram {
				if _, ok := tt.hist[size]; !ok {
					t.Errorf("unexpected mixing volume %d", size)
				}
			}
			if c.Detectors != tt.detectors {
				t.Errorf("Detectors = %d, want %d", c.Detectors, tt.detectors)
			}
			if c.GridSize < 8 {
				t.Errorf("GridSize = %d is too small", c.GridSize)
			}
		})
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName accepted unknown benchmark")
	}
}

func TestNamesRoundTrip(t *testing.T) {
	names := Names()
	if len(names) != 4 {
		t.Fatalf("Names = %v", names)
	}
	for _, n := range names {
		if _, err := ByName(n); err != nil {
			t.Errorf("ByName(%q): %v", n, err)
		}
	}
}

// Every mix must be able to draw its inputs: each incoming edge from another
// mix must not exceed that producer's volume.
func TestFluidConservation(t *testing.T) {
	for _, name := range Names() {
		c, _ := ByName(name)
		a := c.Assay
		for _, id := range a.MixOps() {
			for _, e := range a.In(id) {
				src := a.Op(e.From)
				if src.Kind != graph.Mix {
					continue
				}
				if e.Volume > a.Volume(src.ID) {
					t.Errorf("%s: %s draws %d from %s which produces %d",
						name, a.Op(id).Name, e.Volume, src.Name, a.Volume(src.ID))
				}
			}
		}
	}
}

// All mixing volumes must be even (1:1 draws of halves) and within the mixer
// size catalog.
func TestMixVolumesInCatalog(t *testing.T) {
	catalog := map[int]bool{}
	for _, s := range MixerSizes {
		catalog[s] = true
	}
	for _, name := range Names() {
		c, _ := ByName(name)
		for _, id := range c.Assay.MixOps() {
			v := c.Assay.Volume(id)
			if !catalog[v] {
				t.Errorf("%s: mix %s volume %d outside catalog", name, c.Assay.Op(id).Name, v)
			}
		}
	}
}

func TestPCRTreeShape(t *testing.T) {
	c := PCR()
	a := c.Assay
	// Final mix o7 has two mix parents, which have two mix parents each.
	var final int = -1
	for _, id := range a.MixOps() {
		if len(a.Children(id)) == 0 {
			if final != -1 {
				t.Fatal("more than one root mix")
			}
			final = id
		}
	}
	if final == -1 {
		t.Fatal("no root mix")
	}
	if v := a.Volume(final); v != 4 {
		t.Fatalf("final mix volume = %d, want 4", v)
	}
	l2 := a.DeviceParents(final)
	if len(l2) != 2 {
		t.Fatalf("final mix has %d device parents, want 2", len(l2))
	}
	for _, p := range l2 {
		if v := a.Volume(p); v != 10 {
			t.Errorf("second-level mix volume = %d, want 10", v)
		}
		if l1 := a.DeviceParents(p); len(l1) != 2 {
			t.Errorf("second-level mix has %d device parents, want 2", len(l1))
		}
	}
}

func TestExponentialDilutionChains(t *testing.T) {
	c := ExponentialDilution()
	a := c.Assay
	chains := 0
	for _, id := range a.MixOps() {
		if len(a.DeviceParents(id)) == 0 {
			chains++ // chain head: only input parents
		}
		if n := len(a.DeviceParents(id)); n > 1 {
			t.Errorf("mix %s has %d device parents, chains allow at most 1", a.Op(id).Name, n)
		}
	}
	if chains != 9 {
		t.Errorf("found %d chain heads, want 9", chains)
	}
}

func TestSerialDilution(t *testing.T) {
	a := SerialDilution("sd", []int{8, 6, 4})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	s := a.Stats()
	if s.MixOps != 3 || s.Ops != 3+4 {
		t.Fatalf("Stats = %+v", s)
	}
}

func TestParseWriteRoundTrip(t *testing.T) {
	for _, name := range Names() {
		c, _ := ByName(name)
		var sb strings.Builder
		if err := Write(&sb, c.Assay); err != nil {
			t.Fatalf("%s: Write: %v", name, err)
		}
		got, err := Parse(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("%s: Parse: %v", name, err)
		}
		if got.Name != c.Assay.Name || got.Len() != c.Assay.Len() || got.NumEdges() != c.Assay.NumEdges() {
			t.Fatalf("%s: round trip changed shape: %d/%d ops, %d/%d edges",
				name, got.Len(), c.Assay.Len(), got.NumEdges(), c.Assay.NumEdges())
		}
		w1, w2 := got.Stats(), c.Assay.Stats()
		if w1.String() != w2.String() {
			t.Fatalf("%s: round trip stats %v != %v", name, w1, w2)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"empty", "", "missing assay"},
		{"no assay first", "op a input", "before assay"},
		{"bad directive", "assay x\nfoo bar", "unknown directive"},
		{"dup assay", "assay x\nassay y", "duplicate assay"},
		{"dup op", "assay x\nop a input\nop a input", "duplicate op"},
		{"bad kind", "assay x\nop a blender", "unknown kind"},
		{"bad duration", "assay x\nop a mix nope", "bad duration"},
		{"unknown edge op", "assay x\nop a input\nedge a b 4", "unknown op"},
		{"bad volume", "assay x\nop a input\nop b mix\nedge a b vol", "bad volume"},
		{"edge arity", "assay x\nop a input\nop b mix\nedge a b", "want \"edge"},
		{"invalid graph", "assay x\nop a input\nop b mix\nedge a b 1", "volume 1 < 2"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tt.in))
			if err == nil {
				t.Fatalf("Parse accepted %q", tt.in)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("error %q does not contain %q", err, tt.want)
			}
		})
	}
}

func TestParseCommentsAndDurations(t *testing.T) {
	in := `
# a tiny assay
assay tiny
op s1 input
op s2 input
op m1 mix 9
edge s1 m1 2
edge s2 m1 2
`
	a, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "tiny" || a.Len() != 3 {
		t.Fatalf("parsed %q with %d ops", a.Name, a.Len())
	}
	var mix *graph.Op
	for _, op := range a.Ops() {
		if op.Kind == graph.Mix {
			mix = op
		}
	}
	if mix == nil || mix.Duration != 9 {
		t.Fatalf("mix duration not honoured: %+v", mix)
	}
}
