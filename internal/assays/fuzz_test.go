package assays

import (
	"strings"
	"testing"
	"testing/quick"
)

// Property: Write→Parse round-trips every random assay.
func TestRandomRoundTripProperty(t *testing.T) {
	f := func(seed int64, detRaw uint8) bool {
		a := Random(seed, RandomOptions{MixOps: 3 + int(uint(seed)%6), Detects: int(detRaw % 3)})
		if a.Validate() != nil {
			return false
		}
		var sb strings.Builder
		if Write(&sb, a) != nil {
			return false
		}
		got, err := Parse(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		return got.Len() == a.Len() &&
			got.NumEdges() == a.NumEdges() &&
			got.Stats().String() == a.Stats().String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: the parser never panics on arbitrary junk and never returns
// both a nil error and an invalid assay.
func TestParseJunkNeverPanics(t *testing.T) {
	f := func(junk string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		a, err := Parse(strings.NewReader(junk))
		if err == nil && a.Validate() != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	// Adversarial fragments the generator is unlikely to hit.
	for _, s := range []string{
		"assay x\nop a mix -1",
		"assay x\nop a mix 999999999999999999999999",
		"assay\n",
		"assay x\nedge",
		"assay x\nop",
		strings.Repeat("assay x\n", 3),
		"assay x\nop a input\nedge a a 4",
	} {
		func() {
			defer func() {
				if recover() != nil {
					t.Errorf("panic on %q", s)
				}
			}()
			if a, err := Parse(strings.NewReader(s)); err == nil {
				if verr := a.Validate(); verr != nil {
					t.Errorf("Parse accepted %q but Validate fails: %v", s, verr)
				}
			}
		}()
	}
}
