package assays

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"mfsynth/internal/graph"
)

// The assay text format is line oriented:
//
//	# comment
//	assay PCR
//	op s1 input
//	op m1 mix 6
//	op d1 detect 4
//	op w1 output
//	edge s1 m1 4
//
// Operation lines are "op <name> <kind> [duration]"; duration defaults to 0
// for input/output, DefaultMixDuration for mix and DefaultDetectDuration for
// detect. Edges are "edge <from> <to> <volume>" and may only reference
// earlier op lines. Exactly one "assay <name>" line must come first.

// Parse reads an assay in the text format from r.
func Parse(r io.Reader) (*graph.Assay, error) {
	sc := bufio.NewScanner(r)
	var a *graph.Assay
	ops := map[string]*graph.Op{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "assay":
			if len(fields) != 2 {
				return nil, fmt.Errorf("assays: line %d: want \"assay <name>\"", line)
			}
			if a != nil {
				return nil, fmt.Errorf("assays: line %d: duplicate assay line", line)
			}
			a = graph.New(fields[1])
		case "op":
			if a == nil {
				return nil, fmt.Errorf("assays: line %d: op before assay line", line)
			}
			if len(fields) != 3 && len(fields) != 4 {
				return nil, fmt.Errorf("assays: line %d: want \"op <name> <kind> [duration]\"", line)
			}
			name := fields[1]
			if _, dup := ops[name]; dup {
				return nil, fmt.Errorf("assays: line %d: duplicate op %q", line, name)
			}
			kind, dur, err := parseKind(fields[2])
			if err != nil {
				return nil, fmt.Errorf("assays: line %d: %v", line, err)
			}
			if len(fields) == 4 {
				dur, err = strconv.Atoi(fields[3])
				if err != nil || dur < 0 {
					return nil, fmt.Errorf("assays: line %d: bad duration %q", line, fields[3])
				}
			}
			ops[name] = a.Add(kind, name, dur)
		case "edge":
			if a == nil {
				return nil, fmt.Errorf("assays: line %d: edge before assay line", line)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("assays: line %d: want \"edge <from> <to> <volume>\"", line)
			}
			from, ok := ops[fields[1]]
			if !ok {
				return nil, fmt.Errorf("assays: line %d: unknown op %q", line, fields[1])
			}
			to, ok := ops[fields[2]]
			if !ok {
				return nil, fmt.Errorf("assays: line %d: unknown op %q", line, fields[2])
			}
			vol, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("assays: line %d: bad volume %q", line, fields[3])
			}
			a.Connect(from, to, vol)
		default:
			return nil, fmt.Errorf("assays: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("assays: %v", err)
	}
	if a == nil {
		return nil, fmt.Errorf("assays: missing assay line")
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

func parseKind(s string) (graph.Kind, int, error) {
	switch s {
	case "input":
		return graph.Input, 0, nil
	case "mix":
		return graph.Mix, DefaultMixDuration, nil
	case "detect":
		return graph.Detect, DefaultDetectDuration, nil
	case "output":
		return graph.Output, 0, nil
	}
	return 0, 0, fmt.Errorf("unknown kind %q", s)
}

// Write serialises a in the text format. Parse(Write(a)) reproduces a.
func Write(w io.Writer, a *graph.Assay) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "assay %s\n", a.Name)
	order, err := a.TopoOrder()
	if err != nil {
		return err
	}
	for _, id := range order {
		op := a.Op(id)
		fmt.Fprintf(bw, "op %s %s %d\n", op.Name, op.Kind, op.Duration)
	}
	// Emit edges grouped by destination in topological order for stable
	// round-tripping.
	for _, id := range order {
		in := append([]graph.Edge(nil), a.In(id)...)
		sort.Slice(in, func(i, j int) bool { return in[i].From < in[j].From })
		for _, e := range in {
			fmt.Fprintf(bw, "edge %s %s %d\n", a.Op(e.From).Name, a.Op(e.To).Name, e.Volume)
		}
	}
	return bw.Flush()
}
