package fault

import (
	"math/rand"

	"mfsynth/internal/arch"
	"mfsynth/internal/grid"
)

// GenOptions parameterises the deterministic fault generator.
type GenOptions struct {
	// Grid is the valve-matrix side length (required, > 0).
	Grid int
	// Rate is the per-cell defect probability in [0, 1].
	Rate float64
	// StuckOpenFrac and WearOutFrac split the defect mass between kinds:
	// a defective cell is stuck-open with probability StuckOpenFrac,
	// wear-out with probability WearOutFrac, and stuck-closed otherwise.
	// Both default to 0 (all defects stuck-closed), the hardest class.
	StuckOpenFrac float64
	WearOutFrac   float64
	// MinLife and MaxLife bound the uniformly drawn WearOut threshold.
	// Defaults: 50..500 actuations — low enough that campaign runs
	// actually cross them.
	MinLife, MaxLife int
	// KeepPorts excludes the chip's standard port cells (and the cells a
	// load/drain must traverse next to them) from injection. Campaigns
	// usually set this: a dead port makes every outcome trivially
	// infeasible, which measures the port, not the synthesizer.
	KeepPorts bool
}

// Generate draws a fault set from a seeded PRNG. The same (seed, opts)
// always produces the same set: cells are visited in row-major order and
// each consumes a fixed number of draws, so campaigns are reproducible.
func Generate(seed int64, opts GenOptions) *Set {
	rng := rand.New(rand.NewSource(seed))
	s := NewSet(opts.Grid)
	if opts.Grid <= 0 || opts.Rate <= 0 {
		return s
	}
	minLife, maxLife := opts.MinLife, opts.MaxLife
	if minLife <= 0 {
		minLife = 50
	}
	if maxLife < minLife {
		maxLife = minLife + 450
	}
	keep := make(map[grid.Point]bool)
	if opts.KeepPorts {
		for _, p := range StandardPorts(opts.Grid) {
			keep[p] = true
		}
	}
	for y := 0; y < opts.Grid; y++ {
		for x := 0; x < opts.Grid; x++ {
			// Fixed draw budget per cell keeps the stream aligned
			// regardless of which branches fire.
			hit := rng.Float64() < opts.Rate
			kindDraw := rng.Float64()
			life := minLife + rng.Intn(maxLife-minLife+1)
			p := grid.Point{X: x, Y: y}
			if !hit || keep[p] {
				continue
			}
			switch {
			case kindDraw < opts.StuckOpenFrac:
				s.Add(Fault{At: p, Kind: StuckOpen})
			case kindDraw < opts.StuckOpenFrac+opts.WearOutFrac:
				s.Add(Fault{At: p, Kind: WearOut, Threshold: life})
			default:
				s.Add(Fault{At: p, Kind: StuckClosed})
			}
		}
	}
	return s
}

// StandardPorts returns the port cells of a gridSize×gridSize chip as laid
// out by arch.NewChip (two inlets on the west edge, one outlet on the east
// edge).
func StandardPorts(gridSize int) []grid.Point {
	c := arch.NewChip(gridSize, gridSize)
	out := make([]grid.Point, 0, len(c.Ports))
	for _, p := range c.Ports {
		out = append(out, p.At)
	}
	return out
}
