package fault

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mfsynth/internal/grid"
)

// The text spec format is line-oriented; '#' starts a comment. Lines:
//
//	grid N                 — optional matrix side length header
//	stuck-closed X Y       — valve at (X, Y) permanently closed
//	stuck-open X Y         — valve at (X, Y) cannot close
//	wear-out X Y THRESHOLD — valve dies after THRESHOLD more actuations
//
// Coordinates are zero-based with (0,0) the north-west cell, matching the
// chip snapshots. Example:
//
//	# dead column driver segment
//	grid 12
//	stuck-closed 4 7
//	stuck-closed 4 8
//	wear-out 9 2 250

// Parse reads a fault spec. Faults outside the declared grid (when a grid
// header is present) are an error.
func Parse(r io.Reader) (*Set, error) {
	s := NewSet(0)
	sc := bufio.NewScanner(r)
	lineno := 0
	firstLine := map[grid.Point]int{} // cell → line of its first declaration
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		bad := func(format string, args ...any) error {
			return fmt.Errorf("fault spec line %d: %s", lineno, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "grid":
			if len(fields) != 2 {
				return nil, bad("want: grid N")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return nil, bad("bad grid size %q", fields[1])
			}
			s.gridSize = n
		case "stuck-closed", "stuck-open", "wear-out":
			var kind Kind
			wantArgs := 3
			switch fields[0] {
			case "stuck-closed":
				kind = StuckClosed
			case "stuck-open":
				kind = StuckOpen
			case "wear-out":
				kind, wantArgs = WearOut, 4
			}
			if len(fields) != wantArgs {
				return nil, bad("want: %s X Y%s", fields[0], map[bool]string{true: " THRESHOLD"}[kind == WearOut])
			}
			f := Fault{Kind: kind}
			var err1, err2 error
			f.At.X, err1 = strconv.Atoi(fields[1])
			f.At.Y, err2 = strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || f.At.X < 0 || f.At.Y < 0 {
				return nil, bad("bad coordinates %q %q", fields[1], fields[2])
			}
			if kind == WearOut {
				f.Threshold, err1 = strconv.Atoi(fields[3])
				if err1 != nil || f.Threshold <= 0 {
					return nil, bad("bad wear-out threshold %q", fields[3])
				}
			}
			if s.gridSize > 0 && (f.At.X >= s.gridSize || f.At.Y >= s.gridSize) {
				return nil, bad("cell %s outside %dx%d grid", f.At, s.gridSize, s.gridSize)
			}
			// A Set holds at most one fault per cell, so a repeated
			// coordinate would silently overwrite the earlier entry —
			// almost certainly a spec-authoring mistake. Reject it,
			// naming both lines, regardless of the two kinds involved.
			if prev, dup := firstLine[f.At]; dup {
				return nil, bad("duplicate fault for cell (%d, %d): already declared on line %d", f.At.X, f.At.Y, prev)
			}
			firstLine[f.At] = lineno
			s.Add(f)
		default:
			return nil, bad("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fault spec line %d: %w", lineno+1, err)
	}
	return s, nil
}

// Write serialises the set in the spec format; Parse(Write(s)) round-trips.
func Write(w io.Writer, s *Set) error {
	bw := bufio.NewWriter(w)
	if g := s.Grid(); g > 0 {
		fmt.Fprintf(bw, "grid %d\n", g)
	}
	for _, f := range s.Faults() {
		fmt.Fprintln(bw, f.String())
	}
	return bw.Flush()
}
