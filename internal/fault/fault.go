// Package fault models defective valves in the virtual valve matrix and is
// the substrate of the fault-injection campaigns. The valve-centered
// architecture makes defect tolerance a mapping problem: because any w×h
// window of the matrix can host a device, the synthesizer can simply map
// around a dead cell. The fault classes follow the FPVA testing literature
// (Liu et al., "Testing Microfluidic Fully Programmable Valve Arrays"):
//
//   - StuckClosed: the valve is permanently closed. The cell is an obstacle —
//     it can never be part of a device footprint, a pump ring, a storage, or
//     a routed channel path. It is however a perfectly good wall: a wall
//     cell's job is to stay closed.
//   - StuckOpen: the valve cannot close. The cell cannot serve anywhere a
//     closed state is required — as a ring (peristalsis needs actuation), as
//     a wall band cell, or on a routed path (path cells must close to
//     confine the fluid after transport). It may sit in a footprint
//     interior, where chamber cells are held open anyway.
//   - WearOut: the valve works now but fails permanently (becomes
//     StuckClosed) once its cumulative actuation count crosses Threshold.
//     Thresholds interact with the internal/wear counters: the synthesizer
//     re-maps with the cell promoted to StuckClosed when an execution would
//     cross the threshold.
//
// A *Set is nil-safe: all read accessors treat a nil set as empty, so
// fault-free code paths pay a single nil check.
package fault

import (
	"fmt"
	"sort"
	"strings"

	"mfsynth/internal/grid"
)

// Kind classifies a valve defect.
type Kind uint8

// Defect classes.
const (
	StuckClosed Kind = iota // permanently closed: obstacle for placement and routing
	StuckOpen               // cannot close: unusable as ring, wall or path cell
	WearOut                 // fails (to StuckClosed) after Threshold actuations
)

func (k Kind) String() string {
	switch k {
	case StuckClosed:
		return "stuck-closed"
	case StuckOpen:
		return "stuck-open"
	case WearOut:
		return "wear-out"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fault is one defective valve.
type Fault struct {
	At   grid.Point
	Kind Kind
	// Threshold is the remaining actuation budget of a WearOut valve: the
	// valve dies when its cumulative actuation count exceeds it. Ignored
	// for the other kinds.
	Threshold int
}

func (f Fault) String() string {
	if f.Kind == WearOut {
		return fmt.Sprintf("%s %d %d %d", f.Kind, f.At.X, f.At.Y, f.Threshold)
	}
	return fmt.Sprintf("%s %d %d", f.Kind, f.At.X, f.At.Y)
}

// Set is a collection of valve defects, at most one per cell. The zero
// value and nil are both empty sets.
type Set struct {
	gridSize int
	byCell   map[grid.Point]Fault
}

// NewSet builds a set for a gridSize×gridSize matrix. Later faults on the
// same cell overwrite earlier ones.
func NewSet(gridSize int, faults ...Fault) *Set {
	s := &Set{gridSize: gridSize, byCell: make(map[grid.Point]Fault, len(faults))}
	for _, f := range faults {
		s.Add(f)
	}
	return s
}

// Add inserts or overwrites the fault at f.At.
func (s *Set) Add(f Fault) {
	if s.byCell == nil {
		s.byCell = make(map[grid.Point]Fault)
	}
	s.byCell[f.At] = f
}

// Empty reports whether the set (possibly nil) has no faults.
func (s *Set) Empty() bool { return s == nil || len(s.byCell) == 0 }

// Len returns the number of faulty cells.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.byCell)
}

// Grid returns the matrix side length the set was built for (0 if unknown).
func (s *Set) Grid() int {
	if s == nil {
		return 0
	}
	return s.gridSize
}

// At returns the fault on cell p, if any.
func (s *Set) At(p grid.Point) (Fault, bool) {
	if s == nil {
		return Fault{}, false
	}
	f, ok := s.byCell[p]
	return f, ok
}

// Faults returns all faults sorted by (Y, X) — a deterministic order for
// iteration, serialization and reporting.
func (s *Set) Faults() []Fault {
	if s.Empty() {
		return nil
	}
	out := make([]Fault, 0, len(s.byCell))
	for _, f := range s.byCell {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At.Y != out[j].At.Y {
			return out[i].At.Y < out[j].At.Y
		}
		return out[i].At.X < out[j].At.X
	})
	return out
}

// Clone returns an independent copy (nil stays nil-equivalent: an empty
// non-nil set, safe to mutate).
func (s *Set) Clone() *Set {
	c := &Set{byCell: make(map[grid.Point]Fault, s.Len())}
	if s != nil {
		c.gridSize = s.gridSize
		for p, f := range s.byCell {
			c.byCell[p] = f
		}
	}
	return c
}

// Promote marks cell p permanently dead (StuckClosed). It is how a WearOut
// valve that crossed its threshold enters the working fault set.
func (s *Set) Promote(p grid.Point) {
	s.Add(Fault{At: p, Kind: StuckClosed})
}

// Blocked reports whether cell p may never carry fluid or belong to a
// device footprint: true for StuckClosed cells.
func (s *Set) Blocked(p grid.Point) bool {
	f, ok := s.At(p)
	return ok && f.Kind == StuckClosed
}

// CannotClose reports whether cell p cannot realise a closed state: true
// for StuckOpen cells. Such a cell is unusable as a ring, wall-band or
// path cell.
func (s *Set) CannotClose(p grid.Point) bool {
	f, ok := s.At(p)
	return ok && f.Kind == StuckOpen
}

// UnroutableCells returns the cells (sorted by Y then X) that a channel
// path may never cross: StuckClosed cells cannot open, StuckOpen cells
// cannot re-close to confine the fluid.
func (s *Set) UnroutableCells() []grid.Point {
	var out []grid.Point
	for _, f := range s.Faults() {
		if f.Kind == StuckClosed || f.Kind == StuckOpen {
			out = append(out, f.At)
		}
	}
	return out
}

// WearOuts returns the WearOut faults, sorted by Y then X.
func (s *Set) WearOuts() []Fault {
	var out []Fault
	for _, f := range s.Faults() {
		if f.Kind == WearOut {
			out = append(out, f)
		}
	}
	return out
}

// String renders a compact single-line summary, e.g.
// "3 faults (2 stuck-closed, 1 wear-out) on 12x12".
func (s *Set) String() string {
	if s.Empty() {
		return "no faults"
	}
	var nc, no, nw int
	for _, f := range s.Faults() {
		switch f.Kind {
		case StuckClosed:
			nc++
		case StuckOpen:
			no++
		case WearOut:
			nw++
		}
	}
	var parts []string
	if nc > 0 {
		parts = append(parts, fmt.Sprintf("%d stuck-closed", nc))
	}
	if no > 0 {
		parts = append(parts, fmt.Sprintf("%d stuck-open", no))
	}
	if nw > 0 {
		parts = append(parts, fmt.Sprintf("%d wear-out", nw))
	}
	desc := fmt.Sprintf("%d fault(s) (%s)", s.Len(), strings.Join(parts, ", "))
	if s.gridSize > 0 {
		desc += fmt.Sprintf(" on %dx%d", s.gridSize, s.gridSize)
	}
	return desc
}
