package fault

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"mfsynth/internal/grid"
)

func TestNilSetIsEmpty(t *testing.T) {
	var s *Set
	if !s.Empty() || s.Len() != 0 || s.Grid() != 0 {
		t.Fatalf("nil set not empty: %v %d %d", s.Empty(), s.Len(), s.Grid())
	}
	if s.Blocked(grid.Point{}) || s.CannotClose(grid.Point{}) {
		t.Fatal("nil set reports faults")
	}
	if s.UnroutableCells() != nil || s.Faults() != nil || s.WearOuts() != nil {
		t.Fatal("nil set returns non-nil slices")
	}
	c := s.Clone()
	c.Promote(grid.Point{X: 1, Y: 1}) // must not panic
	if c.Len() != 1 {
		t.Fatalf("clone of nil not mutable: %d", c.Len())
	}
}

func TestRolePredicates(t *testing.T) {
	s := NewSet(10,
		Fault{At: grid.Point{X: 1, Y: 2}, Kind: StuckClosed},
		Fault{At: grid.Point{X: 3, Y: 4}, Kind: StuckOpen},
		Fault{At: grid.Point{X: 5, Y: 6}, Kind: WearOut, Threshold: 100},
	)
	if !s.Blocked(grid.Point{X: 1, Y: 2}) || s.Blocked(grid.Point{X: 3, Y: 4}) || s.Blocked(grid.Point{X: 5, Y: 6}) {
		t.Fatal("Blocked should be true only for stuck-closed")
	}
	if !s.CannotClose(grid.Point{X: 3, Y: 4}) || s.CannotClose(grid.Point{X: 1, Y: 2}) {
		t.Fatal("CannotClose should be true only for stuck-open")
	}
	want := []grid.Point{{X: 1, Y: 2}, {X: 3, Y: 4}}
	if got := s.UnroutableCells(); !reflect.DeepEqual(got, want) {
		t.Fatalf("UnroutableCells = %v, want %v", got, want)
	}
	if wo := s.WearOuts(); len(wo) != 1 || wo[0].Threshold != 100 {
		t.Fatalf("WearOuts = %v", wo)
	}
}

func TestPromote(t *testing.T) {
	s := NewSet(10, Fault{At: grid.Point{X: 5, Y: 6}, Kind: WearOut, Threshold: 10})
	c := s.Clone()
	c.Promote(grid.Point{X: 5, Y: 6})
	if !c.Blocked(grid.Point{X: 5, Y: 6}) {
		t.Fatal("promoted cell should be blocked")
	}
	if s.Blocked(grid.Point{X: 5, Y: 6}) {
		t.Fatal("Promote on clone mutated the original")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	opts := GenOptions{Grid: 12, Rate: 0.1, StuckOpenFrac: 0.2, WearOutFrac: 0.3}
	a, b := Generate(42, opts), Generate(42, opts)
	if !reflect.DeepEqual(a.Faults(), b.Faults()) {
		t.Fatal("same seed produced different sets")
	}
	if a.Empty() {
		t.Fatal("rate 0.1 on 144 cells produced no faults")
	}
	c := Generate(43, opts)
	if reflect.DeepEqual(a.Faults(), c.Faults()) {
		t.Fatal("different seeds produced identical sets")
	}
}

func TestGenerateKeepPorts(t *testing.T) {
	opts := GenOptions{Grid: 10, Rate: 1.0, KeepPorts: true}
	s := Generate(1, opts)
	for _, p := range StandardPorts(10) {
		if _, hit := s.At(p); hit {
			t.Fatalf("port cell %s was injected despite KeepPorts", p)
		}
	}
	if s.Len() != 10*10-len(StandardPorts(10)) {
		t.Fatalf("rate 1.0 should fault every non-port cell, got %d", s.Len())
	}
}

func TestSpecRoundTrip(t *testing.T) {
	s := NewSet(12,
		Fault{At: grid.Point{X: 4, Y: 7}, Kind: StuckClosed},
		Fault{At: grid.Point{X: 0, Y: 5}, Kind: StuckOpen},
		Fault{At: grid.Point{X: 9, Y: 2}, Kind: WearOut, Threshold: 250},
	)
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Grid() != 12 || !reflect.DeepEqual(back.Faults(), s.Faults()) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", back.Faults(), s.Faults())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"grid nope",
		"stuck-closed 1",
		"stuck-open a b",
		"wear-out 1 2",
		"wear-out 1 2 -5",
		"grid 8\nstuck-closed 8 0",
		"flux-capacitor 1 2",
	}
	for _, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
	s, err := Parse(strings.NewReader("# comment only\n\ngrid 9 # trailing\nstuck-open 3 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Grid() != 9 || s.Len() != 1 {
		t.Fatalf("got grid %d, %d faults", s.Grid(), s.Len())
	}
}

// TestParseErrorLineNumbers checks every parse error names the offending
// line, and that duplicate coordinates are rejected with both the
// duplicate's and the original declaration's line numbers.
func TestParseErrorLineNumbers(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"grid nope", "line 1:"},
		{"grid 8\nstuck-closed 9 0", "line 2:"},
		{"# c\n\nwear-out 1 2 zero", "line 3:"},
		{"stuck-open 0 0\nstuck-open 1 1\nflux 2 2", "line 3:"},
	}
	for _, c := range cases {
		_, err := Parse(strings.NewReader(c.in))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) = %v, want error mentioning %q", c.in, err, c.want)
		}
	}

	// Duplicate coordinates: rejected across kinds, both lines named.
	dup := "grid 8\nstuck-closed 2 3\nwear-out 1 1 50\nstuck-open 2 3"
	_, err := Parse(strings.NewReader(dup))
	if err == nil {
		t.Fatal("duplicate coordinate accepted")
	}
	for _, frag := range []string{"line 4:", "duplicate fault for cell (2, 3)", "line 2"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("duplicate error %q missing %q", err, frag)
		}
	}

	// An exact repeat of the same fault is still a duplicate.
	if _, err := Parse(strings.NewReader("stuck-open 5 5\nstuck-open 5 5")); err == nil {
		t.Error("exact duplicate accepted")
	}
}
