// Package graph models bioassay sequencing graphs: directed acyclic graphs
// whose nodes are assay operations (fluid inputs, mixing, detection, output)
// and whose edges carry fluid volumes from producers to consumers.
//
// This is the first of the two synthesis inputs defined in the paper's
// problem formulation: "a bioassay sequencing graph, which specifies
// operation relations, durations, volumes and input proportions". Input
// proportions are expressed by per-edge volumes: a 1:3 mix of total volume 8
// has two incoming edges with volumes 2 and 6.
package graph

import (
	"fmt"
	"sort"
)

// Kind enumerates the operation kinds supported by the synthesis flow.
type Kind int

// Operation kinds.
const (
	// Input dispenses a sample or reagent from an off-chip port. It has no
	// duration and occupies no on-chip device.
	Input Kind = iota
	// Mix merges its incoming fluids in a (dynamic) mixer using peristalsis.
	Mix
	// Detect holds a fluid in a detector for optical readout.
	Detect
	// Output drains a fluid to a waste or collection port.
	Output
)

// String returns the lower-case kind name.
func (k Kind) String() string {
	switch k {
	case Input:
		return "input"
	case Mix:
		return "mix"
	case Detect:
		return "detect"
	case Output:
		return "output"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Op is one operation of a bioassay.
type Op struct {
	// ID is the operation's index in Assay.Ops; assigned by Assay.Add.
	ID int
	// Kind classifies the operation.
	Kind Kind
	// Name is a human-readable label such as "o5".
	Name string
	// Duration is the execution time in time units (tu). Input operations
	// have duration 0; mixing and detection durations come from the assay
	// library.
	Duration int

	owner *Assay
}

// Edge transports Volume units of fluid from the product of From to the
// input of To.
type Edge struct {
	From, To int
	Volume   int
}

// Assay is a bioassay sequencing graph.
type Assay struct {
	// Name identifies the assay, e.g. "PCR".
	Name string

	ops   []*Op
	in    [][]Edge // in[id] lists edges ending at id
	out   [][]Edge // out[id] lists edges starting at id
	edges int
}

// New returns an empty assay with the given name.
func New(name string) *Assay {
	return &Assay{Name: name}
}

// Add appends an operation, assigns its ID and returns it.
func (a *Assay) Add(kind Kind, name string, duration int) *Op {
	op := &Op{ID: len(a.ops), Kind: kind, Name: name, Duration: duration, owner: a}
	a.ops = append(a.ops, op)
	a.in = append(a.in, nil)
	a.out = append(a.out, nil)
	return op
}

// Connect adds an edge carrying volume units from the product of from to the
// input of to. It panics on out-of-range IDs; volume validity is checked by
// Validate.
func (a *Assay) Connect(from, to *Op, volume int) {
	if from == nil || to == nil {
		panic("graph: Connect with nil operation")
	}
	if from.owner != a || to.owner != a {
		panic(fmt.Sprintf("graph: Connect %q->%q with operation from another assay", from.Name, to.Name))
	}
	a.checkID(from.ID)
	a.checkID(to.ID)
	e := Edge{From: from.ID, To: to.ID, Volume: volume}
	a.out[from.ID] = append(a.out[from.ID], e)
	a.in[to.ID] = append(a.in[to.ID], e)
	a.edges++
}

func (a *Assay) checkID(id int) {
	if id < 0 || id >= len(a.ops) {
		panic(fmt.Sprintf("graph: operation %d not in assay %q", id, a.Name))
	}
}

// Len returns the number of operations.
func (a *Assay) Len() int { return len(a.ops) }

// NumEdges returns the number of edges.
func (a *Assay) NumEdges() int { return a.edges }

// Op returns the operation with the given ID.
func (a *Assay) Op(id int) *Op {
	a.checkID(id)
	return a.ops[id]
}

// Ops returns all operations in ID order. The returned slice must not be
// modified.
func (a *Assay) Ops() []*Op { return a.ops }

// In returns the edges entering id. The returned slice must not be modified.
func (a *Assay) In(id int) []Edge {
	a.checkID(id)
	return a.in[id]
}

// Out returns the edges leaving id. The returned slice must not be modified.
func (a *Assay) Out(id int) []Edge {
	a.checkID(id)
	return a.out[id]
}

// Volume returns the total fluid volume processed by operation id: the sum
// of its incoming edge volumes. For Input operations it is the sum of the
// outgoing volumes instead (the dispensed amount).
func (a *Assay) Volume(id int) int {
	a.checkID(id)
	edges := a.in[id]
	if a.ops[id].Kind == Input {
		edges = a.out[id]
	}
	v := 0
	for _, e := range edges {
		v += e.Volume
	}
	return v
}

// Parents returns the IDs of the operations feeding id, in ascending order
// without duplicates.
func (a *Assay) Parents(id int) []int {
	return neighborIDs(a.In(id), func(e Edge) int { return e.From })
}

// Children returns the IDs of the operations consuming id's product, in
// ascending order without duplicates.
func (a *Assay) Children(id int) []int {
	return neighborIDs(a.Out(id), func(e Edge) int { return e.To })
}

func neighborIDs(edges []Edge, pick func(Edge) int) []int {
	if len(edges) == 0 {
		return nil
	}
	ids := make([]int, 0, len(edges))
	seen := make(map[int]bool, len(edges))
	for _, e := range edges {
		id := pick(e)
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// DeviceParents returns the parents of id that occupy on-chip devices
// (everything except Input operations). These are the "parent operations" of
// the paper's Section 3.3: their finish times bound when the in situ storage
// for id can appear.
func (a *Assay) DeviceParents(id int) []int {
	var ids []int
	for _, p := range a.Parents(id) {
		if a.ops[p].Kind != Input {
			ids = append(ids, p)
		}
	}
	return ids
}

// MixOps returns the IDs of all mixing operations in ID order.
func (a *Assay) MixOps() []int {
	var ids []int
	for _, op := range a.ops {
		if op.Kind == Mix {
			ids = append(ids, op.ID)
		}
	}
	return ids
}

// CountKind returns the number of operations of the given kind.
func (a *Assay) CountKind(k Kind) int {
	n := 0
	for _, op := range a.ops {
		if op.Kind == k {
			n++
		}
	}
	return n
}

// TopoOrder returns the operation IDs in a topological order of the DAG. It
// returns an error if the graph contains a cycle.
func (a *Assay) TopoOrder() ([]int, error) {
	indeg := make([]int, len(a.ops))
	for id := range a.ops {
		indeg[id] = len(a.Parents(id))
	}
	queue := make([]int, 0, len(a.ops))
	for id, d := range indeg {
		if d == 0 {
			queue = append(queue, id)
		}
	}
	order := make([]int, 0, len(a.ops))
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, c := range a.Children(id) {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(order) != len(a.ops) {
		return nil, fmt.Errorf("graph: assay %q contains a cycle", a.Name)
	}
	return order, nil
}

// Validate checks structural well-formedness:
//   - the graph is acyclic;
//   - every edge volume is positive;
//   - Input operations have no incoming edges and at least one outgoing one;
//   - Mix operations have at least one incoming edge and total input volume
//     of at least 2 units (a peristaltic ring needs at least a 2×2 block);
//   - Detect operations have exactly one producer;
//   - Output operations have no outgoing edges and at least one incoming;
//   - for Mix and Detect the outgoing volume does not exceed the produced
//     volume (waste is allowed, creation of fluid is not).
func (a *Assay) Validate() error {
	if _, err := a.TopoOrder(); err != nil {
		return err
	}
	for id, op := range a.ops {
		for _, e := range a.in[id] {
			if e.Volume <= 0 {
				return fmt.Errorf("graph: edge %s->%s has non-positive volume %d",
					a.ops[e.From].Name, op.Name, e.Volume)
			}
		}
		switch op.Kind {
		case Input:
			if len(a.in[id]) != 0 {
				return fmt.Errorf("graph: input %s has incoming edges", op.Name)
			}
			if len(a.out[id]) == 0 {
				return fmt.Errorf("graph: input %s feeds nothing", op.Name)
			}
		case Mix:
			if len(a.in[id]) == 0 {
				return fmt.Errorf("graph: mix %s has no inputs", op.Name)
			}
			if a.Volume(id) < 2 {
				return fmt.Errorf("graph: mix %s has volume %d < 2", op.Name, a.Volume(id))
			}
		case Detect:
			if len(a.Parents(id)) != 1 {
				return fmt.Errorf("graph: detect %s needs exactly one producer, has %d",
					op.Name, len(a.Parents(id)))
			}
		case Output:
			if len(a.out[id]) != 0 {
				return fmt.Errorf("graph: output %s has outgoing edges", op.Name)
			}
			if len(a.in[id]) == 0 {
				return fmt.Errorf("graph: output %s consumes nothing", op.Name)
			}
		default:
			return fmt.Errorf("graph: %s has unknown kind %d", op.Name, int(op.Kind))
		}
		if op.Kind == Mix || op.Kind == Detect {
			outV := 0
			for _, e := range a.out[id] {
				outV += e.Volume
			}
			if outV > a.Volume(id) {
				return fmt.Errorf("graph: %s outputs %d units but produces only %d",
					op.Name, outV, a.Volume(id))
			}
		}
	}
	return nil
}

// Stats summarises an assay for reporting: total operations and mixing
// operations, as the paper's Table 1 column "#op" (e.g. "15(7)").
type Stats struct {
	Ops, MixOps int
	// VolumeHistogram maps mixing volume to the number of mixing operations
	// with that volume.
	VolumeHistogram map[int]int
}

// Stats computes summary statistics of the assay. Ops counts every
// operation including inputs, matching the paper's #op column (PCR has 8
// inputs + 7 mixes = "15(7)").
func (a *Assay) Stats() Stats {
	s := Stats{VolumeHistogram: map[int]int{}}
	for _, op := range a.ops {
		s.Ops++
		if op.Kind == Mix {
			s.MixOps++
			s.VolumeHistogram[a.Volume(op.ID)]++
		}
	}
	return s
}

// String renders the Table 1 form "ops(mixes)".
func (s Stats) String() string { return fmt.Sprintf("%d(%d)", s.Ops, s.MixOps) }
