package graph

import (
	"strings"
	"testing"
)

// tinyTree builds the smallest interesting assay: two inputs feeding one mix
// whose product is drained.
//
//	in1(4)  in2(4)
//	    \    /
//	     mix(8)
//	      |
//	     out
func tinyTree() (*Assay, *Op, *Op, *Op, *Op) {
	a := New("tiny")
	in1 := a.Add(Input, "in1", 0)
	in2 := a.Add(Input, "in2", 0)
	mix := a.Add(Mix, "mix", 6)
	out := a.Add(Output, "out", 0)
	a.Connect(in1, mix, 4)
	a.Connect(in2, mix, 4)
	a.Connect(mix, out, 8)
	return a, in1, in2, mix, out
}

func TestTinyTreeStructure(t *testing.T) {
	a, in1, in2, mix, out := tinyTree()
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if a.Len() != 4 || a.NumEdges() != 3 {
		t.Fatalf("Len/NumEdges = %d/%d", a.Len(), a.NumEdges())
	}
	if v := a.Volume(mix.ID); v != 8 {
		t.Fatalf("mix volume = %d, want 8", v)
	}
	if v := a.Volume(in1.ID); v != 4 {
		t.Fatalf("input volume = %d, want 4", v)
	}
	if got := a.Parents(mix.ID); len(got) != 2 || got[0] != in1.ID || got[1] != in2.ID {
		t.Fatalf("Parents(mix) = %v", got)
	}
	if got := a.Children(mix.ID); len(got) != 1 || got[0] != out.ID {
		t.Fatalf("Children(mix) = %v", got)
	}
	if got := a.DeviceParents(mix.ID); len(got) != 0 {
		t.Fatalf("DeviceParents(mix) = %v, want none (inputs are off-chip)", got)
	}
	if got := a.DeviceParents(out.ID); len(got) != 1 || got[0] != mix.ID {
		t.Fatalf("DeviceParents(out) = %v", got)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Input: "input", Mix: "mix", Detect: "detect", Output: "output", Kind(9): "kind(9)"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestTopoOrder(t *testing.T) {
	a, _, _, mix, out := tinyTree()
	order, err := a.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, id := range order {
		pos[id] = i
	}
	if len(order) != a.Len() {
		t.Fatalf("TopoOrder len = %d", len(order))
	}
	for id := 0; id < a.Len(); id++ {
		for _, p := range a.Parents(id) {
			if pos[p] >= pos[id] {
				t.Fatalf("parent %d not before %d in %v", p, id, order)
			}
		}
	}
	if pos[mix.ID] >= pos[out.ID] {
		t.Fatal("mix must precede out")
	}
}

func TestCycleDetected(t *testing.T) {
	a := New("cyc")
	m1 := a.Add(Mix, "m1", 6)
	m2 := a.Add(Mix, "m2", 6)
	a.Connect(m1, m2, 4)
	a.Connect(m2, m1, 4)
	if _, err := a.TopoOrder(); err == nil {
		t.Fatal("TopoOrder accepted a cycle")
	}
	if err := a.Validate(); err == nil {
		t.Fatal("Validate accepted a cycle")
	}
}

func TestValidateRejections(t *testing.T) {
	t.Run("non-positive edge volume", func(t *testing.T) {
		a := New("bad")
		in := a.Add(Input, "in", 0)
		m := a.Add(Mix, "m", 6)
		a.Connect(in, m, 0)
		wantErr(t, a, "non-positive volume")
	})
	t.Run("input with incoming edge", func(t *testing.T) {
		a := New("bad")
		m := a.Add(Mix, "m", 6)
		in := a.Add(Input, "in", 0)
		i2 := a.Add(Input, "i2", 0)
		a.Connect(i2, m, 4)
		a.Connect(m, in, 2) // acyclic, but inputs must not consume
		wantErr(t, a, "incoming edges")
	})
	t.Run("dangling input", func(t *testing.T) {
		a := New("bad")
		a.Add(Input, "in", 0)
		wantErr(t, a, "feeds nothing")
	})
	t.Run("mix without inputs", func(t *testing.T) {
		a := New("bad")
		a.Add(Mix, "m", 6)
		wantErr(t, a, "no inputs")
	})
	t.Run("mix volume too small", func(t *testing.T) {
		a := New("bad")
		in := a.Add(Input, "in", 0)
		m := a.Add(Mix, "m", 6)
		a.Connect(in, m, 1)
		wantErr(t, a, "volume 1 < 2")
	})
	t.Run("detect with two producers", func(t *testing.T) {
		a := New("bad")
		in1 := a.Add(Input, "i1", 0)
		in2 := a.Add(Input, "i2", 0)
		d := a.Add(Detect, "d", 4)
		a.Connect(in1, d, 2)
		a.Connect(in2, d, 2)
		wantErr(t, a, "exactly one producer")
	})
	t.Run("output with outgoing edge", func(t *testing.T) {
		a := New("bad")
		in := a.Add(Input, "in", 0)
		m := a.Add(Mix, "m", 6)
		o := a.Add(Output, "o", 0)
		m2 := a.Add(Mix, "m2", 6)
		in2 := a.Add(Input, "in2", 0)
		a.Connect(in, m, 4)
		a.Connect(m, o, 4)
		a.Connect(in2, m2, 4)
		a.Connect(o, m2, 1) // acyclic, but outputs must be sinks
		wantErr(t, a, "outgoing edges")
	})
	t.Run("fluid creation", func(t *testing.T) {
		a := New("bad")
		in := a.Add(Input, "in", 0)
		m := a.Add(Mix, "m", 6)
		o := a.Add(Output, "o", 0)
		a.Connect(in, m, 4)
		a.Connect(m, o, 9)
		wantErr(t, a, "produces only 4")
	})
}

func wantErr(t *testing.T, a *Assay, substr string) {
	t.Helper()
	err := a.Validate()
	if err == nil {
		t.Fatalf("Validate accepted invalid assay, want error containing %q", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("Validate error %q does not contain %q", err, substr)
	}
}

func TestWasteAllowed(t *testing.T) {
	// A mix may output less than it produced (rest goes to waste on unload).
	a := New("waste")
	i1 := a.Add(Input, "i1", 0)
	i2 := a.Add(Input, "i2", 0)
	m := a.Add(Mix, "m", 6)
	o := a.Add(Output, "o", 0)
	a.Connect(i1, m, 4)
	a.Connect(i2, m, 4)
	a.Connect(m, o, 2)
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestRatioSupport(t *testing.T) {
	// A 1:3 mix of total volume 8: edge volumes 2 and 6.
	a := New("ratio")
	i1 := a.Add(Input, "sample", 0)
	i2 := a.Add(Input, "buffer", 0)
	m := a.Add(Mix, "m", 6)
	a.Connect(i1, m, 2)
	a.Connect(i2, m, 6)
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if a.Volume(m.ID) != 8 {
		t.Fatalf("volume = %d, want 8", a.Volume(m.ID))
	}
	vols := []int{a.In(m.ID)[0].Volume, a.In(m.ID)[1].Volume}
	if vols[0] != 2 || vols[1] != 6 {
		t.Fatalf("edge volumes = %v, want [2 6]", vols)
	}
}

func TestStats(t *testing.T) {
	a, _, _, _, _ := tinyTree()
	s := a.Stats()
	if s.Ops != 4 || s.MixOps != 1 {
		t.Fatalf("Stats = %+v", s)
	}
	if s.VolumeHistogram[8] != 1 {
		t.Fatalf("VolumeHistogram = %v", s.VolumeHistogram)
	}
	if s.String() != "4(1)" {
		t.Fatalf("Stats.String = %q", s.String())
	}
}

func TestMixOpsAndCountKind(t *testing.T) {
	a, _, _, mix, _ := tinyTree()
	if got := a.MixOps(); len(got) != 1 || got[0] != mix.ID {
		t.Fatalf("MixOps = %v", got)
	}
	if a.CountKind(Input) != 2 || a.CountKind(Output) != 1 || a.CountKind(Detect) != 0 {
		t.Fatal("CountKind wrong")
	}
}

func TestMultiConsumerProduct(t *testing.T) {
	// One product split between two children, as in interpolating dilution.
	a := New("split")
	i1 := a.Add(Input, "i1", 0)
	i2 := a.Add(Input, "i2", 0)
	i3 := a.Add(Input, "i3", 0)
	i4 := a.Add(Input, "i4", 0)
	m1 := a.Add(Mix, "m1", 6)
	a.Connect(i1, m1, 4)
	a.Connect(i2, m1, 4)
	m2 := a.Add(Mix, "m2", 6)
	m3 := a.Add(Mix, "m3", 6)
	a.Connect(m1, m2, 3)
	a.Connect(i3, m2, 3)
	a.Connect(m1, m3, 4)
	a.Connect(i4, m3, 4)
	if err := a.Validate(); err == nil {
		// m1 produces 8, outputs 3+4=7 ≤ 8: valid.
	} else {
		t.Fatalf("Validate: %v", err)
	}
	if got := a.Children(m1.ID); len(got) != 2 {
		t.Fatalf("Children(m1) = %v", got)
	}
	if got := a.DeviceParents(m2.ID); len(got) != 1 || got[0] != m1.ID {
		t.Fatalf("DeviceParents(m2) = %v", got)
	}
}

func TestPanicsOnForeignOp(t *testing.T) {
	a := New("a")
	b := New("b")
	opA := a.Add(Input, "x", 0)
	opB := b.Add(Mix, "y", 6)
	defer func() {
		if recover() == nil {
			t.Fatal("Connect accepted op from another assay")
		}
	}()
	a.Connect(opA, opB, 4)
}
