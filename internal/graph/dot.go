package graph

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT renders the assay as a Graphviz digraph: inputs as plain nodes,
// mixes as boxes labelled with their volume, detections as diamonds,
// outputs as double circles, and edges labelled with the transported
// volume.
func WriteDOT(w io.Writer, a *Assay) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n", a.Name)
	fmt.Fprintln(bw, "  rankdir=TB;")
	for _, op := range a.Ops() {
		switch op.Kind {
		case Input:
			fmt.Fprintf(bw, "  %q [shape=plaintext];\n", op.Name)
		case Mix:
			fmt.Fprintf(bw, "  %q [shape=box, label=\"%s\\nvol %d\"];\n",
				op.Name, op.Name, a.Volume(op.ID))
		case Detect:
			fmt.Fprintf(bw, "  %q [shape=diamond];\n", op.Name)
		case Output:
			fmt.Fprintf(bw, "  %q [shape=doublecircle];\n", op.Name)
		}
	}
	for _, op := range a.Ops() {
		for _, e := range a.Out(op.ID) {
			fmt.Fprintf(bw, "  %q -> %q [label=\"%d\"];\n",
				op.Name, a.Op(e.To).Name, e.Volume)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
