// Quickstart: build a tiny assay with the public API, schedule it,
// synthesize a dynamic-device chip and print the reliability metrics.
package main

import (
	"fmt"
	"log"

	"mfsynth"
)

func main() {
	log.SetFlags(0)

	// A three-mix assay: two samples are mixed, the product is diluted
	// with buffer twice (volumes pick the dynamic mixer sizes).
	a := mfsynth.NewAssay("quickstart")
	s1 := a.Add(mfsynth.Input, "sample1", 0)
	s2 := a.Add(mfsynth.Input, "sample2", 0)
	b1 := a.Add(mfsynth.Input, "buffer1", 0)
	b2 := a.Add(mfsynth.Input, "buffer2", 0)

	m1 := a.Add(mfsynth.Mix, "mix", 6)
	a.Connect(s1, m1, 4)
	a.Connect(s2, m1, 4)

	d1 := a.Add(mfsynth.Mix, "dilute1", 6)
	a.Connect(m1, d1, 3)
	a.Connect(b1, d1, 3)

	d2 := a.Add(mfsynth.Mix, "dilute2", 6)
	a.Connect(d1, d2, 2)
	a.Connect(b2, d2, 2)

	// Schedule with one shared mixer per size (a traditional policy), then
	// synthesize dynamic devices for the same schedule.
	res, err := mfsynth.Synthesize(a, mfsynth.Options{
		Policy: mfsynth.Resources{Mixers: map[int]int{4: 1, 6: 1, 8: 1}},
		Place:  mfsynth.PlaceConfig{Grid: 10},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("schedule:")
	fmt.Println(res.Schedule.Gantt())
	fmt.Printf("largest valve actuations, setting 1: %d (pump %d)\n", res.VsMax1, res.VsPump1)
	fmt.Printf("largest valve actuations, setting 2: %d (pump %d)\n", res.VsMax2, res.VsPump2)
	fmt.Printf("valves manufactured: %d of %d virtual\n", res.UsedValves, 10*10)
	fmt.Println()
	fmt.Println("final chip state:")
	fmt.Println(res.Snapshot(res.Schedule.Makespan))
}
