// The paper's running example: PCR under policy p1. Reproduces the
// scheduling Gantt of Fig. 9, the chip snapshots of Fig. 10, and the PCR
// row of Table 1.
package main

import (
	"fmt"
	"log"

	"mfsynth"
)

func main() {
	log.SetFlags(0)

	c := mfsynth.PCR()
	des, err := mfsynth.Traditional(c, 1, mfsynth.DefaultCost)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traditional design p1: #d=%d #m=%s vs_tmax=%d #v=%d storage=%d cells\n\n",
		des.NumDevices, des.MixVector(), des.VsTmax, des.Valves, des.StorageCells)

	res, err := mfsynth.Synthesize(c.Assay, mfsynth.Options{
		Policy: mfsynth.Resources{Mixers: des.Mixers},
		Place:  mfsynth.PlaceConfig{Grid: c.GridSize},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Fig. 9 — scheduling result of case PCR in p1:")
	fmt.Println(res.Schedule.Gantt())

	fmt.Println("Fig. 10 — snapshots of the synthesis result:")
	for _, t := range res.SnapshotTimes() {
		fmt.Println(res.Snapshot(t))
	}

	fmt.Println("transports (storage pass-through and crossing avoidance applied):")
	for _, tr := range res.Transports {
		fmt.Printf("  t=%2d  %-8s -> %-8s (%d valves)\n", tr.T, tr.From, tr.To, len(tr.Path))
	}
	fmt.Println()
	fmt.Printf("our method:   vs1=%d(%d)  vs2=%d(%d)  #v=%d\n",
		res.VsMax1, res.VsPump1, res.VsMax2, res.VsPump2, res.UsedValves)
	fmt.Printf("traditional:  vs_tmax=%d  #v=%d\n", des.VsTmax, des.Valves)
	fmt.Printf("improvement:  %.2f%% (setting 1), %.2f%% (setting 2)\n",
		100*float64(des.VsTmax-res.VsMax1)/float64(des.VsTmax),
		100*float64(des.VsTmax-res.VsMax2)/float64(des.VsTmax))

	// Beyond the paper: lifetime and control-effort analyses.
	model := mfsynth.WearModel{RatedActuations: 4000}
	trad := mfsynth.TraditionalActuationCounts(des)
	ours := mfsynth.ChipActuationCounts(res)
	fmt.Printf("service life: %d assay runs traditional vs %d dynamic (balance %.2f -> %.2f)\n",
		model.RunsToFirstWearout(trad), model.RunsToFirstWearout(ours),
		mfsynth.WearBalance(trad), mfsynth.WearBalance(ours))
	fmt.Printf("%s\n", mfsynth.AnalyzeControl(res))

	if v := mfsynth.CheckResult(res); len(v) != 0 {
		log.Fatalf("design rule violations: %v", v)
	}
	fmt.Println("design-rule check: clean")
}
